//! Behavioural tests for individual hypercalls: craft a guest that invokes
//! one hypercall with controlled arguments, run the activation, and verify
//! the architectural effects on hypervisor and guest state.

use sim_asm::Asm;
use sim_machine::{Machine, Reg, VirtMode};
use xen_like::layout as lay;
use xen_like::platform::NullMonitor;
use xen_like::{DomainSpec, Platform, Topology};

/// Build a single-guest platform whose DomU-0 (domain index 1... here we use
/// domain 0 as the only domain for simplicity) runs `program`.
fn platform_with_guest(program: impl FnOnce(&mut Asm)) -> Platform {
    let topo = Topology {
        nr_cpus: 1,
        domains: vec![DomainSpec { nr_vcpus: 1 }],
        virt_mode: VirtMode::Para,
        seed: 17,
        cycle_model: Default::default(),
    };
    let (mut plat, _) = Platform::new(topo);
    let base = lay::guest_text(0);
    let mut a = Asm::new(base);
    program(&mut a);
    let img = a.assemble().expect("guest assembles");
    plat.machine.mem.load_image(base, &img.words).unwrap();
    plat
}

/// Run activations until the guest executes `n` hypercalls, then stop.
fn run_hypercalls(plat: &mut Platform, n: usize) {
    plat.boot(0, &mut NullMonitor);
    let mut seen = 0;
    for _ in 0..200 {
        let act = plat.run_activation(0, &mut NullMonitor);
        assert!(
            act.outcome.is_healthy(),
            "activation died: {:?}",
            act.outcome
        );
        if matches!(act.reason, sim_machine::ExitReason::Hypercall(_)) {
            seen += 1;
            if seen >= n {
                return;
            }
        }
    }
    panic!("guest never executed {n} hypercalls");
}

fn guest_rax(m: &Machine) -> u64 {
    m.cpu(0).get(Reg::Rax)
}

#[test]
fn xen_version_returns_4_1_2() {
    let mut plat = platform_with_guest(|a| {
        a.hypercall(17);
        a.jmp(lay::guest_text(0) + 8); // spin after (self-loop)
    });
    run_hypercalls(&mut plat, 1);
    assert_eq!(guest_rax(&plat.machine), 0x0004_0102);
}

#[test]
fn ni_hypercall_returns_enosys() {
    let mut plat = platform_with_guest(|a| {
        a.hypercall(11);
        a.jmp(lay::guest_text(0) + 8);
    });
    run_hypercalls(&mut plat, 1);
    assert_eq!(guest_rax(&plat.machine) as i64, -38);
}

#[test]
fn grant_table_op_maps_and_unmaps_entries() {
    let mut plat = platform_with_guest(|a| {
        a.movi(Reg::Rdi, 0); // map
        a.movi(Reg::Rsi, 5); // ref 5
        a.movi(Reg::Rdx, 0x77); // frame
        a.hypercall(20);
        a.jmp(lay::guest_text(0) + 4 * 8);
    });
    run_hypercalls(&mut plat, 1);
    let entry = plat.machine.mem.peek(lay::grant_addr(0) + 5 * 8).unwrap();
    assert_eq!(entry & lay::grant::FLAG_INUSE, lay::grant::FLAG_INUSE);
    assert_eq!(entry >> 8, 0x77, "frame stored above the flag bits");
    assert_eq!(guest_rax(&plat.machine), 0);
}

#[test]
fn grant_table_op_rejects_out_of_range_ref() {
    let mut plat = platform_with_guest(|a| {
        a.movi(Reg::Rdi, 0);
        a.movi(Reg::Rsi, lay::NR_GRANTS as i64 + 3); // invalid ref
        a.movi(Reg::Rdx, 1);
        a.hypercall(20);
        a.jmp(lay::guest_text(0) + 4 * 8);
    });
    run_hypercalls(&mut plat, 1);
    assert_eq!(
        guest_rax(&plat.machine) as i64,
        -22,
        "EINVAL for bad grant ref"
    );
}

#[test]
fn memory_op_balloons_pages_up_and_down() {
    let mut plat = platform_with_guest(|a| {
        a.movi(Reg::Rdi, 0); // increase
        a.movi(Reg::Rsi, 10);
        a.hypercall(12);
        a.movi(Reg::Rdi, 1); // decrease
        a.movi(Reg::Rsi, 4);
        a.hypercall(12);
        a.jmp(lay::guest_text(0) + 6 * 8);
    });
    run_hypercalls(&mut plat, 2);
    let balloon = plat
        .machine
        .mem
        .peek(lay::domain_addr(0) + lay::domain::BALLOON_PAGES * 8)
        .unwrap();
    assert_eq!(balloon as i64, 6, "10 up, 4 down");
}

#[test]
fn update_va_mapping_writes_guest_word() {
    let target = lay::guest_data(0) + 0x3000;
    let mut plat = platform_with_guest(move |a| {
        a.movi(Reg::Rdi, target as i64);
        a.movi(Reg::Rsi, 0xDEAD);
        a.hypercall(14);
        a.jmp(lay::guest_text(0) + 3 * 8);
    });
    run_hypercalls(&mut plat, 1);
    assert_eq!(plat.machine.mem.peek(target).unwrap(), 0xDEAD);
    let updates = plat
        .machine
        .mem
        .peek(lay::domain_addr(0) + lay::domain::MMU_UPDATES * 8)
        .unwrap();
    assert!(updates >= 1);
}

#[test]
fn update_va_mapping_rejects_foreign_address() {
    let mut plat = platform_with_guest(|a| {
        a.movi(Reg::Rdi, lay::GLOBAL_BASE as i64); // hypervisor data!
        a.movi(Reg::Rsi, 0xBAD);
        a.hypercall(14);
        a.jmp(lay::guest_text(0) + 3 * 8);
    });
    run_hypercalls(&mut plat, 1);
    assert_eq!(
        guest_rax(&plat.machine) as i64,
        -14,
        "EFAULT for out-of-window va"
    );
    assert_ne!(plat.machine.mem.peek(lay::GLOBAL_BASE).unwrap(), 0xBAD);
}

#[test]
fn evtchn_mask_blocks_upcall_send_sets_pending() {
    let mut plat = platform_with_guest(|a| {
        a.movi(Reg::Rdi, 2); // mask
        a.movi(Reg::Rsi, 7); // port 7
        a.hypercall(32);
        a.movi(Reg::Rdi, 0); // send
        a.movi(Reg::Rsi, 7);
        a.hypercall(32);
        a.jmp(lay::guest_text(0) + 6 * 8);
    });
    run_hypercalls(&mut plat, 2);
    let chan = plat.machine.mem.peek(lay::evtchn_addr(0) + 7 * 8).unwrap();
    assert_eq!(
        chan & lay::evtchn::PENDING_BIT,
        1,
        "pending set even when masked"
    );
    assert_eq!(chan & lay::evtchn::MASKED_BIT, 2, "mask still in place");
    // Masked send must not set the upcall flag.
    let upcall = plat
        .machine
        .mem
        .peek(lay::vcpu_addr(0) + lay::vcpu::UPCALL_PENDING * 8)
        .unwrap();
    assert_eq!(upcall, 0, "masked channel must not raise an upcall");
}

#[test]
fn evtchn_unmask_then_send_raises_upcall_selector() {
    let mut plat = platform_with_guest(|a| {
        a.movi(Reg::Rdi, 0); // send on unmasked port
        a.movi(Reg::Rsi, 3);
        a.hypercall(32);
        a.jmp(lay::guest_text(0) + 3 * 8);
    });
    run_hypercalls(&mut plat, 1);
    // The return-to-guest path mirrors the upcall into the shared page.
    let sel = plat
        .machine
        .mem
        .peek(lay::shared_addr(0) + lay::shared::EVTCHN_PENDING_SEL * 8)
        .unwrap();
    assert_eq!(sel, 1, "upcall selector set in shared info");
}

#[test]
fn set_timer_op_arms_and_timer_tick_fires_it() {
    let mut plat = platform_with_guest(|a| {
        a.movi(Reg::Rdi, 3); // deadline: wallclock tick 3 (starts at 1)
        a.hypercall(15);
        a.label("spin");
        a.movi(Reg::Rbx, 7);
        a.jmp("spin");
    });
    plat.irq.tick_period = 50_000;
    plat.boot(0, &mut NullMonitor);
    // Run until the deadline passes.
    for _ in 0..400 {
        let act = plat.run_activation(0, &mut NullMonitor);
        assert!(act.outcome.is_healthy());
        let wc = plat
            .machine
            .mem
            .peek(lay::global_addr(lay::global::WALLCLOCK))
            .unwrap();
        if wc > 4 {
            break;
        }
    }
    let deadline = plat
        .machine
        .mem
        .peek(lay::vcpu_addr(0) + lay::vcpu::TIMER_DEADLINE * 8)
        .unwrap();
    assert_eq!(deadline, 0, "expired timer must be disarmed");
}

#[test]
fn vcpu_op_is_up_reports_runnable() {
    let mut plat = platform_with_guest(|a| {
        a.movi(Reg::Rdi, 2); // is_up
        a.movi(Reg::Rsi, 0); // vcpu 0
        a.hypercall(24);
        a.jmp(lay::guest_text(0) + 3 * 8);
    });
    run_hypercalls(&mut plat, 1);
    assert_eq!(guest_rax(&plat.machine), 1, "the calling vcpu is up");
}

#[test]
fn vcpu_op_rejects_bad_vcpu_id() {
    let mut plat = platform_with_guest(|a| {
        a.movi(Reg::Rdi, 2);
        a.movi(Reg::Rsi, 3); // domain has only 1 vcpu
        a.hypercall(24);
        a.jmp(lay::guest_text(0) + 3 * 8);
    });
    run_hypercalls(&mut plat, 1);
    assert_eq!(guest_rax(&plat.machine) as i64, -22);
}

#[test]
fn console_io_writes_reach_the_device() {
    let args = lay::guest_data(0) + 0x100;
    let mut plat = platform_with_guest(move |a| {
        a.movi(Reg::Rdi, 0); // write
        a.movi(Reg::Rsi, 5); // 5 characters
        a.movi(Reg::Rdx, args as i64);
        a.hypercall(18);
        a.jmp(lay::guest_text(0) + 4 * 8);
    });
    let before = plat.machine.devices.out_count;
    run_hypercalls(&mut plat, 1);
    assert_eq!(
        plat.machine.devices.out_count - before,
        5,
        "five console writes"
    );
    assert_eq!(guest_rax(&plat.machine), 5, "returns the count written");
}

#[test]
fn sysctl_counts_total_vcpus() {
    let mut plat = platform_with_guest(|a| {
        a.movi(Reg::Rdi, 0);
        a.hypercall(35);
        a.jmp(lay::guest_text(0) + 2 * 8);
    });
    run_hypercalls(&mut plat, 1);
    assert_eq!(guest_rax(&plat.machine), 1, "one domain, one vcpu");
}

#[test]
fn domctl_getinfo_and_esrch() {
    let mut plat = platform_with_guest(|a| {
        a.movi(Reg::Rdi, 2); // getinfo
        a.movi(Reg::Rsi, 0);
        a.hypercall(36);
        a.mov(Reg::R13, Reg::Rax); // stash
        a.movi(Reg::Rdi, 2);
        a.movi(Reg::Rsi, 6); // no such domain
        a.hypercall(36);
        a.jmp(lay::guest_text(0) + 6 * 8);
    });
    run_hypercalls(&mut plat, 2);
    assert_eq!(
        plat.machine.cpu(0).get(Reg::R13),
        1,
        "getinfo returns nr_vcpus"
    );
    assert_eq!(
        guest_rax(&plat.machine) as i64,
        -3,
        "ESRCH for unknown domain"
    );
}

#[test]
fn set_callbacks_installs_trap_handler() {
    let handler = lay::guest_text(0) + 0x400;
    let mut plat = platform_with_guest(move |a| {
        a.movi(Reg::Rdi, handler as i64);
        a.movi(Reg::Rsi, handler as i64);
        a.hypercall(4);
        a.jmp(lay::guest_text(0) + 3 * 8);
    });
    run_hypercalls(&mut plat, 1);
    let installed = plat
        .machine
        .mem
        .peek(lay::domain_addr(0) + lay::domain::TRAP_HANDLER * 8)
        .unwrap();
    assert_eq!(installed, handler);
}

#[test]
fn stack_switch_updates_guest_rsp() {
    let new_rsp = lay::guest_data(0) + 0x8000;
    let mut plat = platform_with_guest(move |a| {
        a.movi(Reg::Rdi, new_rsp as i64);
        a.hypercall(3);
        a.jmp(lay::guest_text(0) + 2 * 8);
    });
    run_hypercalls(&mut plat, 1);
    assert_eq!(
        plat.machine.cpu(0).rsp(),
        new_rsp,
        "guest resumed on the new stack"
    );
}

#[test]
fn multicall_accumulates_work_units() {
    let args = lay::guest_data(0) + 0x100;
    let mut plat = platform_with_guest(move |a| {
        // Fill the batch with known sub-call numbers first.
        a.movi(Reg::R9, args as i64);
        a.movi(Reg::R8, 5);
        a.store(Reg::R9, 0, Reg::R8);
        a.store(Reg::R9, 8, Reg::R8);
        a.movi(Reg::Rdi, args as i64);
        a.movi(Reg::Rsi, 2);
        a.hypercall(13);
        a.jmp(lay::guest_text(0) + 7 * 8);
    });
    run_hypercalls(&mut plat, 1);
    let work = plat
        .machine
        .mem
        .peek(lay::pcpu_addr(0) + lay::pcpu::WORK * 8)
        .unwrap();
    assert_eq!(work, 10, "two sub-calls of 5 work units each");
}

#[test]
fn sched_op_compat_aliases_sched_op() {
    // Hypercall 6 must behave exactly like hypercall 29 (yield).
    let run = |nr: u8| {
        let mut plat = platform_with_guest(move |a| {
            a.movi(Reg::Rdi, 0);
            a.hypercall(nr);
            a.jmp(lay::guest_text(0) + 2 * 8);
        });
        run_hypercalls(&mut plat, 1);
        guest_rax(&plat.machine)
    };
    assert_eq!(run(6), run(29));
}

#[test]
fn hvm_op_param_round_trip() {
    let mut plat = platform_with_guest(|a| {
        a.movi(Reg::Rdi, 0); // set
        a.movi(Reg::Rsi, 3); // param 3
        a.movi(Reg::Rdx, 0xABCD);
        a.hypercall(34);
        a.movi(Reg::Rdi, 1); // get
        a.movi(Reg::Rsi, 3);
        a.hypercall(34);
        a.jmp(lay::guest_text(0) + 7 * 8);
    });
    run_hypercalls(&mut plat, 2);
    assert_eq!(guest_rax(&plat.machine), 0xABCD);
}

#[test]
fn get_debugreg_reads_back_set_debugreg() {
    let mut plat = platform_with_guest(|a| {
        a.movi(Reg::Rdi, 2);
        a.movi(Reg::Rsi, 0x5150);
        a.hypercall(8); // set dr2
        a.movi(Reg::Rdi, 2);
        a.hypercall(9); // get dr2
        a.jmp(lay::guest_text(0) + 6 * 8);
    });
    run_hypercalls(&mut plat, 2);
    assert_eq!(guest_rax(&plat.machine), 0x5150);
}
