//! Behavioural tests for the exception and interrupt paths: trap-and-emulate
//! (#GP → CPUID/RDTSC), guest trap delivery + iret, page-fault forwarding,
//! device IRQ routing and the softirq/scheduler machinery.

use sim_asm::Asm;
use sim_machine::{ExitReason, Machine, Reg, Vector, VirtMode};
use xen_like::layout as lay;
use xen_like::platform::NullMonitor;
use xen_like::{DomainSpec, Platform, Topology};

fn platform_with_guest(program: impl FnOnce(&mut Asm)) -> Platform {
    let topo = Topology {
        nr_cpus: 1,
        domains: vec![DomainSpec { nr_vcpus: 1 }],
        virt_mode: VirtMode::Para,
        seed: 23,
        cycle_model: Default::default(),
    };
    let (mut plat, _) = Platform::new(topo);
    let base = lay::guest_text(0);
    let mut a = Asm::new(base);
    program(&mut a);
    let img = a.assemble().expect("guest assembles");
    plat.machine.mem.load_image(base, &img.words).unwrap();
    plat
}

fn run_until(plat: &mut Platform, pred: impl Fn(ExitReason) -> bool, max: usize) {
    if !plat.is_booted(0) {
        plat.boot(0, &mut NullMonitor);
    }
    for _ in 0..max {
        let act = plat.run_activation(0, &mut NullMonitor);
        assert!(act.outcome.is_healthy(), "died: {:?}", act.outcome);
        if pred(act.reason) {
            return;
        }
    }
    panic!("condition never reached");
}

#[test]
fn pv_rdtsc_emulation_applies_time_offset() {
    let mut plat = platform_with_guest(|a| {
        a.rdtsc(); // traps via #GP in PV mode
        a.label("spin");
        a.jmp("spin");
    });
    // Give the VCPU a recognizable virtual-time offset.
    let off = 0x10_0000u64;
    plat.machine
        .mem
        .poke(lay::vcpu_addr(0) + lay::vcpu::TIME_OFFSET * 8, off)
        .unwrap();
    run_until(
        &mut plat,
        |r| r == ExitReason::Exception(Vector::GeneralProtection),
        10,
    );
    let lo = plat.machine.cpu(0).get(Reg::Rax);
    let hi = plat.machine.cpu(0).get(Reg::Rdx);
    let tsc = (hi << 32) | lo;
    assert!(
        tsc >= off,
        "emulated tsc {tsc:#x} must include the offset {off:#x}"
    );
    // The shared-info TSC stamp was written (guest-visible time data).
    let stamp = plat
        .machine
        .mem
        .peek(lay::shared_addr(0) + lay::shared::TSC_STAMP * 8)
        .unwrap();
    assert_ne!(stamp, 0);
}

#[test]
fn pv_cpuid_distinct_leaves_give_distinct_outputs() {
    let mut plat = platform_with_guest(|a| {
        a.movi(Reg::Rax, 1);
        a.cpuid();
        a.mov(Reg::R13, Reg::Rax);
        a.movi(Reg::Rax, 2);
        a.cpuid();
        a.label("spin");
        a.jmp("spin");
    });
    plat.boot(0, &mut NullMonitor);
    let mut gp = 0;
    for _ in 0..20 {
        let act = plat.run_activation(0, &mut NullMonitor);
        assert!(act.outcome.is_healthy());
        if act.reason == ExitReason::Exception(Vector::GeneralProtection) {
            gp += 1;
            if gp == 2 {
                break;
            }
        }
    }
    assert_eq!(gp, 2, "both cpuid instructions trapped");
    let leaf1 = plat.machine.cpu(0).get(Reg::R13);
    let leaf2 = plat.machine.cpu(0).get(Reg::Rax);
    assert_eq!(leaf1, Machine::cpuid_model(1)[0]);
    assert_eq!(leaf2, Machine::cpuid_model(2)[0]);
    assert_ne!(leaf1, leaf2);
}

#[test]
fn guest_divide_error_is_delivered_and_counted() {
    let mut plat = platform_with_guest(|a| {
        // Register a trap handler that counts and irets past the fault.
        a.lea(Reg::Rdi, "handler");
        a.lea(Reg::Rsi, "handler");
        a.hypercall(4);
        a.movi(Reg::Rax, 10);
        a.movi(Reg::Rbx, 0);
        a.div(Reg::Rax, Reg::Rbx); // #DE
        a.movi(Reg::R13, 0x600D); // reached after handler skips the div
        a.label("spin");
        a.jmp("spin");
        a.label("handler");
        a.movi(Reg::R9, (lay::guest_data(0) + 16 * 8) as i64);
        a.load(Reg::R8, Reg::R9, 0);
        a.addi(Reg::R8, 1);
        a.store(Reg::R9, 0, Reg::R8);
        // Skip the faulting instruction in the iret frame.
        a.load(Reg::R8, Reg::Rsp, 0);
        a.addi(Reg::R8, 8);
        a.store(Reg::Rsp, 0, Reg::R8);
        a.hypercall(23);
    });
    run_until(&mut plat, |r| r == ExitReason::Hypercall(23), 20);
    // Let the guest resume past the fault.
    for _ in 0..5 {
        plat.run_activation(0, &mut NullMonitor);
        if plat.machine.cpu(0).get(Reg::R13) == 0x600D {
            break;
        }
    }
    assert_eq!(
        plat.machine.cpu(0).get(Reg::R13),
        0x600D,
        "guest survived the #DE"
    );
    let traps = plat.machine.mem.peek(lay::guest_data(0) + 16 * 8).unwrap();
    assert_eq!(traps, 1, "exactly one trap delivered");
    // The hypervisor recorded the delivered vector.
    let last = plat
        .machine
        .mem
        .peek(lay::vcpu_addr(0) + lay::vcpu::LAST_TRAP * 8)
        .unwrap();
    assert_eq!(last, Vector::DivideError as u64);
}

#[test]
fn guest_page_fault_is_forwarded_not_fixed_up() {
    let mut plat = platform_with_guest(|a| {
        a.lea(Reg::Rdi, "handler");
        a.lea(Reg::Rsi, "handler");
        a.hypercall(4);
        // Load from an unmapped (but in-window) address.
        a.movi(Reg::Rbx, (lay::guest_window(0) + 0x10_0000) as i64);
        a.load(Reg::Rax, Reg::Rbx, 0);
        a.movi(Reg::R13, 0x60);
        a.label("spin");
        a.jmp("spin");
        a.label("handler");
        a.load(Reg::R8, Reg::Rsp, 0);
        a.addi(Reg::R8, 8);
        a.store(Reg::Rsp, 0, Reg::R8);
        a.hypercall(23);
    });
    run_until(
        &mut plat,
        |r| r == ExitReason::Exception(Vector::PageFault),
        10,
    );
    let fixups = plat.machine.mem.peek(lay::domain_addr(0) + 38 * 8).unwrap();
    assert_eq!(fixups, 1, "fault accounted");
}

#[test]
fn device_irq_sets_event_channel_and_wakes_vcpu() {
    let mut plat = platform_with_guest(|a| {
        a.label("spin");
        a.movi(Reg::Rbx, 1);
        a.jmp("spin");
    });
    plat.boot(0, &mut NullMonitor);
    plat.run_activation(0, &mut NullMonitor); // settle
                                              // Inject IRQ 5 directly.
    let ev = plat.machine.force_exit(0, ExitReason::DeviceInterrupt(5));
    assert!(matches!(ev, sim_machine::Event::VmExit(_)));
    let act = plat.run_handler(0, ExitReason::DeviceInterrupt(5), 0, &mut NullMonitor);
    assert!(act.outcome.is_healthy());
    let chan = plat.machine.mem.peek(lay::evtchn_addr(0) + 5 * 8).unwrap();
    assert_eq!(
        chan & lay::evtchn::PENDING_BIT,
        1,
        "irq 5 pending on port 5"
    );
    let irqs = plat
        .machine
        .mem
        .peek(lay::global_addr(lay::global::IRQ_COUNT))
        .unwrap();
    assert!(irqs >= 1);
}

#[test]
fn softirq_exit_runs_scheduler() {
    let mut plat = platform_with_guest(|a| {
        a.label("spin");
        a.movi(Reg::Rbx, 1);
        a.jmp("spin");
    });
    plat.boot(0, &mut NullMonitor);
    plat.run_activation(0, &mut NullMonitor);
    let ticks0 = plat
        .machine
        .mem
        .peek(lay::global_addr(lay::global::SCHED_TICKS))
        .unwrap();
    // Raise the SCHED softirq by hand; the next activation must drain it.
    plat.machine
        .mem
        .poke(
            lay::pcpu_addr(0) + lay::pcpu::SOFTIRQ_PENDING * 8,
            lay::softirq::SCHED,
        )
        .unwrap();
    let act = plat.run_activation(0, &mut NullMonitor);
    assert_eq!(
        act.reason,
        ExitReason::Softirq,
        "pending softirq preempts the guest"
    );
    let ticks1 = plat
        .machine
        .mem
        .peek(lay::global_addr(lay::global::SCHED_TICKS))
        .unwrap();
    assert_eq!(ticks1, ticks0 + 1, "schedule() ran once");
    let pending = plat
        .machine
        .mem
        .peek(lay::pcpu_addr(0) + lay::pcpu::SOFTIRQ_PENDING * 8)
        .unwrap();
    assert_eq!(pending, 0, "softirq bits drained");
}

#[test]
fn apic_timer_updates_all_time_pages() {
    let mut plat = platform_with_guest(|a| {
        a.label("spin");
        a.movi(Reg::Rbx, 1);
        a.jmp("spin");
    });
    plat.irq.tick_period = 30_000;
    plat.boot(0, &mut NullMonitor);
    run_until(&mut plat, |r| r == ExitReason::ApicInterrupt(0), 200);
    let sh = lay::shared_addr(0);
    let version = plat
        .machine
        .mem
        .peek(sh + lay::shared::TIME_VERSION * 8)
        .unwrap();
    assert!(
        version >= 2 && version % 2 == 0,
        "stable even time version, got {version}"
    );
    let systime = plat
        .machine
        .mem
        .peek(sh + lay::shared::SYSTEM_TIME * 8)
        .unwrap();
    assert!(systime >= 1000, "system time advanced: {systime}");
}

#[test]
fn hvm_mode_io_exit_is_emulated() {
    let topo = Topology {
        nr_cpus: 1,
        domains: vec![DomainSpec { nr_vcpus: 1 }],
        virt_mode: VirtMode::Hvm,
        seed: 29,
        cycle_model: Default::default(),
    };
    let (mut plat, _) = Platform::new(topo);
    let base = lay::guest_text(0);
    let mut a = Asm::new(base);
    a.movi(Reg::Rax, 0x41);
    a.out(0x3f8, Reg::Rax);
    a.inp(Reg::Rax, 0x3f8);
    a.label("spin");
    a.jmp("spin");
    let img = a.assemble().unwrap();
    plat.machine.mem.load_image(base, &img.words).unwrap();
    plat.boot(0, &mut NullMonitor);
    let out0 = plat.machine.devices.out_count;
    let mut seen_write = false;
    let mut seen_read = false;
    for _ in 0..20 {
        let act = plat.run_activation(0, &mut NullMonitor);
        assert!(act.outcome.is_healthy());
        match act.reason {
            ExitReason::IoInstruction { write: true, .. } => seen_write = true,
            ExitReason::IoInstruction { write: false, .. } => seen_read = true,
            _ => {}
        }
        if seen_write && seen_read {
            break;
        }
    }
    assert!(seen_write && seen_read, "both I/O exits observed");
    assert!(
        plat.machine.devices.out_count > out0,
        "write reached the device model"
    );
}
