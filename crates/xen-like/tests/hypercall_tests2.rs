//! Behavioural tests for the remaining hypercalls (part 2): trap tables,
//! MMU batches, descriptor/segment state, iret, scheduling variants and the
//! control-plane calls.

use sim_asm::Asm;
use sim_machine::{ExitReason, Reg, VirtMode};
use xen_like::layout as lay;
use xen_like::platform::NullMonitor;
use xen_like::{DomainSpec, Platform, Topology};

fn platform_with_guest(nr_doms: usize, program: impl FnOnce(&mut Asm)) -> Platform {
    let topo = Topology {
        nr_cpus: 1,
        domains: vec![DomainSpec { nr_vcpus: 1 }; nr_doms],
        virt_mode: VirtMode::Para,
        seed: 41,
        cycle_model: Default::default(),
    };
    let (mut plat, _) = Platform::new(topo);
    let mut a = Asm::new(lay::guest_text(0));
    program(&mut a);
    let img = a.assemble().expect("guest assembles");
    plat.machine
        .mem
        .load_image(lay::guest_text(0), &img.words)
        .unwrap();
    plat
}

fn run_hypercalls(plat: &mut Platform, n: usize) {
    plat.boot(0, &mut NullMonitor);
    let mut seen = 0;
    for _ in 0..300 {
        let act = plat.run_activation(0, &mut NullMonitor);
        assert!(act.outcome.is_healthy(), "died: {:?}", act.outcome);
        if matches!(act.reason, ExitReason::Hypercall(_)) {
            seen += 1;
            if seen >= n {
                return;
            }
        }
    }
    panic!("guest never executed {n} hypercalls");
}

#[test]
fn set_trap_table_installs_last_valid_entry() {
    let table = lay::guest_data(0) + 0x500 * 8;
    let handler_a = lay::guest_text(0) + 0x200;
    let handler_b = lay::guest_text(0) + 0x300;
    let mut plat = platform_with_guest(1, move |a| {
        a.movi(Reg::Rdi, table as i64);
        a.hypercall(0);
        a.jmp(lay::guest_text(0) + 2 * 8);
    });
    // Entries 0 and 5 populated; the rest zero (skipped).
    plat.machine.mem.poke(table, handler_a).unwrap();
    plat.machine.mem.poke(table + 5 * 8, handler_b).unwrap();
    run_hypercalls(&mut plat, 1);
    let installed = plat
        .machine
        .mem
        .peek(lay::domain_addr(0) + lay::domain::TRAP_HANDLER * 8)
        .unwrap();
    assert_eq!(installed, handler_b, "last non-zero entry wins");
}

#[test]
fn mmu_update_counts_valid_requests_only() {
    let reqs = lay::guest_data(0) + 0x600 * 8;
    let mut plat = platform_with_guest(1, move |a| {
        a.movi(Reg::Rdi, reqs as i64);
        a.movi(Reg::Rsi, 3);
        a.hypercall(1);
        a.jmp(lay::guest_text(0) + 3 * 8);
    });
    // Two valid in-window targets, one foreign (hypervisor!) target.
    plat.machine
        .mem
        .poke(reqs, lay::guest_data(0) + 0x100)
        .unwrap();
    plat.machine
        .mem
        .poke(reqs + 8, lay::guest_data(0) + 0x200)
        .unwrap();
    plat.machine.mem.poke(reqs + 16, lay::GLOBAL_BASE).unwrap();
    run_hypercalls(&mut plat, 1);
    assert_eq!(
        plat.machine.cpu(0).get(Reg::Rax),
        2,
        "only in-window updates applied"
    );
    let updates = plat
        .machine
        .mem
        .peek(lay::domain_addr(0) + lay::domain::MMU_UPDATES * 8)
        .unwrap();
    assert_eq!(updates, 2);
}

#[test]
fn fpu_taskswitch_toggles_the_flag() {
    let mut plat = platform_with_guest(1, |a| {
        a.movi(Reg::Rdi, 1);
        a.hypercall(5);
        a.jmp(lay::guest_text(0) + 2 * 8);
    });
    run_hypercalls(&mut plat, 1);
    let flag = plat.machine.mem.peek(lay::vcpu_addr(0) + 30 * 8).unwrap();
    assert_eq!(flag, 1);
}

#[test]
fn update_descriptor_validates_and_bumps_mmu_counter() {
    let maddr = lay::guest_data(0) + 0x40;
    let mut plat = platform_with_guest(1, move |a| {
        a.movi(Reg::Rdi, maddr as i64);
        a.movi(Reg::Rsi, 0xC0DE);
        a.hypercall(10);
        a.jmp(lay::guest_text(0) + 3 * 8);
    });
    run_hypercalls(&mut plat, 1);
    assert_eq!(plat.machine.cpu(0).get(Reg::Rax), 0);
    let desc = plat.machine.mem.peek(lay::domain_addr(0) + 34 * 8).unwrap();
    assert_eq!(desc, 0xC0DE);
}

#[test]
fn iret_restores_a_hand_built_frame() {
    let resume_at = lay::guest_text(0) + 0x100;
    let mut plat = platform_with_guest(1, move |a| {
        // Build an iret frame by hand: rip, rflags, rax.
        a.subi(Reg::Rsp, 24);
        a.movi(Reg::R8, resume_at as i64);
        a.store(Reg::Rsp, 0, Reg::R8);
        a.movi(Reg::R8, 0x40); // ZF set
        a.store(Reg::Rsp, 8, Reg::R8);
        a.movi(Reg::R8, 0x1234);
        a.store(Reg::Rsp, 16, Reg::R8);
        a.hypercall(23);
        a.hlt(); // never reached: iret lands at resume_at
    });
    // Place a marker instruction at the resume point.
    let mut marker = Asm::new(resume_at);
    marker.movi(Reg::R13, 0x0D0E);
    marker.label("spin");
    marker.jmp("spin");
    let img = marker.assemble().unwrap();
    plat.machine.mem.load_image(resume_at, &img.words).unwrap();

    run_hypercalls(&mut plat, 1);
    // Run a few more steps for the guest to hit the marker.
    for _ in 0..3 {
        plat.run_activation(0, &mut NullMonitor);
        if plat.machine.cpu(0).get(Reg::R13) == 0x0D0E {
            break;
        }
    }
    let c = plat.machine.cpu(0);
    assert_eq!(c.get(Reg::R13), 0x0D0E, "resumed at the frame's rip");
    assert_eq!(c.get(Reg::Rax), 0x1234, "rax restored from the frame");
}

#[test]
fn set_segment_base_round_trips_through_vcpu_words() {
    let base = lay::guest_data(0) + 0x2000;
    let mut plat = platform_with_guest(1, move |a| {
        a.movi(Reg::Rdi, 2); // segment slot 2
        a.movi(Reg::Rsi, base as i64);
        a.hypercall(25);
        a.jmp(lay::guest_text(0) + 3 * 8);
    });
    run_hypercalls(&mut plat, 1);
    let stored = plat
        .machine
        .mem
        .peek(lay::vcpu_addr(0) + (40 + 2) * 8)
        .unwrap();
    assert_eq!(stored, base);
}

#[test]
fn mmuext_op_pin_and_unpin_balance() {
    let ops = lay::guest_data(0) + 0x700 * 8;
    let mut plat = platform_with_guest(1, move |a| {
        a.movi(Reg::Rdi, ops as i64);
        a.movi(Reg::Rsi, 4);
        a.hypercall(26);
        a.jmp(lay::guest_text(0) + 3 * 8);
    });
    // ops: pin(0), pin(0), unpin(3), pin(0) → net +2
    for (i, op) in [0u64, 0, 3, 0].iter().enumerate() {
        plat.machine.mem.poke(ops + (i as u64) * 8, *op).unwrap();
    }
    run_hypercalls(&mut plat, 1);
    let updates = plat
        .machine
        .mem
        .peek(lay::domain_addr(0) + lay::domain::MMU_UPDATES * 8)
        .unwrap();
    assert_eq!(updates, 2, "3 pins - 1 unpin");
}

#[test]
fn xsm_op_allows_dom0_everything() {
    let mut plat = platform_with_guest(1, |a| {
        a.movi(Reg::Rdi, 7); // op in the privileged range
        a.hypercall(27);
        a.jmp(lay::guest_text(0) + 2 * 8);
    });
    run_hypercalls(&mut plat, 1);
    // Domain 0 is the control domain: allowed.
    assert_eq!(plat.machine.cpu(0).get(Reg::Rax), 0);
}

#[test]
fn nmi_op_and_callback_op_register_handlers() {
    let cb = lay::guest_text(0) + 0x400;
    let mut plat = platform_with_guest(1, move |a| {
        a.movi(Reg::Rdi, cb as i64);
        a.hypercall(28); // nmi_op
        a.movi(Reg::Rdi, 1); // non-event callback type
        a.movi(Reg::Rsi, cb as i64);
        a.hypercall(30); // callback_op
        a.jmp(lay::guest_text(0) + 5 * 8);
    });
    run_hypercalls(&mut plat, 2);
    assert_eq!(
        plat.machine.mem.peek(lay::domain_addr(0) + 36 * 8).unwrap(),
        cb
    );
    assert_eq!(
        plat.machine.mem.peek(lay::domain_addr(0) + 37 * 8).unwrap(),
        cb
    );
}

#[test]
fn sched_op_poll_scans_event_channels() {
    let mut plat = platform_with_guest(1, |a| {
        a.movi(Reg::Rdi, 0); // send on port 2 first
        a.movi(Reg::Rsi, 2);
        a.hypercall(32);
        a.movi(Reg::Rdi, 3); // sched_op poll
        a.hypercall(29);
        a.jmp(lay::guest_text(0) + 5 * 8);
    });
    run_hypercalls(&mut plat, 2);
    // Poll sums the pending bits: at least port 2's.
    assert!(plat.machine.cpu(0).get(Reg::Rax) >= 1);
}

#[test]
fn domctl_pause_and_unpause_toggle_runnable() {
    // Dom0 pauses dom1's VCPU and unpauses it again.
    let mut plat = platform_with_guest(2, |a| {
        a.movi(Reg::Rdi, 0); // pause
        a.movi(Reg::Rsi, 1); // domain 1
        a.hypercall(36);
        a.movi(Reg::Rdi, 1); // unpause
        a.movi(Reg::Rsi, 1);
        a.hypercall(36);
        a.jmp(lay::guest_text(0) + 6 * 8);
    });
    plat.boot(0, &mut NullMonitor);
    let dom1_vcpu = lay::vcpu_addr(lay::MAX_VCPUS_PER_DOM);
    let mut saw_paused = false;
    for _ in 0..300 {
        let act = plat.run_activation(0, &mut NullMonitor);
        assert!(act.outcome.is_healthy());
        let runnable = plat
            .machine
            .mem
            .peek(dom1_vcpu + lay::vcpu::RUNNABLE * 8)
            .unwrap();
        if runnable == 0 {
            saw_paused = true;
        }
        if saw_paused && runnable == 1 {
            return; // paused then unpaused
        }
    }
    panic!("pause/unpause cycle not observed (saw_paused={saw_paused})");
}

#[test]
fn platform_op_publishes_wallclock_to_shared_info() {
    let mut plat = platform_with_guest(1, |a| {
        a.hypercall(7);
        a.jmp(lay::guest_text(0) + 2 * 8);
    });
    run_hypercalls(&mut plat, 1);
    let wc = plat
        .machine
        .mem
        .peek(lay::shared_addr(0) + lay::shared::WALLCLOCK * 8)
        .unwrap();
    assert!(wc >= 1, "wallclock copied to the shared page: {wc}");
}

#[test]
fn xenoprof_op_fills_sample_buffer() {
    let mut plat = platform_with_guest(1, |a| {
        a.hypercall(31);
        a.jmp(lay::guest_text(0) + 2 * 8);
    });
    run_hypercalls(&mut plat, 1);
    // Eight samples written at domain words 40..47; the last is a TSC and
    // must be non-zero.
    let last = plat.machine.mem.peek(lay::domain_addr(0) + 47 * 8).unwrap();
    assert_ne!(last, 0);
}

#[test]
fn kexec_op_is_enosys() {
    let mut plat = platform_with_guest(1, |a| {
        a.hypercall(37);
        a.jmp(lay::guest_text(0) + 2 * 8);
    });
    run_hypercalls(&mut plat, 1);
    assert_eq!(plat.machine.cpu(0).get(Reg::Rax) as i64, -38);
}

#[test]
fn update_va_mapping_otherdomain_reaches_target_window() {
    let target = lay::guest_data(1) + 0x800;
    let mut plat = platform_with_guest(2, move |a| {
        a.movi(Reg::Rdi, target as i64);
        a.movi(Reg::Rsi, 0xF00D);
        a.movi(Reg::Rdx, 1); // domid 1
        a.hypercall(22);
        a.jmp(lay::guest_text(0) + 4 * 8);
    });
    run_hypercalls(&mut plat, 1);
    assert_eq!(plat.machine.mem.peek(target).unwrap(), 0xF00D);
    let updates = plat
        .machine
        .mem
        .peek(lay::domain_addr(1) + lay::domain::MMU_UPDATES * 8)
        .unwrap();
    assert_eq!(updates, 1, "foreign domain's counter bumped");
}

#[test]
fn set_gdt_caches_frames_in_domain_scratch() {
    let frames = lay::guest_data(0) + 0x900 * 8;
    let mut plat = platform_with_guest(1, move |a| {
        a.movi(Reg::Rdi, frames as i64);
        a.movi(Reg::Rsi, 2);
        a.hypercall(2);
        a.jmp(lay::guest_text(0) + 3 * 8);
    });
    plat.machine.mem.poke(frames, 0xAAA).unwrap();
    plat.machine.mem.poke(frames + 8, 0xBBB).unwrap();
    run_hypercalls(&mut plat, 1);
    // Slot 32 + (1 % 8) holds the second frame.
    let cached = plat
        .machine
        .mem
        .peek(lay::domain_addr(0) + (32 + 1) * 8)
        .unwrap();
    assert_eq!(cached, 0xBBB);
}
