//! Entry/return stub correctness: the save/restore machinery must be a
//! perfect round trip for guest register state, and the scheduler must
//! rotate fairly — the properties the fault-injection campaign perturbs.

use sim_asm::Asm;
use sim_machine::{ExitReason, Mode, Reg, VirtMode};
use xen_like::layout as lay;
use xen_like::platform::NullMonitor;
use xen_like::{DomainSpec, Platform, Topology};

fn guest_with_all_registers_distinct() -> Platform {
    let topo = Topology {
        nr_cpus: 1,
        domains: vec![DomainSpec { nr_vcpus: 1 }],
        virt_mode: VirtMode::Para,
        seed: 77,
        cycle_model: Default::default(),
    };
    let (mut plat, _) = Platform::new(topo);
    let base = lay::guest_text(0);
    let mut a = Asm::new(base);
    // Give every register (except rsp, which must stay a valid stack) a
    // distinctive value, then hypercall and spin.
    let regs = [
        Reg::Rax,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rbx,
        Reg::Rbp,
        Reg::Rsi,
        Reg::Rdi,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];
    for (i, r) in regs.iter().enumerate() {
        a.movi(*r, 0x1111 * (i as i64 + 1));
    }
    a.hypercall(21); // vm_assist: does not touch guest registers besides rax
    a.label("spin");
    a.jmp("spin");
    let img = a.assemble().unwrap();
    plat.machine.mem.load_image(base, &img.words).unwrap();
    plat
}

/// Every guest register except RAX (the hypercall return) must survive a
/// full exit → handler → entry round trip bit-exact.
#[test]
fn stubs_round_trip_all_guest_registers() {
    let mut plat = guest_with_all_registers_distinct();
    plat.boot(0, &mut NullMonitor);
    // Run until the vm_assist hypercall completes.
    for _ in 0..20 {
        let act = plat.run_activation(0, &mut NullMonitor);
        assert!(act.outcome.is_healthy());
        if act.reason == ExitReason::Hypercall(21) {
            break;
        }
    }
    let c = plat.machine.cpu(0);
    let expect = [
        (Reg::Rcx, 2u64),
        (Reg::Rdx, 3),
        (Reg::Rbx, 4),
        (Reg::Rbp, 5),
        (Reg::Rsi, 6),
        (Reg::Rdi, 7),
        (Reg::R8, 8),
        (Reg::R9, 9),
        (Reg::R10, 10),
        (Reg::R11, 11),
        (Reg::R12, 12),
        (Reg::R13, 13),
        (Reg::R14, 14),
        (Reg::R15, 15),
    ];
    for (r, k) in expect {
        assert_eq!(c.get(r), 0x1111 * k, "register {r} corrupted by the stubs");
    }
    assert_eq!(c.get(Reg::Rax), 0, "vm_assist returns 0 in rax");
    assert!(matches!(c.mode, Mode::Guest { dom: 0, .. }));
}

/// Two runnable VCPUs on one CPU must both receive time slices under the
/// round-robin scheduler (driven by SCHED softirqs).
#[test]
fn scheduler_shares_cpu_between_vcpus() {
    let topo = Topology {
        nr_cpus: 1,
        domains: vec![DomainSpec { nr_vcpus: 1 }, DomainSpec { nr_vcpus: 1 }],
        virt_mode: VirtMode::Para,
        seed: 5,
        cycle_model: Default::default(),
    };
    let (mut plat, _) = Platform::new(topo);
    for d in 0..2 {
        let base = lay::guest_text(d);
        let mut a = Asm::new(base);
        // Each guest counts bursts into its own data word and yields.
        a.label("loop");
        a.movi(Reg::R9, (lay::guest_data(d) + 17 * 8) as i64);
        a.load(Reg::R8, Reg::R9, 0);
        a.addi(Reg::R8, 1);
        a.store(Reg::R9, 0, Reg::R8);
        a.movi(Reg::Rdi, 0);
        a.hypercall(29); // sched_op yield
        a.jmp("loop");
        let img = a.assemble().unwrap();
        plat.machine.mem.load_image(base, &img.words).unwrap();
    }
    plat.boot(0, &mut NullMonitor);
    for _ in 0..200 {
        assert!(plat
            .run_activation(0, &mut NullMonitor)
            .outcome
            .is_healthy());
    }
    let count0 = plat.machine.mem.peek(lay::guest_data(0) + 17 * 8).unwrap();
    let count1 = plat.machine.mem.peek(lay::guest_data(1) + 17 * 8).unwrap();
    assert!(count0 > 5, "dom0 starved: {count0}");
    assert!(count1 > 5, "dom1 starved: {count1}");
    let ratio = count0 as f64 / count1 as f64;
    assert!(
        (0.3..3.4).contains(&ratio),
        "unfair split: {count0} vs {count1}"
    );
}

/// The idle path engages when no VCPU is runnable, and the CPU comes back
/// when an interrupt wakes a VCPU.
#[test]
fn idle_and_wakeup_cycle() {
    let topo = Topology {
        nr_cpus: 1,
        domains: vec![DomainSpec { nr_vcpus: 1 }],
        virt_mode: VirtMode::Para,
        seed: 13,
        cycle_model: Default::default(),
    };
    let (mut plat, _) = Platform::new(topo);
    let base = lay::guest_text(0);
    let mut a = Asm::new(base);
    // Arm a near-future timer, then block.
    a.movi(Reg::Rdi, 3); // deadline at wallclock tick 3
    a.hypercall(15);
    a.movi(Reg::Rdi, 1); // sched_op block
    a.hypercall(29);
    a.movi(Reg::R13, 0xA3ACE);
    a.label("spin");
    a.jmp("spin");
    let img = a.assemble().unwrap();
    plat.machine.mem.load_image(base, &img.words).unwrap();
    plat.irq.tick_period = 50_000;
    plat.boot(0, &mut NullMonitor);
    let mut went_idle = false;
    for _ in 0..600 {
        let act = plat.run_activation(0, &mut NullMonitor);
        assert!(act.outcome.is_healthy(), "died: {:?}", act.outcome);
        if plat.is_idle(0) {
            went_idle = true;
        }
        if went_idle && !plat.is_idle(0) {
            // Woken up again: the timer fired and the scheduler picked the
            // VCPU back up.
            return;
        }
    }
    panic!("idle/wake cycle never completed (went_idle={went_idle})");
}
