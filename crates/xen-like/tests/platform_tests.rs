//! End-to-end platform tests: boot the hypervisor, run a real guest, and
//! drive full activations (VM exit → handler → VM entry).

use sim_asm::Asm;
use sim_machine::{ExitReason, Machine, Mode, Reg, Vector, VirtMode};
use xen_like::layout as lay;
use xen_like::platform::{ActivationOutcome, NullMonitor};
use xen_like::{DomainSpec, Platform, Topology};

/// A guest that loops: ALU work, xen_version hypercall, evtchn send, cpuid.
fn load_pv_guest(m: &mut Machine, dom: usize) {
    let base = lay::guest_text(dom);
    let mut a = Asm::new(base);
    a.global("guest_entry");
    a.movi(Reg::Rbx, 0); // iteration counter
    a.label("loop");
    // Some ALU work.
    a.movi(Reg::Rcx, 7);
    a.label("work");
    a.addi(Reg::Rbx, 3);
    a.subi(Reg::Rcx, 1);
    a.cmpi(Reg::Rcx, 0);
    a.jne("work");
    // xen_version hypercall.
    a.hypercall(17);
    // event_channel_op send on port 5.
    a.movi(Reg::Rdi, 0); // cmd = send
    a.movi(Reg::Rsi, 5); // port
    a.hypercall(32);
    // cpuid with leaf 2 (PV: traps via #GP).
    a.movi(Reg::Rax, 2);
    a.cpuid();
    a.jmp("loop");
    let img = a.assemble().unwrap();
    m.mem.load_image(base, &img.words).unwrap();
}

fn pv_platform(doms: usize) -> Platform {
    let topo = Topology {
        nr_cpus: 1,
        domains: vec![DomainSpec { nr_vcpus: 1 }; doms],
        virt_mode: VirtMode::Para,
        seed: 99,
        cycle_model: Default::default(),
    };
    let (mut p, _img) = Platform::new(topo);
    for d in 0..doms {
        load_pv_guest(&mut p.machine, d);
    }
    p
}

#[test]
fn boot_enters_first_guest() {
    let mut p = pv_platform(2);
    let out = p.boot(0, &mut NullMonitor);
    assert_eq!(out, ActivationOutcome::Resumed);
    let c = p.machine.cpu(0);
    assert_eq!(c.mode, Mode::Guest { dom: 0, vcpu: 0 });
    assert_eq!(c.rip, lay::guest_text(0));
}

#[test]
fn hypercall_xen_version_returns_to_guest() {
    let mut p = pv_platform(1);
    p.boot(0, &mut NullMonitor);
    // First activation should be the xen_version hypercall (the guest's
    // first exit) unless a timer fires first — run until we see it.
    for _ in 0..50 {
        let act = p.run_activation(0, &mut NullMonitor);
        assert!(
            act.outcome.is_healthy(),
            "unexpected outcome {:?}",
            act.outcome
        );
        if act.reason == ExitReason::Hypercall(17) {
            // After resume the guest's RAX holds the version.
            assert_eq!(p.machine.cpu(0).get(Reg::Rax), 0x0004_0102);
            assert!(act.handler_insns > 0);
            return;
        }
    }
    panic!("xen_version hypercall never observed");
}

#[test]
fn pv_cpuid_is_emulated_to_match_hardware_model() {
    let mut p = pv_platform(1);
    p.boot(0, &mut NullMonitor);
    for _ in 0..100 {
        let act = p.run_activation(0, &mut NullMonitor);
        assert!(act.outcome.is_healthy(), "outcome {:?}", act.outcome);
        if act.reason == ExitReason::Exception(Vector::GeneralProtection) {
            let expect = Machine::cpuid_model(2);
            let c = p.machine.cpu(0);
            assert_eq!(c.get(Reg::Rax), expect[0], "emulated eax");
            assert_eq!(c.get(Reg::Rbx), expect[1], "emulated ebx");
            assert_eq!(c.get(Reg::Rcx), expect[2], "emulated ecx");
            assert_eq!(c.get(Reg::Rdx), expect[3], "emulated edx");
            return;
        }
    }
    panic!("cpuid #GP exit never observed");
}

#[test]
fn evtchn_send_sets_pending_bit() {
    let mut p = pv_platform(1);
    p.boot(0, &mut NullMonitor);
    for _ in 0..50 {
        let act = p.run_activation(0, &mut NullMonitor);
        assert!(act.outcome.is_healthy());
        if act.reason == ExitReason::Hypercall(32) {
            let chan = p.machine.mem.peek(lay::evtchn_addr(0) + 5 * 8).unwrap();
            assert_eq!(chan & lay::evtchn::PENDING_BIT, 1, "port 5 pending");
            return;
        }
    }
    panic!("evtchn hypercall never observed");
}

#[test]
fn timer_tick_advances_wallclock_and_guest_time() {
    let mut p = pv_platform(1);
    p.irq.tick_period = 20_000; // fast ticks for the test
    p.boot(0, &mut NullMonitor);
    let wc0 = p
        .machine
        .mem
        .peek(lay::global_addr(lay::global::WALLCLOCK))
        .unwrap();
    let mut ticks = 0;
    for _ in 0..200 {
        let act = p.run_activation(0, &mut NullMonitor);
        assert!(act.outcome.is_healthy(), "outcome {:?}", act.outcome);
        if act.reason == ExitReason::ApicInterrupt(0) {
            ticks += 1;
            if ticks >= 3 {
                break;
            }
        }
    }
    assert!(ticks >= 3, "timer never fired enough: {ticks}");
    let wc1 = p
        .machine
        .mem
        .peek(lay::global_addr(lay::global::WALLCLOCK))
        .unwrap();
    assert!(wc1 >= wc0 + 3, "wallclock did not advance: {wc0} -> {wc1}");
    // Guest-visible time page updated with an even (stable) version.
    let ver = p
        .machine
        .mem
        .peek(lay::shared_addr(0) + lay::shared::TIME_VERSION * 8)
        .unwrap();
    assert!(
        ver > 0 && ver.is_multiple_of(2),
        "time version protocol broken: {ver}"
    );
    let st = p
        .machine
        .mem
        .peek(lay::shared_addr(0) + lay::shared::SYSTEM_TIME * 8)
        .unwrap();
    assert!(st >= wc1 * 1000 - 2000, "system time not updated: {st}");
}

#[test]
fn thousand_fault_free_activations_stay_healthy() {
    let mut p = pv_platform(2);
    p.irq.tick_period = 50_000;
    p.irq.dev_irq_period = 120_000;
    p.boot(0, &mut NullMonitor);
    let acts = p.run(0, 1000, &mut NullMonitor);
    assert_eq!(
        acts.len(),
        1000,
        "hypervisor died early: {:?}",
        acts.last().unwrap().outcome
    );
    for act in &acts {
        assert!(
            act.outcome.is_healthy(),
            "{:?} failed: {:?}",
            act.reason,
            act.outcome
        );
    }
    // The mix should include hypercalls, exceptions (cpuid) and interrupts.
    let hypercalls = acts
        .iter()
        .filter(|a| matches!(a.reason, ExitReason::Hypercall(_)))
        .count();
    let exceptions = acts
        .iter()
        .filter(|a| matches!(a.reason, ExitReason::Exception(_)))
        .count();
    let irqs = acts
        .iter()
        .filter(|a| {
            matches!(
                a.reason,
                ExitReason::ApicInterrupt(_) | ExitReason::DeviceInterrupt(_)
            )
        })
        .count();
    assert!(hypercalls > 100, "hypercalls: {hypercalls}");
    assert!(exceptions > 50, "exceptions: {exceptions}");
    assert!(irqs > 5, "irqs: {irqs}");
}

#[test]
fn scheduler_round_robins_two_domains_on_one_cpu() {
    let mut p = pv_platform(2);
    p.irq.tick_period = 20_000;
    p.boot(0, &mut NullMonitor);
    let mut seen_dom = [false; 2];
    for _ in 0..2000 {
        let act = p.run_activation(0, &mut NullMonitor);
        assert!(act.outcome.is_healthy(), "outcome {:?}", act.outcome);
        if let Mode::Guest { dom, .. } = p.machine.cpu(0).mode {
            seen_dom[dom as usize] = true;
        }
        if seen_dom[0] && seen_dom[1] {
            return;
        }
    }
    panic!("both domains never ran: {seen_dom:?}");
}

#[test]
fn hvm_guest_cpuid_exits_and_is_emulated() {
    let topo = Topology {
        nr_cpus: 1,
        domains: vec![DomainSpec { nr_vcpus: 1 }],
        virt_mode: VirtMode::Hvm,
        seed: 7,
        cycle_model: Default::default(),
    };
    let (mut p, _img) = Platform::new(topo);
    load_pv_guest(&mut p.machine, 0); // same guest; cpuid now exits directly
    p.boot(0, &mut NullMonitor);
    for _ in 0..100 {
        let act = p.run_activation(0, &mut NullMonitor);
        assert!(act.outcome.is_healthy(), "outcome {:?}", act.outcome);
        if act.reason == ExitReason::CpuidExit {
            let expect = Machine::cpuid_model(2);
            assert_eq!(p.machine.cpu(0).get(Reg::Rax), expect[0]);
            return;
        }
    }
    panic!("cpuid exit never observed");
}

#[test]
fn guest_cycles_accumulate_between_exits() {
    let mut p = pv_platform(1);
    p.boot(0, &mut NullMonitor);
    let act = p.run_activation(0, &mut NullMonitor);
    assert!(act.guest_cycles > 0, "guest ran before the exit");
    assert!(
        act.handler_cycles > act.handler_insns,
        "cycles include memory costs"
    );
}

#[test]
fn microreboot_restore_heals_private_state_and_preserves_guest_state() {
    let mut p = pv_platform(2);
    p.boot(0, &mut NullMonitor);
    for _ in 0..40 {
        let act = p.run_activation(0, &mut NullMonitor);
        assert!(act.outcome.is_healthy());
    }
    // Corrupt hypervisor-private scratch so the reboot has something to heal.
    p.machine.mem.poke(lay::SCRATCH_BASE, 0xDEAD_BEEF).unwrap();
    let preserved = [
        "hv.text",
        "hv.vcpu",
        "hv.domain",
        "hv.evtchn",
        "hv.grant",
        "hv.shared",
        "vmcs",
        "dom0.text",
        "dom0.data",
        "dom1.text",
        "dom1.data",
    ];
    let before: Vec<u64> = preserved
        .iter()
        .map(|n| p.machine.mem.region_digest(n).unwrap())
        .collect();
    let wallclock = p
        .machine
        .mem
        .peek(lay::global_addr(lay::global::WALLCLOCK))
        .unwrap();

    let report = p.microreboot_restore(0);
    assert!(report.words_lost > 0, "reboot discarded no state");
    assert_eq!(report.wallclock_preserved, wallclock);
    assert!(report.cycles >= xen_like::MICROREBOOT_BASE_CYCLES);

    // Preserved regions are untouched.
    for (n, d0) in preserved.iter().zip(&before) {
        assert_eq!(p.machine.mem.region_digest(n).unwrap(), *d0, "{n} changed");
    }
    // Private regions are back to the boot image, except the carried
    // wallclock word in hv.global.
    for name in xen_like::MICROREBOOT_PRIVATE_REGIONS {
        let img = p.boot_image_region(name).unwrap().to_vec();
        let live = p.machine.mem.region_by_name(name).unwrap().words.clone();
        if name == "hv.global" {
            for (i, (l, b)) in live.iter().zip(&img).enumerate() {
                if i as u64 == lay::global::WALLCLOCK {
                    assert_eq!(*l, wallclock, "wallclock not carried across reboot");
                } else {
                    assert_eq!(l, b, "{name}[{i}] not restored");
                }
            }
        } else {
            assert_eq!(live, img, "{name} not restored to boot image");
        }
    }
}

#[test]
fn microreboot_reenters_guest_which_keeps_running() {
    let mut p = pv_platform(2);
    p.boot(0, &mut NullMonitor);
    for _ in 0..20 {
        let act = p.run_activation(0, &mut NullMonitor);
        assert!(act.outcome.is_healthy());
    }
    // Wreck the scheduler run-queue — hypervisor-private damage that only
    // a reboot repairs.
    p.machine.mem.poke(lay::runq::BASE, 0xFFFF_FFFF).unwrap();
    let cycles_before = p.machine.cpu(0).cycles;
    let (report, out) = p.microreboot(0, &mut NullMonitor);
    assert_eq!(out, ActivationOutcome::Resumed);
    assert_eq!(report.cpu, 0);
    assert!(
        p.machine.cpu(0).cycles > cycles_before,
        "reboot cost not charged"
    );
    // The rebooted hypervisor schedules guests exactly as before.
    for _ in 0..40 {
        let act = p.run_activation(0, &mut NullMonitor);
        assert!(
            act.outcome.is_healthy(),
            "post-reboot activation unhealthy: {:?}",
            act.outcome
        );
    }
}
