//! The scheduler: a round-robin pick over the per-CPU run queue with an
//! idle path guarded by the paper's Listing-2 assertion
//! (`ASSERT(is_idle_vcpu(v))` before idling the physical CPU).

use crate::assert_ids;
use crate::layout::{self as lay, pcpu, runq, vcpu};
use sim_asm::Asm;
use sim_machine::Cond;
use sim_machine::Reg::*;

/// Emit `schedule`. Convention: `rbp` = PCPU (preserved); clobbers
/// `rax/rbx/rcx/rdx/r8-r11`. Callers that need the current VCPU afterwards
/// must reload it from the PCPU block.
pub fn emit_schedule(a: &mut Asm) {
    a.global("schedule");
    // Global accounting.
    a.movi(R8, lay::global_addr(lay::global::SCHED_TICKS) as i64);
    a.load(R9, R8, 0);
    a.addi(R9, 1);
    a.store(R8, 0, R9);

    a.load(R8, Rbp, (pcpu::RUNQ_PTR * 8) as i64);
    a.load(R9, R8, (runq::COUNT * 8) as i64);
    a.cmpi(R9, 0);
    a.je("schedule.idle");
    // Boundary assertion: occupancy can never exceed the queue capacity.
    a.assert_le(R9, runq::MAX_ENTRIES as i64, assert_ids::RUNQ_BOUND);
    a.load(R10, R8, (runq::CURSOR * 8) as i64);
    a.movi(R11, 0); // slots scanned
    a.label("schedule.scan");
    a.cmp(R11, R9);
    a.jge("schedule.idle");
    // idx = (cursor + scanned) % count
    a.mov(Rax, R10);
    a.add(Rax, R11);
    a.mov(Rbx, Rax);
    a.rem(Rbx, R9);
    a.shl(Rbx, 3);
    a.mov(Rcx, R8);
    a.add(Rcx, Rbx);
    a.load(Rcx, Rcx, (runq::ENTRIES * 8) as i64); // candidate VCPU ptr
    a.load(Rdx, Rcx, (vcpu::RUNNABLE * 8) as i64);
    a.cmpi(Rdx, 0);
    a.jne("schedule.found");
    a.addi(R11, 1);
    a.jmp("schedule.scan");

    a.label("schedule.found");
    // Advance the round-robin cursor past the chosen entry.
    a.mov(Rax, R10);
    a.add(Rax, R11);
    a.addi(Rax, 1);
    a.rem(Rax, R9);
    a.store(R8, (runq::CURSOR * 8) as i64, Rax);
    a.store(Rbp, (pcpu::CURRENT_VCPU * 8) as i64, Rcx);
    a.movi(Rax, 0);
    a.store(Rbp, (pcpu::IDLE * 8) as i64, Rax);
    a.ret();

    a.label("schedule.idle");
    // Nothing runnable: switch to the idle VCPU. Before idling the
    // physical CPU, verify the chosen VCPU really is the idle VCPU —
    // the paper's Listing 2.
    a.load(Rcx, Rbp, (pcpu::IDLE_VCPU * 8) as i64);
    a.store(Rbp, (pcpu::CURRENT_VCPU * 8) as i64, Rcx);
    a.load(Rdx, Rcx, (vcpu::IS_IDLE * 8) as i64);
    a.cmpi(Rdx, 1);
    a.assert_cond(Cond::Eq, assert_ids::IDLE_VCPU);
    a.movi(Rax, 1);
    a.store(Rbp, (pcpu::IDLE * 8) as i64, Rax);
    a.ret();
}
