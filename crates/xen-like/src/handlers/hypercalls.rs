//! The 38 hypercall handlers of Xen 4.1.2, as simulated code.
//!
//! Handler bodies follow the shapes of their Xen counterparts: guest-pointer
//! validation, bounded batch loops over guest-supplied arrays, event-channel
//! and grant-table manipulation, scheduler entry points, and time paths.
//! Trip counts depend on guest arguments and on hypervisor state, so correct
//! executions of the same hypercall form a *distribution* of performance
//! counter footprints — the signal the VM-transition detector learns.
//!
//! Error returns use Xen's errno conventions (`-EFAULT = -14`, `-EINVAL =
//! -22`, `-ENOSYS = -38`, `-ESRCH = -3`). Software assertions guard values
//! that were already masked/validated: they never fire in error-free runs
//! and exist to catch fault-induced corruption between check and use.

use crate::assert_ids;
use crate::layout::{self as lay, domain, evtchn, grant, pcpu, runq, shared, vcpu};
use sim_asm::Asm;
use sim_machine::Reg::{self, *};

/// Xen errno values used by handlers.
pub mod errno {
    pub const ESRCH: i64 = -3;
    pub const EFAULT: i64 = -14;
    pub const EINVAL: i64 = -22;
    pub const ENOSYS: i64 = -38;
}

/// Console I/O port (dom0 serial console).
pub const CONSOLE_PORT: u16 = 0x3f8;
/// PIC acknowledge port.
pub const PIC_PORT: u16 = 0x20;

/// Names of the 38 hypercalls, indexed by number (mirrors Xen 4.1.2's
/// `xen/include/public/xen.h`).
pub const NAMES: [&str; 38] = [
    "set_trap_table",
    "mmu_update",
    "set_gdt",
    "stack_switch",
    "set_callbacks",
    "fpu_taskswitch",
    "sched_op_compat",
    "platform_op",
    "set_debugreg",
    "get_debugreg",
    "update_descriptor",
    "ni_hypercall",
    "memory_op",
    "multicall",
    "update_va_mapping",
    "set_timer_op",
    "event_channel_op_compat",
    "xen_version",
    "console_io",
    "physdev_op_compat",
    "grant_table_op",
    "vm_assist",
    "update_va_mapping_otherdomain",
    "iret",
    "vcpu_op",
    "set_segment_base",
    "mmuext_op",
    "xsm_op",
    "nmi_op",
    "sched_op",
    "callback_op",
    "xenoprof_op",
    "event_channel_op",
    "physdev_op",
    "hvm_op",
    "sysctl",
    "domctl",
    "kexec_op",
];

/// Label of hypercall `nr`'s handler.
pub fn label(nr: u8) -> String {
    format!("hc_{:02}_{}", nr, NAMES[nr as usize])
}

// ---------------------------------------------------------------------------
// Emission helpers (the "calling convention" of handler bodies)
// ---------------------------------------------------------------------------

/// Hypercall argument registers in Xen's x86-64 ABI order:
/// arg1..arg5 = rdi, rsi, rdx, r10, r8 (save-area slots 7, 6, 2, 10, 8).
const ARG_SLOTS: [i64; 5] = [7 * 8, 6 * 8, 2 * 8, 10 * 8, 8 * 8];

/// Load hypercall argument `n` (1-based) into `dst`. Assumes `r15` holds the
/// VCPU pointer.
fn arg(a: &mut Asm, dst: Reg, n: usize) {
    a.load(dst, R15, ARG_SLOTS[n - 1]);
}

/// Handler prologue: stash the VCPU pointer in `r15`, bump the global
/// hypercall counter, and run the domain audit walk (the Xen analogue of
/// guest-handle copies, XSM permission checks and lock accounting that
/// every hypercall performs before its real work).
fn prologue(a: &mut Asm) {
    a.mov(R15, Rdi);
    a.movi(Rax, lay::global_addr(lay::global::HYPERCALL_COUNT) as i64);
    a.load(Rbx, Rax, 0);
    a.addi(Rbx, 1);
    a.store(Rax, 0, Rbx);
    a.call("domain_audit");
}

/// Store the immediate return value into the guest's RAX slot and return.
fn ret_imm(a: &mut Asm, v: i64) {
    a.movi(Rax, v);
    a.store(R15, 0, Rax);
    a.ret();
}

/// Store `r`'s value into the guest's RAX slot and return.
fn ret_reg(a: &mut Asm, r: Reg) {
    a.store(R15, 0, r);
    a.ret();
}

/// Emit an `-EFAULT` exit label named `{prefix}.efault`.
fn efault_label(a: &mut Asm, prefix: &str) {
    a.label(format!("{prefix}.efault"));
    ret_imm(a, errno::EFAULT);
}

/// Validate that the address in `addr` lies inside the current domain's
/// memory window; jump to `{prefix}.efault` otherwise. Clobbers `r8`/`r9`.
/// Assumes `r15` = VCPU.
fn window_check(a: &mut Asm, addr: Reg, prefix: &str) {
    let fail = format!("{prefix}.efault");
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.load(R9, R8, (domain::MEM_BASE * 8) as i64);
    a.cmp(addr, R9);
    a.jb(fail.clone());
    a.load(R8, R8, (domain::MEM_SIZE * 8) as i64);
    a.add(R9, R8); // r9 = window end
    a.cmp(addr, R9);
    a.jae(fail);
}

/// `dst <- dst % modulus` via a register constant. Clobbers `r9`.
fn mod_imm(a: &mut Asm, dst: Reg, modulus: i64) {
    a.movi(R9, modulus);
    a.rem(dst, R9);
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

/// Emit all 38 hypercall handlers. Requires that the scheduler routines
/// (`schedule`) are emitted elsewhere in the same image.
pub fn emit_all(a: &mut Asm) {
    hc00_set_trap_table(a);
    hc01_mmu_update(a);
    hc02_set_gdt(a);
    hc03_stack_switch(a);
    hc04_set_callbacks(a);
    hc05_fpu_taskswitch(a);
    hc06_sched_op_compat(a);
    hc07_platform_op(a);
    hc08_set_debugreg(a);
    hc09_get_debugreg(a);
    hc10_update_descriptor(a);
    hc11_ni_hypercall(a);
    hc12_memory_op(a);
    hc13_multicall(a);
    hc14_update_va_mapping(a);
    hc15_set_timer_op(a);
    hc16_event_channel_op_compat(a);
    hc17_xen_version(a);
    hc18_console_io(a);
    hc19_physdev_op_compat(a);
    hc20_grant_table_op(a);
    hc21_vm_assist(a);
    hc22_update_va_mapping_otherdomain(a);
    hc23_iret(a);
    hc24_vcpu_op(a);
    hc25_set_segment_base(a);
    hc26_mmuext_op(a);
    hc27_xsm_op(a);
    hc28_nmi_op(a);
    hc29_sched_op(a);
    hc30_callback_op(a);
    hc31_xenoprof_op(a);
    hc32_event_channel_op(a);
    hc33_physdev_op(a);
    hc34_hvm_op(a);
    hc35_sysctl(a);
    hc36_domctl(a);
    hc37_kexec_op(a);
}

/// `set_trap_table(table_ptr)`: walk the guest's 20-entry virtual trap
/// table, validating each handler address; the last valid entry becomes the
/// domain's delivery target.
fn hc00_set_trap_table(a: &mut Asm) {
    let l = label(0);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1); // table pointer
    window_check(a, Rcx, &l);
    a.movi(Rdx, 0); // index
    a.label(format!("{l}.loop"));
    a.load(Rbx, Rcx, 0); // entry
    a.cmpi(Rbx, 0);
    a.je(format!("{l}.skip"));
    window_check(a, Rbx, &l);
    // Fault-guard: the entry was just range-checked; re-assert before the
    // store that makes it the live delivery target.
    a.mov(R9, Rbx);
    a.subi(R9, lay::GUEST_BASE as i64);
    a.assert_in_range(
        R9,
        0,
        (lay::MAX_DOMS as u64 * lay::GUEST_STRIDE) as i64 - 1,
        assert_ids::TRAPTAB_RANGE,
    );
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.store(R8, (domain::TRAP_HANDLER * 8) as i64, Rbx);
    a.label(format!("{l}.skip"));
    a.addi(Rcx, 8);
    a.addi(Rdx, 1);
    a.cmpi(Rdx, 20);
    a.jl(format!("{l}.loop"));
    ret_imm(a, 0);
    efault_label(a, &l);
}

/// `mmu_update(reqs, count)`: apply a batch of page-table updates. Each
/// request is a guest word naming a machine address; valid ones bump the
/// domain's update counter, invalid ones the failure count.
fn hc01_mmu_update(a: &mut Asm) {
    let l = label(1);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1); // request array
    arg(a, Rdx, 2); // count
    window_check(a, Rcx, &l);
    mod_imm(a, Rdx, 32);
    a.assert_le(Rdx, 31, assert_ids::MMU_BOUND);
    a.movi(R12, 0); // applied
    a.movi(R13, 0); // index
    a.label(format!("{l}.loop"));
    a.cmp(R13, Rdx);
    a.jge(format!("{l}.done"));
    a.load(Rbx, Rcx, 0); // request word = target address
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.load(R9, R8, (domain::MEM_BASE * 8) as i64);
    a.cmp(Rbx, R9);
    a.jb(format!("{l}.bad"));
    a.load(R8, R8, (domain::MEM_SIZE * 8) as i64);
    a.add(R9, R8);
    a.cmp(Rbx, R9);
    a.jae(format!("{l}.bad"));
    a.addi(R12, 1);
    a.label(format!("{l}.bad"));
    a.addi(Rcx, 8);
    a.addi(R13, 1);
    a.jmp(format!("{l}.loop"));
    a.label(format!("{l}.done"));
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.load(R9, R8, (domain::MMU_UPDATES * 8) as i64);
    a.add(R9, R12);
    a.store(R8, (domain::MMU_UPDATES * 8) as i64, R9);
    ret_reg(a, R12);
    efault_label(a, &l);
}

/// `set_gdt(frames, entries)`: cache up to 16 descriptor frames in the
/// domain descriptor's scratch area.
fn hc02_set_gdt(a: &mut Asm) {
    let l = label(2);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1);
    arg(a, Rdx, 2);
    window_check(a, Rcx, &l);
    mod_imm(a, Rdx, 16);
    a.load(R12, R15, (vcpu::DOM_PTR * 8) as i64);
    a.movi(R13, 0);
    a.label(format!("{l}.loop"));
    a.cmp(R13, Rdx);
    a.jge(format!("{l}.done"));
    a.load(Rbx, Rcx, 0);
    // scratch slot = 32 + (index % 8)
    a.mov(R8, R13);
    mod_imm(a, R8, 8);
    a.shl(R8, 3);
    a.mov(R9, R12);
    a.add(R9, R8);
    a.store(R9, 32 * 8, Rbx);
    a.addi(Rcx, 8);
    a.addi(R13, 1);
    a.jmp(format!("{l}.loop"));
    a.label(format!("{l}.done"));
    ret_imm(a, 0);
    efault_label(a, &l);
}

/// `stack_switch(new_rsp)`: install a new guest kernel stack pointer. A
/// corrupted value here reaches the guest at the next entry — one of the
/// paper's long-latency channels.
fn hc03_stack_switch(a: &mut Asm) {
    let l = label(3);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1);
    window_check(a, Rcx, &l);
    a.mov(R9, Rcx);
    a.subi(R9, lay::GUEST_BASE as i64);
    a.assert_in_range(
        R9,
        0,
        (lay::MAX_DOMS as u64 * lay::GUEST_STRIDE) as i64 - 1,
        assert_ids::STACK_RANGE,
    );
    a.store(R15, 4 * 8, Rcx); // guest RSP save slot
    ret_imm(a, 0);
    efault_label(a, &l);
}

/// `set_callbacks(event, failsafe)`: register guest upcall entry points.
fn hc04_set_callbacks(a: &mut Asm) {
    let l = label(4);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1);
    arg(a, Rdx, 2);
    window_check(a, Rcx, &l);
    window_check(a, Rdx, &l);
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.store(R8, (domain::TRAP_HANDLER * 8) as i64, Rcx);
    a.store(R8, 33 * 8, Rdx); // failsafe slot
    ret_imm(a, 0);
    efault_label(a, &l);
}

/// `fpu_taskswitch(set)`: toggle the VCPU's lazy-FPU flag.
fn hc05_fpu_taskswitch(a: &mut Asm) {
    let l = label(5);
    a.global(l);
    prologue(a);
    arg(a, Rcx, 1);
    mod_imm(a, Rcx, 2);
    a.store(R15, 30 * 8, Rcx);
    ret_imm(a, 0);
}

/// `sched_op_compat`: legacy alias of `sched_op`.
fn hc06_sched_op_compat(a: &mut Asm) {
    a.global(label(6));
    a.jmp(label(29));
}

/// `platform_op(cmd)`: dom0 platform control; publishes the wall clock to
/// the caller's shared-info page and performs accounting sweeps.
fn hc07_platform_op(a: &mut Asm) {
    let l = label(7);
    a.global(l.clone());
    prologue(a);
    a.movi(Rcx, lay::global_addr(lay::global::WALLCLOCK) as i64);
    a.load(Rcx, Rcx, 0);
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.load(R8, R8, (domain::SHARED_PTR * 8) as i64);
    a.store(R8, (shared::WALLCLOCK * 8) as i64, Rcx);
    // Accounting sweep over 6 platform sensors (port reads).
    a.movi(Rdx, 0);
    a.label(format!("{l}.loop"));
    a.inp(Rbx, 0x40);
    a.add(Rcx, Rbx);
    a.addi(Rdx, 1);
    a.cmpi(Rdx, 6);
    a.jl(format!("{l}.loop"));
    ret_reg(a, Rcx);
}

/// `set_debugreg(idx, val)`.
fn hc08_set_debugreg(a: &mut Asm) {
    let l = label(8);
    a.global(l);
    prologue(a);
    arg(a, Rcx, 1);
    arg(a, Rdx, 2);
    mod_imm(a, Rcx, 8);
    a.shl(Rcx, 3);
    a.mov(R8, R15);
    a.add(R8, Rcx);
    a.store(R8, 32 * 8, Rdx); // debugregs at VCPU words 32..39
    ret_imm(a, 0);
}

/// `get_debugreg(idx)`.
fn hc09_get_debugreg(a: &mut Asm) {
    let l = label(9);
    a.global(l);
    prologue(a);
    arg(a, Rcx, 1);
    mod_imm(a, Rcx, 8);
    a.shl(Rcx, 3);
    a.mov(R8, R15);
    a.add(R8, Rcx);
    a.load(Rax, R8, 32 * 8);
    ret_reg(a, Rax);
}

/// `update_descriptor(maddr, desc)`: validate and install one descriptor.
fn hc10_update_descriptor(a: &mut Asm) {
    let l = label(10);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1);
    arg(a, Rdx, 2);
    window_check(a, Rcx, &l);
    // Selector = low bits of the machine address; bound-assert after mask.
    a.mov(Rbx, Rcx);
    mod_imm(a, Rbx, 16);
    a.assert_le(Rbx, 15, assert_ids::DESC_BOUND);
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.store(R8, 34 * 8, Rdx);
    a.load(R9, R8, (domain::MMU_UPDATES * 8) as i64);
    a.addi(R9, 1);
    a.store(R8, (domain::MMU_UPDATES * 8) as i64, R9);
    ret_imm(a, 0);
    efault_label(a, &l);
}

/// Slot 11 is unimplemented in Xen 4.1.2.
fn hc11_ni_hypercall(a: &mut Asm) {
    let l = label(11);
    a.global(l);
    prologue(a);
    ret_imm(a, errno::ENOSYS);
}

/// `memory_op(cmd, pages)`: balloon pages in or out, one loop iteration per
/// page (memory-traffic heavy, like Xen's reservation loops).
fn hc12_memory_op(a: &mut Asm) {
    let l = label(12);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1); // cmd: 0 = increase, 1 = decrease
    arg(a, Rdx, 2); // pages
    mod_imm(a, Rdx, 64);
    a.assert_le(Rdx, 63, assert_ids::MEMOP_BOUND);
    mod_imm(a, Rcx, 2);
    a.load(R12, R15, (vcpu::DOM_PTR * 8) as i64);
    a.movi(R13, 0);
    a.label(format!("{l}.loop"));
    a.cmp(R13, Rdx);
    a.jge(format!("{l}.done"));
    a.load(R9, R12, (domain::BALLOON_PAGES * 8) as i64);
    a.cmpi(Rcx, 0);
    a.jne(format!("{l}.dec"));
    a.addi(R9, 1);
    a.jmp(format!("{l}.store"));
    a.label(format!("{l}.dec"));
    a.subi(R9, 1);
    a.label(format!("{l}.store"));
    a.store(R12, (domain::BALLOON_PAGES * 8) as i64, R9);
    a.addi(R13, 1);
    a.jmp(format!("{l}.loop"));
    a.label(format!("{l}.done"));
    ret_reg(a, Rdx);
}

/// `multicall(list, n)`: account a batch of up to 8 sub-calls.
fn hc13_multicall(a: &mut Asm) {
    let l = label(13);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1);
    arg(a, Rdx, 2);
    window_check(a, Rcx, &l);
    mod_imm(a, Rdx, 8);
    a.assert_le(Rdx, 7, assert_ids::MULTICALL_BOUND);
    a.movi(R13, 0);
    a.movi(R12, 0); // accumulated work
    a.label(format!("{l}.loop"));
    a.cmp(R13, Rdx);
    a.jge(format!("{l}.done"));
    a.load(Rbx, Rcx, 0); // sub-call number
    mod_imm(a, Rbx, 64);
    a.add(R12, Rbx);
    a.addi(Rcx, 8);
    a.addi(R13, 1);
    a.jmp(format!("{l}.loop"));
    a.label(format!("{l}.done"));
    a.load(R8, Rbp, (pcpu::WORK * 8) as i64);
    a.add(R8, R12);
    a.store(Rbp, (pcpu::WORK * 8) as i64, R8);
    ret_reg(a, Rdx);
    efault_label(a, &l);
}

/// `update_va_mapping(va, val)`: write one PTE-sized value into guest
/// memory, then run a variable-length TLB-flush loop.
fn hc14_update_va_mapping(a: &mut Asm) {
    let l = label(14);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1); // va
    arg(a, Rdx, 2); // value
    window_check(a, Rcx, &l);
    a.store(Rcx, 0, Rdx);
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.load(R9, R8, (domain::MMU_UPDATES * 8) as i64);
    a.addi(R9, 1);
    a.store(R8, (domain::MMU_UPDATES * 8) as i64, R9);
    // TLB shoot-down: 0..3 flush rounds depending on load.
    a.noise(Rbx, 4);
    a.label(format!("{l}.flush"));
    a.cmpi(Rbx, 0);
    a.je(format!("{l}.done"));
    a.movi(R9, lay::global_addr(lay::global::SCRATCH) as i64);
    a.store(R9, 0, Rbx);
    a.subi(Rbx, 1);
    a.jmp(format!("{l}.flush"));
    a.label(format!("{l}.done"));
    ret_imm(a, 0);
    efault_label(a, &l);
}

/// `set_timer_op(deadline)`: arm the VCPU's singleshot timer. Time values
/// flow from here into guest-visible state — the paper's dominant
/// undetected-fault category.
fn hc15_set_timer_op(a: &mut Asm) {
    let l = label(15);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1);
    a.store(R15, (vcpu::TIMER_DEADLINE * 8) as i64, Rcx);
    a.movi(Rbx, lay::global_addr(lay::global::WALLCLOCK) as i64);
    a.load(Rbx, Rbx, 0);
    a.cmp(Rcx, Rbx);
    a.jg(format!("{l}.armed"));
    // Deadline already passed: fire immediately via the upcall path.
    a.movi(Rdx, 1);
    a.store(R15, (vcpu::UPCALL_PENDING * 8) as i64, Rdx);
    a.movi(Rdx, 0);
    a.store(R15, (vcpu::TIMER_DEADLINE * 8) as i64, Rdx);
    a.label(format!("{l}.armed"));
    ret_imm(a, 0);
}

/// Legacy alias of `event_channel_op`.
fn hc16_event_channel_op_compat(a: &mut Asm) {
    a.global(label(16));
    a.jmp(label(32));
}

/// `xen_version()`: the cheapest, most frequent call — returns 4.1.2.
fn hc17_xen_version(a: &mut Asm) {
    let l = label(17);
    a.global(l);
    prologue(a);
    ret_imm(a, 0x0004_0102);
}

/// `console_io(cmd, count, buf)`: write up to 32 characters to the serial
/// console — the I/O-heavy path postmark hammers.
fn hc18_console_io(a: &mut Asm) {
    let l = label(18);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1); // cmd (0 = write)
    arg(a, Rdx, 2); // count
    arg(a, Rbx, 3); // buffer
    a.cmpi(Rcx, 0);
    a.jne(format!("{l}.read"));
    window_check(a, Rbx, &l);
    mod_imm(a, Rdx, 32);
    a.assert_le(Rdx, 31, assert_ids::CONSOLE_BOUND);
    a.movi(R13, 0);
    a.label(format!("{l}.loop"));
    a.cmp(R13, Rdx);
    a.jge(format!("{l}.done"));
    a.load(R12, Rbx, 0);
    a.out(CONSOLE_PORT, R12);
    a.addi(Rbx, 8);
    a.addi(R13, 1);
    a.jmp(format!("{l}.loop"));
    a.label(format!("{l}.done"));
    ret_reg(a, Rdx);
    a.label(format!("{l}.read"));
    a.inp(Rax, CONSOLE_PORT);
    ret_reg(a, Rax);
    efault_label(a, &l);
}

/// Legacy alias of `physdev_op`.
fn hc19_physdev_op_compat(a: &mut Asm) {
    a.global(label(19));
    a.jmp(label(33));
}

/// `grant_table_op(op, ref, frame)`: map/unmap a grant entry and copy its
/// payload window.
fn hc20_grant_table_op(a: &mut Asm) {
    let l = label(20);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1); // op: 0 = map, 1 = unmap
    arg(a, Rdx, 2); // grant reference
    arg(a, Rbx, 3); // frame
    a.cmpi(Rdx, lay::NR_GRANTS as i64);
    a.jae(format!("{l}.einval"));
    a.assert_le(Rdx, lay::NR_GRANTS as i64 - 1, assert_ids::GRANT_BOUND);
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.load(R8, R8, (domain::GRANT_PTR * 8) as i64);
    a.mov(R9, Rdx);
    a.shl(R9, 3);
    a.add(R8, R9); // entry address
    a.cmpi(Rcx, 0);
    a.jne(format!("{l}.unmap"));
    // map: flags = INUSE|RW, frame stored above bit 8.
    a.shl(Rbx, 8);
    a.addi(
        Rbx,
        (grant::FLAG_INUSE | grant::FLAG_READ | grant::FLAG_WRITE) as i64,
    );
    a.store(R8, 0, Rbx);
    // Copy a 4-word payload through the hypervisor scratch window (grant
    // copy traffic).
    a.movi(R13, 0);
    a.movi(R12, lay::global_addr(lay::global::SCRATCH) as i64);
    a.label(format!("{l}.copy"));
    a.load(R9, R8, 0);
    a.store(R12, 0, R9);
    a.addi(R12, 8);
    a.addi(R13, 1);
    a.cmpi(R13, 4);
    a.jl(format!("{l}.copy"));
    ret_imm(a, 0);
    a.label(format!("{l}.unmap"));
    a.movi(R9, 0);
    a.store(R8, 0, R9);
    ret_imm(a, 0);
    a.label(format!("{l}.einval"));
    ret_imm(a, errno::EINVAL);
}

/// `vm_assist(cmd, type)`: set an assist bit in the domain.
fn hc21_vm_assist(a: &mut Asm) {
    let l = label(21);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 2); // type
    mod_imm(a, Rcx, 8);
    // Compute 1 << type with a shift loop (no variable shift in the ISA).
    a.movi(Rbx, 1);
    a.label(format!("{l}.shift"));
    a.cmpi(Rcx, 0);
    a.je(format!("{l}.apply"));
    a.shl(Rbx, 1);
    a.subi(Rcx, 1);
    a.jmp(format!("{l}.shift"));
    a.label(format!("{l}.apply"));
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.load(R9, R8, 35 * 8);
    a.or(R9, Rbx);
    a.store(R8, 35 * 8, R9);
    ret_imm(a, 0);
}

/// `update_va_mapping_otherdomain(va, val, domid)`: like hc14 but targets a
/// foreign domain found by a descriptor-table scan (dom0 tooling path).
fn hc22_update_va_mapping_otherdomain(a: &mut Asm) {
    let l = label(22);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1); // va
    arg(a, Rdx, 2); // val
    arg(a, Rbx, 3); // domid
    a.movi(R8, lay::global_addr(lay::global::NUM_DOMS) as i64);
    a.load(R8, R8, 0);
    a.rem(Rbx, R8); // clamp domid
                    // Scan the domain table for the id (linear search as in Xen's
                    // rcu_lock_domain_by_id).
    a.movi(R12, lay::domain_addr(0) as i64);
    a.movi(R13, 0);
    a.label(format!("{l}.scan"));
    a.load(R9, R12, (domain::DOM_ID * 8) as i64);
    a.cmp(R9, Rbx);
    a.je(format!("{l}.found"));
    a.addi(R12, (domain::STRIDE * 8) as i64);
    a.addi(R13, 1);
    a.cmp(R13, R8);
    a.jl(format!("{l}.scan"));
    ret_imm(a, errno::ESRCH);
    a.label(format!("{l}.found"));
    // Bounds-check va against the *target* domain's window.
    a.load(R9, R12, (domain::MEM_BASE * 8) as i64);
    a.cmp(Rcx, R9);
    a.jb(format!("{l}.efault"));
    a.load(R8, R12, (domain::MEM_SIZE * 8) as i64);
    a.add(R9, R8);
    a.cmp(Rcx, R9);
    a.jae(format!("{l}.efault"));
    a.store(Rcx, 0, Rdx);
    a.load(R9, R12, (domain::MMU_UPDATES * 8) as i64);
    a.addi(R9, 1);
    a.store(R12, (domain::MMU_UPDATES * 8) as i64, R9);
    ret_imm(a, 0);
    efault_label(a, &l);
}

/// `iret`: return from a guest event/trap frame. Pops RIP/RFLAGS/RAX from
/// the guest kernel stack — corrupted pops here are the paper's "stack
/// values" SDC channel.
fn hc23_iret(a: &mut Asm) {
    let l = label(23);
    a.global(l.clone());
    prologue(a);
    a.load(Rcx, R15, 4 * 8); // guest RSP
    window_check(a, Rcx, &l);
    a.mov(R9, Rcx);
    a.subi(R9, lay::GUEST_BASE as i64);
    a.assert_in_range(
        R9,
        0,
        (lay::MAX_DOMS as u64 * lay::GUEST_STRIDE) as i64 - 1,
        assert_ids::IRET_RANGE,
    );
    a.load(Rbx, Rcx, 0); // new rip
    a.load(Rdx, Rcx, 8); // new rflags
    a.load(R12, Rcx, 16); // restored rax
    window_check(a, Rbx, &l); // rip must stay in the guest window
    a.store(R15, (vcpu::SAVE_RIP * 8) as i64, Rbx);
    a.store(R15, (vcpu::SAVE_RFLAGS * 8) as i64, Rdx);
    a.store(R15, 0, R12);
    a.addi(Rcx, 24);
    a.store(R15, 4 * 8, Rcx);
    // Re-enable upcalls on iret (Xen semantics).
    a.movi(R9, 0);
    a.store(R15, (vcpu::UPCALL_MASK * 8) as i64, R9);
    a.ret();
    efault_label(a, &l);
}

/// `vcpu_op(cmd, vcpuid)`: bring VCPUs up/down and query state.
fn hc24_vcpu_op(a: &mut Asm) {
    let l = label(24);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1); // cmd: 0 up, 1 down, 2 is_up
    arg(a, Rdx, 2); // vcpuid
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.load(R9, R8, (domain::NR_VCPUS * 8) as i64);
    a.cmp(Rdx, R9);
    a.jae(format!("{l}.einval"));
    a.assert_le(
        Rdx,
        lay::MAX_VCPUS_PER_DOM as i64 - 1,
        assert_ids::VCPU_BOUND,
    );
    // target = vcpu_base + (first_vcpu + vcpuid) * stride
    a.load(R9, R8, (domain::FIRST_VCPU * 8) as i64);
    a.add(R9, Rdx);
    a.movi(Rbx, (vcpu::STRIDE * 8) as i64);
    a.mul(R9, Rbx);
    a.movi(Rbx, vcpu::BASE as i64);
    a.add(R9, Rbx); // r9 = target VCPU descriptor
    a.cmpi(Rcx, 0);
    a.jne(format!("{l}.notup"));
    // VCPUOP_up: mark runnable and enqueue on this CPU's run queue.
    a.movi(Rbx, 1);
    a.store(R9, (vcpu::RUNNABLE * 8) as i64, Rbx);
    a.load(R12, Rbp, (pcpu::RUNQ_PTR * 8) as i64);
    a.load(R13, R12, (runq::COUNT * 8) as i64);
    a.cmpi(R13, runq::MAX_ENTRIES as i64);
    a.jae(format!("{l}.full"));
    a.mov(Rbx, R13);
    a.shl(Rbx, 3);
    a.add(Rbx, R12);
    a.store(Rbx, (runq::ENTRIES * 8) as i64, R9);
    a.addi(R13, 1);
    a.store(R12, (runq::COUNT * 8) as i64, R13);
    a.label(format!("{l}.full"));
    ret_imm(a, 0);
    a.label(format!("{l}.notup"));
    a.cmpi(Rcx, 1);
    a.jne(format!("{l}.isup"));
    a.movi(Rbx, 0);
    a.store(R9, (vcpu::RUNNABLE * 8) as i64, Rbx);
    ret_imm(a, 0);
    a.label(format!("{l}.isup"));
    a.load(Rax, R9, (vcpu::RUNNABLE * 8) as i64);
    ret_reg(a, Rax);
    a.label(format!("{l}.einval"));
    ret_imm(a, errno::EINVAL);
}

/// `set_segment_base(which, addr)`.
fn hc25_set_segment_base(a: &mut Asm) {
    let l = label(25);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1);
    arg(a, Rdx, 2);
    window_check(a, Rdx, &l);
    mod_imm(a, Rcx, 4);
    a.shl(Rcx, 3);
    a.mov(R8, R15);
    a.add(R8, Rcx);
    a.store(R8, 40 * 8, Rdx); // segment bases at VCPU words 40..43
    ret_imm(a, 0);
    efault_label(a, &l);
}

/// `mmuext_op(ops, count)`: extended MMU operations — a small op-code
/// interpreter with per-op work profiles.
fn hc26_mmuext_op(a: &mut Asm) {
    let l = label(26);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1);
    arg(a, Rdx, 2);
    window_check(a, Rcx, &l);
    mod_imm(a, Rdx, 16);
    a.movi(R13, 0);
    a.label(format!("{l}.loop"));
    a.cmp(R13, Rdx);
    a.jge(format!("{l}.done"));
    a.load(Rbx, Rcx, 0);
    mod_imm(a, Rbx, 4);
    a.cmpi(Rbx, 0);
    a.jne(format!("{l}.op1"));
    // op 0: pin table — bump the counter.
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.load(R9, R8, (domain::MMU_UPDATES * 8) as i64);
    a.addi(R9, 1);
    a.store(R8, (domain::MMU_UPDATES * 8) as i64, R9);
    a.jmp(format!("{l}.next"));
    a.label(format!("{l}.op1"));
    a.cmpi(Rbx, 1);
    a.jne(format!("{l}.op2"));
    // op 1: local TLB flush — variable work.
    a.noise(R12, 3);
    a.label(format!("{l}.fl"));
    a.cmpi(R12, 0);
    a.je(format!("{l}.next"));
    a.movi(R9, lay::global_addr(lay::global::SCRATCH + 1) as i64);
    a.store(R9, 0, R12);
    a.subi(R12, 1);
    a.jmp(format!("{l}.fl"));
    a.label(format!("{l}.op2"));
    a.cmpi(Rbx, 2);
    a.jne(format!("{l}.op3"));
    // op 2: flush cache — a port write.
    a.out(PIC_PORT, Rbx);
    a.jmp(format!("{l}.next"));
    a.label(format!("{l}.op3"));
    // op 3: unpin — decrement if positive.
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.load(R9, R8, (domain::MMU_UPDATES * 8) as i64);
    a.cmpi(R9, 0);
    a.jle(format!("{l}.next"));
    a.subi(R9, 1);
    a.store(R8, (domain::MMU_UPDATES * 8) as i64, R9);
    a.label(format!("{l}.next"));
    a.addi(Rcx, 8);
    a.addi(R13, 1);
    a.jmp(format!("{l}.loop"));
    a.label(format!("{l}.done"));
    ret_reg(a, Rdx);
    efault_label(a, &l);
}

/// `xsm_op(op)`: security-module permission check — dom0 is allowed
/// everything, others only the low op range.
fn hc27_xsm_op(a: &mut Asm) {
    let l = label(27);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1);
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.load(R9, R8, (domain::DOM_ID * 8) as i64);
    a.cmpi(R9, 0);
    a.je(format!("{l}.allow"));
    mod_imm(a, Rcx, 8);
    a.cmpi(Rcx, 4);
    a.jl(format!("{l}.allow"));
    ret_imm(a, errno::EINVAL);
    a.label(format!("{l}.allow"));
    ret_imm(a, 0);
}

/// `nmi_op(cb)`: register the guest NMI callback.
fn hc28_nmi_op(a: &mut Asm) {
    let l = label(28);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1);
    window_check(a, Rcx, &l);
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.store(R8, 36 * 8, Rcx);
    ret_imm(a, 0);
    efault_label(a, &l);
}

/// `sched_op(cmd)`: yield / block / shutdown / poll — every variant ends in
/// the scheduler.
fn hc29_sched_op(a: &mut Asm) {
    let l = label(29);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1);
    a.cmpi(Rcx, 1);
    a.je(format!("{l}.block"));
    a.cmpi(Rcx, 2);
    a.je(format!("{l}.shutdown"));
    a.cmpi(Rcx, 3);
    a.je(format!("{l}.poll"));
    // yield (cmd 0 and anything else)
    a.call("schedule");
    ret_imm(a, 0);
    a.label(format!("{l}.block"));
    a.movi(Rbx, 0);
    a.store(R15, (vcpu::RUNNABLE * 8) as i64, Rbx);
    a.store(R15, (vcpu::UPCALL_MASK * 8) as i64, Rbx);
    a.call("schedule");
    ret_imm(a, 0);
    a.label(format!("{l}.shutdown"));
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.movi(Rbx, 1);
    a.store(R8, (domain::IS_DYING * 8) as i64, Rbx);
    a.movi(Rbx, 0);
    a.store(R15, (vcpu::RUNNABLE * 8) as i64, Rbx);
    a.call("schedule");
    ret_imm(a, 0);
    a.label(format!("{l}.poll"));
    // Scan this domain's event channels for pending work.
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.load(R8, R8, (domain::EVTCHN_PTR * 8) as i64);
    a.movi(R13, 0);
    a.movi(R12, 0);
    a.movi(R9, evtchn::PENDING_BIT as i64);
    a.label(format!("{l}.pollloop"));
    a.load(Rbx, R8, 0);
    a.and(Rbx, R9);
    a.add(R12, Rbx);
    a.addi(R8, 8);
    a.addi(R13, 1);
    a.cmpi(R13, lay::NR_EVTCHN as i64);
    a.jl(format!("{l}.pollloop"));
    ret_reg(a, R12);
}

/// `callback_op(type, addr)`.
fn hc30_callback_op(a: &mut Asm) {
    let l = label(30);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1);
    arg(a, Rdx, 2);
    window_check(a, Rdx, &l);
    a.cmpi(Rcx, 0);
    a.jne(format!("{l}.other"));
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.store(R8, (domain::TRAP_HANDLER * 8) as i64, Rdx);
    ret_imm(a, 0);
    a.label(format!("{l}.other"));
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.store(R8, 37 * 8, Rdx);
    ret_imm(a, 0);
    efault_label(a, &l);
}

/// `xenoprof_op(buf)`: drain 8 profile samples into the domain buffer.
fn hc31_xenoprof_op(a: &mut Asm) {
    let l = label(31);
    a.global(l.clone());
    prologue(a);
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.movi(R13, 0);
    a.label(format!("{l}.loop"));
    a.rdtsc(); // sample timestamp (host-native tsc)
    a.mov(Rbx, Rax);
    a.mov(R9, R13);
    a.shl(R9, 3);
    a.mov(R12, R8);
    a.add(R12, R9);
    a.store(R12, 40 * 8, Rbx); // domain words 40..47
    a.addi(R13, 1);
    a.cmpi(R13, 8);
    a.jl(format!("{l}.loop"));
    ret_imm(a, 0);
}

/// `event_channel_op(cmd, port, data)`: the event-channel engine. The send
/// path is the paper's Fig. 5(b) example (`evtchn_set_pending` →
/// `vcpu_mark_events_pending`).
fn hc32_event_channel_op(a: &mut Asm) {
    let l = label(32);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1); // cmd: 0 send, 1 bind, 2 mask, 3 unmask, 4 status
    arg(a, Rdx, 2); // port
    arg(a, Rbx, 3); // data (bind: vcpu id)
    a.cmpi(Rdx, lay::NR_EVTCHN as i64);
    a.jae(format!("{l}.einval"));
    a.assert_le(Rdx, lay::NR_EVTCHN as i64 - 1, assert_ids::EVTCHN_BOUND);
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.load(R8, R8, (domain::EVTCHN_PTR * 8) as i64);
    a.mov(R9, Rdx);
    a.shl(R9, 3);
    a.add(R8, R9); // r8 = channel word address
    a.cmpi(Rcx, 0);
    a.je("evtchn_set_pending");
    a.cmpi(Rcx, 1);
    a.je(format!("{l}.bind"));
    a.cmpi(Rcx, 2);
    a.je(format!("{l}.mask"));
    a.cmpi(Rcx, 3);
    a.je(format!("{l}.unmask"));
    // status
    a.load(Rax, R8, 0);
    ret_reg(a, Rax);

    // --- send path (paper Fig. 5b) ---
    a.label("evtchn_set_pending");
    a.load(Rbx, R8, 0);
    a.movi(R9, evtchn::PENDING_BIT as i64);
    a.or(Rbx, R9);
    a.store(R8, 0, Rbx);
    a.movi(R9, evtchn::MASKED_BIT as i64);
    a.and(R9, Rbx);
    a.cmpi(R9, 0);
    a.jne(format!("{l}.sent")); // masked: pending set, no upcall
                                // Bound VCPU index lives above bit 8.
    a.shr(Rbx, 8);
    mod_imm(a, Rbx, lay::MAX_VCPUS_PER_DOM as i64);
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.load(R9, R8, (domain::FIRST_VCPU * 8) as i64);
    a.add(R9, Rbx);
    a.movi(Rbx, (vcpu::STRIDE * 8) as i64);
    a.mul(R9, Rbx);
    a.movi(Rbx, vcpu::BASE as i64);
    a.add(R9, Rbx);
    a.label("vcpu_mark_events_pending");
    a.movi(Rbx, 1);
    a.store(R9, (vcpu::UPCALL_PENDING * 8) as i64, Rbx);
    a.store(R9, (vcpu::RUNNABLE * 8) as i64, Rbx);
    // Kick the scheduler.
    a.load(Rbx, Rbp, (pcpu::SOFTIRQ_PENDING * 8) as i64);
    a.movi(R9, lay::softirq::SCHED as i64);
    a.or(Rbx, R9);
    a.store(Rbp, (pcpu::SOFTIRQ_PENDING * 8) as i64, Rbx);
    a.label(format!("{l}.sent"));
    ret_imm(a, 0);

    a.label(format!("{l}.bind"));
    mod_imm(a, Rbx, lay::MAX_VCPUS_PER_DOM as i64);
    a.shl(Rbx, 8);
    a.store(R8, 0, Rbx);
    ret_imm(a, 0);
    a.label(format!("{l}.mask"));
    a.load(Rbx, R8, 0);
    a.movi(R9, evtchn::MASKED_BIT as i64);
    a.or(Rbx, R9);
    a.store(R8, 0, Rbx);
    ret_imm(a, 0);
    a.label(format!("{l}.unmask"));
    a.load(Rbx, R8, 0);
    a.movi(R9, !(evtchn::MASKED_BIT) as i64);
    a.and(Rbx, R9);
    a.store(R8, 0, Rbx);
    ret_imm(a, 0);
    a.label(format!("{l}.einval"));
    ret_imm(a, errno::EINVAL);
}

/// `physdev_op(cmd)`: acknowledge physical IRQs at the PIC.
fn hc33_physdev_op(a: &mut Asm) {
    let l = label(33);
    a.global(l.clone());
    prologue(a);
    a.movi(Rcx, lay::global_addr(lay::global::IRQ_COUNT) as i64);
    a.load(Rbx, Rcx, 0);
    a.addi(Rbx, 1);
    a.store(Rcx, 0, Rbx);
    a.movi(R13, 0);
    a.label(format!("{l}.loop"));
    a.out(PIC_PORT, R13);
    a.addi(R13, 1);
    a.cmpi(R13, 4);
    a.jl(format!("{l}.loop"));
    ret_imm(a, 0);
}

/// `hvm_op(cmd, param, val)`: get/set an HVM param slot.
fn hc34_hvm_op(a: &mut Asm) {
    let l = label(34);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1);
    arg(a, Rdx, 2);
    arg(a, Rbx, 3);
    mod_imm(a, Rdx, 8);
    a.shl(Rdx, 3);
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.add(R8, Rdx);
    a.cmpi(Rcx, 0);
    a.jne(format!("{l}.get"));
    a.store(R8, 48 * 8, Rbx); // params at domain words 48..55
    ret_imm(a, 0);
    a.label(format!("{l}.get"));
    a.load(Rax, R8, 48 * 8);
    ret_reg(a, Rax);
}

/// `sysctl(cmd)`: system-wide statistics — sums VCPU counts over all
/// domains.
fn hc35_sysctl(a: &mut Asm) {
    let l = label(35);
    a.global(l.clone());
    prologue(a);
    a.movi(R8, lay::global_addr(lay::global::NUM_DOMS) as i64);
    a.load(R8, R8, 0);
    a.movi(R12, lay::domain_addr(0) as i64);
    a.movi(R13, 0);
    a.movi(Rcx, 0); // total
    a.label(format!("{l}.loop"));
    a.cmp(R13, R8);
    a.jge(format!("{l}.done"));
    a.load(Rbx, R12, (domain::NR_VCPUS * 8) as i64);
    a.add(Rcx, Rbx);
    a.addi(R12, (domain::STRIDE * 8) as i64);
    a.addi(R13, 1);
    a.jmp(format!("{l}.loop"));
    a.label(format!("{l}.done"));
    ret_reg(a, Rcx);
}

/// `domctl(cmd, domid)`: pause/unpause/getinfo over a looked-up domain.
fn hc36_domctl(a: &mut Asm) {
    let l = label(36);
    a.global(l.clone());
    prologue(a);
    arg(a, Rcx, 1); // cmd: 0 pause, 1 unpause, 2 getinfo
    arg(a, Rdx, 2); // domid
    a.movi(R8, lay::global_addr(lay::global::NUM_DOMS) as i64);
    a.load(R8, R8, 0);
    a.cmp(Rdx, R8);
    a.jae(format!("{l}.esrch"));
    a.assert_le(Rdx, lay::MAX_DOMS as i64 - 1, assert_ids::DOM_BOUND);
    a.movi(R12, (domain::STRIDE * 8) as i64);
    a.mul(Rdx, R12);
    a.movi(R12, lay::domain_addr(0) as i64);
    a.add(R12, Rdx); // r12 = domain descriptor
    a.cmpi(Rcx, 2);
    a.je(format!("{l}.info"));
    // pause/unpause: walk the domain's VCPUs setting RUNNABLE.
    a.movi(Rbx, 1);
    a.cmpi(Rcx, 0);
    a.jne(format!("{l}.setrun"));
    a.movi(Rbx, 0);
    a.label(format!("{l}.setrun"));
    a.load(R8, R12, (domain::FIRST_VCPU * 8) as i64);
    a.movi(R9, (vcpu::STRIDE * 8) as i64);
    a.mul(R8, R9);
    a.movi(R9, vcpu::BASE as i64);
    a.add(R8, R9); // first VCPU descriptor
    a.load(R9, R12, (domain::NR_VCPUS * 8) as i64);
    a.movi(R13, 0);
    a.label(format!("{l}.vloop"));
    a.cmp(R13, R9);
    a.jge(format!("{l}.vdone"));
    a.store(R8, (vcpu::RUNNABLE * 8) as i64, Rbx);
    a.addi(R8, (vcpu::STRIDE * 8) as i64);
    a.addi(R13, 1);
    a.jmp(format!("{l}.vloop"));
    a.label(format!("{l}.vdone"));
    ret_imm(a, 0);
    a.label(format!("{l}.info"));
    a.load(Rax, R12, (domain::NR_VCPUS * 8) as i64);
    ret_reg(a, Rax);
    a.label(format!("{l}.esrch"));
    ret_imm(a, errno::ESRCH);
}

/// `kexec_op`: stub that records the request and reports ENOSYS.
fn hc37_kexec_op(a: &mut Asm) {
    let l = label(37);
    a.global(l.clone());
    prologue(a);
    a.movi(R13, 0);
    a.label(format!("{l}.loop"));
    a.movi(R9, lay::global_addr(lay::global::SCRATCH + 2) as i64);
    a.store(R9, 0, R13);
    a.addi(R13, 1);
    a.cmpi(R13, 6);
    a.jl(format!("{l}.loop"));
    ret_imm(a, errno::ENOSYS);
}
