//! VM-exit entry stubs, dispatch, event delivery and the return-to-guest
//! path.
//!
//! These are the analogues of Xen's `entry.S`: per-CPU trampolines establish
//! the per-CPU data pointer, the common stub saves all guest GPRs into the
//! current VCPU's save area, dispatch indexes the handler table by the
//! VM-exit reason, and the return stub restores guest state and executes
//! `VMENTRY`. Faults injected while these stubs run corrupt saved or
//! restored guest registers — the paper's hardest-to-detect "stack values"
//! propagation channel.

use crate::assert_ids;
use crate::layout::{self as lay, pcpu, vcpu};
use sim_asm::Asm;
use sim_machine::machine::vmcs;
use sim_machine::Reg::*;

/// Bytes between per-CPU entry trampolines (3 instructions each).
pub const TRAMPOLINE_STRIDE: u64 = 3 * 8;

/// Emit the per-CPU entry trampolines. Must be the first thing in the image
/// so that `host_entry == image base`.
pub fn emit_trampolines(a: &mut Asm, nr_cpus: usize) {
    a.global("vmexit_trampolines");
    for cpu in 0..nr_cpus {
        a.label(format!("vmexit_entry_cpu{cpu}"));
        // Host RSP is already valid (loaded by hardware); stash guest r11
        // on the host stack, establish the per-CPU pointer, and join the
        // common path.
        a.push(R11);
        a.movi(R11, lay::pcpu_addr(cpu) as i64);
        a.jmp("vmexit_common");
    }
}

/// Emit the common exit path: save guest state, dispatch, return path.
pub fn emit_common(a: &mut Asm) {
    emit_vmexit_common(a);
    emit_vmexit_return(a);
    emit_deliver_events(a);
    emit_domain_audit(a);
    emit_exit_audit(a);
    emit_update_vcpu_time(a);
}

/// `exit_audit`: the prepare-to-resume sweep Xen performs on the way back
/// to a guest — run-queue consistency, pending-work rescan, and trap-table
/// revalidation. Fixed-length and pointer-chained, like `domain_audit`.
/// Convention: `rbp` = PCPU preserved; called with `rdi` = current VCPU.
fn emit_exit_audit(a: &mut Asm) {
    a.global("exit_audit");
    a.movi(Rax, 0);
    // Run-queue sweep: every slot's entry must be a VCPU descriptor whose
    // runnable flag is boolean.
    a.load(R8, Rbp, (pcpu::RUNQ_PTR * 8) as i64);
    a.movi(Rcx, lay::runq::MAX_ENTRIES as i64);
    a.mov(R9, R8);
    a.addi(R9, (lay::runq::ENTRIES * 8) as i64);
    a.label("exit_audit.runq");
    a.load(Rbx, R9, 0);
    a.add(Rax, Rbx);
    a.addi(R9, 8);
    a.subi(Rcx, 1);
    a.cmpi(Rcx, 0);
    a.jne("exit_audit.runq");
    // Dispatch-table spot sweep: 32 entries re-hashed (corrupted handler
    // pointers endanger every future activation).
    a.movi(R9, lay::dispatch_base() as i64);
    a.movi(Rcx, 32);
    a.label("exit_audit.disp");
    a.load(Rbx, R9, 0);
    a.add(Rax, Rbx);
    a.addi(R9, 8);
    a.subi(Rcx, 1);
    a.cmpi(Rcx, 0);
    a.jne("exit_audit.disp");
    // Current VCPU field sweep: fold the descriptor words (16 GPR slots +
    // control fields) into the checksum.
    a.mov(R9, Rdi);
    a.movi(Rcx, 30);
    a.label("exit_audit.vcpu");
    a.load(Rbx, R9, 0);
    a.add(Rax, Rbx);
    a.addi(R9, 8);
    a.subi(Rcx, 1);
    a.cmpi(Rcx, 0);
    a.jne("exit_audit.vcpu");
    // Pending-softirq sanity (same invariant as do_softirq's entry check).
    a.load(Rbx, Rbp, (pcpu::SOFTIRQ_PENDING * 8) as i64);
    a.assert_le(Rbx, 7, assert_ids::SOFTIRQ_BOUND);
    a.store(Rbp, (pcpu::SCRATCH0 * 8) as i64, Rax);
    a.ret();
}

/// `domain_audit`: the validation/accounting walk every hypercall performs
/// (Xen analogue: guest-handle copies, XSM checks, lock acquisition and
/// per-domain accounting). Scans a load-dependent prefix of the domain's
/// event channels and validates every VCPU's runnable flag. The walk is
/// pointer-chained (domain → evtchn table → VCPU array), so corrupted
/// registers inside it fault rather than silently corrupting state.
///
/// Convention: `rbp` = PCPU and `r15` = VCPU are preserved; everything else
/// may be clobbered.
fn emit_domain_audit(a: &mut Asm) {
    a.global("domain_audit");
    a.load(R8, R15, (vcpu::DOM_PTR * 8) as i64);
    a.load(R9, R8, (lay::domain::EVTCHN_PTR * 8) as i64);
    // Channel checksum over the full table. The walk is deliberately
    // fixed-length and branch-free: legitimate jitter in the audit would
    // widen the per-exit-reason feature envelope and mask exactly the
    // anomalies the VM-transition detector hunts.
    a.movi(Rcx, lay::NR_EVTCHN as i64);
    a.movi(Rax, 0);
    a.label("domain_audit.chan");
    a.load(Rbx, R9, 0);
    // A channel word encodes pending/masked bits plus a bound VCPU index:
    // anything above the encodable range is corruption (Xen's evtchn
    // ASSERTs).
    a.assert_le(
        Rbx,
        ((lay::MAX_VCPUS_PER_DOM as i64 - 1) << 8) | 0xff,
        assert_ids::EVTCHN_STATE,
    );
    a.add(Rax, Rbx);
    a.addi(R9, 8);
    a.subi(Rcx, 1);
    a.cmpi(Rcx, 0);
    a.jne("domain_audit.chan");
    // VCPU state validation walk.
    a.load(Rcx, R8, (lay::domain::NR_VCPUS * 8) as i64);
    a.load(R9, R8, (lay::domain::FIRST_VCPU * 8) as i64);
    a.movi(Rbx, (vcpu::STRIDE * 8) as i64);
    a.mul(R9, Rbx);
    a.movi(Rbx, lay::vcpu::BASE as i64);
    a.add(R9, Rbx);
    a.label("domain_audit.vcpu");
    a.cmpi(Rcx, 0);
    a.je("domain_audit.grants");
    a.load(Rbx, R9, (vcpu::RUNNABLE * 8) as i64);
    // Critical-condition assertion: a runnable flag is strictly boolean.
    a.assert_le(Rbx, 1, assert_ids::RUNNABLE_FLAG);
    a.add(Rax, Rbx);
    a.addi(R9, (vcpu::STRIDE * 8) as i64);
    a.subi(Rcx, 1);
    a.jmp("domain_audit.vcpu");
    // Grant-table sweep (branch-free accumulate; Xen's maptrack audit
    // analogue).
    a.label("domain_audit.grants");
    a.load(R9, R8, (lay::domain::GRANT_PTR * 8) as i64);
    a.movi(Rcx, lay::NR_GRANTS as i64);
    a.label("domain_audit.grant");
    a.load(Rbx, R9, 0);
    a.add(Rax, Rbx);
    a.addi(R9, 8);
    a.subi(Rcx, 1);
    a.cmpi(Rcx, 0);
    a.jne("domain_audit.grant");
    // Shared-info page checksum (time-version protocol must be stable:
    // an odd version here would mean a torn update).
    a.load(R9, R8, (lay::domain::SHARED_PTR * 8) as i64);
    a.movi(Rcx, lay::shared::STRIDE as i64);
    a.label("domain_audit.shared");
    a.load(Rbx, R9, 0);
    a.add(Rax, Rbx);
    a.addi(R9, 8);
    a.subi(Rcx, 1);
    a.cmpi(Rcx, 0);
    a.jne("domain_audit.shared");
    a.label("domain_audit.done");
    a.store(Rbp, (pcpu::SCRATCH1 * 8) as i64, Rax);
    a.ret();
}

/// `update_vcpu_time`: refresh the guest-visible time before resuming it —
/// Xen's `update_vcpu_system_time` analogue, run on every return to guest.
/// The scaled system time, the per-VCPU time slot and the TSC stamp are all
/// staged through registers here; a bit flip in this window corrupts *only*
/// time values, the paper's dominant undetected-fault category (Table II).
///
/// Convention: `rdi` = VCPU; clobbers `rax/rbx/rcx/rdx/r8/r9`.
fn emit_update_vcpu_time(a: &mut Asm) {
    a.global("update_vcpu_time");
    a.load(Rcx, Rdi, (vcpu::DOM_PTR * 8) as i64);
    a.load(Rcx, Rcx, (lay::domain::SHARED_PTR * 8) as i64);
    // version++ (odd: update in progress).
    a.load(Rbx, Rcx, (lay::shared::TIME_VERSION * 8) as i64);
    a.addi(Rbx, 1);
    a.store(Rcx, (lay::shared::TIME_VERSION * 8) as i64, Rbx);
    // Scaled system time, via a scale_delta-style fixed-point computation
    // (Xen scales TSC deltas by a 32.32 multiplier): every intermediate
    // below is time-destined data staged in registers — the exposure that
    // makes "time values" the paper's dominant undetected category.
    a.rdtsc();
    a.shl(Rdx, 32);
    a.or(Rax, Rdx);
    a.load(R9, Rcx, (lay::shared::TSC_STAMP * 8) as i64);
    a.mov(Rbx, Rax);
    a.sub(Rbx, R9); // delta = tsc_now - tsc_stamp
                    // delta * mul_frac >> 32, split into high/low halves.
    a.movi(R9, 0x9F02_25F3); // ~2.48 ns/cycle in 32.32 fixed point
    a.mov(R8, Rbx);
    a.shr(R8, 32);
    a.mul(R8, R9); // high half * frac
    a.movi(Rdx, 0xffff_ffff);
    a.and(Rbx, Rdx);
    a.mul(Rbx, R9); // low half * frac
    a.shr(Rbx, 32);
    a.add(R8, Rbx); // scaled delta (ns)
                    // system_time = wallclock * 1000 + scaled delta + per-VCPU offset.
    a.movi(Rdx, lay::global_addr(lay::global::WALLCLOCK) as i64);
    a.load(Rdx, Rdx, 0);
    a.mov(Rbx, Rdx);
    a.movi(R9, 1000);
    a.mul(Rbx, R9);
    a.add(R8, Rbx);
    a.load(R9, Rdi, (vcpu::TIME_OFFSET * 8) as i64);
    a.add(R8, R9);
    a.store(Rcx, (lay::shared::SYSTEM_TIME * 8) as i64, R8);
    // Per-VCPU time slot.
    a.load(Rbx, Rdi, (vcpu::VCPU_ID * 8) as i64);
    a.shl(Rbx, 3);
    a.mov(R9, Rcx);
    a.add(R9, Rbx);
    a.store(R9, (lay::shared::VCPU_TIME * 8) as i64, R8);
    // Wall-clock seconds / TSC stamp (pvclock protocol fields).
    a.store(Rcx, (lay::shared::WALLCLOCK * 8) as i64, Rdx);
    a.rdtsc();
    a.shl(Rdx, 32);
    a.or(Rax, Rdx);
    a.store(Rcx, (lay::shared::TSC_STAMP * 8) as i64, Rax);
    // version++ (even: stable).
    a.load(Rbx, Rcx, (lay::shared::TIME_VERSION * 8) as i64);
    a.addi(Rbx, 1);
    a.store(Rcx, (lay::shared::TIME_VERSION * 8) as i64, Rbx);
    a.ret();
}

fn emit_vmexit_common(a: &mut Asm) {
    a.global("vmexit_common");
    // r11 = PCPU pointer; guest r11 sits on the host stack.
    a.store(R11, (pcpu::SCRATCH0 * 8) as i64, R10); // stash guest r10
    a.load(R10, R11, (pcpu::CURRENT_VCPU * 8) as i64); // r10 = current VCPU

    // Save guest GPRs into the VCPU save area (slot = register number).
    a.store(R10, 0, Rax);
    a.store(R10, 8, Rcx);
    a.store(R10, 16, Rdx);
    a.store(R10, 24, Rbx);
    // Slot 4 (guest RSP) comes from the VMCS below.
    a.store(R10, 40, Rbp);
    a.store(R10, 48, Rsi);
    a.store(R10, 56, Rdi);
    a.store(R10, 64, R8);
    a.store(R10, 72, R9);
    a.load(Rax, R11, (pcpu::SCRATCH0 * 8) as i64); // guest r10
    a.store(R10, 80, Rax);
    a.pop(Rax); // guest r11 (pushed by the trampoline)
    a.store(R10, 88, Rax);
    a.store(R10, 96, R12);
    a.store(R10, 104, R13);
    a.store(R10, 112, R14);
    a.store(R10, 120, R15);

    // Copy hardware-saved guest RIP/RSP/RFLAGS from the VMCS.
    a.load(Rax, R11, (pcpu::VMCS_PTR * 8) as i64);
    a.load(Rbx, Rax, (vmcs::GUEST_RIP * 8) as i64);
    a.store(R10, (vcpu::SAVE_RIP * 8) as i64, Rbx);
    a.load(Rbx, Rax, (vmcs::GUEST_RSP * 8) as i64);
    a.store(R10, 32, Rbx); // GPR slot 4 = RSP
    a.load(Rbx, Rax, (vmcs::GUEST_RFLAGS * 8) as i64);
    a.store(R10, (vcpu::SAVE_RFLAGS * 8) as i64, Rbx);

    // Dispatch on the exit reason. The bound check is a paper-style
    // boundary assertion: a corrupted reason would index outside the table.
    a.load(Rbx, Rax, (vmcs::EXIT_REASON * 8) as i64);
    a.assert_le(
        Rbx,
        (lay::dispatch_entries() - 1) as i64,
        assert_ids::VMER_BOUND,
    );
    a.mov(Rbp, R11); // rbp = PCPU (handler convention, preserved)
    a.mov(Rdi, R10); // rdi = VCPU
    a.load(Rsi, Rax, (vmcs::EXIT_QUAL * 8) as i64); // rsi = qualification
    a.mov(Rdx, Rbx); // rdx = VMER code
    a.movi(Rcx, lay::dispatch_base() as i64);
    a.shl(Rbx, 3);
    a.add(Rcx, Rbx);
    a.load(Rcx, Rcx, 0);
    a.callr(Rcx);
    a.jmp("vmexit_return");
}

fn emit_vmexit_return(a: &mut Asm) {
    a.global("vmexit_return");
    // The handler may have context-switched: reload the current VCPU.
    a.load(Rdi, Rbp, (pcpu::CURRENT_VCPU * 8) as i64);
    // Critical-condition assertion: the current-VCPU pointer must still
    // point into the VCPU descriptor array (catches corrupted scheduler
    // state before we restore from a bogus save area).
    a.mov(Rax, Rdi);
    a.subi(Rax, lay::vcpu::BASE as i64);
    a.assert_in_range(
        Rax,
        0,
        (lay::MAX_VCPUS as i64 - 1) * (vcpu::STRIDE * 8) as i64,
        assert_ids::CURVCPU_ALIGN,
    );
    // Deliver pending virtual traps/events to the guest (paper Listing 1
    // lives inside).
    a.call("deliver_events");
    // Prepare-to-resume sweep and guest time refresh (Xen:
    // update_vcpu_system_time and the exit-path consistency checks).
    a.load(Rdi, Rbp, (pcpu::CURRENT_VCPU * 8) as i64);
    a.call("exit_audit");
    a.load(Rdi, Rbp, (pcpu::CURRENT_VCPU * 8) as i64);
    a.call("update_vcpu_time");

    a.load(R10, Rbp, (pcpu::CURRENT_VCPU * 8) as i64);
    a.load(R11, Rbp, (pcpu::VMCS_PTR * 8) as i64);
    // Publish (possibly updated) guest RIP/RSP/RFLAGS to the VMCS for the
    // hardware VM entry.
    a.load(Rax, R10, (vcpu::SAVE_RIP * 8) as i64);
    a.store(R11, (vmcs::GUEST_RIP * 8) as i64, Rax);
    a.load(Rax, R10, 32);
    a.store(R11, (vmcs::GUEST_RSP * 8) as i64, Rax);
    a.load(Rax, R10, (vcpu::SAVE_RFLAGS * 8) as i64);
    a.store(R11, (vmcs::GUEST_RFLAGS * 8) as i64, Rax);

    // Restore guest GPRs; r10/r11 last because they hold the base pointers.
    a.load(Rax, R10, 0);
    a.load(Rcx, R10, 8);
    a.load(Rdx, R10, 16);
    a.load(Rbx, R10, 24);
    a.load(Rbp, R10, 40);
    a.load(Rsi, R10, 48);
    a.load(Rdi, R10, 56);
    a.load(R8, R10, 64);
    a.load(R9, R10, 72);
    a.load(R12, R10, 96);
    a.load(R13, R10, 104);
    a.load(R14, R10, 112);
    a.load(R15, R10, 120);
    a.load(R11, R10, 88);
    a.load(R10, R10, 80);
    a.vmentry();
}

/// Deliver pending virtual traps to the current guest. Contains the paper's
/// Listing-1 assertion: every delivered trap number must be `<= LAST`.
fn emit_deliver_events(a: &mut Asm) {
    a.global("deliver_events");
    a.load(Rax, Rdi, (vcpu::PENDING_EVENTS * 8) as i64);
    a.cmpi(Rax, 0);
    a.je("deliver_events.upcall");
    a.movi(Rcx, 0); // trap = FIRST
    a.movi(R9, 1);
    a.label("deliver_events.loop");
    a.mov(Rdx, Rax);
    a.and(Rdx, R9);
    a.cmpi(Rdx, 0);
    a.je("deliver_events.next");
    // ASSERT(trap <= LAST) — Listing 1. Fires when a corrupted pending mask
    // carries bits above the architectural trap range.
    a.assert_le(Rcx, 19, assert_ids::TRAP_BOUND);
    a.store(Rdi, (vcpu::LAST_TRAP * 8) as i64, Rcx);
    a.load(Rdx, Rdi, (vcpu::EVENT_COUNT * 8) as i64);
    a.addi(Rdx, 1);
    a.store(Rdi, (vcpu::EVENT_COUNT * 8) as i64, Rdx);
    a.label("deliver_events.next");
    a.shr(Rax, 1);
    a.addi(Rcx, 1);
    a.cmpi(Rax, 0);
    a.jne("deliver_events.loop");
    a.movi(Rax, 0);
    a.store(Rdi, (vcpu::PENDING_EVENTS * 8) as i64, Rax);

    a.label("deliver_events.upcall");
    // Event-channel upcall: mirror the pending flag into the guest-visible
    // shared-info page unless masked.
    a.load(Rax, Rdi, (vcpu::UPCALL_PENDING * 8) as i64);
    a.cmpi(Rax, 0);
    a.je("deliver_events.done");
    a.load(Rdx, Rdi, (vcpu::UPCALL_MASK * 8) as i64);
    a.cmpi(Rdx, 0);
    a.jne("deliver_events.done");
    a.load(Rdx, Rdi, (vcpu::DOM_PTR * 8) as i64);
    a.load(Rdx, Rdx, (lay::domain::SHARED_PTR * 8) as i64);
    a.movi(Rax, 1);
    a.store(Rdx, (lay::shared::EVTCHN_PENDING_SEL * 8) as i64, Rax);
    a.movi(Rax, 0);
    a.store(Rdi, (vcpu::UPCALL_PENDING * 8) as i64, Rax);
    a.label("deliver_events.done");
    a.ret();
}
