//! Interrupt handlers: `do_irq` for the 16 device lines, the ten APIC-local
//! vectors, `do_softirq` and `do_tasklet`, plus the hardware-assisted
//! direct-exit handlers (port I/O, CPUID/RDTSC, HLT).
//!
//! The timer tick (`apic_00_timer`) is the hypervisor's busiest asynchronous
//! path: it updates every domain's guest-visible time page and scans VCPU
//! singleshot timers — which is why "time values" dominate the paper's
//! undetected-fault breakdown (Table II): many faults land in this handler
//! and corrupt only time data, leaving control flow and counter footprints
//! unchanged.

use crate::layout::{self as lay, domain, evtchn, pcpu, shared, vcpu};
use sim_asm::Asm;
use sim_machine::Reg::*;

/// Label for `do_irq`; all 16 device-IRQ dispatch slots point here.
pub const DO_IRQ: &str = "do_irq";
/// Label for `do_softirq`.
pub const DO_SOFTIRQ: &str = "do_softirq";
/// Label for `do_tasklet`.
pub const DO_TASKLET: &str = "do_tasklet";

/// Names of the ten APIC handlers.
pub const APIC_NAMES: [&str; 10] = [
    "timer",
    "resched",
    "callfunc",
    "pmu",
    "thermal",
    "spurious",
    "error",
    "local_timer",
    "tlb_flush",
    "wakeup",
];

/// Label of APIC handler `v`.
pub fn apic_label(v: u8) -> String {
    format!("apic_{:02}_{}", v, APIC_NAMES[v as usize])
}

/// Emit every interrupt-side handler.
pub fn emit_all(a: &mut Asm) {
    emit_do_irq(a);
    emit_apic_timer(a);
    emit_apic_resched(a);
    emit_apic_callfunc(a);
    emit_apic_pmu(a);
    emit_apic_thermal(a);
    emit_apic_spurious(a);
    emit_apic_error(a);
    emit_apic_local_timer(a);
    emit_apic_tlb_flush(a);
    emit_apic_wakeup(a);
    emit_do_softirq(a);
    emit_do_tasklet(a);
    emit_hvm_handlers(a);
}

fn bump_global(a: &mut Asm, word: u64) {
    a.movi(R8, lay::global_addr(word) as i64);
    a.load(R9, R8, 0);
    a.addi(R9, 1);
    a.store(R8, 0, R9);
}

fn raise_softirq(a: &mut Asm, bits: u64) {
    a.load(R9, Rbp, (pcpu::SOFTIRQ_PENDING * 8) as i64);
    a.movi(R8, bits as i64);
    a.or(R9, R8);
    a.store(Rbp, (pcpu::SOFTIRQ_PENDING * 8) as i64, R9);
}

/// `do_irq`: route a device interrupt to the owning domain's event channel
/// (the interface the paper names for "common interrupts ... do_irq()").
fn emit_do_irq(a: &mut Asm) {
    a.global(DO_IRQ);
    // rdx = VMER (58..73) → IRQ line.
    a.mov(R13, Rdx);
    a.subi(R13, 58);
    a.mov(R15, Rdi);
    a.call("domain_audit"); // irq-descriptor/accounting walk
    bump_global(a, lay::global::IRQ_COUNT);
    // Owning domain: static round-robin IRQ routing.
    a.movi(R8, lay::global_addr(lay::global::NUM_DOMS) as i64);
    a.load(R8, R8, 0);
    a.mov(R12, R13);
    a.rem(R12, R8); // dom id
    a.mov(R14, R12);
    a.movi(R9, (domain::STRIDE * 8) as i64);
    a.mul(R14, R9);
    a.movi(R9, lay::domain_addr(0) as i64);
    a.add(R14, R9); // r14 = domain descriptor
                    // Channel = IRQ line (device IRQs bind to low ports).
    a.load(R11, R14, (domain::EVTCHN_PTR * 8) as i64);
    a.mov(R9, R13);
    a.shl(R9, 3);
    a.add(R11, R9); // r11 = channel word
    a.label("do_irq.set_pending");
    a.load(Rcx, R11, 0);
    a.movi(R9, evtchn::PENDING_BIT as i64);
    a.or(Rcx, R9);
    a.store(R11, 0, Rcx);
    a.movi(R9, evtchn::MASKED_BIT as i64);
    a.and(R9, Rcx);
    a.cmpi(R9, 0);
    a.jne("do_irq.done");
    // Wake the bound VCPU.
    a.mov(R9, Rcx);
    a.shr(R9, 8);
    a.movi(Rbx, lay::MAX_VCPUS_PER_DOM as i64);
    a.rem(R9, Rbx);
    a.load(Rbx, R14, (domain::FIRST_VCPU * 8) as i64);
    a.add(Rbx, R9);
    a.movi(R9, (vcpu::STRIDE * 8) as i64);
    a.mul(Rbx, R9);
    a.movi(R9, vcpu::BASE as i64);
    a.add(Rbx, R9); // rbx = target VCPU
    a.movi(R9, 1);
    a.store(Rbx, (vcpu::UPCALL_PENDING * 8) as i64, R9);
    a.store(Rbx, (vcpu::RUNNABLE * 8) as i64, R9);
    raise_softirq(a, lay::softirq::SCHED);
    a.label("do_irq.done");
    a.ret();
}

/// APIC 0 — the periodic timer tick. Updates the wall clock, every domain's
/// shared time page (version/system-time/TSC-stamp protocol), expires VCPU
/// singleshot timers, and occasionally raises the scheduler softirq.
fn emit_apic_timer(a: &mut Asm) {
    let l = apic_label(0);
    a.global(l.clone());
    a.movi(R8, lay::global_addr(lay::global::WALLCLOCK) as i64);
    a.load(Rcx, R8, 0);
    a.addi(Rcx, 1);
    a.store(R8, 0, Rcx); // rcx = new wallclock, kept live below
    a.load(R9, Rbp, (pcpu::TICKS * 8) as i64);
    a.addi(R9, 1);
    a.store(Rbp, (pcpu::TICKS * 8) as i64, R9);
    // Per-domain guest time pages.
    a.movi(R8, lay::global_addr(lay::global::NUM_DOMS) as i64);
    a.load(R8, R8, 0);
    a.movi(R12, lay::domain_addr(0) as i64);
    a.movi(R13, 0);
    a.label(format!("{l}.dloop"));
    a.cmp(R13, R8);
    a.jge(format!("{l}.timers"));
    a.load(R9, R12, (domain::SHARED_PTR * 8) as i64);
    // version++ (odd = being updated)
    a.load(Rbx, R9, (shared::TIME_VERSION * 8) as i64);
    a.addi(Rbx, 1);
    a.store(R9, (shared::TIME_VERSION * 8) as i64, Rbx);
    // system_time = wallclock * 1000
    a.mov(Rbx, Rcx);
    a.movi(R11, 1000);
    a.mul(Rbx, R11);
    a.store(R9, (shared::SYSTEM_TIME * 8) as i64, Rbx);
    // tsc stamp
    a.rdtsc();
    a.shl(Rdx, 32);
    a.or(Rax, Rdx);
    a.store(R9, (shared::TSC_STAMP * 8) as i64, Rax);
    // wallclock copy + version++ (even = stable)
    a.store(R9, (shared::WALLCLOCK * 8) as i64, Rcx);
    a.load(Rbx, R9, (shared::TIME_VERSION * 8) as i64);
    a.addi(Rbx, 1);
    a.store(R9, (shared::TIME_VERSION * 8) as i64, Rbx);
    a.addi(R12, (domain::STRIDE * 8) as i64);
    a.addi(R13, 1);
    a.jmp(format!("{l}.dloop"));
    // Singleshot timer scan over all real VCPUs.
    a.label(format!("{l}.timers"));
    a.movi(R12, lay::vcpu_addr(0) as i64);
    a.movi(R13, 0);
    a.label(format!("{l}.vloop"));
    a.cmpi(R13, (lay::MAX_DOMS * lay::MAX_VCPUS_PER_DOM) as i64);
    a.jge(format!("{l}.credit"));
    a.load(R9, R12, (vcpu::TIMER_DEADLINE * 8) as i64);
    a.cmpi(R9, 0);
    a.je(format!("{l}.vnext"));
    a.cmp(R9, Rcx);
    a.jg(format!("{l}.vnext"));
    // Expired: fire the virtual timer event.
    a.movi(R9, 0);
    a.store(R12, (vcpu::TIMER_DEADLINE * 8) as i64, R9);
    a.movi(R9, 1);
    a.store(R12, (vcpu::UPCALL_PENDING * 8) as i64, R9);
    a.store(R12, (vcpu::RUNNABLE * 8) as i64, R9);
    raise_softirq(a, lay::softirq::TIMER);
    a.label(format!("{l}.vnext"));
    a.addi(R12, (vcpu::STRIDE * 8) as i64);
    a.addi(R13, 1);
    a.jmp(format!("{l}.vloop"));
    // Credit accounting: every ~4th tick ends the running VCPU's slice.
    a.label(format!("{l}.credit"));
    a.noise(Rbx, 4);
    a.cmpi(Rbx, 0);
    a.jne(format!("{l}.done"));
    raise_softirq(a, lay::softirq::SCHED);
    a.label(format!("{l}.done"));
    a.ret();
}

/// APIC 1 — reschedule IPI.
fn emit_apic_resched(a: &mut Asm) {
    a.global(apic_label(1));
    raise_softirq(a, lay::softirq::SCHED);
    a.ret();
}

/// APIC 2 — call-function IPI: run the queued cross-CPU work items.
fn emit_apic_callfunc(a: &mut Asm) {
    let l = apic_label(2);
    a.global(l.clone());
    a.movi(R13, 0);
    a.label(format!("{l}.loop"));
    a.movi(R8, lay::global_addr(lay::global::SCRATCH + 4) as i64);
    a.load(R9, R8, 0);
    a.add(R9, R13);
    a.store(R8, 0, R9);
    a.addi(R13, 1);
    a.cmpi(R13, 4);
    a.jl(format!("{l}.loop"));
    a.ret();
}

/// APIC 3 — performance-counter overflow interrupt.
fn emit_apic_pmu(a: &mut Asm) {
    let l = apic_label(3);
    a.global(l);
    a.inp(Rbx, 0x61);
    a.movi(R8, lay::global_addr(lay::global::SCRATCH + 5) as i64);
    a.load(R9, R8, 0);
    a.add(R9, Rbx);
    a.store(R8, 0, R9);
    a.ret();
}

/// APIC 4 — thermal sensor.
fn emit_apic_thermal(a: &mut Asm) {
    a.global(apic_label(4));
    bump_global(a, lay::global::SCRATCH + 6);
    a.ret();
}

/// APIC 5 — spurious interrupt: acknowledged and ignored.
fn emit_apic_spurious(a: &mut Asm) {
    a.global(apic_label(5));
    a.ret();
}

/// APIC 6 — APIC error: count and acknowledge at the PIC.
fn emit_apic_error(a: &mut Asm) {
    a.global(apic_label(6));
    bump_global(a, lay::global::SCRATCH + 7);
    a.movi(R9, 0x66);
    a.out(super::hypercalls::PIC_PORT, R9);
    a.ret();
}

/// APIC 7 — secondary local timer: burn down the per-CPU work credit.
fn emit_apic_local_timer(a: &mut Asm) {
    let l = apic_label(7);
    a.global(l.clone());
    a.load(R9, Rbp, (pcpu::WORK * 8) as i64);
    a.movi(R13, 0);
    a.label(format!("{l}.loop"));
    a.cmpi(R9, 0);
    a.jle(format!("{l}.done"));
    a.subi(R9, 1);
    a.addi(R13, 1);
    a.cmpi(R13, 2);
    a.jl(format!("{l}.loop"));
    a.label(format!("{l}.done"));
    a.store(Rbp, (pcpu::WORK * 8) as i64, R9);
    a.ret();
}

/// APIC 8 — TLB-flush IPI: invalidate 8 shootdown slots.
fn emit_apic_tlb_flush(a: &mut Asm) {
    let l = apic_label(8);
    a.global(l.clone());
    a.movi(R13, 0);
    a.movi(R8, lay::global_addr(lay::global::SCRATCH + 8) as i64);
    a.label(format!("{l}.loop"));
    a.store(R8, 0, R13);
    a.addi(R13, 1);
    a.cmpi(R13, 8);
    a.jl(format!("{l}.loop"));
    a.ret();
}

/// APIC 9 — wakeup IPI: make a (load-dependent) VCPU runnable.
fn emit_apic_wakeup(a: &mut Asm) {
    let l = apic_label(9);
    a.global(l);
    a.noise(Rbx, (lay::MAX_DOMS * lay::MAX_VCPUS_PER_DOM) as u64);
    a.movi(R9, (vcpu::STRIDE * 8) as i64);
    a.mul(Rbx, R9);
    a.movi(R9, vcpu::BASE as i64);
    a.add(Rbx, R9);
    a.movi(R9, 1);
    a.store(Rbx, (vcpu::RUNNABLE * 8) as i64, R9);
    a.ret();
}

/// `do_softirq`: drain the per-CPU pending bits (paper §IV category 3).
fn emit_do_softirq(a: &mut Asm) {
    let l = DO_SOFTIRQ;
    a.global(l);
    a.mov(R15, Rdi);
    a.call("domain_audit");
    a.load(R12, Rbp, (pcpu::SOFTIRQ_PENDING * 8) as i64);
    // The pending mask only ever holds the three architected bits; assert
    // that before acting on it (boundary assertion on corrupted state).
    a.assert_le(R12, 7, crate::assert_ids::SOFTIRQ_BOUND);
    a.movi(R9, 0);
    a.store(Rbp, (pcpu::SOFTIRQ_PENDING * 8) as i64, R9);
    a.mov(Rbx, R12);
    a.movi(R9, lay::softirq::SCHED as i64);
    a.and(Rbx, R9);
    a.cmpi(Rbx, 0);
    a.je("do_softirq.timer");
    a.call("schedule");
    a.label("do_softirq.timer");
    a.mov(Rbx, R12);
    a.movi(R9, lay::softirq::TIMER as i64);
    a.and(Rbx, R9);
    a.cmpi(Rbx, 0);
    a.je("do_softirq.tasklet");
    bump_global(a, lay::global::SCRATCH + 9);
    a.label("do_softirq.tasklet");
    a.mov(Rbx, R12);
    a.movi(R9, lay::softirq::TASKLET as i64);
    a.and(Rbx, R9);
    a.cmpi(Rbx, 0);
    a.je("do_softirq.done");
    a.call("do_tasklet_body");
    a.label("do_softirq.done");
    a.ret();
}

/// `do_tasklet` and its shared body: deferred work with a load-dependent
/// batch size.
fn emit_do_tasklet(a: &mut Asm) {
    a.global(DO_TASKLET);
    a.call("do_tasklet_body");
    a.ret();
    a.global("do_tasklet_body");
    bump_global(a, lay::global::TASKLET_RUNS);
    a.noise(R13, 8);
    a.label("do_tasklet.loop");
    a.cmpi(R13, 0);
    a.je("do_tasklet.done");
    a.movi(R8, lay::global_addr(lay::global::SCRATCH + 10) as i64);
    a.store(R8, 0, R13);
    a.subi(R13, 1);
    a.jmp("do_tasklet.loop");
    a.label("do_tasklet.done");
    a.ret();
}

/// Hardware-assisted direct exits: port I/O, CPUID, RDTSC, HLT.
fn emit_hvm_handlers(a: &mut Asm) {
    // I/O read: emulate the device and hand the value to the guest. HVM
    // exits run the device-model resume path first (audit walk).
    a.global("hvm_io_read");
    a.mov(R15, Rdi);
    a.call("domain_audit");
    a.inp(R9, super::hypercalls::CONSOLE_PORT);
    a.store(Rdi, 0, R9);
    a.ret();
    // I/O write: forward the guest's RAX to the device.
    a.global("hvm_io_write");
    a.mov(R15, Rdi);
    a.call("domain_audit");
    a.load(R9, Rdi, 0);
    a.out(super::hypercalls::CONSOLE_PORT, R9);
    a.ret();
    // CPUID exit: hardware already advanced the saved RIP.
    a.global("hvm_cpuid");
    a.mov(R15, Rdi);
    a.call("domain_audit");
    a.call("emulate_cpuid_core");
    a.ret();
    a.global("hvm_rdtsc");
    a.mov(R15, Rdi);
    a.call("domain_audit");
    a.call("emulate_rdtsc_core");
    a.ret();
    // HLT exit: block the VCPU and pick another.
    a.global("hvm_hlt");
    a.mov(R15, Rdi);
    a.call("domain_audit");
    a.movi(R9, 0);
    a.store(Rdi, (vcpu::RUNNABLE * 8) as i64, R9);
    a.call("schedule");
    a.ret();
}
