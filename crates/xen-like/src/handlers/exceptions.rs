//! The guest-exception handlers (vectors 0..=19).
//!
//! Guest exceptions arrive as VM exits. Most are delivered to the guest
//! kernel's registered trap handler (`deliver_trap_to_guest`). The #GP
//! handler is special: para-virtualized guests reach the hypervisor's
//! instruction emulator through it — the paper's running example of
//! long-latency error propagation is precisely this path ("cpuid is then
//! carried out in the hypervisor context; the results ... will be written
//! into the VM's VCPU structure").

use crate::layout::{self as lay, domain, shared, vcpu};
use sim_asm::Asm;
use sim_machine::Reg::*;
use sim_machine::{Opcode, Vector};

/// Label of the handler for exception vector `v`.
pub fn label(v: u8) -> String {
    format!("exc_{v:02}_{}", NAME[v as usize])
}

/// Short names for the exception handlers.
pub const NAME: [&str; 20] = [
    "divide_error",
    "debug",
    "nmi",
    "breakpoint",
    "overflow",
    "bound_range",
    "invalid_op",
    "device_na",
    "double_fault",
    "copro_overrun",
    "invalid_tss",
    "seg_not_present",
    "stack_fault",
    "gp_fault",
    "page_fault",
    "reserved",
    "fp_error",
    "alignment",
    "machine_check",
    "simd_error",
];

/// CPUID mixing constant — must match [`sim_machine::Machine::cpuid_model`].
const CPUID_K: u64 = 0x2545_F491_4F6C_DD1D;

/// Emit all twenty exception handlers plus the shared emulation routines.
pub fn emit_all(a: &mut Asm) {
    emit_deliver_trap(a);
    emit_cpuid_core(a);
    emit_rdtsc_core(a);
    for v in 0..20u8 {
        match v {
            1 | 3 => emit_benign(a, v), // #DB / #BP: count and resume
            2 => emit_nmi(a),
            8 | 18 => emit_fatal_for_guest(a, v), // #DF / #MC: domain dies
            13 => emit_gp(a),
            14 => emit_pf(a),
            15 => emit_benign(a, v), // reserved vector: count only
            _ => emit_deliverer(a, v),
        }
    }
}

/// Load a 64-bit constant that exceeds the 48-bit immediate range.
fn movi64(a: &mut Asm, dst: sim_machine::Reg, v: u64) {
    a.movi(dst, (v >> 32) as i64);
    a.shl(dst, 32);
    a.movi(R9, (v & 0xffff_ffff) as i64);
    a.or(dst, R9);
}

/// `deliver_trap_to_guest`: push the interrupted RIP on the guest kernel
/// stack, mark the vector pending, and redirect the guest to its registered
/// trap handler. Expects `rax` = vector, `rdi` = VCPU.
fn emit_deliver_trap(a: &mut Asm) {
    a.global("deliver_trap_to_guest");
    // Push an iret frame (RIP, RFLAGS, RAX) onto the guest kernel stack —
    // the guest's trap handler unwinds it with the `iret` hypercall. If the
    // guest RSP was corrupted by a fault, these stores page-fault *in host
    // mode* — a fatal exception the runtime detector catches.
    a.load(Rcx, Rdi, 4 * 8);
    a.subi(Rcx, 24);
    a.load(Rbx, Rdi, (vcpu::SAVE_RIP * 8) as i64);
    a.store(Rcx, 0, Rbx);
    a.load(Rbx, Rdi, (vcpu::SAVE_RFLAGS * 8) as i64);
    a.store(Rcx, 8, Rbx);
    a.load(Rbx, Rdi, 0);
    a.store(Rcx, 16, Rbx);
    a.store(Rdi, 4 * 8, Rcx);
    // pending_events |= 1 << vector (shift loop: no variable shift).
    a.movi(Rbx, 1);
    a.mov(Rdx, Rax);
    a.label("deliver_trap.shift");
    a.cmpi(Rdx, 0);
    a.je("deliver_trap.shifted");
    a.shl(Rbx, 1);
    a.subi(Rdx, 1);
    a.jmp("deliver_trap.shift");
    a.label("deliver_trap.shifted");
    a.load(Rdx, Rdi, (vcpu::PENDING_EVENTS * 8) as i64);
    a.or(Rdx, Rbx);
    a.store(Rdi, (vcpu::PENDING_EVENTS * 8) as i64, Rdx);
    // Redirect to the guest trap handler and mask upcalls for the duration.
    a.load(Rbx, Rdi, (vcpu::DOM_PTR * 8) as i64);
    a.load(Rbx, Rbx, (domain::TRAP_HANDLER * 8) as i64);
    a.store(Rdi, (vcpu::SAVE_RIP * 8) as i64, Rbx);
    a.movi(Rbx, 1);
    a.store(Rdi, (vcpu::UPCALL_MASK * 8) as i64, Rbx);
    a.ret();
}

/// `emulate_cpuid_core`: reproduce the hardware CPUID model in hypervisor
/// code and write the results into the VCPU save area. Does *not* advance
/// the saved RIP (the PV #GP wrapper does; the HVM exit already did).
fn emit_cpuid_core(a: &mut Asm) {
    a.global("emulate_cpuid_core");
    a.load(Rcx, Rdi, 0); // leaf from saved guest RAX
    movi64(a, R8, CPUID_K);
    // Output register slots in save-area order [rax, rbx, rcx, rdx] for
    // salts 1..=4 — must match Machine::cpuid_model.
    for (salt, slot) in [(1i64, 0i64), (2, 3 * 8), (3, 8), (4, 2 * 8)] {
        a.mov(Rax, Rcx);
        a.addi(Rax, salt);
        a.mul(Rax, R8);
        a.mov(Rbx, Rax);
        a.shr(Rbx, 29);
        a.xor(Rax, Rbx);
        a.store(Rdi, slot, Rax);
    }
    a.ret();
}

/// `emulate_rdtsc_core`: read the host TSC, apply the VCPU's virtual-time
/// offset, split into guest RAX/RDX, and stamp the shared-info page. These
/// are the paper's "time values" — data that cannot be verified by naive
/// instruction duplication.
fn emit_rdtsc_core(a: &mut Asm) {
    a.global("emulate_rdtsc_core");
    a.rdtsc(); // host cycles: rax = low32, rdx = high32
    a.shl(Rdx, 32);
    a.or(Rax, Rdx);
    a.load(Rbx, Rdi, (vcpu::TIME_OFFSET * 8) as i64);
    a.add(Rax, Rbx);
    a.mov(Rdx, Rax);
    a.shr(Rdx, 32);
    a.movi(Rbx, 0xffff_ffff);
    a.and(Rax, Rbx);
    a.store(Rdi, 0, Rax); // guest rax (low half)
    a.store(Rdi, 2 * 8, Rdx); // guest rdx (high half)
    a.load(Rbx, Rdi, (vcpu::DOM_PTR * 8) as i64);
    a.load(Rbx, Rbx, (domain::SHARED_PTR * 8) as i64);
    a.store(Rbx, (shared::TSC_STAMP * 8) as i64, Rax);
    a.ret();
}

/// Advance the saved guest RIP past the emulated instruction.
fn advance_rip(a: &mut Asm) {
    a.load(Rbx, Rdi, (vcpu::SAVE_RIP * 8) as i64);
    a.addi(Rbx, 8);
    a.store(Rdi, (vcpu::SAVE_RIP * 8) as i64, Rbx);
}

/// Plain deliverer: route the vector to the guest trap handler (after the
/// audit walk Xen's do_trap performs while deciding the disposition).
fn emit_deliverer(a: &mut Asm, v: u8) {
    a.global(label(v));
    a.mov(R15, Rdi);
    a.call("domain_audit");
    a.movi(Rax, v as i64);
    a.jmp("deliver_trap_to_guest"); // tail call; its ret returns to dispatch
}

/// Benign vectors (#DB, #BP, reserved): count and resume the guest.
fn emit_benign(a: &mut Asm, v: u8) {
    a.global(label(v));
    a.movi(R8, lay::global_addr(lay::global::SCRATCH + 3) as i64);
    a.load(R9, R8, 0);
    a.addi(R9, 1);
    a.store(R8, 0, R9);
    // Skip the trapping instruction so debug exceptions don't loop.
    advance_rip(a);
    a.ret();
}

/// NMI: account and kick the timer softirq (watchdog semantics).
fn emit_nmi(a: &mut Asm) {
    a.global(label(2));
    a.load(R9, Rbp, (lay::pcpu::SOFTIRQ_PENDING * 8) as i64);
    a.movi(R8, lay::softirq::TIMER as i64);
    a.or(R9, R8);
    a.store(Rbp, (lay::pcpu::SOFTIRQ_PENDING * 8) as i64, R9);
    a.ret();
}

/// #DF / #MC from a guest: the domain is beyond recovery — mark it dying,
/// stop its VCPU and reschedule.
fn emit_fatal_for_guest(a: &mut Asm, v: u8) {
    a.global(label(v));
    a.load(R8, Rdi, (vcpu::DOM_PTR * 8) as i64);
    a.movi(R9, 1);
    a.store(R8, (domain::IS_DYING * 8) as i64, R9);
    a.movi(R9, 0);
    a.store(Rdi, (vcpu::RUNNABLE * 8) as i64, R9);
    a.call("schedule");
    a.ret();
}

/// #GP: the PV trap-and-emulate path. Decode the faulting guest instruction
/// and emulate CPUID/RDTSC/OUT/IN; anything else is delivered to the guest.
fn emit_gp(a: &mut Asm) {
    let l = label(13);
    a.global(l.clone());
    a.mov(R15, Rdi);
    a.call("domain_audit");
    // Fetch the faulting instruction word from guest text.
    a.load(Rbx, Rdi, (vcpu::SAVE_RIP * 8) as i64);
    a.load(Rbx, Rbx, 0);
    a.mov(Rcx, Rbx);
    a.shr(Rcx, 56); // opcode byte
    a.cmpi(Rcx, Opcode::Cpuid as i64);
    a.je(format!("{l}.cpuid"));
    a.cmpi(Rcx, Opcode::Rdtsc as i64);
    a.je(format!("{l}.rdtsc"));
    a.cmpi(Rcx, Opcode::Out as i64);
    a.je(format!("{l}.out"));
    a.cmpi(Rcx, Opcode::In as i64);
    a.je(format!("{l}.in"));
    // Unemulatable #GP: deliver to the guest.
    a.movi(Rax, Vector::GeneralProtection as i64);
    a.jmp("deliver_trap_to_guest");

    a.label(format!("{l}.cpuid"));
    a.call("emulate_cpuid_core");
    advance_rip(a);
    a.ret();

    a.label(format!("{l}.rdtsc"));
    a.call("emulate_rdtsc_core");
    advance_rip(a);
    a.ret();

    // OUT emulation: extract the source register field, read its saved
    // value, forward to the console device.
    a.label(format!("{l}.out"));
    a.mov(Rcx, Rbx);
    a.shr(Rcx, 48);
    a.movi(R8, 0xf);
    a.and(Rcx, R8);
    a.shl(Rcx, 3);
    a.mov(R8, Rdi);
    a.add(R8, Rcx);
    a.load(R9, R8, 0);
    a.out(super::hypercalls::CONSOLE_PORT, R9);
    advance_rip(a);
    a.ret();

    // IN emulation: read the device, write into the destination slot.
    a.label(format!("{l}.in"));
    a.mov(Rcx, Rbx);
    a.shr(Rcx, 52);
    a.movi(R8, 0xf);
    a.and(Rcx, R8);
    a.shl(Rcx, 3);
    a.mov(R8, Rdi);
    a.add(R8, Rcx);
    a.inp(R9, super::hypercalls::CONSOLE_PORT);
    a.store(R8, 0, R9);
    advance_rip(a);
    a.ret();
}

/// #PF: qualification carries the faulting address. Guest page faults are
/// the guest kernel's problem: account them per-domain, note whether the
/// address was even inside the guest's window (diagnostics), and deliver —
/// a PV guest whose corrupted pointer faults sees exactly the crash it
/// would see on bare metal (the paper's APP-crash outcome).
fn emit_pf(a: &mut Asm) {
    let l = label(14);
    a.global(l.clone());
    a.mov(R15, Rdi);
    a.call("domain_audit");
    a.load(R8, Rdi, (vcpu::DOM_PTR * 8) as i64);
    // Per-domain fault accounting (domain word 38).
    a.load(R9, R8, 38 * 8);
    a.addi(R9, 1);
    a.store(R8, 38 * 8, R9);
    // Out-of-window faults additionally bump the foreign-fault counter.
    a.load(R9, R8, (domain::MEM_BASE * 8) as i64);
    a.cmp(Rsi, R9);
    a.jb(format!("{l}.foreign"));
    a.load(Rbx, R8, (domain::MEM_SIZE * 8) as i64);
    a.add(R9, Rbx);
    a.cmp(Rsi, R9);
    a.jb(format!("{l}.deliver"));
    a.label(format!("{l}.foreign"));
    a.load(R9, R8, 39 * 8); // domain word 39: out-of-window faults
    a.addi(R9, 1);
    a.store(R8, 39 * 8, R9);
    a.label(format!("{l}.deliver"));
    a.movi(Rax, Vector::PageFault as i64);
    a.jmp("deliver_trap_to_guest");
}
