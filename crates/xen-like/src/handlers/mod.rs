//! Hypervisor code, written in the simulated ISA.
//!
//! Every routine here is emitted through [`sim_asm::Asm`] into the
//! hypervisor text region and executed instruction-by-instruction by the
//! simulator. The register convention for handlers:
//!
//! | register | meaning on entry                    | must preserve? |
//! |----------|-------------------------------------|----------------|
//! | `rbp`    | per-PCPU block address              | yes            |
//! | `rdi`    | current VCPU descriptor address     | no (reloaded)  |
//! | `rsi`    | exit qualification                  | no             |
//! | `rdx`    | dense VM-exit-reason code (VMER)    | no             |
//!
//! Handlers return with `ret`; the return stub then delivers pending guest
//! events and resumes the guest.

pub mod exceptions;
pub mod hypercalls;
pub mod irq;
pub mod sched;
pub mod stubs;
