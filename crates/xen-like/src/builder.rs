//! Build the hypervisor image and an initialized machine.
//!
//! `build_image` assembles every stub and handler into one text image;
//! `build_machine` maps the physical memory, loads the image, fills the
//! dispatch table and initializes all hypervisor data structures for a
//! given topology (CPUs × domains × VCPUs).

use crate::handlers::{exceptions, hypercalls, irq, sched, stubs};
use crate::layout::{self as lay, domain, pcpu, runq, vcpu};
use sim_asm::{Asm, Image};
use sim_machine::exit::{NR_APIC_VECTORS, NR_DEVICE_IRQS, NR_HYPERCALLS};
use sim_machine::{CycleModel, Machine, MachineConfig, Memory, Perms, VirtMode};

/// One guest domain in the topology.
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// Number of virtual CPUs (1..=MAX_VCPUS_PER_DOM).
    pub nr_vcpus: usize,
}

/// The machine topology: mirrors the paper's experimental setups (e.g. one
/// Dom0 plus two para-virtualized DomUs for fault injection; four guest VMs
/// for the activation-frequency study).
#[derive(Debug, Clone)]
pub struct Topology {
    /// Physical (logical) CPUs.
    pub nr_cpus: usize,
    /// Domain 0 is the control domain; the rest are guests.
    pub domains: Vec<DomainSpec>,
    /// Para-virtualized or hardware-assisted guests.
    pub virt_mode: VirtMode,
    /// Seed for the workload-variability generator.
    pub seed: u64,
    /// Cycle model (defaults match the paper's Xeon E5506).
    pub cycle_model: CycleModel,
}

impl Topology {
    /// The paper's fault-injection setup: 4 CPUs, Dom0 with one VCPU and two
    /// DomU guests with one VCPU each, para-virtualized.
    pub fn paper_fault_injection(seed: u64) -> Topology {
        Topology {
            nr_cpus: 1,
            domains: vec![
                DomainSpec { nr_vcpus: 1 },
                DomainSpec { nr_vcpus: 1 },
                DomainSpec { nr_vcpus: 1 },
            ],
            virt_mode: VirtMode::Para,
            seed,
            cycle_model: CycleModel::default(),
        }
    }

    /// The paper's performance setup: four guest VMs (plus Dom0), one VCPU
    /// each.
    pub fn paper_performance(virt_mode: VirtMode, seed: u64) -> Topology {
        Topology {
            nr_cpus: 4,
            domains: vec![DomainSpec { nr_vcpus: 1 }; 5],
            virt_mode,
            seed,
            cycle_model: CycleModel::default(),
        }
    }

    /// Total real VCPUs.
    pub fn nr_vcpus(&self) -> usize {
        self.domains.iter().map(|d| d.nr_vcpus).sum()
    }
}

/// Assemble the full hypervisor text image for `nr_cpus` CPUs.
pub fn build_image(nr_cpus: usize) -> Image {
    assert!(nr_cpus <= lay::MAX_PCPUS);
    let mut a = Asm::new(lay::HV_TEXT_BASE);
    // Trampolines must be first: hardware enters at HV_TEXT_BASE + cpu*24.
    stubs::emit_trampolines(&mut a, lay::MAX_PCPUS);
    stubs::emit_common(&mut a);
    sched::emit_schedule(&mut a);
    hypercalls::emit_all(&mut a);
    exceptions::emit_all(&mut a);
    irq::emit_all(&mut a);
    let img = a.assemble().expect("hypervisor image assembles");
    assert!(
        img.len() <= lay::HV_TEXT_WORDS,
        "hypervisor text overflow: {} words > {}",
        img.len(),
        lay::HV_TEXT_WORDS
    );
    img
}

/// Resolve the dispatch-table entry for a dense VMER code.
fn dispatch_target(img: &Image, vmer: u16) -> u64 {
    match vmer {
        c if c < NR_HYPERCALLS as u16 => img.sym(&hypercalls::label(c as u8)),
        c if c < 58 => img.sym(&exceptions::label((c - 38) as u8)),
        c if c < 58 + NR_DEVICE_IRQS as u16 => img.sym(irq::DO_IRQ),
        c if c < 74 + NR_APIC_VECTORS as u16 => img.sym(&irq::apic_label((c - 74) as u8)),
        84 => img.sym(irq::DO_SOFTIRQ),
        85 => img.sym(irq::DO_TASKLET),
        86 => img.sym("hvm_io_read"),
        87 => img.sym("hvm_io_write"),
        88 => img.sym("hvm_cpuid"),
        89 => img.sym("hvm_rdtsc"),
        90 => img.sym("hvm_hlt"),
        _ => unreachable!("vmer {vmer} out of range"),
    }
}

/// Map memory, load the hypervisor, initialize every data structure, and
/// return the machine plus the assembled image (for symbol lookups).
pub fn build_machine(topo: &Topology) -> (Machine, Image) {
    assert!(!topo.domains.is_empty(), "need at least dom0");
    assert!(topo.domains.len() <= lay::MAX_DOMS);
    for (d, spec) in topo.domains.iter().enumerate() {
        assert!(
            spec.nr_vcpus >= 1 && spec.nr_vcpus <= lay::MAX_VCPUS_PER_DOM,
            "domain {d} has invalid vcpu count {}",
            spec.nr_vcpus
        );
    }
    let img = build_image(topo.nr_cpus);

    let mut mem = Memory::new();
    mem.map("hv.text", lay::HV_TEXT_BASE, lay::HV_TEXT_WORDS, Perms::RX);
    // Hypervisor data families are mapped sparsely, each as its own region
    // with unmapped gaps between them (see `layout`): corrupted indexes and
    // pointers fault instead of silently hitting a neighbour structure.
    mem.map("hv.global", lay::GLOBAL_BASE, lay::GLOBAL_WORDS, Perms::RW);
    mem.map(
        "hv.scratch",
        lay::SCRATCH_BASE,
        lay::SCRATCH_WORDS,
        Perms::RW,
    );
    mem.map(
        "hv.dispatch",
        lay::DISPATCH_BASE,
        lay::dispatch_entries() as usize,
        Perms::RW,
    );
    mem.map(
        "hv.pcpu",
        lay::pcpu::BASE,
        lay::MAX_PCPUS * lay::pcpu::STRIDE as usize,
        Perms::RW,
    );
    mem.map(
        "hv.vcpu",
        lay::vcpu::BASE,
        lay::MAX_VCPUS * lay::vcpu::STRIDE as usize,
        Perms::RW,
    );
    mem.map(
        "hv.domain",
        lay::domain::BASE,
        lay::MAX_DOMS * lay::domain::STRIDE as usize,
        Perms::RW,
    );
    mem.map(
        "hv.evtchn",
        lay::evtchn::BASE,
        lay::MAX_DOMS * lay::evtchn::STRIDE as usize,
        Perms::RW,
    );
    mem.map(
        "hv.grant",
        lay::grant::BASE,
        lay::MAX_DOMS * lay::grant::STRIDE as usize,
        Perms::RW,
    );
    mem.map(
        "hv.shared",
        lay::shared::BASE,
        lay::MAX_DOMS * lay::shared::STRIDE as usize,
        Perms::RW,
    );
    mem.map(
        "hv.runq",
        lay::runq::BASE,
        lay::MAX_PCPUS * lay::runq::STRIDE as usize,
        Perms::RW,
    );
    mem.map(
        "hv.ptbl",
        lay::ptbl::BASE,
        lay::MAX_DOMS * lay::ptbl::STRIDE as usize,
        Perms::RW,
    );
    mem.map(
        "hv.stacks",
        lay::HV_STACK_BASE,
        (lay::MAX_PCPUS as u64 * lay::HV_STACK_SIZE / 8) as usize,
        Perms::RW,
    );
    mem.map(
        "vmcs",
        lay::VMCS_BASE,
        lay::MAX_PCPUS * sim_machine::VMCS_WORDS as usize,
        Perms::RW,
    );
    for d in 0..topo.domains.len() {
        mem.map(
            &format!("dom{d}.text"),
            lay::guest_text(d),
            lay::GUEST_TEXT_WORDS,
            Perms::RX,
        );
        mem.map(
            &format!("dom{d}.data"),
            lay::guest_data(d),
            lay::GUEST_DATA_WORDS,
            Perms::RW,
        );
    }
    mem.load_image(img.base, &img.words)
        .expect("hypervisor text loads");

    let config = MachineConfig {
        nr_cpus: topo.nr_cpus,
        host_entry: lay::HV_TEXT_BASE,
        host_entry_stride: stubs::TRAMPOLINE_STRIDE,
        host_stack_base: lay::HV_STACK_BASE,
        host_stack_size: lay::HV_STACK_SIZE,
        vmcs_base: lay::VMCS_BASE,
        virt_mode: topo.virt_mode,
        cycle_model: topo.cycle_model,
    };
    let mut m = Machine::new(config, mem, topo.seed);

    init_data(&mut m, topo, &img);

    // Boot each CPU at the return-to-guest stub with its per-CPU pointer in
    // rbp: the first "activation" restores the first scheduled VCPU and
    // VM-enters it.
    let ret_stub = img.sym("vmexit_return");
    for cpu in 0..topo.nr_cpus {
        let c = m.cpu_mut(cpu);
        c.rip = ret_stub;
        c.set(sim_machine::Reg::Rbp, lay::pcpu_addr(cpu));
    }
    (m, img)
}

/// Populate globals, dispatch table, PCPU/VCPU/domain structures and run
/// queues.
fn init_data(m: &mut Machine, topo: &Topology, img: &Image) {
    let poke = |m: &mut Machine, addr: u64, v: u64| {
        m.mem.poke(addr, v).expect("init address mapped");
    };

    // Globals.
    poke(
        m,
        lay::global_addr(lay::global::NUM_DOMS),
        topo.domains.len() as u64,
    );
    poke(
        m,
        lay::global_addr(lay::global::NUM_PCPUS),
        topo.nr_cpus as u64,
    );
    poke(m, lay::global_addr(lay::global::WALLCLOCK), 1);

    // Dispatch table.
    for vmer in 0..lay::dispatch_entries() {
        poke(m, lay::dispatch_entry(vmer), dispatch_target(img, vmer));
    }

    // Domains and their VCPUs.
    let mut first_vcpu = 0usize;
    for (d, spec) in topo.domains.iter().enumerate() {
        let da = lay::domain_addr(d);
        poke(m, da + domain::DOM_ID * 8, d as u64);
        poke(m, da + domain::NR_VCPUS * 8, spec.nr_vcpus as u64);
        poke(m, da + domain::EVTCHN_PTR * 8, lay::evtchn_addr(d));
        poke(m, da + domain::GRANT_PTR * 8, lay::grant_addr(d));
        poke(m, da + domain::SHARED_PTR * 8, lay::shared_addr(d));
        poke(m, da + domain::MEM_BASE * 8, lay::guest_window(d));
        poke(m, da + domain::MEM_SIZE * 8, lay::GUEST_STRIDE);
        poke(m, da + domain::FIRST_VCPU * 8, first_vcpu as u64);
        // Until the guest registers one, traps are delivered to the guest
        // entry point.
        poke(m, da + domain::TRAP_HANDLER * 8, lay::guest_text(d));

        for v in 0..spec.nr_vcpus {
            let va = lay::vcpu_addr(first_vcpu + v);
            poke(m, va + vcpu::SAVE_RIP * 8, lay::guest_text(d));
            // Each VCPU gets its own kernel stack carved from the top of
            // the data region.
            poke(m, va + 4 * 8, lay::guest_stack_top(d) - (v as u64) * 0x2000);
            poke(m, va + vcpu::DOM_ID * 8, d as u64);
            poke(m, va + vcpu::VCPU_ID * 8, v as u64);
            poke(m, va + vcpu::RUNNABLE * 8, 1);
            poke(m, va + vcpu::DOM_PTR * 8, da);
            poke(
                m,
                va + vcpu::TIME_OFFSET * 8,
                (d as u64) * 0x1_0000 + v as u64 * 0x100,
            );
        }
        first_vcpu += lay::MAX_VCPUS_PER_DOM; // descriptors are strided per domain
    }

    // Idle VCPUs (one per physical CPU).
    for cpu in 0..topo.nr_cpus {
        let va = lay::vcpu_addr(lay::idle_vcpu_index(cpu));
        poke(m, va + vcpu::IS_IDLE * 8, 1);
        poke(m, va + vcpu::DOM_ID * 8, 0);
        poke(m, va + vcpu::DOM_PTR * 8, lay::domain_addr(0));
        poke(m, va + vcpu::SAVE_RIP * 8, lay::guest_text(0));
        poke(m, va + 4 * 8, lay::guest_stack_top(0) - 0x8000);
    }

    // Run queues: real VCPUs distributed round-robin over CPUs.
    let mut counts = vec![0u64; topo.nr_cpus];
    let mut assigned_first: Vec<Option<u64>> = vec![None; topo.nr_cpus];
    let mut global = 0usize;
    for (d, spec) in topo.domains.iter().enumerate() {
        for v in 0..spec.nr_vcpus {
            let idx = d * lay::MAX_VCPUS_PER_DOM + v;
            let cpu = global % topo.nr_cpus;
            let rq = lay::runq_addr(cpu);
            let slot = counts[cpu];
            assert!(slot < runq::MAX_ENTRIES, "run queue overflow on cpu {cpu}");
            poke(m, rq + (runq::ENTRIES + slot) * 8, lay::vcpu_addr(idx));
            counts[cpu] = slot + 1;
            if assigned_first[cpu].is_none() {
                assigned_first[cpu] = Some(lay::vcpu_addr(idx));
            }
            global += 1;
        }
    }
    for (cpu, &count) in counts.iter().enumerate() {
        let rq = lay::runq_addr(cpu);
        poke(m, rq + runq::COUNT * 8, count);
        poke(m, rq + runq::CURSOR * 8, 0);
    }

    // Guest page tables: every domain's data region is mapped through
    // identity PTEs in hv.ptbl, so data accesses walk a PTE first
    // (fault-on-walk). Healthy tables translate to themselves — execution
    // is unchanged — but a PTE soft error now manifests like on real
    // hardware: #PF on a cleared present bit, write fault on a cleared RW
    // bit, silent redirection on corrupted frame bits.
    for d in 0..topo.domains.len() {
        let map = sim_machine::PageMap {
            virt_base: lay::guest_data(d),
            nr_pages: lay::ptbl::PAGES_PER_DOM as u32,
            ptbl_base: lay::ptbl_addr(d),
        };
        for page in 0..map.nr_pages {
            poke(m, map.ptbl_base + page as u64 * 8, map.identity_pte(page));
        }
        m.mem.add_page_map(map);
    }

    // PCPU blocks.
    for cpu in 0..topo.nr_cpus {
        let pa = lay::pcpu_addr(cpu);
        poke(m, pa + pcpu::VMCS_PTR * 8, m.config.vmcs_field(cpu, 0));
        poke(m, pa + pcpu::RUNQ_PTR * 8, lay::runq_addr(cpu));
        poke(
            m,
            pa + pcpu::IDLE_VCPU * 8,
            lay::vcpu_addr(lay::idle_vcpu_index(cpu)),
        );
        match assigned_first[cpu] {
            Some(v) => {
                poke(m, pa + pcpu::CURRENT_VCPU * 8, v);
                poke(m, pa + pcpu::IDLE * 8, 0);
                // Cursor starts past entry 0 so the first schedule() call
                // rotates fairly.
                poke(
                    m,
                    lay::runq_addr(cpu) + runq::CURSOR * 8,
                    1 % counts[cpu].max(1),
                );
            }
            None => {
                poke(
                    m,
                    pa + pcpu::CURRENT_VCPU * 8,
                    lay::vcpu_addr(lay::idle_vcpu_index(cpu)),
                );
                poke(m, pa + pcpu::IDLE * 8, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_assembles_with_all_symbols() {
        let img = build_image(4);
        // Spot-check the symbol families.
        for n in 0..NR_HYPERCALLS {
            assert!(
                img.symbol(&hypercalls::label(n)).is_some(),
                "missing hypercall {n}"
            );
        }
        for v in 0..20u8 {
            assert!(
                img.symbol(&exceptions::label(v)).is_some(),
                "missing exception {v}"
            );
        }
        for v in 0..NR_APIC_VECTORS {
            assert!(
                img.symbol(&irq::apic_label(v)).is_some(),
                "missing apic {v}"
            );
        }
        assert!(img.symbol("vmexit_common").is_some());
        assert!(img.symbol("vmexit_return").is_some());
        assert!(img.symbol("schedule").is_some());
        assert!(img.symbol("deliver_events").is_some());
        assert!(img.symbol("evtchn_set_pending").is_some());
        assert!(img.symbol("vcpu_mark_events_pending").is_some());
    }

    #[test]
    fn image_size_is_realistic() {
        // The paper quotes ~2,000 LoC for Xentry and a much larger Xen; our
        // handler catalogue should be in the thousands of instructions.
        let img = build_image(4);
        assert!(
            img.len() > 1000,
            "suspiciously small hypervisor: {} words",
            img.len()
        );
        assert!(img.len() <= lay::HV_TEXT_WORDS);
    }

    #[test]
    fn trampolines_match_config_stride() {
        let img = build_image(lay::MAX_PCPUS);
        for cpu in 0..lay::MAX_PCPUS {
            let sym = img.sym(&format!("vmexit_entry_cpu{cpu}"));
            assert_eq!(
                sym,
                lay::HV_TEXT_BASE + cpu as u64 * stubs::TRAMPOLINE_STRIDE,
                "trampoline {cpu} misplaced"
            );
        }
    }

    #[test]
    fn machine_builds_with_initialized_structures() {
        let topo = Topology::paper_fault_injection(42);
        let (m, img) = build_machine(&topo);
        assert_eq!(
            m.mem.peek(lay::global_addr(lay::global::NUM_DOMS)).unwrap(),
            3
        );
        // Dispatch entry 17 (xen_version) points at its handler.
        assert_eq!(
            m.mem.peek(lay::dispatch_entry(17)).unwrap(),
            img.sym(&hypercalls::label(17))
        );
        // VCPU 0 of dom 1 was initialized.
        let va = lay::vcpu_addr(lay::MAX_VCPUS_PER_DOM);
        assert_eq!(m.mem.peek(va + vcpu::DOM_ID * 8).unwrap(), 1);
        assert_eq!(
            m.mem.peek(va + vcpu::SAVE_RIP * 8).unwrap(),
            lay::guest_text(1)
        );
        // CPU 0 boots at the return stub.
        assert_eq!(m.cpu(0).rip, img.sym("vmexit_return"));
    }

    #[test]
    #[should_panic(expected = "invalid vcpu count")]
    fn zero_vcpus_rejected() {
        let mut topo = Topology::paper_fault_injection(1);
        topo.domains[1].nr_vcpus = 0;
        build_machine(&topo);
    }
}
