//! Physical memory layout and hypervisor data-structure offsets.
//!
//! The hypervisor's data structures (per-physical-CPU blocks, VCPU save
//! areas, domain descriptors, event channels, grant tables, shared-info
//! pages, run queues) live in *simulated memory* and are accessed by
//! *simulated loads and stores*, so injected register faults corrupt them
//! the same way they corrupt Xen's structures. This module is the single
//! source of truth for where everything lives.

use sim_machine::exit::ExitReason;

/// Maximum physical CPUs the layout reserves space for.
pub const MAX_PCPUS: usize = 8;
/// Maximum domains (dom0 + guests).
pub const MAX_DOMS: usize = 8;
/// Maximum VCPUs per domain.
pub const MAX_VCPUS_PER_DOM: usize = 4;
/// Total VCPU slots: real VCPUs plus one idle VCPU per physical CPU.
pub const MAX_VCPUS: usize = MAX_DOMS * MAX_VCPUS_PER_DOM + MAX_PCPUS;
/// Event channels per domain.
pub const NR_EVTCHN: usize = 64;
/// Grant-table entries per domain.
pub const NR_GRANTS: usize = 32;

// ---------------------------------------------------------------------------
// Physical memory map (byte addresses)
// ---------------------------------------------------------------------------

/// Hypervisor text (read-only, executable).
pub const HV_TEXT_BASE: u64 = 0x0010_0000;
/// Hypervisor text size in words.
pub const HV_TEXT_WORDS: usize = 0x8000;

/// Hypervisor data structures live in *sparsely mapped* regions — one per
/// structure family, separated by large unmapped gaps — mirroring the
/// sparse heap layout of a real hypervisor. A fault-corrupted index or
/// pointer therefore usually lands in unmapped space and page-faults
/// (the dominant detection channel of the paper's Fig. 8), instead of
/// silently scribbling over a neighbouring structure.
pub const GLOBAL_BASE: u64 = 0x0040_0000;
/// Words in the global block.
pub const GLOBAL_WORDS: usize = 64;
/// Scratch block (handler work areas), deliberately separate from globals.
pub const SCRATCH_BASE: u64 = 0x0044_0000;
/// Words in the scratch block.
pub const SCRATCH_WORDS: usize = 64;
/// Dispatch table base.
pub const DISPATCH_BASE: u64 = 0x0048_0000;

/// Per-CPU host stacks.
pub const HV_STACK_BASE: u64 = 0x0090_0000;
/// Host stack bytes per CPU.
pub const HV_STACK_SIZE: u64 = 0x2000;

/// VMCS blocks (written by "hardware" at VM exits).
pub const VMCS_BASE: u64 = 0x00A0_0000;

/// Guest memory: domain `d` owns a window starting here.
pub const GUEST_BASE: u64 = 0x0100_0000;
/// Bytes per domain window.
pub const GUEST_STRIDE: u64 = 0x0040_0000;
/// Guest text offset within the window.
pub const GUEST_TEXT_OFF: u64 = 0;
/// Guest text words.
pub const GUEST_TEXT_WORDS: usize = 0x2000;
/// Guest data offset within the window.
pub const GUEST_DATA_OFF: u64 = 0x0020_0000;
/// Guest data words (stack lives at the top of this region).
pub const GUEST_DATA_WORDS: usize = 0x4000;

/// Base of domain `d`'s window.
pub fn guest_window(dom: usize) -> u64 {
    GUEST_BASE + dom as u64 * GUEST_STRIDE
}

/// Guest text base for domain `d`.
pub fn guest_text(dom: usize) -> u64 {
    guest_window(dom) + GUEST_TEXT_OFF
}

/// Guest data base for domain `d`.
pub fn guest_data(dom: usize) -> u64 {
    guest_window(dom) + GUEST_DATA_OFF
}

/// Initial guest stack pointer for domain `d` (top of data region).
pub fn guest_stack_top(dom: usize) -> u64 {
    guest_data(dom) + (GUEST_DATA_WORDS as u64) * 8
}

// ---------------------------------------------------------------------------
// Hypervisor data-structure families (sparsely mapped regions)
// ---------------------------------------------------------------------------

/// Global words.
pub mod global {
    /// Number of domains.
    pub const NUM_DOMS: u64 = 0;
    /// Number of physical CPUs.
    pub const NUM_PCPUS: u64 = 1;
    /// System wall clock (incremented by the timer tick handler).
    pub const WALLCLOCK: u64 = 2;
    /// Global scheduler tick counter.
    pub const SCHED_TICKS: u64 = 3;
    /// Count of tasklets executed.
    pub const TASKLET_RUNS: u64 = 4;
    /// Hypercall invocation counter (accounting).
    pub const HYPERCALL_COUNT: u64 = 5;
    /// Interrupt counter.
    pub const IRQ_COUNT: u64 = 6;
    /// Scratch used by handlers.
    pub const SCRATCH: u64 = 8;
}

/// Per-PCPU block: stride and field offsets (in words).
pub mod pcpu {
    /// Absolute base address of the PCPU array.
    pub const BASE: u64 = 0x0050_0000;
    /// Words per PCPU block.
    pub const STRIDE: u64 = 32;
    /// Address of the current VCPU's descriptor.
    pub const CURRENT_VCPU: u64 = 0;
    /// 1 when the CPU is running the idle VCPU.
    pub const IDLE: u64 = 1;
    /// Pending softirq bits (bit 0 = SCHED, 1 = TIMER, 2 = TASKLET).
    pub const SOFTIRQ_PENDING: u64 = 2;
    /// Local tick counter.
    pub const TICKS: u64 = 3;
    /// Address of this CPU's VMCS block (set at boot).
    pub const VMCS_PTR: u64 = 4;
    /// Address of this CPU's run queue.
    pub const RUNQ_PTR: u64 = 5;
    /// Scratch slot used by the exit stub to stash a guest register.
    pub const SCRATCH0: u64 = 6;
    /// Scratch.
    pub const SCRATCH1: u64 = 7;
    /// Accumulated hypercall work units (accounting).
    pub const WORK: u64 = 8;
    /// Address of the idle VCPU descriptor for this CPU.
    pub const IDLE_VCPU: u64 = 9;
}

/// Softirq bit numbers.
pub mod softirq {
    pub const SCHED: u64 = 1 << 0;
    pub const TIMER: u64 = 1 << 1;
    pub const TASKLET: u64 = 1 << 2;
}

/// Per-VCPU descriptor: stride and field offsets (in words).
pub mod vcpu {
    /// Absolute base address of the VCPU descriptor array.
    pub const BASE: u64 = 0x0058_0000;
    /// Words per VCPU descriptor.
    pub const STRIDE: u64 = 64;
    /// Guest GPR save area: 16 words, indexed by register number.
    pub const SAVE_GPRS: u64 = 0;
    /// Saved guest RIP.
    pub const SAVE_RIP: u64 = 16;
    /// Saved guest RFLAGS.
    pub const SAVE_RFLAGS: u64 = 17;
    /// Owning domain id.
    pub const DOM_ID: u64 = 18;
    /// VCPU id within the domain.
    pub const VCPU_ID: u64 = 19;
    /// 1 for the per-PCPU idle VCPU.
    pub const IS_IDLE: u64 = 20;
    /// Pending virtual trap/event bits (one per exception vector).
    pub const PENDING_EVENTS: u64 = 21;
    /// 1 when runnable.
    pub const RUNNABLE: u64 = 22;
    /// Per-VCPU virtual-time offset added to RDTSC emulation.
    pub const TIME_OFFSET: u64 = 23;
    /// Singleshot timer deadline (absolute wallclock ticks; 0 = none).
    pub const TIMER_DEADLINE: u64 = 24;
    /// Event-channel upcall pending flag (guest visible via shared info).
    pub const UPCALL_PENDING: u64 = 25;
    /// Upcall mask.
    pub const UPCALL_MASK: u64 = 26;
    /// Address of the owning domain descriptor.
    pub const DOM_PTR: u64 = 27;
    /// Count of events delivered to this VCPU.
    pub const EVENT_COUNT: u64 = 28;
    /// Last delivered trap vector (diagnostics; also exercised by faults).
    pub const LAST_TRAP: u64 = 29;
}

/// Per-domain descriptor.
pub mod domain {
    /// Absolute base address of the domain descriptor array.
    pub const BASE: u64 = 0x0060_0000;
    /// Words per domain descriptor.
    pub const STRIDE: u64 = 64;
    /// Domain id.
    pub const DOM_ID: u64 = 0;
    /// Number of VCPUs.
    pub const NR_VCPUS: u64 = 1;
    /// Address of the event-channel table.
    pub const EVTCHN_PTR: u64 = 2;
    /// Address of the grant table.
    pub const GRANT_PTR: u64 = 3;
    /// Address of the shared-info page.
    pub const SHARED_PTR: u64 = 4;
    /// Guest memory window base.
    pub const MEM_BASE: u64 = 5;
    /// Guest memory window size in bytes.
    pub const MEM_SIZE: u64 = 6;
    /// Global index of the domain's first VCPU descriptor.
    pub const FIRST_VCPU: u64 = 7;
    /// Guest kernel's registered trap handler (delivery target for
    /// unhandled guest exceptions).
    pub const TRAP_HANDLER: u64 = 8;
    /// 1 while the domain is being torn down.
    pub const IS_DYING: u64 = 9;
    /// Pages ballooned in/out by memory_op.
    pub const BALLOON_PAGES: u64 = 10;
    /// Count of MMU updates applied.
    pub const MMU_UPDATES: u64 = 11;
    /// Virtual interrupt counter.
    pub const VIRQ_COUNT: u64 = 12;
}

/// Event channel table: one word per channel.
/// Bit 0 = pending, bit 1 = masked; bits 8.. = bound VCPU index.
pub mod evtchn {
    /// Absolute base address of the event-channel tables.
    pub const BASE: u64 = 0x0068_0000;
    /// Words per domain table.
    pub const STRIDE: u64 = super::NR_EVTCHN as u64;
    pub const PENDING_BIT: u64 = 1 << 0;
    pub const MASKED_BIT: u64 = 1 << 1;
}

/// Grant table: one word per entry (flags in low bits, frame above).
pub mod grant {
    /// Absolute base address of the grant tables.
    pub const BASE: u64 = 0x0070_0000;
    /// Words per domain table.
    pub const STRIDE: u64 = super::NR_GRANTS as u64;
    pub const FLAG_READ: u64 = 1 << 0;
    pub const FLAG_WRITE: u64 = 1 << 1;
    pub const FLAG_INUSE: u64 = 1 << 2;
}

/// Shared-info page per domain (guest-visible: time, event masks).
pub mod shared {
    /// Absolute base address of the shared-info pages.
    pub const BASE: u64 = 0x0078_0000;
    /// Words per domain page.
    pub const STRIDE: u64 = 32;
    /// Wall-clock seconds copy.
    pub const WALLCLOCK: u64 = 0;
    /// Time version counter (even = stable, odd = being updated).
    pub const TIME_VERSION: u64 = 1;
    /// System time in ticks.
    pub const SYSTEM_TIME: u64 = 2;
    /// TSC timestamp of the last time update.
    pub const TSC_STAMP: u64 = 3;
    /// Global event-pending summary bit.
    pub const EVTCHN_PENDING_SEL: u64 = 4;
    /// Per-VCPU virtual time slots (up to MAX_VCPUS_PER_DOM).
    pub const VCPU_TIME: u64 = 8;
}

/// Per-PCPU run queue: count at word 0, VCPU descriptor addresses after.
pub mod runq {
    /// Absolute base address of the run queues.
    pub const BASE: u64 = 0x0080_0000;
    /// Words per run queue.
    pub const STRIDE: u64 = 16;
    /// Number of entries.
    pub const COUNT: u64 = 0;
    /// Next index to run (round robin cursor).
    pub const CURSOR: u64 = 1;
    /// First entry.
    pub const ENTRIES: u64 = 2;
    /// Maximum entries per queue.
    pub const MAX_ENTRIES: u64 = 14;
}

/// Guest page tables: one PTE word per 4 KiB page of each domain's data
/// region, in domain order. Hypervisor-private (guests never map it), so
/// a microreboot restores it from the boot image like any other private
/// family — PTE soft errors are healable by the reboot tier but survive
/// the critical-state copy.
pub mod ptbl {
    /// Absolute base address of the page-table block.
    pub const BASE: u64 = 0x0088_0000;
    /// Pages (= PTE words) per domain data region.
    pub const PAGES_PER_DOM: u64 = (super::GUEST_DATA_WORDS as u64 * 8) / sim_machine::PAGE_BYTES;
    /// Words per domain in the block.
    pub const STRIDE: u64 = PAGES_PER_DOM;
}

// ---------------------------------------------------------------------------
// Address helpers
// ---------------------------------------------------------------------------

/// Byte address of a global word.
pub fn global_addr(word: u64) -> u64 {
    if word >= global::SCRATCH {
        SCRATCH_BASE + (word - global::SCRATCH) * 8
    } else {
        GLOBAL_BASE + word * 8
    }
}

/// Byte address of dispatch-table entry `vmer`.
pub fn dispatch_entry(vmer: u16) -> u64 {
    DISPATCH_BASE + (vmer as u64) * 8
}

/// Byte address of the dispatch table base.
pub fn dispatch_base() -> u64 {
    DISPATCH_BASE
}

/// Byte address of PCPU block for `cpu`.
pub fn pcpu_addr(cpu: usize) -> u64 {
    pcpu::BASE + (cpu as u64 * pcpu::STRIDE) * 8
}

/// Byte address of VCPU descriptor `idx` (global index).
pub fn vcpu_addr(idx: usize) -> u64 {
    assert!(idx < MAX_VCPUS, "vcpu index {idx} out of range");
    vcpu::BASE + (idx as u64 * vcpu::STRIDE) * 8
}

/// Byte address of domain descriptor `dom`.
pub fn domain_addr(dom: usize) -> u64 {
    assert!(dom < MAX_DOMS, "domain {dom} out of range");
    domain::BASE + (dom as u64 * domain::STRIDE) * 8
}

/// Byte address of domain `dom`'s event-channel table.
pub fn evtchn_addr(dom: usize) -> u64 {
    evtchn::BASE + (dom as u64 * evtchn::STRIDE) * 8
}

/// Byte address of domain `dom`'s grant table.
pub fn grant_addr(dom: usize) -> u64 {
    grant::BASE + (dom as u64 * grant::STRIDE) * 8
}

/// Byte address of domain `dom`'s shared-info page.
pub fn shared_addr(dom: usize) -> u64 {
    shared::BASE + (dom as u64 * shared::STRIDE) * 8
}

/// Byte address of CPU `cpu`'s run queue.
pub fn runq_addr(cpu: usize) -> u64 {
    runq::BASE + (cpu as u64 * runq::STRIDE) * 8
}

/// Byte address of domain `dom`'s first PTE word.
pub fn ptbl_addr(dom: usize) -> u64 {
    assert!(dom < MAX_DOMS, "domain {dom} out of range");
    ptbl::BASE + (dom as u64 * ptbl::STRIDE) * 8
}

/// Span covering all hypervisor data families (diagnostics/classification).
pub fn hv_data_span() -> (u64, u64) {
    (
        GLOBAL_BASE,
        ptbl::BASE + (MAX_DOMS as u64 * ptbl::STRIDE) * 8,
    )
}

/// Global VCPU index of the idle VCPU for `cpu`.
pub fn idle_vcpu_index(cpu: usize) -> usize {
    MAX_DOMS * MAX_VCPUS_PER_DOM + cpu
}

/// Number of entries in the dispatch table.
pub fn dispatch_entries() -> u16 {
    ExitReason::VMER_COUNT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_regions_do_not_overlap_and_leave_gaps() {
        // (base, bytes) for every mapped hypervisor-data family.
        let spans = [
            (GLOBAL_BASE, GLOBAL_WORDS as u64 * 8),
            (SCRATCH_BASE, SCRATCH_WORDS as u64 * 8),
            (DISPATCH_BASE, dispatch_entries() as u64 * 8),
            (pcpu::BASE, MAX_PCPUS as u64 * pcpu::STRIDE * 8),
            (vcpu::BASE, MAX_VCPUS as u64 * vcpu::STRIDE * 8),
            (domain::BASE, MAX_DOMS as u64 * domain::STRIDE * 8),
            (evtchn::BASE, MAX_DOMS as u64 * evtchn::STRIDE * 8),
            (grant::BASE, MAX_DOMS as u64 * grant::STRIDE * 8),
            (shared::BASE, MAX_DOMS as u64 * shared::STRIDE * 8),
            (runq::BASE, MAX_PCPUS as u64 * runq::STRIDE * 8),
            (ptbl::BASE, MAX_DOMS as u64 * ptbl::STRIDE * 8),
        ];
        for (i, &(a, alen)) in spans.iter().enumerate() {
            for &(b, blen) in spans.iter().skip(i + 1) {
                // Regions must not only be disjoint, they must leave an
                // unmapped gap so corrupted indexes fault.
                assert!(
                    a + alen + 0x1000 <= b || b + blen + 0x1000 <= a,
                    "families too close: {a:#x}+{alen:#x} vs {b:#x}+{blen:#x}"
                );
            }
        }
        let (lo, hi) = hv_data_span();
        assert!(lo < hi);
        assert!(
            hi <= HV_STACK_BASE,
            "data families must end below the stacks"
        );
    }

    #[test]
    fn vcpu_save_area_is_first_sixteen_words() {
        assert_eq!(vcpu::SAVE_GPRS, 0);
        assert_eq!(vcpu::SAVE_RIP, 16);
        assert_eq!(vcpu::SAVE_RFLAGS, 17);
    }

    #[test]
    fn guest_windows_are_disjoint() {
        for d in 0..MAX_DOMS - 1 {
            let end = guest_data(d) + (GUEST_DATA_WORDS as u64) * 8;
            assert!(
                end <= guest_window(d + 1),
                "dom {d} window overflows into {}",
                d + 1
            );
        }
    }

    #[test]
    fn idle_vcpus_are_after_real_vcpus() {
        assert_eq!(idle_vcpu_index(0), MAX_DOMS * MAX_VCPUS_PER_DOM);
        assert!(idle_vcpu_index(MAX_PCPUS - 1) < MAX_VCPUS);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // layout invariants, kept as a named test
    fn runq_can_hold_all_vcpus_of_a_loaded_cpu() {
        // Worst case we schedule every VCPU of 4 domains on one CPU in the
        // paper's 4-VM setup: 4 doms * 1 vcpu + idle << MAX_ENTRIES.
        assert!(runq::MAX_ENTRIES >= 8);
        assert!(runq::ENTRIES + runq::MAX_ENTRIES <= runq::STRIDE);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // layout invariants, kept as a named test
    fn hypervisor_regions_below_guest_base() {
        assert!(VMCS_BASE + 0x1000 < GUEST_BASE);
        assert!(HV_STACK_BASE + MAX_PCPUS as u64 * HV_STACK_SIZE <= VMCS_BASE);
        let (_, hv_hi) = hv_data_span();
        assert!(hv_hi <= HV_STACK_BASE);
        assert!(HV_TEXT_BASE + (HV_TEXT_WORDS as u64) * 8 <= GLOBAL_BASE);
    }
}
