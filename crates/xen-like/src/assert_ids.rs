//! Software-assertion site identifiers.
//!
//! The paper inserts assertions "strategically with the consideration of the
//! context" (§III-A): boundary checks on values with clearly defined ranges
//! (Listing 1: `ASSERT(trap <= LAST)`) and checks on conditions critical to
//! correct execution (Listing 2: `ASSERT(is_idle_vcpu(v))`). Each site gets a
//! stable id so the detection layer can report which predicate fired.

/// VM-exit-reason bound check in the dispatch stub (reason < 91).
pub const VMER_BOUND: u16 = 1;
/// Trap-number bound in event delivery — the paper's Listing 1.
pub const TRAP_BOUND: u16 = 2;
/// `is_idle_vcpu(current)` when idling a physical CPU — the paper's
/// Listing 2.
pub const IDLE_VCPU: u16 = 3;
/// Event-channel port bound in `event_channel_op`.
pub const EVTCHN_BOUND: u16 = 4;
/// Grant-table reference bound in `grant_table_op`.
pub const GRANT_BOUND: u16 = 5;
/// VCPU index bound in `vcpu_op`.
pub const VCPU_BOUND: u16 = 6;
/// Domain id bound in `domctl`.
pub const DOM_BOUND: u16 = 7;
/// Run-queue occupancy bound in the scheduler.
pub const RUNQ_BOUND: u16 = 8;
/// Page-count bound in `memory_op` reservations.
pub const MEMOP_BOUND: u16 = 9;
/// Batch-count bound in `multicall`.
pub const MULTICALL_BOUND: u16 = 10;
/// MMU-update batch bound in `mmu_update`.
pub const MMU_BOUND: u16 = 11;
/// Trap-table entry must point into the guest window (`set_trap_table`).
pub const TRAPTAB_RANGE: u16 = 12;
/// `update_descriptor` selector bound.
pub const DESC_BOUND: u16 = 13;
/// Softirq bit index bound in `do_softirq`.
pub const SOFTIRQ_BOUND: u16 = 14;
/// Console write length bound in `console_io`.
pub const CONSOLE_BOUND: u16 = 15;
/// `stack_switch` target must lie inside the guest window.
pub const STACK_RANGE: u16 = 16;
/// Current VCPU pointer sanity in the return-to-guest stub.
pub const CURVCPU_ALIGN: u16 = 17;
/// `iret` frame address must lie inside the guest window.
pub const IRET_RANGE: u16 = 18;
/// VCPU runnable flag must be 0 or 1 (domain audit walk).
pub const RUNNABLE_FLAG: u16 = 19;
/// Event-channel word must stay within its encodable state bits.
pub const EVTCHN_STATE: u16 = 20;

/// Human-readable name for an assertion site.
pub fn name(id: u16) -> &'static str {
    match id {
        VMER_BOUND => "vmexit-reason-bound",
        TRAP_BOUND => "trap-number-bound",
        IDLE_VCPU => "is-idle-vcpu",
        EVTCHN_BOUND => "evtchn-port-bound",
        GRANT_BOUND => "grant-ref-bound",
        VCPU_BOUND => "vcpu-index-bound",
        DOM_BOUND => "domain-id-bound",
        RUNQ_BOUND => "runqueue-bound",
        MEMOP_BOUND => "memop-pages-bound",
        MULTICALL_BOUND => "multicall-count-bound",
        MMU_BOUND => "mmu-batch-bound",
        TRAPTAB_RANGE => "traptable-range",
        DESC_BOUND => "descriptor-bound",
        SOFTIRQ_BOUND => "softirq-bit-bound",
        CONSOLE_BOUND => "console-length-bound",
        STACK_RANGE => "stack-switch-range",
        CURVCPU_ALIGN => "current-vcpu-sane",
        IRET_RANGE => "iret-frame-range",
        RUNNABLE_FLAG => "runnable-flag-sane",
        EVTCHN_STATE => "evtchn-state-sane",
        _ => "unknown-assertion",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_named() {
        let ids = [
            VMER_BOUND,
            TRAP_BOUND,
            IDLE_VCPU,
            EVTCHN_BOUND,
            GRANT_BOUND,
            VCPU_BOUND,
            DOM_BOUND,
            RUNQ_BOUND,
            MEMOP_BOUND,
            MULTICALL_BOUND,
            MMU_BOUND,
            TRAPTAB_RANGE,
            DESC_BOUND,
            SOFTIRQ_BOUND,
            CONSOLE_BOUND,
            STACK_RANGE,
            CURVCPU_ALIGN,
            IRET_RANGE,
            RUNNABLE_FLAG,
            EVTCHN_STATE,
        ];
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
        for id in ids {
            assert_ne!(name(id), "unknown-assertion");
        }
        assert_eq!(name(9999), "unknown-assertion");
    }
}
