//! The platform: drives guests and hypervisor activations, injects
//! asynchronous interrupts, and exposes the monitoring hook that Xentry
//! implements.
//!
//! One **activation** is the unit the paper reasons about: a VM exit, a
//! hypervisor execution, and the VM entry that resumes the guest (Fig. 2).
//! [`Platform::run_activation`] executes exactly one of these and reports
//! what happened; the [`Monitor`] trait receives the VM-exit and VM-entry
//! edges — the two points where Xentry's shim intercepts Xen.

use crate::layout::{self as lay, pcpu, vcpu};
use sim_asm::Image;
use sim_machine::cpu::Cpu;
use sim_machine::exit::{NR_APIC_VECTORS, NR_DEVICE_IRQS};
use sim_machine::prng::{fold64, SplitMix64};
use sim_machine::{
    CpuId, Event, Exception, ExitReason, Machine, MachineDelta, Mode, Reg, StepOutcome,
};
use std::sync::Arc;

use crate::builder::{build_machine, Topology};

/// Hypervisor-**private** memory regions: state the hypervisor derives for
/// itself and can therefore rebuild from the boot image on a microreboot.
/// Everything else (VCPU/domain descriptors, event channels, grants,
/// shared-info pages, VMCS blocks, guest memory, read-only text) is
/// **preserved state** the VMs depend on and survives a microreboot.
pub const MICROREBOOT_PRIVATE_REGIONS: [&str; 7] = [
    "hv.global",
    "hv.scratch",
    "hv.dispatch",
    "hv.pcpu",
    "hv.runq",
    "hv.stacks",
    "hv.ptbl",
];

/// Boot-time image of the hypervisor-private regions plus the host
/// re-entry point, captured once at [`Platform::new`]. Static for the
/// lifetime of a boot, shared by every checkpoint/fork descended from it
/// (hence the `Arc`), and deliberately excluded from snapshots, deltas and
/// `state_digest` — it never changes.
#[derive(Debug)]
struct BootImage {
    /// `(region name, boot-time contents)` for every private region.
    private: Vec<(String, Vec<u64>)>,
    /// Address of the `vmexit_return` stub: the same host entry point the
    /// builder boots CPUs at, and the microreboot re-entry point.
    reentry: u64,
}

/// Fixed reinitialization cost a microreboot charges before re-running the
/// host path (structure rebuild, handler re-registration — the in-place
/// analogue of ReHype's reboot work).
pub const MICROREBOOT_BASE_CYCLES: u64 = 100_000;

/// State-loss accounting for one microreboot: what the reinitialization
/// discarded and what it cost. The word counts are *words that actually
/// differed from the boot image* — the dynamic hypervisor state the reboot
/// destroyed, not the (much larger) number of words scanned.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MicrorebootReport {
    pub cpu: usize,
    /// Private words reset to boot values (sum over `per_region`).
    pub words_lost: usize,
    /// `(region, words reset)` per private region.
    pub per_region: Vec<(String, usize)>,
    /// The wallclock survives the reboot (guest timer deadlines are
    /// absolute wallclock ticks; rolling time back would stall them).
    pub wallclock_preserved: u64,
    /// Accounting counters zeroed by the restore, recorded for the
    /// state-loss ledger.
    pub sched_ticks_lost: u64,
    pub tasklet_runs_lost: u64,
    pub hypercalls_lost: u64,
    pub irqs_lost: u64,
    /// OR of every CPU's pending-softirq bits at reboot time; the work
    /// they represented is dropped (the fresh scheduler pass re-derives
    /// what still matters).
    pub softirq_bits_dropped: u64,
    /// Simulated cycles the microreboot cost: the fixed base, the restore
    /// memory traffic, and the host-path re-entry run.
    pub cycles: u64,
}

/// Verdict returned by the monitor at VM entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Execution looks correct: resume the guest.
    Pass,
    /// VM-transition detection flagged the execution as incorrect: do not
    /// resume; trigger recovery.
    Incorrect,
}

/// Observation hooks for a detection framework. The default implementations
/// are no-ops, i.e. an unprotected hypervisor.
pub trait Monitor {
    /// A VM exit occurred; the hypervisor is about to run. (Xentry: start
    /// performance counters, snapshot critical state.)
    fn on_vm_exit(&mut self, _m: &mut Machine, _cpu: CpuId, _reason: ExitReason) {}

    /// The hypervisor finished and the guest is about to resume. (Xentry:
    /// stop counters, classify the execution.)
    fn on_vm_entry(&mut self, _m: &mut Machine, _cpu: CpuId) -> Verdict {
        Verdict::Pass
    }

    /// A hardware exception was raised in host mode.
    fn on_host_exception(&mut self, _m: &mut Machine, _cpu: CpuId, _e: Exception) {}

    /// A software assertion fired in host mode.
    fn on_assert_fail(&mut self, _m: &mut Machine, _cpu: CpuId, _id: u16) {}
}

/// The unprotected baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullMonitor;

impl Monitor for NullMonitor {}

/// How one activation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationOutcome {
    /// Handler completed; guest resumed.
    Resumed,
    /// Handler completed; the CPU went idle (no runnable VCPU).
    WentIdle,
    /// A hardware exception was raised during hypervisor execution (fatal
    /// system corruption in the paper's taxonomy).
    HostException(Exception),
    /// A software assertion fired.
    AssertFailed(u16),
    /// The VM-transition detector flagged the execution; the guest was not
    /// resumed.
    Flagged,
    /// The handler exceeded the watchdog budget (hang / livelock).
    Hung,
}

impl ActivationOutcome {
    /// Whether the platform can keep running after this outcome.
    pub fn is_healthy(self) -> bool {
        matches!(
            self,
            ActivationOutcome::Resumed | ActivationOutcome::WentIdle
        )
    }
}

/// Record of one hypervisor activation.
#[derive(Debug, Clone, Copy)]
pub struct Activation {
    pub cpu: CpuId,
    pub reason: ExitReason,
    /// Dynamic instructions executed in host mode.
    pub handler_insns: u64,
    /// Cycles spent in host mode (including world-switch costs).
    pub handler_cycles: u64,
    /// Cycles spent in guest mode since the previous activation on this CPU.
    pub guest_cycles: u64,
    pub outcome: ActivationOutcome,
}

/// Asynchronous interrupt traffic parameters, set per workload profile.
#[derive(Debug, Clone, Copy)]
pub struct IrqProfile {
    /// Cycles between APIC timer ticks (0 disables the tick — only useful
    /// in unit tests).
    pub tick_period: u64,
    /// Mean cycles between device interrupts (0 = no device traffic).
    pub dev_irq_period: u64,
}

impl Default for IrqProfile {
    fn default() -> IrqProfile {
        // 1 kHz tick at the paper's 2.13 GHz clock.
        IrqProfile {
            tick_period: 2_130_000,
            dev_irq_period: 0,
        }
    }
}

/// Delta-compressed difference between two [`Platform`] states descended
/// from one boot. The machine part (dominated by the memory image) is
/// sparse; the scheduler part is tiny and copied whole. Static
/// configuration (topology, IRQ profile, step budgets) is assumed shared
/// with the base and not recorded.
#[derive(Debug, Clone)]
pub struct PlatformDelta {
    machine: MachineDelta,
    next_tick: Vec<u64>,
    next_dev: Vec<u64>,
    irq_rng: SplitMix64,
    booted: Vec<bool>,
}

impl PlatformDelta {
    /// Number of memory words carried (checkpoint sizing diagnostics).
    pub fn mem_words(&self) -> usize {
        self.machine.mem_words()
    }
}

/// The platform simulator.
#[derive(Debug, Clone)]
pub struct Platform {
    pub machine: Machine,
    pub topo: Topology,
    pub irq: IrqProfile,
    /// Watchdog: maximum host-mode steps per activation.
    pub host_step_budget: u64,
    /// Watchdog: maximum guest steps per activation window.
    pub guest_step_budget: u64,
    next_tick: Vec<u64>,
    next_dev: Vec<u64>,
    irq_rng: SplitMix64,
    booted: Vec<bool>,
    /// Boot-time image of the hypervisor-private regions (microreboot
    /// substrate). Static per boot; shared across clones and checkpoints.
    boot_image: Arc<BootImage>,
}

impl Platform {
    /// Build a platform for the topology.
    pub fn new(topo: Topology) -> (Platform, Image) {
        let (machine, img) = build_machine(&topo);
        let irq = IrqProfile::default();
        let nr = topo.nr_cpus;
        let private = MICROREBOOT_PRIVATE_REGIONS
            .iter()
            .map(|name| {
                let r = machine
                    .mem
                    .region_by_name(name)
                    .unwrap_or_else(|| panic!("private region {name} mapped"));
                (r.name.clone(), r.words.clone())
            })
            .collect();
        let boot_image = Arc::new(BootImage {
            private,
            reentry: img.sym("vmexit_return"),
        });
        let p = Platform {
            machine,
            topo,
            irq,
            host_step_budget: 100_000,
            guest_step_budget: 10_000_000,
            next_tick: vec![0; nr],
            next_dev: vec![0; nr],
            irq_rng: SplitMix64::new(0x5EED_1234),
            booted: vec![false; nr],
            boot_image,
        };
        (p, img)
    }

    /// Deterministic snapshot of the full platform state.
    pub fn snapshot(&self) -> Platform {
        self.clone()
    }

    /// Delta-compress `self` against an earlier state of the same booted
    /// platform. Covers the private scheduler state (interrupt deadlines,
    /// IRQ randomness, boot flags) that a bare [`Machine`] delta would miss
    /// — forgetting it would silently shift every asynchronous interrupt
    /// after a checkpoint restore.
    pub fn delta_against(&self, base: &Platform) -> PlatformDelta {
        PlatformDelta {
            machine: self.machine.delta_against(&base.machine),
            next_tick: self.next_tick.clone(),
            next_dev: self.next_dev.clone(),
            irq_rng: self.irq_rng,
            booted: self.booted.clone(),
        }
    }

    /// Apply a delta produced by [`Platform::delta_against`] whose base was
    /// this exact state.
    pub fn apply_delta(&mut self, delta: &PlatformDelta) {
        self.machine.apply_delta(&delta.machine);
        self.next_tick = delta.next_tick.clone();
        self.next_dev = delta.next_dev.clone();
        self.irq_rng = delta.irq_rng;
        self.booted = delta.booted.clone();
    }

    /// Deterministic digest of the complete dynamic state: the machine plus
    /// the scheduler's interrupt deadlines and randomness. Two platforms
    /// with equal digests evolve identically under the same driver calls.
    pub fn state_digest(&self) -> u64 {
        let mut h = fold64(0x706c_6174, self.machine.state_digest());
        for &t in &self.next_tick {
            h = fold64(h, t);
        }
        for &d in &self.next_dev {
            h = fold64(h, d);
        }
        h = fold64(h, self.irq_rng.state());
        for &b in &self.booted {
            h = fold64(h, b as u64);
        }
        h
    }

    /// Read a PCPU field for `cpu`.
    pub fn pcpu_field(&self, cpu: CpuId, field: u64) -> u64 {
        self.machine
            .mem
            .peek(lay::pcpu_addr(cpu) + field * 8)
            .expect("pcpu mapped")
    }

    /// Address of the VCPU descriptor currently scheduled on `cpu`.
    pub fn current_vcpu_ptr(&self, cpu: CpuId) -> u64 {
        self.pcpu_field(cpu, pcpu::CURRENT_VCPU)
    }

    /// Whether `cpu` is running its idle VCPU.
    pub fn is_idle(&self, cpu: CpuId) -> bool {
        self.pcpu_field(cpu, pcpu::IDLE) != 0
    }

    /// Resolve the guest mode for whatever VCPU the hypervisor scheduled on
    /// `cpu` — the platform trusts the (possibly corrupted) scheduler state,
    /// which is how a fault can resume the *wrong* VM.
    fn scheduled_mode(&self, cpu: CpuId) -> Mode {
        let vp = self.current_vcpu_ptr(cpu);
        let dom = self.machine.mem.peek(vp + vcpu::DOM_ID * 8).unwrap_or(0) as u16;
        let vid = self.machine.mem.peek(vp + vcpu::VCPU_ID * 8).unwrap_or(0) as u16;
        Mode::Guest { dom, vcpu: vid }
    }

    /// Run host-mode code until the guest is entered (or something fatal
    /// happens). Used at boot and after every VM exit.
    fn run_host<M: Monitor>(
        &mut self,
        cpu: CpuId,
        monitor: &mut M,
    ) -> (ActivationOutcome, u64, u64) {
        self.run_host_hooked(cpu, monitor, None, |_, _| {})
    }

    /// Like `run_host`, but invokes `hook` on the machine after `hook_at`
    /// host-mode steps — the fault-injection entry point: the hook flips a
    /// register bit mid-handler.
    pub fn run_host_hooked<M: Monitor>(
        &mut self,
        cpu: CpuId,
        monitor: &mut M,
        hook_at: Option<u64>,
        hook: impl FnOnce(&mut Machine, CpuId),
    ) -> (ActivationOutcome, u64, u64) {
        let insns0 = self.machine.cpu(cpu).insns_retired;
        let cycles0 = self.machine.cpu(cpu).cycles;
        let mut steps = 0u64;
        let mut hook = Some(hook);
        let outcome = loop {
            if let Some(at) = hook_at {
                if steps == at {
                    if let Some(h) = hook.take() {
                        h(&mut self.machine, cpu);
                    }
                }
            }
            if steps >= self.host_step_budget {
                break ActivationOutcome::Hung;
            }
            steps += 1;
            match self.machine.step(cpu) {
                StepOutcome::Retired => {}
                StepOutcome::Event(Event::VmEntry) => {
                    match monitor.on_vm_entry(&mut self.machine, cpu) {
                        Verdict::Pass => {
                            let mode = self.scheduled_mode(cpu);
                            self.machine.cpu_mut(cpu).mode = mode;
                            if self.is_idle(cpu) {
                                break ActivationOutcome::WentIdle;
                            }
                            break ActivationOutcome::Resumed;
                        }
                        Verdict::Incorrect => break ActivationOutcome::Flagged,
                    }
                }
                StepOutcome::Event(Event::Exception(e)) => {
                    monitor.on_host_exception(&mut self.machine, cpu, e);
                    break ActivationOutcome::HostException(e);
                }
                StepOutcome::Event(Event::AssertFail { id, .. }) => {
                    monitor.on_assert_fail(&mut self.machine, cpu, id);
                    break ActivationOutcome::AssertFailed(id);
                }
                StepOutcome::Event(Event::Halt) => break ActivationOutcome::Hung,
                StepOutcome::Event(Event::VmExit(_)) => {
                    unreachable!("VM exit while already in host mode")
                }
            }
        };
        let c = self.machine.cpu(cpu);
        (outcome, c.insns_retired - insns0, c.cycles - cycles0)
    }

    /// Pick the next asynchronous exit reason when a deadline fires.
    fn async_reason(&mut self, timer: bool) -> ExitReason {
        if timer {
            return ExitReason::ApicInterrupt(0);
        }
        // Device-side traffic mix: mostly device lines, some IPIs, a few
        // tasklets.
        let roll = self.irq_rng.next_below(100);
        match roll {
            0..=59 => {
                ExitReason::DeviceInterrupt(self.irq_rng.next_below(NR_DEVICE_IRQS as u64) as u8)
            }
            60..=84 => {
                let v = 1 + self.irq_rng.next_below((NR_APIC_VECTORS - 1) as u64) as u8;
                ExitReason::ApicInterrupt(v)
            }
            85..=94 => ExitReason::Tasklet,
            _ => ExitReason::ApicInterrupt(3),
        }
    }

    /// Boot `cpu`: run the initial return-to-guest stub so the first VCPU is
    /// entered. Must be called once per CPU before [`Self::run_activation`].
    pub fn boot<M: Monitor>(&mut self, cpu: CpuId, monitor: &mut M) -> ActivationOutcome {
        assert!(!self.booted[cpu], "cpu {cpu} already booted");
        let (outcome, _, _) = self.run_host(cpu, monitor);
        self.booted[cpu] = true;
        let now = self.machine.cpu(cpu).cycles;
        self.next_tick[cpu] = now + self.irq.tick_period.max(1);
        self.next_dev[cpu] = if self.irq.dev_irq_period > 0 {
            now + 1 + self.irq_rng.next_below(2 * self.irq.dev_irq_period)
        } else {
            u64::MAX
        };
        outcome
    }

    /// Whether this CPU has been booted.
    pub fn is_booted(&self, cpu: CpuId) -> bool {
        self.booted[cpu]
    }

    /// Boot-time contents of a hypervisor-private region, as captured for
    /// the microreboot image. `None` for preserved (non-private) regions.
    pub fn boot_image_region(&self, name: &str) -> Option<&[u64]> {
        self.boot_image
            .private
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, w)| w.as_slice())
    }

    /// ReHype-style hypervisor microreboot on `cpu`: reinitialize the
    /// hypervisor-private regions (stacks, run-queues, pending-softirq
    /// bits, handler scratch, dispatch table, global counters) from the
    /// boot-time image while leaving VCPU/domain descriptors, event
    /// channels, grants, shared-info pages, VMCS blocks and guest memory
    /// untouched, then re-enter at the exit trampoline so the preserved
    /// guest save area is reloaded and the VM resumes.
    ///
    /// The wallclock is carried across the reboot (VCPU timer deadlines
    /// are absolute wallclock ticks; losing it would stall every guest
    /// timer). All other accounting counters reset to their boot values —
    /// the report records how much was lost. Only the target CPU's
    /// architectural state is reset: campaigns drive a single CPU, and
    /// the other CPUs' private memory is boot-fresh by construction.
    pub fn microreboot<M: Monitor>(
        &mut self,
        cpu: CpuId,
        monitor: &mut M,
    ) -> (MicrorebootReport, ActivationOutcome) {
        let mut report = self.microreboot_restore(cpu);
        // Re-enter at the exit trampoline: the current VCPU is reloaded
        // from the PCPU slot restored by the boot image, the preserved
        // save area is published to the VMCS and the guest resumes where
        // the last exit left it.
        let (outcome, _insns, host_cycles) = self.run_host(cpu, monitor);
        report.cycles += host_cycles;
        (report, outcome)
    }

    /// The state-restore half of [`Self::microreboot`]: rewrite the
    /// private regions from the boot image and reset the CPU, leaving the
    /// platform parked at the exit trampoline without executing it. Split
    /// out so tests can assert exactly what the reboot preserves before
    /// any host code runs again.
    pub fn microreboot_restore(&mut self, cpu: CpuId) -> MicrorebootReport {
        assert!(self.booted[cpu], "cpu {cpu} not booted");
        let g = |w| {
            self.machine
                .mem
                .peek(lay::global_addr(w))
                .expect("global mapped")
        };
        let wallclock = g(lay::global::WALLCLOCK);
        let sched_ticks = g(lay::global::SCHED_TICKS);
        let tasklet_runs = g(lay::global::TASKLET_RUNS);
        let hypercalls = g(lay::global::HYPERCALL_COUNT);
        let irqs = g(lay::global::IRQ_COUNT);
        let mut softirq_bits = 0u64;
        for c in 0..self.topo.nr_cpus {
            softirq_bits |= self.pcpu_field(c, pcpu::SOFTIRQ_PENDING);
        }

        // Restore every private region from the boot image; count the
        // words that actually changed — that is the state the reboot
        // discards.
        let image = Arc::clone(&self.boot_image);
        let mut per_region = Vec::with_capacity(image.private.len());
        let mut words_lost = 0usize;
        let mut words_scanned = 0u64;
        for (name, words) in &image.private {
            let changed = self.machine.mem.restore_region(name, words);
            words_lost += changed;
            words_scanned += words.len() as u64;
            per_region.push((name.clone(), changed));
        }
        self.machine
            .mem
            .poke(lay::global_addr(lay::global::WALLCLOCK), wallclock)
            .expect("global mapped");

        // Reset the CPU's architectural state, preserving the monotonic
        // cycle/instruction counters and charging the reboot cost: a flat
        // base plus the memory traffic of rewriting the private image.
        let cost = MICROREBOOT_BASE_CYCLES + self.machine.config.cycle_model.mem * words_scanned;
        let rbp = lay::pcpu_addr(cpu);
        let rsp = self.machine.config.host_stack_top(cpu);
        let reentry = image.reentry;
        let c = self.machine.cpu_mut(cpu);
        let cycles = c.cycles;
        let insns = c.insns_retired;
        *c = Cpu::new();
        c.cycles = cycles + cost;
        c.insns_retired = insns;
        c.rip = reentry;
        c.set(Reg::Rbp, rbp);
        c.set(Reg::Rsp, rsp);

        // Re-arm the interrupt deadlines exactly as boot does.
        let now = self.machine.cpu(cpu).cycles;
        self.next_tick[cpu] = now + self.irq.tick_period.max(1);
        self.next_dev[cpu] = if self.irq.dev_irq_period > 0 {
            now + 1 + self.irq_rng.next_below(2 * self.irq.dev_irq_period)
        } else {
            u64::MAX
        };

        MicrorebootReport {
            cpu,
            words_lost,
            per_region,
            wallclock_preserved: wallclock,
            sched_ticks_lost: sched_ticks,
            tasklet_runs_lost: tasklet_runs,
            hypercalls_lost: hypercalls,
            irqs_lost: irqs,
            softirq_bits_dropped: softirq_bits,
            cycles: cost,
        }
    }

    /// Run exactly one activation on `cpu`: guest executes until the next VM
    /// exit (synchronous or injected), the hypervisor handles it, the guest
    /// resumes.
    pub fn run_activation<M: Monitor>(&mut self, cpu: CpuId, monitor: &mut M) -> Activation {
        let (reason, guest_cycles) = self.run_to_exit(cpu);
        self.run_handler(cpu, reason, guest_cycles, monitor)
    }

    /// Guest phase only: run until the next VM exit and return its reason.
    /// On return the CPU sits in host mode at its entry trampoline with the
    /// VMCS block filled — the state the fault-injection campaign snapshots.
    pub fn run_to_exit(&mut self, cpu: CpuId) -> (ExitReason, u64) {
        assert!(self.booted[cpu], "boot cpu {cpu} first");
        let guest_cycles0 = self.machine.cpu(cpu).cycles;

        // Pending softirq work preempts the guest immediately: the previous
        // handler requested follow-up processing (e.g. a scheduler pass).
        let softirq_pending = self.pcpu_field(cpu, pcpu::SOFTIRQ_PENDING) != 0;

        let reason = if softirq_pending {
            let ev = self.machine.force_exit(cpu, ExitReason::Softirq);
            match ev {
                Event::VmExit(r) => r,
                _ => unreachable!(),
            }
        } else if self.is_idle(cpu) {
            // Idle CPU: fast-forward virtual time to the next interrupt.
            let wake = self.next_tick[cpu].min(self.next_dev[cpu]);
            let now = self.machine.cpu(cpu).cycles;
            if wake > now {
                self.machine.cpu_mut(cpu).cycles = wake;
            }
            self.fire_async(cpu)
        } else {
            // Run the guest until it exits or an async deadline passes.
            let mut steps = 0u64;
            loop {
                let now = self.machine.cpu(cpu).cycles;
                if now >= self.next_tick[cpu] || now >= self.next_dev[cpu] {
                    break self.fire_async(cpu);
                }
                if steps >= self.guest_step_budget {
                    // Guest runaway (should not happen with the tick armed);
                    // treat as a forced tick.
                    break self.fire_async(cpu);
                }
                steps += 1;
                match self.machine.step(cpu) {
                    StepOutcome::Retired => {}
                    StepOutcome::Event(Event::VmExit(r)) => break r,
                    StepOutcome::Event(ev) => {
                        unreachable!("guest produced host event {ev:?}")
                    }
                }
            }
        };

        let guest_cycles = self.machine.cpu(cpu).cycles.saturating_sub(guest_cycles0);
        (reason, guest_cycles)
    }

    /// Host phase only: notify the monitor of the exit and run the handler
    /// to VM entry (or death). Pair with [`Self::run_to_exit`].
    pub fn run_handler<M: Monitor>(
        &mut self,
        cpu: CpuId,
        reason: ExitReason,
        guest_cycles: u64,
        monitor: &mut M,
    ) -> Activation {
        self.run_handler_hooked(cpu, reason, guest_cycles, monitor, None, |_, _| {})
    }

    /// Host phase with a fault-injection hook (see
    /// [`Self::run_host_hooked`]).
    pub fn run_handler_hooked<M: Monitor>(
        &mut self,
        cpu: CpuId,
        reason: ExitReason,
        guest_cycles: u64,
        monitor: &mut M,
        hook_at: Option<u64>,
        hook: impl FnOnce(&mut Machine, CpuId),
    ) -> Activation {
        monitor.on_vm_exit(&mut self.machine, cpu, reason);
        let (outcome, handler_insns, handler_cycles) =
            self.run_host_hooked(cpu, monitor, hook_at, hook);
        Activation {
            cpu,
            reason,
            handler_insns,
            handler_cycles,
            guest_cycles,
            outcome,
        }
    }

    /// Force the pending asynchronous exit whose deadline fired and re-arm
    /// the deadline.
    fn fire_async(&mut self, cpu: CpuId) -> ExitReason {
        let now = self.machine.cpu(cpu).cycles;
        let timer = self.next_tick[cpu] <= self.next_dev[cpu];
        let reason = self.async_reason(timer);
        if timer {
            self.next_tick[cpu] = now + self.irq.tick_period.max(1);
        } else {
            let mean = self.irq.dev_irq_period.max(1);
            self.next_dev[cpu] = now + 1 + self.irq_rng.next_below(2 * mean);
        }
        match self.machine.force_exit(cpu, reason) {
            Event::VmExit(r) => r,
            _ => unreachable!(),
        }
    }

    /// Run up to `n` activations on `cpu`, stopping early if the hypervisor
    /// dies. Returns the records.
    pub fn run<M: Monitor>(&mut self, cpu: CpuId, n: usize, monitor: &mut M) -> Vec<Activation> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let act = self.run_activation(cpu, monitor);
            let healthy = act.outcome.is_healthy();
            out.push(act);
            if !healthy {
                break;
            }
        }
        out
    }
}
