//! # xen-like — a Xen-4.1.2-shaped hypervisor in simulated code
//!
//! This crate is the reproduction's substrate for the Xen hypervisor the
//! Xentry paper (ICPP 2014) instruments. Everything that Xen does in the
//! paper's experiments exists here, executed instruction-by-instruction on
//! the [`sim_machine`] simulator:
//!
//! * per-CPU **entry/exit stubs** that save and restore guest state around
//!   every activation (`handlers::stubs`);
//! * the **38 hypercalls** of Xen 4.1.2 (`handlers::hypercalls`);
//! * **20 exception handlers**, including the #GP trap-and-emulate path for
//!   CPUID/RDTSC that the paper uses as its running error-propagation
//!   example (`handlers::exceptions`);
//! * `do_irq` for 16 device lines, **ten APIC interrupt handlers**,
//!   `do_softirq` and `do_tasklet` (`handlers::irq`);
//! * a round-robin **scheduler** with the paper's Listing-2 idle assertion
//!   (`handlers::sched`);
//! * VCPU/domain/event-channel/grant-table/shared-info structures laid out
//!   in simulated memory ([`layout`]);
//! * software **assertions** compiled into the handler code
//!   ([`assert_ids`]);
//! * a [`platform::Platform`] that drives guests, injects interrupts and
//!   exposes the [`platform::Monitor`] hook where the Xentry shim attaches.

pub mod assert_ids;
pub mod builder;
pub mod handlers;
pub mod layout;
pub mod platform;

pub use builder::{build_image, build_machine, DomainSpec, Topology};
pub use platform::{
    Activation, ActivationOutcome, IrqProfile, MicrorebootReport, Monitor, NullMonitor, Platform,
    PlatformDelta, Verdict, MICROREBOOT_BASE_CYCLES, MICROREBOOT_PRIVATE_REGIONS,
};
