//! Property tests over the microreboot contract: for *any* number of
//! activations run before the reboot — and any injected corruption in
//! hypervisor-private state — `microreboot_restore` returns the private
//! regions to the boot image (wallclock excepted, it is carried across)
//! while every preserved region's digest is untouched.

use proptest::prelude::*;
use std::sync::OnceLock;
use xen_like::layout as lay;
use xen_like::platform::NullMonitor;
use xen_like::{Platform, MICROREBOOT_PRIVATE_REGIONS};
use xentry::Xentry;

/// Regions the reboot must not touch: guest-visible and shared state.
const PRESERVED_REGIONS: [&str; 11] = [
    "hv.text",
    "hv.vcpu",
    "hv.domain",
    "hv.evtchn",
    "hv.grant",
    "hv.shared",
    "vmcs",
    "dom0.text",
    "dom0.data",
    "dom1.text",
    "dom1.data",
];

/// One shared warmed-up platform (booting is the expensive part); each
/// case clones it, runs a case-specific number of extra activations, and
/// reboots the clone.
fn warm_platform() -> &'static Platform {
    static PLAT: OnceLock<Platform> = OnceLock::new();
    PLAT.get_or_init(|| {
        let cfg = faultsim::CampaignConfig::paper(guest_sim::Benchmark::Freqmine, 1, 77);
        let mut plat = faultsim::campaign_platform(&cfg, 77);
        let mut shim = Xentry::collector();
        plat.boot(1, &mut shim);
        for _ in 0..30 {
            assert!(plat.run_activation(1, &mut shim).outcome.is_healthy());
        }
        plat
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The reboot's preservation contract holds at any point in the run,
    /// with arbitrary single-word corruption in any private region.
    #[test]
    fn microreboot_preserves_guest_state_and_restores_private_state(
        extra in 0usize..25,
        region in 0usize..MICROREBOOT_PRIVATE_REGIONS.len(),
        offset in 0usize..64,
        garbage in any::<u64>(),
    ) {
        let mut p = warm_platform().clone();
        let mut shim = Xentry::collector();
        for _ in 0..extra {
            prop_assert!(p.run_activation(1, &mut shim).outcome.is_healthy());
        }
        // Corrupt one private word (poke is privileged, perms irrelevant).
        let name = MICROREBOOT_PRIVATE_REGIONS[region];
        let r = p.machine.mem.region_by_name(name).unwrap();
        let addr = r.base + (offset % r.words.len()) as u64 * 8;
        p.machine.mem.poke(addr, garbage).unwrap();

        let preserved_before: Vec<u64> = PRESERVED_REGIONS
            .iter()
            .map(|n| p.machine.mem.region_digest(n).unwrap())
            .collect();
        let wallclock = p
            .machine
            .mem
            .peek(lay::global_addr(lay::global::WALLCLOCK))
            .unwrap();

        let report = p.microreboot_restore(1);
        prop_assert_eq!(report.wallclock_preserved, wallclock);

        // Preserved regions: digest-identical.
        for (n, before) in PRESERVED_REGIONS.iter().zip(&preserved_before) {
            prop_assert_eq!(
                p.machine.mem.region_digest(n).unwrap(),
                *before,
                "preserved region {} changed across microreboot",
                n
            );
        }
        // Private regions: word-identical with the boot image, except the
        // carried wallclock.
        for name in MICROREBOOT_PRIVATE_REGIONS {
            let img = p.boot_image_region(name).unwrap().to_vec();
            let live = p.machine.mem.region_by_name(name).unwrap().words.clone();
            if name == "hv.global" {
                for (i, (l, b)) in live.iter().zip(&img).enumerate() {
                    if i as u64 == lay::global::WALLCLOCK {
                        prop_assert_eq!(*l, wallclock);
                    } else {
                        prop_assert_eq!(l, b, "{}[{}] not restored", name, i);
                    }
                }
            } else {
                prop_assert_eq!(&live, &img, "{} not restored to boot image", name);
            }
        }
    }

    /// After the full reboot (restore + re-entry) the guest still makes
    /// healthy progress, whatever private word was corrupted.
    #[test]
    fn microreboot_reentry_survives_any_private_corruption(
        region in 0usize..MICROREBOOT_PRIVATE_REGIONS.len(),
        offset in 0usize..64,
        garbage in any::<u64>(),
    ) {
        let mut p = warm_platform().clone();
        let name = MICROREBOOT_PRIVATE_REGIONS[region];
        let r = p.machine.mem.region_by_name(name).unwrap();
        let addr = r.base + (offset % r.words.len()) as u64 * 8;
        p.machine.mem.poke(addr, garbage).unwrap();

        let (_report, out) = p.microreboot(1, &mut NullMonitor);
        prop_assert!(out.is_healthy(), "re-entry unhealthy: {:?}", out);
        let mut shim = Xentry::collector();
        for _ in 0..10 {
            prop_assert!(p.run_activation(1, &mut shim).outcome.is_healthy());
        }
    }
}
