//! Determinism and exit-mix contracts for the adversarial guest
//! workloads (interrupt storm, event-channel ping-pong, hypercall-heavy
//! mix): same seed means byte-identical campaigns at any thread count,
//! and each profile must actually stress the exit-reason corner it is
//! named for — otherwise the classifier-coverage argument is hollow.

use faultsim::campaign::{golden_trace, run_model_campaign};
use faultsim::{campaign_platform, run_campaign, CampaignConfig};
use guest_sim::Benchmark;
use std::collections::BTreeMap;
use xentry::Xentry;

fn cfg(b: Benchmark, threads: usize) -> CampaignConfig {
    let mut c = CampaignConfig::paper(b, 48, 31);
    c.warmup = 30;
    c.threads = threads;
    c
}

#[test]
fn adversarial_campaigns_are_thread_count_invariant() {
    for b in Benchmark::ADVERSARIAL {
        let reg_base = serde_json::to_string(&run_campaign(&cfg(b, 1), None)).unwrap();
        let model_base = serde_json::to_string(&run_model_campaign(&cfg(b, 1), None)).unwrap();
        for threads in [4, 16] {
            let reg = serde_json::to_string(&run_campaign(&cfg(b, threads), None)).unwrap();
            assert_eq!(
                reg,
                reg_base,
                "{}: threads={threads} changed the register campaign",
                b.name()
            );
            let model = serde_json::to_string(&run_model_campaign(&cfg(b, threads), None)).unwrap();
            assert_eq!(
                model,
                model_base,
                "{}: threads={threads} changed the model campaign",
                b.name()
            );
        }
    }
}

#[test]
fn adversarial_golden_traces_are_reproducible() {
    for b in Benchmark::ADVERSARIAL {
        let digest = |trace: &faultsim::GoldenTrace| {
            let vmers: Vec<u16> = trace.points.iter().map(|p| p.reason.vmer()).collect();
            serde_json::to_string(&vmers).unwrap()
        };
        let a = golden_trace(&cfg(b, 1), None);
        let b2 = golden_trace(&cfg(b, 1), None);
        assert_eq!(
            digest(&a),
            digest(&b2),
            "{}: golden walk is not a pure function of the seed",
            b.name()
        );
        assert!(!a.points.is_empty(), "{}: empty golden walk", b.name());
    }
}

/// Exit-reason histogram over `n` raw VM exits of the observed CPU,
/// after the same warmup the campaigns use.
fn exit_histogram(b: Benchmark, n: usize) -> BTreeMap<u16, usize> {
    let c = cfg(b, 1);
    let mut plat = campaign_platform(&c, c.seed);
    let mut shim = Xentry::collector();
    plat.boot(1, &mut shim);
    for _ in 0..30 {
        assert!(plat.run_activation(1, &mut shim).outcome.is_healthy());
    }
    let mut h = BTreeMap::new();
    for _ in 0..n {
        let (reason, _gc) = plat.run_to_exit(1);
        *h.entry(reason.vmer()).or_insert(0usize) += 1;
        plat.run_handler(1, reason, 0, &mut shim);
    }
    h
}

/// VMER bands of the dense code layout (see `ExitReason::vmer`).
fn band(h: &BTreeMap<u16, usize>, lo: u16, hi: u16) -> usize {
    h.iter()
        .filter(|(v, _)| (lo..hi).contains(*v))
        .map(|(_, n)| n)
        .sum()
}

#[test]
fn each_adversarial_profile_stresses_its_exit_corner() {
    const N: usize = 600;
    let storm = exit_histogram(Benchmark::IrqStorm, N);
    let pingpong = exit_histogram(Benchmark::EvtchnPingPong, N);
    let heavy = exit_histogram(Benchmark::HypercallHeavy, N);
    let baseline = exit_histogram(Benchmark::Freqmine, N);
    for (name, h) in [
        ("irq-storm", &storm),
        ("evtchn-pingpong", &pingpong),
        ("hypercall-heavy", &heavy),
        ("freqmine", &baseline),
    ] {
        eprintln!(
            "{name}: hypercalls {} exceptions {} async {} hw-assist {} distinct-hc {} :: {h:?}",
            band(h, 0, 38),
            band(h, 38, 58),
            band(h, 58, 86),
            band(h, 86, 91),
            h.keys().filter(|v| **v < 38).count(),
        );
    }

    // The storm hammers the hardware-interrupt corner: its device-IRQ
    // exits (VMER band 58..74) clearly outnumber the paper benchmark's,
    // and the whole asynchronous band is denser too.
    let dev = |h: &BTreeMap<u16, usize>| band(h, 58, 74);
    assert!(
        dev(&storm) >= 30 && dev(&storm) as f64 > 1.3 * dev(&baseline) as f64,
        "irq-storm device-IRQ exits {} vs freqmine {}",
        dev(&storm),
        dev(&baseline)
    );
    assert!(
        band(&storm, 58, 86) > band(&baseline, 58, 86),
        "irq-storm async band {} vs freqmine {}",
        band(&storm, 58, 86),
        band(&baseline, 58, 86)
    );

    // The ping-pong lives in a two-hypercall echo chamber: among its
    // hypercall exits, the top two numbers carry the majority.
    let hc_total = band(&pingpong, 0, 38);
    let mut hc: Vec<usize> = pingpong
        .iter()
        .filter(|(v, _)| **v < 38)
        .map(|(_, n)| *n)
        .collect();
    hc.sort_unstable_by(|a, b| b.cmp(a));
    let top2: usize = hc.iter().take(2).sum();
    assert!(
        hc_total > 0 && top2 * 2 > hc_total,
        "evtchn-pingpong top-2 hypercalls {top2} of {hc_total}"
    );

    // The hypercall-heavy mix walks the widest stretch of the hypercall
    // table — strictly more distinct hypercall numbers than either other
    // adversarial profile exercises.
    let distinct_hc = |h: &BTreeMap<u16, usize>| h.keys().filter(|v| **v < 38).count();
    assert!(
        distinct_hc(&heavy) > distinct_hc(&pingpong),
        "hypercall-heavy {} distinct vs ping-pong {}",
        distinct_hc(&heavy),
        distinct_hc(&pingpong)
    );
    assert!(
        distinct_hc(&heavy) > distinct_hc(&storm),
        "hypercall-heavy {} distinct vs irq-storm {}",
        distinct_hc(&heavy),
        distinct_hc(&storm)
    );
    assert!(
        distinct_hc(&heavy) >= 10,
        "hypercall-heavy mix too narrow: {} distinct",
        distinct_hc(&heavy)
    );
}
