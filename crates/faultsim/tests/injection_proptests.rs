//! Property tests over the fault-injection executor: for *any* single-bit
//! flip at *any* point in a handler, the classification must be total,
//! consistent, and deterministic.

use faultsim::{inject, prepare_point, CampaignConfig, FaultOutcome, InjectionSpec};
use guest_sim::Benchmark;
use proptest::prelude::*;
use sim_machine::cpu::FlipTarget;
use std::sync::OnceLock;
use xentry::Xentry;

/// One shared injection point (preparing is the expensive part).
fn shared_point() -> &'static faultsim::InjectionPoint {
    static POINT: OnceLock<faultsim::InjectionPoint> = OnceLock::new();
    POINT.get_or_init(|| {
        let cfg = CampaignConfig::paper(Benchmark::Freqmine, 1, 61);
        let mut plat = faultsim::campaign_platform(&cfg, 61);
        let mut shim = Xentry::collector();
        plat.boot(1, &mut shim);
        for _ in 0..50 {
            assert!(plat.run_activation(1, &mut shim).outcome.is_healthy());
        }
        let (reason, _) = plat.run_to_exit(1);
        prepare_point(plat, 1, 1, reason, 5, None).expect("golden run healthy")
    })
}

fn arb_target() -> impl Strategy<Value = FlipTarget> {
    (0usize..FlipTarget::all().len()).prop_map(|i| FlipTarget::all()[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Injection never panics and always produces a classified outcome
    /// with self-consistent bookkeeping.
    #[test]
    fn injection_is_total_and_consistent(
        target in arb_target(),
        bit in 0u8..64,
        step_frac in 0u64..1000,
    ) {
        let point = shared_point();
        let at_step = step_frac * point.golden_len / 1000;
        let rec = inject(point, InjectionSpec { target, bit, at_step }, None);

        // Detected implies manifested.
        if rec.outcome.detected() {
            prop_assert!(rec.outcome.manifested());
        }
        // Latency bookkeeping: a detection's latency is bounded by the
        // remaining handler plus the observation window.
        if let FaultOutcome::Detected { latency, same_activation: true, .. } = &rec.outcome {
            prop_assert!(
                *latency <= point.golden_len * 4 + 10_000,
                "latency {latency} out of range (golden_len {})",
                point.golden_len
            );
        }
        // Features present iff the handler reached VM entry.
        match &rec.outcome {
            FaultOutcome::Benign | FaultOutcome::MaskedAfterEntry => {
                prop_assert!(rec.features.is_some());
            }
            FaultOutcome::Undetected { .. } => prop_assert!(rec.features.is_some()),
            FaultOutcome::Detected { .. } => {} // either way
        }
        // Golden features are invariant.
        prop_assert_eq!(rec.golden_features, point.golden_features);
    }

    /// Injecting the same fault twice yields the same outcome
    /// (determinism, the foundation of golden-run differencing).
    #[test]
    fn injection_is_deterministic(
        target in arb_target(),
        bit in 0u8..64,
        step_frac in 0u64..100,
    ) {
        let point = shared_point();
        let at_step = step_frac * point.golden_len / 100;
        let spec = InjectionSpec { target, bit, at_step };
        let a = inject(point, spec, None);
        let b = inject(point, spec, None);
        prop_assert_eq!(&a.outcome, &b.outcome);
        prop_assert_eq!(a.features, b.features);
    }

    /// A flip injected at step 0 into a register the entry stub saves
    /// verbatim is never classified Benign *and* feature-identical-diverged
    /// at once — i.e. the diff machinery sees what the flip did.
    #[test]
    fn high_bit_rip_flips_always_detected(bit in 30u8..47) {
        let point = shared_point();
        let rec = inject(
            point,
            InjectionSpec { target: FlipTarget::Rip, bit, at_step: point.golden_len / 2 },
            None,
        );
        // RIP high bits land in unmapped space: fetch fault, detected.
        prop_assert!(
            rec.outcome.detected(),
            "rip bit {bit} escaped: {:?}",
            rec.outcome
        );
    }
}
