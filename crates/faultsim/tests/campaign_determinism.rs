//! The determinism contract of the campaign engine: for a fixed seed the
//! campaign result is a pure function of the configuration — thread count
//! must not change a byte, and an interrupted + resumed campaign must be
//! indistinguishable from an uninterrupted one.

use faultsim::campaign::{run_campaign_resumable, CampaignRun};
use faultsim::{run_campaign, CampaignConfig, CampaignResult};
use guest_sim::Benchmark;

fn cfg(threads: usize) -> CampaignConfig {
    let mut c = CampaignConfig::paper(Benchmark::Canneal, 72, 23);
    c.warmup = 30;
    c.threads = threads;
    c
}

fn result_json(res: &CampaignResult) -> String {
    serde_json::to_string(res).expect("campaign result serializes")
}

#[test]
fn thread_count_never_changes_a_byte() {
    let baseline = result_json(&run_campaign(&cfg(1), None));
    for threads in [4, 16] {
        let got = result_json(&run_campaign(&cfg(threads), None));
        assert_eq!(
            got, baseline,
            "threads={threads} produced a different campaign result"
        );
    }
}

#[test]
fn interrupted_campaign_resumes_to_the_identical_result() {
    let c = cfg(2);
    let dir = std::env::temp_dir().join("xentry_campaign_determinism");
    let _ = std::fs::remove_dir_all(&dir);
    let journal = dir.join("campaign.journal");

    // A straight run is the reference.
    let fresh = result_json(&run_campaign(&c, None));

    // Kill the campaign after the first chunk...
    let first = run_campaign_resumable(&c, None, &journal, Some(1)).unwrap();
    match first {
        CampaignRun::Interrupted {
            chunks_done,
            chunks_total,
        } => {
            assert!(chunks_done >= 1);
            assert!(chunks_done < chunks_total);
        }
        CampaignRun::Complete(_) => panic!("stop_after_chunks=1 should interrupt"),
    }
    assert!(journal.exists(), "interrupt must leave a journal behind");

    // ...and resume: same bytes as the uninterrupted run.
    match run_campaign_resumable(&c, None, &journal, None).unwrap() {
        CampaignRun::Complete(res) => assert_eq!(result_json(&res), fresh),
        CampaignRun::Interrupted { .. } => panic!("resume did not complete"),
    }

    // A third invocation short-circuits off the complete journal.
    match run_campaign_resumable(&c, None, &journal, Some(0)).unwrap() {
        CampaignRun::Complete(res) => assert_eq!(result_json(&res), fresh),
        CampaignRun::Interrupted { .. } => panic!("complete journal should short-circuit"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_journal_from_a_different_config_is_ignored() {
    let a = cfg(2);
    let mut b = cfg(2);
    b.seed += 1;
    let dir = std::env::temp_dir().join("xentry_campaign_stale_journal");
    let _ = std::fs::remove_dir_all(&dir);
    let journal = dir.join("campaign.journal");

    // Leave a partial journal for config `a`...
    let _ = run_campaign_resumable(&a, None, &journal, Some(1)).unwrap();
    // ...then run config `b` against the same path: it must start from
    // scratch and still match a fresh `b` campaign.
    let fresh_b = result_json(&run_campaign(&b, None));
    match run_campaign_resumable(&b, None, &journal, None).unwrap() {
        CampaignRun::Complete(res) => assert_eq!(result_json(&res), fresh_b),
        CampaignRun::Interrupted { .. } => panic!("resume did not complete"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Recovery phase: same contract, policy tables included in the fingerprint
// ---------------------------------------------------------------------------

use faultsim::campaign::{
    run_recovery_campaign, run_recovery_campaign_resumable, RecoveryCampaignResult,
    RecoveryCampaignRun,
};
use faultsim::policy::HmTable;

fn recovery_tables() -> Vec<HmTable> {
    vec![HmTable::reexecute_only(), HmTable::tiered()]
}

fn recovery_json(res: &RecoveryCampaignResult) -> String {
    serde_json::to_string(&res.records).expect("recovery records serialize")
}

#[test]
fn recovery_thread_count_never_changes_a_byte() {
    let tables = recovery_tables();
    let baseline = recovery_json(&run_recovery_campaign(&cfg(1), None, &tables));
    let got = recovery_json(&run_recovery_campaign(&cfg(4), None, &tables));
    assert_eq!(
        got, baseline,
        "threads=4 produced a different recovery campaign result"
    );
}

#[test]
fn interrupted_recovery_campaign_resumes_to_the_identical_result() {
    let c = cfg(2);
    let tables = recovery_tables();
    let dir = std::env::temp_dir().join("xentry_recovery_determinism");
    let _ = std::fs::remove_dir_all(&dir);
    let journal = dir.join("recovery.journal");

    // A straight run is the reference.
    let fresh = recovery_json(&run_recovery_campaign(&c, None, &tables));

    // Kill the campaign mid-recovery-phase, after the first chunk...
    let first = run_recovery_campaign_resumable(&c, None, &tables, &journal, Some(1)).unwrap();
    match first {
        RecoveryCampaignRun::Interrupted {
            chunks_done,
            chunks_total,
        } => {
            assert!(chunks_done >= 1);
            assert!(chunks_done < chunks_total);
        }
        RecoveryCampaignRun::Complete(_) => panic!("stop_after_chunks=1 should interrupt"),
    }
    assert!(journal.exists(), "interrupt must leave a journal behind");

    // ...and resume: same bytes as the uninterrupted run.
    match run_recovery_campaign_resumable(&c, None, &tables, &journal, None).unwrap() {
        RecoveryCampaignRun::Complete(res) => assert_eq!(recovery_json(&res), fresh),
        RecoveryCampaignRun::Interrupted { .. } => panic!("resume did not complete"),
    }

    // A journal written under a different policy set must be ignored.
    let other = vec![HmTable::ignore_all()];
    let fresh_other = recovery_json(&run_recovery_campaign(&c, None, &other));
    match run_recovery_campaign_resumable(&c, None, &other, &journal, None).unwrap() {
        RecoveryCampaignRun::Complete(res) => assert_eq!(recovery_json(&res), fresh_other),
        RecoveryCampaignRun::Interrupted { .. } => panic!("resume did not complete"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
