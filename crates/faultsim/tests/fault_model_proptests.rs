//! Property tests over the extended fault models: the burst/PTE/PMC
//! schedule must be a pure function of the campaign seed, burst shapes
//! must stay inside the campaign envelope, PTE strikes must survive the
//! checkpoint machinery's delta round-trip, and the checkpoint-forked
//! fast path must equal injection from a fresh boot for every model.

use faultsim::campaign::{model_specs_at, run_model_campaign, run_model_campaign_from_boot};
use faultsim::{BurstSite, CampaignConfig, PteSpec, RecoverySpec};
use guest_sim::Benchmark;
use proptest::prelude::*;
use xentry::Xentry;

fn cfg_with(seed: u64, injections: usize) -> CampaignConfig {
    let mut c = CampaignConfig::paper(Benchmark::Freqmine, injections, seed);
    c.warmup = 30;
    c.threads = 2;
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The model spec schedule is a pure function of (seed, ordinal,
    /// vmer): recomputing it yields byte-identical specs, which is what
    /// lets every checkpoint fork (and the golden pass) reproduce the
    /// schedule independently.
    #[test]
    fn model_schedule_is_pure(
        seed in 0u64..10_000,
        ordinal in 0usize..16,
        golden_len in 1u64..5_000,
        vmer in 0u16..256,
    ) {
        let cfg = cfg_with(seed, 64);
        let a = model_specs_at(&cfg, ordinal, golden_len, vmer);
        let b = model_specs_at(&cfg, ordinal, golden_len, vmer);
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        prop_assert!(!a.is_empty() || ordinal * cfg.per_point >= cfg.injections);
    }

    /// Every burst the schedule emits stays inside the campaign envelope
    /// (width 2..=4, stride 1..=3, anchor below bit 64), and its flips
    /// spill at most one word past the anchor — the invariant the
    /// word-spill apply and the recovery critical-context rebuild rely on.
    #[test]
    fn burst_specs_stay_in_envelope(
        seed in 0u64..10_000,
        ordinal in 0usize..16,
        golden_len in 1u64..5_000,
        vmer in 0u16..256,
    ) {
        let cfg = cfg_with(seed, 64);
        for spec in model_specs_at(&cfg, ordinal, golden_len, vmer) {
            match spec {
                RecoverySpec::Burst(b) => {
                    prop_assert!((2..=4).contains(&b.width), "width {}", b.width);
                    prop_assert!((1..=3).contains(&b.stride), "stride {}", b.stride);
                    prop_assert!(b.start_bit < 64, "start {}", b.start_bit);
                    let offsets: Vec<u64> = b.bit_offsets().collect();
                    prop_assert_eq!(offsets.len(), b.width as usize);
                    prop_assert!(offsets.iter().all(|&o| o < 128));
                    if matches!(b.site, BurstSite::Reg(_)) {
                        prop_assert!(b.at_step < golden_len.max(1));
                    } else {
                        prop_assert_eq!(b.at_step, 0, "memory strikes persist from entry");
                    }
                }
                RecoverySpec::Pte(p) => {
                    prop_assert_eq!(p.at_step, 0);
                    prop_assert!(p.mask() != 0);
                }
                RecoverySpec::Pmc(p) => prop_assert!(p.at_step < golden_len.max(1)),
                other => prop_assert!(false, "unexpected model spec {other:?}"),
            }
        }
    }

    /// A PTE strike round-trips through the checkpoint machinery: the
    /// sparse `PlatformDelta` of a struck platform, applied to the
    /// pre-strike base, reproduces the struck state exactly — so a
    /// checkpoint taken after a strike (or restored across one) never
    /// loses or smears the corrupted PTE word.
    #[test]
    fn pte_strike_round_trips_through_platform_delta(
        seed in 0u64..500,
        dom in 0u8..4,
        page in 0u16..64,
        field_roll in 0u8..3,
        bit in 0u8..28,
    ) {
        let cfg = cfg_with(seed, 1);
        let mut base = faultsim::campaign_platform(&cfg, seed);
        let mut shim = Xentry::collector();
        base.boot(1, &mut shim);
        for _ in 0..10 {
            prop_assert!(base.run_activation(1, &mut shim).outcome.is_healthy());
        }
        let field = match field_roll {
            0 => faultsim::PteField::Present,
            1 => faultsim::PteField::Rw,
            _ => faultsim::PteField::Addr,
        };
        let spec = PteSpec { dom, page, field, bit, at_step: 0 };
        let addr = spec.pte_addr();
        let mut struck = base.clone();
        RecoverySpec::Pte(spec).apply(&mut struck.machine, 1);
        prop_assert_eq!(
            struck.machine.mem.peek(addr).unwrap(),
            base.machine.mem.peek(addr).unwrap() ^ spec.mask()
        );
        // Delta round-trip.
        let delta = struck.delta_against(&base);
        let mut rebuilt = base.clone();
        rebuilt.apply_delta(&delta);
        prop_assert_eq!(rebuilt.state_digest(), struck.state_digest());
        // The XOR strike is an involution: striking twice restores the
        // original platform bit-for-bit.
        RecoverySpec::Pte(spec).apply(&mut struck.machine, 1);
        prop_assert_eq!(struck.state_digest(), base.state_digest());
    }
}

proptest! {
    // Whole-campaign equivalence is expensive (every injection replays
    // from boot on the reference side): few cases, tiny campaigns.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Injecting at a checkpoint-forked point equals injecting from a
    /// fresh boot, for every extended fault model at once: the campaign's
    /// ~42x fast path changes nothing but wall-clock time.
    #[test]
    fn forked_model_campaign_equals_from_boot(seed in 0u64..50) {
        let cfg = cfg_with(seed, 8);
        let fast = run_model_campaign(&cfg, None);
        let slow = run_model_campaign_from_boot(&cfg, None);
        prop_assert_eq!(
            serde_json::to_string(&fast).unwrap(),
            serde_json::to_string(&slow).unwrap()
        );
    }
}
