//! # faultsim — fault-injection campaigns for hypervisor soft errors
//!
//! The reproduction of the paper's evaluation methodology (§V): single
//! bit-flips in architectural registers while the CPU executes hypervisor
//! code, golden-run differencing to decide activation, outcome
//! classification into the paper's taxonomy (short-latency hypervisor
//! crashes; long-latency APP SDC / APP crash / one-VM / all-VM failures),
//! detection-latency measurement, and labeled-dataset emission for training
//! the VM-transition detector.
//!
//! * [`injection`] — one fault: snapshot → golden run → flip → compare.
//! * [`golden`] — machine differencing and corruption-site attribution.
//! * [`checkpoint`] — delta-compressed checkpoint chains over the golden run.
//! * [`journal`] — crash-safe persistence of completed campaign chunks.
//! * [`campaign`] — checkpoint-forked, deterministic, resumable campaigns.
//! * [`analysis`] — the aggregations behind Fig. 8/9/10 and Table II.

pub mod analysis;
pub mod campaign;
pub mod checkpoint;
pub mod golden;
pub mod injection;
pub mod journal;
pub mod outcome;
pub mod policy;
pub mod recovery;

pub use analysis::{
    coverage_breakdown, latency_data, latency_data_filtered, long_latency_coverage, merge_vulnmaps,
    target_breakdown, undetected_breakdown, vulnerability_map, vulnmap_from_model_records,
    vulnmap_from_records, CoverageBreakdown, LatencyData, LongLatencyCoverage, TargetRow,
    UndetectedBreakdown, VulnCell, VulnMap,
};
pub use campaign::{
    campaign_platform, collect_correct_samples, dataset_from_records, evaluate_detector_on_records,
    golden_trace, model_specs_at, multibit_study, recovery_campaign_digest, run_campaign,
    run_campaign_from_boot, run_campaign_resumable, run_campaign_with, run_model_campaign,
    run_model_campaign_from_boot, run_model_campaign_with, run_recovery_campaign,
    run_recovery_campaign_resumable, run_recovery_campaign_with, CampaignConfig, CampaignResult,
    CampaignRun, GoldenTrace, ModelCampaignResult, ModelRecord, RecoveryCampaignResult,
    RecoveryCampaignRun, RecoveryRecord,
};
pub use checkpoint::{CheckpointStats, CheckpointStore};
pub use golden::{classify_site, diff_machines, DiffSite, StateDiff};
pub use injection::{
    inject, inject_spec, inject_with_flips, prepare_point, prepare_point_forked, InjectionPoint,
    InjectionRecord, InjectionSpec, PointMeta,
};
pub use journal::{write_atomic, CampaignJournal};
pub use outcome::{Consequence, FaultOutcome, UndetectedCategory};
pub use policy::{
    run_ladder, EscalationStep, HmRule, HmTable, RecoveryAction, RecoveryOutcome, TierResult,
};
pub use recovery::{
    attempt_recovery, detect_fault, ignore_recovery, microreboot_recovery, recover_detected,
    recover_with_policy, BurstSite, BurstSpec, DetectedFault, PmcSpec, PolicyRecovery, PteField,
    PteSpec, RecoverySpec,
};
