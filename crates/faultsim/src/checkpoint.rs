//! Delta-compressed checkpoint chains over the golden execution.
//!
//! The campaign engine runs the golden (fault-free) execution once and
//! checkpoints the platform at segment boundaries; every injection then
//! forks from the nearest checkpoint at or before its injection point
//! instead of replaying from boot (the DETOx/ReHype idea applied to our
//! simulator). Consecutive checkpoints share almost the entire memory
//! image, so checkpoint `k` is stored as a sparse [`xen_like::PlatformDelta`]
//! against checkpoint `k-1`; only checkpoint 0 is a full snapshot.

use serde::{Deserialize, Serialize};
use xen_like::{Platform, PlatformDelta};

/// Sizing diagnostics for a checkpoint chain, reported by the campaign
/// benchmark so the compression claim is measured, not assumed.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CheckpointStats {
    /// Checkpoints in the chain (including the full base).
    pub checkpoints: usize,
    /// Words in one full memory image.
    pub full_mem_words: usize,
    /// Total delta-carried words across the chain.
    pub delta_mem_words: usize,
}

impl CheckpointStats {
    /// Words a chain of full snapshots would hold per checkpoint, divided
    /// by the words the delta chain actually holds per checkpoint.
    pub fn compression_ratio(&self) -> f64 {
        if self.checkpoints <= 1 {
            return 1.0;
        }
        let deltas = (self.checkpoints - 1) as f64;
        let full = self.full_mem_words as f64 * deltas;
        full / (self.delta_mem_words as f64).max(1.0)
    }
}

/// A chain of platform checkpoints along one golden execution.
///
/// Checkpoint 0 is a full snapshot; checkpoint `k > 0` is a delta against
/// checkpoint `k-1`. [`CheckpointStore::restore`] rebuilds any checkpoint
/// by cloning the base and replaying the delta prefix — O(changed words),
/// not O(memory image), per step.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    base: Platform,
    deltas: Vec<PlatformDelta>,
    /// Full copy of the newest checkpoint, kept so the next push can be
    /// delta-compressed without re-materializing the chain.
    tip: Platform,
}

impl CheckpointStore {
    /// Start a chain at `base` (checkpoint 0).
    pub fn new(base: Platform) -> CheckpointStore {
        CheckpointStore {
            tip: base.clone(),
            base,
            deltas: Vec::new(),
        }
    }

    /// Append the next checkpoint, delta-compressed against the previous.
    pub fn push(&mut self, snap: &Platform) {
        self.deltas.push(snap.delta_against(&self.tip));
        self.tip = snap.clone();
    }

    /// Number of checkpoints in the chain.
    pub fn len(&self) -> usize {
        self.deltas.len() + 1
    }

    /// Whether the chain holds only the base.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Materialize checkpoint `k` (0-based).
    pub fn restore(&self, k: usize) -> Platform {
        assert!(
            k < self.len(),
            "checkpoint {k} beyond chain of {}",
            self.len()
        );
        let mut p = self.base.clone();
        for d in &self.deltas[..k] {
            p.apply_delta(d);
        }
        p
    }

    /// Sizing diagnostics.
    pub fn stats(&self) -> CheckpointStats {
        CheckpointStats {
            checkpoints: self.len(),
            full_mem_words: self
                .base
                .machine
                .mem
                .regions()
                .iter()
                .map(|r| r.words.len())
                .sum(),
            delta_mem_words: self.deltas.iter().map(|d| d.mem_words()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{campaign_platform, CampaignConfig};
    use guest_sim::Benchmark;
    use xentry::Xentry;

    fn walked_platform(n: usize) -> Platform {
        let cfg = CampaignConfig::paper(Benchmark::Freqmine, 1, 3);
        let mut plat = campaign_platform(&cfg, 3);
        let mut shim = Xentry::collector();
        plat.boot(1, &mut shim);
        for _ in 0..n {
            assert!(plat.run_activation(1, &mut shim).outcome.is_healthy());
        }
        plat
    }

    #[test]
    fn restore_reproduces_every_checkpoint_exactly() {
        let cfg = CampaignConfig::paper(Benchmark::Freqmine, 1, 3);
        let mut plat = campaign_platform(&cfg, 3);
        let mut shim = Xentry::collector();
        plat.boot(1, &mut shim);
        for _ in 0..10 {
            plat.run_activation(1, &mut shim);
        }
        let mut store = CheckpointStore::new(plat.snapshot());
        let mut digests = vec![plat.state_digest()];
        for _ in 0..4 {
            for _ in 0..5 {
                plat.run_activation(1, &mut shim);
            }
            store.push(&plat);
            digests.push(plat.state_digest());
        }
        assert_eq!(store.len(), 5);
        for (k, want) in digests.iter().enumerate() {
            assert_eq!(store.restore(k).state_digest(), *want, "checkpoint {k}");
        }
    }

    #[test]
    fn restored_checkpoint_evolves_like_the_original() {
        let plat = walked_platform(12);
        let mut store = CheckpointStore::new(plat.clone());
        let mut live = plat;
        let mut shim = Xentry::collector();
        for _ in 0..6 {
            live.run_activation(1, &mut shim);
        }
        store.push(&live);
        // Fork checkpoint 1 and run both forward in lockstep.
        let mut forked = store.restore(1);
        let mut shim_a = Xentry::collector();
        let mut shim_b = Xentry::collector();
        for _ in 0..8 {
            live.run_activation(1, &mut shim_a);
            forked.run_activation(1, &mut shim_b);
            assert_eq!(live.state_digest(), forked.state_digest());
        }
    }

    #[test]
    fn deltas_are_much_smaller_than_full_snapshots() {
        let plat = walked_platform(15);
        let mut store = CheckpointStore::new(plat.clone());
        let mut live = plat;
        let mut shim = Xentry::collector();
        for _ in 0..3 {
            for _ in 0..4 {
                live.run_activation(1, &mut shim);
            }
            store.push(&live);
        }
        let st = store.stats();
        assert_eq!(st.checkpoints, 4);
        assert!(
            st.compression_ratio() > 10.0,
            "checkpoint deltas should be sparse: {st:?}"
        );
    }
}
