//! Single-fault injection execution (the paper's §V-B fault model).
//!
//! "We currently use the single bit-flip fault model in the architectural
//! register state, including general purpose registers, instruction and
//! stack pointers and flags. ... On each fault injection run, only one
//! fault is injected. After a fault is injected, we allow the simulation to
//! continue to observe if it can be detected."
//!
//! One injection proceeds like the paper's Simics workflow:
//!
//! 1. snapshot the platform at a VM exit;
//! 2. run the handler fault-free (the *golden* run) to get the reference
//!    state at VM entry, the execution's length and its feature vector;
//! 3. restore, run the handler again flipping one register bit after a
//!    chosen number of dynamic instructions, with the Xentry shim attached;
//! 4. compare against the golden state; if the fault propagated past VM
//!    entry, run forward windows of both machines to classify the
//!    consequence (APP SDC / APP crash / one-VM / all-VM).

use crate::golden::{diff_machines, DiffSite, StateDiff};
use crate::outcome::{Consequence, FaultOutcome, UndetectedCategory};
use crate::recovery::RecoverySpec;
use guest_sim::guest_addrs;
use sim_machine::cpu::FlipTarget;
use sim_machine::{CpuId, ExitReason, Machine};
use xen_like::{ActivationOutcome, Platform};
use xentry::{FeatureVec, Xentry, XentryConfig};

/// One fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InjectionSpec {
    pub target: FlipTarget,
    pub bit: u8,
    /// Host-mode dynamic instruction offset within the handler at which the
    /// flip occurs.
    pub at_step: u64,
}

/// A reusable injection point: the platform frozen at a VM exit, plus the
/// golden reference runs. Only the *observables* of the golden post window
/// are kept (burst count, checksum, trap count) — not the post-window
/// platform itself, which would triple the memory held per point for state
/// the consequence classifier never word-compares.
#[derive(Debug, Clone)]
pub struct InjectionPoint {
    /// Platform state at the VM exit (host entry, VMCS filled).
    pub at_exit: Platform,
    pub cpu: CpuId,
    pub reason: ExitReason,
    /// Golden platform state at the matching VM entry.
    pub golden_entry: Platform,
    /// Dynamic length of the fault-free handler execution.
    pub golden_len: u64,
    /// Fault-free feature vector.
    pub golden_features: FeatureVec,
    /// Benchmark-guest burst count `post_window` activations past VM entry
    /// in the golden run (alignment target for consequence runs).
    pub golden_post_bursts: u64,
    /// Benchmark-guest checksum at that burst count.
    pub golden_post_result: u64,
    /// Guest trap count in the golden post state.
    pub golden_post_traps: u64,
    /// Observed guest domain.
    pub dom: usize,
    /// Activations in the post window.
    pub post_window: usize,
}

impl InjectionPoint {
    /// The scalar description of this point, as recorded by the campaign's
    /// golden pass. Together with a checkpoint-restored platform it is
    /// enough to rebuild the point via [`prepare_point_forked`] without
    /// re-running the post window.
    pub fn meta(&self, ordinal: usize, skipped_before: usize) -> PointMeta {
        PointMeta {
            ordinal,
            reason: self.reason,
            skipped_before,
            golden_len: self.golden_len,
            golden_features: self.golden_features,
            golden_post_bursts: self.golden_post_bursts,
            golden_post_result: self.golden_post_result,
            golden_post_traps: self.golden_post_traps,
        }
    }
}

/// Scalar record of one golden injection point, produced once by the
/// campaign's golden pass and replayed by every checkpoint fork. Carrying
/// the golden post-window observables here is what lets the fork skip the
/// post window entirely.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PointMeta {
    /// Valid-point ordinal along the golden walk (keys the spec schedule).
    pub ordinal: usize,
    pub reason: ExitReason,
    /// Invalid walk iterations skipped immediately before this point; the
    /// fork replays them so the platform evolution matches the golden pass
    /// step for step.
    pub skipped_before: usize,
    pub golden_len: u64,
    pub golden_features: FeatureVec,
    pub golden_post_bursts: u64,
    pub golden_post_result: u64,
    pub golden_post_traps: u64,
}

/// Outcome of one injection, with everything the campaign aggregates.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct InjectionRecord {
    pub vmer: u16,
    pub target: FlipTarget,
    pub bit: u8,
    pub at_step: u64,
    pub outcome: FaultOutcome,
    /// Faulty-run features, when the handler reached VM entry.
    pub features: Option<FeatureVec>,
    /// Golden features of the same execution.
    pub golden_features: FeatureVec,
}

fn shim_for(detector: Option<&xentry::VmTransitionDetector>) -> Xentry {
    // continue_after_positive keeps golden/faulty cycle charging identical
    // and lets us inspect the post-entry propagation even for detected
    // faults (needed to know the would-be consequence for Fig. 9).
    let mut shim = Xentry::new(XentryConfig::overhead(), detector.cloned());
    shim.keep_trace = false;
    shim
}

/// Prepare an injection point from a platform positioned at a VM exit
/// (i.e. right after [`Platform::run_to_exit`] returned `reason`).
///
/// Returns `None` if the golden run itself does not complete healthily
/// (cannot happen in practice; defensive).
pub fn prepare_point(
    at_exit: Platform,
    cpu: CpuId,
    dom: usize,
    reason: ExitReason,
    post_window: usize,
    detector: Option<&xentry::VmTransitionDetector>,
) -> Option<InjectionPoint> {
    let mut golden = at_exit.clone();
    let mut shim = shim_for(detector);
    let act = golden.run_handler(cpu, reason, 0, &mut shim);
    if !act.outcome.is_healthy() {
        return None;
    }
    let golden_features = shim.last_features()?;
    let golden_entry = golden.clone();
    // Forward window for consequence reference.
    let mut post = golden;
    for _ in 0..post_window {
        let a = post.run_activation(cpu, &mut shim);
        if !a.outcome.is_healthy() {
            return None;
        }
    }
    let ga = guest_addrs(dom);
    let golden_post_bursts = post.machine.mem.peek(ga.iter_count).ok()?;
    let golden_post_result = post.machine.mem.peek(ga.result).ok()?;
    let golden_post_traps = post.machine.mem.peek(ga.trap_count).ok()?;
    Some(InjectionPoint {
        at_exit,
        cpu,
        reason,
        golden_entry,
        golden_len: act.handler_insns,
        golden_features,
        golden_post_bursts,
        golden_post_result,
        golden_post_traps,
        dom,
        post_window,
    })
}

/// Rebuild an injection point from a checkpoint-forked platform positioned
/// at the same VM exit the golden pass recorded as `meta`. Re-runs only the
/// golden *handler* (needed for the entry-state reference); the post-window
/// observables come from `meta`, so the fork skips `post_window`
/// activations per point — the bulk of [`prepare_point`]'s cost.
///
/// # Panics
/// If the replayed handler diverges from the golden pass (wrong health,
/// length or features). The platform is deterministic, so divergence means
/// the fork was started from the wrong state — never continue silently.
pub fn prepare_point_forked(
    at_exit: Platform,
    cpu: CpuId,
    dom: usize,
    post_window: usize,
    meta: &PointMeta,
    detector: Option<&xentry::VmTransitionDetector>,
) -> InjectionPoint {
    let mut golden = at_exit.clone();
    let mut shim = shim_for(detector);
    let act = golden.run_handler(cpu, meta.reason, 0, &mut shim);
    assert!(
        act.outcome.is_healthy(),
        "forked golden handler died at point {}: {:?}",
        meta.ordinal,
        act.outcome
    );
    assert_eq!(
        act.handler_insns, meta.golden_len,
        "forked golden handler length diverged at point {}",
        meta.ordinal
    );
    let golden_features = shim.last_features().expect("golden features collected");
    assert_eq!(
        golden_features, meta.golden_features,
        "forked golden features diverged at point {}",
        meta.ordinal
    );
    InjectionPoint {
        at_exit,
        cpu,
        reason: meta.reason,
        golden_entry: golden,
        golden_len: meta.golden_len,
        golden_features,
        golden_post_bursts: meta.golden_post_bursts,
        golden_post_result: meta.golden_post_result,
        golden_post_traps: meta.golden_post_traps,
        dom,
        post_window,
    }
}

/// Consequence classification by running the faulty machine forward until
/// the benchmark guest reaches the golden burst count (or dies / stalls).
/// `None` means the divergence washed out completely (masked after entry).
fn classify_consequence(
    point: &InjectionPoint,
    faulty_entry: &Platform,
    entry_diff: &StateDiff,
    shim: &mut Xentry,
    nr_doms: usize,
) -> Option<Consequence> {
    let cpu = point.cpu;
    let ga = guest_addrs(point.dom);
    let mut f = faulty_entry.clone();
    // Budget: generous multiple of the golden window.
    let budget = (point.post_window * 4).max(8);
    let mut died = false;
    for _ in 0..budget {
        let bursts = f.machine.mem.peek(ga.iter_count).unwrap_or(0);
        if bursts >= point.golden_post_bursts {
            break;
        }
        let a = f.run_activation(cpu, shim);
        if !a.outcome.is_healthy() {
            died = true;
            break;
        }
    }
    if died {
        // The hypervisor itself crashed after the guest resumed: every VM
        // on the host is gone.
        return Some(Consequence::AllVmFailure);
    }
    let bursts = f.machine.mem.peek(ga.iter_count).unwrap_or(0);
    if bursts < point.golden_post_bursts {
        // The benchmark VM stopped making progress.
        return Some(Consequence::OneVmFailure);
    }
    let traps = f.machine.mem.peek(ga.trap_count).unwrap_or(0);
    if traps > point.golden_post_traps {
        // The guest took unexpected traps: the application crashed.
        return Some(Consequence::AppCrash);
    }
    if f.machine.mem.peek(ga.result).unwrap_or(0) != point.golden_post_result {
        // Application finished its bursts with a wrong checksum: SDC.
        return Some(Consequence::AppSdc);
    }
    // Structural invariants (pointers, descriptors, dispatch table) can be
    // compared even though the two machines are not activation-aligned —
    // those words are constant during normal operation, so the golden entry
    // state is as valid a reference as any later golden state; volatile
    // accounting counters cannot, so the classification relies on
    // observables plus this check.
    if crate::golden::structural_corruption(&point.golden_entry.machine, &f.machine, nr_doms) {
        return Some(Consequence::AllVmFailure);
    }
    // Entry-aligned evidence: wrong bytes already reached a device, or the
    // only corruption was guest-visible time.
    if entry_diff.any_site(&[DiffSite::Device]) {
        return Some(Consequence::AppSdc);
    }
    if entry_diff.sites.iter().all(|s| {
        matches!(
            s,
            DiffSite::TimeValue | DiffSite::StackOrSaveArea | DiffSite::Vmcs
        )
    }) && entry_diff.any_site(&[DiffSite::TimeValue])
    {
        // Wrong time values delivered to the guest: silent data corruption
        // in everything that consumes timestamps.
        return Some(Consequence::AppSdc);
    }
    // No observable effect within the window.
    None
}

/// Table-II categorization of an undetected fault.
fn categorize_undetected(
    golden_features: &FeatureVec,
    faulty_features: &FeatureVec,
    diff: &StateDiff,
) -> UndetectedCategory {
    if golden_features.rt != faulty_features.rt
        || golden_features.br != faulty_features.br
        || golden_features.rm != faulty_features.rm
        || golden_features.wm != faulty_features.wm
    {
        // The counter footprint changed: the VM-transition detector had a
        // visible anomaly and still passed it.
        return UndetectedCategory::MisClassified;
    }
    if diff.only_sites(&[DiffSite::TimeValue]) {
        return UndetectedCategory::TimeValues;
    }
    // Time values are staged to guests through register save-area slots
    // (emulated RDTSC writes guest RAX/RDX and the TSC stamp): corruption
    // touching time words plus save-area staging is time-value corruption,
    // the paper's "the hypervisor sends time values to the requesting
    // domains" channel.
    let stacky = [DiffSite::StackOrSaveArea, DiffSite::Vmcs];
    if diff.any_site(&[DiffSite::TimeValue])
        && diff
            .sites
            .iter()
            .all(|s| stacky.contains(s) || *s == DiffSite::TimeValue)
    {
        return UndetectedCategory::TimeValues;
    }
    if diff.sites.iter().all(|s| stacky.contains(s)) && diff.any_site(&stacky) {
        return UndetectedCategory::StackValues;
    }
    UndetectedCategory::OtherValues
}

/// Execute one injection at a prepared point.
pub fn inject(
    point: &InjectionPoint,
    spec: InjectionSpec,
    detector: Option<&xentry::VmTransitionDetector>,
) -> InjectionRecord {
    inject_with_flips(point, &[(spec.target, spec.bit)], spec.at_step, detector)
}

/// Execute one injection applying several simultaneous bit flips — the
/// multi-bit upset model the paper motivates ("uncorrected errors may still
/// occur when the number of errors are beyond the ECC capabilities").
pub fn inject_with_flips(
    point: &InjectionPoint,
    flips: &[(FlipTarget, u8)],
    at_step: u64,
    detector: Option<&xentry::VmTransitionDetector>,
) -> InjectionRecord {
    assert!(!flips.is_empty());
    let spec = InjectionSpec {
        target: flips[0].0,
        bit: flips[0].1,
        at_step,
    };
    let flips_owned: Vec<(FlipTarget, u8)> = flips.to_vec();
    let (outcome, features) = inject_core(point, at_step, detector, false, move |m, c| {
        for (target, bit) in flips_owned {
            m.cpu_mut(c).flip_bit(target, bit);
        }
    });
    InjectionRecord {
        vmer: point.reason.vmer(),
        target: spec.target,
        bit: spec.bit,
        at_step: spec.at_step,
        outcome,
        features,
        golden_features: point.golden_features,
    }
}

/// Execute one model fault — any [`RecoverySpec`]: register flip, private
/// memory strike, spatial burst, PTE corruption or PMC corruption — at a
/// prepared point, returning the outcome and the faulty feature vector
/// (present when the handler reached VM entry).
pub fn inject_spec(
    point: &InjectionPoint,
    spec: &RecoverySpec,
    detector: Option<&xentry::VmTransitionDetector>,
) -> (FaultOutcome, Option<FeatureVec>) {
    let s = *spec;
    // PMC corruption lands in PMU state the entry diff deliberately
    // excludes, so a detector flag on an architecturally clean diff is a
    // true detection of the corrupted counter — not a false positive.
    let flag_on_clean_diff = matches!(spec, RecoverySpec::Pmc(_));
    inject_core(
        point,
        spec.at_step(),
        detector,
        flag_on_clean_diff,
        move |m, c| s.apply(m, c),
    )
}

/// Shared execution core of every injection flavour: run the handler with
/// the fault hook attached, diff against the golden entry state, classify
/// the consequence, and give deployed detection its post-window chance.
fn inject_core(
    point: &InjectionPoint,
    at_step: u64,
    detector: Option<&xentry::VmTransitionDetector>,
    flag_on_clean_diff: bool,
    apply: impl FnOnce(&mut Machine, CpuId),
) -> (FaultOutcome, Option<FeatureVec>) {
    let cpu = point.cpu;
    let nr_doms = point.at_exit.topo.domains.len();
    let mut f = point.at_exit.clone();
    let mut shim = shim_for(detector);
    // The latency clock starts at activation: the flips land after
    // `at_step` retired host instructions.
    shim.injection_mark = Some(f.machine.cpu(cpu).insns_retired + at_step);

    let act = f.run_handler_hooked(cpu, point.reason, 0, &mut shim, Some(at_step), apply);

    let base = |outcome, features| (outcome, features);

    match act.outcome {
        ActivationOutcome::HostException(_)
        | ActivationOutcome::AssertFailed(_)
        | ActivationOutcome::Flagged => {
            // Runtime detection fired before VM entry (short-latency path).
            let d = shim.detections.first().expect("detection recorded");
            return base(
                FaultOutcome::Detected {
                    technique: d.technique,
                    latency: d.latency.unwrap_or(0),
                    same_activation: true,
                    consequence: Some(Consequence::HypervisorCrash),
                },
                None,
            );
        }
        ActivationOutcome::Hung => {
            // Watchdog: the handler livelocked *before VM entry* — a
            // short-latency hypervisor failure (the paper's Path 1), not a
            // long-latency propagation. Xentry has no hang detector, so it
            // goes undetected.
            return base(
                FaultOutcome::Undetected {
                    consequence: Consequence::HypervisorCrash,
                    category: UndetectedCategory::OtherValues,
                },
                None,
            );
        }
        ActivationOutcome::Resumed | ActivationOutcome::WentIdle => {}
    }

    // Handler completed: the VM-transition detector has classified (in
    // continue mode a positive is recorded, not fatal).
    let faulty_features = shim.last_features().expect("features collected");
    let entry_diff = diff_machines(&point.golden_entry.machine, &f.machine, cpu, nr_doms);

    if entry_diff.is_empty() {
        if flag_on_clean_diff && shim.detected() {
            // The caller declared clean-diff flags to be true detections
            // (PMC corruption: the strike is invisible to the diff by
            // construction, and the counter anomaly IS the manifestation).
            let d = &shim.detections[0];
            return base(
                FaultOutcome::Detected {
                    technique: d.technique,
                    latency: d.latency.unwrap_or(0),
                    same_activation: true,
                    consequence: None,
                },
                Some(faulty_features),
            );
        }
        // Architecturally clean execution. A positive verdict here is a
        // false positive (recovery would re-execute and succeed); it is not
        // a detection of a manifested fault, so the record stays benign —
        // FP rates are measured on fault-free runs, as in the paper.
        return base(FaultOutcome::Benign, Some(faulty_features));
    }

    // Fault propagated across VM entry: long-latency error. Determine the
    // would-be consequence by running the faulty machine forward.
    let consequence =
        classify_consequence(point, &f, &entry_diff, &mut shim_for(detector), nr_doms);

    if shim.detected() {
        let d = &shim.detections[0];
        return base(
            FaultOutcome::Detected {
                technique: d.technique,
                latency: d.latency.unwrap_or(0),
                same_activation: true,
                consequence,
            },
            Some(faulty_features),
        );
    }
    let Some(consequence) = consequence else {
        return base(FaultOutcome::MaskedAfterEntry, Some(faulty_features));
    };

    // Give the deployed runtime detection a chance during the observation
    // window (late hardware exceptions / assertions on corrupted state).
    let mut fwd = f.clone();
    let mut late_shim = shim_for(detector);
    late_shim.injection_mark = shim.injection_mark;
    for _ in 0..point.post_window {
        let a = fwd.run_activation(cpu, &mut late_shim);
        if late_shim.detected() {
            let d = &late_shim.detections[0];
            return base(
                FaultOutcome::Detected {
                    technique: d.technique,
                    latency: d.latency.unwrap_or(0),
                    same_activation: false,
                    consequence: Some(consequence),
                },
                Some(faulty_features),
            );
        }
        if !a.outcome.is_healthy() {
            break;
        }
    }

    let category = categorize_undetected(&point.golden_features, &faulty_features, &entry_diff);
    base(
        FaultOutcome::Undetected {
            consequence,
            category,
        },
        Some(faulty_features),
    )
}
