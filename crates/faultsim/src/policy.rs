//! ARINC-653-style health-monitor policy engine: a declarative table
//! mapping (detection technique × consequence class) to a recovery
//! action, with a bounded escalation ladder.
//!
//! A detected fault enters the ladder at whatever action the table
//! selects. If that tier fails to converge the ladder escalates —
//! re-execution failure escalates to microreboot, repeated microreboot
//! failure to halt — and every tier carries an attempt cap, so the
//! total number of recovery attempts per fault is provably bounded by
//! `max_reexec + max_microreboot + 1`.

use serde::{Deserialize, Serialize};
use sim_machine::fold64;
use xentry::Technique;

use crate::outcome::Consequence;

/// A recovery tier the health monitor can invoke for a detected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecoveryAction {
    /// Log and resume: no recovery attempted. The fault's consequence,
    /// if any, lands on the guest.
    Ignore,
    /// Restore the critical-state copy and re-execute the faulted
    /// handler (the paper's §VI recovery sketch).
    ReExecute,
    /// ReHype-style hypervisor microreboot: reinitialize
    /// hypervisor-private state from the boot image, preserving guest
    /// state, and re-enter at the exit trampoline.
    Microreboot,
    /// Give up: take the whole host down rather than run corrupted.
    Halt,
}

impl RecoveryAction {
    /// Escalation order of the ladder (weaker tiers first).
    pub const LADDER: [RecoveryAction; 4] = [
        RecoveryAction::Ignore,
        RecoveryAction::ReExecute,
        RecoveryAction::Microreboot,
        RecoveryAction::Halt,
    ];

    /// The next-stronger tier, or `None` from `Halt`.
    pub fn escalate(self) -> Option<RecoveryAction> {
        match self {
            RecoveryAction::Ignore => Some(RecoveryAction::ReExecute),
            RecoveryAction::ReExecute => Some(RecoveryAction::Microreboot),
            RecoveryAction::Microreboot => Some(RecoveryAction::Halt),
            RecoveryAction::Halt => None,
        }
    }

    fn tag(self) -> u64 {
        match self {
            RecoveryAction::Ignore => 0,
            RecoveryAction::ReExecute => 1,
            RecoveryAction::Microreboot => 2,
            RecoveryAction::Halt => 3,
        }
    }
}

/// One row of the health-monitor table. `None` fields are wildcards;
/// the first matching rule wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HmRule {
    /// Which detection technique fired, or any.
    pub technique: Option<Technique>,
    /// The consequence class the fault manifested as (as far as the
    /// monitor can tell at detection time), or any.
    pub consequence: Option<Consequence>,
    /// The action this row selects.
    pub action: RecoveryAction,
}

/// A declarative health-monitor table: ordered rules plus a default
/// action and per-tier attempt caps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HmTable {
    /// Display name, used in reports and artifacts.
    pub name: String,
    /// First-match-wins rule list.
    pub rules: Vec<HmRule>,
    /// Action when no rule matches.
    pub default: RecoveryAction,
    /// Re-execution attempts before escalating to microreboot.
    pub max_reexec: u32,
    /// Microreboot attempts before escalating to halt.
    pub max_microreboot: u32,
}

impl HmTable {
    /// Resolve the entry action for a detection event.
    pub fn action_for(
        &self,
        technique: Technique,
        consequence: Option<Consequence>,
    ) -> RecoveryAction {
        for r in &self.rules {
            let tech_ok = r.technique.is_none_or(|t| t == technique);
            let cons_ok = match (r.consequence, consequence) {
                (None, _) => true,
                (Some(want), Some(got)) => want == got,
                (Some(_), None) => false,
            };
            if tech_ok && cons_ok {
                return r.action;
            }
        }
        self.default
    }

    /// Attempt cap for one tier of the ladder. `Ignore` and `Halt` are
    /// terminal: one attempt each, by construction. A cap of 0 disables
    /// the tier outright — the ladder escalates straight past it, so a
    /// `reexec-only` table never reboots even when re-execution fails.
    pub fn cap(&self, action: RecoveryAction) -> u32 {
        match action {
            RecoveryAction::Ignore | RecoveryAction::Halt => 1,
            RecoveryAction::ReExecute => self.max_reexec,
            RecoveryAction::Microreboot => self.max_microreboot,
        }
    }

    /// Upper bound on recovery attempts for any single fault under this
    /// table — the escalation ladder terminates within this many steps.
    pub fn max_attempts(&self) -> u32 {
        1 + self.max_reexec + self.max_microreboot + 1
    }

    /// Deterministic digest of the whole table, folded into campaign
    /// journal digests so a resumed run rejects a changed policy.
    pub fn digest(&self) -> u64 {
        let mut h = fold64(0x686d_5f74, self.rules.len() as u64);
        for b in self.name.bytes() {
            h = fold64(h, b as u64);
        }
        for r in &self.rules {
            let t = match r.technique {
                None => 0,
                Some(Technique::HwException) => 1,
                Some(Technique::SwAssertion) => 2,
                Some(Technique::VmTransition) => 3,
            };
            let c = match r.consequence {
                None => 0,
                Some(Consequence::AppSdc) => 1,
                Some(Consequence::AppCrash) => 2,
                Some(Consequence::OneVmFailure) => 3,
                Some(Consequence::AllVmFailure) => 4,
                Some(Consequence::HypervisorCrash) => 5,
            };
            h = fold64(h, t << 32 | c << 8 | r.action.tag());
        }
        h = fold64(h, self.default.tag());
        h = fold64(
            h,
            (self.max_reexec as u64) << 32 | self.max_microreboot as u64,
        );
        h
    }

    /// The paper's §VI baseline: every detection answered with critical-
    /// state restore + re-execution, nothing stronger.
    pub fn reexecute_only() -> HmTable {
        HmTable {
            name: "reexec-only".into(),
            rules: vec![],
            default: RecoveryAction::ReExecute,
            max_reexec: 2,
            max_microreboot: 0,
        }
    }

    /// The tiered ReHype-style policy: re-execute first, escalate
    /// residual corruption to a hypervisor microreboot.
    pub fn tiered() -> HmTable {
        HmTable {
            name: "tiered".into(),
            rules: vec![
                // A hypervisor crash has already lost the handler
                // context; go straight to the reboot tier.
                HmRule {
                    technique: None,
                    consequence: Some(Consequence::HypervisorCrash),
                    action: RecoveryAction::Microreboot,
                },
            ],
            default: RecoveryAction::ReExecute,
            max_reexec: 2,
            max_microreboot: 2,
        }
    }

    /// Null policy: detection without recovery (the paper's scope).
    pub fn ignore_all() -> HmTable {
        HmTable {
            name: "ignore-all".into(),
            rules: vec![],
            default: RecoveryAction::Ignore,
            max_reexec: 0,
            max_microreboot: 0,
        }
    }
}

/// What one tier of the ladder achieved for one fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TierResult {
    /// The platform reconverged with the golden run: fault recovered.
    Converged,
    /// The tier completed but corruption remains, classified by its
    /// observable consequence.
    Residual(Consequence),
    /// The hypervisor could not even complete the tier (re-entry hung
    /// or faulted again fatally).
    HypervisorDead,
}

/// Final verdict of the escalation ladder for one detected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecoveryOutcome {
    /// Some tier converged; records which one closed the fault.
    Recovered { tier: RecoveryAction },
    /// The ladder ended with guest-visible damage (a VM lost state or
    /// crashed) but the hypervisor survived.
    VmLost,
    /// The ladder exhausted every tier (or was told to halt): the host
    /// goes down for an external restart.
    FailedRecovery,
}

/// One step the ladder actually took, for receipts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EscalationStep {
    pub action: RecoveryAction,
    pub attempt: u32,
    pub result: TierResult,
}

/// Drive a detected fault through `table`'s escalation ladder.
///
/// `try_tier` executes one attempt of one tier and reports what it
/// achieved; the ladder owns the policy: entry action from the table,
/// per-tier attempt caps, escalation on non-convergence. Returns the
/// final verdict plus the audit trail of steps taken. The loop is
/// bounded by [`HmTable::max_attempts`] — asserted, not assumed.
pub fn run_ladder(
    table: &HmTable,
    technique: Technique,
    consequence: Option<Consequence>,
    mut try_tier: impl FnMut(RecoveryAction, u32) -> TierResult,
) -> (RecoveryOutcome, Vec<EscalationStep>) {
    let mut steps = Vec::new();
    let mut action = table.action_for(technique, consequence);
    let mut last_residual = consequence;
    loop {
        match action {
            RecoveryAction::Ignore => {
                // No recovery action — but "ignore" still has an outcome:
                // the tier callback lets the fault run its course and
                // reports what the system converged to. A fault that
                // kills the hypervisor or every VM despite detection is a
                // failed recovery; lesser damage is a lost VM; a fault
                // that happens to converge anyway survived by luck.
                let result = try_tier(action, 1);
                steps.push(EscalationStep {
                    action,
                    attempt: 1,
                    result,
                });
                let outcome = match result {
                    TierResult::Converged => RecoveryOutcome::Recovered {
                        tier: RecoveryAction::Ignore,
                    },
                    TierResult::Residual(Consequence::HypervisorCrash)
                    | TierResult::Residual(Consequence::AllVmFailure)
                    | TierResult::HypervisorDead => RecoveryOutcome::FailedRecovery,
                    TierResult::Residual(_) => RecoveryOutcome::VmLost,
                };
                assert!(steps.len() <= table.max_attempts() as usize);
                return (outcome, steps);
            }
            RecoveryAction::Halt => {
                steps.push(EscalationStep {
                    action,
                    attempt: 1,
                    result: match last_residual {
                        Some(c) => TierResult::Residual(c),
                        None => TierResult::HypervisorDead,
                    },
                });
                assert!(steps.len() <= table.max_attempts() as usize);
                return (RecoveryOutcome::FailedRecovery, steps);
            }
            RecoveryAction::ReExecute | RecoveryAction::Microreboot => {
                // A zero cap disables the tier: the loop body never runs
                // and the ladder escalates immediately.
                let cap = table.cap(action);
                let mut converged = false;
                for attempt in 1..=cap {
                    let result = try_tier(action, attempt);
                    steps.push(EscalationStep {
                        action,
                        attempt,
                        result,
                    });
                    match result {
                        TierResult::Converged => {
                            converged = true;
                            break;
                        }
                        TierResult::Residual(c) => last_residual = Some(c),
                        TierResult::HypervisorDead => {
                            last_residual = Some(Consequence::HypervisorCrash)
                        }
                    }
                }
                if converged {
                    assert!(steps.len() <= table.max_attempts() as usize);
                    return (RecoveryOutcome::Recovered { tier: action }, steps);
                }
                // Cap exhausted: escalate. `Halt` is the ladder's fixed
                // point, so this always terminates.
                action = action.escalate().expect("ladder ends at Halt");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn always(r: TierResult) -> impl FnMut(RecoveryAction, u32) -> TierResult {
        move |_, _| r
    }

    #[test]
    fn first_matching_rule_wins_then_default() {
        let t = HmTable {
            name: "t".into(),
            rules: vec![
                HmRule {
                    technique: Some(Technique::HwException),
                    consequence: None,
                    action: RecoveryAction::Microreboot,
                },
                HmRule {
                    technique: None,
                    consequence: Some(Consequence::AppSdc),
                    action: RecoveryAction::Ignore,
                },
            ],
            default: RecoveryAction::ReExecute,
            max_reexec: 1,
            max_microreboot: 1,
        };
        assert_eq!(
            t.action_for(Technique::HwException, Some(Consequence::AppSdc)),
            RecoveryAction::Microreboot
        );
        assert_eq!(
            t.action_for(Technique::VmTransition, Some(Consequence::AppSdc)),
            RecoveryAction::Ignore
        );
        assert_eq!(
            t.action_for(Technique::VmTransition, None),
            RecoveryAction::ReExecute
        );
    }

    #[test]
    fn ladder_converges_at_entry_tier() {
        let t = HmTable::tiered();
        let (out, steps) = run_ladder(
            &t,
            Technique::VmTransition,
            None,
            always(TierResult::Converged),
        );
        assert_eq!(
            out,
            RecoveryOutcome::Recovered {
                tier: RecoveryAction::ReExecute
            }
        );
        assert_eq!(steps.len(), 1);
    }

    #[test]
    fn reexec_failure_escalates_to_microreboot() {
        let t = HmTable::tiered();
        let mut calls = Vec::new();
        let (out, steps) = run_ladder(&t, Technique::VmTransition, None, |a, n| {
            calls.push((a, n));
            match a {
                RecoveryAction::ReExecute => TierResult::Residual(Consequence::OneVmFailure),
                _ => TierResult::Converged,
            }
        });
        assert_eq!(
            out,
            RecoveryOutcome::Recovered {
                tier: RecoveryAction::Microreboot
            }
        );
        assert_eq!(
            calls,
            vec![
                (RecoveryAction::ReExecute, 1),
                (RecoveryAction::ReExecute, 2),
                (RecoveryAction::Microreboot, 1),
            ]
        );
        assert_eq!(steps.len(), 3);
    }

    #[test]
    fn total_failure_terminates_at_halt_within_cap() {
        let t = HmTable::tiered();
        let (out, steps) = run_ladder(
            &t,
            Technique::HwException,
            Some(Consequence::AppCrash),
            always(TierResult::HypervisorDead),
        );
        assert_eq!(out, RecoveryOutcome::FailedRecovery);
        // 2 re-exec + 2 microreboot + halt, within the proven bound.
        assert_eq!(steps.len(), 5);
        assert!(steps.len() <= t.max_attempts() as usize);
        assert_eq!(steps.last().unwrap().action, RecoveryAction::Halt);
    }

    #[test]
    fn zero_cap_tier_is_skipped_entirely() {
        // reexec-only has max_microreboot = 0: when re-execution fails
        // the ladder must go straight to Halt, never rebooting.
        let t = HmTable::reexecute_only();
        let mut calls = Vec::new();
        let (out, steps) = run_ladder(&t, Technique::HwException, None, |a, _| {
            calls.push(a);
            TierResult::HypervisorDead
        });
        assert!(calls.iter().all(|a| *a == RecoveryAction::ReExecute));
        assert_eq!(out, RecoveryOutcome::FailedRecovery);
        assert_eq!(steps.len(), 3); // 2 re-exec + halt
        assert_eq!(steps.last().unwrap().action, RecoveryAction::Halt);
        assert!(steps.len() <= t.max_attempts() as usize);
    }

    #[test]
    fn hypervisor_crash_rule_skips_straight_to_microreboot() {
        let t = HmTable::tiered();
        let mut first = None;
        let (out, _) = run_ladder(
            &t,
            Technique::HwException,
            Some(Consequence::HypervisorCrash),
            |a, _| {
                first.get_or_insert(a);
                TierResult::Converged
            },
        );
        assert_eq!(first, Some(RecoveryAction::Microreboot));
        assert_eq!(
            out,
            RecoveryOutcome::Recovered {
                tier: RecoveryAction::Microreboot
            }
        );
    }

    #[test]
    fn ignore_policy_maps_tier_results_to_verdicts() {
        let t = HmTable::ignore_all();
        let run = |r| run_ladder(&t, Technique::VmTransition, None, always(r)).0;
        assert_eq!(
            run(TierResult::Converged),
            RecoveryOutcome::Recovered {
                tier: RecoveryAction::Ignore
            }
        );
        assert_eq!(
            run(TierResult::Residual(Consequence::AppCrash)),
            RecoveryOutcome::VmLost
        );
        assert_eq!(
            run(TierResult::Residual(Consequence::HypervisorCrash)),
            RecoveryOutcome::FailedRecovery
        );
        assert_eq!(
            run(TierResult::HypervisorDead),
            RecoveryOutcome::FailedRecovery
        );
        // Ignore never escalates: one step, whatever the result.
        let (_, steps) = run_ladder(
            &t,
            Technique::VmTransition,
            None,
            always(TierResult::HypervisorDead),
        );
        assert_eq!(steps.len(), 1);
    }

    #[test]
    fn digest_is_sensitive_to_rules_caps_and_name() {
        let a = HmTable::tiered();
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        b.max_microreboot += 1;
        assert_ne!(a.digest(), b.digest());
        let mut c = a.clone();
        c.name.push('x');
        assert_ne!(a.digest(), c.digest());
        assert_ne!(
            HmTable::tiered().digest(),
            HmTable::reexecute_only().digest()
        );
    }
}
