//! Fault-outcome taxonomy (paper §II-A, §V-D/E, Table II).

use serde::{Deserialize, Serialize};
use xentry::Technique;

/// What would happen to the system if the fault were *not* detected —
/// the long-latency consequence classes of Fig. 9, plus the short-latency
/// (within-host-mode) classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Consequence {
    /// Fault propagates to the application, which finishes "successfully"
    /// with a wrong result — silent data corruption, the paper's most
    /// dangerous class.
    AppSdc,
    /// Fault propagates to the application and kills it (unexpected traps).
    AppCrash,
    /// One guest VM hangs or crashes.
    OneVmFailure,
    /// The control domain or the hypervisor's global state is corrupted:
    /// every VM is affected.
    AllVmFailure,
    /// The hypervisor itself crashes or hangs before VM entry
    /// (short-latency error, paper Path 1).
    HypervisorCrash,
}

impl Consequence {
    /// Whether this is a long-latency consequence (error crossed VM entry).
    pub fn is_long_latency(self) -> bool {
        !matches!(self, Consequence::HypervisorCrash)
    }
}

/// Corruption-site categories of undetected faults (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UndetectedCategory {
    /// The execution's counter footprint differed from the fault-free run —
    /// the VM-transition detector saw an anomaly and still said "correct".
    MisClassified,
    /// Corruption confined to values saved to / restored from stacks and
    /// register save areas.
    StackValues,
    /// Corruption confined to time values (shared-info time protocol, TSC
    /// stamps, timer deadlines, guest time results) — unverifiable by
    /// naive duplication since replicated `rdtsc` reads legitimately differ.
    TimeValues,
    /// Everything else.
    OtherValues,
}

/// Final classification of one injection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// No architectural effect: the flipped bit was dead or overwritten
    /// (non-activated), or the difference washed out before mattering.
    Benign,
    /// The fault changed state at VM entry but the divergence disappeared
    /// within the observation window with no external effect.
    MaskedAfterEntry,
    /// Detected by the named technique.
    Detected {
        technique: Technique,
        /// Instructions between activation and detection.
        latency: u64,
        /// Detected within the faulted activation (before the guest
        /// resumed), as opposed to during a later activation.
        same_activation: bool,
        /// What the fault would have done if undetected (known only for
        /// faults that propagated past VM entry in the reference run).
        consequence: Option<Consequence>,
    },
    /// Undetected and harmful.
    Undetected {
        consequence: Consequence,
        category: UndetectedCategory,
    },
}

impl FaultOutcome {
    /// Did this fault manifest (cause a failure or data corruption)?
    /// These are the ~17,700 of 30,000 injections in the paper's Fig. 8
    /// denominator.
    pub fn manifested(&self) -> bool {
        !matches!(self, FaultOutcome::Benign | FaultOutcome::MaskedAfterEntry)
    }

    /// Was it detected?
    pub fn detected(&self) -> bool {
        matches!(self, FaultOutcome::Detected { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifested_excludes_benign() {
        assert!(!FaultOutcome::Benign.manifested());
        assert!(!FaultOutcome::MaskedAfterEntry.manifested());
        assert!(FaultOutcome::Detected {
            technique: Technique::HwException,
            latency: 5,
            same_activation: true,
            consequence: None
        }
        .manifested());
        assert!(FaultOutcome::Undetected {
            consequence: Consequence::AppSdc,
            category: UndetectedCategory::TimeValues
        }
        .manifested());
    }

    #[test]
    fn long_latency_classes() {
        assert!(Consequence::AppSdc.is_long_latency());
        assert!(Consequence::OneVmFailure.is_long_latency());
        assert!(!Consequence::HypervisorCrash.is_long_latency());
    }
}
