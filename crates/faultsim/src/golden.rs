//! Golden-run differencing: compare a fault-injected machine against the
//! fault-free reference, and attribute differences to corruption sites.
//!
//! This reproduces the paper's Simics trace analysis: a fault is *activated*
//! iff the architectural state diverges from the golden run, and the
//! locations of the divergence drive the Table-II breakdown (stack values /
//! time values / other).

use guest_sim::guest_addrs;
use sim_machine::{CpuId, Machine, Reg};
use xen_like::layout as lay;

/// Where a differing word lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiffSite {
    /// A general-purpose register / RIP / RFLAGS.
    Register,
    /// VCPU save area (guest registers staged by the stubs) or a stack
    /// (host stack or guest stack neighbourhood).
    StackOrSaveArea,
    /// Time-related words: shared-info time protocol, TSC stamps, timer
    /// deadlines, VCPU time offsets, the guest's time-result area.
    TimeValue,
    /// Guest-visible result data (workload checksum).
    GuestResult,
    /// Other hypervisor data.
    HvData,
    /// Other guest memory.
    GuestMemory,
    /// The VMCS block.
    Vmcs,
    /// Device output stream diverged.
    Device,
}

/// A compact diff between two machines.
#[derive(Debug, Clone, Default)]
pub struct StateDiff {
    /// Differing memory words (address, golden, faulty), truncated.
    pub words: Vec<(u64, u64, u64)>,
    /// Sites of all differing words (not truncated).
    pub sites: Vec<DiffSite>,
    /// Registers that differ on the observed CPU.
    pub regs: Vec<String>,
    /// Whether the per-site noise counters diverged (the execution paths
    /// consumed different amounts of workload randomness — a control-flow
    /// change signal, but not architectural corruption by itself).
    pub noise_diverged: bool,
}

impl StateDiff {
    /// No architectural difference. Noise-counter divergence alone does not
    /// count: the noise source is simulation apparatus, not machine state.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty() && self.regs.is_empty()
    }

    /// True if every differing site is in `allowed`.
    pub fn only_sites(&self, allowed: &[DiffSite]) -> bool {
        !self.sites.is_empty() && self.sites.iter().all(|s| allowed.contains(s))
    }

    /// True if any differing site is in `set`.
    pub fn any_site(&self, set: &[DiffSite]) -> bool {
        self.sites.iter().any(|s| set.contains(s))
    }
}

/// Maximum recorded differing words (sites are still classified for all).
const MAX_RECORDED: usize = 128;

/// Compare the *structural invariants* of two machines: the dispatch table
/// and the configuration/pointer fields of every PCPU, VCPU and domain
/// descriptor. These words never change during normal operation, so they
/// can be compared across machines that are not activation-aligned —
/// exactly what the post-propagation consequence classification needs
/// (volatile accounting counters legitimately drift between two forward
/// runs and must not be compared there).
pub fn structural_corruption(golden: &Machine, faulty: &Machine, nr_doms: usize) -> bool {
    let differs = |addr: u64| golden.mem.peek(addr).ok() != faulty.mem.peek(addr).ok();
    for vmer in 0..sim_machine::ExitReason::VMER_COUNT {
        if differs(lay::dispatch_entry(vmer)) {
            return true;
        }
    }
    for cpu in 0..lay::MAX_PCPUS {
        let pa = lay::pcpu_addr(cpu);
        for field in [
            lay::pcpu::VMCS_PTR,
            lay::pcpu::RUNQ_PTR,
            lay::pcpu::IDLE_VCPU,
        ] {
            if differs(pa + field * 8) {
                return true;
            }
        }
    }
    for v in 0..lay::MAX_VCPUS {
        let va = lay::vcpu_addr(v);
        for field in [
            lay::vcpu::DOM_ID,
            lay::vcpu::VCPU_ID,
            lay::vcpu::IS_IDLE,
            lay::vcpu::DOM_PTR,
        ] {
            if differs(va + field * 8) {
                return true;
            }
        }
    }
    for d in 0..nr_doms {
        let da = lay::domain_addr(d);
        for field in [
            lay::domain::DOM_ID,
            lay::domain::NR_VCPUS,
            lay::domain::EVTCHN_PTR,
            lay::domain::GRANT_PTR,
            lay::domain::SHARED_PTR,
            lay::domain::MEM_BASE,
            lay::domain::MEM_SIZE,
            lay::domain::FIRST_VCPU,
            lay::domain::TRAP_HANDLER,
        ] {
            if differs(da + field * 8) {
                return true;
            }
        }
    }
    false
}

/// Classify the site of a differing address.
pub fn classify_site(addr: u64, nr_doms: usize) -> DiffSite {
    // Time-related hypervisor words.
    let g_wallclock = lay::global_addr(lay::global::WALLCLOCK);
    if addr == g_wallclock {
        return DiffSite::TimeValue;
    }
    for d in 0..nr_doms {
        let sh = lay::shared_addr(d);
        let time_lo = sh + lay::shared::WALLCLOCK * 8;
        let time_hi = sh + (lay::shared::VCPU_TIME + lay::MAX_VCPUS_PER_DOM as u64) * 8;
        if addr >= time_lo && addr < time_hi {
            return DiffSite::TimeValue;
        }
        let ga = guest_addrs(d);
        if addr == ga.time_result || addr == ga.time_result + 8 {
            return DiffSite::TimeValue;
        }
        if addr == ga.result {
            return DiffSite::GuestResult;
        }
    }
    // VCPU descriptors: save areas + time fields.
    let vbase = lay::vcpu::BASE;
    let vend = vbase + (lay::MAX_VCPUS as u64) * lay::vcpu::STRIDE * 8;
    if addr >= vbase && addr < vend {
        let off = (addr - vbase) % (lay::vcpu::STRIDE * 8) / 8;
        return match off {
            o if o < 18 => DiffSite::StackOrSaveArea, // GPRs + RIP + RFLAGS
            o if o == lay::vcpu::TIME_OFFSET || o == lay::vcpu::TIMER_DEADLINE => {
                DiffSite::TimeValue
            }
            _ => DiffSite::HvData,
        };
    }
    // Host stacks.
    if addr >= lay::HV_STACK_BASE
        && addr < lay::HV_STACK_BASE + lay::MAX_PCPUS as u64 * lay::HV_STACK_SIZE
    {
        return DiffSite::StackOrSaveArea;
    }
    // VMCS.
    if (lay::VMCS_BASE..lay::VMCS_BASE + 0x1000).contains(&addr) {
        return DiffSite::Vmcs;
    }
    // Remaining hypervisor data families.
    let (hv_lo, hv_hi) = lay::hv_data_span();
    if addr >= hv_lo && addr < hv_hi {
        return DiffSite::HvData;
    }
    // Guest windows: stack neighbourhood counts as stack, rest as memory.
    for d in 0..nr_doms {
        let win = lay::guest_window(d);
        if addr >= win && addr < win + lay::GUEST_STRIDE {
            let stack_top = lay::guest_stack_top(d);
            if addr + 0x4000 >= stack_top.saturating_sub(0x8000) && addr < stack_top {
                return DiffSite::StackOrSaveArea;
            }
            return DiffSite::GuestMemory;
        }
    }
    DiffSite::HvData
}

/// Diff two machines. `cpu` is the CPU under observation; cycle counters,
/// retired-instruction counters and PMU state are excluded (they are
/// measurement apparatus, not architectural state).
pub fn diff_machines(golden: &Machine, faulty: &Machine, cpu: CpuId, nr_doms: usize) -> StateDiff {
    let mut diff = StateDiff::default();

    let gc = golden.cpu(cpu);
    let fc = faulty.cpu(cpu);
    for r in Reg::ALL {
        if gc.get(r) != fc.get(r) {
            diff.regs.push(r.name().to_string());
        }
    }
    if gc.rip != fc.rip {
        diff.regs.push("rip".to_string());
    }
    if gc.rflags != fc.rflags {
        diff.regs.push("rflags".to_string());
    }

    for (gr, fr) in golden.mem.regions().iter().zip(faulty.mem.regions().iter()) {
        debug_assert_eq!(gr.base, fr.base, "region layout must match");
        if gr.words == fr.words {
            continue;
        }
        for (i, (gw, fw)) in gr.words.iter().zip(fr.words.iter()).enumerate() {
            if gw != fw {
                let addr = gr.base + (i as u64) * 8;
                diff.sites.push(classify_site(addr, nr_doms));
                if diff.words.len() < MAX_RECORDED {
                    diff.words.push((addr, *gw, *fw));
                }
            }
        }
    }

    // Output-side device divergence matters (wrong data reached a device);
    // read-side sequence numbers are apparatus.
    if golden.devices.out_hash != faulty.devices.out_hash
        || golden.devices.out_count != faulty.devices.out_count
    {
        diff.sites.push(DiffSite::Device);
    }
    diff.noise_diverged = golden.noise != faulty.noise;
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use xen_like::{DomainSpec, Topology};

    fn machine() -> Machine {
        let topo = Topology {
            nr_cpus: 1,
            domains: vec![DomainSpec { nr_vcpus: 1 }, DomainSpec { nr_vcpus: 1 }],
            virt_mode: sim_machine::VirtMode::Para,
            seed: 1,
            cycle_model: Default::default(),
        };
        xen_like::build_machine(&topo).0
    }

    #[test]
    fn identical_machines_have_empty_diff() {
        let m = machine();
        let d = diff_machines(&m, &m.snapshot(), 0, 2);
        assert!(d.is_empty());
    }

    #[test]
    fn register_difference_is_reported() {
        let m = machine();
        let mut f = m.snapshot();
        f.cpu_mut(0).set(Reg::R9, 0xbad);
        let d = diff_machines(&m, &f, 0, 2);
        assert_eq!(d.regs, vec!["r9".to_string()]);
        assert!(d.words.is_empty());
    }

    #[test]
    fn save_area_word_classified_as_stack() {
        let m = machine();
        let mut f = m.snapshot();
        let addr = lay::vcpu_addr(0) + 3 * 8; // saved RBX slot
        f.mem.poke(addr, 0x42).unwrap();
        let d = diff_machines(&m, &f, 0, 2);
        assert_eq!(d.sites, vec![DiffSite::StackOrSaveArea]);
        assert_eq!(d.words.len(), 1);
    }

    #[test]
    fn shared_time_word_classified_as_time() {
        let m = machine();
        let mut f = m.snapshot();
        let addr = lay::shared_addr(1) + lay::shared::SYSTEM_TIME * 8;
        f.mem.poke(addr, 999).unwrap();
        let d = diff_machines(&m, &f, 0, 2);
        assert_eq!(d.sites, vec![DiffSite::TimeValue]);
        assert!(d.only_sites(&[DiffSite::TimeValue]));
    }

    #[test]
    fn guest_checksum_word_classified_as_result() {
        let m = machine();
        let mut f = m.snapshot();
        f.mem.poke(guest_addrs(1).result, 7).unwrap();
        let d = diff_machines(&m, &f, 0, 2);
        assert_eq!(d.sites, vec![DiffSite::GuestResult]);
    }

    #[test]
    fn vcpu_timer_deadline_is_time_value() {
        let m = machine();
        let mut f = m.snapshot();
        let addr = lay::vcpu_addr(4) + lay::vcpu::TIMER_DEADLINE * 8;
        f.mem.poke(addr, 123).unwrap();
        let d = diff_machines(&m, &f, 0, 2);
        assert_eq!(d.sites, vec![DiffSite::TimeValue]);
    }

    #[test]
    fn host_stack_is_stack_site() {
        let m = machine();
        let mut f = m.snapshot();
        f.mem.poke(lay::HV_STACK_BASE + 0x100, 5).unwrap();
        let d = diff_machines(&m, &f, 0, 2);
        assert_eq!(d.sites, vec![DiffSite::StackOrSaveArea]);
    }

    #[test]
    fn cycle_counters_do_not_count_as_divergence() {
        let m = machine();
        let mut f = m.snapshot();
        f.cpu_mut(0).cycles += 1000;
        f.cpu_mut(0).insns_retired += 10;
        let d = diff_machines(&m, &f, 0, 2);
        assert!(d.is_empty(), "measurement state must be excluded: {d:?}");
    }
}
