//! Recovery feasibility study — completing the paper's §VI sketch.
//!
//! The paper measures the *cost* of recovery (copy 1,900 ns, re-execute)
//! but leaves the mechanism as future work. This module closes the loop:
//! when a fault is detected before VM entry, restore the critical-state
//! copy taken at the VM exit, re-initiate the hypervisor execution (the
//! fault was transient, so the re-execution is clean), and verify the
//! system actually converges to a correct state.

use crate::injection::{prepare_point, InjectionPoint, InjectionSpec};
use crate::outcome::Consequence;
use guest_sim::guest_addrs;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use sim_machine::cpu::FlipTarget;
use xen_like::ActivationOutcome;
use xentry::{CriticalState, VmTransitionDetector, Xentry, XentryConfig};

/// What happened when we recovered from a detected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryResult {
    /// Re-execution completed and the system state converged: the guest
    /// makes progress with the correct results.
    Survived,
    /// Re-execution completed but left observable divergence (corruption
    /// outside the critical copy survived the restore).
    Residual(Consequence),
    /// The re-executed handler failed again (corruption outside the
    /// critical copy broke the hypervisor itself).
    FailedAgain,
}

/// Attempt detection + recovery for one injection. `None` when the fault
/// was not detected within the activation (recovery never triggers).
pub fn attempt_recovery(
    point: &InjectionPoint,
    spec: InjectionSpec,
    detector: Option<&VmTransitionDetector>,
) -> Option<RecoveryResult> {
    let cpu = point.cpu;
    let nr_doms = point.at_exit.topo.domains.len();
    let mut f = point.at_exit.clone();
    // The shim's recovery support: critical copy at the VM exit.
    let snapshot = CriticalState::capture(&f.machine, cpu);

    // Detection mode: a positive verdict stops the activation.
    let mut shim = Xentry::new(XentryConfig::detection(), detector.cloned());
    let (target, bit) = (spec.target, spec.bit);
    let act = f.run_handler_hooked(
        cpu,
        point.reason,
        0,
        &mut shim,
        Some(spec.at_step),
        move |m, c| m.cpu_mut(c).flip_bit(target, bit),
    );
    match act.outcome {
        ActivationOutcome::Resumed | ActivationOutcome::WentIdle => return None, // undetected
        ActivationOutcome::Hung => return None, // no detection signal to act on
        ActivationOutcome::HostException(_)
        | ActivationOutcome::AssertFailed(_)
        | ActivationOutcome::Flagged => {}
    }

    // Positive detection: restore the critical copy and re-initiate.
    snapshot.restore(&mut f.machine);
    let mut clean = Xentry::new(XentryConfig::overhead(), None);
    let act2 = f.run_handler(cpu, point.reason, 0, &mut clean);
    if !act2.outcome.is_healthy() {
        return Some(RecoveryResult::FailedAgain);
    }

    // Converged? Drive the guest to the golden burst target and compare the
    // observables (the re-execution draws fresh workload randomness, so a
    // word-for-word state diff would be over-strict).
    let ga = guest_addrs(point.dom);
    let budget = (point.post_window * 4).max(8);
    for _ in 0..budget {
        let bursts = f.machine.mem.peek(ga.iter_count).unwrap_or(0);
        if bursts >= point.golden_post_bursts {
            break;
        }
        let a = f.run_activation(cpu, &mut clean);
        if !a.outcome.is_healthy() {
            return Some(RecoveryResult::FailedAgain);
        }
    }
    let bursts = f.machine.mem.peek(ga.iter_count).unwrap_or(0);
    if bursts < point.golden_post_bursts {
        return Some(RecoveryResult::Residual(Consequence::OneVmFailure));
    }
    if f.machine.mem.peek(ga.trap_count).unwrap_or(0) > point.golden_post_traps {
        return Some(RecoveryResult::Residual(Consequence::AppCrash));
    }
    if f.machine.mem.peek(ga.result).unwrap_or(0) != point.golden_post_result {
        return Some(RecoveryResult::Residual(Consequence::AppSdc));
    }
    // Structural invariant words are constant during normal operation, so
    // the golden entry state serves as the reference (the point no longer
    // carries a full post-window platform).
    if crate::golden::structural_corruption(&point.golden_entry.machine, &f.machine, nr_doms) {
        return Some(RecoveryResult::Residual(Consequence::AllVmFailure));
    }
    Some(RecoveryResult::Survived)
}

/// Aggregated recovery study.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Injections performed.
    pub injections: usize,
    /// Faults detected within the activation (recovery attempts).
    pub attempted: usize,
    pub survived: usize,
    pub residual: usize,
    pub failed_again: usize,
}

impl RecoveryReport {
    /// Fraction of recovery attempts that fully converged.
    pub fn survival_rate(&self) -> f64 {
        if self.attempted == 0 {
            return 0.0;
        }
        self.survived as f64 / self.attempted as f64
    }
}

/// Run a recovery study: inject faults along a workload trace and attempt
/// recovery for every detection.
pub fn recovery_study(
    cfg: &crate::campaign::CampaignConfig,
    injections: usize,
    detector: Option<&VmTransitionDetector>,
    seed: u64,
) -> RecoveryReport {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut plat = crate::campaign::campaign_platform(cfg, seed);
    let cpu = 1;
    let mut collector = Xentry::collector();
    plat.boot(cpu, &mut collector);
    for _ in 0..cfg.warmup {
        assert!(plat
            .run_activation(cpu, &mut collector)
            .outcome
            .is_healthy());
    }

    let mut report = RecoveryReport::default();
    let targets = FlipTarget::all();
    while report.injections < injections {
        for _ in 0..cfg.stride {
            assert!(plat
                .run_activation(cpu, &mut collector)
                .outcome
                .is_healthy());
        }
        let (reason, _) = plat.run_to_exit(cpu);
        let Some(point) = prepare_point(plat.clone(), cpu, 1, reason, cfg.post_window, detector)
        else {
            plat.run_handler(cpu, reason, 0, &mut collector);
            continue;
        };
        for _ in 0..cfg.per_point {
            if report.injections >= injections {
                break;
            }
            report.injections += 1;
            let spec = InjectionSpec {
                target: targets[rng.gen_range(0..targets.len())],
                bit: rng.gen_range(0..64),
                at_step: rng.gen_range(0..point.golden_len.max(1)),
            };
            match attempt_recovery(&point, spec, detector) {
                None => {}
                Some(RecoveryResult::Survived) => {
                    report.attempted += 1;
                    report.survived += 1;
                }
                Some(RecoveryResult::Residual(_)) => {
                    report.attempted += 1;
                    report.residual += 1;
                }
                Some(RecoveryResult::FailedAgain) => {
                    report.attempted += 1;
                    report.failed_again += 1;
                }
            }
        }
        plat.run_handler(cpu, reason, 0, &mut collector);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use guest_sim::Benchmark;

    #[test]
    fn detected_faults_mostly_recover() {
        let mut cfg = CampaignConfig::paper(Benchmark::Freqmine, 150, 3);
        cfg.warmup = 30;
        let report = recovery_study(&cfg, 150, None, 9);
        assert_eq!(report.injections, 150);
        assert!(report.attempted > 20, "too few detections: {report:?}");
        assert!(
            report.survival_rate() > 0.85,
            "critical-state recovery should survive most transient faults: {report:?}"
        );
    }

    #[test]
    fn recovery_of_specific_detected_fault_survives() {
        let cfg = CampaignConfig::paper(Benchmark::Freqmine, 1, 5);
        let mut plat = crate::campaign::campaign_platform(&cfg, 5);
        let mut shim = Xentry::collector();
        plat.boot(1, &mut shim);
        for _ in 0..40 {
            plat.run_activation(1, &mut shim);
        }
        let (reason, _) = plat.run_to_exit(1);
        let point = prepare_point(plat, 1, 1, reason, 6, None).unwrap();
        // A guaranteed-detected fault: high RIP bit.
        let spec = InjectionSpec {
            target: FlipTarget::Rip,
            bit: 42,
            at_step: point.golden_len / 2,
        };
        let result = attempt_recovery(&point, spec, None);
        assert_eq!(result, Some(RecoveryResult::Survived));
    }
}
