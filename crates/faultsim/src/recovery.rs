//! Recovery tier primitives — completing the paper's §VI sketch and
//! extending it with a ReHype-style hypervisor microreboot.
//!
//! The paper measures the *cost* of recovery (copy 1,900 ns, re-execute)
//! but leaves the mechanism as future work. This module provides the
//! mechanisms the [`crate::policy`] health-monitor ladder drives:
//!
//! * [`detect_fault`] — run the faulted handler in detection mode and
//!   capture the platform at the moment of detection;
//! * [`attempt_recovery`] — the `ReExecute` tier: restore the
//!   critical-state copy taken at the VM exit and re-initiate the
//!   hypervisor execution;
//! * [`microreboot_recovery`] — the `Microreboot` tier: restore the
//!   critical copy, then reboot the hypervisor in place from the boot
//!   image ([`xen_like::Platform::microreboot`]), losing the in-flight
//!   exit but healing corruption *outside* the critical copy;
//! * [`recover_with_policy`] — detection plus the full escalation
//!   ladder for one injection, under a given [`HmTable`].

use crate::injection::{InjectionPoint, InjectionSpec};
use crate::outcome::Consequence;
use crate::policy::{
    run_ladder, EscalationStep, HmTable, RecoveryAction, RecoveryOutcome, TierResult,
};
use guest_sim::guest_addrs;
use serde::{Deserialize, Serialize};
use sim_machine::{CpuId, Machine};
use xen_like::{ActivationOutcome, MicrorebootReport, Platform, MICROREBOOT_PRIVATE_REGIONS};
use xentry::{CriticalState, Technique, VmTransitionDetector, Xentry, XentryConfig};

/// The recovery campaign's fault model. The paper's §V-B architectural
/// register flips are joined by bit flips in hypervisor-private memory
/// words: the critical-state copy restores registers and per-VCPU state
/// on re-execution, but corruption that already sits in
/// hypervisor-private memory survives the copy — that latent class is
/// exactly what motivates the microreboot tier, which reinitializes
/// those regions from the boot image.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RecoverySpec {
    /// Single architectural register bit flip (the paper's model).
    Reg(InjectionSpec),
    /// Bit flip in hypervisor-private memory: word `word` (modulo the
    /// region length) of `MICROREBOOT_PRIVATE_REGIONS[region]`, applied
    /// after `at_step` retired host instructions.
    HvMem {
        region: u8,
        word: u16,
        bit: u8,
        at_step: u64,
    },
}

impl RecoverySpec {
    /// Host-instruction offset at which the flip lands.
    pub fn at_step(&self) -> u64 {
        match *self {
            RecoverySpec::Reg(s) => s.at_step,
            RecoverySpec::HvMem { at_step, .. } => at_step,
        }
    }

    /// Fault-model class label for reports.
    pub fn class(&self) -> &'static str {
        match self {
            RecoverySpec::Reg(_) => "reg",
            RecoverySpec::HvMem { .. } => "hv-mem",
        }
    }

    /// Apply the flip to the running machine (the injection hook body).
    pub fn apply(&self, m: &mut Machine, cpu: CpuId) {
        match *self {
            RecoverySpec::Reg(s) => m.cpu_mut(cpu).flip_bit(s.target, s.bit),
            RecoverySpec::HvMem {
                region, word, bit, ..
            } => {
                let name = MICROREBOOT_PRIVATE_REGIONS
                    [region as usize % MICROREBOOT_PRIVATE_REGIONS.len()];
                let r = m.mem.region_by_name(name).expect("private region mapped");
                let idx = word as usize % r.words.len();
                let (addr, cur) = (r.base + idx as u64 * 8, r.words[idx]);
                // poke is privileged: region write permissions are the
                // guest/host boundary, not a shield against particle hits.
                m.mem
                    .poke(addr, cur ^ (1u64 << (bit & 63)))
                    .expect("private word writable");
            }
        }
    }
}

/// A fault that was detected before VM entry: the faulted platform at
/// the moment of detection plus the critical-state copy taken at the VM
/// exit (before the fault), i.e. everything a recovery tier needs.
#[derive(Debug, Clone)]
pub struct DetectedFault {
    /// Platform state at the moment the detection fired (corrupted).
    pub plat: Platform,
    /// Critical-state copy captured at the VM exit, pre-fault.
    pub snapshot: CriticalState,
    /// Which detection technique fired.
    pub technique: Technique,
    /// CPU the fault was injected on.
    pub cpu: usize,
    /// The fault itself (the `Ignore` tier replays it).
    pub spec: RecoverySpec,
}

/// Inject `spec` into the activation at `point` with detection enabled.
/// `None` when the fault is not detected within the activation (it may
/// be benign or a latent SDC — recovery never triggers either way).
pub fn detect_fault(
    point: &InjectionPoint,
    spec: RecoverySpec,
    detector: Option<&VmTransitionDetector>,
) -> Option<DetectedFault> {
    let cpu = point.cpu;
    let mut f = point.at_exit.clone();
    // The shim's recovery support: critical copy at the VM exit.
    let snapshot = CriticalState::capture(&f.machine, cpu);

    // Detection mode: a positive verdict stops the activation.
    let mut shim = Xentry::new(XentryConfig::detection(), detector.cloned());
    let act = f.run_handler_hooked(
        cpu,
        point.reason,
        0,
        &mut shim,
        Some(spec.at_step()),
        move |m, c| spec.apply(m, c),
    );
    let technique = match act.outcome {
        ActivationOutcome::Resumed | ActivationOutcome::WentIdle => return None, // undetected
        ActivationOutcome::Hung => return None, // no detection signal to act on
        ActivationOutcome::HostException(_) => Technique::HwException,
        ActivationOutcome::AssertFailed(_) => Technique::SwAssertion,
        ActivationOutcome::Flagged => Technique::VmTransition,
    };
    Some(DetectedFault {
        plat: f,
        snapshot,
        technique,
        cpu,
        spec,
    })
}

/// The `Ignore` tier: no recovery action. The detection is logged and
/// the system runs its course — realized by replaying the injection in
/// continue-after-positive mode (the activation the detection would have
/// stopped completes, fault and all) and classifying what the platform
/// converges to. This is the detection-without-recovery baseline every
/// recovery policy is measured against.
pub fn ignore_recovery(fault: &DetectedFault, point: &InjectionPoint) -> TierResult {
    let cpu = fault.cpu;
    let spec = fault.spec;
    let mut f = point.at_exit.clone();
    let mut shim = Xentry::new(XentryConfig::overhead(), None);
    let act = f.run_handler_hooked(
        cpu,
        point.reason,
        0,
        &mut shim,
        Some(spec.at_step()),
        move |m, c| spec.apply(m, c),
    );
    if !act.outcome.is_healthy() {
        return TierResult::HypervisorDead;
    }
    let mut clean = Xentry::new(XentryConfig::overhead(), None);
    convergence(&mut f, point, &mut clean, 1)
}

/// Drive the recovered platform forward and check convergence with the
/// golden run. The re-execution draws fresh workload randomness, so a
/// word-for-word state diff would be over-strict; instead compare the
/// guest observables (burst progress, traps, result) and the structural
/// invariants. `budget_scale` widens the catch-up window on retries.
fn convergence(
    f: &mut Platform,
    point: &InjectionPoint,
    shim: &mut Xentry,
    budget_scale: u64,
) -> TierResult {
    let cpu = point.cpu;
    let nr_doms = point.at_exit.topo.domains.len();
    let ga = guest_addrs(point.dom);
    let budget = (point.post_window as u64 * 4).max(8) * budget_scale.max(1);
    for _ in 0..budget {
        let bursts = f.machine.mem.peek(ga.iter_count).unwrap_or(0);
        if bursts >= point.golden_post_bursts {
            break;
        }
        let a = f.run_activation(cpu, shim);
        if !a.outcome.is_healthy() {
            return TierResult::HypervisorDead;
        }
    }
    let bursts = f.machine.mem.peek(ga.iter_count).unwrap_or(0);
    if bursts < point.golden_post_bursts {
        return TierResult::Residual(Consequence::OneVmFailure);
    }
    if f.machine.mem.peek(ga.trap_count).unwrap_or(0) > point.golden_post_traps {
        return TierResult::Residual(Consequence::AppCrash);
    }
    if f.machine.mem.peek(ga.result).unwrap_or(0) != point.golden_post_result {
        return TierResult::Residual(Consequence::AppSdc);
    }
    // Structural invariant words are constant during normal operation, so
    // the golden entry state serves as the reference (the point no longer
    // carries a full post-window platform).
    if crate::golden::structural_corruption(&point.golden_entry.machine, &f.machine, nr_doms) {
        return TierResult::Residual(Consequence::AllVmFailure);
    }
    TierResult::Converged
}

/// The `ReExecute` tier (the paper's §VI sketch): restore the critical
/// copy and re-run the faulted handler from the VM exit. Returns the
/// tier result plus the simulated cycles the attempt cost (handler
/// re-execution; the restore copy itself is the paper's 1,900 ns).
pub fn attempt_recovery(
    fault: &DetectedFault,
    point: &InjectionPoint,
    attempt: u32,
) -> (TierResult, u64) {
    let cpu = fault.cpu;
    let mut f = fault.plat.clone();
    fault.snapshot.restore(&mut f.machine);
    let mut clean = Xentry::new(XentryConfig::overhead(), None);
    let act = f.run_handler(cpu, point.reason, 0, &mut clean);
    let cycles = act.handler_cycles;
    if !act.outcome.is_healthy() {
        return (TierResult::HypervisorDead, cycles);
    }
    (
        convergence(&mut f, point, &mut clean, attempt as u64),
        cycles,
    )
}

/// The `Microreboot` tier, ReHype's sequence: reinitialize
/// hypervisor-private state from the boot image
/// ([`xen_like::Platform::microreboot_restore`]), then restore the
/// critical copy — which re-positions the CPU at the pending VM exit —
/// and re-service that exit on the healed hypervisor. The guest never
/// observes a dropped exit; what the reboot costs is the discarded
/// private state (the report's accounting) plus the reboot scan and the
/// handler re-execution cycles.
pub fn microreboot_recovery(
    fault: &DetectedFault,
    point: &InjectionPoint,
    attempt: u32,
) -> (TierResult, MicrorebootReport) {
    let cpu = fault.cpu;
    let mut f = fault.plat.clone();
    // Order matters: the reboot wipes hv.pcpu to its boot image; the
    // critical copy then rebuilds the pending exit's context on top.
    let mut report = f.microreboot_restore(cpu);
    fault.snapshot.restore(&mut f.machine);
    let mut clean = Xentry::new(XentryConfig::overhead(), None);
    let act = f.run_handler(cpu, point.reason, 0, &mut clean);
    report.cycles += act.handler_cycles;
    if !act.outcome.is_healthy() {
        return (TierResult::HypervisorDead, report);
    }
    (
        convergence(&mut f, point, &mut clean, attempt as u64),
        report,
    )
}

/// Full recovery record for one detected injection under one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRecovery {
    /// Detection technique that triggered the ladder.
    pub technique: Technique,
    /// Final verdict of the escalation ladder.
    pub outcome: RecoveryOutcome,
    /// Audit trail: every tier attempt the ladder took.
    pub steps: Vec<EscalationStep>,
    /// Simulated cycles spent in `ReExecute` attempts.
    pub reexec_cycles: u64,
    /// Simulated cycles spent in `Microreboot` attempts.
    pub microreboot_cycles: u64,
    /// Hypervisor-private words discarded by the last microreboot (0 if
    /// the reboot tier never ran).
    pub words_lost: usize,
}

/// Inject one fault and, if detected, drive it through `table`'s
/// escalation ladder. `None` when the fault was not detected (recovery
/// never triggers).
pub fn recover_with_policy(
    point: &InjectionPoint,
    spec: RecoverySpec,
    detector: Option<&VmTransitionDetector>,
    table: &HmTable,
) -> Option<PolicyRecovery> {
    let fault = detect_fault(point, spec, detector)?;
    Some(recover_detected(&fault, point, table))
}

/// Drive an already-detected fault through `table`'s escalation ladder.
/// Detection is policy-independent, so campaigns comparing several
/// tables detect once and call this per table.
pub fn recover_detected(
    fault: &DetectedFault,
    point: &InjectionPoint,
    table: &HmTable,
) -> PolicyRecovery {
    let mut reexec_cycles = 0u64;
    let mut microreboot_cycles = 0u64;
    let mut words_lost = 0usize;
    let (outcome, steps) = run_ladder(
        table,
        fault.technique,
        None,
        |action, attempt| match action {
            RecoveryAction::ReExecute => {
                let (r, cycles) = attempt_recovery(fault, point, attempt);
                reexec_cycles += cycles;
                r
            }
            RecoveryAction::Microreboot => {
                let (r, report) = microreboot_recovery(fault, point, attempt);
                microreboot_cycles += report.cycles;
                words_lost = report.words_lost;
                r
            }
            RecoveryAction::Ignore => ignore_recovery(fault, point),
            RecoveryAction::Halt => unreachable!("halt never calls try_tier"),
        },
    );
    PolicyRecovery {
        technique: fault.technique,
        outcome,
        steps,
        reexec_cycles,
        microreboot_cycles,
        words_lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use crate::injection::prepare_point;
    use guest_sim::Benchmark;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sim_machine::cpu::FlipTarget;

    fn prepared_point(seed: u64, warm: usize) -> InjectionPoint {
        let cfg = CampaignConfig::paper(Benchmark::Freqmine, 1, seed);
        let mut plat = crate::campaign::campaign_platform(&cfg, seed);
        let mut shim = Xentry::collector();
        plat.boot(1, &mut shim);
        for _ in 0..warm {
            plat.run_activation(1, &mut shim);
        }
        let (reason, _) = plat.run_to_exit(1);
        prepare_point(plat, 1, 1, reason, 6, None).unwrap()
    }

    #[test]
    fn detected_faults_mostly_recover_via_reexecute() {
        let point = prepared_point(5, 40);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let targets = FlipTarget::all();
        let table = HmTable::reexecute_only();
        let (mut attempted, mut recovered) = (0usize, 0usize);
        for _ in 0..150 {
            let spec = RecoverySpec::Reg(InjectionSpec {
                target: targets[rng.gen_range(0..targets.len())],
                bit: rng.gen_range(0..64),
                at_step: rng.gen_range(0..point.golden_len.max(1)),
            });
            if let Some(rec) = recover_with_policy(&point, spec, None, &table) {
                attempted += 1;
                if matches!(rec.outcome, RecoveryOutcome::Recovered { .. }) {
                    recovered += 1;
                }
                assert!(rec.steps.len() <= table.max_attempts() as usize);
            }
        }
        assert!(attempted > 20, "too few detections: {attempted}");
        assert!(
            recovered as f64 / attempted as f64 > 0.85,
            "critical-state recovery should survive most transient faults: \
             {recovered}/{attempted}"
        );
    }

    #[test]
    fn recovery_of_specific_detected_fault_converges() {
        let point = prepared_point(5, 40);
        // A guaranteed-detected fault: high RIP bit.
        let spec = RecoverySpec::Reg(InjectionSpec {
            target: FlipTarget::Rip,
            bit: 42,
            at_step: point.golden_len / 2,
        });
        let fault = detect_fault(&point, spec, None).expect("high RIP bit is always detected");
        assert_eq!(fault.technique, Technique::HwException);
        let (tier, _cycles) = attempt_recovery(&fault, &point, 1);
        assert_eq!(tier, TierResult::Converged);
        // The same fault through the tiered ladder closes at ReExecute.
        let rec = recover_with_policy(&point, spec, None, &HmTable::tiered()).unwrap();
        assert_eq!(
            rec.outcome,
            RecoveryOutcome::Recovered {
                tier: RecoveryAction::ReExecute
            }
        );
        assert_eq!(rec.microreboot_cycles, 0);
    }

    #[test]
    fn microreboot_tier_recovers_a_detected_fault() {
        let point = prepared_point(5, 40);
        let spec = RecoverySpec::Reg(InjectionSpec {
            target: FlipTarget::Rip,
            bit: 42,
            at_step: point.golden_len / 2,
        });
        let fault = detect_fault(&point, spec, None).unwrap();
        let (tier, report) = microreboot_recovery(&fault, &point, 1);
        assert_eq!(tier, TierResult::Converged, "report: {report:?}");
        assert!(report.cycles >= xen_like::MICROREBOOT_BASE_CYCLES);
        assert_eq!(report.cpu, 1);
    }

    #[test]
    fn hv_mem_fault_defeats_reexecute_but_not_microreboot() {
        let point = prepared_point(5, 40);
        // Flip a high bit of this exit's dispatch-table entry: the stub's
        // indirect jump goes wild — detected as a hardware exception. The
        // corrupted entry is hypervisor-private memory, outside the
        // critical-state copy, so every re-execution crashes the same way;
        // only the microreboot's boot-image restore heals it.
        let spec = RecoverySpec::HvMem {
            region: 2, // hv.dispatch
            word: point.reason.vmer(),
            bit: 20,
            at_step: 0,
        };
        let fault = detect_fault(&point, spec, None).expect("wild dispatch entry detected");
        assert_eq!(fault.technique, Technique::HwException);
        let (tier, _cycles) = attempt_recovery(&fault, &point, 1);
        assert_ne!(
            tier,
            TierResult::Converged,
            "the critical copy must not heal private memory"
        );
        let rec = recover_detected(&fault, &point, &HmTable::reexecute_only());
        assert_eq!(rec.outcome, RecoveryOutcome::FailedRecovery);
        assert_eq!(rec.microreboot_cycles, 0, "reexec-only never reboots");
        let rec = recover_detected(&fault, &point, &HmTable::tiered());
        assert_eq!(
            rec.outcome,
            RecoveryOutcome::Recovered {
                tier: RecoveryAction::Microreboot
            }
        );
        assert!(rec.words_lost > 0);
    }
}
