//! Recovery tier primitives — completing the paper's §VI sketch and
//! extending it with a ReHype-style hypervisor microreboot.
//!
//! The paper measures the *cost* of recovery (copy 1,900 ns, re-execute)
//! but leaves the mechanism as future work. This module provides the
//! mechanisms the [`crate::policy`] health-monitor ladder drives:
//!
//! * [`detect_fault`] — run the faulted handler in detection mode and
//!   capture the platform at the moment of detection;
//! * [`attempt_recovery`] — the `ReExecute` tier: restore the
//!   critical-state copy taken at the VM exit and re-initiate the
//!   hypervisor execution;
//! * [`microreboot_recovery`] — the `Microreboot` tier: restore the
//!   critical copy, then reboot the hypervisor in place from the boot
//!   image ([`xen_like::Platform::microreboot`]), losing the in-flight
//!   exit but healing corruption *outside* the critical copy;
//! * [`recover_with_policy`] — detection plus the full escalation
//!   ladder for one injection, under a given [`HmTable`].

use crate::injection::{InjectionPoint, InjectionSpec};
use crate::outcome::Consequence;
use crate::policy::{
    run_ladder, EscalationStep, HmTable, RecoveryAction, RecoveryOutcome, TierResult,
};
use guest_sim::guest_addrs;
use serde::{Deserialize, Serialize};
use sim_machine::cpu::FlipTarget;
use sim_machine::{CpuId, Machine, PerfCounters, PTE_PRESENT, PTE_RW};
use xen_like::layout as lay;
use xen_like::{ActivationOutcome, MicrorebootReport, Platform, MICROREBOOT_PRIVATE_REGIONS};
use xentry::{CriticalState, Technique, VmTransitionDetector, Xentry, XentryConfig};

/// The recovery campaign's fault model. The paper's §V-B architectural
/// register flips are joined by bit flips in hypervisor-private memory
/// words: the critical-state copy restores registers and per-VCPU state
/// on re-execution, but corruption that already sits in
/// hypervisor-private memory survives the copy — that latent class is
/// exactly what motivates the microreboot tier, which reinitializes
/// those regions from the boot image.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RecoverySpec {
    /// Single architectural register bit flip (the paper's model).
    Reg(InjectionSpec),
    /// Bit flip in hypervisor-private memory: word `word` (modulo the
    /// region length) of `MICROREBOOT_PRIVATE_REGIONS[region]`, applied
    /// after `at_step` retired host instructions.
    HvMem {
        region: u8,
        word: u16,
        bit: u8,
        at_step: u64,
    },
    /// Spatial multi-bit burst: several flips at a fixed stride from one
    /// strike point — the beyond-ECC upset pattern of adjacent cells.
    Burst(BurstSpec),
    /// Page-table-entry corruption: present/RW/frame-bit flips in a
    /// domain's `hv.ptbl` entries, surfacing as faults on the next walk.
    Pte(PteSpec),
    /// Performance-counter corruption: a strike in the PMU state the
    /// VM-transition detector itself consumes.
    Pmc(PmcSpec),
}

/// Where a spatial burst lands.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BurstSite {
    /// Flips within one architectural register (bit indexes wrap mod 64:
    /// a register has no adjacent word to spill into).
    Reg(FlipTarget),
    /// Flips anchored at a hypervisor-private memory word. Bit indexes
    /// past 63 spill into the *adjacent word* (wrapping within the
    /// region) — the physically contiguous layout of DRAM rows, and the
    /// case a single-word read-modify-write would silently alias.
    HvMem { region: u8, word: u16 },
}

/// A contiguous or stride-patterned multi-bit burst.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstSpec {
    pub site: BurstSite,
    /// First flipped bit position.
    pub start_bit: u8,
    /// Number of flips (campaign envelope: 2..=4).
    pub width: u8,
    /// Bit-position distance between consecutive flips (envelope: 1..=3).
    pub stride: u8,
    pub at_step: u64,
}

impl BurstSpec {
    /// Absolute bit offsets of every flip, relative to the strike point.
    pub fn bit_offsets(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.width.max(1) as u64).map(|i| self.start_bit as u64 + i * self.stride as u64)
    }
}

/// Which PTE field a page-table strike corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PteField {
    /// Flip the present bit: the next walk of the page faults.
    Present,
    /// Flip the RW bit: writes to the page fault, reads survive.
    Rw,
    /// Flip a frame-address bit: accesses silently redirect (or fault on
    /// an unmapped frame) — the silent-corruption corner of the model.
    Addr,
}

/// One page-table-entry strike.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PteSpec {
    /// Victim domain (modulo the layout's domain count).
    pub dom: u8,
    /// Victim page within the domain's table (modulo pages per domain).
    pub page: u16,
    pub field: PteField,
    /// Frame-bit offset for [`PteField::Addr`] strikes (ignored for the
    /// permission fields, which are single fixed bits).
    pub bit: u8,
    pub at_step: u64,
}

impl PteSpec {
    /// The PTE word's simulated-physical address.
    pub fn pte_addr(&self) -> u64 {
        let dom = self.dom as usize % lay::MAX_DOMS;
        lay::ptbl_addr(dom) + (self.page as u64 % lay::ptbl::PAGES_PER_DOM) * 8
    }

    /// The XOR mask the strike applies to the PTE word.
    pub fn mask(&self) -> u64 {
        match self.field {
            PteField::Present => PTE_PRESENT,
            PteField::Rw => PTE_RW,
            // Frame bits 12..40: low enough to stay inside the frame mask,
            // high enough to move the translation by at least a page.
            PteField::Addr => 1u64 << (12 + self.bit % 28),
        }
    }
}

/// One performance-counter strike.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PmcSpec {
    /// Which of the four Table-I counters (modulo 4).
    pub counter: u8,
    pub bit: u8,
    pub at_step: u64,
}

impl RecoverySpec {
    /// Host-instruction offset at which the flip lands.
    pub fn at_step(&self) -> u64 {
        match *self {
            RecoverySpec::Reg(s) => s.at_step,
            RecoverySpec::HvMem { at_step, .. } => at_step,
            RecoverySpec::Burst(b) => b.at_step,
            RecoverySpec::Pte(p) => p.at_step,
            RecoverySpec::Pmc(p) => p.at_step,
        }
    }

    /// Fault-model class label for reports.
    pub fn class(&self) -> &'static str {
        match self {
            RecoverySpec::Reg(_) => "reg",
            RecoverySpec::HvMem { .. } => "hv-mem",
            RecoverySpec::Burst(_) => "burst",
            RecoverySpec::Pte(_) => "pte",
            RecoverySpec::Pmc(_) => "pmc",
        }
    }

    /// Target label for the vulnerability map: the register, region, PTE
    /// field or counter the strike lands in.
    pub fn target_label(&self) -> String {
        let region_name =
            |r: u8| MICROREBOOT_PRIVATE_REGIONS[r as usize % MICROREBOOT_PRIVATE_REGIONS.len()];
        match self {
            RecoverySpec::Reg(s) => s.target.name(),
            RecoverySpec::HvMem { region, .. } => region_name(*region).to_string(),
            RecoverySpec::Burst(b) => match b.site {
                BurstSite::Reg(t) => t.name(),
                BurstSite::HvMem { region, .. } => region_name(region).to_string(),
            },
            RecoverySpec::Pte(p) => match p.field {
                PteField::Present => "pte.present".to_string(),
                PteField::Rw => "pte.rw".to_string(),
                PteField::Addr => "pte.addr".to_string(),
            },
            RecoverySpec::Pmc(p) => PerfCounters::counter_name(p.counter).to_string(),
        }
    }

    /// Primary bit position for the vulnerability map: the struck bit, or
    /// for compound strikes the first one.
    pub fn bit(&self) -> u8 {
        match *self {
            RecoverySpec::Reg(s) => s.bit & 63,
            RecoverySpec::HvMem { bit, .. } => bit & 63,
            RecoverySpec::Burst(b) => b.start_bit & 63,
            RecoverySpec::Pte(p) => p.mask().trailing_zeros() as u8,
            RecoverySpec::Pmc(p) => p.bit & 63,
        }
    }

    /// Apply the flip to the running machine (the injection hook body).
    pub fn apply(&self, m: &mut Machine, cpu: CpuId) {
        // poke is privileged: region write permissions are the guest/host
        // boundary, not a shield against particle hits.
        let poke_xor = |m: &mut Machine, addr: u64, mask: u64| {
            let cur = m.mem.peek(addr).expect("struck word mapped");
            m.mem.poke(addr, cur ^ mask).expect("struck word mapped");
        };
        match *self {
            RecoverySpec::Reg(s) => m.cpu_mut(cpu).flip_bit(s.target, s.bit),
            RecoverySpec::HvMem {
                region, word, bit, ..
            } => {
                let name = MICROREBOOT_PRIVATE_REGIONS
                    [region as usize % MICROREBOOT_PRIVATE_REGIONS.len()];
                let r = m.mem.region_by_name(name).expect("private region mapped");
                let idx = word as usize % r.words.len();
                let addr = r.base + idx as u64 * 8;
                poke_xor(m, addr, 1u64 << (bit & 63));
            }
            RecoverySpec::Burst(b) => match b.site {
                BurstSite::Reg(target) => {
                    for off in b.bit_offsets() {
                        m.cpu_mut(cpu).flip_bit(target, (off % 64) as u8);
                    }
                }
                BurstSite::HvMem { region, word } => {
                    let name = MICROREBOOT_PRIVATE_REGIONS
                        [region as usize % MICROREBOOT_PRIVATE_REGIONS.len()];
                    let r = m.mem.region_by_name(name).expect("private region mapped");
                    let (base, len) = (r.base, r.words.len());
                    let idx = word as usize % len;
                    for off in b.bit_offsets() {
                        // Word-spill: a bit index past 63 lands in the
                        // adjacent word, wrapping within the region — one
                        // read-modify-write per struck word, never aliased
                        // into the anchor word.
                        let widx = (idx + (off / 64) as usize) % len;
                        poke_xor(m, base + widx as u64 * 8, 1u64 << (off % 64));
                    }
                }
            },
            RecoverySpec::Pte(p) => poke_xor(m, p.pte_addr(), p.mask()),
            RecoverySpec::Pmc(p) => m.cpu_mut(cpu).perf.corrupt(p.counter, p.bit),
        }
    }
}

/// A fault that was detected before VM entry: the faulted platform at
/// the moment of detection plus the critical-state copy taken at the VM
/// exit (before the fault), i.e. everything a recovery tier needs.
#[derive(Debug, Clone)]
pub struct DetectedFault {
    /// Platform state at the moment the detection fired (corrupted).
    pub plat: Platform,
    /// Critical-state copy captured at the VM exit, pre-fault.
    pub snapshot: CriticalState,
    /// Which detection technique fired.
    pub technique: Technique,
    /// CPU the fault was injected on.
    pub cpu: usize,
    /// The fault itself (the `Ignore` tier replays it).
    pub spec: RecoverySpec,
}

/// Inject `spec` into the activation at `point` with detection enabled.
/// `None` when the fault is not detected within the activation (it may
/// be benign or a latent SDC — recovery never triggers either way).
pub fn detect_fault(
    point: &InjectionPoint,
    spec: RecoverySpec,
    detector: Option<&VmTransitionDetector>,
) -> Option<DetectedFault> {
    let cpu = point.cpu;
    let mut f = point.at_exit.clone();
    // The shim's recovery support: critical copy at the VM exit.
    let snapshot = CriticalState::capture(&f.machine, cpu);

    // Detection mode: a positive verdict stops the activation.
    let mut shim = Xentry::new(XentryConfig::detection(), detector.cloned());
    let act = f.run_handler_hooked(
        cpu,
        point.reason,
        0,
        &mut shim,
        Some(spec.at_step()),
        move |m, c| spec.apply(m, c),
    );
    let technique = match act.outcome {
        ActivationOutcome::Resumed | ActivationOutcome::WentIdle => return None, // undetected
        ActivationOutcome::Hung => return None, // no detection signal to act on
        ActivationOutcome::HostException(_) => Technique::HwException,
        ActivationOutcome::AssertFailed(_) => Technique::SwAssertion,
        ActivationOutcome::Flagged => Technique::VmTransition,
    };
    Some(DetectedFault {
        plat: f,
        snapshot,
        technique,
        cpu,
        spec,
    })
}

/// The `Ignore` tier: no recovery action. The detection is logged and
/// the system runs its course — realized by replaying the injection in
/// continue-after-positive mode (the activation the detection would have
/// stopped completes, fault and all) and classifying what the platform
/// converges to. This is the detection-without-recovery baseline every
/// recovery policy is measured against.
pub fn ignore_recovery(fault: &DetectedFault, point: &InjectionPoint) -> TierResult {
    let cpu = fault.cpu;
    let spec = fault.spec;
    let mut f = point.at_exit.clone();
    let mut shim = Xentry::new(XentryConfig::overhead(), None);
    let act = f.run_handler_hooked(
        cpu,
        point.reason,
        0,
        &mut shim,
        Some(spec.at_step()),
        move |m, c| spec.apply(m, c),
    );
    if !act.outcome.is_healthy() {
        return TierResult::HypervisorDead;
    }
    let mut clean = Xentry::new(XentryConfig::overhead(), None);
    convergence(&mut f, point, &mut clean, 1)
}

/// Drive the recovered platform forward and check convergence with the
/// golden run. The re-execution draws fresh workload randomness, so a
/// word-for-word state diff would be over-strict; instead compare the
/// guest observables (burst progress, traps, result) and the structural
/// invariants. `budget_scale` widens the catch-up window on retries.
fn convergence(
    f: &mut Platform,
    point: &InjectionPoint,
    shim: &mut Xentry,
    budget_scale: u64,
) -> TierResult {
    let cpu = point.cpu;
    let nr_doms = point.at_exit.topo.domains.len();
    let ga = guest_addrs(point.dom);
    let budget = (point.post_window as u64 * 4).max(8) * budget_scale.max(1);
    for _ in 0..budget {
        let bursts = f.machine.mem.peek(ga.iter_count).unwrap_or(0);
        if bursts >= point.golden_post_bursts {
            break;
        }
        let a = f.run_activation(cpu, shim);
        if !a.outcome.is_healthy() {
            return TierResult::HypervisorDead;
        }
    }
    let bursts = f.machine.mem.peek(ga.iter_count).unwrap_or(0);
    if bursts < point.golden_post_bursts {
        return TierResult::Residual(Consequence::OneVmFailure);
    }
    if f.machine.mem.peek(ga.trap_count).unwrap_or(0) > point.golden_post_traps {
        return TierResult::Residual(Consequence::AppCrash);
    }
    if f.machine.mem.peek(ga.result).unwrap_or(0) != point.golden_post_result {
        return TierResult::Residual(Consequence::AppSdc);
    }
    // Structural invariant words are constant during normal operation, so
    // the golden entry state serves as the reference (the point no longer
    // carries a full post-window platform).
    if crate::golden::structural_corruption(&point.golden_entry.machine, &f.machine, nr_doms) {
        return TierResult::Residual(Consequence::AllVmFailure);
    }
    TierResult::Converged
}

/// The `ReExecute` tier (the paper's §VI sketch): restore the critical
/// copy and re-run the faulted handler from the VM exit. Returns the
/// tier result plus the simulated cycles the attempt cost (handler
/// re-execution; the restore copy itself is the paper's 1,900 ns).
pub fn attempt_recovery(
    fault: &DetectedFault,
    point: &InjectionPoint,
    attempt: u32,
) -> (TierResult, u64) {
    let cpu = fault.cpu;
    let mut f = fault.plat.clone();
    fault.snapshot.restore(&mut f.machine);
    let mut clean = Xentry::new(XentryConfig::overhead(), None);
    let act = f.run_handler(cpu, point.reason, 0, &mut clean);
    let cycles = act.handler_cycles;
    if !act.outcome.is_healthy() {
        return (TierResult::HypervisorDead, cycles);
    }
    (
        convergence(&mut f, point, &mut clean, attempt as u64),
        cycles,
    )
}

/// The `Microreboot` tier, ReHype's sequence: reinitialize
/// hypervisor-private state from the boot image
/// ([`xen_like::Platform::microreboot_restore`]), then restore the
/// critical copy — which re-positions the CPU at the pending VM exit —
/// and re-service that exit on the healed hypervisor. The guest never
/// observes a dropped exit; what the reboot costs is the discarded
/// private state (the report's accounting) plus the reboot scan and the
/// handler re-execution cycles.
pub fn microreboot_recovery(
    fault: &DetectedFault,
    point: &InjectionPoint,
    attempt: u32,
) -> (TierResult, MicrorebootReport) {
    let cpu = fault.cpu;
    let mut f = fault.plat.clone();
    // Order matters: the reboot wipes hv.pcpu to its boot image; the
    // critical copy then rebuilds the pending exit's context on top.
    let mut report = f.microreboot_restore(cpu);
    fault.snapshot.restore(&mut f.machine);
    let mut clean = Xentry::new(XentryConfig::overhead(), None);
    let act = f.run_handler(cpu, point.reason, 0, &mut clean);
    report.cycles += act.handler_cycles;
    if !act.outcome.is_healthy() {
        return (TierResult::HypervisorDead, report);
    }
    (
        convergence(&mut f, point, &mut clean, attempt as u64),
        report,
    )
}

/// Full recovery record for one detected injection under one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRecovery {
    /// Detection technique that triggered the ladder.
    pub technique: Technique,
    /// Final verdict of the escalation ladder.
    pub outcome: RecoveryOutcome,
    /// Audit trail: every tier attempt the ladder took.
    pub steps: Vec<EscalationStep>,
    /// Simulated cycles spent in `ReExecute` attempts.
    pub reexec_cycles: u64,
    /// Simulated cycles spent in `Microreboot` attempts.
    pub microreboot_cycles: u64,
    /// Hypervisor-private words discarded by the last microreboot (0 if
    /// the reboot tier never ran).
    pub words_lost: usize,
}

/// Inject one fault and, if detected, drive it through `table`'s
/// escalation ladder. `None` when the fault was not detected (recovery
/// never triggers).
pub fn recover_with_policy(
    point: &InjectionPoint,
    spec: RecoverySpec,
    detector: Option<&VmTransitionDetector>,
    table: &HmTable,
) -> Option<PolicyRecovery> {
    let fault = detect_fault(point, spec, detector)?;
    Some(recover_detected(&fault, point, table))
}

/// Drive an already-detected fault through `table`'s escalation ladder.
/// Detection is policy-independent, so campaigns comparing several
/// tables detect once and call this per table.
pub fn recover_detected(
    fault: &DetectedFault,
    point: &InjectionPoint,
    table: &HmTable,
) -> PolicyRecovery {
    let mut reexec_cycles = 0u64;
    let mut microreboot_cycles = 0u64;
    let mut words_lost = 0usize;
    let (outcome, steps) = run_ladder(
        table,
        fault.technique,
        None,
        |action, attempt| match action {
            RecoveryAction::ReExecute => {
                let (r, cycles) = attempt_recovery(fault, point, attempt);
                reexec_cycles += cycles;
                r
            }
            RecoveryAction::Microreboot => {
                let (r, report) = microreboot_recovery(fault, point, attempt);
                microreboot_cycles += report.cycles;
                words_lost = report.words_lost;
                r
            }
            RecoveryAction::Ignore => ignore_recovery(fault, point),
            RecoveryAction::Halt => unreachable!("halt never calls try_tier"),
        },
    );
    PolicyRecovery {
        technique: fault.technique,
        outcome,
        steps,
        reexec_cycles,
        microreboot_cycles,
        words_lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignConfig;
    use crate::injection::prepare_point;
    use guest_sim::Benchmark;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use sim_machine::cpu::FlipTarget;

    fn prepared_point(seed: u64, warm: usize) -> InjectionPoint {
        let cfg = CampaignConfig::paper(Benchmark::Freqmine, 1, seed);
        let mut plat = crate::campaign::campaign_platform(&cfg, seed);
        let mut shim = Xentry::collector();
        plat.boot(1, &mut shim);
        for _ in 0..warm {
            plat.run_activation(1, &mut shim);
        }
        let (reason, _) = plat.run_to_exit(1);
        prepare_point(plat, 1, 1, reason, 6, None).unwrap()
    }

    #[test]
    fn detected_faults_mostly_recover_via_reexecute() {
        let point = prepared_point(5, 40);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let targets = FlipTarget::all();
        let table = HmTable::reexecute_only();
        let (mut attempted, mut recovered) = (0usize, 0usize);
        for _ in 0..150 {
            let spec = RecoverySpec::Reg(InjectionSpec {
                target: targets[rng.gen_range(0..targets.len())],
                bit: rng.gen_range(0..64),
                at_step: rng.gen_range(0..point.golden_len.max(1)),
            });
            if let Some(rec) = recover_with_policy(&point, spec, None, &table) {
                attempted += 1;
                if matches!(rec.outcome, RecoveryOutcome::Recovered { .. }) {
                    recovered += 1;
                }
                assert!(rec.steps.len() <= table.max_attempts() as usize);
            }
        }
        assert!(attempted > 20, "too few detections: {attempted}");
        assert!(
            recovered as f64 / attempted as f64 > 0.85,
            "critical-state recovery should survive most transient faults: \
             {recovered}/{attempted}"
        );
    }

    #[test]
    fn recovery_of_specific_detected_fault_converges() {
        let point = prepared_point(5, 40);
        // A guaranteed-detected fault: high RIP bit.
        let spec = RecoverySpec::Reg(InjectionSpec {
            target: FlipTarget::Rip,
            bit: 42,
            at_step: point.golden_len / 2,
        });
        let fault = detect_fault(&point, spec, None).expect("high RIP bit is always detected");
        assert_eq!(fault.technique, Technique::HwException);
        let (tier, _cycles) = attempt_recovery(&fault, &point, 1);
        assert_eq!(tier, TierResult::Converged);
        // The same fault through the tiered ladder closes at ReExecute.
        let rec = recover_with_policy(&point, spec, None, &HmTable::tiered()).unwrap();
        assert_eq!(
            rec.outcome,
            RecoveryOutcome::Recovered {
                tier: RecoveryAction::ReExecute
            }
        );
        assert_eq!(rec.microreboot_cycles, 0);
    }

    #[test]
    fn microreboot_tier_recovers_a_detected_fault() {
        let point = prepared_point(5, 40);
        let spec = RecoverySpec::Reg(InjectionSpec {
            target: FlipTarget::Rip,
            bit: 42,
            at_step: point.golden_len / 2,
        });
        let fault = detect_fault(&point, spec, None).unwrap();
        let (tier, report) = microreboot_recovery(&fault, &point, 1);
        assert_eq!(tier, TierResult::Converged, "report: {report:?}");
        assert!(report.cycles >= xen_like::MICROREBOOT_BASE_CYCLES);
        assert_eq!(report.cpu, 1);
    }

    #[test]
    fn hv_mem_fault_defeats_reexecute_but_not_microreboot() {
        let point = prepared_point(5, 40);
        // Flip a high bit of this exit's dispatch-table entry: the stub's
        // indirect jump goes wild — detected as a hardware exception. The
        // corrupted entry is hypervisor-private memory, outside the
        // critical-state copy, so every re-execution crashes the same way;
        // only the microreboot's boot-image restore heals it.
        let spec = RecoverySpec::HvMem {
            region: 2, // hv.dispatch
            word: point.reason.vmer(),
            bit: 20,
            at_step: 0,
        };
        let fault = detect_fault(&point, spec, None).expect("wild dispatch entry detected");
        assert_eq!(fault.technique, Technique::HwException);
        let (tier, _cycles) = attempt_recovery(&fault, &point, 1);
        assert_ne!(
            tier,
            TierResult::Converged,
            "the critical copy must not heal private memory"
        );
        let rec = recover_detected(&fault, &point, &HmTable::reexecute_only());
        assert_eq!(rec.outcome, RecoveryOutcome::FailedRecovery);
        assert_eq!(rec.microreboot_cycles, 0, "reexec-only never reboots");
        let rec = recover_detected(&fault, &point, &HmTable::tiered());
        assert_eq!(
            rec.outcome,
            RecoveryOutcome::Recovered {
                tier: RecoveryAction::Microreboot
            }
        );
        assert!(rec.words_lost > 0);
    }

    #[test]
    fn cross_word_burst_spills_and_microreboot_heals_every_word() {
        // Regression: the recovery path once modeled every memory strike
        // as a single read-modify-write of one word, which would alias a
        // multi-word burst into its anchor word. A burst anchored at bit
        // 62 with stride 2 reaches offsets {62, 64, 66} — bit 62 of the
        // pending exit's dispatch entry plus bits 0 and 2 of the *next*
        // entry — and must corrupt both words.
        let point = prepared_point(5, 40);
        let vmer = point.reason.vmer();
        let spec = RecoverySpec::Burst(BurstSpec {
            site: BurstSite::HvMem {
                region: 2, // hv.dispatch
                word: vmer,
            },
            start_bit: 62,
            width: 3,
            stride: 2,
            at_step: 0,
        });
        let before: Vec<u64> = {
            let r = point
                .at_exit
                .machine
                .mem
                .region_by_name("hv.dispatch")
                .unwrap();
            r.words.clone()
        };
        let mut m = point.at_exit.machine.clone();
        spec.apply(&mut m, point.cpu);
        let after = &m.mem.region_by_name("hv.dispatch").unwrap().words;
        let changed: Vec<usize> = (0..before.len())
            .filter(|&i| before[i] != after[i])
            .collect();
        assert_eq!(
            changed,
            vec![vmer as usize, vmer as usize + 1],
            "burst must spill into the adjacent dispatch word"
        );
        // Bit 62 of the anchor entry sends the stub's indirect jump wild:
        // detected, and latent in private memory, so re-execution keeps
        // crashing; only the microreboot's boot-image restore — which
        // rewrites *every* private word, not just the anchor — converges.
        let fault = detect_fault(&point, spec, None).expect("wild dispatch entry detected");
        let (tier, _cycles) = attempt_recovery(&fault, &point, 1);
        assert_ne!(tier, TierResult::Converged);
        let rec = recover_detected(&fault, &point, &HmTable::reexecute_only());
        assert_eq!(rec.outcome, RecoveryOutcome::FailedRecovery);
        let rec = recover_detected(&fault, &point, &HmTable::tiered());
        assert_eq!(
            rec.outcome,
            RecoveryOutcome::Recovered {
                tier: RecoveryAction::Microreboot
            }
        );
    }

    #[test]
    fn pte_strike_defeats_reexecute_but_not_microreboot() {
        // Present-bit strikes on the observed DomU's page tables: any
        // page the handler itself touches (trap reflection, console and
        // time staging write guest data through the walker) faults
        // in-handler. hv.ptbl is outside the critical-state copy, so
        // re-execution hits the same missing page forever; the microreboot
        // restores the identity PTEs from the boot image.
        //
        // warm=30 parks the point at a hypercall whose handler stages data
        // into the guest (page 1 of dom 1's table is on its walk path).
        let point = prepared_point(5, 30);
        let mut detected = 0usize;
        for page in 0..lay::ptbl::PAGES_PER_DOM as u16 {
            let spec = RecoverySpec::Pte(PteSpec {
                dom: 1,
                page,
                field: PteField::Present,
                bit: 0,
                at_step: 0,
            });
            let Some(fault) = detect_fault(&point, spec, None) else {
                continue;
            };
            detected += 1;
            assert_eq!(fault.technique, Technique::HwException);
            let (tier, _cycles) = attempt_recovery(&fault, &point, 1);
            assert_ne!(tier, TierResult::Converged, "page {page}");
            let rec = recover_detected(&fault, &point, &HmTable::tiered());
            assert_eq!(
                rec.outcome,
                RecoveryOutcome::Recovered {
                    tier: RecoveryAction::Microreboot
                },
                "page {page}"
            );
        }
        assert!(
            detected > 0,
            "some handler-touched page must turn a PTE strike into an in-handler fault"
        );
    }

    #[test]
    fn pmc_strike_is_invisible_without_the_detector() {
        // PMU state is excluded from golden differencing and raises no
        // exception: with no deployed detector a counter strike is
        // architecturally invisible — the motivation for flagging clean
        // diffs when the VM-transition detector *is* deployed.
        let point = prepared_point(5, 40);
        let spec = RecoverySpec::Pmc(PmcSpec {
            counter: 1,
            bit: 40,
            at_step: point.golden_len / 2,
        });
        let mut m = point.at_exit.machine.clone();
        let before = m.cpu(point.cpu).perf.clone();
        spec.apply(&mut m, point.cpu);
        assert_ne!(m.cpu(point.cpu).perf, before, "the strike does land");
        assert!(detect_fault(&point, spec, None).is_none());
        let (outcome, _features) = crate::injection::inject_spec(&point, &spec, None);
        assert_eq!(outcome, crate::outcome::FaultOutcome::Benign);
    }
}
