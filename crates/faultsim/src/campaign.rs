//! Fault-injection campaigns (§V-A/B): parallel sweeps of thousands of
//! single-bit injections across benchmarks, producing the records behind
//! Fig. 8, 9, 10 and Table II, plus the labeled datasets the VM-transition
//! detector is trained on.
//!
//! The paper's setup: a simulated 4-core machine running Xen 4.1.2 with one
//! Dom0 and two para-virtualized DomUs executing the same benchmark;
//! injection points are chosen randomly while applications run; one fault
//! per run.
//!
//! # Engine: checkpoint forking
//!
//! The engine runs the golden (fault-free) execution exactly **once** per
//! campaign ([`golden_trace`]): it walks the trace, records a scalar
//! [`PointMeta`] per injection point, and checkpoints the platform every
//! [`CampaignConfig::checkpoint_interval`] points (delta-compressed, see
//! [`crate::checkpoint`]). Injections are then grouped into
//! checkpoint-aligned **chunks**: a chunk restores its checkpoint, replays
//! the short walk to each of its points, and performs that point's
//! injections — never touching boot, warmup, or any earlier segment of the
//! trace. The naive alternative, replaying the golden execution from boot
//! for every injection ([`run_campaign_from_boot`]), is kept as the
//! equivalence oracle and benchmark baseline.
//!
//! # Determinism and resumption
//!
//! Injection specs are a pure function of `(seed, point ordinal)` and
//! chunks are self-contained, so [`CampaignResult`] is **bit-identical for
//! any `threads` value** — workers claim whole chunks from a shared queue
//! and results are assembled in chunk order. [`run_campaign_resumable`]
//! additionally journals each completed chunk (atomic temp + rename); an
//! interrupted campaign resumes from the journal and recomputes only the
//! missing chunks, yielding the same bytes as an uninterrupted run.

use crate::checkpoint::{CheckpointStats, CheckpointStore};
use crate::injection::{
    inject, inject_spec, inject_with_flips, prepare_point, prepare_point_forked, InjectionPoint,
    InjectionRecord, InjectionSpec, PointMeta,
};
use crate::journal::CampaignJournal;
use crate::outcome::FaultOutcome;
use crate::policy::HmTable;
use crate::recovery::{
    detect_fault, recover_detected, BurstSite, BurstSpec, PmcSpec, PolicyRecovery, PteField,
    PteSpec, RecoverySpec,
};
use guest_sim::{dom0_profile, load_workload, profile, Benchmark};
use mltree::{Dataset, Label};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sim_machine::cpu::FlipTarget;
use sim_machine::{fold64, VirtMode};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use xen_like::{DomainSpec, IrqProfile, Platform, Topology};
use xentry::{FeatureVec, VmTransitionDetector, Xentry, FEATURE_NAMES};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    pub benchmark: Benchmark,
    pub mode: VirtMode,
    /// Total injections to perform.
    pub injections: usize,
    /// Activations to run before the first injection point.
    pub warmup: usize,
    /// Injections performed per golden point (amortizes golden runs).
    pub per_point: usize,
    /// Activations separating consecutive injection points.
    pub stride: usize,
    /// Post-VM-entry observation window (activations).
    pub post_window: usize,
    /// Guest kernel scale divider (campaigns shrink guest compute; handler
    /// behaviour — the thing under test — is unchanged).
    pub kernel_scale: u64,
    pub seed: u64,
    /// Worker threads. Affects wall-clock only: the result is bit-identical
    /// for any value (the determinism regression test pins this).
    pub threads: usize,
    /// Golden points per checkpoint (and per work chunk). Smaller intervals
    /// cost checkpoint memory; larger intervals cost replay time per chunk.
    pub checkpoint_interval: usize,
}

impl CampaignConfig {
    /// A paper-shaped campaign, sized down by `injections`.
    pub fn paper(benchmark: Benchmark, injections: usize, seed: u64) -> CampaignConfig {
        CampaignConfig {
            benchmark,
            mode: VirtMode::Para,
            injections,
            warmup: 60,
            per_point: 4,
            stride: 3,
            post_window: 6,
            kernel_scale: 24,
            seed,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            checkpoint_interval: 8,
        }
    }

    /// Golden injection points this campaign will visit.
    pub fn nr_points(&self) -> usize {
        self.injections.div_ceil(self.per_point.max(1))
    }

    /// Checkpoint-aligned work chunks this campaign divides into.
    pub fn nr_chunks(&self) -> usize {
        self.nr_points().div_ceil(self.checkpoint_interval.max(1))
    }

    /// Stable fingerprint of every field that shapes the records (all but
    /// `threads`, which only changes scheduling). Uses the workspace digest
    /// fold rather than `DefaultHasher` so journals written by one binary
    /// are resumable by another.
    pub fn digest(&self) -> u64 {
        let mut h = fold64(0x6361_6d70, self.seed);
        for b in format!("{:?}/{:?}", self.benchmark, self.mode).bytes() {
            h = fold64(h, b as u64);
        }
        for v in [
            self.injections as u64,
            self.warmup as u64,
            self.per_point as u64,
            self.stride as u64,
            self.post_window as u64,
            self.kernel_scale,
            self.checkpoint_interval as u64,
        ] {
            h = fold64(h, v);
        }
        h
    }
}

/// Build the campaign platform: Dom0 plus two DomUs running `benchmark`
/// (the paper's fault-injection configuration), DomU 1 pinned to CPU 1.
pub fn campaign_platform(cfg: &CampaignConfig, seed: u64) -> Platform {
    let topo = Topology {
        nr_cpus: 3,
        domains: vec![DomainSpec { nr_vcpus: 1 }; 3],
        virt_mode: cfg.mode,
        seed,
        cycle_model: Default::default(),
    };
    let (mut plat, _img) = Platform::new(topo);
    let prof = profile(cfg.benchmark, cfg.mode).scaled(cfg.kernel_scale);
    load_workload(
        &mut plat.machine,
        0,
        &dom0_profile(cfg.mode).scaled(cfg.kernel_scale),
    );
    load_workload(&mut plat.machine, 1, &prof);
    load_workload(&mut plat.machine, 2, &prof);
    plat.irq = IrqProfile {
        // Faster virtual tick keeps campaign activations cheap while
        // preserving the interrupt mix.
        tick_period: 400_000,
        dev_irq_period: (prof.dev_irq_period / 4).max(50_000),
    };
    plat
}

/// Result of a campaign.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct CampaignResult {
    pub records: Vec<InjectionRecord>,
}

impl CampaignResult {
    /// Merge another result in.
    pub fn extend(&mut self, other: CampaignResult) {
        self.records.extend(other.records);
    }

    /// Persist the raw records as JSON (the paper's stored injection
    /// traces; downstream analysis can re-aggregate without re-running).
    /// Written atomically so a crash never leaves a torn file.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        crate::journal::write_atomic(
            path.as_ref(),
            serde_json::to_string(self)
                .expect("records serialize")
                .as_bytes(),
        )
    }

    /// Load records saved by [`CampaignResult::save_json`].
    pub fn load_json(path: impl AsRef<std::path::Path>) -> std::io::Result<CampaignResult> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

fn random_spec(rng: &mut ChaCha8Rng, golden_len: u64) -> InjectionSpec {
    let targets = FlipTarget::all();
    InjectionSpec {
        target: targets[rng.gen_range(0..targets.len())],
        bit: rng.gen_range(0..64),
        at_step: rng.gen_range(0..golden_len.max(1)),
    }
}

/// The specs injected at golden point `ordinal` — a pure function of the
/// campaign seed and the ordinal, independent of which worker reaches the
/// point and of whether the walk forked from a checkpoint or ran from
/// boot. This is the keystone of both determinism properties.
fn specs_at(cfg: &CampaignConfig, ordinal: usize, golden_len: u64) -> Vec<InjectionSpec> {
    let per = cfg.per_point.max(1);
    let n = cfg.injections.saturating_sub(ordinal * per).min(per);
    let mut rng = ChaCha8Rng::seed_from_u64(fold64(cfg.seed, 0x5350_4543 ^ ordinal as u64));
    (0..n).map(|_| random_spec(&mut rng, golden_len)).collect()
}

/// One golden execution, walked once and frozen: the per-point scalar
/// metadata, the delta-compressed checkpoint chain the injection phase
/// forks from, and the fault-free feature trace (a ready source of
/// `Correct` training samples).
pub struct GoldenTrace {
    /// Scalar description of every golden injection point, in walk order.
    pub points: Vec<PointMeta>,
    store: CheckpointStore,
    /// Fault-free features collected along the walk (cold-start skipped).
    correct_features: Vec<FeatureVec>,
    /// Platform at the end of the walk (continuation for sample top-up).
    final_plat: Platform,
    cpu: sim_machine::CpuId,
    dom: usize,
}

impl GoldenTrace {
    /// Checkpoint-chain sizing diagnostics.
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.store.stats()
    }

    /// `n` fault-free samples labeled `Correct`, drawn from the golden
    /// walk's own feature trace; if the walk was shorter than `n`, the
    /// final platform is run further (the campaign's activations are
    /// reused instead of paying for a separate fault-free execution).
    pub fn correct_samples(&self, n: usize) -> Dataset {
        let mut ds = Dataset::new(&FEATURE_NAMES);
        ds.extend_samples(
            self.correct_features
                .iter()
                .take(n)
                .map(|f| f.into_sample(Label::Correct)),
        );
        if ds.len() < n {
            let mut plat = self.final_plat.clone();
            let mut shim = Xentry::collector();
            while shim.trace.len() < n - ds.len() {
                let act = plat.run_activation(self.cpu, &mut shim);
                assert!(act.outcome.is_healthy(), "fault-free run died");
            }
            let missing = n - ds.len();
            ds.extend_samples(
                shim.trace
                    .iter()
                    .take(missing)
                    .map(|f| f.into_sample(Label::Correct)),
            );
        }
        ds
    }
}

/// Activations skipped at the start of the correct-sample trace (cold
/// structures right after boot distort the feature distribution).
const COLD_SKIP: usize = 20;

/// Phase 1: run the golden execution once, checkpointing every
/// [`CampaignConfig::checkpoint_interval`] points and recording the scalar
/// metadata each injection will need. Serial — it advances one platform —
/// but executed once per campaign, not once per worker or per injection.
pub fn golden_trace(cfg: &CampaignConfig, detector: Option<&VmTransitionDetector>) -> GoldenTrace {
    let nr_points = cfg.nr_points();
    let ci = cfg.checkpoint_interval.max(1);
    let cpu = 1; // DomU 1's CPU
    let dom = 1;
    let mut plat = campaign_platform(cfg, cfg.seed);
    let mut collector = Xentry::collector();
    plat.boot(cpu, &mut collector);
    for _ in 0..cfg.warmup {
        let act = plat.run_activation(cpu, &mut collector);
        assert!(act.outcome.is_healthy(), "warmup died: {:?}", act.outcome);
    }
    let mut store = CheckpointStore::new(plat.snapshot());
    let mut points: Vec<PointMeta> = Vec::with_capacity(nr_points);
    let mut skipped = 0usize;
    while points.len() < nr_points {
        let ordinal = points.len();
        // Segment boundary: checkpoint the state from which the chunk
        // holding points [ordinal, ordinal + ci) will be replayed. Guarded
        // by the chain length so an invalid walk iteration at the boundary
        // does not push twice.
        if ordinal > 0 && ordinal.is_multiple_of(ci) && store.len() == ordinal / ci {
            store.push(&plat);
        }
        for _ in 0..cfg.stride {
            let act = plat.run_activation(cpu, &mut collector);
            assert!(act.outcome.is_healthy(), "trace died: {:?}", act.outcome);
        }
        let (reason, _gc) = plat.run_to_exit(cpu);
        match prepare_point(plat.clone(), cpu, dom, reason, cfg.post_window, detector) {
            Some(p) => points.push(p.meta(ordinal, std::mem::take(&mut skipped))),
            // Defensive: the golden run of this point did not complete
            // healthily (cannot happen in practice). The walk skips it; the
            // skip count makes replays traverse it identically.
            None => skipped += 1,
        }
        // Resume the live (fault-free) platform past this activation.
        plat.run_handler(cpu, reason, 0, &mut collector);
    }
    let correct_features = collector.trace.iter().skip(COLD_SKIP).copied().collect();
    GoldenTrace {
        points,
        store,
        correct_features,
        final_plat: plat,
        cpu,
        dom,
    }
}

/// Phase 2, one chunk: restore the chunk's checkpoint, replay the short
/// walk to each point in the segment, rebuild the point via
/// [`prepare_point_forked`], and let `per_point` produce whatever the
/// caller aggregates (single-bit records, multi-bit pairs, ...).
fn replay_chunk<R>(
    cfg: &CampaignConfig,
    trace: &GoldenTrace,
    chunk: usize,
    detector: Option<&VmTransitionDetector>,
    mut per_point: impl FnMut(&InjectionPoint, &PointMeta) -> Vec<R>,
) -> Vec<R> {
    let ci = cfg.checkpoint_interval.max(1);
    let lo = chunk * ci;
    let hi = ((chunk + 1) * ci).min(trace.points.len());
    let (cpu, dom) = (trace.cpu, trace.dom);
    let mut plat = trace.store.restore(chunk);
    let mut collector = Xentry::collector();
    let mut out = Vec::new();
    for meta in &trace.points[lo..hi] {
        // Invalid walk iterations the golden pass skipped before this
        // point: replay them verbatim (stride, exit, handler — no golden
        // run) so the platform evolves exactly as it did in phase 1.
        for _ in 0..meta.skipped_before {
            for _ in 0..cfg.stride {
                let act = plat.run_activation(cpu, &mut collector);
                assert!(
                    act.outcome.is_healthy(),
                    "fork walk died: {:?}",
                    act.outcome
                );
            }
            let (reason, _gc) = plat.run_to_exit(cpu);
            plat.run_handler(cpu, reason, 0, &mut collector);
        }
        // The recorded point's own walk iteration.
        for _ in 0..cfg.stride {
            let act = plat.run_activation(cpu, &mut collector);
            assert!(
                act.outcome.is_healthy(),
                "fork walk died: {:?}",
                act.outcome
            );
        }
        let (reason, _gc) = plat.run_to_exit(cpu);
        assert_eq!(
            reason, meta.reason,
            "fork walk diverged from the golden pass at point {}",
            meta.ordinal
        );
        let point = prepare_point_forked(plat.clone(), cpu, dom, cfg.post_window, meta, detector);
        out.extend(per_point(&point, meta));
        plat.run_handler(cpu, reason, 0, &mut collector);
    }
    out
}

/// Chunk results keyed by chunk id, assembled in id order.
type ChunkMap<R> = BTreeMap<usize, Vec<R>>;

/// Run `run(chunk_id)` for every id in `ids` across `threads` workers.
/// Workers claim whole chunks from a shared queue (no static split, so the
/// division of labor cannot leak into the results); each completed chunk is
/// inserted into `collected` under its id and `on_complete` fires while the
/// lock is held (journaling hook). `stop_after` bounds how many *new*
/// chunks complete — the deterministic stand-in for an interrupt.
fn run_chunks<R: Send>(
    threads: usize,
    ids: &[usize],
    stop_after: Option<usize>,
    collected: &Mutex<ChunkMap<R>>,
    run: &(dyn Fn(usize) -> Vec<R> + Sync),
    on_complete: &(dyn Fn(&ChunkMap<R>) + Sync),
) {
    let next = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let workers = threads.max(1).min(ids.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                if let Some(cap) = stop_after {
                    if completed.load(Ordering::SeqCst) >= cap {
                        return;
                    }
                }
                let i = next.fetch_add(1, Ordering::SeqCst);
                let Some(&id) = ids.get(i) else { return };
                let records = run(id);
                let mut map = collected.lock().expect("chunk map lock");
                map.insert(id, records);
                completed.fetch_add(1, Ordering::SeqCst);
                on_complete(&map);
            });
        }
    });
}

/// Run a campaign against an already-walked golden trace. Deterministic:
/// the records depend only on the configuration, never on `threads`.
pub fn run_campaign_with(
    cfg: &CampaignConfig,
    trace: &GoldenTrace,
    detector: Option<&VmTransitionDetector>,
) -> CampaignResult {
    let ids: Vec<usize> = (0..cfg.nr_chunks()).collect();
    let collected = Mutex::new(BTreeMap::new());
    run_chunks(
        cfg.threads,
        &ids,
        None,
        &collected,
        &|chunk| {
            replay_chunk(cfg, trace, chunk, detector, |point, meta| {
                specs_at(cfg, meta.ordinal, point.golden_len)
                    .into_iter()
                    .map(|spec| inject(point, spec, detector))
                    .collect()
            })
        },
        &|_| {},
    );
    let chunks = collected.into_inner().expect("chunk map lock");
    CampaignResult {
        records: chunks.into_values().flatten().collect(),
    }
}

/// Run a campaign, optionally with a deployed VM-transition detector:
/// golden pass once, then checkpoint-forked injections in parallel.
pub fn run_campaign(
    cfg: &CampaignConfig,
    detector: Option<&VmTransitionDetector>,
) -> CampaignResult {
    if cfg.injections == 0 {
        return CampaignResult::default();
    }
    let trace = golden_trace(cfg, detector);
    run_campaign_with(cfg, &trace, detector)
}

/// How a resumable campaign invocation ended.
#[derive(Debug, Clone)]
pub enum CampaignRun {
    /// Every chunk is done; the assembled result is bit-identical to an
    /// uninterrupted [`run_campaign`] with the same configuration.
    Complete(CampaignResult),
    /// Stopped early (`stop_after_chunks`); progress is in the journal.
    Interrupted {
        chunks_done: usize,
        chunks_total: usize,
    },
}

/// Run a campaign with crash-safe progress journaling. Completed chunks
/// are persisted (atomic temp + rename) after each finish; a rerun with
/// the same configuration and journal path resumes, recomputing only
/// missing chunks. `stop_after_chunks` stops after roughly that many new
/// chunks — the deterministic stand-in for killing the process, used by
/// tests and the CI resume smoke.
pub fn run_campaign_resumable(
    cfg: &CampaignConfig,
    detector: Option<&VmTransitionDetector>,
    journal_path: &Path,
    stop_after_chunks: Option<usize>,
) -> std::io::Result<CampaignRun> {
    if cfg.injections == 0 {
        return Ok(CampaignRun::Complete(CampaignResult::default()));
    }
    let digest = cfg.digest();
    let chunks_total = cfg.nr_chunks();
    let journal = CampaignJournal::load_matching(journal_path, digest, chunks_total)
        .unwrap_or_else(|| CampaignJournal::new(digest, chunks_total));
    if journal.is_complete() {
        return Ok(CampaignRun::Complete(CampaignResult {
            records: journal.chunks.into_values().flatten().collect(),
        }));
    }
    // The golden pass is recomputed on resume: it is deterministic, serial
    // and a small fraction of campaign cost, and journaling it would mean
    // persisting full platform snapshots.
    let trace = golden_trace(cfg, detector);
    let pending: Vec<usize> = (0..chunks_total)
        .filter(|c| !journal.chunks.contains_key(c))
        .collect();
    let collected = Mutex::new(journal.chunks);
    run_chunks(
        cfg.threads,
        &pending,
        stop_after_chunks,
        &collected,
        &|chunk| {
            replay_chunk(cfg, &trace, chunk, detector, |point, meta| {
                specs_at(cfg, meta.ordinal, point.golden_len)
                    .into_iter()
                    .map(|spec| inject(point, spec, detector))
                    .collect()
            })
        },
        &|map| {
            let j = CampaignJournal {
                config_digest: digest,
                chunks_total,
                chunks: map.clone(),
            };
            j.save(journal_path).expect("journal write");
        },
    );
    let chunks = collected.into_inner().expect("chunk map lock");
    if chunks.len() == chunks_total {
        Ok(CampaignRun::Complete(CampaignResult {
            records: chunks.into_values().flatten().collect(),
        }))
    } else {
        Ok(CampaignRun::Interrupted {
            chunks_done: chunks.len(),
            chunks_total,
        })
    }
}

/// The naive baseline the paper's methodology implies: every injection
/// replays the **entire golden execution from boot** (fresh platform, boot,
/// warmup, walk to the injection point, golden runs, inject). Kept as the
/// equivalence oracle — it must produce bit-identical records to
/// [`run_campaign`] — and as the benchmark baseline the ≥5x throughput
/// target is measured against. Serial and deliberately unoptimized.
pub fn run_campaign_from_boot(
    cfg: &CampaignConfig,
    detector: Option<&VmTransitionDetector>,
) -> CampaignResult {
    let mut records = Vec::with_capacity(cfg.injections);
    let nr_points = cfg.nr_points();
    let (cpu, dom) = (1, 1);
    for ordinal in 0..nr_points {
        // One full replay from boot per injection at this point.
        let mut done = 0usize;
        loop {
            let mut plat = campaign_platform(cfg, cfg.seed);
            let mut collector = Xentry::collector();
            plat.boot(cpu, &mut collector);
            for _ in 0..cfg.warmup {
                let act = plat.run_activation(cpu, &mut collector);
                assert!(act.outcome.is_healthy(), "warmup died: {:?}", act.outcome);
            }
            // Walk valid points until `ordinal`, deciding validity exactly
            // like the golden pass does (a full golden preparation).
            let mut valid = 0usize;
            let point = loop {
                for _ in 0..cfg.stride {
                    let act = plat.run_activation(cpu, &mut collector);
                    assert!(act.outcome.is_healthy(), "trace died: {:?}", act.outcome);
                }
                let (reason, _gc) = plat.run_to_exit(cpu);
                let prepared =
                    prepare_point(plat.clone(), cpu, dom, reason, cfg.post_window, detector);
                if let Some(p) = prepared {
                    if valid == ordinal {
                        break p;
                    }
                    valid += 1;
                }
                plat.run_handler(cpu, reason, 0, &mut collector);
            };
            let specs = specs_at(cfg, ordinal, point.golden_len);
            if done >= specs.len() {
                break;
            }
            records.push(inject(&point, specs[done], detector));
            done += 1;
            if done >= specs.len() {
                break;
            }
        }
    }
    CampaignResult { records }
}

// ---------------------------------------------------------------------------
// Recovery phase: detected injections driven through health-monitor policies
// ---------------------------------------------------------------------------

/// One injection driven through every policy table under comparison.
/// Detection precedes policy, so a single detection verdict fans out to
/// one ladder run per table — whole policy tables compare head-to-head
/// on identical faults in one campaign.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RecoveryRecord {
    /// Golden point ordinal the fault was injected at.
    pub ordinal: usize,
    /// The injected fault.
    pub spec: RecoverySpec,
    /// Ladder outcome per policy table, in the order the tables were
    /// passed to the campaign. `None` = the fault was not detected
    /// (recovery never triggered; identical across tables).
    pub per_policy: Vec<Option<PolicyRecovery>>,
}

/// Records of a recovery campaign, in injection order.
#[derive(Debug, Clone, Default)]
pub struct RecoveryCampaignResult {
    pub records: Vec<RecoveryRecord>,
}

/// Stable fingerprint of a recovery campaign: the base configuration
/// plus every policy table under comparison. A journal written under a
/// different policy set is ignored, not resumed.
pub fn recovery_campaign_digest(cfg: &CampaignConfig, tables: &[HmTable]) -> u64 {
    let mut h = fold64(0x7265_6356, cfg.digest());
    for t in tables {
        h = fold64(h, t.digest());
    }
    h
}

/// The recovery campaign's spec schedule: the architectural flips of
/// [`specs_at`] with every third injection redirected into a
/// hypervisor-private memory word — the latent-corruption class that
/// separates the microreboot tier from re-execution (the critical-state
/// copy cannot heal it) — and every third-plus-one injection redirected
/// into the extended fault models (spatial bursts, PTE strikes, PMC
/// strikes), so the HmTable receipts price every model the simulator
/// can produce, not just single-bit flips.
///
/// Memory flips land with `at_step: 0`: unlike a register flip, which
/// only matters while the value is live in the handler, a memory strike
/// persists from whenever it happened until the word is next read, so
/// the natural model is "already corrupted at handler entry". Region
/// and word choice are importance-sampled toward frequently-read state:
/// the dispatch table (consumed on every single exit) draws three of
/// every eight memory strikes, and half of those hit the in-flight
/// exit's own entry — the one word this handler is guaranteed to
/// consume. A uniformly random word in a multi-KB region is almost
/// never read and therefore benign by construction — sampling only
/// those would measure nothing, the standard argument for targeted
/// fault injection.
///
/// A pure function of (seed, ordinal, vmer) — all reproduced
/// identically by the golden pass and every checkpoint fork — so both
/// campaign determinism properties are preserved.
fn recovery_specs_at(
    cfg: &CampaignConfig,
    ordinal: usize,
    golden_len: u64,
    vmer: u16,
) -> Vec<RecoverySpec> {
    let regs = specs_at(cfg, ordinal, golden_len);
    let mut rng = ChaCha8Rng::seed_from_u64(fold64(cfg.seed, 0x4856_4d45 ^ ordinal as u64));
    let dispatch = xen_like::MICROREBOOT_PRIVATE_REGIONS
        .iter()
        .position(|n| *n == "hv.dispatch")
        .expect("dispatch region listed") as u8;
    regs.into_iter()
        .enumerate()
        .map(|(k, s)| {
            if k % 3 == 2 {
                // 3/8 dispatch, the rest uniform over the other regions.
                let roll = rng.gen_range(0..8u8);
                let region = match roll {
                    0..=2 => dispatch,
                    3 => 0, // hv.global
                    4 => 1, // hv.scratch
                    5 => 3, // hv.pcpu
                    6 => 4, // hv.runq
                    _ => 5, // hv.stacks
                };
                let hot = rng.gen_range(0..2u8) == 0;
                let word = if region == dispatch && hot {
                    vmer
                } else {
                    rng.gen_range(0..256)
                };
                RecoverySpec::HvMem {
                    region,
                    word,
                    bit: rng.gen_range(0..64),
                    at_step: 0,
                }
            } else if k % 3 == 1 {
                // Extended models, bursts weighted up: a PMC strike is
                // architecturally invisible to the exception paths, so an
                // even split would starve the detection-rate signal the
                // tiered-vs-reexecute comparison rests on.
                match rng.gen_range(0..4u8) {
                    0 | 1 => RecoverySpec::Burst(random_burst(&mut rng, golden_len, vmer)),
                    2 => RecoverySpec::Pte(random_pte(&mut rng)),
                    _ => RecoverySpec::Pmc(PmcSpec {
                        counter: rng.gen_range(0..4),
                        bit: rng.gen_range(0..64),
                        at_step: rng.gen_range(0..golden_len.max(1)),
                    }),
                }
            } else {
                RecoverySpec::Reg(s)
            }
        })
        .collect()
}

fn recovery_chunk(
    cfg: &CampaignConfig,
    trace: &GoldenTrace,
    chunk: usize,
    detector: Option<&VmTransitionDetector>,
    tables: &[HmTable],
) -> Vec<RecoveryRecord> {
    replay_chunk(cfg, trace, chunk, detector, |point, meta| {
        recovery_specs_at(cfg, meta.ordinal, point.golden_len, point.reason.vmer())
            .into_iter()
            .map(|spec| {
                let per_policy = match detect_fault(point, spec, detector) {
                    None => tables.iter().map(|_| None).collect(),
                    Some(fault) => tables
                        .iter()
                        .map(|t| Some(recover_detected(&fault, point, t)))
                        .collect(),
                };
                RecoveryRecord {
                    ordinal: meta.ordinal,
                    spec,
                    per_policy,
                }
            })
            .collect()
    })
}

/// Run the recovery phase against an already-walked golden trace.
/// Deterministic: records depend only on the configuration and the
/// tables, never on `threads`.
pub fn run_recovery_campaign_with(
    cfg: &CampaignConfig,
    trace: &GoldenTrace,
    detector: Option<&VmTransitionDetector>,
    tables: &[HmTable],
) -> RecoveryCampaignResult {
    let ids: Vec<usize> = (0..cfg.nr_chunks()).collect();
    let collected = Mutex::new(BTreeMap::new());
    run_chunks(
        cfg.threads,
        &ids,
        None,
        &collected,
        &|chunk| recovery_chunk(cfg, trace, chunk, detector, tables),
        &|_| {},
    );
    let chunks = collected.into_inner().expect("chunk map lock");
    RecoveryCampaignResult {
        records: chunks.into_values().flatten().collect(),
    }
}

/// Run a recovery campaign: golden pass once, then checkpoint-forked
/// injections, each detected fault driven through every policy table.
pub fn run_recovery_campaign(
    cfg: &CampaignConfig,
    detector: Option<&VmTransitionDetector>,
    tables: &[HmTable],
) -> RecoveryCampaignResult {
    if cfg.injections == 0 {
        return RecoveryCampaignResult::default();
    }
    let trace = golden_trace(cfg, detector);
    run_recovery_campaign_with(cfg, &trace, detector, tables)
}

/// How a resumable recovery campaign invocation ended.
#[derive(Debug, Clone)]
pub enum RecoveryCampaignRun {
    /// Every chunk is done; bit-identical to an uninterrupted
    /// [`run_recovery_campaign`] with the same configuration and tables.
    Complete(RecoveryCampaignResult),
    /// Stopped early (`stop_after_chunks`); progress is in the journal.
    Interrupted {
        chunks_done: usize,
        chunks_total: usize,
    },
}

/// [`run_recovery_campaign`] with crash-safe progress journaling — the
/// recovery-phase counterpart of [`run_campaign_resumable`], sharing the
/// same chunk queue, journal format and determinism guarantees.
pub fn run_recovery_campaign_resumable(
    cfg: &CampaignConfig,
    detector: Option<&VmTransitionDetector>,
    tables: &[HmTable],
    journal_path: &Path,
    stop_after_chunks: Option<usize>,
) -> std::io::Result<RecoveryCampaignRun> {
    if cfg.injections == 0 {
        return Ok(RecoveryCampaignRun::Complete(
            RecoveryCampaignResult::default(),
        ));
    }
    let digest = recovery_campaign_digest(cfg, tables);
    let chunks_total = cfg.nr_chunks();
    let journal: CampaignJournal<RecoveryRecord> =
        CampaignJournal::load_matching(journal_path, digest, chunks_total)
            .unwrap_or_else(|| CampaignJournal::new(digest, chunks_total));
    if journal.is_complete() {
        return Ok(RecoveryCampaignRun::Complete(RecoveryCampaignResult {
            records: journal.chunks.into_values().flatten().collect(),
        }));
    }
    let trace = golden_trace(cfg, detector);
    let pending: Vec<usize> = (0..chunks_total)
        .filter(|c| !journal.chunks.contains_key(c))
        .collect();
    let collected = Mutex::new(journal.chunks);
    run_chunks(
        cfg.threads,
        &pending,
        stop_after_chunks,
        &collected,
        &|chunk| recovery_chunk(cfg, &trace, chunk, detector, tables),
        &|map| {
            let j = CampaignJournal {
                config_digest: digest,
                chunks_total,
                chunks: map.clone(),
            };
            j.save(journal_path).expect("journal write");
        },
    );
    let chunks = collected.into_inner().expect("chunk map lock");
    if chunks.len() == chunks_total {
        Ok(RecoveryCampaignRun::Complete(RecoveryCampaignResult {
            records: chunks.into_values().flatten().collect(),
        }))
    } else {
        Ok(RecoveryCampaignRun::Interrupted {
            chunks_done: chunks.len(),
            chunks_total,
        })
    }
}

/// Collect `n` fault-free feature samples (label `Correct`) from a
/// campaign-shaped platform seeded independently of the campaign. When the
/// campaign's own golden trace is at hand, prefer
/// [`GoldenTrace::correct_samples`], which reuses the walk already paid
/// for.
pub fn collect_correct_samples(cfg: &CampaignConfig, n: usize, seed: u64) -> Dataset {
    let mut plat = campaign_platform(cfg, seed);
    let cpu = 1;
    let mut shim = Xentry::collector();
    plat.boot(cpu, &mut shim);
    let mut ds = Dataset::new(&FEATURE_NAMES);
    // Skip the first few activations (cold structures).
    for _ in 0..COLD_SKIP {
        plat.run_activation(cpu, &mut shim);
    }
    shim.trace.clear();
    while shim.trace.len() < n {
        let act = plat.run_activation(cpu, &mut shim);
        assert!(act.outcome.is_healthy(), "fault-free run died");
    }
    ds.extend_samples(
        shim.trace
            .iter()
            .take(n)
            .map(|f| f.into_sample(Label::Correct)),
    );
    ds
}

/// Build a labeled dataset from campaign records: faulty executions that
/// completed VM entry contribute samples labeled by whether they actually
/// diverged from the golden run (the paper's trace-analysis labeling).
pub fn dataset_from_records(records: &[InjectionRecord]) -> Dataset {
    let mut ds = Dataset::new(&FEATURE_NAMES);
    ds.extend_samples(records.iter().filter_map(|r| {
        let f = r.features?;
        use crate::outcome::FaultOutcome::*;
        let label = match &r.outcome {
            Benign => Label::Correct,
            // Only executions that reached VM entry have features;
            // VM-transition positives and late detections are incorrect
            // executions by construction.
            MaskedAfterEntry | Undetected { .. } | Detected { .. } => Label::Incorrect,
        };
        Some(f.into_sample(label))
    }));
    ds
}

/// Re-classify the feature vectors of recorded injections against a
/// detector, pooling a confusion matrix versus the trace-analysis ground
/// truth ([`dataset_from_records`] labels). Runs the compiled batch path,
/// so post-campaign what-if evaluation of candidate models costs one
/// arena sweep instead of a boxed walk per record.
pub fn evaluate_detector_on_records(
    detector: &VmTransitionDetector,
    records: &[InjectionRecord],
) -> mltree::ConfusionMatrix {
    let ds = dataset_from_records(records);
    mltree::evaluate_compiled(detector.compiled(), &ds)
}

/// Multi-bit-upset comparison: paired single-bit and k-bit campaigns over
/// the same golden trace — the beyond-ECC scenario the paper motivates in
/// §V-B. Runs on the checkpoint-forked engine (parallel, deterministic):
/// at every point, the 1-bit fault is the first flip of the k-bit fault,
/// injected at the same step, so the comparison stays paired.
pub fn multibit_study(
    cfg: &CampaignConfig,
    injections: usize,
    bits_per_fault: usize,
    detector: Option<&VmTransitionDetector>,
    seed: u64,
) -> (CampaignResult, CampaignResult) {
    assert!(
        bits_per_fault >= 2,
        "use run_campaign for single-bit faults"
    );
    let mut study_cfg = cfg.clone();
    study_cfg.injections = injections;
    study_cfg.seed = seed;
    let trace = golden_trace(&study_cfg, detector);
    let targets = FlipTarget::all();
    let ids: Vec<usize> = (0..study_cfg.nr_chunks()).collect();
    let collected = Mutex::new(BTreeMap::new());
    run_chunks(
        study_cfg.threads,
        &ids,
        None,
        &collected,
        &|chunk| {
            replay_chunk(&study_cfg, &trace, chunk, detector, |point, meta| {
                let per = study_cfg.per_point.max(1);
                let n = study_cfg
                    .injections
                    .saturating_sub(meta.ordinal * per)
                    .min(per);
                let mut rng = ChaCha8Rng::seed_from_u64(fold64(
                    study_cfg.seed,
                    0x4d42_4954 ^ meta.ordinal as u64,
                ));
                (0..n)
                    .map(|_| {
                        let at_step = rng.gen_range(0..point.golden_len.max(1));
                        let flips: Vec<(FlipTarget, u8)> = (0..bits_per_fault)
                            .map(|_| {
                                (
                                    targets[rng.gen_range(0..targets.len())],
                                    rng.gen_range(0..64),
                                )
                            })
                            .collect();
                        (
                            inject_with_flips(point, &flips[..1], at_step, detector),
                            inject_with_flips(point, &flips, at_step, detector),
                        )
                    })
                    .collect()
            })
        },
        &|_| {},
    );
    let chunks = collected.into_inner().expect("chunk map lock");
    let mut single = CampaignResult::default();
    let mut multi = CampaignResult::default();
    for (s, m) in chunks.into_values().flatten() {
        single.records.push(s);
        multi.records.push(m);
    }
    (single, multi)
}

// ---------------------------------------------------------------------------
// Extended fault models: spatial bursts, PTE strikes, PMC strikes
// ---------------------------------------------------------------------------

/// Index of `hv.dispatch` in [`xen_like::MICROREBOOT_PRIVATE_REGIONS`].
fn dispatch_region_index() -> u8 {
    xen_like::MICROREBOOT_PRIVATE_REGIONS
        .iter()
        .position(|n| *n == "hv.dispatch")
        .expect("dispatch region listed") as u8
}

fn random_burst(rng: &mut ChaCha8Rng, golden_len: u64, vmer: u16) -> BurstSpec {
    let width = rng.gen_range(2..=4);
    let stride = rng.gen_range(1..=3);
    let start_bit = rng.gen_range(0..64);
    if rng.gen_range(0..2u8) == 0 {
        let targets = FlipTarget::all();
        BurstSpec {
            site: BurstSite::Reg(targets[rng.gen_range(0..targets.len())]),
            start_bit,
            width,
            stride,
            at_step: rng.gen_range(0..golden_len.max(1)),
        }
    } else {
        // Importance-sample the dispatch table like [`recovery_specs_at`]:
        // half the memory bursts anchor at the in-flight exit's own entry,
        // so cross-word spills reach the adjacent (also live) entries.
        let hot = rng.gen_range(0..2u8) == 0;
        let word = if hot { vmer } else { rng.gen_range(0..256) };
        BurstSpec {
            site: BurstSite::HvMem {
                region: dispatch_region_index(),
                word,
            },
            start_bit,
            width,
            stride,
            // Memory strikes persist: corrupted at handler entry.
            at_step: 0,
        }
    }
}

fn random_pte(rng: &mut ChaCha8Rng) -> PteSpec {
    let field = match rng.gen_range(0..3u8) {
        0 => PteField::Present,
        1 => PteField::Rw,
        _ => PteField::Addr,
    };
    PteSpec {
        // Strike the observed DomU's table: PTEs of a domain never
        // scheduled on the observed CPU are benign by construction, and
        // sampling only those would measure nothing.
        dom: 1,
        page: rng.gen_range(0..xen_like::layout::ptbl::PAGES_PER_DOM as u16),
        field,
        bit: rng.gen_range(0..28),
        at_step: 0,
    }
}

/// The model-diversity spec schedule: golden point `ordinal`'s injections
/// rotate through the three extended fault models — spatial multi-bit
/// bursts, page-table-entry strikes and performance-counter strikes. A
/// pure function of (seed, ordinal, vmer), like [`specs_at`], so model
/// campaigns inherit both determinism properties unchanged.
pub fn model_specs_at(
    cfg: &CampaignConfig,
    ordinal: usize,
    golden_len: u64,
    vmer: u16,
) -> Vec<RecoverySpec> {
    let per = cfg.per_point.max(1);
    let n = cfg.injections.saturating_sub(ordinal * per).min(per);
    let mut rng = ChaCha8Rng::seed_from_u64(fold64(cfg.seed, 0x4d4f_444c ^ ordinal as u64));
    (0..n)
        .map(|k| match k % 3 {
            0 => RecoverySpec::Burst(random_burst(&mut rng, golden_len, vmer)),
            1 => RecoverySpec::Pte(random_pte(&mut rng)),
            _ => RecoverySpec::Pmc(PmcSpec {
                counter: rng.gen_range(0..4),
                bit: rng.gen_range(0..64),
                at_step: rng.gen_range(0..golden_len.max(1)),
            }),
        })
        .collect()
}

/// Outcome record of one extended-model injection, carrying the labels
/// the vulnerability map buckets by.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ModelRecord {
    /// Golden point ordinal the fault was injected at.
    pub ordinal: usize,
    pub vmer: u16,
    /// Fault-model class (`"burst"`, `"pte"`, `"pmc"`).
    pub class: String,
    /// Struck target: register, private region, PTE field or counter.
    pub target: String,
    /// Primary struck bit position.
    pub bit: u8,
    pub at_step: u64,
    pub outcome: FaultOutcome,
    /// Faulty-run features, when the handler reached VM entry.
    pub features: Option<FeatureVec>,
}

/// Records of an extended-model campaign, in injection order.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct ModelCampaignResult {
    pub records: Vec<ModelRecord>,
}

impl ModelCampaignResult {
    /// Persist the raw records as JSON, atomically.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        crate::journal::write_atomic(
            path.as_ref(),
            serde_json::to_string(self)
                .expect("records serialize")
                .as_bytes(),
        )
    }

    /// Load records saved by [`ModelCampaignResult::save_json`].
    pub fn load_json(path: impl AsRef<std::path::Path>) -> std::io::Result<ModelCampaignResult> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Run an extended-model campaign against an already-walked golden trace.
/// Deterministic: records depend only on the configuration, never on
/// `threads` — the same chunk queue and schedule purity as
/// [`run_campaign_with`].
pub fn run_model_campaign_with(
    cfg: &CampaignConfig,
    trace: &GoldenTrace,
    detector: Option<&VmTransitionDetector>,
) -> ModelCampaignResult {
    let ids: Vec<usize> = (0..cfg.nr_chunks()).collect();
    let collected = Mutex::new(BTreeMap::new());
    run_chunks(
        cfg.threads,
        &ids,
        None,
        &collected,
        &|chunk| {
            replay_chunk(cfg, trace, chunk, detector, |point, meta| {
                model_specs_at(cfg, meta.ordinal, point.golden_len, point.reason.vmer())
                    .into_iter()
                    .map(|spec| {
                        let (outcome, features) = inject_spec(point, &spec, detector);
                        ModelRecord {
                            ordinal: meta.ordinal,
                            vmer: point.reason.vmer(),
                            class: spec.class().to_string(),
                            target: spec.target_label(),
                            bit: spec.bit(),
                            at_step: spec.at_step(),
                            outcome,
                            features,
                        }
                    })
                    .collect()
            })
        },
        &|_| {},
    );
    let chunks = collected.into_inner().expect("chunk map lock");
    ModelCampaignResult {
        records: chunks.into_values().flatten().collect(),
    }
}

/// Run an extended-model campaign: golden pass once, then
/// checkpoint-forked burst/PTE/PMC injections in parallel.
pub fn run_model_campaign(
    cfg: &CampaignConfig,
    detector: Option<&VmTransitionDetector>,
) -> ModelCampaignResult {
    if cfg.injections == 0 {
        return ModelCampaignResult::default();
    }
    let trace = golden_trace(cfg, detector);
    run_model_campaign_with(cfg, &trace, detector)
}

/// Reference extended-model campaign with NO checkpoint forking: every
/// injection replays from a fresh boot ([`run_campaign_from_boot`]'s
/// slow path, for the model schedule). Must produce records identical to
/// [`run_model_campaign`] — the equivalence the fast path is pinned by.
pub fn run_model_campaign_from_boot(
    cfg: &CampaignConfig,
    detector: Option<&VmTransitionDetector>,
) -> ModelCampaignResult {
    let mut records = Vec::with_capacity(cfg.injections);
    let nr_points = cfg.nr_points();
    let (cpu, dom) = (1, 1);
    for ordinal in 0..nr_points {
        let mut done = 0usize;
        loop {
            let mut plat = campaign_platform(cfg, cfg.seed);
            let mut collector = Xentry::collector();
            plat.boot(cpu, &mut collector);
            for _ in 0..cfg.warmup {
                let act = plat.run_activation(cpu, &mut collector);
                assert!(act.outcome.is_healthy(), "warmup died: {:?}", act.outcome);
            }
            let mut valid = 0usize;
            let point = loop {
                for _ in 0..cfg.stride {
                    let act = plat.run_activation(cpu, &mut collector);
                    assert!(act.outcome.is_healthy(), "trace died: {:?}", act.outcome);
                }
                let (reason, _gc) = plat.run_to_exit(cpu);
                let prepared =
                    prepare_point(plat.clone(), cpu, dom, reason, cfg.post_window, detector);
                if let Some(p) = prepared {
                    if valid == ordinal {
                        break p;
                    }
                    valid += 1;
                }
                plat.run_handler(cpu, reason, 0, &mut collector);
            };
            let specs = model_specs_at(cfg, ordinal, point.golden_len, point.reason.vmer());
            if done >= specs.len() {
                break;
            }
            let spec = specs[done];
            let (outcome, features) = inject_spec(&point, &spec, detector);
            records.push(ModelRecord {
                ordinal,
                vmer: point.reason.vmer(),
                class: spec.class().to_string(),
                target: spec.target_label(),
                bit: spec.bit(),
                at_step: spec.at_step(),
                outcome,
                features,
            });
            done += 1;
            if done >= specs.len() {
                break;
            }
        }
    }
    ModelCampaignResult { records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::FaultOutcome;

    fn small_cfg() -> CampaignConfig {
        let mut c = CampaignConfig::paper(Benchmark::Freqmine, 60, 11);
        c.threads = 2;
        c.warmup = 30;
        c.post_window = 4;
        c
    }

    #[test]
    fn recovery_campaign_tiered_beats_reexecute_only() {
        use crate::policy::RecoveryOutcome;
        let cfg = small_cfg();
        let tables = [HmTable::reexecute_only(), HmTable::tiered()];
        let res = run_recovery_campaign(&cfg, None, &tables);
        assert_eq!(res.records.len(), 60);
        let recovered = |idx: usize| {
            res.records
                .iter()
                .filter_map(|r| r.per_policy[idx].as_ref())
                .filter(|p| matches!(p.outcome, RecoveryOutcome::Recovered { .. }))
                .count()
        };
        let detected = res
            .records
            .iter()
            .filter(|r| r.per_policy[0].is_some())
            .count();
        assert!(detected > 10, "too few detections: {detected}");
        // The microreboot tier closes faults re-execution leaves residual.
        assert!(
            recovered(1) >= recovered(0),
            "tiered ({}) worse than reexec-only ({})",
            recovered(1),
            recovered(0)
        );
        // Every ladder terminated within its proven bound.
        for r in &res.records {
            for (p, t) in r.per_policy.iter().zip(&tables) {
                if let Some(p) = p {
                    assert!(p.steps.len() <= t.max_attempts() as usize);
                }
            }
        }
    }

    #[test]
    fn campaign_produces_requested_injections() {
        let cfg = small_cfg();
        let res = run_campaign(&cfg, None);
        assert_eq!(res.records.len(), 60);
        // A healthy mix: some benign, some detected (exceptions dominate).
        let benign = res
            .records
            .iter()
            .filter(|r| !r.outcome.manifested())
            .count();
        let detected = res.records.iter().filter(|r| r.outcome.detected()).count();
        assert!(benign > 0, "no benign faults in 60 injections?");
        assert!(detected > 0, "no detections in 60 injections?");
    }

    #[test]
    fn hw_exceptions_dominate_detections() {
        // Fig. 8: "Most of errors (85.1%) are detected by the hardware
        // exceptions" — the shape must hold even in a small campaign.
        let mut cfg = small_cfg();
        cfg.injections = 120;
        let res = run_campaign(&cfg, None);
        let mut hw = 0;
        let mut other = 0;
        for r in &res.records {
            if let FaultOutcome::Detected { technique, .. } = &r.outcome {
                if *technique == xentry::Technique::HwException {
                    hw += 1;
                } else {
                    other += 1;
                }
            }
        }
        assert!(hw > other, "hw={hw} other={other}");
    }

    #[test]
    fn correct_samples_are_labeled_correct() {
        let cfg = small_cfg();
        let ds = collect_correct_samples(&cfg, 50, 5);
        assert_eq!(ds.len(), 50);
        assert!(ds.samples.iter().all(|s| s.label == Label::Correct));
        assert_eq!(ds.nr_features(), 5);
    }

    #[test]
    fn golden_trace_correct_samples_with_top_up() {
        let cfg = small_cfg();
        let trace = golden_trace(&cfg, None);
        // More samples than the walk produced, forcing the continuation.
        let n = trace.correct_features.len() + 25;
        let ds = trace.correct_samples(n);
        assert_eq!(ds.len(), n);
        assert!(ds.samples.iter().all(|s| s.label == Label::Correct));
    }

    #[test]
    fn dataset_from_records_labels_divergence() {
        let cfg = small_cfg();
        let res = run_campaign(&cfg, None);
        let ds = dataset_from_records(&res.records);
        assert!(!ds.is_empty());
        let (correct, incorrect) = ds.class_counts();
        assert!(
            correct > 0,
            "benign faults should contribute correct samples"
        );
        // Incorrect samples appear when faults slip past the handler.
        let _ = incorrect;
    }

    #[test]
    fn batch_reevaluation_matches_per_record_classify() {
        let cfg = small_cfg();
        let res = run_campaign(&cfg, None);
        let ds = dataset_from_records(&res.records);
        let tree = mltree::DecisionTree::train(&ds, &mltree::TrainConfig::decision_tree());
        let det = VmTransitionDetector::new(tree);
        let cm = evaluate_detector_on_records(&det, &res.records);
        assert_eq!(cm.total(), ds.len());
        // The batch path must agree with classifying each record alone.
        let mut expect = mltree::ConfusionMatrix::default();
        for r in &res.records {
            if let Some(f) = r.features {
                let actual = ds.samples[expect.total()].label;
                expect.record(actual, det.classify(&f));
            }
        }
        assert_eq!(cm, expect);
    }

    #[test]
    fn records_round_trip_through_json() {
        let mut cfg = small_cfg();
        cfg.injections = 20;
        cfg.threads = 1;
        let res = run_campaign(&cfg, None);
        let dir = std::env::temp_dir().join("xentry_campaign_test.json");
        res.save_json(&dir).unwrap();
        let back = CampaignResult::load_json(&dir).unwrap();
        assert_eq!(back.records.len(), res.records.len());
        for (a, b) in back.records.iter().zip(res.records.iter()) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.vmer, b.vmer);
        }
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn hvm_campaign_runs_and_detects() {
        let mut cfg = small_cfg();
        cfg.mode = sim_machine::VirtMode::Hvm;
        cfg.injections = 60;
        let res = run_campaign(&cfg, None);
        assert_eq!(res.records.len(), 60);
        let detected = res.records.iter().filter(|r| r.outcome.detected()).count();
        assert!(detected > 0, "HVM campaign produced no detections");
    }

    #[test]
    fn multibit_faults_manifest_at_least_as_often() {
        let cfg = small_cfg();
        let (single, multi) = multibit_study(&cfg, 80, 2, None, 7);
        assert_eq!(single.records.len(), multi.records.len());
        assert_eq!(single.records.len(), 80);
        let m1 = single
            .records
            .iter()
            .filter(|r| r.outcome.manifested())
            .count();
        let m2 = multi
            .records
            .iter()
            .filter(|r| r.outcome.manifested())
            .count();
        // Two simultaneous flips strictly add corruption surface; paired
        // sampling means the 2-bit campaign manifests at least ~as often.
        assert!(
            m2 + 5 >= m1,
            "2-bit faults should manifest at least as often: {m2} vs {m1}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut cfg = small_cfg();
        cfg.threads = 1;
        cfg.injections = 20;
        let a = run_campaign(&cfg, None);
        let b = run_campaign(&cfg, None);
        let oa: Vec<_> = a
            .records
            .iter()
            .map(|r| format!("{:?}", r.outcome))
            .collect();
        let ob: Vec<_> = b
            .records
            .iter()
            .map(|r| format!("{:?}", r.outcome))
            .collect();
        assert_eq!(oa, ob);
    }

    #[test]
    fn shared_trace_matches_fresh_campaign() {
        let mut cfg = small_cfg();
        cfg.injections = 24;
        let fresh = run_campaign(&cfg, None);
        let trace = golden_trace(&cfg, None);
        let reused = run_campaign_with(&cfg, &trace, None);
        assert_eq!(
            serde_json::to_string(&fresh).unwrap(),
            serde_json::to_string(&reused).unwrap()
        );
    }

    #[test]
    fn config_digest_ignores_threads_only() {
        let a = small_cfg();
        let mut b = a.clone();
        b.threads = 16;
        assert_eq!(a.digest(), b.digest());
        let mut c = a.clone();
        c.seed += 1;
        assert_ne!(a.digest(), c.digest());
        let mut d = a.clone();
        d.checkpoint_interval += 1;
        assert_ne!(a.digest(), d.digest());
    }
}
