//! Fault-injection campaigns (§V-A/B): parallel sweeps of thousands of
//! single-bit injections across benchmarks, producing the records behind
//! Fig. 8, 9, 10 and Table II, plus the labeled datasets the VM-transition
//! detector is trained on.
//!
//! The paper's setup: a simulated 4-core machine running Xen 4.1.2 with one
//! Dom0 and two para-virtualized DomUs executing the same benchmark;
//! injection points are chosen randomly while applications run; one fault
//! per run.

use crate::injection::{inject, prepare_point, InjectionRecord, InjectionSpec};
use guest_sim::{dom0_profile, load_workload, profile, Benchmark};
use mltree::{Dataset, Label};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use sim_machine::cpu::FlipTarget;
use sim_machine::VirtMode;
use xen_like::{DomainSpec, IrqProfile, Platform, Topology};
use xentry::{VmTransitionDetector, Xentry, FEATURE_NAMES};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    pub benchmark: Benchmark,
    pub mode: VirtMode,
    /// Total injections to perform.
    pub injections: usize,
    /// Activations to run before the first injection point.
    pub warmup: usize,
    /// Injections performed per snapshot point (amortizes golden runs).
    pub per_point: usize,
    /// Activations separating consecutive snapshot points.
    pub stride: usize,
    /// Post-VM-entry observation window (activations).
    pub post_window: usize,
    /// Guest kernel scale divider (campaigns shrink guest compute; handler
    /// behaviour — the thing under test — is unchanged).
    pub kernel_scale: u64,
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl CampaignConfig {
    /// A paper-shaped campaign, sized down by `injections`.
    pub fn paper(benchmark: Benchmark, injections: usize, seed: u64) -> CampaignConfig {
        CampaignConfig {
            benchmark,
            mode: VirtMode::Para,
            injections,
            warmup: 60,
            per_point: 4,
            stride: 3,
            post_window: 6,
            kernel_scale: 24,
            seed,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

/// Build the campaign platform: Dom0 plus two DomUs running `benchmark`
/// (the paper's fault-injection configuration), DomU 1 pinned to CPU 1.
pub fn campaign_platform(cfg: &CampaignConfig, seed: u64) -> Platform {
    let topo = Topology {
        nr_cpus: 3,
        domains: vec![DomainSpec { nr_vcpus: 1 }; 3],
        virt_mode: cfg.mode,
        seed,
        cycle_model: Default::default(),
    };
    let (mut plat, _img) = Platform::new(topo);
    let prof = profile(cfg.benchmark, cfg.mode).scaled(cfg.kernel_scale);
    load_workload(
        &mut plat.machine,
        0,
        &dom0_profile(cfg.mode).scaled(cfg.kernel_scale),
    );
    load_workload(&mut plat.machine, 1, &prof);
    load_workload(&mut plat.machine, 2, &prof);
    plat.irq = IrqProfile {
        // Faster virtual tick keeps campaign activations cheap while
        // preserving the interrupt mix.
        tick_period: 400_000,
        dev_irq_period: (prof.dev_irq_period / 4).max(50_000),
    };
    plat
}

/// Result of a campaign.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct CampaignResult {
    pub records: Vec<InjectionRecord>,
}

impl CampaignResult {
    /// Merge another result in.
    pub fn extend(&mut self, other: CampaignResult) {
        self.records.extend(other.records);
    }

    /// Persist the raw records as JSON (the paper's stored injection
    /// traces; downstream analysis can re-aggregate without re-running).
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(
            path,
            serde_json::to_string(self).expect("records serialize"),
        )
    }

    /// Load records saved by [`CampaignResult::save_json`].
    pub fn load_json(path: impl AsRef<std::path::Path>) -> std::io::Result<CampaignResult> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

fn random_spec(rng: &mut ChaCha8Rng, golden_len: u64) -> InjectionSpec {
    let targets = FlipTarget::all();
    InjectionSpec {
        target: targets[rng.gen_range(0..targets.len())],
        bit: rng.gen_range(0..64),
        at_step: rng.gen_range(0..golden_len.max(1)),
    }
}

/// One worker's share of the campaign.
fn run_worker(
    cfg: &CampaignConfig,
    worker: usize,
    injections: usize,
    detector: Option<&VmTransitionDetector>,
) -> CampaignResult {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ (worker as u64).wrapping_mul(0x9E37));
    let mut plat = campaign_platform(cfg, cfg.seed + 31 * worker as u64);
    let cpu = 1; // DomU 1's CPU
    let mut collector = Xentry::collector();
    plat.boot(cpu, &mut collector);
    for _ in 0..cfg.warmup {
        let act = plat.run_activation(cpu, &mut collector);
        assert!(act.outcome.is_healthy(), "warmup died: {:?}", act.outcome);
    }

    let mut result = CampaignResult::default();
    'outer: while result.records.len() < injections {
        // Advance to the next snapshot point along the fault-free trace.
        for _ in 0..cfg.stride {
            let act = plat.run_activation(cpu, &mut collector);
            assert!(act.outcome.is_healthy(), "trace died: {:?}", act.outcome);
        }
        let (reason, _gc) = plat.run_to_exit(cpu);
        let at_exit = plat.clone();
        let Some(point) = prepare_point(at_exit, cpu, 1, reason, cfg.post_window, detector) else {
            // Finish this activation on the live platform and move on.
            plat.run_handler(cpu, reason, 0, &mut collector);
            continue;
        };
        for _ in 0..cfg.per_point {
            if result.records.len() >= injections {
                break;
            }
            let spec = random_spec(&mut rng, point.golden_len);
            result.records.push(inject(&point, spec, detector));
            if result.records.len() >= injections {
                break 'outer;
            }
        }
        // Resume the live (fault-free) platform past this activation.
        plat.run_handler(cpu, reason, 0, &mut collector);
    }
    result
}

/// Run a campaign, optionally with a deployed VM-transition detector.
pub fn run_campaign(
    cfg: &CampaignConfig,
    detector: Option<&VmTransitionDetector>,
) -> CampaignResult {
    let threads = cfg.threads.max(1).min(cfg.injections.max(1));
    let share = cfg.injections / threads;
    let extra = cfg.injections % threads;
    let mut result = CampaignResult::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let cfg = cfg.clone();
                let n = share + usize::from(w < extra);
                s.spawn(move || run_worker(&cfg, w, n, detector))
            })
            .collect();
        for h in handles {
            result.extend(h.join().expect("worker panicked"));
        }
    });
    result
}

/// Collect `n` fault-free feature samples (label `Correct`) from a
/// campaign-shaped platform.
pub fn collect_correct_samples(cfg: &CampaignConfig, n: usize, seed: u64) -> Dataset {
    let mut plat = campaign_platform(cfg, seed);
    let cpu = 1;
    let mut shim = Xentry::collector();
    plat.boot(cpu, &mut shim);
    let mut ds = Dataset::new(&FEATURE_NAMES);
    // Skip the first few activations (cold structures).
    for _ in 0..20 {
        plat.run_activation(cpu, &mut shim);
    }
    shim.trace.clear();
    while shim.trace.len() < n {
        let act = plat.run_activation(cpu, &mut shim);
        assert!(act.outcome.is_healthy(), "fault-free run died");
    }
    for f in shim.trace.iter().take(n) {
        ds.push(f.into_sample(Label::Correct));
    }
    ds
}

/// Build a labeled dataset from campaign records: faulty executions that
/// completed VM entry contribute samples labeled by whether they actually
/// diverged from the golden run (the paper's trace-analysis labeling).
pub fn dataset_from_records(records: &[InjectionRecord]) -> Dataset {
    let mut ds = Dataset::new(&FEATURE_NAMES);
    for r in records {
        let Some(f) = r.features else { continue };
        use crate::outcome::FaultOutcome::*;
        let label = match &r.outcome {
            Benign => Label::Correct,
            MaskedAfterEntry | Undetected { .. } => Label::Incorrect,
            Detected { technique, .. } => {
                // Only executions that reached VM entry have features;
                // VM-transition positives and late detections are incorrect
                // executions by construction.
                let _ = technique;
                Label::Incorrect
            }
        };
        ds.push(f.into_sample(label));
    }
    ds
}

/// Re-classify the feature vectors of recorded injections against a
/// detector, pooling a confusion matrix versus the trace-analysis ground
/// truth ([`dataset_from_records`] labels). Runs the compiled batch path,
/// so post-campaign what-if evaluation of candidate models costs one
/// arena sweep instead of a boxed walk per record.
pub fn evaluate_detector_on_records(
    detector: &VmTransitionDetector,
    records: &[InjectionRecord],
) -> mltree::ConfusionMatrix {
    let ds = dataset_from_records(records);
    mltree::evaluate_compiled(detector.compiled(), &ds)
}

/// Multi-bit-upset comparison: run parallel single-bit and k-bit campaigns
/// from the same trace and compare manifestation and coverage — the
/// beyond-ECC scenario the paper motivates in §V-B.
pub fn multibit_study(
    cfg: &CampaignConfig,
    injections: usize,
    bits_per_fault: usize,
    detector: Option<&VmTransitionDetector>,
    seed: u64,
) -> (CampaignResult, CampaignResult) {
    assert!(
        bits_per_fault >= 2,
        "use run_campaign for single-bit faults"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut plat = campaign_platform(cfg, seed);
    let cpu = 1;
    let mut collector = Xentry::collector();
    plat.boot(cpu, &mut collector);
    for _ in 0..cfg.warmup {
        assert!(plat
            .run_activation(cpu, &mut collector)
            .outcome
            .is_healthy());
    }
    let mut single = CampaignResult::default();
    let mut multi = CampaignResult::default();
    let targets = FlipTarget::all();
    while single.records.len() < injections {
        for _ in 0..cfg.stride {
            assert!(plat
                .run_activation(cpu, &mut collector)
                .outcome
                .is_healthy());
        }
        let (reason, _) = plat.run_to_exit(cpu);
        let Some(point) = crate::injection::prepare_point(
            plat.clone(),
            cpu,
            1,
            reason,
            cfg.post_window,
            detector,
        ) else {
            plat.run_handler(cpu, reason, 0, &mut collector);
            continue;
        };
        for _ in 0..cfg.per_point {
            if single.records.len() >= injections {
                break;
            }
            let at_step = rng.gen_range(0..point.golden_len.max(1));
            let flips: Vec<(FlipTarget, u8)> = (0..bits_per_fault)
                .map(|_| {
                    (
                        targets[rng.gen_range(0..targets.len())],
                        rng.gen_range(0..64),
                    )
                })
                .collect();
            // Same point, same step: the 1-bit fault is the first flip of
            // the k-bit fault, so the comparison is paired.
            single.records.push(crate::injection::inject_with_flips(
                &point,
                &flips[..1],
                at_step,
                detector,
            ));
            multi.records.push(crate::injection::inject_with_flips(
                &point, &flips, at_step, detector,
            ));
        }
        plat.run_handler(cpu, reason, 0, &mut collector);
    }
    (single, multi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::FaultOutcome;

    fn small_cfg() -> CampaignConfig {
        let mut c = CampaignConfig::paper(Benchmark::Freqmine, 60, 11);
        c.threads = 2;
        c.warmup = 30;
        c.post_window = 4;
        c
    }

    #[test]
    fn campaign_produces_requested_injections() {
        let cfg = small_cfg();
        let res = run_campaign(&cfg, None);
        assert_eq!(res.records.len(), 60);
        // A healthy mix: some benign, some detected (exceptions dominate).
        let benign = res
            .records
            .iter()
            .filter(|r| !r.outcome.manifested())
            .count();
        let detected = res.records.iter().filter(|r| r.outcome.detected()).count();
        assert!(benign > 0, "no benign faults in 60 injections?");
        assert!(detected > 0, "no detections in 60 injections?");
    }

    #[test]
    fn hw_exceptions_dominate_detections() {
        // Fig. 8: "Most of errors (85.1%) are detected by the hardware
        // exceptions" — the shape must hold even in a small campaign.
        let mut cfg = small_cfg();
        cfg.injections = 120;
        let res = run_campaign(&cfg, None);
        let mut hw = 0;
        let mut other = 0;
        for r in &res.records {
            if let FaultOutcome::Detected { technique, .. } = &r.outcome {
                if *technique == xentry::Technique::HwException {
                    hw += 1;
                } else {
                    other += 1;
                }
            }
        }
        assert!(hw > other, "hw={hw} other={other}");
    }

    #[test]
    fn correct_samples_are_labeled_correct() {
        let cfg = small_cfg();
        let ds = collect_correct_samples(&cfg, 50, 5);
        assert_eq!(ds.len(), 50);
        assert!(ds.samples.iter().all(|s| s.label == Label::Correct));
        assert_eq!(ds.nr_features(), 5);
    }

    #[test]
    fn dataset_from_records_labels_divergence() {
        let cfg = small_cfg();
        let res = run_campaign(&cfg, None);
        let ds = dataset_from_records(&res.records);
        assert!(!ds.is_empty());
        let (correct, incorrect) = ds.class_counts();
        assert!(
            correct > 0,
            "benign faults should contribute correct samples"
        );
        // Incorrect samples appear when faults slip past the handler.
        let _ = incorrect;
    }

    #[test]
    fn batch_reevaluation_matches_per_record_classify() {
        let cfg = small_cfg();
        let res = run_campaign(&cfg, None);
        let ds = dataset_from_records(&res.records);
        let tree = mltree::DecisionTree::train(&ds, &mltree::TrainConfig::decision_tree());
        let det = VmTransitionDetector::new(tree);
        let cm = evaluate_detector_on_records(&det, &res.records);
        assert_eq!(cm.total(), ds.len());
        // The batch path must agree with classifying each record alone.
        let mut expect = mltree::ConfusionMatrix::default();
        for r in &res.records {
            if let Some(f) = r.features {
                let actual = ds.samples[expect.total()].label;
                expect.record(actual, det.classify(&f));
            }
        }
        assert_eq!(cm, expect);
    }

    #[test]
    fn records_round_trip_through_json() {
        let mut cfg = small_cfg();
        cfg.injections = 20;
        cfg.threads = 1;
        let res = run_campaign(&cfg, None);
        let dir = std::env::temp_dir().join("xentry_campaign_test.json");
        res.save_json(&dir).unwrap();
        let back = CampaignResult::load_json(&dir).unwrap();
        assert_eq!(back.records.len(), res.records.len());
        for (a, b) in back.records.iter().zip(res.records.iter()) {
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.vmer, b.vmer);
        }
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn hvm_campaign_runs_and_detects() {
        let mut cfg = small_cfg();
        cfg.mode = sim_machine::VirtMode::Hvm;
        cfg.injections = 60;
        let res = run_campaign(&cfg, None);
        assert_eq!(res.records.len(), 60);
        let detected = res.records.iter().filter(|r| r.outcome.detected()).count();
        assert!(detected > 0, "HVM campaign produced no detections");
    }

    #[test]
    fn multibit_faults_manifest_at_least_as_often() {
        let cfg = small_cfg();
        let (single, multi) = multibit_study(&cfg, 80, 2, None, 7);
        assert_eq!(single.records.len(), multi.records.len());
        let m1 = single
            .records
            .iter()
            .filter(|r| r.outcome.manifested())
            .count();
        let m2 = multi
            .records
            .iter()
            .filter(|r| r.outcome.manifested())
            .count();
        // Two simultaneous flips strictly add corruption surface; paired
        // sampling means the 2-bit campaign manifests at least ~as often.
        assert!(
            m2 + 5 >= m1,
            "2-bit faults should manifest at least as often: {m2} vs {m1}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut cfg = small_cfg();
        cfg.threads = 1;
        cfg.injections = 20;
        let a = run_campaign(&cfg, None);
        let b = run_campaign(&cfg, None);
        let oa: Vec<_> = a
            .records
            .iter()
            .map(|r| format!("{:?}", r.outcome))
            .collect();
        let ob: Vec<_> = b
            .records
            .iter()
            .map(|r| format!("{:?}", r.outcome))
            .collect();
        assert_eq!(oa, ob);
    }
}
