//! Campaign aggregation: the numbers behind Fig. 8 (overall coverage by
//! technique), Fig. 9 (long-latency coverage by consequence), Fig. 10
//! (detection-latency CDF) and Table II (undetected-fault breakdown).

use crate::injection::InjectionRecord;
use crate::outcome::{Consequence, FaultOutcome, UndetectedCategory};
use serde::{Deserialize, Serialize};
use xentry::Technique;

/// Fig. 8 row: detection breakdown over *manifested* faults.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CoverageBreakdown {
    pub manifested: usize,
    pub hw_exception: usize,
    pub sw_assertion: usize,
    pub vm_transition: usize,
    pub undetected: usize,
}

impl CoverageBreakdown {
    /// Overall detection coverage.
    pub fn coverage(&self) -> f64 {
        if self.manifested == 0 {
            return 0.0;
        }
        (self.manifested - self.undetected) as f64 / self.manifested as f64
    }

    /// Fraction detected by a given technique.
    pub fn fraction(&self, n: usize) -> f64 {
        if self.manifested == 0 {
            return 0.0;
        }
        n as f64 / self.manifested as f64
    }
}

/// Compute the Fig. 8 breakdown.
pub fn coverage_breakdown(records: &[InjectionRecord]) -> CoverageBreakdown {
    let mut b = CoverageBreakdown::default();
    for r in records {
        if !r.outcome.manifested() {
            continue;
        }
        b.manifested += 1;
        match &r.outcome {
            FaultOutcome::Detected { technique, .. } => match technique {
                Technique::HwException => b.hw_exception += 1,
                Technique::SwAssertion => b.sw_assertion += 1,
                Technique::VmTransition => b.vm_transition += 1,
            },
            FaultOutcome::Undetected { .. } => b.undetected += 1,
            _ => unreachable!("manifested() excluded the rest"),
        }
    }
    b
}

/// Fig. 9 row: detection coverage of long-latency errors, grouped by the
/// consequence they would have had.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ConsequenceRow {
    pub total: usize,
    pub detected: usize,
}

impl ConsequenceRow {
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.detected as f64 / self.total as f64
    }
}

/// Fig. 9 table over the four long-latency consequence classes.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LongLatencyCoverage {
    pub app_sdc: ConsequenceRow,
    pub app_crash: ConsequenceRow,
    pub one_vm: ConsequenceRow,
    pub all_vm: ConsequenceRow,
}

/// Compute Fig. 9 from records. A record participates when its consequence
/// class is known and long-latency (the fault propagated past VM entry in
/// the reference run).
pub fn long_latency_coverage(records: &[InjectionRecord]) -> LongLatencyCoverage {
    let mut out = LongLatencyCoverage::default();
    for r in records {
        let (consequence, detected) = match &r.outcome {
            FaultOutcome::Detected {
                consequence: Some(c),
                ..
            } => (*c, true),
            FaultOutcome::Undetected { consequence, .. } => (*consequence, false),
            _ => continue,
        };
        let row = match consequence {
            Consequence::AppSdc => &mut out.app_sdc,
            Consequence::AppCrash => &mut out.app_crash,
            Consequence::OneVmFailure => &mut out.one_vm,
            Consequence::AllVmFailure => &mut out.all_vm,
            Consequence::HypervisorCrash => continue, // short latency
        };
        row.total += 1;
        row.detected += detected as usize;
    }
    out
}

/// Detection latencies (instructions) grouped by technique — Fig. 10.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyData {
    pub hw_exception: Vec<u64>,
    pub sw_assertion: Vec<u64>,
    pub vm_transition: Vec<u64>,
}

impl LatencyData {
    /// CDF evaluation: fraction of latencies `<= x`.
    pub fn cdf(latencies: &[u64], x: u64) -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        latencies.iter().filter(|&&l| l <= x).count() as f64 / latencies.len() as f64
    }

    /// Percentile (0..=100).
    pub fn percentile(latencies: &[u64], p: f64) -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let mut v = latencies.to_vec();
        v.sort_unstable();
        let idx = ((v.len() - 1) as f64 * p / 100.0).round() as usize;
        v[idx]
    }
}

/// Gather latency samples from detected records. With
/// `same_activation_only`, restrict to detections that fired before the
/// faulted activation's VM entry — the paper's Fig. 10 regime ("all these
/// faults are detected before starting VM executions").
pub fn latency_data_filtered(
    records: &[InjectionRecord],
    same_activation_only: bool,
) -> LatencyData {
    let mut d = LatencyData::default();
    for r in records {
        if let FaultOutcome::Detected {
            technique,
            latency,
            same_activation,
            ..
        } = &r.outcome
        {
            if same_activation_only && !same_activation {
                continue;
            }
            match technique {
                Technique::HwException => d.hw_exception.push(*latency),
                Technique::SwAssertion => d.sw_assertion.push(*latency),
                Technique::VmTransition => d.vm_transition.push(*latency),
            }
        }
    }
    d
}

/// All detection latencies (including late detections).
pub fn latency_data(records: &[InjectionRecord]) -> LatencyData {
    latency_data_filtered(records, false)
}

/// Table II: breakdown of undetected faults by corruption site.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct UndetectedBreakdown {
    pub total: usize,
    pub mis_classified: usize,
    pub stack_values: usize,
    pub time_values: usize,
    pub other_values: usize,
}

impl UndetectedBreakdown {
    pub fn fraction(&self, n: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        n as f64 / self.total as f64
    }
}

/// Compute Table II.
pub fn undetected_breakdown(records: &[InjectionRecord]) -> UndetectedBreakdown {
    let mut b = UndetectedBreakdown::default();
    for r in records {
        if let FaultOutcome::Undetected { category, .. } = &r.outcome {
            b.total += 1;
            match category {
                UndetectedCategory::MisClassified => b.mis_classified += 1,
                UndetectedCategory::StackValues => b.stack_values += 1,
                UndetectedCategory::TimeValues => b.time_values += 1,
                UndetectedCategory::OtherValues => b.other_values += 1,
            }
        }
    }
    b
}

/// Per-flip-target vulnerability row: how often flips of one register
/// manifest, and how often they escape detection — the architectural
/// vulnerability analysis classic fault-injection studies report.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TargetRow {
    pub target: String,
    pub injections: usize,
    pub manifested: usize,
    pub undetected: usize,
}

impl TargetRow {
    /// Fraction of injections into this target that manifested.
    pub fn manifestation_rate(&self) -> f64 {
        if self.injections == 0 {
            return 0.0;
        }
        self.manifested as f64 / self.injections as f64
    }

    /// Fraction of manifested faults that escaped detection.
    pub fn escape_rate(&self) -> f64 {
        if self.manifested == 0 {
            return 0.0;
        }
        self.undetected as f64 / self.manifested as f64
    }
}

/// Aggregate records per flip target (RIP, RSP, each GPR, RFLAGS), sorted
/// by manifestation rate.
pub fn target_breakdown(records: &[InjectionRecord]) -> Vec<TargetRow> {
    let mut map: std::collections::BTreeMap<String, TargetRow> = Default::default();
    for r in records {
        let row = map.entry(r.target.name()).or_insert_with(|| TargetRow {
            target: r.target.name(),
            ..Default::default()
        });
        row.injections += 1;
        if r.outcome.manifested() {
            row.manifested += 1;
        }
        if matches!(r.outcome, FaultOutcome::Undetected { .. }) {
            row.undetected += 1;
        }
    }
    let mut rows: Vec<TargetRow> = map.into_values().collect();
    rows.sort_by(|a, b| {
        b.manifestation_rate()
            .partial_cmp(&a.manifestation_rate())
            .unwrap()
    });
    rows
}

/// One cell of the per-bit vulnerability map: outcome counts for every
/// injection that struck a given (target, bit-position) pair.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct VulnCell {
    /// Caught by any technique before the consequence landed.
    pub detected: usize,
    /// Escaped detection and corrupted application output (SDC).
    pub silent: usize,
    /// Escaped detection and crashed an app, a VM or the hypervisor.
    pub crash: usize,
    /// Never manifested (masked in the handler or at VM entry).
    pub benign: usize,
}

impl VulnCell {
    fn count(&mut self, outcome: &FaultOutcome) {
        match outcome {
            FaultOutcome::Detected { .. } => self.detected += 1,
            FaultOutcome::Undetected {
                consequence: Consequence::AppSdc,
                ..
            } => self.silent += 1,
            FaultOutcome::Undetected { .. } => self.crash += 1,
            FaultOutcome::Benign | FaultOutcome::MaskedAfterEntry => self.benign += 1,
        }
    }

    /// Injections aggregated into this cell.
    pub fn total(&self) -> usize {
        self.detected + self.silent + self.crash + self.benign
    }
}

/// Per-bit vulnerability map: `target name -> bit position -> outcome
/// counts`. BTreeMaps keep iteration (and the serialized figure) in a
/// stable order regardless of how the records were produced.
pub type VulnMap = std::collections::BTreeMap<String, std::collections::BTreeMap<u8, VulnCell>>;

/// Build a vulnerability map from `(target, bit, outcome)` triples.
pub fn vulnerability_map<'a>(
    cells: impl IntoIterator<Item = (String, u8, &'a FaultOutcome)>,
) -> VulnMap {
    let mut map = VulnMap::new();
    for (target, bit, outcome) in cells {
        map.entry(target)
            .or_default()
            .entry(bit)
            .or_default()
            .count(outcome);
    }
    map
}

/// Vulnerability map of a single-bit register campaign.
pub fn vulnmap_from_records(records: &[InjectionRecord]) -> VulnMap {
    vulnerability_map(records.iter().map(|r| (r.target.name(), r.bit, &r.outcome)))
}

/// Vulnerability map of an extended-model campaign ([`crate::ModelRecord`]):
/// bursts bucket under their anchor bit, PTE strikes under the struck PTE
/// bit, PMC strikes under the counter bit.
pub fn vulnmap_from_model_records(records: &[crate::ModelRecord]) -> VulnMap {
    vulnerability_map(
        records
            .iter()
            .map(|r| (r.target.clone(), r.bit, &r.outcome)),
    )
}

/// Merge vulnerability maps (e.g. the register map with a model map, or
/// maps from different workloads) cell-wise.
pub fn merge_vulnmaps(maps: impl IntoIterator<Item = VulnMap>) -> VulnMap {
    let mut out = VulnMap::new();
    for map in maps {
        for (target, bits) in map {
            let dst = out.entry(target).or_default();
            for (bit, cell) in bits {
                let d = dst.entry(bit).or_default();
                d.detected += cell.detected;
                d.silent += cell.silent;
                d.crash += cell.crash;
                d.benign += cell.benign;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::FaultOutcome;
    use sim_machine::cpu::FlipTarget;
    use sim_machine::Reg;
    use xentry::FeatureVec;

    fn rec(outcome: FaultOutcome) -> InjectionRecord {
        let f = FeatureVec {
            vmer: 1,
            rt: 10,
            br: 2,
            rm: 3,
            wm: 1,
        };
        InjectionRecord {
            vmer: 1,
            target: FlipTarget::Gpr(Reg::Rax),
            bit: 0,
            at_step: 0,
            outcome,
            features: Some(f),
            golden_features: f,
        }
    }

    #[test]
    fn coverage_breakdown_partitions() {
        let records = vec![
            rec(FaultOutcome::Benign),
            rec(FaultOutcome::Detected {
                technique: Technique::HwException,
                latency: 10,
                same_activation: true,
                consequence: None,
            }),
            rec(FaultOutcome::Detected {
                technique: Technique::SwAssertion,
                latency: 20,
                same_activation: true,
                consequence: None,
            }),
            rec(FaultOutcome::Detected {
                technique: Technique::VmTransition,
                latency: 300,
                same_activation: true,
                consequence: Some(Consequence::AppSdc),
            }),
            rec(FaultOutcome::Undetected {
                consequence: Consequence::AppSdc,
                category: UndetectedCategory::TimeValues,
            }),
        ];
        let b = coverage_breakdown(&records);
        assert_eq!(b.manifested, 4);
        assert_eq!(b.hw_exception, 1);
        assert_eq!(b.sw_assertion, 1);
        assert_eq!(b.vm_transition, 1);
        assert_eq!(b.undetected, 1);
        assert!((b.coverage() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn long_latency_rows_count_detected_and_not() {
        let records = vec![
            rec(FaultOutcome::Detected {
                technique: Technique::VmTransition,
                latency: 100,
                same_activation: true,
                consequence: Some(Consequence::AppSdc),
            }),
            rec(FaultOutcome::Undetected {
                consequence: Consequence::AppSdc,
                category: UndetectedCategory::TimeValues,
            }),
            rec(FaultOutcome::Detected {
                technique: Technique::HwException,
                latency: 5,
                same_activation: true,
                consequence: Some(Consequence::HypervisorCrash),
            }),
        ];
        let cov = long_latency_coverage(&records);
        assert_eq!(cov.app_sdc.total, 2);
        assert_eq!(cov.app_sdc.detected, 1);
        assert!((cov.app_sdc.rate() - 0.5).abs() < 1e-12);
        // HypervisorCrash is short-latency: excluded.
        assert_eq!(cov.app_crash.total + cov.one_vm.total + cov.all_vm.total, 0);
    }

    #[test]
    fn latency_cdf_and_percentiles() {
        let lat = vec![10, 20, 30, 40, 1000];
        assert!((LatencyData::cdf(&lat, 30) - 0.6).abs() < 1e-12);
        assert_eq!(LatencyData::percentile(&lat, 50.0), 30);
        assert_eq!(LatencyData::percentile(&lat, 100.0), 1000);
        assert_eq!(LatencyData::percentile(&[], 50.0), 0);
    }

    #[test]
    fn target_breakdown_counts_per_register() {
        use sim_machine::cpu::FlipTarget as FT;
        let mut records = vec![rec(FaultOutcome::Benign); 3];
        records[0].target = FT::Rip;
        records[0].outcome = FaultOutcome::Detected {
            technique: Technique::HwException,
            latency: 1,
            same_activation: true,
            consequence: None,
        };
        records[1].target = FT::Rip;
        records[2].target = FT::Gpr(Reg::Rbx);
        records[2].outcome = FaultOutcome::Undetected {
            consequence: Consequence::AppSdc,
            category: UndetectedCategory::OtherValues,
        };
        let rows = target_breakdown(&records);
        let rip = rows.iter().find(|r| r.target == "rip").unwrap();
        assert_eq!(rip.injections, 2);
        assert_eq!(rip.manifested, 1);
        assert_eq!(rip.undetected, 0);
        let rbx = rows.iter().find(|r| r.target == "rbx").unwrap();
        assert_eq!(rbx.escape_rate(), 1.0);
        // Sorted by manifestation rate: rbx (100%) before rip (50%).
        assert_eq!(rows[0].target, "rbx");
    }

    #[test]
    fn undetected_breakdown_sums() {
        let records = vec![
            rec(FaultOutcome::Undetected {
                consequence: Consequence::AppSdc,
                category: UndetectedCategory::TimeValues,
            }),
            rec(FaultOutcome::Undetected {
                consequence: Consequence::AppCrash,
                category: UndetectedCategory::StackValues,
            }),
            rec(FaultOutcome::Undetected {
                consequence: Consequence::AppSdc,
                category: UndetectedCategory::MisClassified,
            }),
            rec(FaultOutcome::Benign),
        ];
        let b = undetected_breakdown(&records);
        assert_eq!(b.total, 3);
        assert_eq!(b.time_values, 1);
        assert_eq!(b.stack_values, 1);
        assert_eq!(b.mis_classified, 1);
        assert_eq!(b.other_values, 0);
    }

    #[test]
    fn vulnmap_buckets_by_target_and_bit() {
        let mut records = vec![rec(FaultOutcome::Benign); 4];
        records[0].bit = 7;
        records[0].outcome = FaultOutcome::Detected {
            technique: Technique::HwException,
            latency: 1,
            same_activation: true,
            consequence: None,
        };
        records[1].bit = 7;
        records[1].outcome = FaultOutcome::Undetected {
            consequence: Consequence::AppSdc,
            category: UndetectedCategory::OtherValues,
        };
        records[2].bit = 7;
        records[2].outcome = FaultOutcome::Undetected {
            consequence: Consequence::HypervisorCrash,
            category: UndetectedCategory::OtherValues,
        };
        records[3].bit = 3;
        records[3].outcome = FaultOutcome::MaskedAfterEntry;
        let map = vulnmap_from_records(&records);
        let rax = &map["rax"];
        let hot = rax[&7];
        assert_eq!(
            (hot.detected, hot.silent, hot.crash, hot.benign),
            (1, 1, 1, 0)
        );
        assert_eq!(hot.total(), 3);
        // MaskedAfterEntry counts as benign, under its own bit.
        assert_eq!(rax[&3].benign, 1);
    }

    #[test]
    fn vulnmaps_merge_cell_wise() {
        let a = vulnerability_map(vec![("rip".to_string(), 0u8, &FaultOutcome::Benign)]);
        let b = vulnerability_map(vec![
            (
                "rip".to_string(),
                0u8,
                &FaultOutcome::Detected {
                    technique: Technique::HwException,
                    latency: 1,
                    same_activation: true,
                    consequence: None,
                },
            ),
            ("pte.present".to_string(), 0u8, &FaultOutcome::Benign),
        ]);
        let merged = merge_vulnmaps(vec![a, b]);
        assert_eq!(merged["rip"][&0].benign, 1);
        assert_eq!(merged["rip"][&0].detected, 1);
        assert_eq!(merged["pte.present"][&0].benign, 1);
        assert_eq!(merged.len(), 2);
    }
}
