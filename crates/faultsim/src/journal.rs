//! Campaign journaling: crash-safe persistence of completed work chunks.
//!
//! A campaign is divided into checkpoint-aligned chunks (see
//! [`crate::campaign`]); after each chunk completes, the journal is
//! rewritten atomically (temp file + rename, so a kill mid-write leaves
//! either the old journal or the new one, never a torn file). A restarted
//! campaign with the same configuration loads the journal and recomputes
//! only the missing chunks — the engine is deterministic, so the resumed
//! result is bit-identical to an uninterrupted run.

use crate::injection::InjectionRecord;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Write `bytes` to `path` atomically: write a sibling temp file, then
/// rename over the destination. Readers never observe a partial file.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// On-disk record of a partially completed campaign, generic over the
/// per-injection record type: classification campaigns journal
/// [`InjectionRecord`]s, recovery campaigns journal
/// [`crate::campaign::RecoveryRecord`]s.
#[derive(Debug, Clone)]
pub struct CampaignJournal<R = InjectionRecord> {
    /// Fingerprint of the [`crate::CampaignConfig`] that produced the
    /// chunks (stable across processes — see `CampaignConfig::digest`). A
    /// journal from a different configuration is ignored, not resumed.
    pub config_digest: u64,
    /// Total chunks the campaign will produce when complete.
    pub chunks_total: usize,
    /// Completed chunks, keyed by chunk index.
    pub chunks: BTreeMap<usize, Vec<R>>,
}

// The vendored serde derive does not support generic types, so the
// journal lowers itself through the value data model by hand.
impl<R: Serialize> Serialize for CampaignJournal<R> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("config_digest".into(), self.config_digest.to_value()),
            ("chunks_total".into(), self.chunks_total.to_value()),
            ("chunks".into(), self.chunks.to_value()),
        ])
    }
}

impl<R: Deserialize> Deserialize for CampaignJournal<R> {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::expected("object", "CampaignJournal", v))?;
        Ok(CampaignJournal {
            config_digest: serde::field(obj, "config_digest", "CampaignJournal")?,
            chunks_total: serde::field(obj, "chunks_total", "CampaignJournal")?,
            chunks: serde::field(obj, "chunks", "CampaignJournal")?,
        })
    }
}

impl<R: Serialize + Deserialize> CampaignJournal<R> {
    /// Fresh journal for a campaign.
    pub fn new(config_digest: u64, chunks_total: usize) -> CampaignJournal<R> {
        CampaignJournal {
            config_digest,
            chunks_total,
            chunks: BTreeMap::new(),
        }
    }

    /// Load a journal, returning `None` when the file is absent, unreadable
    /// or does not match the expected configuration — in every such case
    /// the campaign simply starts from scratch.
    pub fn load_matching(
        path: &Path,
        config_digest: u64,
        chunks_total: usize,
    ) -> Option<CampaignJournal<R>> {
        let text = std::fs::read_to_string(path).ok()?;
        let j: CampaignJournal<R> = serde_json::from_str(&text).ok()?;
        (j.config_digest == config_digest && j.chunks_total == chunks_total).then_some(j)
    }

    /// Persist atomically.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        write_atomic(
            path,
            serde_json::to_string(self)
                .expect("journal serializes")
                .as_bytes(),
        )
    }

    /// Whether every chunk is present.
    pub fn is_complete(&self) -> bool {
        self.chunks.len() == self.chunks_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_replaces_whole_file() {
        let dir = std::env::temp_dir().join("xentry_journal_test");
        let path = dir.join("j.json");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn journal_round_trip_and_mismatch_rejection() {
        let dir = std::env::temp_dir().join("xentry_journal_rt");
        let path = dir.join("campaign.journal");
        let mut j: CampaignJournal = CampaignJournal::new(0xABCD, 3);
        j.chunks.insert(1, Vec::new());
        j.save(&path).unwrap();
        let back: CampaignJournal = CampaignJournal::load_matching(&path, 0xABCD, 3).unwrap();
        assert_eq!(back.chunks.len(), 1);
        assert!(back.chunks.contains_key(&1));
        assert!(!back.is_complete());
        // Wrong digest or chunk count → treated as absent.
        assert!(CampaignJournal::<InjectionRecord>::load_matching(&path, 0xABCE, 3).is_none());
        assert!(CampaignJournal::<InjectionRecord>::load_matching(&path, 0xABCD, 4).is_none());
        let _ = std::fs::remove_dir_all(dir);
    }
}
