//! Entropy-split decision trees over integer features.
//!
//! Training follows the paper's §III-B description: at each node, candidate
//! cut points are evaluated by the expected entropy reduction
//! `D(T, T_L, T_R) = Entropy(T) − (P_L·Entropy(T_L) + P_R·Entropy(T_R))`,
//! and the split maximizing `D` wins. The *random tree* variant (WEKA's
//! `RandomTree`, which the paper selects for its slightly higher accuracy)
//! considers only `⌊log₂(#features)⌋ + 1` randomly drawn features per node.

use crate::dataset::{Dataset, Label, Sample};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A tree node. Thresholds are integers; traversal is branch-and-compare
/// only, as required for in-hypervisor deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Node {
    /// Majority-class leaf with the training counts that reached it.
    Leaf {
        label: Label,
        correct: usize,
        incorrect: usize,
    },
    /// Binary split: `features[feature] <= threshold` goes left.
    Split {
        feature: usize,
        threshold: u64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    /// Classify a feature vector — the single shared traversal every
    /// boxed-walker caller (tree, forest voting, pruning) goes through.
    pub fn classify(&self, features: &[u64]) -> Label {
        let mut node = self;
        loop {
            match node {
                Node::Leaf { label, .. } => return *label,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Comparisons performed to classify `features`.
    pub fn classify_cost(&self, features: &[u64]) -> usize {
        let mut node = self;
        let mut cost = 0;
        loop {
            match node {
                Node::Leaf { .. } => return cost,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    cost += 1;
                    node = if features[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    fn count_nodes(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => 1 + left.count_nodes() + right.count_nodes(),
        }
    }
}

/// Training configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_split: usize,
    /// `Some(k)`: random-tree mode considering `k` random features per
    /// node; `None`: classic decision tree considering all features.
    pub random_features: Option<usize>,
    /// RNG seed for random-tree feature sampling.
    pub seed: u64,
}

impl TrainConfig {
    /// Classic decision tree.
    pub fn decision_tree() -> TrainConfig {
        TrainConfig {
            max_depth: 24,
            min_split: 4,
            random_features: None,
            seed: 0,
        }
    }

    /// WEKA-style random tree: `⌊log₂ F⌋ + 1` features per node.
    pub fn random_tree(nr_features: usize, seed: u64) -> TrainConfig {
        let k = (nr_features.max(1) as f64).log2().floor() as usize + 1;
        TrainConfig {
            max_depth: 24,
            min_split: 2,
            random_features: Some(k.min(nr_features)),
            seed,
        }
    }
}

/// A trained classifier.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionTree {
    pub feature_names: Vec<String>,
    pub root: Node,
}

/// Shannon entropy of a (correct, incorrect) count pair, in bits.
pub fn entropy(correct: usize, incorrect: usize) -> f64 {
    let n = (correct + incorrect) as f64;
    if correct == 0 || incorrect == 0 {
        return 0.0;
    }
    let pc = correct as f64 / n;
    let pi = incorrect as f64 / n;
    -(pc * pc.log2() + pi * pi.log2())
}

fn counts(samples: &[&Sample]) -> (usize, usize) {
    let inc = samples
        .iter()
        .filter(|s| s.label == Label::Incorrect)
        .count();
    (samples.len() - inc, inc)
}

fn majority(correct: usize, incorrect: usize) -> Label {
    // Ties resolve to Correct: an ambiguous execution should not trigger
    // recovery (false positives are the expensive error).
    if incorrect > correct {
        Label::Incorrect
    } else {
        Label::Correct
    }
}

/// Find the best `(threshold, gain)` for one feature, or `None` when the
/// column is constant.
fn best_cut_for_feature(
    samples: &[&Sample],
    feature: usize,
    parent_entropy: f64,
) -> Option<(u64, f64)> {
    // Sort (value, is_incorrect) pairs; scan boundaries between distinct
    // values accumulating class counts — O(n log n) per feature.
    let mut vals: Vec<(u64, bool)> = samples
        .iter()
        .map(|s| (s.features[feature], s.label == Label::Incorrect))
        .collect();
    vals.sort_unstable();
    let n = vals.len();
    let total_inc = vals.iter().filter(|v| v.1).count();
    let total_cor = n - total_inc;

    let mut best: Option<(u64, f64)> = None;
    let mut left_inc = 0usize;
    let mut left_cor = 0usize;
    for i in 0..n - 1 {
        if vals[i].1 {
            left_inc += 1;
        } else {
            left_cor += 1;
        }
        if vals[i].0 == vals[i + 1].0 {
            continue; // not a boundary
        }
        // Integer midpoint threshold: x <= t goes left.
        let threshold = vals[i].0 + (vals[i + 1].0 - vals[i].0) / 2;
        let left_n = (left_cor + left_inc) as f64;
        let right_cor = total_cor - left_cor;
        let right_inc = total_inc - left_inc;
        let right_n = (right_cor + right_inc) as f64;
        let gain = parent_entropy
            - (left_n / n as f64) * entropy(left_cor, left_inc)
            - (right_n / n as f64) * entropy(right_cor, right_inc);
        if best.is_none_or(|(_, g)| gain > g) {
            best = Some((threshold, gain));
        }
    }
    best
}

fn build(
    samples: Vec<&Sample>,
    depth: usize,
    cfg: &TrainConfig,
    nr_features: usize,
    rng: &mut ChaCha8Rng,
) -> Node {
    let (correct, incorrect) = counts(&samples);
    let leaf = || Node::Leaf {
        label: majority(correct, incorrect),
        correct,
        incorrect,
    };
    if depth >= cfg.max_depth || samples.len() < cfg.min_split || correct == 0 || incorrect == 0 {
        return leaf();
    }
    let parent_entropy = entropy(correct, incorrect);

    // Candidate features: all, or a random subset (random-tree mode).
    let candidates: Vec<usize> = match cfg.random_features {
        None => (0..nr_features).collect(),
        Some(k) => {
            let mut all: Vec<usize> = (0..nr_features).collect();
            all.shuffle(rng);
            all.truncate(k.max(1));
            all
        }
    };

    let mut best: Option<(usize, u64, f64)> = None;
    for &f in &candidates {
        if let Some((t, gain)) = best_cut_for_feature(&samples, f, parent_entropy) {
            if best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((f, t, gain));
            }
        }
    }
    let Some((feature, threshold, gain)) = best else {
        return leaf();
    };
    if gain <= 1e-12 {
        return leaf();
    }

    let (left, right): (Vec<&Sample>, Vec<&Sample>) = samples
        .into_iter()
        .partition(|s| s.features[feature] <= threshold);
    if left.is_empty() || right.is_empty() {
        return leaf();
    }
    Node::Split {
        feature,
        threshold,
        left: Box::new(build(left, depth + 1, cfg, nr_features, rng)),
        right: Box::new(build(right, depth + 1, cfg, nr_features, rng)),
    }
}

impl DecisionTree {
    /// Train on a dataset.
    pub fn train(data: &Dataset, cfg: &TrainConfig) -> DecisionTree {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let refs: Vec<&Sample> = data.samples.iter().collect();
        let root = build(refs, 0, cfg, data.nr_features(), &mut rng);
        DecisionTree {
            feature_names: data.feature_names.clone(),
            root,
        }
    }

    /// Classify a feature vector — integer compares only.
    pub fn classify(&self, features: &[u64]) -> Label {
        self.root.classify(features)
    }

    /// Number of comparisons performed to classify `features` (the
    /// per-VM-entry cost the overhead model charges).
    pub fn classify_cost(&self, features: &[u64]) -> usize {
        self.root.classify_cost(features)
    }

    /// Flatten into the arena form used on the deployment hot path.
    pub fn compile(&self) -> crate::compiled::CompiledTree {
        crate::compiled::CompiledTree::compile(self)
    }

    /// Maximum depth.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Total node count.
    pub fn nr_nodes(&self) -> usize {
        self.root.count_nodes()
    }

    /// Render the rule set as indented text (the paper's Fig. 6 form).
    pub fn dump_rules(&self) -> String {
        let mut out = String::new();
        self.dump_node(&self.root, 0, &mut out);
        out
    }

    fn dump_node(&self, node: &Node, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match node {
            Node::Leaf {
                label,
                correct,
                incorrect,
            } => {
                out.push_str(&format!(
                    "{pad}=> {label:?} ({correct} correct / {incorrect} incorrect)\n"
                ));
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let name = &self.feature_names[*feature];
                out.push_str(&format!("{pad}if {name} <= {threshold}:\n"));
                self.dump_node(left, indent + 1, out);
                out.push_str(&format!("{pad}else:\n"));
                self.dump_node(right, indent + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;

    /// The paper's worked example (§III-B): 15 points, cutting RT at 200
    /// separates perfectly while cutting at 100 gains almost nothing.
    #[test]
    fn paper_example_cut_point_is_chosen() {
        let mut d = Dataset::new(&["RT"]);
        // 10 correct points with RT <= 200, 5 incorrect with RT > 200.
        for i in 0..10u64 {
            d.push(Sample::new(vec![50 + i * 15], Label::Correct)); // 50..185
        }
        for i in 0..5u64 {
            d.push(Sample::new(vec![250 + i * 40], Label::Incorrect));
        }
        let t = DecisionTree::train(&d, &TrainConfig::decision_tree());
        match &t.root {
            Node::Split {
                feature: 0,
                threshold,
                ..
            } => {
                assert!(
                    (185..250).contains(threshold),
                    "cut point {threshold} should separate the classes"
                );
            }
            other => panic!("expected a root split, got {other:?}"),
        }
        // Perfect classification of the training set.
        for s in &d.samples {
            assert_eq!(t.classify(&s.features), s.label);
        }
    }

    #[test]
    fn entropy_matches_paper_arithmetic() {
        // The paper's 15-sample example: Entropy(T) with 10/5 split.
        // (The paper's printed 0.276 uses log10; in bits this is 0.918.)
        let e = entropy(10, 5);
        assert!((e - 0.9183).abs() < 1e-3, "got {e}");
        assert_eq!(entropy(10, 0), 0.0);
        assert_eq!(entropy(0, 5), 0.0);
    }

    #[test]
    fn pure_dataset_yields_single_leaf() {
        let mut d = Dataset::new(&["x"]);
        for i in 0..20u64 {
            d.push(Sample::new(vec![i], Label::Correct));
        }
        let t = DecisionTree::train(&d, &TrainConfig::decision_tree());
        assert_eq!(t.nr_nodes(), 1);
        assert_eq!(t.classify(&[1000]), Label::Correct);
    }

    #[test]
    fn two_feature_interaction_is_learned() {
        // Incorrect iff (a > 10 AND b <= 5): needs two levels.
        let mut d = Dataset::new(&["a", "b"]);
        for a in 0..20u64 {
            for b in 0..10u64 {
                let label = if a > 10 && b <= 5 {
                    Label::Incorrect
                } else {
                    Label::Correct
                };
                d.push(Sample::new(vec![a, b], label));
            }
        }
        let t = DecisionTree::train(&d, &TrainConfig::decision_tree());
        assert!(t.depth() >= 2);
        assert_eq!(t.classify(&[15, 3]), Label::Incorrect);
        assert_eq!(t.classify(&[15, 8]), Label::Correct);
        assert_eq!(t.classify(&[5, 3]), Label::Correct);
    }

    #[test]
    fn random_tree_uses_log2_plus_one_features() {
        let cfg = TrainConfig::random_tree(5, 1);
        assert_eq!(
            cfg.random_features,
            Some(3),
            "paper: 3 of 5 features per node"
        );
        let cfg2 = TrainConfig::random_tree(8, 1);
        assert_eq!(cfg2.random_features, Some(4));
    }

    #[test]
    fn random_tree_is_deterministic_per_seed() {
        let mut d = Dataset::new(&["a", "b", "c"]);
        for i in 0..200u64 {
            let label = if (i * 7 + 3) % 5 < 2 {
                Label::Incorrect
            } else {
                Label::Correct
            };
            d.push(Sample::new(vec![i % 17, i % 23, i % 31], label));
        }
        let t1 = DecisionTree::train(&d, &TrainConfig::random_tree(3, 42));
        let t2 = DecisionTree::train(&d, &TrainConfig::random_tree(3, 42));
        assert_eq!(t1.root, t2.root);
        let t3 = DecisionTree::train(&d, &TrainConfig::random_tree(3, 43));
        // Different seed is allowed to differ (usually does).
        let _ = t3;
    }

    #[test]
    fn max_depth_is_respected() {
        let mut d = Dataset::new(&["x"]);
        for i in 0..1000u64 {
            let label = if i % 2 == 0 {
                Label::Correct
            } else {
                Label::Incorrect
            };
            d.push(Sample::new(vec![i], label));
        }
        let mut cfg = TrainConfig::decision_tree();
        cfg.max_depth = 3;
        let t = DecisionTree::train(&d, &cfg);
        assert!(t.depth() <= 3);
    }

    #[test]
    fn classify_cost_bounded_by_depth() {
        let mut d = Dataset::new(&["a", "b"]);
        for i in 0..100u64 {
            let label = if i % 3 == 0 {
                Label::Incorrect
            } else {
                Label::Correct
            };
            d.push(Sample::new(vec![i, i * 2 % 41], label));
        }
        let t = DecisionTree::train(&d, &TrainConfig::decision_tree());
        for s in &d.samples {
            assert!(t.classify_cost(&s.features) <= t.depth());
        }
    }

    #[test]
    fn dump_rules_mentions_feature_names() {
        let mut d = Dataset::new(&["WM", "RT"]);
        for i in 0..50u64 {
            let label = if i < 25 {
                Label::Correct
            } else {
                Label::Incorrect
            };
            d.push(Sample::new(vec![i, 500 - i], label));
        }
        let t = DecisionTree::train(&d, &TrainConfig::decision_tree());
        let rules = t.dump_rules();
        assert!(rules.contains("if "), "rules: {rules}");
        assert!(rules.contains("WM") || rules.contains("RT"));
    }

    #[test]
    fn serde_round_trip_preserves_classification() {
        let mut d = Dataset::new(&["a"]);
        for i in 0..60u64 {
            let label = if i > 30 {
                Label::Incorrect
            } else {
                Label::Correct
            };
            d.push(Sample::new(vec![i], label));
        }
        let t = DecisionTree::train(&d, &TrainConfig::decision_tree());
        let json = serde_json::to_string(&t).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        for s in &d.samples {
            assert_eq!(back.classify(&s.features), t.classify(&s.features));
        }
    }
}
