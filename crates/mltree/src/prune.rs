//! Reduced-error pruning.
//!
//! Deep trees memorize training noise; the paper side-steps the issue by
//! stopping early ("the process may stop after specified conditions ...
//! are achieved"). Reduced-error pruning is the classic alternative: walk
//! the tree bottom-up and collapse any split whose removal does not hurt
//! accuracy on a held-out validation set. Smaller trees also mean fewer
//! integer comparisons on the hypervisor hot path.

use crate::dataset::{Dataset, Label, Sample};
use crate::tree::{DecisionTree, Node};

/// Prune `tree` against a validation set; returns the pruned tree and the
/// number of splits collapsed.
pub fn reduced_error_prune(tree: &DecisionTree, validation: &Dataset) -> (DecisionTree, usize) {
    assert_eq!(
        tree.feature_names.len(),
        validation.nr_features(),
        "validation set must match the tree's features"
    );
    let refs: Vec<&Sample> = validation.samples.iter().collect();
    let mut root = tree.root.clone();
    let mut collapsed = 0;
    prune_node(&mut root, &refs, &mut collapsed);
    (
        DecisionTree {
            feature_names: tree.feature_names.clone(),
            root,
        },
        collapsed,
    )
}

fn errors(node: &Node, samples: &[&Sample]) -> usize {
    samples
        .iter()
        .filter(|s| node.classify(&s.features) != s.label)
        .count()
}

fn training_counts(node: &Node) -> (usize, usize) {
    match node {
        Node::Leaf {
            correct, incorrect, ..
        } => (*correct, *incorrect),
        Node::Split { left, right, .. } => {
            let (lc, li) = training_counts(left);
            let (rc, ri) = training_counts(right);
            (lc + rc, li + ri)
        }
    }
}

fn prune_node(node: &mut Node, samples: &[&Sample], collapsed: &mut usize) {
    let Node::Split {
        feature,
        threshold,
        left,
        right,
    } = node
    else {
        return;
    };
    let (feature, threshold) = (*feature, *threshold);
    // Partition the validation samples and prune the children first.
    let (ls, rs): (Vec<&Sample>, Vec<&Sample>) = samples
        .iter()
        .partition(|s| s.features[feature] <= threshold);
    prune_node(left, &ls, collapsed);
    prune_node(right, &rs, collapsed);

    // Would a majority leaf do at least as well here?
    let subtree_errors = errors(node, samples);
    let (c, i) = training_counts(node);
    let leaf_label = if i > c {
        Label::Incorrect
    } else {
        Label::Correct
    };
    let leaf_errors = samples.iter().filter(|s| s.label != leaf_label).count();
    if leaf_errors <= subtree_errors {
        *node = Node::Leaf {
            label: leaf_label,
            correct: c,
            incorrect: i,
        };
        *collapsed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::tree::TrainConfig;

    /// Training data with label noise; validation data without.
    fn noisy_setup() -> (Dataset, Dataset) {
        let mut train = Dataset::new(&["x"]);
        let mut valid = Dataset::new(&["x"]);
        for i in 0..400u64 {
            let clean = if i % 40 < 20 {
                Label::Correct
            } else {
                Label::Incorrect
            };
            // 8% label noise in training only.
            let noisy = if i % 13 == 0 {
                match clean {
                    Label::Correct => Label::Incorrect,
                    Label::Incorrect => Label::Correct,
                }
            } else {
                clean
            };
            train.push(Sample::new(vec![i % 40], noisy));
            valid.push(Sample::new(vec![i % 40], clean));
        }
        (train, valid)
    }

    #[test]
    fn pruning_collapses_noise_splits_and_helps_validation() {
        let (train, valid) = noisy_setup();
        let mut cfg = TrainConfig::decision_tree();
        cfg.max_depth = 32;
        cfg.min_split = 2;
        let tree = DecisionTree::train(&train, &cfg);
        let (pruned, collapsed) = reduced_error_prune(&tree, &valid);
        assert!(collapsed > 0, "nothing pruned from a noisy deep tree");
        assert!(pruned.nr_nodes() < tree.nr_nodes());
        let before = evaluate(&tree, &valid).accuracy();
        let after = evaluate(&pruned, &valid).accuracy();
        assert!(
            after >= before,
            "pruning must not hurt validation: {before} -> {after}"
        );
    }

    #[test]
    fn pruning_clean_tree_is_harmless() {
        let mut ds = Dataset::new(&["x"]);
        for i in 0..100u64 {
            let label = if i < 50 {
                Label::Correct
            } else {
                Label::Incorrect
            };
            ds.push(Sample::new(vec![i], label));
        }
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        let (pruned, _) = reduced_error_prune(&tree, &ds);
        assert_eq!(evaluate(&pruned, &ds).accuracy(), 1.0);
    }

    #[test]
    fn pruned_tree_classifies_everything() {
        let (train, valid) = noisy_setup();
        let tree = DecisionTree::train(&train, &TrainConfig::random_tree(1, 3));
        let (pruned, _) = reduced_error_prune(&tree, &valid);
        for s in &valid.samples {
            let _ = pruned.classify(&s.features);
        }
    }
}
