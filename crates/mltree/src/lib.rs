//! # mltree — decision-tree learning with integer-only inference
//!
//! The Xentry paper trains its VM-transition detector offline in WEKA and
//! deploys the resulting rules inside the hypervisor, where "the decision
//! making process is a set of simple integer comparisons" (§III-B). This
//! crate provides both halves:
//!
//! * [`tree::DecisionTree`] — an entropy-split (information gain) binary
//!   classification tree over unsigned integer features, trained either
//!   exhaustively (classic decision tree) or with WEKA's *random tree*
//!   strategy that considers `⌊log₂ F⌋ + 1` randomly chosen features per
//!   split (3 of the 5 Xentry features, as the paper states);
//! * [`tree::DecisionTree::classify`] — pure integer-threshold traversal
//!   suitable for the hypervisor hot path;
//! * [`compiled::CompiledTree`] / [`compiled::CompiledForest`] — the
//!   deployment form: boxed nodes flattened into a contiguous preorder
//!   arena with an iterative walker and a batch API, bit-identical to the
//!   boxed walkers but without a pointer chase per level;
//! * [`eval`] — accuracy, confusion matrices and the false-positive rate
//!   the paper's recovery-overhead estimate depends on (0.7%).

pub mod compiled;
pub mod dataset;
pub mod eval;
pub mod forest;
pub mod layout;
pub mod prune;
pub mod simd;
pub mod tree;

pub use compiled::{ArenaFault, CompiledForest, CompiledNode, CompiledTree, LEAF_BIT};
pub use dataset::{Dataset, Label, Sample};
pub use eval::{cross_validate, evaluate, evaluate_compiled, ConfusionMatrix};
pub use forest::{evaluate_forest, ForestConfig, RandomForest};
pub use layout::TreeProfile;
pub use prune::reduced_error_prune;
pub use simd::{active_kernel_name, BatchWalker};
pub use tree::{DecisionTree, Node, TrainConfig};
