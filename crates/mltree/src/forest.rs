//! Random forest — the natural extension of the paper's single random tree
//! ("we plan to develop new techniques to further increase the detection
//! coverage and reduce the false positive rate", §VIII).
//!
//! A bagged ensemble of random trees with majority voting. Inference is
//! still integer-only (N tree walks + one counter compare), so it remains
//! deployable on the hypervisor hot path at N× the single-tree cost.

use crate::dataset::{Dataset, Label, Sample};
use crate::tree::{DecisionTree, TrainConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Forest training configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub nr_trees: usize,
    /// Bootstrap sample size as a fraction of the training set (x1000;
    /// 1000 = classic bagging with |D| draws with replacement).
    pub bag_permille: usize,
    /// Per-tree training configuration (the seed is perturbed per tree).
    pub tree: TrainConfig,
    /// Votes required to call an execution incorrect; `None` = strict
    /// majority. Raising it trades recall for a lower false-positive rate —
    /// exactly the §VIII goal.
    pub vote_threshold: Option<usize>,
    /// RNG seed for bagging.
    pub seed: u64,
}

impl ForestConfig {
    /// A reasonable default: 15 random trees, full-size bags.
    pub fn default_random_forest(nr_features: usize, seed: u64) -> ForestConfig {
        ForestConfig {
            nr_trees: 15,
            bag_permille: 1000,
            tree: TrainConfig::random_tree(nr_features, seed),
            vote_threshold: None,
            seed,
        }
    }
}

/// A trained forest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomForest {
    pub feature_names: Vec<String>,
    pub trees: Vec<DecisionTree>,
    pub vote_threshold: usize,
}

/// Per-tree bagging seed: splitmix64 over the forest seed and tree index.
/// Each tree owns an independent RNG stream, so the model is a pure
/// function of `(data, cfg)` no matter how trees are scheduled across
/// threads — parallel training is bit-identical to serial by construction.
fn bag_seed(forest_seed: u64, tree: u64) -> u64 {
    let mut z = forest_seed.wrapping_add((tree + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Bag and train tree `t` of the forest.
fn train_one(data: &Dataset, cfg: &ForestConfig, bag_size: usize, t: usize) -> DecisionTree {
    let mut rng = ChaCha8Rng::seed_from_u64(bag_seed(cfg.seed, t as u64));
    let mut bag = Dataset::new(
        &data
            .feature_names
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>(),
    );
    for _ in 0..bag_size {
        let s: &Sample = &data.samples[rng.gen_range(0..data.len())];
        bag.push(s.clone());
    }
    let mut tree_cfg = cfg.tree;
    tree_cfg.seed = cfg.seed.wrapping_add(t as u64 * 0x9E37_79B9);
    DecisionTree::train(&bag, &tree_cfg)
}

impl RandomForest {
    /// Train by bagging, using every available core. Identical output to
    /// [`RandomForest::train_with_threads`] at any thread count.
    pub fn train(data: &Dataset, cfg: &ForestConfig) -> RandomForest {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        RandomForest::train_with_threads(data, cfg, threads)
    }

    /// Train by bagging on `threads` worker threads. Tree `t` always draws
    /// its bag from its own seeded stream (`bag_seed`) and trains with
    /// its own perturbed tree seed, so the resulting forest is
    /// bit-identical regardless of `threads` (1 == serial).
    pub fn train_with_threads(data: &Dataset, cfg: &ForestConfig, threads: usize) -> RandomForest {
        assert!(cfg.nr_trees >= 1);
        assert!(!data.is_empty());
        assert!(threads >= 1, "need at least one training thread");
        let bag_size = (data.len() * cfg.bag_permille / 1000).max(2);
        let threads = threads.min(cfg.nr_trees);
        let trees: Vec<DecisionTree> = if threads == 1 {
            (0..cfg.nr_trees)
                .map(|t| train_one(data, cfg, bag_size, t))
                .collect()
        } else {
            // Stride-partition tree indices across workers; reassemble in
            // index order so the output order matches serial training.
            let mut slots: Vec<Option<DecisionTree>> = vec![None; cfg.nr_trees];
            let done: Vec<Vec<(usize, DecisionTree)>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|w| {
                        s.spawn(move || {
                            (w..cfg.nr_trees)
                                .step_by(threads)
                                .map(|t| (t, train_one(data, cfg, bag_size, t)))
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("forest training worker panicked"))
                    .collect()
            });
            for (t, tree) in done.into_iter().flatten() {
                slots[t] = Some(tree);
            }
            slots
                .into_iter()
                .map(|t| t.expect("tree trained"))
                .collect()
        };
        let vote_threshold = cfg.vote_threshold.unwrap_or(cfg.nr_trees / 2 + 1);
        RandomForest {
            feature_names: data.feature_names.clone(),
            trees,
            vote_threshold,
        }
    }

    /// Flatten into the shared-arena form used on the deployment hot path.
    pub fn compile(&self) -> crate::compiled::CompiledForest {
        crate::compiled::CompiledForest::compile(self)
    }

    /// Number of trees voting `Incorrect`.
    pub fn incorrect_votes(&self, features: &[u64]) -> usize {
        self.trees
            .iter()
            .filter(|t| t.classify(features) == Label::Incorrect)
            .count()
    }

    /// Majority-vote classification.
    pub fn classify(&self, features: &[u64]) -> Label {
        if self.incorrect_votes(features) >= self.vote_threshold {
            Label::Incorrect
        } else {
            Label::Correct
        }
    }

    /// Total comparisons performed (the in-hypervisor cost).
    pub fn classify_cost(&self, features: &[u64]) -> usize {
        self.trees.iter().map(|t| t.classify_cost(features)).sum()
    }

    /// Total node count across trees.
    pub fn nr_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.nr_nodes()).sum()
    }
}

/// Evaluate a forest on a test set (compiles once, classifies in batch).
pub fn evaluate_forest(forest: &RandomForest, test: &Dataset) -> crate::eval::ConfusionMatrix {
    let compiled = forest.compile();
    let rows: Vec<&[u64]> = test.samples.iter().map(|s| s.features.as_slice()).collect();
    let mut predicted = vec![Label::Correct; rows.len()];
    compiled.classify_batch(&rows, &mut predicted);
    let mut cm = crate::eval::ConfusionMatrix::default();
    for (s, p) in test.samples.iter().zip(predicted) {
        cm.record(s.label, p);
    }
    cm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable_dataset(n: usize) -> Dataset {
        let mut ds = Dataset::new(&["a", "b"]);
        for i in 0..n as u64 {
            let (f, l) = if i % 4 == 0 {
                (vec![500 + i % 97, 40 + i % 7], Label::Incorrect)
            } else {
                (vec![100 + i % 97, 10 + i % 7], Label::Correct)
            };
            ds.push(Sample::new(f, l));
        }
        ds
    }

    #[test]
    fn forest_separates_like_a_tree() {
        let ds = separable_dataset(400);
        let cfg = ForestConfig::default_random_forest(2, 7);
        let forest = RandomForest::train(&ds, &cfg);
        let cm = evaluate_forest(&forest, &ds);
        assert!(cm.accuracy() > 0.97, "accuracy {}", cm.accuracy());
        assert_eq!(forest.trees.len(), 15);
    }

    #[test]
    fn raising_vote_threshold_reduces_false_positives() {
        // Noisy overlapping data: a stricter vote must not increase FP.
        let mut ds = Dataset::new(&["x"]);
        for i in 0..600u64 {
            let label = if (i * 7) % 10 < 3 {
                Label::Incorrect
            } else {
                Label::Correct
            };
            ds.push(Sample::new(vec![i % 40], label));
        }
        let (train, test) = ds.split(3);
        let mut lax = ForestConfig::default_random_forest(1, 3);
        lax.vote_threshold = Some(4);
        let mut strict = lax;
        strict.vote_threshold = Some(13);
        let f_lax = RandomForest::train(&train, &lax);
        let f_strict = RandomForest::train(&train, &strict);
        let cm_lax = evaluate_forest(&f_lax, &test);
        let cm_strict = evaluate_forest(&f_strict, &test);
        assert!(
            cm_strict.false_positive_rate() <= cm_lax.false_positive_rate(),
            "strict {} vs lax {}",
            cm_strict.false_positive_rate(),
            cm_lax.false_positive_rate()
        );
    }

    #[test]
    fn forest_is_deterministic_per_seed() {
        let ds = separable_dataset(200);
        let cfg = ForestConfig::default_random_forest(2, 11);
        let a = RandomForest::train(&ds, &cfg);
        let b = RandomForest::train(&ds, &cfg);
        for s in &ds.samples {
            assert_eq!(a.classify(&s.features), b.classify(&s.features));
        }
    }

    #[test]
    fn parallel_training_is_bit_identical_to_serial() {
        let ds = separable_dataset(300);
        let cfg = ForestConfig::default_random_forest(2, 29);
        let serial = RandomForest::train_with_threads(&ds, &cfg, 1);
        for threads in [2, 3, 8, 64] {
            let parallel = RandomForest::train_with_threads(&ds, &cfg, threads);
            assert_eq!(
                serial, parallel,
                "threads={threads} must not change the model"
            );
        }
        assert_eq!(serial, RandomForest::train(&ds, &cfg));
    }

    #[test]
    fn cost_scales_with_tree_count() {
        let ds = separable_dataset(200);
        let mut cfg = ForestConfig::default_random_forest(2, 5);
        cfg.nr_trees = 3;
        let small = RandomForest::train(&ds, &cfg);
        cfg.nr_trees = 12;
        let big = RandomForest::train(&ds, &cfg);
        let probe = vec![150u64, 20];
        assert!(big.classify_cost(&probe) > small.classify_cost(&probe));
    }

    #[test]
    fn serde_round_trip() {
        let ds = separable_dataset(200);
        let f = RandomForest::train(&ds, &ForestConfig::default_random_forest(2, 9));
        let json = serde_json::to_string(&f).unwrap();
        let back: RandomForest = serde_json::from_str(&json).unwrap();
        for s in &ds.samples {
            assert_eq!(back.classify(&s.features), f.classify(&s.features));
        }
    }
}
