//! Classifier evaluation: accuracy, confusion matrix, false-positive rate.
//!
//! In detection terms, `Incorrect` is the positive class. The paper reports
//! 98.6% accuracy for the random tree, 96.1% for the decision tree, and a
//! 0.7% false-positive rate (correct executions flagged as incorrect) that
//! feeds the recovery-overhead estimate of Fig. 11.

use crate::compiled::CompiledTree;
use crate::dataset::{Dataset, Label};
use crate::tree::DecisionTree;

use serde::{Deserialize, Serialize};

/// Binary confusion matrix. Positives are `Incorrect` executions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Incorrect execution flagged incorrect (a detection).
    pub true_positive: usize,
    /// Correct execution flagged incorrect (triggers unnecessary recovery).
    pub false_positive: usize,
    /// Correct execution passed.
    pub true_negative: usize,
    /// Incorrect execution missed (mis-classification, Table II's 10%).
    pub false_negative: usize,
}

impl ConfusionMatrix {
    /// Total samples.
    pub fn total(&self) -> usize {
        self.true_positive + self.false_positive + self.true_negative + self.false_negative
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.true_positive + self.true_negative) as f64 / self.total() as f64
    }

    /// Fraction of *correct* executions flagged incorrect — the rate that
    /// costs recovery re-executions.
    pub fn false_positive_rate(&self) -> f64 {
        let negatives = self.false_positive + self.true_negative;
        if negatives == 0 {
            return 0.0;
        }
        self.false_positive as f64 / negatives as f64
    }

    /// Fraction of incorrect executions detected (recall / coverage of the
    /// VM-transition detector).
    pub fn detection_rate(&self) -> f64 {
        let positives = self.true_positive + self.false_negative;
        if positives == 0 {
            return 0.0;
        }
        self.true_positive as f64 / positives as f64
    }

    /// Record one (actual, predicted) pair.
    pub fn record(&mut self, actual: Label, predicted: Label) {
        match (actual, predicted) {
            (Label::Incorrect, Label::Incorrect) => self.true_positive += 1,
            (Label::Correct, Label::Incorrect) => self.false_positive += 1,
            (Label::Correct, Label::Correct) => self.true_negative += 1,
            (Label::Incorrect, Label::Correct) => self.false_negative += 1,
        }
    }
}

/// Evaluate a tree on a test set (compiles once, classifies in batch).
pub fn evaluate(tree: &DecisionTree, test: &Dataset) -> ConfusionMatrix {
    evaluate_compiled(&tree.compile(), test)
}

/// Evaluate an already-compiled tree on a test set via the batch path.
pub fn evaluate_compiled(tree: &CompiledTree, test: &Dataset) -> ConfusionMatrix {
    let rows: Vec<&[u64]> = test.samples.iter().map(|s| s.features.as_slice()).collect();
    let mut predicted = vec![Label::Correct; rows.len()];
    tree.classify_batch(&rows, &mut predicted);
    let mut cm = ConfusionMatrix::default();
    for (s, p) in test.samples.iter().zip(predicted) {
        cm.record(s.label, p);
    }
    cm
}

/// k-fold cross-validation: train on k-1 folds, evaluate on the held-out
/// fold, and pool the confusion matrices — a lower-variance estimate of the
/// paper's single train/test split.
pub fn cross_validate(
    data: &Dataset,
    k: usize,
    train: impl Fn(&Dataset) -> DecisionTree,
) -> ConfusionMatrix {
    assert!(k >= 2, "need at least two folds");
    assert!(data.len() >= k, "fewer samples than folds");
    let mut pooled = ConfusionMatrix::default();
    for fold in 0..k {
        let names: Vec<&str> = data.feature_names.iter().map(|s| s.as_str()).collect();
        let mut tr = Dataset::new(&names);
        let mut te = Dataset::new(&names);
        for (i, s) in data.samples.iter().enumerate() {
            if i % k == fold {
                te.push(s.clone());
            } else {
                tr.push(s.clone());
            }
        }
        let tree = train(&tr);
        let fold_cm = evaluate(&tree, &te);
        pooled.true_positive += fold_cm.true_positive;
        pooled.false_positive += fold_cm.false_positive;
        pooled.true_negative += fold_cm.true_negative;
        pooled.false_negative += fold_cm.false_negative;
    }
    pooled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;
    use crate::tree::TrainConfig;

    #[test]
    fn perfect_separation_gives_full_accuracy() {
        let mut d = Dataset::new(&["x"]);
        for i in 0..100u64 {
            let label = if i < 50 {
                Label::Correct
            } else {
                Label::Incorrect
            };
            d.push(Sample::new(vec![i], label));
        }
        let t = DecisionTree::train(&d, &TrainConfig::decision_tree());
        let cm = evaluate(&t, &d);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.false_positive_rate(), 0.0);
        assert_eq!(cm.detection_rate(), 1.0);
        assert_eq!(cm.total(), 100);
    }

    #[test]
    fn confusion_matrix_cells_are_routed_correctly() {
        let mut cm = ConfusionMatrix::default();
        cm.record(Label::Incorrect, Label::Incorrect);
        cm.record(Label::Correct, Label::Incorrect);
        cm.record(Label::Correct, Label::Correct);
        cm.record(Label::Correct, Label::Correct);
        cm.record(Label::Incorrect, Label::Correct);
        assert_eq!(cm.true_positive, 1);
        assert_eq!(cm.false_positive, 1);
        assert_eq!(cm.true_negative, 2);
        assert_eq!(cm.false_negative, 1);
        assert!((cm.accuracy() - 0.6).abs() < 1e-12);
        assert!((cm.false_positive_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((cm.detection_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_degenerates_gracefully() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.false_positive_rate(), 0.0);
        assert_eq!(cm.detection_rate(), 0.0);
    }

    #[test]
    fn cross_validation_pools_all_samples() {
        let mut d = Dataset::new(&["x"]);
        for i in 0..90u64 {
            let label = if i % 2 == 0 {
                Label::Correct
            } else {
                Label::Incorrect
            };
            d.push(Sample::new(vec![i % 2 * 100 + i % 7], label));
        }
        let cm = cross_validate(&d, 5, |tr| {
            DecisionTree::train(tr, &TrainConfig::decision_tree())
        });
        assert_eq!(cm.total(), 90, "every sample evaluated exactly once");
        assert!(cm.accuracy() > 0.9, "separable data: {}", cm.accuracy());
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn cross_validation_rejects_k1() {
        let mut d = Dataset::new(&["x"]);
        d.push(Sample::new(vec![1], Label::Correct));
        d.push(Sample::new(vec![2], Label::Incorrect));
        cross_validate(&d, 1, |tr| {
            DecisionTree::train(tr, &TrainConfig::decision_tree())
        });
    }

    #[test]
    fn noisy_overlap_keeps_accuracy_below_one() {
        // Overlapping classes: identical feature values with both labels.
        let mut d = Dataset::new(&["x"]);
        for i in 0..50u64 {
            d.push(Sample::new(vec![i % 5], Label::Correct));
            d.push(Sample::new(vec![i % 5], Label::Incorrect));
        }
        let t = DecisionTree::train(&d, &TrainConfig::decision_tree());
        let cm = evaluate(&t, &d);
        assert!(cm.accuracy() <= 0.6, "cannot beat chance on pure noise");
    }
}
