//! Profile-guided arena layout: re-emit a compiled tree hot-path-first.
//!
//! [`CompiledTree::compile`] lays records out in preorder — the *left*
//! child is always the next record, regardless of which child real
//! traffic actually takes. [`TreeProfile`] harvests per-split branch
//! counts from representative feature vectors (fleet verdict traffic,
//! campaign datasets), and [`CompiledTree::reorder_profiled`] re-emits
//! the arena in **hot-first depth-first order**: at every split the
//! *most-taken* child is placed adjacent to its parent and its whole
//! subtree before the cold sibling's. Two effects:
//!
//! * the common path through the tree becomes a forward streak through
//!   memory (the prefetcher's favourite access pattern), independent of
//!   whether it zig-zags left/right logically;
//! * the hot records of *all* top levels cluster into a contiguous
//!   prefix of the arena — [`CompiledTree::hot_prefix_bytes`] reports
//!   how many leading bytes covered ≥90% of observed split visits, i.e.
//!   how little of the model the cache must keep resident to serve the
//!   common path.
//!
//! The reorder is a pure permutation: thresholds, feature indices and
//! tree *shape* are untouched, so verdicts are bit-identical (proptest
//! in `tests/compiled_equivalence.rs`) and the re-laid arena still
//! passes [`CompiledTree::validate`] — hot-first DFS preserves the
//! forward-reference invariant (children always land after parents).
//! Because the boxed [`DecisionTree`] is unchanged, a profiled model
//! has the same serialized form and fingerprint as the original, so
//! fleet hot-swap canary validation passes without special-casing.

use crate::compiled::{CompiledNode, CompiledTree, LEAF_BIT};
use crate::tree::DecisionTree;
use serde::{Deserialize, Serialize};

/// Fraction of observed split visits the leading arena records must
/// cover to count as the hot prefix.
const HOT_VISIT_FRACTION: f64 = 0.90;

/// Per-split branch counts for one compiled tree, indexed by arena
/// record. The serializable profile format: harvested online (fleet
/// verdict traffic), merged across shards, and fed back into
/// [`CompiledTree::compile_profiled`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeProfile {
    /// Times each split's `<= threshold` (left) branch was taken.
    pub taken_left: Vec<u64>,
    /// Times each split's right branch was taken.
    pub taken_right: Vec<u64>,
}

impl TreeProfile {
    /// An empty (all-zero) profile shaped for `tree`'s arena.
    pub fn for_tree(tree: &CompiledTree) -> TreeProfile {
        TreeProfile {
            taken_left: vec![0; tree.nr_splits()],
            taken_right: vec![0; tree.nr_splits()],
        }
    }

    /// Splits this profile covers — must equal the arena's `nr_splits`.
    pub fn len(&self) -> usize {
        self.taken_left.len()
    }

    pub fn is_empty(&self) -> bool {
        self.taken_left.is_empty()
    }

    /// Record one classification's path through `tree`. A checked walk —
    /// profiling runs off the hot path, so it pays for bounds checks.
    pub fn record(&mut self, tree: &CompiledTree, features: &[u64]) {
        assert_eq!(
            self.len(),
            tree.nr_splits(),
            "profile shaped for another arena"
        );
        let mut r = tree.root;
        while r & LEAF_BIT == 0 {
            let n = &tree.nodes[r as usize];
            if features[n.feature as usize] <= n.threshold {
                self.taken_left[r as usize] += 1;
                r = n.left;
            } else {
                self.taken_right[r as usize] += 1;
                r = n.right;
            }
        }
    }

    /// Record a whole batch of feature rows.
    pub fn record_batch<I: AsRef<[u64]>>(&mut self, tree: &CompiledTree, inputs: &[I]) {
        for f in inputs {
            self.record(tree, f.as_ref());
        }
    }

    /// Merge counts harvested elsewhere (another shard, another epoch).
    pub fn merge(&mut self, other: &TreeProfile) {
        assert_eq!(
            self.len(),
            other.len(),
            "profiles shaped for different arenas"
        );
        for (a, b) in self.taken_left.iter_mut().zip(&other.taken_left) {
            *a += b;
        }
        for (a, b) in self.taken_right.iter_mut().zip(&other.taken_right) {
            *a += b;
        }
    }

    /// Total times record `i` was visited (both branches).
    pub fn visits(&self, i: usize) -> u64 {
        self.taken_left[i] + self.taken_right[i]
    }

    /// Total split visits across the whole arena.
    pub fn total_visits(&self) -> u64 {
        self.taken_left.iter().chain(&self.taken_right).sum()
    }
}

impl CompiledTree {
    /// Compile `tree` and immediately lay its arena out hot-path-first
    /// from `profile` — the entry point fleet hot-swap publishes.
    pub fn compile_profiled(tree: &DecisionTree, profile: &TreeProfile) -> CompiledTree {
        CompiledTree::compile(tree).reorder_profiled(profile)
    }

    /// Re-emit this arena in hot-first depth-first order: at every split
    /// the most-taken child (ties go left, matching preorder) is placed
    /// at the next record and its subtree emitted before the cold
    /// sibling's. Pure permutation — same splits, same verdicts, same
    /// depth; passes [`CompiledTree::validate`].
    pub fn reorder_profiled(&self, profile: &TreeProfile) -> CompiledTree {
        assert_eq!(
            profile.len(),
            self.nr_splits(),
            "profile shaped for another arena"
        );
        if self.nodes.is_empty() {
            return self.clone();
        }
        // Hot-first DFS over old indices. The explicit stack pops the
        // hot child immediately after its parent (pushed last), and the
        // cold subtree only after the hot subtree exhausts — exactly
        // recursion order, without recursion.
        let mut order: Vec<u32> = Vec::with_capacity(self.nodes.len());
        let mut new_of: Vec<u32> = vec![u32::MAX; self.nodes.len()];
        let mut stack: Vec<u32> = vec![self.root];
        while let Some(old) = stack.pop() {
            new_of[old as usize] = order.len() as u32;
            order.push(old);
            let n = &self.nodes[old as usize];
            let (hot, cold) =
                if profile.taken_left[old as usize] >= profile.taken_right[old as usize] {
                    (n.left, n.right)
                } else {
                    (n.right, n.left)
                };
            if cold & LEAF_BIT == 0 {
                stack.push(cold);
            }
            if hot & LEAF_BIT == 0 {
                stack.push(hot);
            }
        }
        debug_assert_eq!(order.len(), self.nodes.len(), "arena must be a tree");
        let remap = |r: u32| {
            if r & LEAF_BIT != 0 {
                r
            } else {
                new_of[r as usize]
            }
        };
        let nodes: Vec<CompiledNode> = order
            .iter()
            .map(|&old| {
                let n = &self.nodes[old as usize];
                CompiledNode {
                    threshold: n.threshold,
                    left: remap(n.left),
                    right: remap(n.right),
                    feature: n.feature,
                    pad: [0; 7],
                }
            })
            .collect();
        // Hot prefix: shortest leading run of (re-laid) records covering
        // HOT_VISIT_FRACTION of all observed visits. With no traffic at
        // all, claim nothing: the whole arena is the prefix.
        let total = profile.total_visits();
        let hot_prefix = if total == 0 {
            nodes.len()
        } else {
            let need = (total as f64 * HOT_VISIT_FRACTION).ceil() as u64;
            let mut covered = 0u64;
            let mut prefix = nodes.len();
            for (i, &old) in order.iter().enumerate() {
                covered += profile.visits(old as usize);
                if covered >= need {
                    prefix = i + 1;
                    break;
                }
            }
            prefix
        };
        CompiledTree {
            packed: crate::simd::PackedArena::build(&nodes, self.arity),
            nodes,
            root: 0,
            depth: self.depth,
            arity: self.arity,
            hot_prefix,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, Label, Sample};
    use crate::tree::{DecisionTree, TrainConfig};

    fn skewed_dataset(n: usize) -> Dataset {
        let mut ds = Dataset::new(&["a", "b", "c"]);
        for i in 0..n as u64 {
            let label = if (i * 7 + 3) % 11 < 3 {
                Label::Incorrect
            } else {
                Label::Correct
            };
            ds.push(Sample::new(vec![i % 37, (i * 5) % 41, i % 13], label));
        }
        ds
    }

    fn trained() -> (Dataset, CompiledTree) {
        let ds = skewed_dataset(400);
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        (ds, CompiledTree::compile(&tree))
    }

    #[test]
    fn reorder_preserves_verdicts_and_validates() {
        let (ds, compiled) = trained();
        assert!(compiled.nr_splits() > 3, "need a multi-split tree");
        let mut profile = TreeProfile::for_tree(&compiled);
        for s in &ds.samples {
            profile.record(&compiled, &s.features);
        }
        let hot = compiled.reorder_profiled(&profile);
        hot.validate().unwrap();
        assert_eq!(hot.nr_splits(), compiled.nr_splits());
        assert_eq!(hot.depth(), compiled.depth());
        for s in &ds.samples {
            assert_eq!(hot.classify(&s.features), compiled.classify(&s.features));
            assert_eq!(
                hot.classify_cost(&s.features),
                compiled.classify_cost(&s.features)
            );
        }
    }

    #[test]
    fn hot_child_is_adjacent_to_parent() {
        let (ds, compiled) = trained();
        let mut profile = TreeProfile::for_tree(&compiled);
        profile.record_batch(
            &compiled,
            &ds.samples.iter().map(|s| &s.features).collect::<Vec<_>>(),
        );
        let hot = compiled.reorder_profiled(&profile);
        // Re-harvest on the re-laid arena so counts index its records.
        let mut hp = TreeProfile::for_tree(&hot);
        for s in &ds.samples {
            hp.record(&hot, &s.features);
        }
        for (i, n) in hot.nodes.iter().enumerate() {
            let (hot_child, _) = if hp.taken_left[i] >= hp.taken_right[i] {
                (n.left, n.right)
            } else {
                (n.right, n.left)
            };
            if hot_child & LEAF_BIT == 0 {
                assert_eq!(
                    hot_child as usize,
                    i + 1,
                    "record {i}: most-taken child must be adjacent"
                );
            }
        }
    }

    #[test]
    fn hot_prefix_shrinks_under_skewed_traffic() {
        let (_, compiled) = trained();
        assert_eq!(
            compiled.hot_prefix_bytes(),
            compiled.arena_bytes(),
            "unprofiled arena claims nothing"
        );
        // Hammer one path: replay a single row many times.
        let row = [1u64, 2, 3];
        let mut profile = TreeProfile::for_tree(&compiled);
        for _ in 0..1000 {
            profile.record(&compiled, &row);
        }
        let hot = compiled.reorder_profiled(&profile);
        hot.validate().unwrap();
        assert!(
            hot.hot_prefix_bytes() < hot.arena_bytes(),
            "single-path traffic must concentrate the hot prefix ({} < {})",
            hot.hot_prefix_bytes(),
            hot.arena_bytes()
        );
        assert_eq!(hot.classify(&row), compiled.classify(&row));
    }

    #[test]
    fn empty_profile_reorder_is_identity_permutation_safe() {
        let (ds, compiled) = trained();
        let profile = TreeProfile::for_tree(&compiled);
        let re = compiled.reorder_profiled(&profile);
        re.validate().unwrap();
        // Zero counts tie everywhere; ties go left — preorder restored.
        assert_eq!(re, compiled);
        for s in &ds.samples {
            assert_eq!(re.classify(&s.features), compiled.classify(&s.features));
        }
    }

    #[test]
    fn profile_merge_and_serde_round_trip() {
        let (ds, compiled) = trained();
        let mut a = TreeProfile::for_tree(&compiled);
        let mut b = TreeProfile::for_tree(&compiled);
        let half = ds.samples.len() / 2;
        for s in &ds.samples[..half] {
            a.record(&compiled, &s.features);
        }
        for s in &ds.samples[half..] {
            b.record(&compiled, &s.features);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        let mut whole = TreeProfile::for_tree(&compiled);
        for s in &ds.samples {
            whole.record(&compiled, &s.features);
        }
        assert_eq!(merged, whole);
        let json = serde_json::to_string(&whole).unwrap();
        let back: TreeProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, whole);
    }

    #[test]
    fn single_leaf_tree_reorders_to_itself() {
        let mut ds = Dataset::new(&["x"]);
        for i in 0..6u64 {
            ds.push(Sample::new(vec![i], Label::Correct));
        }
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        let compiled = CompiledTree::compile(&tree);
        assert_eq!(compiled.nr_splits(), 0);
        let profile = TreeProfile::for_tree(&compiled);
        let re = compiled.reorder_profiled(&profile);
        assert_eq!(re, compiled);
        assert_eq!(re.classify(&[3]), Label::Correct);
    }
}
