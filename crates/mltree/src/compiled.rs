//! Compiled flat-arena inference: the deployable form of a trained model.
//!
//! The boxed [`Node`] tree is ideal for training, pruning and rule dumps,
//! but classifying with it chases one heap pointer per level — a cache
//! miss per comparison on the VM-entry hot path the paper fights to keep
//! near-zero. [`CompiledTree`] flattens the splits into a contiguous arena
//! of fixed-size records laid out in preorder (each split's left child is
//! the next record), so the common short path walks forward through memory
//! the prefetcher already has. Leaves are not stored at all: a child
//! reference with [`LEAF_BIT`] set *is* the verdict.
//!
//! ```text
//!  CompiledNode (repr C, 24 bytes):
//!  ┌───────────────┬────────┬────────┬─────────┬─────┐
//!  │ threshold u64 │ left   │ right  │ feature │ pad │
//!  │               │ u32    │ u32    │ u8      │     │
//!  └───────────────┴────────┴────────┴─────────┴─────┘
//!  child ref: bit31 = leaf flag, bit0 = label (1 ⇒ Incorrect),
//!             otherwise an arena index (preorder: left == self + 1)
//! ```
//!
//! [`CompiledForest`] concatenates every tree's arena into one allocation
//! and keeps per-tree root references, so an ensemble walk touches a
//! single slab. Single-sample forest classification early-exits as soon
//! as the vote threshold is decided either way; batch classification
//! accumulates votes for a chunk of samples in a fixed array, tree by
//! tree, so each tree's arena region is streamed once per chunk.
//!
//! Batch classification ([`CompiledTree::classify_batch`]) walks many
//! samples in branchless lockstep: per-sample branches mispredict ~50%
//! on real trees and each flush discards the other samples' in-flight
//! loads, while independent dependency chains keep that many cache
//! misses overlapped. The lockstep round itself is vectorized in
//! [`crate::simd`]. At compile time each tree also builds a *packed
//! shadow arena* there — one u64 per split, leaves self-looping — and
//! any chunk whose runtime feature values fit 12 bits (Xentry's
//! counters always do; checked per chunk, exact by construction) walks
//! it at one gather plus a few ALU ops per 8-lane group per level.
//! Chunks outside that envelope take the tagged wide kernels over the
//! 24-byte records. Kernels (AVX-512 / AVX2 / portable scalar oracle)
//! are selectable per call through
//! [`CompiledTree::classify_batch_with`]; short tail groups are padded
//! to full width by replicating the last row, so every batch size stays
//! on the wide path.
//!
//! Arenas can additionally be laid out *profile-guided*: see
//! [`crate::layout`] for [`CompiledTree::compile_profiled`], which
//! re-emits the records hot-path-first from harvested branch counts.
//!
//! [`Node`]: crate::tree::Node

use crate::dataset::Label;
use crate::forest::RandomForest;
use crate::simd::{
    self, BatchWalker, LaneCols, PackedArena, LANES, MAX_SIMD_ARITY, PACKED_CHUNK, WIDTH,
};
use crate::tree::{DecisionTree, Node};

/// Child-reference tag: set ⇒ the reference is a leaf verdict, not an
/// arena index. Bit 0 then carries the label (1 ⇒ `Incorrect`).
pub const LEAF_BIT: u32 = 1 << 31;

/// Encode a leaf verdict as a child reference.
#[inline]
const fn leaf_ref(label: Label) -> u32 {
    LEAF_BIT
        | match label {
            Label::Correct => 0,
            Label::Incorrect => 1,
        }
}

/// Decode a leaf reference back into a label.
#[inline]
pub(crate) const fn leaf_label(r: u32) -> Label {
    if r & 1 == 1 {
        Label::Incorrect
    } else {
        Label::Correct
    }
}

/// One split record in the arena. `#[repr(C)]` keeps the layout fixed:
/// 8 (threshold) + 4 + 4 (children) + 1 (feature) + 7 pad = 24 bytes, so
/// two to three records share a cache line instead of one ~60-byte boxed
/// `Node::Split` allocation per miss.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledNode {
    /// `features[feature] <= threshold` goes left.
    pub threshold: u64,
    /// Left child reference (arena index or [`LEAF_BIT`]-tagged verdict).
    pub left: u32,
    /// Right child reference.
    pub right: u32,
    /// Feature column index (Table-I layouts have 5; 255 is plenty).
    pub feature: u8,
    /// Explicit (zeroed) tail padding. The SIMD walkers gather the
    /// feature field as a whole 64-bit word at record offset 16, so the
    /// bytes after `feature` must be initialized, not compiler padding.
    pub pad: [u8; 7],
}

/// Keep the child select a real conditional branch. LLVM if-converts the
/// two register moves into a `cmov`/indexed load, which chains every
/// level's load behind the previous compare — the walk becomes one long
/// serial dependency and loses the speculation that makes tree descent
/// fast. An empty asm block in one arm forces a branch, so the predictor
/// can run ahead and issue the next level's load speculatively.
#[inline(always)]
fn branch_barrier() {
    #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
    // SAFETY: empty asm, no operands, no memory or flag effects.
    unsafe {
        std::arch::asm!("", options(nostack, preserves_flags));
    }
}

/// Start pulling the record at reference `r` (leaf tags mask to index 0/1,
/// a harmless in-arena touch) into cache before the walk knows it needs
/// it. The left child is the next record — the hardware streamer already
/// has it — but the right child is an arbitrary index whose miss would
/// otherwise serialize the walk; issuing the prefetch before the compare
/// resolves overlaps that miss with the branch.
#[inline(always)]
fn prefetch_ref(nodes: &[CompiledNode], r: u32) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch never dereferences; any address is architecturally
    // safe, and this one stays within (or one element past) the arena.
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
            nodes.as_ptr().wrapping_add((r & !LEAF_BIT) as usize) as *const i8,
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (nodes, r);
}

/// Walk the arena from `r` until a leaf reference; returns that reference.
///
/// # Safety
/// Every non-leaf reference reachable from `r` must be a valid arena index
/// (guaranteed by [`emit`]) and `features` must cover every `feature`
/// index stored in the arena — callers check `features.len() >= arity`
/// once, so the per-level loads can skip bounds checks on the chain.
#[inline]
unsafe fn walk(nodes: &[CompiledNode], mut r: u32, features: &[u64]) -> u32 {
    while r & LEAF_BIT == 0 {
        let n = *nodes.get_unchecked(r as usize);
        prefetch_ref(nodes, n.right);
        if *features.get_unchecked(n.feature as usize) <= n.threshold {
            r = n.left;
        } else {
            branch_barrier();
            r = n.right;
        }
    }
    r
}

/// Advance [`LANES`] independent walks one level per round for `depth`
/// rounds, branchlessly: lanes that reached a leaf keep re-selecting their
/// verdict reference. No data-dependent branches means no pipeline
/// flushes, which is what lets the chains actually overlap.
///
/// This is the *wide-arity* path: each lane carries its own feature
/// slice, so there is no bound on the feature count. Models with arity
/// ≤ [`MAX_SIMD_ARITY`] take the vector kernels in [`crate::simd`]
/// instead.
///
/// # Safety
/// Same contract as [`walk`] for every lane's reference and feature slice.
#[inline]
unsafe fn walk_lanes(
    nodes: &[CompiledNode],
    refs: &mut [u32; LANES],
    feats: &[&[u64]; LANES],
    depth: usize,
) {
    if nodes.is_empty() {
        return; // every root reference is already a tagged verdict
    }
    let last = nodes.len() - 1;
    for _ in 0..depth {
        for lane in 0..LANES {
            let r = refs[lane];
            // Leaf-tagged lanes read a real record and discard the result.
            let n = *nodes.get_unchecked(((r & !LEAF_BIT) as usize).min(last));
            let f = *feats[lane].get_unchecked(n.feature as usize);
            let next = if f <= n.threshold { n.left } else { n.right };
            refs[lane] = if r & LEAF_BIT == 0 { next } else { r };
        }
    }
}

/// Like [`walk`] but counts the comparisons performed.
///
/// # Safety
/// Same contract as [`walk`].
#[inline]
unsafe fn walk_cost(nodes: &[CompiledNode], mut r: u32, features: &[u64]) -> usize {
    let mut cost = 0;
    while r & LEAF_BIT == 0 {
        let n = *nodes.get_unchecked(r as usize);
        cost += 1;
        if *features.get_unchecked(n.feature as usize) <= n.threshold {
            r = n.left;
        } else {
            branch_barrier();
            r = n.right;
        }
    }
    cost
}

/// Emit `node`'s splits into `nodes` in preorder; returns the reference
/// that reaches the subtree (an index, or a tagged verdict for a leaf).
fn emit(node: &Node, nodes: &mut Vec<CompiledNode>) -> u32 {
    match node {
        Node::Leaf { label, .. } => leaf_ref(*label),
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            assert!(*feature < 256, "feature index {feature} exceeds u8 arena");
            let idx = u32::try_from(nodes.len()).expect("arena exceeds u32 indices");
            assert!(idx & LEAF_BIT == 0, "arena exceeds leaf-taggable indices");
            nodes.push(CompiledNode {
                threshold: *threshold,
                left: 0,
                right: 0,
                feature: *feature as u8,
                pad: [0; 7],
            });
            // Preorder: the left subtree lands at idx + 1, so the hot
            // "<= threshold" path is a sequential read.
            let l = emit(left, nodes);
            let r = emit(right, nodes);
            nodes[idx as usize].left = l;
            nodes[idx as usize].right = r;
            idx
        }
    }
}

/// Highest feature index used by any record, plus one — the minimum
/// feature-slice length a walk may be given. Checked once per call so the
/// per-level loads can go unchecked.
fn arena_arity(nodes: &[CompiledNode]) -> usize {
    nodes
        .iter()
        .map(|n| n.feature as usize + 1)
        .max()
        .unwrap_or(0)
}

/// A [`DecisionTree`] compiled into a flat split arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledTree {
    pub(crate) nodes: Vec<CompiledNode>,
    /// Root reference: index 0 for any tree with at least one split, a
    /// tagged verdict for a single-leaf tree.
    pub(crate) root: u32,
    pub(crate) depth: usize,
    /// Minimum feature-slice length a classify call must provide.
    pub(crate) arity: usize,
    /// Records in the profile-weighted hot prefix of the arena (the
    /// leading run covering ≥90% of observed split visits). For an
    /// unprofiled layout this is the whole arena — no claim is made.
    pub(crate) hot_prefix: usize,
    /// One-u64-per-split shadow arena for the gather-once batch kernels
    /// (see [`crate::simd`]); `None` when the model is outside the packed
    /// envelope. Derived from `nodes` — rebuilt on every arena mutation.
    pub(crate) packed: Option<PackedArena>,
}

impl CompiledTree {
    /// Flatten a trained tree. Pure layout transformation — verdicts and
    /// costs are bit-identical to the boxed walker by construction (and by
    /// the proptest in `tests/compiled_equivalence.rs`).
    pub fn compile(tree: &DecisionTree) -> CompiledTree {
        let mut nodes = Vec::with_capacity(tree.nr_nodes() / 2 + 1);
        let root = emit(&tree.root, &mut nodes);
        CompiledTree {
            arity: arena_arity(&nodes),
            hot_prefix: nodes.len(),
            packed: PackedArena::build(&nodes, arena_arity(&nodes)),
            nodes,
            root,
            depth: tree.depth(),
        }
    }

    /// Classify one feature vector — same contract as
    /// [`DecisionTree::classify`].
    #[inline]
    pub fn classify(&self, features: &[u64]) -> Label {
        assert!(features.len() >= self.arity, "feature vector too short");
        // SAFETY: emit() produced only in-arena indices; arity checked.
        leaf_label(unsafe { walk(&self.nodes, self.root, features) })
    }

    /// Comparisons performed — same contract as
    /// [`DecisionTree::classify_cost`].
    #[inline]
    pub fn classify_cost(&self, features: &[u64]) -> usize {
        assert!(features.len() >= self.arity, "feature vector too short");
        // SAFETY: emit() produced only in-arena indices; arity checked.
        unsafe { walk_cost(&self.nodes, self.root, features) }
    }

    /// Classify a batch, one verdict per input row, with the widest
    /// batch-walk kernel the CPU supports. Groups of `LANES` rows walk
    /// the arena in lockstep so their load chains overlap; the final
    /// short group is padded to full width by replicating the last row,
    /// so fleet drain batches and campaign tails stay on the fast path.
    /// Accepts `[u64; 5]` rows (the Table-I layout), slices, or anything
    /// slice-like.
    pub fn classify_batch<I: AsRef<[u64]>>(&self, inputs: &[I], out: &mut [Label]) {
        self.classify_batch_with(BatchWalker::Auto, inputs, out);
    }

    /// [`CompiledTree::classify_batch`] with an explicit kernel choice —
    /// benchmarks pin kernels with this, and the equivalence suite uses
    /// [`BatchWalker::Scalar`] as the oracle against the vector paths.
    pub fn classify_batch_with<I: AsRef<[u64]>>(
        &self,
        walker: BatchWalker,
        inputs: &[I],
        out: &mut [Label],
    ) {
        assert_eq!(
            inputs.len(),
            out.len(),
            "classify_batch: inputs and out must have equal length"
        );
        if inputs.is_empty() {
            return;
        }
        for f in inputs {
            assert!(f.as_ref().len() >= self.arity, "feature vector too short");
        }
        if self.nodes.is_empty() {
            // Single-leaf tree: the root reference is the verdict.
            out.fill(leaf_label(self.root));
            return;
        }
        if let Some(pa) = &self.packed {
            // Packed fast path: one gather per level per 8-lane group,
            // exact whenever the chunk's feature values fit 12 bits —
            // chunks that don't drop to the tagged kernels below.
            let kernel = simd::resolve(walker);
            let root = pa.entry(self.root);
            let mut fps = [0u64; PACKED_CHUNK];
            let mut refs = [0u32; PACKED_CHUNK];
            for (gi, go) in inputs
                .chunks(PACKED_CHUNK)
                .zip(out.chunks_mut(PACKED_CHUNK))
            {
                if let Some(lanes) = simd::stage_packed(gi, self.arity, &mut fps) {
                    refs[..lanes].fill(root);
                    // SAFETY: packed references are in-bounds by
                    // construction; kernel came from resolve().
                    unsafe {
                        simd::walk_packed(kernel, pa, &mut refs[..lanes], &fps[..lanes], self.depth)
                    };
                    for (o, &r) in go.iter_mut().zip(refs.iter()) {
                        *o = pa.label(r);
                    }
                } else {
                    self.classify_batch_tagged(kernel, gi, go);
                }
            }
            return;
        }
        if self.arity <= MAX_SIMD_ARITY {
            self.classify_batch_tagged(simd::resolve(walker), inputs, out);
        } else {
            // Wide-arity models: per-lane feature slices, scalar lockstep.
            for (gi, go) in inputs.chunks(LANES).zip(out.chunks_mut(LANES)) {
                // Pad short groups by replicating the last row's slice.
                let feats: [&[u64]; LANES] =
                    std::array::from_fn(|k| gi[k.min(gi.len() - 1)].as_ref());
                let mut refs = [self.root; LANES];
                // SAFETY: emit() produced only in-arena indices; arity checked.
                unsafe { walk_lanes(&self.nodes, &mut refs, &feats, self.depth) };
                for (o, r) in go.iter_mut().zip(refs) {
                    *o = leaf_label(r);
                }
            }
        }
    }

    /// Classify `n` rows produced on demand by `row(i)` — the
    /// staging-fused batch entry. Rows are packed straight into the
    /// kernel's per-lane feature words, so a caller whose records live
    /// in a different shape (the detector's `FeatureVec`) pays one read
    /// of its fields per record instead of a row-array copy plus a
    /// re-read. Verdicts are identical to materializing the rows and
    /// calling [`CompiledTree::classify_batch`]. `row` is invoked only
    /// with indices in `0..n` (each possibly more than once), which
    /// callers may rely on to skip their own bounds checks.
    pub fn classify_batch_rows<const A: usize>(
        &self,
        walker: BatchWalker,
        n: usize,
        row: impl Fn(usize) -> [u64; A],
        out: &mut [Label],
    ) {
        assert_eq!(n, out.len(), "classify_batch_rows: n and out must agree");
        assert!(A >= self.arity, "feature rows too short");
        if n == 0 {
            return;
        }
        if self.nodes.is_empty() {
            out.fill(leaf_label(self.root));
            return;
        }
        if let Some(pa) = &self.packed {
            let kernel = simd::resolve(walker);
            let root = pa.entry(self.root);
            let mut fps = [0u64; PACKED_CHUNK];
            let mut refs = [0u32; PACKED_CHUNK];
            for (start, go) in (0..n)
                .step_by(PACKED_CHUNK)
                .zip(out.chunks_mut(PACKED_CHUNK))
            {
                let len = go.len();
                // Exact-arity rows stage through the const-unrolled
                // packer; over-wide rows only pack their leading arity
                // fields (trailing features are never compared).
                let staged = if self.arity == A {
                    simd::stage_packed_const::<A>(len, |k| row(start + k), &mut fps)
                } else {
                    simd::stage_packed_with(len, |k| row(start + k), self.arity, &mut fps)
                };
                if let Some(lanes) = staged {
                    refs[..lanes].fill(root);
                    // SAFETY: packed references are in-bounds by
                    // construction; kernel came from resolve().
                    unsafe {
                        simd::walk_packed(kernel, pa, &mut refs[..lanes], &fps[..lanes], self.depth)
                    };
                    for (o, &r) in go.iter_mut().zip(refs.iter()) {
                        *o = pa.label(r);
                    }
                } else {
                    // Oversized values in this chunk: materialize it and
                    // take the exact tagged path.
                    let mut rows = [[0u64; A]; PACKED_CHUNK];
                    for (k, slot) in rows.iter_mut().enumerate().take(len) {
                        *slot = row(start + k);
                    }
                    self.classify_batch_tagged(kernel, &rows[..len], go);
                }
            }
            return;
        }
        // No packed shadow: materialize chunks and take the generic path.
        let mut rows = [[0u64; A]; PACKED_CHUNK];
        for (start, go) in (0..n)
            .step_by(PACKED_CHUNK)
            .zip(out.chunks_mut(PACKED_CHUNK))
        {
            let len = go.len();
            for (k, slot) in rows.iter_mut().enumerate().take(len) {
                *slot = row(start + k);
            }
            self.classify_batch_with(walker, &rows[..len], go);
        }
    }

    /// The tagged-arena vector path: exact for any u64 feature values.
    /// Serves models without a packed shadow and packed-envelope chunks
    /// whose runtime values overflow 12 bits.
    fn classify_batch_tagged<I: AsRef<[u64]>>(
        &self,
        kernel: simd::Kernel,
        inputs: &[I],
        out: &mut [Label],
    ) {
        debug_assert!(self.arity <= MAX_SIMD_ARITY && !self.nodes.is_empty());
        let mut cols = [LaneCols::zeroed(), LaneCols::zeroed()];
        for (gi, go) in inputs.chunks(WIDTH).zip(out.chunks_mut(WIDTH)) {
            simd::fill_pair(&mut cols, gi, self.arity);
            let mut refs = [self.root; WIDTH];
            // SAFETY: emit()/reorder produced only in-arena indices;
            // arity (≤ MAX_SIMD_ARITY) and column coverage checked by the
            // caller.
            unsafe { simd::walk_wide(kernel, &self.nodes, &mut refs, &cols, self.depth) };
            for (o, r) in go.iter_mut().zip(refs) {
                *o = leaf_label(r);
            }
        }
    }

    /// Split records in the arena (the boxed tree's `nr_nodes` counts
    /// leaves too; here leaves cost zero bytes).
    pub fn nr_splits(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum comparisons on any path.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Arena bytes actually touched by walks.
    pub fn arena_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<CompiledNode>()
    }

    /// Bytes of the profile-weighted hot prefix: the leading run of
    /// records that covered ≥90% of split visits when the arena was
    /// re-laid out by [`CompiledTree::reorder_profiled`]. For an
    /// unprofiled arena this equals [`CompiledTree::arena_bytes`] —
    /// nothing is claimed about residency. Exported as a fleet gauge so
    /// operators can see how much of the model the cache must hold to
    /// serve the common path.
    pub fn hot_prefix_bytes(&self) -> usize {
        self.hot_prefix * std::mem::size_of::<CompiledNode>()
    }

    /// Defined (non-padding) bits per arena record, the coordinate space
    /// of [`CompiledTree::flip_bit`].
    pub const NODE_BITS: usize = 136;

    /// Total defined bits in the arena — the fault space a soft error in
    /// the deployed model slab could hit.
    pub fn logical_bits(&self) -> usize {
        self.nodes.len() * Self::NODE_BITS
    }

    /// Flip one bit of one arena record, in the logical field layout
    /// `[threshold:64 | left:32 | right:32 | feature:8]` (136 bits per
    /// record, padding excluded). This is the chaos-injection entry point:
    /// it models a soft error striking the deployed model's memory, the
    /// same single-bit-flip fault model `faultsim::injection` applies to
    /// architectural register state. The corrupted arena is exactly what
    /// [`CompiledTree::validate`] and the fleet's canary swap validation
    /// exist to catch — never deploy one.
    pub fn flip_bit(&mut self, bit: usize) {
        assert!(bit < self.logical_bits(), "bit {bit} outside the arena");
        let node = &mut self.nodes[bit / Self::NODE_BITS];
        match bit % Self::NODE_BITS {
            b @ 0..=63 => node.threshold ^= 1u64 << b,
            b @ 64..=95 => node.left ^= 1u32 << (b - 64),
            b @ 96..=127 => node.right ^= 1u32 << (b - 96),
            b => node.feature ^= 1u8 << (b - 128),
        }
        // Re-derive the packed shadow so the corruption is visible on the
        // fast path too — a fault that only struck a stale copy would
        // vanish instead of being caught by validate()/canary layers.
        self.packed = PackedArena::build(&self.nodes, self.arity);
    }

    /// Structural integrity check over the arena — the deploy-time gate
    /// in front of the `unsafe` unchecked walkers.
    ///
    /// [`emit`] guarantees these invariants by construction; a bit flip in
    /// a stored child reference or feature index silently breaks them, and
    /// the unchecked walk would then read out of bounds. `validate`
    /// re-proves, in O(arena):
    ///
    /// * every child reference is either a well-formed leaf tag (only the
    ///   label bit set below [`LEAF_BIT`]) or an in-bounds index;
    /// * every index reference points strictly forward (preorder), so
    ///   walks terminate and the arena is acyclic;
    /// * every feature index is below the recorded arity, so walks stay
    ///   inside the feature slice;
    /// * the recorded depth matches the longest root path — the lockstep
    ///   batch walker runs exactly `depth` rounds, so an understated depth
    ///   would truncate walks (wrong verdicts, not UB).
    ///
    /// Semantic corruption (a flipped threshold or swapped children) keeps
    /// the structure valid; catching it takes canary classification
    /// against a reference walker, which is the fleet model-swap layer's
    /// job.
    pub fn validate(&self) -> Result<(), ArenaFault> {
        let check_ref = |parent: usize, r: u32| -> Result<(), ArenaFault> {
            if r & LEAF_BIT != 0 {
                if r & !(LEAF_BIT | 1) != 0 {
                    return Err(ArenaFault::MalformedLeaf {
                        parent,
                        reference: r,
                    });
                }
            } else if r as usize >= self.nodes.len() {
                return Err(ArenaFault::OutOfBounds {
                    parent,
                    reference: r,
                });
            } else if r as usize <= parent {
                return Err(ArenaFault::BackwardEdge {
                    parent,
                    reference: r,
                });
            }
            Ok(())
        };
        if self.nodes.is_empty() {
            if self.root & LEAF_BIT == 0 || self.root & !(LEAF_BIT | 1) != 0 {
                return Err(ArenaFault::MalformedLeaf {
                    parent: 0,
                    reference: self.root,
                });
            }
            return Ok(());
        }
        if self.root != 0 {
            // emit() always lands the first split at index 0.
            return Err(ArenaFault::BadRoot {
                reference: self.root,
            });
        }
        for (i, n) in self.nodes.iter().enumerate() {
            check_ref(i, n.left)?;
            check_ref(i, n.right)?;
            if n.feature as usize >= self.arity {
                return Err(ArenaFault::FeatureOutOfRange {
                    parent: i,
                    feature: n.feature,
                    arity: self.arity,
                });
            }
        }
        // Forward-only references make the arena a DAG over increasing
        // indices, so one pass in index order computes the longest
        // root-to-leaf path without recursion.
        let mut path_len = vec![0usize; self.nodes.len()];
        let mut max_depth = 0usize;
        for (i, n) in self.nodes.iter().enumerate() {
            let here = path_len[i] + 1; // comparisons on paths through i
            for r in [n.left, n.right] {
                if r & LEAF_BIT != 0 {
                    max_depth = max_depth.max(here);
                } else {
                    let c = r as usize;
                    path_len[c] = path_len[c].max(here);
                }
            }
        }
        if max_depth != self.depth {
            return Err(ArenaFault::DepthMismatch {
                recorded: self.depth,
                actual: max_depth,
            });
        }
        Ok(())
    }
}

/// Why [`CompiledTree::validate`] rejected an arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaFault {
    /// A leaf-tagged reference carries bits other than the label bit.
    MalformedLeaf { parent: usize, reference: u32 },
    /// An index reference points past the end of the arena.
    OutOfBounds { parent: usize, reference: u32 },
    /// An index reference points at or before its parent (cycle risk).
    BackwardEdge { parent: usize, reference: u32 },
    /// The root reference is not record 0 of a non-empty arena.
    BadRoot { reference: u32 },
    /// A record's feature index exceeds the recorded arity.
    FeatureOutOfRange {
        parent: usize,
        feature: u8,
        arity: usize,
    },
    /// The recorded depth disagrees with the longest root path.
    DepthMismatch { recorded: usize, actual: usize },
}

impl std::fmt::Display for ArenaFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArenaFault::MalformedLeaf { parent, reference } => {
                write!(
                    f,
                    "record {parent}: malformed leaf reference {reference:#010x}"
                )
            }
            ArenaFault::OutOfBounds { parent, reference } => {
                write!(
                    f,
                    "record {parent}: child reference {reference} out of bounds"
                )
            }
            ArenaFault::BackwardEdge { parent, reference } => {
                write!(f, "record {parent}: backward child reference {reference}")
            }
            ArenaFault::BadRoot { reference } => {
                write!(f, "root reference {reference:#010x} is not record 0")
            }
            ArenaFault::FeatureOutOfRange {
                parent,
                feature,
                arity,
            } => write!(
                f,
                "record {parent}: feature index {feature} outside arity {arity}"
            ),
            ArenaFault::DepthMismatch { recorded, actual } => {
                write!(
                    f,
                    "recorded depth {recorded} != actual longest path {actual}"
                )
            }
        }
    }
}

impl std::error::Error for ArenaFault {}

/// How many samples a forest batch scores per vote-array refill.
const BATCH_CHUNK: usize = 64;

/// A [`RandomForest`] compiled into one shared arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledForest {
    nodes: Vec<CompiledNode>,
    /// One root reference per tree, into the shared arena.
    roots: Vec<u32>,
    vote_threshold: usize,
    /// Minimum feature-slice length a classify call must provide.
    arity: usize,
    /// Deepest member tree — the lockstep round count for batch walks.
    max_depth: usize,
    /// Packed shadow of the shared arena (see [`CompiledTree`]).
    packed: Option<PackedArena>,
}

impl CompiledForest {
    /// Flatten every tree into a single contiguous arena.
    pub fn compile(forest: &RandomForest) -> CompiledForest {
        let mut nodes = Vec::new();
        let roots = forest
            .trees
            .iter()
            .map(|t| emit(&t.root, &mut nodes))
            .collect();
        CompiledForest {
            arity: arena_arity(&nodes),
            packed: PackedArena::build(&nodes, arena_arity(&nodes)),
            nodes,
            roots,
            vote_threshold: forest.vote_threshold,
            max_depth: forest.trees.iter().map(|t| t.depth()).max().unwrap_or(0),
        }
    }

    /// Number of trees voting `Incorrect` — same contract as
    /// [`RandomForest::incorrect_votes`] (always walks every tree).
    pub fn incorrect_votes(&self, features: &[u64]) -> usize {
        assert!(features.len() >= self.arity, "feature vector too short");
        self.roots
            .iter()
            // SAFETY: emit() produced only in-arena indices; arity checked.
            .filter(|&&r| leaf_label(unsafe { walk(&self.nodes, r, features) }) == Label::Incorrect)
            .count()
    }

    /// Majority-vote classification, early-exiting as soon as the verdict
    /// is decided: either the threshold is reached, or the remaining trees
    /// cannot reach it. The label is provably identical to counting every
    /// vote, which the equivalence proptest checks.
    pub fn classify(&self, features: &[u64]) -> Label {
        assert!(features.len() >= self.arity, "feature vector too short");
        let total = self.roots.len();
        let mut votes = 0usize;
        for (i, &r) in self.roots.iter().enumerate() {
            // SAFETY: emit() produced only in-arena indices; arity checked.
            if leaf_label(unsafe { walk(&self.nodes, r, features) }) == Label::Incorrect {
                votes += 1;
                if votes >= self.vote_threshold {
                    return Label::Incorrect;
                }
            }
            let remaining = total - i - 1;
            if votes + remaining < self.vote_threshold {
                return Label::Correct;
            }
        }
        Label::Correct
    }

    /// Total comparisons across *all* trees — same contract as
    /// [`RandomForest::classify_cost`], so no early exit here.
    pub fn classify_cost(&self, features: &[u64]) -> usize {
        assert!(features.len() >= self.arity, "feature vector too short");
        self.roots
            .iter()
            // SAFETY: emit() produced only in-arena indices; arity checked.
            .map(|&r| unsafe { walk_cost(&self.nodes, r, features) })
            .sum()
    }

    /// Batch classification: votes for a chunk of samples accumulate in a
    /// fixed array while the trees are walked in arena order, so each
    /// tree's records are streamed once per chunk instead of once per
    /// sample. Within a tree, samples advance in lockstep groups of
    /// `LANES` on the widest kernel the CPU supports (short tail groups
    /// padded by replicating the last row). Full-count voting — the
    /// label equals the early-exiting [`CompiledForest::classify`] by the
    /// same threshold argument.
    pub fn classify_batch<I: AsRef<[u64]>>(&self, inputs: &[I], out: &mut [Label]) {
        self.classify_batch_with(BatchWalker::Auto, inputs, out);
    }

    /// [`CompiledForest::classify_batch`] with an explicit kernel choice
    /// (see [`CompiledTree::classify_batch_with`]).
    pub fn classify_batch_with<I: AsRef<[u64]>>(
        &self,
        walker: BatchWalker,
        inputs: &[I],
        out: &mut [Label],
    ) {
        assert_eq!(
            inputs.len(),
            out.len(),
            "classify_batch: inputs and out must have equal length"
        );
        for f in inputs {
            assert!(f.as_ref().len() >= self.arity, "feature vector too short");
        }
        let thr = self.vote_threshold as u32;
        let verdict = |v: u32| {
            if v >= thr {
                Label::Incorrect
            } else {
                Label::Correct
            }
        };
        if self.nodes.is_empty() {
            // Every tree is a single leaf: one vote count fits all rows.
            let votes = self
                .roots
                .iter()
                .filter(|&&r| leaf_label(r) == Label::Incorrect)
                .count() as u32;
            out.fill(verdict(votes));
            return;
        }
        let wide = self.arity > MAX_SIMD_ARITY;
        let kernel = simd::resolve(walker);
        // Feature columns for each lane-pair group of the chunk, staged
        // once and reused across every tree of the ensemble.
        let mut cols: Vec<[LaneCols; 2]> = Vec::new();
        let mut fps = [0u64; PACKED_CHUNK];
        let mut refs = [0u32; PACKED_CHUNK];
        for (chunk_in, chunk_out) in inputs.chunks(BATCH_CHUNK).zip(out.chunks_mut(BATCH_CHUNK)) {
            let mut votes = [0u32; BATCH_CHUNK];
            let votes = &mut votes[..chunk_in.len()];
            // Packed fast path: feature words staged once per chunk and
            // reused across every tree; chunks whose values overflow 12
            // bits drop to the exact tagged kernels below.
            if let Some(pa) = &self.packed {
                if let Some(lanes) = simd::stage_packed(chunk_in, self.arity, &mut fps) {
                    for &root in &self.roots {
                        refs[..lanes].fill(pa.entry(root));
                        // SAFETY: packed references are in-bounds by
                        // construction; kernel came from resolve().
                        unsafe {
                            simd::walk_packed(
                                kernel,
                                pa,
                                &mut refs[..lanes],
                                &fps[..lanes],
                                self.max_depth,
                            )
                        };
                        for (v, &r) in votes.iter_mut().zip(refs.iter()) {
                            *v += pa.vote(r);
                        }
                    }
                    for (o, &v) in chunk_out.iter_mut().zip(votes.iter()) {
                        *o = verdict(v);
                    }
                    continue;
                }
            }
            if !wide {
                cols.clear();
                for gi in chunk_in.chunks(WIDTH) {
                    let mut c = [LaneCols::zeroed(), LaneCols::zeroed()];
                    simd::fill_pair(&mut c, gi, self.arity);
                    cols.push(c);
                }
            }
            for &root in &self.roots {
                for (g, (gi, gv)) in chunk_in
                    .chunks(WIDTH)
                    .zip(votes.chunks_mut(WIDTH))
                    .enumerate()
                {
                    if wide {
                        for (li, lv) in gi.chunks(LANES).zip(gv.chunks_mut(LANES)) {
                            // Pad short groups by replicating the last slice.
                            let feats: [&[u64]; LANES] =
                                std::array::from_fn(|k| li[k.min(li.len() - 1)].as_ref());
                            let mut refs = [root; LANES];
                            // SAFETY: emit() produced in-arena indices; arity
                            // checked once over the whole batch above.
                            unsafe { walk_lanes(&self.nodes, &mut refs, &feats, self.max_depth) };
                            for (v, r) in lv.iter_mut().zip(refs) {
                                *v += (leaf_label(r) == Label::Incorrect) as u32;
                            }
                        }
                    } else {
                        let mut refs = [root; WIDTH];
                        // SAFETY: as above, plus arity ≤ MAX_SIMD_ARITY so
                        // the staged columns cover every feature index.
                        unsafe {
                            simd::walk_wide(
                                kernel,
                                &self.nodes,
                                &mut refs,
                                &cols[g],
                                self.max_depth,
                            )
                        };
                        for (v, r) in gv.iter_mut().zip(refs) {
                            *v += (leaf_label(r) == Label::Incorrect) as u32;
                        }
                    }
                }
            }
            for (o, &v) in chunk_out.iter_mut().zip(votes.iter()) {
                *o = verdict(v);
            }
        }
    }

    /// Trees in the ensemble.
    pub fn nr_trees(&self) -> usize {
        self.roots.len()
    }

    /// Split records across all trees.
    pub fn nr_splits(&self) -> usize {
        self.nodes.len()
    }

    /// Votes required for an `Incorrect` verdict.
    pub fn vote_threshold(&self) -> usize {
        self.vote_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, Sample};
    use crate::forest::ForestConfig;
    use crate::tree::TrainConfig;

    fn mixed_dataset(n: usize) -> Dataset {
        let mut ds = Dataset::new(&["a", "b", "c"]);
        for i in 0..n as u64 {
            let label = if (i * 13 + 5) % 7 < 2 {
                Label::Incorrect
            } else {
                Label::Correct
            };
            ds.push(Sample::new(vec![i % 31, (i * 3) % 53, i % 11], label));
        }
        ds
    }

    #[test]
    fn record_layout_is_24_bytes() {
        assert_eq!(std::mem::size_of::<CompiledNode>(), 24);
    }

    #[test]
    fn compiled_tree_matches_boxed_on_training_data() {
        let ds = mixed_dataset(300);
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        let compiled = CompiledTree::compile(&tree);
        assert_eq!(compiled.depth(), tree.depth());
        for s in &ds.samples {
            assert_eq!(compiled.classify(&s.features), tree.classify(&s.features));
            assert_eq!(
                compiled.classify_cost(&s.features),
                tree.classify_cost(&s.features)
            );
        }
    }

    #[test]
    fn validate_accepts_every_trained_arena() {
        for n in [20, 100, 300] {
            let ds = mixed_dataset(n);
            let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
            CompiledTree::compile(&tree).validate().unwrap();
        }
        // Single-leaf arena too.
        let mut ds = Dataset::new(&["x"]);
        for i in 0..4u64 {
            ds.push(Sample::new(vec![i], Label::Correct));
        }
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        CompiledTree::compile(&tree).validate().unwrap();
    }

    #[test]
    fn validate_catches_reference_and_feature_flips() {
        let ds = mixed_dataset(300);
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        let compiled = CompiledTree::compile(&tree);
        assert!(compiled.nr_splits() > 3, "need a multi-split tree");

        // A high bit flipped into a child index sends it out of bounds
        // (or turns it into a malformed leaf tag).
        let mut corrupt = compiled.clone();
        corrupt.flip_bit(64 + 30); // record 0, left reference bit 30
        assert!(corrupt.validate().is_err(), "{:?}", corrupt.validate());

        // A feature-index flip escapes the arity.
        let mut corrupt = compiled.clone();
        corrupt.flip_bit(128 + 7); // record 0, feature bit 7
        assert!(matches!(
            corrupt.validate(),
            Err(ArenaFault::FeatureOutOfRange { .. })
        ));

        // Structural validation is deliberately blind to threshold flips —
        // the canary layer owns those.
        let mut corrupt = compiled.clone();
        corrupt.flip_bit(63); // record 0, threshold high bit
        corrupt.validate().unwrap();
        let diverged = ds
            .samples
            .iter()
            .any(|s| corrupt.classify(&s.features) != compiled.classify(&s.features));
        assert!(diverged, "a threshold high-bit flip must change verdicts");
    }

    #[test]
    fn flip_bit_round_trips() {
        let ds = mixed_dataset(120);
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        let compiled = CompiledTree::compile(&tree);
        for bit in [0, 63, 64, 95, 96, 127, 128, 135] {
            let mut c = compiled.clone();
            c.flip_bit(bit);
            assert_ne!(c.nodes[0], compiled.nodes[0], "bit {bit} must land");
            c.flip_bit(bit);
            assert_eq!(c, compiled, "double flip of bit {bit} must restore");
        }
    }

    #[test]
    fn single_leaf_tree_compiles_to_empty_arena() {
        let mut ds = Dataset::new(&["x"]);
        for i in 0..10u64 {
            ds.push(Sample::new(vec![i], Label::Incorrect));
        }
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        let compiled = CompiledTree::compile(&tree);
        assert_eq!(compiled.nr_splits(), 0);
        assert_eq!(compiled.classify(&[5]), Label::Incorrect);
        assert_eq!(compiled.classify_cost(&[5]), 0);
    }

    #[test]
    fn preorder_left_child_is_next_record() {
        let ds = mixed_dataset(300);
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        let compiled = CompiledTree::compile(&tree);
        assert!(compiled.nr_splits() > 1, "need a multi-split tree");
        for (i, n) in compiled.nodes.iter().enumerate() {
            if n.left & LEAF_BIT == 0 {
                assert_eq!(n.left as usize, i + 1, "left child must follow its parent");
            }
        }
    }

    #[test]
    fn batch_matches_single_sample() {
        let ds = mixed_dataset(200);
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        let compiled = CompiledTree::compile(&tree);
        let rows: Vec<&[u64]> = ds.samples.iter().map(|s| s.features.as_slice()).collect();
        let mut out = vec![Label::Correct; rows.len()];
        compiled.classify_batch(&rows, &mut out);
        for (s, o) in ds.samples.iter().zip(out) {
            assert_eq!(o, compiled.classify(&s.features));
        }
    }

    #[test]
    fn compiled_forest_matches_boxed() {
        let ds = mixed_dataset(240);
        let forest = RandomForest::train(&ds, &ForestConfig::default_random_forest(3, 17));
        let compiled = CompiledForest::compile(&forest);
        assert_eq!(compiled.nr_trees(), forest.trees.len());
        let mut out = vec![Label::Correct; ds.len()];
        let rows: Vec<&[u64]> = ds.samples.iter().map(|s| s.features.as_slice()).collect();
        compiled.classify_batch(&rows, &mut out);
        for (s, o) in ds.samples.iter().zip(out) {
            assert_eq!(compiled.classify(&s.features), forest.classify(&s.features));
            assert_eq!(o, forest.classify(&s.features));
            assert_eq!(
                compiled.incorrect_votes(&s.features),
                forest.incorrect_votes(&s.features)
            );
            assert_eq!(
                compiled.classify_cost(&s.features),
                forest.classify_cost(&s.features)
            );
        }
    }

    #[test]
    fn forest_early_exit_agrees_with_full_count_at_extreme_thresholds() {
        let ds = mixed_dataset(240);
        for threshold in [1, 8, 15] {
            let mut cfg = ForestConfig::default_random_forest(3, 23);
            cfg.vote_threshold = Some(threshold);
            let forest = RandomForest::train(&ds, &cfg);
            let compiled = CompiledForest::compile(&forest);
            for s in &ds.samples {
                assert_eq!(
                    compiled.classify(&s.features),
                    forest.classify(&s.features),
                    "threshold {threshold}"
                );
            }
        }
    }
}
