//! Compiled flat-arena inference: the deployable form of a trained model.
//!
//! The boxed [`Node`] tree is ideal for training, pruning and rule dumps,
//! but classifying with it chases one heap pointer per level — a cache
//! miss per comparison on the VM-entry hot path the paper fights to keep
//! near-zero. [`CompiledTree`] flattens the splits into a contiguous arena
//! of fixed-size records laid out in preorder (each split's left child is
//! the next record), so the common short path walks forward through memory
//! the prefetcher already has. Leaves are not stored at all: a child
//! reference with [`LEAF_BIT`] set *is* the verdict.
//!
//! ```text
//!  CompiledNode (repr C, 24 bytes):
//!  ┌───────────────┬────────┬────────┬─────────┬─────┐
//!  │ threshold u64 │ left   │ right  │ feature │ pad │
//!  │               │ u32    │ u32    │ u8      │     │
//!  └───────────────┴────────┴────────┴─────────┴─────┘
//!  child ref: bit31 = leaf flag, bit0 = label (1 ⇒ Incorrect),
//!             otherwise an arena index (preorder: left == self + 1)
//! ```
//!
//! [`CompiledForest`] concatenates every tree's arena into one allocation
//! and keeps per-tree root references, so an ensemble walk touches a
//! single slab. Single-sample forest classification early-exits as soon
//! as the vote threshold is decided either way; batch classification
//! accumulates votes for a chunk of samples in a fixed array, tree by
//! tree, so each tree's arena region is streamed once per chunk.
//!
//! Batch classification ([`CompiledTree::classify_batch`]) walks eight
//! samples in branchless lockstep (`walk_lanes`): per-sample branches
//! mispredict ~50% on real trees and each flush discards the other
//! samples' in-flight loads, while eight independent dependency chains
//! advanced by `cmov` keep that many cache misses overlapped. Finished
//! lanes idle on their leaf reference until the round count (the tree
//! depth) expires.
//!
//! [`Node`]: crate::tree::Node

use crate::dataset::Label;
use crate::forest::RandomForest;
use crate::tree::{DecisionTree, Node};

/// Child-reference tag: set ⇒ the reference is a leaf verdict, not an
/// arena index. Bit 0 then carries the label (1 ⇒ `Incorrect`).
pub const LEAF_BIT: u32 = 1 << 31;

/// Encode a leaf verdict as a child reference.
#[inline]
const fn leaf_ref(label: Label) -> u32 {
    LEAF_BIT
        | match label {
            Label::Correct => 0,
            Label::Incorrect => 1,
        }
}

/// Decode a leaf reference back into a label.
#[inline]
const fn leaf_label(r: u32) -> Label {
    if r & 1 == 1 {
        Label::Incorrect
    } else {
        Label::Correct
    }
}

/// One split record in the arena. `#[repr(C)]` keeps the layout fixed:
/// 8 (threshold) + 4 + 4 (children) + 1 (feature) + 7 pad = 24 bytes, so
/// two to three records share a cache line instead of one ~60-byte boxed
/// `Node::Split` allocation per miss.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledNode {
    /// `features[feature] <= threshold` goes left.
    pub threshold: u64,
    /// Left child reference (arena index or [`LEAF_BIT`]-tagged verdict).
    pub left: u32,
    /// Right child reference.
    pub right: u32,
    /// Feature column index (Table-I layouts have 5; 255 is plenty).
    pub feature: u8,
}

/// Keep the child select a real conditional branch. LLVM if-converts the
/// two register moves into a `cmov`/indexed load, which chains every
/// level's load behind the previous compare — the walk becomes one long
/// serial dependency and loses the speculation that makes tree descent
/// fast. An empty asm block in one arm forces a branch, so the predictor
/// can run ahead and issue the next level's load speculatively.
#[inline(always)]
fn branch_barrier() {
    #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
    // SAFETY: empty asm, no operands, no memory or flag effects.
    unsafe {
        std::arch::asm!("", options(nostack, preserves_flags));
    }
}

/// Start pulling the record at reference `r` (leaf tags mask to index 0/1,
/// a harmless in-arena touch) into cache before the walk knows it needs
/// it. The left child is the next record — the hardware streamer already
/// has it — but the right child is an arbitrary index whose miss would
/// otherwise serialize the walk; issuing the prefetch before the compare
/// resolves overlaps that miss with the branch.
#[inline(always)]
fn prefetch_ref(nodes: &[CompiledNode], r: u32) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch never dereferences; any address is architecturally
    // safe, and this one stays within (or one element past) the arena.
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
            nodes.as_ptr().wrapping_add((r & !LEAF_BIT) as usize) as *const i8,
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (nodes, r);
}

/// Walk the arena from `r` until a leaf reference; returns that reference.
///
/// # Safety
/// Every non-leaf reference reachable from `r` must be a valid arena index
/// (guaranteed by [`emit`]) and `features` must cover every `feature`
/// index stored in the arena — callers check `features.len() >= arity`
/// once, so the per-level loads can skip bounds checks on the chain.
#[inline]
unsafe fn walk(nodes: &[CompiledNode], mut r: u32, features: &[u64]) -> u32 {
    while r & LEAF_BIT == 0 {
        let n = *nodes.get_unchecked(r as usize);
        prefetch_ref(nodes, n.right);
        if *features.get_unchecked(n.feature as usize) <= n.threshold {
            r = n.left;
        } else {
            branch_barrier();
            r = n.right;
        }
    }
    r
}

/// How many independent walks the batch walker advances in lockstep. One
/// walk is a serial load chain (each level's address depends on the
/// previous compare), so a lone walk runs at cache latency per level;
/// eight chains overlap their misses and keep the load ports busy.
const LANES: usize = 8;

/// Advance [`LANES`] independent walks one level per round for `depth`
/// rounds, branchlessly: lanes that reached a leaf keep re-selecting their
/// verdict reference. No data-dependent branches means no pipeline
/// flushes, which is what lets the chains actually overlap.
///
/// # Safety
/// Same contract as [`walk`] for every lane's reference and feature slice.
#[inline]
unsafe fn walk_lanes(
    nodes: &[CompiledNode],
    refs: &mut [u32; LANES],
    feats: &[&[u64]; LANES],
    depth: usize,
) {
    if nodes.is_empty() {
        return; // every root reference is already a tagged verdict
    }
    let last = nodes.len() - 1;
    for _ in 0..depth {
        for lane in 0..LANES {
            let r = refs[lane];
            // Leaf-tagged lanes read a real record and discard the result.
            let n = *nodes.get_unchecked(((r & !LEAF_BIT) as usize).min(last));
            let f = *feats[lane].get_unchecked(n.feature as usize);
            let next = if f <= n.threshold { n.left } else { n.right };
            refs[lane] = if r & LEAF_BIT == 0 { next } else { r };
        }
    }
}

/// Like [`walk`] but counts the comparisons performed.
///
/// # Safety
/// Same contract as [`walk`].
#[inline]
unsafe fn walk_cost(nodes: &[CompiledNode], mut r: u32, features: &[u64]) -> usize {
    let mut cost = 0;
    while r & LEAF_BIT == 0 {
        let n = *nodes.get_unchecked(r as usize);
        cost += 1;
        if *features.get_unchecked(n.feature as usize) <= n.threshold {
            r = n.left;
        } else {
            branch_barrier();
            r = n.right;
        }
    }
    cost
}

/// Emit `node`'s splits into `nodes` in preorder; returns the reference
/// that reaches the subtree (an index, or a tagged verdict for a leaf).
fn emit(node: &Node, nodes: &mut Vec<CompiledNode>) -> u32 {
    match node {
        Node::Leaf { label, .. } => leaf_ref(*label),
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            assert!(*feature < 256, "feature index {feature} exceeds u8 arena");
            let idx = u32::try_from(nodes.len()).expect("arena exceeds u32 indices");
            assert!(idx & LEAF_BIT == 0, "arena exceeds leaf-taggable indices");
            nodes.push(CompiledNode {
                threshold: *threshold,
                left: 0,
                right: 0,
                feature: *feature as u8,
            });
            // Preorder: the left subtree lands at idx + 1, so the hot
            // "<= threshold" path is a sequential read.
            let l = emit(left, nodes);
            let r = emit(right, nodes);
            nodes[idx as usize].left = l;
            nodes[idx as usize].right = r;
            idx
        }
    }
}

/// Highest feature index used by any record, plus one — the minimum
/// feature-slice length a walk may be given. Checked once per call so the
/// per-level loads can go unchecked.
fn arena_arity(nodes: &[CompiledNode]) -> usize {
    nodes
        .iter()
        .map(|n| n.feature as usize + 1)
        .max()
        .unwrap_or(0)
}

/// A [`DecisionTree`] compiled into a flat split arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledTree {
    nodes: Vec<CompiledNode>,
    /// Root reference: index 0 for any tree with at least one split, a
    /// tagged verdict for a single-leaf tree.
    root: u32,
    depth: usize,
    /// Minimum feature-slice length a classify call must provide.
    arity: usize,
}

impl CompiledTree {
    /// Flatten a trained tree. Pure layout transformation — verdicts and
    /// costs are bit-identical to the boxed walker by construction (and by
    /// the proptest in `tests/compiled_equivalence.rs`).
    pub fn compile(tree: &DecisionTree) -> CompiledTree {
        let mut nodes = Vec::with_capacity(tree.nr_nodes() / 2 + 1);
        let root = emit(&tree.root, &mut nodes);
        CompiledTree {
            arity: arena_arity(&nodes),
            nodes,
            root,
            depth: tree.depth(),
        }
    }

    /// Classify one feature vector — same contract as
    /// [`DecisionTree::classify`].
    #[inline]
    pub fn classify(&self, features: &[u64]) -> Label {
        assert!(features.len() >= self.arity, "feature vector too short");
        // SAFETY: emit() produced only in-arena indices; arity checked.
        leaf_label(unsafe { walk(&self.nodes, self.root, features) })
    }

    /// Comparisons performed — same contract as
    /// [`DecisionTree::classify_cost`].
    #[inline]
    pub fn classify_cost(&self, features: &[u64]) -> usize {
        assert!(features.len() >= self.arity, "feature vector too short");
        // SAFETY: emit() produced only in-arena indices; arity checked.
        unsafe { walk_cost(&self.nodes, self.root, features) }
    }

    /// Classify a batch, one verdict per input row. Full groups of
    /// `LANES` rows walk the arena in lockstep so their load chains
    /// overlap; the tail falls back to the single-sample walker. Accepts
    /// `[u64; 5]` rows (the Table-I layout), slices, or anything
    /// slice-like.
    pub fn classify_batch<I: AsRef<[u64]>>(&self, inputs: &[I], out: &mut [Label]) {
        assert_eq!(
            inputs.len(),
            out.len(),
            "classify_batch: inputs and out must have equal length"
        );
        let mut groups_in = inputs.chunks_exact(LANES);
        let mut groups_out = out.chunks_exact_mut(LANES);
        for (gi, go) in (&mut groups_in).zip(&mut groups_out) {
            let feats: [&[u64]; LANES] = std::array::from_fn(|k| gi[k].as_ref());
            for f in &feats {
                assert!(f.len() >= self.arity, "feature vector too short");
            }
            let mut refs = [self.root; LANES];
            // SAFETY: emit() produced only in-arena indices; arity checked.
            unsafe { walk_lanes(&self.nodes, &mut refs, &feats, self.depth) };
            for (o, r) in go.iter_mut().zip(refs) {
                *o = leaf_label(r);
            }
        }
        for (f, o) in groups_in
            .remainder()
            .iter()
            .zip(groups_out.into_remainder())
        {
            let f = f.as_ref();
            assert!(f.len() >= self.arity, "feature vector too short");
            // SAFETY: emit() produced only in-arena indices; arity checked.
            *o = leaf_label(unsafe { walk(&self.nodes, self.root, f) });
        }
    }

    /// Split records in the arena (the boxed tree's `nr_nodes` counts
    /// leaves too; here leaves cost zero bytes).
    pub fn nr_splits(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum comparisons on any path.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Arena bytes actually touched by walks.
    pub fn arena_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<CompiledNode>()
    }

    /// Defined (non-padding) bits per arena record, the coordinate space
    /// of [`CompiledTree::flip_bit`].
    pub const NODE_BITS: usize = 136;

    /// Total defined bits in the arena — the fault space a soft error in
    /// the deployed model slab could hit.
    pub fn logical_bits(&self) -> usize {
        self.nodes.len() * Self::NODE_BITS
    }

    /// Flip one bit of one arena record, in the logical field layout
    /// `[threshold:64 | left:32 | right:32 | feature:8]` (136 bits per
    /// record, padding excluded). This is the chaos-injection entry point:
    /// it models a soft error striking the deployed model's memory, the
    /// same single-bit-flip fault model `faultsim::injection` applies to
    /// architectural register state. The corrupted arena is exactly what
    /// [`CompiledTree::validate`] and the fleet's canary swap validation
    /// exist to catch — never deploy one.
    pub fn flip_bit(&mut self, bit: usize) {
        assert!(bit < self.logical_bits(), "bit {bit} outside the arena");
        let node = &mut self.nodes[bit / Self::NODE_BITS];
        match bit % Self::NODE_BITS {
            b @ 0..=63 => node.threshold ^= 1u64 << b,
            b @ 64..=95 => node.left ^= 1u32 << (b - 64),
            b @ 96..=127 => node.right ^= 1u32 << (b - 96),
            b => node.feature ^= 1u8 << (b - 128),
        }
    }

    /// Structural integrity check over the arena — the deploy-time gate
    /// in front of the `unsafe` unchecked walkers.
    ///
    /// [`emit`] guarantees these invariants by construction; a bit flip in
    /// a stored child reference or feature index silently breaks them, and
    /// the unchecked walk would then read out of bounds. `validate`
    /// re-proves, in O(arena):
    ///
    /// * every child reference is either a well-formed leaf tag (only the
    ///   label bit set below [`LEAF_BIT`]) or an in-bounds index;
    /// * every index reference points strictly forward (preorder), so
    ///   walks terminate and the arena is acyclic;
    /// * every feature index is below the recorded arity, so walks stay
    ///   inside the feature slice;
    /// * the recorded depth matches the longest root path — the lockstep
    ///   batch walker runs exactly `depth` rounds, so an understated depth
    ///   would truncate walks (wrong verdicts, not UB).
    ///
    /// Semantic corruption (a flipped threshold or swapped children) keeps
    /// the structure valid; catching it takes canary classification
    /// against a reference walker, which is the fleet model-swap layer's
    /// job.
    pub fn validate(&self) -> Result<(), ArenaFault> {
        let check_ref = |parent: usize, r: u32| -> Result<(), ArenaFault> {
            if r & LEAF_BIT != 0 {
                if r & !(LEAF_BIT | 1) != 0 {
                    return Err(ArenaFault::MalformedLeaf {
                        parent,
                        reference: r,
                    });
                }
            } else if r as usize >= self.nodes.len() {
                return Err(ArenaFault::OutOfBounds {
                    parent,
                    reference: r,
                });
            } else if r as usize <= parent {
                return Err(ArenaFault::BackwardEdge {
                    parent,
                    reference: r,
                });
            }
            Ok(())
        };
        if self.nodes.is_empty() {
            if self.root & LEAF_BIT == 0 || self.root & !(LEAF_BIT | 1) != 0 {
                return Err(ArenaFault::MalformedLeaf {
                    parent: 0,
                    reference: self.root,
                });
            }
            return Ok(());
        }
        if self.root != 0 {
            // emit() always lands the first split at index 0.
            return Err(ArenaFault::BadRoot {
                reference: self.root,
            });
        }
        for (i, n) in self.nodes.iter().enumerate() {
            check_ref(i, n.left)?;
            check_ref(i, n.right)?;
            if n.feature as usize >= self.arity {
                return Err(ArenaFault::FeatureOutOfRange {
                    parent: i,
                    feature: n.feature,
                    arity: self.arity,
                });
            }
        }
        // Forward-only references make the arena a DAG over increasing
        // indices, so one pass in index order computes the longest
        // root-to-leaf path without recursion.
        let mut path_len = vec![0usize; self.nodes.len()];
        let mut max_depth = 0usize;
        for (i, n) in self.nodes.iter().enumerate() {
            let here = path_len[i] + 1; // comparisons on paths through i
            for r in [n.left, n.right] {
                if r & LEAF_BIT != 0 {
                    max_depth = max_depth.max(here);
                } else {
                    let c = r as usize;
                    path_len[c] = path_len[c].max(here);
                }
            }
        }
        if max_depth != self.depth {
            return Err(ArenaFault::DepthMismatch {
                recorded: self.depth,
                actual: max_depth,
            });
        }
        Ok(())
    }
}

/// Why [`CompiledTree::validate`] rejected an arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaFault {
    /// A leaf-tagged reference carries bits other than the label bit.
    MalformedLeaf { parent: usize, reference: u32 },
    /// An index reference points past the end of the arena.
    OutOfBounds { parent: usize, reference: u32 },
    /// An index reference points at or before its parent (cycle risk).
    BackwardEdge { parent: usize, reference: u32 },
    /// The root reference is not record 0 of a non-empty arena.
    BadRoot { reference: u32 },
    /// A record's feature index exceeds the recorded arity.
    FeatureOutOfRange {
        parent: usize,
        feature: u8,
        arity: usize,
    },
    /// The recorded depth disagrees with the longest root path.
    DepthMismatch { recorded: usize, actual: usize },
}

impl std::fmt::Display for ArenaFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArenaFault::MalformedLeaf { parent, reference } => {
                write!(
                    f,
                    "record {parent}: malformed leaf reference {reference:#010x}"
                )
            }
            ArenaFault::OutOfBounds { parent, reference } => {
                write!(
                    f,
                    "record {parent}: child reference {reference} out of bounds"
                )
            }
            ArenaFault::BackwardEdge { parent, reference } => {
                write!(f, "record {parent}: backward child reference {reference}")
            }
            ArenaFault::BadRoot { reference } => {
                write!(f, "root reference {reference:#010x} is not record 0")
            }
            ArenaFault::FeatureOutOfRange {
                parent,
                feature,
                arity,
            } => write!(
                f,
                "record {parent}: feature index {feature} outside arity {arity}"
            ),
            ArenaFault::DepthMismatch { recorded, actual } => {
                write!(
                    f,
                    "recorded depth {recorded} != actual longest path {actual}"
                )
            }
        }
    }
}

impl std::error::Error for ArenaFault {}

/// How many samples a forest batch scores per vote-array refill.
const BATCH_CHUNK: usize = 64;

/// A [`RandomForest`] compiled into one shared arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledForest {
    nodes: Vec<CompiledNode>,
    /// One root reference per tree, into the shared arena.
    roots: Vec<u32>,
    vote_threshold: usize,
    /// Minimum feature-slice length a classify call must provide.
    arity: usize,
    /// Deepest member tree — the lockstep round count for batch walks.
    max_depth: usize,
}

impl CompiledForest {
    /// Flatten every tree into a single contiguous arena.
    pub fn compile(forest: &RandomForest) -> CompiledForest {
        let mut nodes = Vec::new();
        let roots = forest
            .trees
            .iter()
            .map(|t| emit(&t.root, &mut nodes))
            .collect();
        CompiledForest {
            arity: arena_arity(&nodes),
            nodes,
            roots,
            vote_threshold: forest.vote_threshold,
            max_depth: forest.trees.iter().map(|t| t.depth()).max().unwrap_or(0),
        }
    }

    /// Number of trees voting `Incorrect` — same contract as
    /// [`RandomForest::incorrect_votes`] (always walks every tree).
    pub fn incorrect_votes(&self, features: &[u64]) -> usize {
        assert!(features.len() >= self.arity, "feature vector too short");
        self.roots
            .iter()
            // SAFETY: emit() produced only in-arena indices; arity checked.
            .filter(|&&r| leaf_label(unsafe { walk(&self.nodes, r, features) }) == Label::Incorrect)
            .count()
    }

    /// Majority-vote classification, early-exiting as soon as the verdict
    /// is decided: either the threshold is reached, or the remaining trees
    /// cannot reach it. The label is provably identical to counting every
    /// vote, which the equivalence proptest checks.
    pub fn classify(&self, features: &[u64]) -> Label {
        assert!(features.len() >= self.arity, "feature vector too short");
        let total = self.roots.len();
        let mut votes = 0usize;
        for (i, &r) in self.roots.iter().enumerate() {
            // SAFETY: emit() produced only in-arena indices; arity checked.
            if leaf_label(unsafe { walk(&self.nodes, r, features) }) == Label::Incorrect {
                votes += 1;
                if votes >= self.vote_threshold {
                    return Label::Incorrect;
                }
            }
            let remaining = total - i - 1;
            if votes + remaining < self.vote_threshold {
                return Label::Correct;
            }
        }
        Label::Correct
    }

    /// Total comparisons across *all* trees — same contract as
    /// [`RandomForest::classify_cost`], so no early exit here.
    pub fn classify_cost(&self, features: &[u64]) -> usize {
        assert!(features.len() >= self.arity, "feature vector too short");
        self.roots
            .iter()
            // SAFETY: emit() produced only in-arena indices; arity checked.
            .map(|&r| unsafe { walk_cost(&self.nodes, r, features) })
            .sum()
    }

    /// Batch classification: votes for a chunk of samples accumulate in a
    /// fixed array while the trees are walked in arena order, so each
    /// tree's records are streamed once per chunk instead of once per
    /// sample. Within a tree, samples advance in lockstep groups of
    /// `LANES` so their load chains overlap. Full-count voting — the
    /// label equals the early-exiting [`CompiledForest::classify`] by the
    /// same threshold argument.
    pub fn classify_batch<I: AsRef<[u64]>>(&self, inputs: &[I], out: &mut [Label]) {
        assert_eq!(
            inputs.len(),
            out.len(),
            "classify_batch: inputs and out must have equal length"
        );
        let thr = self.vote_threshold as u32;
        for (chunk_in, chunk_out) in inputs.chunks(BATCH_CHUNK).zip(out.chunks_mut(BATCH_CHUNK)) {
            let mut votes = [0u32; BATCH_CHUNK];
            let votes = &mut votes[..chunk_in.len()];
            for &root in &self.roots {
                let mut groups_in = chunk_in.chunks_exact(LANES);
                let mut groups_votes = votes.chunks_exact_mut(LANES);
                for (gi, gv) in (&mut groups_in).zip(&mut groups_votes) {
                    let feats: [&[u64]; LANES] = std::array::from_fn(|k| gi[k].as_ref());
                    for f in &feats {
                        assert!(f.len() >= self.arity, "feature vector too short");
                    }
                    let mut refs = [root; LANES];
                    // SAFETY: emit() produced in-arena indices; arity checked.
                    unsafe { walk_lanes(&self.nodes, &mut refs, &feats, self.max_depth) };
                    for (v, r) in gv.iter_mut().zip(refs) {
                        *v += (leaf_label(r) == Label::Incorrect) as u32;
                    }
                }
                for (f, v) in groups_in
                    .remainder()
                    .iter()
                    .zip(groups_votes.into_remainder())
                {
                    let f = f.as_ref();
                    assert!(f.len() >= self.arity, "feature vector too short");
                    // SAFETY: emit() produced in-arena indices; arity checked.
                    *v += (leaf_label(unsafe { walk(&self.nodes, root, f) }) == Label::Incorrect)
                        as u32;
                }
            }
            for (o, &v) in chunk_out.iter_mut().zip(votes.iter()) {
                *o = if v >= thr {
                    Label::Incorrect
                } else {
                    Label::Correct
                };
            }
        }
    }

    /// Trees in the ensemble.
    pub fn nr_trees(&self) -> usize {
        self.roots.len()
    }

    /// Split records across all trees.
    pub fn nr_splits(&self) -> usize {
        self.nodes.len()
    }

    /// Votes required for an `Incorrect` verdict.
    pub fn vote_threshold(&self) -> usize {
        self.vote_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, Sample};
    use crate::forest::ForestConfig;
    use crate::tree::TrainConfig;

    fn mixed_dataset(n: usize) -> Dataset {
        let mut ds = Dataset::new(&["a", "b", "c"]);
        for i in 0..n as u64 {
            let label = if (i * 13 + 5) % 7 < 2 {
                Label::Incorrect
            } else {
                Label::Correct
            };
            ds.push(Sample::new(vec![i % 31, (i * 3) % 53, i % 11], label));
        }
        ds
    }

    #[test]
    fn record_layout_is_24_bytes() {
        assert_eq!(std::mem::size_of::<CompiledNode>(), 24);
    }

    #[test]
    fn compiled_tree_matches_boxed_on_training_data() {
        let ds = mixed_dataset(300);
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        let compiled = CompiledTree::compile(&tree);
        assert_eq!(compiled.depth(), tree.depth());
        for s in &ds.samples {
            assert_eq!(compiled.classify(&s.features), tree.classify(&s.features));
            assert_eq!(
                compiled.classify_cost(&s.features),
                tree.classify_cost(&s.features)
            );
        }
    }

    #[test]
    fn validate_accepts_every_trained_arena() {
        for n in [20, 100, 300] {
            let ds = mixed_dataset(n);
            let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
            CompiledTree::compile(&tree).validate().unwrap();
        }
        // Single-leaf arena too.
        let mut ds = Dataset::new(&["x"]);
        for i in 0..4u64 {
            ds.push(Sample::new(vec![i], Label::Correct));
        }
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        CompiledTree::compile(&tree).validate().unwrap();
    }

    #[test]
    fn validate_catches_reference_and_feature_flips() {
        let ds = mixed_dataset(300);
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        let compiled = CompiledTree::compile(&tree);
        assert!(compiled.nr_splits() > 3, "need a multi-split tree");

        // A high bit flipped into a child index sends it out of bounds
        // (or turns it into a malformed leaf tag).
        let mut corrupt = compiled.clone();
        corrupt.flip_bit(64 + 30); // record 0, left reference bit 30
        assert!(corrupt.validate().is_err(), "{:?}", corrupt.validate());

        // A feature-index flip escapes the arity.
        let mut corrupt = compiled.clone();
        corrupt.flip_bit(128 + 7); // record 0, feature bit 7
        assert!(matches!(
            corrupt.validate(),
            Err(ArenaFault::FeatureOutOfRange { .. })
        ));

        // Structural validation is deliberately blind to threshold flips —
        // the canary layer owns those.
        let mut corrupt = compiled.clone();
        corrupt.flip_bit(63); // record 0, threshold high bit
        corrupt.validate().unwrap();
        let diverged = ds
            .samples
            .iter()
            .any(|s| corrupt.classify(&s.features) != compiled.classify(&s.features));
        assert!(diverged, "a threshold high-bit flip must change verdicts");
    }

    #[test]
    fn flip_bit_round_trips() {
        let ds = mixed_dataset(120);
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        let compiled = CompiledTree::compile(&tree);
        for bit in [0, 63, 64, 95, 96, 127, 128, 135] {
            let mut c = compiled.clone();
            c.flip_bit(bit);
            assert_ne!(c.nodes[0], compiled.nodes[0], "bit {bit} must land");
            c.flip_bit(bit);
            assert_eq!(c, compiled, "double flip of bit {bit} must restore");
        }
    }

    #[test]
    fn single_leaf_tree_compiles_to_empty_arena() {
        let mut ds = Dataset::new(&["x"]);
        for i in 0..10u64 {
            ds.push(Sample::new(vec![i], Label::Incorrect));
        }
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        let compiled = CompiledTree::compile(&tree);
        assert_eq!(compiled.nr_splits(), 0);
        assert_eq!(compiled.classify(&[5]), Label::Incorrect);
        assert_eq!(compiled.classify_cost(&[5]), 0);
    }

    #[test]
    fn preorder_left_child_is_next_record() {
        let ds = mixed_dataset(300);
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        let compiled = CompiledTree::compile(&tree);
        assert!(compiled.nr_splits() > 1, "need a multi-split tree");
        for (i, n) in compiled.nodes.iter().enumerate() {
            if n.left & LEAF_BIT == 0 {
                assert_eq!(n.left as usize, i + 1, "left child must follow its parent");
            }
        }
    }

    #[test]
    fn batch_matches_single_sample() {
        let ds = mixed_dataset(200);
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        let compiled = CompiledTree::compile(&tree);
        let rows: Vec<&[u64]> = ds.samples.iter().map(|s| s.features.as_slice()).collect();
        let mut out = vec![Label::Correct; rows.len()];
        compiled.classify_batch(&rows, &mut out);
        for (s, o) in ds.samples.iter().zip(out) {
            assert_eq!(o, compiled.classify(&s.features));
        }
    }

    #[test]
    fn compiled_forest_matches_boxed() {
        let ds = mixed_dataset(240);
        let forest = RandomForest::train(&ds, &ForestConfig::default_random_forest(3, 17));
        let compiled = CompiledForest::compile(&forest);
        assert_eq!(compiled.nr_trees(), forest.trees.len());
        let mut out = vec![Label::Correct; ds.len()];
        let rows: Vec<&[u64]> = ds.samples.iter().map(|s| s.features.as_slice()).collect();
        compiled.classify_batch(&rows, &mut out);
        for (s, o) in ds.samples.iter().zip(out) {
            assert_eq!(compiled.classify(&s.features), forest.classify(&s.features));
            assert_eq!(o, forest.classify(&s.features));
            assert_eq!(
                compiled.incorrect_votes(&s.features),
                forest.incorrect_votes(&s.features)
            );
            assert_eq!(
                compiled.classify_cost(&s.features),
                forest.classify_cost(&s.features)
            );
        }
    }

    #[test]
    fn forest_early_exit_agrees_with_full_count_at_extreme_thresholds() {
        let ds = mixed_dataset(240);
        for threshold in [1, 8, 15] {
            let mut cfg = ForestConfig::default_random_forest(3, 23);
            cfg.vote_threshold = Some(threshold);
            let forest = RandomForest::train(&ds, &cfg);
            let compiled = CompiledForest::compile(&forest);
            for s in &ds.samples {
                assert_eq!(
                    compiled.classify(&s.features),
                    forest.classify(&s.features),
                    "threshold {threshold}"
                );
            }
        }
    }
}
