//! Labeled datasets of integer feature vectors.

use serde::{Deserialize, Serialize};

/// Binary classification label: was the hypervisor execution correct?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    Correct,
    Incorrect,
}

impl Label {
    /// 1 for `Incorrect` (the positive class in detection terms).
    pub fn as_positive(self) -> usize {
        matches!(self, Label::Incorrect) as usize
    }
}

/// One training/testing sample: a fixed-width feature vector plus a label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    pub features: Vec<u64>,
    pub label: Label,
}

impl Sample {
    pub fn new(features: Vec<u64>, label: Label) -> Sample {
        Sample { features, label }
    }
}

/// A dataset with named features.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    pub feature_names: Vec<String>,
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Empty dataset over the given feature names.
    pub fn new(feature_names: &[&str]) -> Dataset {
        Dataset {
            feature_names: feature_names.iter().map(|s| s.to_string()).collect(),
            samples: Vec::new(),
        }
    }

    /// Number of features.
    pub fn nr_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Append a sample, validating its width.
    pub fn push(&mut self, sample: Sample) {
        assert_eq!(
            sample.features.len(),
            self.nr_features(),
            "sample width {} != dataset width {}",
            sample.features.len(),
            self.nr_features()
        );
        self.samples.push(sample);
    }

    /// Bulk-append samples, validating each width once up front. The
    /// campaign pipeline funnels tens of thousands of samples through this
    /// path; reserving avoids per-sample growth.
    pub fn extend_samples(&mut self, samples: impl IntoIterator<Item = Sample>) {
        let it = samples.into_iter();
        let (lo, _) = it.size_hint();
        self.samples.reserve(lo);
        for s in it {
            self.push(s);
        }
    }

    /// Count of (correct, incorrect) samples.
    pub fn class_counts(&self) -> (usize, usize) {
        let inc = self
            .samples
            .iter()
            .filter(|s| s.label == Label::Incorrect)
            .count();
        (self.samples.len() - inc, inc)
    }

    /// Deterministically split into (train, test) by taking every k-th
    /// sample into the test set, preserving class balance roughly.
    pub fn split(&self, test_every: usize) -> (Dataset, Dataset) {
        assert!(test_every >= 2, "test_every must be >= 2");
        let mut train = Dataset {
            feature_names: self.feature_names.clone(),
            samples: vec![],
        };
        let mut test = Dataset {
            feature_names: self.feature_names.clone(),
            samples: vec![],
        };
        for (i, s) in self.samples.iter().enumerate() {
            if i % test_every == 0 {
                test.samples.push(s.clone());
            } else {
                train.samples.push(s.clone());
            }
        }
        (train, test)
    }

    /// Project the dataset onto a subset of feature columns (for the
    /// feature-ablation experiment).
    pub fn project(&self, columns: &[usize]) -> Dataset {
        let names = columns
            .iter()
            .map(|&c| self.feature_names[c].clone())
            .collect();
        let samples = self
            .samples
            .iter()
            .map(|s| Sample {
                features: columns.iter().map(|&c| s.features[c]).collect(),
                label: s.label,
            })
            .collect();
        Dataset {
            feature_names: names,
            samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        let mut d = Dataset::new(&["a", "b"]);
        for i in 0..10u64 {
            let label = if i % 3 == 0 {
                Label::Incorrect
            } else {
                Label::Correct
            };
            d.push(Sample::new(vec![i, 100 - i], label));
        }
        d
    }

    #[test]
    fn class_counts_add_up() {
        let d = ds();
        let (c, i) = d.class_counts();
        assert_eq!(c + i, d.len());
        assert_eq!(i, 4); // 0,3,6,9
    }

    #[test]
    #[should_panic(expected = "sample width")]
    fn wrong_width_rejected() {
        let mut d = ds();
        d.push(Sample::new(vec![1], Label::Correct));
    }

    #[test]
    fn split_partitions_everything() {
        let d = ds();
        let (tr, te) = d.split(3);
        assert_eq!(tr.len() + te.len(), d.len());
        assert_eq!(te.len(), 4); // indices 0,3,6,9
    }

    #[test]
    fn project_selects_columns() {
        let d = ds();
        let p = d.project(&[1]);
        assert_eq!(p.nr_features(), 1);
        assert_eq!(p.feature_names, vec!["b".to_string()]);
        assert_eq!(p.samples[2].features, vec![98]);
    }

    #[test]
    fn serde_round_trip() {
        let d = ds();
        let json = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), d.len());
        assert_eq!(back.samples[0], d.samples[0]);
    }
}
