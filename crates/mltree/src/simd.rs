//! Wide-vector batch-walk kernels: the lockstep lanes of
//! [`CompiledTree::classify_batch`] advanced per-vector instead of
//! per-lane. Two tiers share the dispatch:
//!
//! **Packed shadow arena — the production path.** For any chunk whose
//! runtime feature values all fit 12 bits (Xentry's Table-I counters
//! always do), the walk runs over a shadow arena that packs an entire
//! split record into ONE u64 (`[shamt | left | right | threshold]`) and
//! each lane's ≤ [`PACKED_MAX_ARITY`] feature values into one register
//! word. A round is then a single gather plus eight cheap ALU ops per
//! 8-lane group; leaves self-loop, so there is no per-lane liveness
//! bookkeeping at all. Saturating 12-bit quantization is *exact* under
//! the staged envelope — see the packed-arena section below for the
//! proof sketch and the bit layout. Chunks that overflow the envelope
//! fall back transparently to the tagged kernels, so the packed path is
//! an optimization, never an approximation.
//!
//! **Tagged wide kernels — the exact fallback.** These walk the real
//! 24-byte-record arena directly: the three record fields are fetched
//! with three independent masked gathers (they pipeline into one gather
//! latency per group per round), feature values come from a
//! column-major scratch ([`LaneCols`]) picked by compare/blend rather
//! than a fourth gather, and a liveness mask freezes finished lanes so
//! a walk costs the deepest *taken* path. The scratch caps the feature
//! count at [`MAX_SIMD_ARITY`]; wider models stay on the legacy
//! per-lane-slice walker in [`compiled`].
//!
//! Both tiers come in three ISA flavours:
//!
//! | kernel   | packed width             | gate                        |
//! |----------|--------------------------|-----------------------------|
//! | `avx512` | 8 × 8-lane `__m512i`     | `avx512f`                   |
//! | `avx2`   | 4 × 4-lane `__m256i`     | `avx2`                      |
//! | `scalar` | portable lockstep loop   | always (equivalence oracle) |
//!
//! Whether a vector kernel beats the scalar one is a property of the
//! *microarchitecture*, not the ISA: gathers are microcoded and slow on
//! many x86 cores (Skylake-SP-class servers prominently), which is what
//! motivated the one-gather packed tier in the first place.
//! [`BatchWalker::Auto`] resolves by a one-shot **calibration race** on
//! first use — every detected kernel walks the same synthetic packed
//! arena and the fastest wins — rather than trusting feature flags.
//! Benchmarks and the equivalence suite pin kernels explicitly;
//! `MLTREE_KERNEL` (`scalar` / `avx2` / `avx512` / `auto`) overrides
//! the choice per-process for operators.
//!
//! [`compiled`]: crate::compiled
//! [`CompiledTree::classify_batch`]: crate::compiled::CompiledTree::classify_batch

use crate::compiled::{leaf_label, CompiledNode, LEAF_BIT};
use crate::dataset::Label;

/// Lanes per lockstep group — one AVX-512 register of u64 walk refs.
pub(crate) const LANES: usize = 8;

/// Samples per kernel invocation: two groups walked interleaved, so one
/// group's gathers and compares execute while the other's loads are in
/// flight.
pub(crate) const WIDTH: usize = 2 * LANES;

/// Widest feature vector the column-major [`LaneCols`] scratch holds.
/// The AVX-512 kernel keeps one register per column, so the cap is also
/// the register budget; models with more features fall back to the
/// per-lane-slice scalar walker.
pub(crate) const MAX_SIMD_ARITY: usize = 8;

/// Column-major feature scratch for one lane group:
/// `cols[feature][lane]`, 64-byte aligned so each column is exactly one
/// cache line — and one aligned vector load when a kernel hoists the
/// columns into registers.
#[repr(C, align(64))]
pub(crate) struct LaneCols(pub(crate) [[u64; LANES]; MAX_SIMD_ARITY]);

impl LaneCols {
    pub(crate) fn zeroed() -> LaneCols {
        LaneCols([[0; LANES]; MAX_SIMD_ARITY])
    }

    /// Stage a (possibly short) group of samples. Short groups are
    /// padded by replicating the last sample, so tail batches walk the
    /// same full-width kernel and the padding lanes compute a discarded
    /// copy of the last sample's verdict.
    pub(crate) fn fill<I: AsRef<[u64]>>(&mut self, group: &[I], arity: usize) {
        debug_assert!(!group.is_empty() && group.len() <= LANES);
        for (f, col) in self.0.iter_mut().enumerate().take(arity) {
            for (slot, sample) in col.iter_mut().zip(group) {
                *slot = sample.as_ref()[f];
            }
            let last = col[group.len() - 1];
            for slot in col[group.len()..].iter_mut() {
                *slot = last;
            }
        }
    }
}

/// Stage up to [`WIDTH`] samples as two padded groups.
pub(crate) fn fill_pair<I: AsRef<[u64]>>(cols: &mut [LaneCols; 2], group: &[I], arity: usize) {
    debug_assert!(!group.is_empty() && group.len() <= WIDTH);
    let split = group.len().min(LANES);
    cols[0].fill(&group[..split], arity);
    if group.len() > LANES {
        cols[1].fill(&group[LANES..], arity);
    } else {
        // Second group entirely padding: replicate the last sample.
        cols[1].fill(&group[group.len() - 1..], arity);
    }
}

/// Which batch-walk implementation [`CompiledTree::classify_batch_with`]
/// uses. [`BatchWalker::Auto`] (the plain `classify_batch` behaviour)
/// resolves once per process by racing the detected kernels; the
/// explicit variants exist for benchmarks, the SIMD-vs-scalar
/// equivalence oracle, and operators pinning a known-good path. Asking
/// for a kernel the CPU lacks falls back to the next narrower one, so
/// every variant is always safe to request.
///
/// [`CompiledTree::classify_batch_with`]: crate::compiled::CompiledTree::classify_batch_with
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchWalker {
    /// Fastest kernel by one-shot calibration (see [`active_kernel_name`]).
    #[default]
    Auto,
    /// The portable scalar lockstep kernel — the equivalence oracle.
    Scalar,
    /// The AVX2 kernel, or scalar where unavailable.
    Avx2,
    /// The AVX-512 kernel, or AVX2/scalar where unavailable.
    Avx512,
}

/// Resolved kernel identity — what [`walk_wide`] actually dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kernel {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

#[cfg(target_arch = "x86_64")]
fn have_avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(target_arch = "x86_64")]
fn have_avx512() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
}

/// Every kernel this CPU can execute, narrowest first.
fn available_kernels() -> Vec<Kernel> {
    #[allow(unused_mut)]
    let mut ks = vec![Kernel::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        if have_avx2() {
            ks.push(Kernel::Avx2);
        }
        if have_avx512() {
            ks.push(Kernel::Avx512);
        }
    }
    ks
}

/// Build a dense synthetic arena for the calibration race: a full
/// binary tree of `depth` levels inside the packed envelope (5 features,
/// 12-bit thresholds), every leaf at the same depth so each kernel does
/// identical work.
fn calibration_arena(depth: usize) -> Vec<CompiledNode> {
    let splits = (1usize << depth) - 1;
    let mut nodes = Vec::with_capacity(splits);
    // Heap order: children of i at 2i+1 / 2i+2 — forward references, so
    // the walk terminates like any validated arena.
    for i in 0..splits {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let leaf = l >= splits;
        nodes.push(CompiledNode {
            threshold: (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 52,
            left: if leaf { LEAF_BIT } else { l as u32 },
            right: if leaf { LEAF_BIT | 1 } else { r as u32 },
            feature: (i % PACKED_MAX_ARITY) as u8,
            pad: [0; 7],
        });
    }
    nodes
}

/// Race every available kernel over the synthetic arena and return the
/// fastest. Gather-based kernels lose to the scalar chains on cores
/// with microcoded gathers; only a measurement can tell, and ~100µs at
/// first use is far cheaper than guessing wrong forever. The race runs
/// the packed kernels — the path that serves every in-envelope model —
/// at the full [`PACKED_CHUNK`] interleave width production uses.
fn calibrate() -> Kernel {
    const DEPTH: usize = 12;
    const ROUNDS: usize = 24;
    let nodes = calibration_arena(DEPTH);
    let pa = PackedArena::build(&nodes, PACKED_MAX_ARITY).expect("calibration arena packs");
    let rows: Vec<[u64; PACKED_MAX_ARITY]> = (0..PACKED_CHUNK as u64)
        .map(|i| std::array::from_fn(|f| i.wrapping_mul(31).wrapping_add(f as u64 * 977) & 0xfff))
        .collect();
    let mut fps = [0u64; PACKED_CHUNK];
    let lanes = stage_packed(&rows, PACKED_MAX_ARITY, &mut fps).expect("rows fit 12 bits");
    let mut best = (Kernel::Scalar, u128::MAX);
    for k in available_kernels() {
        // Warm caches and pay decode/page-in before timing.
        let mut refs = [0u32; PACKED_CHUNK];
        // SAFETY: packed-arena references are in-bounds by construction;
        // k is detected-available.
        unsafe { walk_packed(k, &pa, &mut refs[..lanes], &fps[..lanes], DEPTH) };
        let t = std::time::Instant::now();
        let mut sink = 0u32;
        for i in 0..ROUNDS {
            let mut refs = [(i % 3) as u32; PACKED_CHUNK];
            // SAFETY: as above.
            unsafe { walk_packed(k, &pa, &mut refs[..lanes], &fps[..lanes], DEPTH) };
            sink ^= refs[i % PACKED_CHUNK];
        }
        std::hint::black_box(sink);
        let elapsed = t.elapsed().as_nanos();
        if elapsed < best.1 {
            best = (k, elapsed);
        }
    }
    best.0
}

/// The kernel [`BatchWalker::Auto`] resolves to, decided once per
/// process: the `MLTREE_KERNEL` env override if set, otherwise the
/// calibration-race winner.
pub(crate) fn auto_kernel() -> Kernel {
    use std::sync::OnceLock;
    static AUTO: OnceLock<Kernel> = OnceLock::new();
    *AUTO.get_or_init(|| match std::env::var("MLTREE_KERNEL").as_deref() {
        Ok("scalar") => Kernel::Scalar,
        Ok("avx2") => resolve(BatchWalker::Avx2),
        Ok("avx512") => resolve(BatchWalker::Avx512),
        _ => calibrate(),
    })
}

/// Name of the kernel [`BatchWalker::Auto`] resolves to on this CPU —
/// surfaced in benchmark reports and fleet metrics so a recorded number
/// names the code path that produced it.
pub fn active_kernel_name() -> &'static str {
    kernel_name(auto_kernel())
}

pub(crate) fn kernel_name(kernel: Kernel) -> &'static str {
    match kernel {
        Kernel::Scalar => "scalar",
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => "avx2",
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx512 => "avx512",
    }
}

pub(crate) fn resolve(walker: BatchWalker) -> Kernel {
    match walker {
        BatchWalker::Auto => auto_kernel(),
        BatchWalker::Scalar => Kernel::Scalar,
        BatchWalker::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            if have_avx2() {
                return Kernel::Avx2;
            }
            Kernel::Scalar
        }
        BatchWalker::Avx512 => {
            #[cfg(target_arch = "x86_64")]
            if have_avx512() {
                return Kernel::Avx512;
            }
            resolve(BatchWalker::Avx2)
        }
    }
}

/// Advance [`WIDTH`] walks to their leaves (at most `depth` rounds) with
/// the resolved kernel. `refs` holds each lane's current reference and
/// receives its leaf reference; lanes `0..LANES` read `cols[0]`, the
/// rest `cols[1]`.
///
/// # Safety
/// Every non-leaf reference reachable from `refs` must be a valid arena
/// index, and every stored feature index must be `< MAX_SIMD_ARITY` —
/// callers check `validate()`-guaranteed invariants (arity, in-bounds
/// forward references) once per batch. A `Kernel::Avx2`/`Avx512` value
/// must come from [`resolve`], which proves CPU support.
#[inline]
pub(crate) unsafe fn walk_wide(
    kernel: Kernel,
    nodes: &[CompiledNode],
    refs: &mut [u32; WIDTH],
    cols: &[LaneCols; 2],
    depth: usize,
) {
    match kernel {
        Kernel::Scalar => walk_wide_scalar(nodes, refs, cols, depth),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => walk_wide_avx2(nodes, refs, cols, depth),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx512 => walk_wide_avx512(nodes, refs, cols, depth),
    }
}

/// Portable lockstep kernel over the column scratch — the semantics the
/// vector kernels must match bit-for-bit, and the fallback for CPUs
/// without (fast) gathers. Sixteen independent chains give the
/// out-of-order core that many overlapped record loads; the round loop
/// early-exits once every lane holds a leaf.
///
/// # Safety
/// Same contract as [`walk_wide`].
#[inline]
unsafe fn walk_wide_scalar(
    nodes: &[CompiledNode],
    refs: &mut [u32; WIDTH],
    cols: &[LaneCols; 2],
    depth: usize,
) {
    if nodes.is_empty() {
        return; // every root reference is already a tagged verdict
    }
    let last = nodes.len() - 1;
    for _ in 0..depth {
        let mut all = u32::MAX;
        for r in refs.iter() {
            all &= *r;
        }
        if all & LEAF_BIT != 0 {
            break;
        }
        for (lane, r) in refs.iter_mut().enumerate() {
            let cur = *r;
            // Leaf-tagged lanes read a real record and discard the result.
            let n = nodes.get_unchecked(((cur & !LEAF_BIT) as usize).min(last));
            let f = cols[lane >> 3].0[n.feature as usize & (MAX_SIMD_ARITY - 1)][lane & 7];
            let next = if f <= n.threshold { n.left } else { n.right };
            *r = if cur & LEAF_BIT == 0 { next } else { cur };
        }
    }
}

/// AVX-512 kernel: two 8-lane `__m512i` chains. The feature columns
/// live in registers for the whole walk (loaded once from [`LaneCols`]),
/// so a round is three independent masked record gathers, a compare/
/// blend tree picking each lane's feature value, one unsigned compare
/// and two blends — the only memory traffic is the record fetch itself.
///
/// # Safety
/// Same contract as [`walk_wide`], plus `avx512f` must be detected
/// ([`resolve`] guarantees this).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn walk_wide_avx512(
    nodes: &[CompiledNode],
    refs: &mut [u32; WIDTH],
    cols: &[LaneCols; 2],
    depth: usize,
) {
    use std::arch::x86_64::*;
    let base = nodes.as_ptr() as *const u8;
    let leaf = _mm512_set1_epi64(LEAF_BIT as i64);
    let lo32 = _mm512_set1_epi64(u32::MAX as i64);
    let byte = _mm512_set1_epi64(0xff);
    let zero = _mm512_setzero_si512();

    // Hoist both groups' feature columns into registers: 16 zmm plus
    // temporaries fits the 32-register file.
    let ca: [__m512i; MAX_SIMD_ARITY] =
        std::array::from_fn(|f| _mm512_load_si512(cols[0].0[f].as_ptr() as *const __m512i));
    let cb: [__m512i; MAX_SIMD_ARITY] =
        std::array::from_fn(|f| _mm512_load_si512(cols[1].0[f].as_ptr() as *const __m512i));

    /// Pick `col[fw[lane]][lane]` per lane with a two-halves blend tree
    /// (latency ~4 ops, not a gather).
    #[inline(always)]
    unsafe fn select(cols: &[__m512i; MAX_SIMD_ARITY], fw: __m512i) -> __m512i {
        let eq = |v: i64| _mm512_cmpeq_epi64_mask(fw, _mm512_set1_epi64(v));
        let mut lo = cols[0];
        lo = _mm512_mask_blend_epi64(eq(1), lo, cols[1]);
        lo = _mm512_mask_blend_epi64(eq(2), lo, cols[2]);
        lo = _mm512_mask_blend_epi64(eq(3), lo, cols[3]);
        let mut hi = cols[4];
        hi = _mm512_mask_blend_epi64(eq(5), hi, cols[5]);
        hi = _mm512_mask_blend_epi64(eq(6), hi, cols[6]);
        hi = _mm512_mask_blend_epi64(eq(7), hi, cols[7]);
        let top = _mm512_cmpgt_epu64_mask(fw, _mm512_set1_epi64(3));
        _mm512_mask_blend_epi64(top, lo, hi)
    }

    /// One group's round: gather record fields, compare, select child,
    /// freeze dead lanes.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)] // hoisted constants, one per zmm
    unsafe fn round(
        r: __m512i,
        live: __mmask8,
        cols: &[__m512i; MAX_SIMD_ARITY],
        base: *const u8,
        leaf: __m512i,
        lo32: __m512i,
        byte: __m512i,
        zero: __m512i,
    ) -> __m512i {
        let idx = _mm512_andnot_si512(leaf, r);
        // Records are 24 bytes = three u64s: offset = (3 * idx) * 8.
        let idx3 = _mm512_add_epi64(_mm512_slli_epi64::<1>(idx), idx);
        let thr = _mm512_mask_i64gather_epi64::<8>(zero, live, idx3, base as *const i64);
        let pair = _mm512_mask_i64gather_epi64::<8>(zero, live, idx3, base.add(8) as *const i64);
        let fword = _mm512_mask_i64gather_epi64::<8>(zero, live, idx3, base.add(16) as *const i64);
        let fval = select(cols, _mm512_and_si512(fword, byte));
        // f <= threshold (unsigned) picks the left child.
        let le = _mm512_cmple_epu64_mask(fval, thr);
        let left = _mm512_and_si512(pair, lo32);
        let right = _mm512_srli_epi64::<32>(pair);
        let next = _mm512_mask_blend_epi64(le, right, left);
        _mm512_mask_blend_epi64(live, r, next)
    }

    let mut r64 = [0u64; WIDTH];
    for (d, s) in r64.iter_mut().zip(refs.iter()) {
        *d = *s as u64;
    }
    let mut ra = _mm512_loadu_si512(r64.as_ptr() as *const __m512i);
    let mut rb = _mm512_loadu_si512(r64.as_ptr().add(LANES) as *const __m512i);

    for _ in 0..depth {
        let live_a = _mm512_testn_epi64_mask(ra, leaf);
        let live_b = _mm512_testn_epi64_mask(rb, leaf);
        if (live_a | live_b) == 0 {
            break;
        }
        ra = round(ra, live_a, &ca, base, leaf, lo32, byte, zero);
        rb = round(rb, live_b, &cb, base, leaf, lo32, byte, zero);
    }

    let na = _mm512_cvtepi64_epi32(ra);
    let nb = _mm512_cvtepi64_epi32(rb);
    _mm256_storeu_si256(refs.as_mut_ptr() as *mut __m256i, na);
    _mm256_storeu_si256(refs.as_mut_ptr().add(LANES) as *mut __m256i, nb);
}

/// AVX2 kernel: the sixteen lanes as four `__m256i` chains. AVX2 has no
/// mask registers or unsigned 64-bit compare, so liveness is an all-ones
/// lane mask (feeding the masked gathers and `blendv`), feature values
/// come from a fourth gather into the column scratch (the register file
/// is too small to pin the columns), and `f <= t` blends on the
/// sign-bias-flipped *greater-than* mask directly.
///
/// # Safety
/// Same contract as [`walk_wide`], plus `avx2` must be detected
/// ([`resolve`] guarantees this).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn walk_wide_avx2(
    nodes: &[CompiledNode],
    refs: &mut [u32; WIDTH],
    cols: &[LaneCols; 2],
    depth: usize,
) {
    use std::arch::x86_64::*;
    let base = nodes.as_ptr() as *const u8;
    let leaf = _mm256_set1_epi64x(LEAF_BIT as i64);
    let lo32 = _mm256_set1_epi64x(u32::MAX as i64);
    let byte = _mm256_set1_epi64x(0xff);
    let bias = _mm256_set1_epi64x(i64::MIN);
    let zero = _mm256_setzero_si256();
    // Column scratch in u64 units: value of (feature f, lane k) lives at
    // element f * LANES + k of the group's LaneCols.
    let lane_lo = _mm256_setr_epi64x(0, 1, 2, 3);
    let lane_hi = _mm256_setr_epi64x(4, 5, 6, 7);

    /// One 4-lane half-round: gather, compare, select, freeze.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    unsafe fn half_round(
        r: __m256i,
        live: __m256i,
        lane_base: __m256i,
        cols_base: *const i64,
        base: *const u8,
        leaf: __m256i,
        lo32: __m256i,
        byte: __m256i,
        bias: __m256i,
        zero: __m256i,
    ) -> __m256i {
        let idx = _mm256_andnot_si256(leaf, r);
        let idx3 = _mm256_add_epi64(_mm256_slli_epi64::<1>(idx), idx);
        let thr = _mm256_mask_i64gather_epi64::<8>(zero, base as *const i64, idx3, live);
        let pair = _mm256_mask_i64gather_epi64::<8>(zero, base.add(8) as *const i64, idx3, live);
        let fword = _mm256_mask_i64gather_epi64::<8>(zero, base.add(16) as *const i64, idx3, live);
        let f8 = _mm256_slli_epi64::<3>(_mm256_and_si256(fword, byte));
        let fidx = _mm256_add_epi64(f8, lane_base);
        let fval = _mm256_mask_i64gather_epi64::<8>(zero, cols_base, fidx, live);
        // Unsigned f > t via sign-biased signed compare; gt lanes go right.
        let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(fval, bias), _mm256_xor_si256(thr, bias));
        let left = _mm256_and_si256(pair, lo32);
        let right = _mm256_srli_epi64::<32>(pair);
        let next = _mm256_blendv_epi8(left, right, gt);
        _mm256_blendv_epi8(r, next, live)
    }

    let mut r64 = [0u64; WIDTH];
    for (d, s) in r64.iter_mut().zip(refs.iter()) {
        *d = *s as u64;
    }
    let mut r: [__m256i; 4] =
        std::array::from_fn(|h| _mm256_loadu_si256(r64.as_ptr().add(4 * h) as *const __m256i));
    let ca = cols[0].0.as_ptr() as *const i64;
    let cb = cols[1].0.as_ptr() as *const i64;

    for _ in 0..depth {
        let live: [__m256i; 4] =
            std::array::from_fn(|h| _mm256_cmpeq_epi64(_mm256_and_si256(r[h], leaf), zero));
        let any = _mm256_or_si256(
            _mm256_or_si256(live[0], live[1]),
            _mm256_or_si256(live[2], live[3]),
        );
        if _mm256_movemask_epi8(any) == 0 {
            break;
        }
        r[0] = half_round(
            r[0], live[0], lane_lo, ca, base, leaf, lo32, byte, bias, zero,
        );
        r[1] = half_round(
            r[1], live[1], lane_hi, ca, base, leaf, lo32, byte, bias, zero,
        );
        r[2] = half_round(
            r[2], live[2], lane_lo, cb, base, leaf, lo32, byte, bias, zero,
        );
        r[3] = half_round(
            r[3], live[3], lane_hi, cb, base, leaf, lo32, byte, bias, zero,
        );
    }

    for (h, v) in r.iter().enumerate() {
        _mm256_storeu_si256(r64.as_mut_ptr().add(4 * h) as *mut __m256i, *v);
    }
    for (d, s) in refs.iter_mut().zip(r64.iter()) {
        *d = *s as u32;
    }
}

// ---------------------------------------------------------------------------
// Packed shadow arena — the gather-once fast path.
//
// The wide kernels above still pay three record gathers per level per
// group, because a 24-byte record cannot be fetched in one 64-bit lane.
// On gather-slow cores that caps a round at gather throughput no matter
// how cheap the ALU work is. The packed arena collapses an entire split
// into ONE u64:
//
// ```text
//   bit  0..6    shamt   = (feature × 12) & 63 — where the feature's
//                          12-bit field sits in the lane's packed word
//   bit  6..29   left    } child *indices* into this arena (23 bits);
//   bit 29..52   right   } no leaf tag — leaves are real records
//   bit 52..64   thr     = min(threshold, 0xFFF), saturating-quantized
// ```
//
// and each lane's (≤ [`PACKED_MAX_ARITY`]) feature values into one
// register word, `value_j` at bits `12j..12j+12`. The field order is
// chosen so every extraction is minimal: the shamt needs only a mask,
// the threshold (top field) only a shift, and the taken child is pulled
// with ONE variable shift whose count (6 or 29) is blended from the
// compare — neither child is extracted separately. A round is then one
// gather and eight cheap ALU ops (mask, `srlv`, mask, shift, compare,
// blend, `srlv`, mask) per 8-lane group, with up to eight groups
// interleaved so the gathers pipeline.
//
// **Exactness.** Quantization never changes a verdict as long as every
// *runtime feature value* fits 12 bits: for `fv ≤ 0xFFF`,
// `fv <= min(thr, 0xFFF) ⇔ fv <= thr` for *any* u64 threshold (if
// `thr > 0xFFF` both sides are unconditionally true). [`stage_packed`]
// verifies the bound per chunk — an oversized value sends that chunk to
// the exact tagged-arena kernels, so the packed path is an
// optimization, never an approximation. Xentry's Table-I counters
// (instructions retired deltas, CR3 switch counts, …) are small
// integers in practice; the fallback exists for everything else.
//
// **Termination without masks.** The two possible verdicts are
// materialized as two extra records at indices `n` and `n+1` (label in
// bit 6) whose children point at *themselves*. A lane that reaches a
// leaf keeps re-selecting the same record: no liveness mask, no freeze
// blend, no early-exit bookkeeping per lane — a lane is done exactly
// when its index is ≥ `nsplits`, checked once per 8-round burst.

/// Feature-field width in the packed word — quantization bound 0xFFF.
pub(crate) const PACKED_FEATURE_BITS: usize = 12;

/// Largest runtime feature value the packed kernels compare exactly.
pub(crate) const PACKED_MAX_FEATURE: u64 = (1 << PACKED_FEATURE_BITS) - 1;

/// Widest model the packed word can index: 5 × 12-bit fields fit a u64
/// (Xentry's Table-I layout exactly).
pub(crate) const PACKED_MAX_ARITY: usize = 5;

/// Samples staged per packed walk — matches the forest vote chunk so
/// feature words are packed once and reused across every tree.
pub(crate) const PACKED_CHUNK: usize = 64;

/// Child-index width: arenas up to `2²³ − 2` splits take the packed
/// path; larger ones (no Xentry model is within orders of magnitude)
/// stay on the tagged kernels.
const PACKED_IDX_BITS: usize = 23;
const PACKED_IDX_MASK: u64 = (1 << PACKED_IDX_BITS) - 1;

/// One-u64-per-split shadow of a compiled arena, plus two self-looping
/// leaf records. Rebuilt whenever the record arena changes (compile,
/// profile-guided re-layout, fault injection), so it is never stale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PackedArena {
    pub(crate) words: Vec<u64>,
    /// Split count; indices ≥ this are parked at a leaf record.
    pub(crate) nsplits: u32,
}

impl PackedArena {
    /// Pack a record arena, or `None` when the model is outside the
    /// packed envelope (too many features, too many splits, or empty —
    /// a single-leaf tree has a constant verdict and needs no walk).
    pub(crate) fn build(nodes: &[CompiledNode], arity: usize) -> Option<PackedArena> {
        let n = nodes.len();
        if n == 0 || arity > PACKED_MAX_ARITY || n + 2 > (1 << PACKED_IDX_BITS) {
            return None;
        }
        let enc = |r: u32| -> u64 {
            if r & LEAF_BIT != 0 {
                n as u64 + (r & 1) as u64 // leaf record for that label
            } else {
                // The clamp is inert for valid arenas (children < n) but
                // keeps a bit-flipped child reference inside the word
                // table, like the tagged kernels' `.min(last)` — corrupt
                // arenas walk to garbage verdicts, never out of bounds.
                (r as u64).min(n as u64 + 1)
            }
        };
        let mut words = Vec::with_capacity(n + 2);
        for node in nodes {
            // The & 63 keeps a corrupt feature byte (fault injection)
            // from spilling into the left-child field; the resulting
            // bounded-garbage shift is semantically wrong but memory-safe,
            // exactly like the tagged kernels' masked feature index.
            let sh = (node.feature as u64 * PACKED_FEATURE_BITS as u64) & 63;
            let thr = node.threshold.min(PACKED_MAX_FEATURE);
            words.push(sh | (enc(node.left) << 6) | (enc(node.right) << 29) | (thr << 52));
        }
        for label in 0..2u64 {
            let slf = n as u64 + label;
            words.push((slf << 6) | (slf << 29) | (label << 52));
        }
        Some(PackedArena {
            words,
            nsplits: n as u32,
        })
    }

    /// Map a tagged root reference to a packed start index.
    #[inline]
    pub(crate) fn entry(&self, root: u32) -> u32 {
        if root & LEAF_BIT != 0 {
            self.nsplits + (root & 1)
        } else {
            root
        }
    }

    /// Verdict of a parked lane (index at or past `nsplits`).
    #[inline]
    pub(crate) fn label(&self, r: u32) -> Label {
        debug_assert!(r >= self.nsplits);
        leaf_label((self.words[r as usize] >> 52) as u32)
    }

    /// `Incorrect` as 0/1 — the forest vote increment.
    #[inline]
    pub(crate) fn vote(&self, r: u32) -> u32 {
        debug_assert!(r >= self.nsplits);
        (self.words[r as usize] >> 52) as u32 & 1
    }
}

/// Pack a chunk's feature rows into per-lane words: `Some(lanes)` (the
/// chunk padded to a [`LANES`] multiple by replicating the last row) when
/// every value fits 12 bits, `None` when the chunk must take the exact
/// tagged-kernel path instead.
pub(crate) fn stage_packed<I: AsRef<[u64]>>(
    chunk: &[I],
    arity: usize,
    fps: &mut [u64; PACKED_CHUNK],
) -> Option<usize> {
    stage_packed_with(chunk.len(), |i| chunk[i].as_ref(), arity, fps)
}

/// [`stage_packed_with`] for rows whose length *equals* the arity: the
/// packing loop has a const trip count, so it fully unrolls — no
/// per-field loop control on the staging path. This is the detector's
/// shape (5 Table-I features, arity 5).
pub(crate) fn stage_packed_const<const A: usize>(
    len: usize,
    row: impl Fn(usize) -> [u64; A],
    fps: &mut [u64; PACKED_CHUNK],
) -> Option<usize> {
    debug_assert!(A <= PACKED_MAX_ARITY);
    debug_assert!((1..=PACKED_CHUNK).contains(&len));
    let mut acc = 0u64;
    for (i, slot) in fps.iter_mut().enumerate().take(len) {
        let r = row(i);
        let mut w = 0u64;
        for (j, &v) in r.iter().enumerate() {
            acc |= v;
            w |= v << (PACKED_FEATURE_BITS * j);
        }
        *slot = w;
    }
    if acc > PACKED_MAX_FEATURE {
        return None;
    }
    let lanes = len.div_ceil(LANES) * LANES;
    let last = fps[len - 1];
    for slot in fps[len..lanes].iter_mut() {
        *slot = last;
    }
    Some(lanes)
}

/// [`stage_packed`] over a row *producer* instead of a row slice — the
/// staging-fused form: callers whose rows live in a different shape
/// (the detector's `FeatureVec`) pack straight into the feature words
/// without materializing an intermediate row array first.
pub(crate) fn stage_packed_with<R: AsRef<[u64]>>(
    len: usize,
    row: impl Fn(usize) -> R,
    arity: usize,
    fps: &mut [u64; PACKED_CHUNK],
) -> Option<usize> {
    debug_assert!((1..=PACKED_CHUNK).contains(&len));
    let mut acc = 0u64;
    for (i, slot) in fps.iter_mut().enumerate().take(len) {
        let r = row(i);
        let mut w = 0u64;
        // Unmasked packing: if any value overflows its 12-bit field the
        // word is garbage, but `acc` catches exactly that case below and
        // the staged words are then discarded — so the per-field masks
        // would only ever mask off nothing.
        for (j, &v) in r.as_ref().iter().take(arity).enumerate() {
            acc |= v;
            w |= v << (PACKED_FEATURE_BITS * j);
        }
        *slot = w;
    }
    if acc > PACKED_MAX_FEATURE {
        return None; // quantization would be inexact for this chunk
    }
    let lanes = len.div_ceil(LANES) * LANES;
    let last = fps[len - 1];
    for slot in fps[len..lanes].iter_mut() {
        *slot = last;
    }
    Some(lanes)
}

/// Advance packed walks to their leaf records (at most `depth` rounds)
/// with the resolved kernel. `refs` holds each lane's current packed
/// index and receives its leaf-record index; `fps` the lanes' packed
/// feature words. Lane count must be a multiple of [`LANES`].
///
/// # Safety
/// Every reference in `refs` must index `pa.words`, which
/// [`PackedArena::build`] guarantees transitively for any start index it
/// produced (children are in-bounds by construction, leaves self-loop).
/// A `Kernel::Avx2`/`Avx512` value must come from [`resolve`].
#[inline]
pub(crate) unsafe fn walk_packed(
    kernel: Kernel,
    pa: &PackedArena,
    refs: &mut [u32],
    fps: &[u64],
    depth: usize,
) {
    debug_assert_eq!(refs.len(), fps.len());
    debug_assert!(refs.len().is_multiple_of(LANES));
    match kernel {
        Kernel::Scalar => walk_packed_scalar(&pa.words, pa.nsplits, refs, fps, depth),
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => {
            // 4 interleaved 4-lane chains per call: enough gathers in
            // flight to cover their latency without spilling ymm state.
            for (r, f) in refs.chunks_mut(2 * LANES).zip(fps.chunks(2 * LANES)) {
                match r.len() / 4 {
                    1 => walk_packed_avx2::<1>(&pa.words, pa.nsplits, r, f, depth),
                    2 => walk_packed_avx2::<2>(&pa.words, pa.nsplits, r, f, depth),
                    _ => walk_packed_avx2::<4>(&pa.words, pa.nsplits, r, f, depth),
                }
            }
        }
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx512 => {
            // Up to 8 interleaved 8-lane chains: 16 zmm of walk state
            // plus temporaries fits the 32-register file.
            for (r, f) in refs.chunks_mut(PACKED_CHUNK).zip(fps.chunks(PACKED_CHUNK)) {
                match r.len() / LANES {
                    1 => walk_packed_avx512::<1>(&pa.words, pa.nsplits, r, f, depth),
                    2 => walk_packed_avx512::<2>(&pa.words, pa.nsplits, r, f, depth),
                    3 => walk_packed_avx512::<3>(&pa.words, pa.nsplits, r, f, depth),
                    4 => walk_packed_avx512::<4>(&pa.words, pa.nsplits, r, f, depth),
                    5 => walk_packed_avx512::<5>(&pa.words, pa.nsplits, r, f, depth),
                    6 => walk_packed_avx512::<6>(&pa.words, pa.nsplits, r, f, depth),
                    7 => walk_packed_avx512::<7>(&pa.words, pa.nsplits, r, f, depth),
                    _ => walk_packed_avx512::<8>(&pa.words, pa.nsplits, r, f, depth),
                }
            }
        }
    }
}

/// Portable packed kernel — the equivalence oracle for the vector
/// packed kernels, and the packed path on non-x86. Lockstep rounds keep
/// the lanes' single loads overlapped; parked lanes spin harmlessly on
/// their self-looping leaf record.
///
/// # Safety
/// Same contract as [`walk_packed`].
unsafe fn walk_packed_scalar(
    words: &[u64],
    nsplits: u32,
    refs: &mut [u32],
    fps: &[u64],
    depth: usize,
) {
    for _ in 0..depth {
        let mut parked = true;
        for (r, &fp) in refs.iter_mut().zip(fps) {
            let w = *words.get_unchecked(*r as usize);
            let fv = (fp >> (w & 63)) & PACKED_MAX_FEATURE;
            let thr = w >> 52;
            let child = if fv <= thr { 6 } else { 29 };
            let next = (w >> child) & PACKED_IDX_MASK;
            *r = next as u32;
            parked &= next as u32 >= nsplits;
        }
        if parked {
            break;
        }
    }
}

/// AVX-512 packed kernel: `G` interleaved 8-lane chains. One gather and
/// seven cheap vector ops per chain per round; an all-parked check every
/// eight rounds costs one compare per chain.
///
/// # Safety
/// Same contract as [`walk_packed`], plus `avx512f` must be detected
/// ([`resolve`] guarantees this); `refs.len() == fps.len() == 8 G`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn walk_packed_avx512<const G: usize>(
    words: &[u64],
    nsplits: u32,
    refs: &mut [u32],
    fps: &[u64],
    depth: usize,
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(refs.len(), LANES * G);
    let base = words.as_ptr() as *const i64;
    let m63 = _mm512_set1_epi64(63);
    let fff = _mm512_set1_epi64(PACKED_MAX_FEATURE as i64);
    let m23 = _mm512_set1_epi64(PACKED_IDX_MASK as i64);
    let sh_l = _mm512_set1_epi64(6);
    let sh_r = _mm512_set1_epi64(29);
    let splits = _mm512_set1_epi64(nsplits as i64);

    let mut idx: [__m512i; G] = std::array::from_fn(|g| {
        _mm512_cvtepu32_epi64(_mm256_loadu_si256(
            refs.as_ptr().add(LANES * g) as *const __m256i
        ))
    });
    let fp: [__m512i; G] =
        std::array::from_fn(|g| _mm512_loadu_si512(fps.as_ptr().add(LANES * g) as *const __m512i));

    let mut round = 0;
    while round < depth {
        let burst = (depth - round).min(8);
        for _ in 0..burst {
            for g in 0..G {
                let w = _mm512_i64gather_epi64::<8>(idx[g], base);
                let sh = _mm512_and_si512(w, m63);
                let fv = _mm512_and_si512(_mm512_srlv_epi64(fp[g], sh), fff);
                let thr = _mm512_srli_epi64::<52>(w);
                let le = _mm512_cmple_epu64_mask(fv, thr);
                // One variable shift pulls the taken child: its count is
                // the blended field offset, so neither child is
                // extracted separately.
                let child = _mm512_mask_blend_epi64(le, sh_r, sh_l);
                idx[g] = _mm512_and_si512(_mm512_srlv_epi64(w, child), m23);
            }
        }
        round += burst;
        let mut live = 0u8;
        for g in &idx {
            live |= _mm512_cmplt_epu64_mask(*g, splits);
        }
        if live == 0 {
            break;
        }
    }

    for (g, &v) in idx.iter().enumerate() {
        _mm256_storeu_si256(
            refs.as_mut_ptr().add(LANES * g) as *mut __m256i,
            _mm512_cvtepi64_epi32(v),
        );
    }
}

/// AVX2 packed kernel: `H` interleaved 4-lane chains. No mask registers,
/// but also no liveness to track — the signed compares are safe because
/// both operands are ≤ 0xFFF.
///
/// # Safety
/// Same contract as [`walk_packed`], plus `avx2` must be detected
/// ([`resolve`] guarantees this); `refs.len() == fps.len() == 4 H`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn walk_packed_avx2<const H: usize>(
    words: &[u64],
    nsplits: u32,
    refs: &mut [u32],
    fps: &[u64],
    depth: usize,
) {
    use std::arch::x86_64::*;
    debug_assert_eq!(refs.len(), 4 * H);
    let base = words.as_ptr() as *const i64;
    let m63 = _mm256_set1_epi64x(63);
    let fff = _mm256_set1_epi64x(PACKED_MAX_FEATURE as i64);
    let m23 = _mm256_set1_epi64x(PACKED_IDX_MASK as i64);
    let sh_l = _mm256_set1_epi64x(6);
    let sh_r = _mm256_set1_epi64x(29);
    let splits = _mm256_set1_epi64x(nsplits as i64);

    let mut idx: [__m256i; H] = std::array::from_fn(|h| {
        _mm256_cvtepu32_epi64(_mm_loadu_si128(refs.as_ptr().add(4 * h) as *const __m128i))
    });
    let fp: [__m256i; H] =
        std::array::from_fn(|h| _mm256_loadu_si256(fps.as_ptr().add(4 * h) as *const __m256i));

    let mut round = 0;
    while round < depth {
        let burst = (depth - round).min(8);
        for _ in 0..burst {
            for h in 0..H {
                let w = _mm256_i64gather_epi64::<8>(base, idx[h]);
                let sh = _mm256_and_si256(w, m63);
                let fv = _mm256_and_si256(_mm256_srlv_epi64(fp[h], sh), fff);
                let thr = _mm256_srli_epi64::<52>(w);
                // fv > thr goes right; signed compare is exact ≤ 0xFFF.
                let gt = _mm256_cmpgt_epi64(fv, thr);
                // One variable shift pulls the taken child (see AVX-512).
                let child = _mm256_blendv_epi8(sh_l, sh_r, gt);
                idx[h] = _mm256_and_si256(_mm256_srlv_epi64(w, child), m23);
            }
        }
        round += burst;
        let mut live = _mm256_setzero_si256();
        for h in &idx {
            // idx < nsplits, signed-safe: both fit 23 bits.
            live = _mm256_or_si256(live, _mm256_cmpgt_epi64(splits, *h));
        }
        if _mm256_movemask_epi8(live) == 0 {
            break;
        }
    }

    let mut out = [0u64; 4];
    for (h, &lanes) in idx.iter().enumerate() {
        _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, lanes);
        for (k, &v) in out.iter().enumerate() {
            *refs.get_unchecked_mut(4 * h + k) = v as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_walkers_resolve_with_fallback() {
        assert_eq!(resolve(BatchWalker::Scalar), Kernel::Scalar);
        assert_eq!(resolve(BatchWalker::Auto), auto_kernel());
        // Explicit requests never fail: unsupported kernels fall back.
        let _ = resolve(BatchWalker::Avx2);
        let _ = resolve(BatchWalker::Avx512);
        assert_eq!(active_kernel_name(), kernel_name(auto_kernel()));
    }

    #[test]
    fn lane_cols_pad_replicates_last_sample() {
        let mut cols = LaneCols::zeroed();
        let group: Vec<[u64; 3]> = vec![[1, 2, 3], [4, 5, 6], [7, 8, 9]];
        cols.fill(&group, 3);
        for f in 0..3 {
            assert_eq!(cols.0[f][0], [1, 2, 3][f]);
            assert_eq!(cols.0[f][2], [7, 8, 9][f]);
            for lane in 3..LANES {
                assert_eq!(cols.0[f][lane], [7, 8, 9][f], "lane {lane} replicates");
            }
        }
    }

    #[test]
    fn fill_pair_pads_second_group_from_last_sample() {
        let mut cols = [LaneCols::zeroed(), LaneCols::zeroed()];
        let group: Vec<[u64; 2]> = (0..10).map(|i| [i, i * 2]).collect();
        fill_pair(&mut cols, &group, 2);
        assert_eq!(cols[0].0[0][7], 7);
        assert_eq!(cols[1].0[0][0], 8);
        assert_eq!(cols[1].0[0][1], 9);
        for lane in 2..LANES {
            assert_eq!(cols[1].0[0][lane], 9, "lane {lane} replicates sample 9");
        }
    }

    #[test]
    fn every_available_packed_kernel_agrees_and_parks_at_leaves() {
        let nodes = calibration_arena(10);
        let pa = PackedArena::build(&nodes, PACKED_MAX_ARITY).unwrap();
        let rows: Vec<[u64; PACKED_MAX_ARITY]> = (0..50u64)
            .map(|i| {
                std::array::from_fn(|f| i.wrapping_mul(0x2545_f491).rotate_left(f as u32) & 0xfff)
            })
            .collect();
        let mut fps = [0u64; PACKED_CHUNK];
        let lanes = stage_packed(&rows, PACKED_MAX_ARITY, &mut fps).unwrap();
        assert_eq!(lanes, 56, "50 rows pad to the next 8-lane multiple");
        let mut want = [0u32; PACKED_CHUNK];
        // SAFETY: packed references are in-bounds by construction.
        unsafe { walk_packed(Kernel::Scalar, &pa, &mut want[..lanes], &fps[..lanes], 10) };
        for &r in &want[..lanes] {
            assert!(r >= pa.nsplits, "every lane must park at a leaf record");
        }
        for k in available_kernels() {
            let mut got = [0u32; PACKED_CHUNK];
            // SAFETY: as above; k is detected-available.
            unsafe { walk_packed(k, &pa, &mut got[..lanes], &fps[..lanes], 10) };
            assert_eq!(got, want, "packed kernel {:?} diverged", k);
        }
    }

    #[test]
    fn stage_packed_rejects_oversized_features_and_pads() {
        let mut fps = [0u64; PACKED_CHUNK];
        let rows: Vec<[u64; 2]> = vec![[1, 4096]];
        assert_eq!(stage_packed(&rows, 2, &mut fps), None, "4096 needs 13 bits");
        let rows: Vec<[u64; 2]> = vec![[5, 4095], [7, 9]];
        assert_eq!(stage_packed(&rows, 2, &mut fps), Some(8));
        assert_eq!(fps[0], 5 | (4095 << 12));
        for (lane, &fp) in fps.iter().enumerate().take(8).skip(1) {
            assert_eq!(fp, 7 | (9 << 12), "lane {lane} replicates last");
        }
    }

    #[test]
    fn packed_arena_saturates_thresholds_and_self_loops_leaves() {
        // One split with an over-12-bit threshold, two leaf children.
        let nodes = vec![CompiledNode {
            threshold: u64::MAX,
            left: LEAF_BIT,
            right: LEAF_BIT | 1,
            feature: 3,
            pad: [0; 7],
        }];
        let pa = PackedArena::build(&nodes, 5).unwrap();
        assert_eq!(pa.nsplits, 1);
        assert_eq!(pa.words.len(), 3);
        let w = pa.words[0];
        assert_eq!(w & 63, 36, "feature 3 sits at bit 36");
        assert_eq!(w >> 52, 0xfff, "threshold saturates");
        for label in 0..2u32 {
            let leaf = pa.words[(1 + label) as usize];
            assert_eq!((leaf >> 52) as u32 & 1, label);
            assert_eq!((leaf >> 6) & PACKED_IDX_MASK, (1 + label) as u64);
            assert_eq!(
                (leaf >> 29) & PACKED_IDX_MASK,
                (1 + label) as u64,
                "leaf self-loops"
            );
        }
        assert_eq!(pa.entry(LEAF_BIT | 1), 2);
        assert_eq!(pa.label(2), Label::Incorrect);
        assert_eq!(pa.vote(1), 0);
        // Out-of-envelope models refuse to pack.
        assert!(PackedArena::build(&[], 5).is_none());
        assert!(PackedArena::build(&nodes, 6).is_none());
    }

    #[test]
    fn every_available_kernel_agrees_on_the_calibration_arena() {
        let nodes = calibration_arena(10);
        let rows: Vec<[u64; MAX_SIMD_ARITY]> = (0..WIDTH as u64)
            .map(|i| std::array::from_fn(|f| i.wrapping_mul(0x2545_f491).rotate_left(f as u32)))
            .collect();
        let mut cols = [LaneCols::zeroed(), LaneCols::zeroed()];
        fill_pair(&mut cols, &rows, MAX_SIMD_ARITY);
        let mut want = [0u32; WIDTH];
        // SAFETY: synthetic arena references are in-bounds and forward.
        unsafe { walk_wide(Kernel::Scalar, &nodes, &mut want, &cols, 10) };
        for k in available_kernels() {
            let mut got = [0u32; WIDTH];
            // SAFETY: as above; k is detected-available.
            unsafe { walk_wide(k, &nodes, &mut got, &cols, 10) };
            assert_eq!(got, want, "kernel {:?} diverged", k);
        }
    }
}
