//! Property-based equivalence: the compiled arena engine must be
//! bit-identical to the boxed walkers — same verdicts, same costs — on
//! randomized trees, forests and inputs. The compiled form is what ships
//! on the VM-entry hot path, so "fast" is only admissible as "fast and
//! provably the same function".

use mltree::{
    CompiledForest, CompiledTree, Dataset, DecisionTree, ForestConfig, Label, RandomForest, Sample,
    TrainConfig,
};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    // 2-4 features, 20-200 samples, values in a modest range.
    (2usize..5, 20usize..200).prop_flat_map(|(nf, ns)| {
        proptest::collection::vec(
            (proptest::collection::vec(0u64..1000, nf), any::<bool>()),
            ns,
        )
        .prop_map(move |rows| {
            let names: Vec<String> = (0..nf).map(|i| format!("f{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let mut ds = Dataset::new(&name_refs);
            for (features, bad) in rows {
                ds.push(Sample::new(
                    features,
                    if bad {
                        Label::Incorrect
                    } else {
                        Label::Correct
                    },
                ));
            }
            ds
        })
    })
}

/// Probe vectors resized to the dataset's feature count: a mix of
/// in-distribution values and extremes the training data never saw.
fn probes(ds: &Dataset, raw: &[Vec<u64>]) -> Vec<Vec<u64>> {
    let nf = ds.nr_features();
    let mut out: Vec<Vec<u64>> = raw
        .iter()
        .map(|p| {
            let mut p = p.clone();
            p.resize(nf, 0);
            p
        })
        .collect();
    out.push(vec![0; nf]);
    out.push(vec![u64::MAX; nf]);
    out.extend(ds.samples.iter().map(|s| s.features.clone()));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CompiledTree::classify and classify_cost match the boxed walker on
    /// every probe, and the batch path matches the single-sample path.
    #[test]
    fn compiled_tree_is_bit_identical(
        ds in arb_dataset(),
        seed in any::<u64>(),
        raw in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 4), 1..12),
    ) {
        let tree = DecisionTree::train(&ds, &TrainConfig::random_tree(ds.nr_features(), seed));
        let compiled = CompiledTree::compile(&tree);
        let inputs = probes(&ds, &raw);
        let mut batch = vec![Label::Correct; inputs.len()];
        compiled.classify_batch(&inputs, &mut batch);
        for (f, b) in inputs.iter().zip(batch) {
            prop_assert_eq!(compiled.classify(f), tree.classify(f));
            prop_assert_eq!(compiled.classify_cost(f), tree.classify_cost(f));
            prop_assert_eq!(b, tree.classify(f));
        }
        prop_assert_eq!(compiled.depth(), tree.depth());
    }

    /// CompiledForest verdicts, vote counts and costs match the boxed
    /// forest for arbitrary vote thresholds (including ones the early
    /// exit hits on the first or last tree), and the chunked batch path
    /// matches single-sample classification.
    #[test]
    fn compiled_forest_is_bit_identical(
        ds in arb_dataset(),
        seed in any::<u64>(),
        nr_trees in 1usize..9,
        threshold in 1usize..10,
        raw in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 4), 1..8),
    ) {
        let mut cfg = ForestConfig::default_random_forest(ds.nr_features(), seed);
        cfg.nr_trees = nr_trees;
        cfg.vote_threshold = Some(threshold.min(nr_trees + 1));
        let forest = RandomForest::train(&ds, &cfg);
        let compiled = CompiledForest::compile(&forest);
        let inputs = probes(&ds, &raw);
        let mut batch = vec![Label::Correct; inputs.len()];
        compiled.classify_batch(&inputs, &mut batch);
        for (f, b) in inputs.iter().zip(batch) {
            prop_assert_eq!(compiled.classify(f), forest.classify(f));
            prop_assert_eq!(compiled.incorrect_votes(f), forest.incorrect_votes(f));
            prop_assert_eq!(compiled.classify_cost(f), forest.classify_cost(f));
            prop_assert_eq!(b, forest.classify(f));
        }
    }

    /// Training the same forest config on any thread count yields the
    /// same compiled arena (parallel training is bit-identical).
    #[test]
    fn parallel_forest_compiles_identically(ds in arb_dataset(), seed in any::<u64>()) {
        let cfg = ForestConfig::default_random_forest(ds.nr_features(), seed);
        let serial = RandomForest::train_with_threads(&ds, &cfg, 1);
        let parallel = RandomForest::train_with_threads(&ds, &cfg, 4);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(CompiledForest::compile(&serial), CompiledForest::compile(&parallel));
    }
}
