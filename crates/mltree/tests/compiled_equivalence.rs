//! Property-based equivalence: the compiled arena engine must be
//! bit-identical to the boxed walkers — same verdicts, same costs — on
//! randomized trees, forests and inputs. The compiled form is what ships
//! on the VM-entry hot path, so "fast" is only admissible as "fast and
//! provably the same function".

use mltree::{
    BatchWalker, CompiledForest, CompiledTree, Dataset, DecisionTree, ForestConfig, Label,
    RandomForest, Sample, TrainConfig, TreeProfile,
};
use proptest::prelude::*;

/// Every kernel the batch entry can dispatch to. Requesting a width the
/// CPU lacks falls back to the next narrower kernel, so iterating all of
/// these is safe on any host — on AVX-512 hardware it covers the packed
/// zmm, packed ymm and scalar lockstep walkers plus the calibrated
/// `Auto` pick.
const WALKERS: [BatchWalker; 4] = [
    BatchWalker::Scalar,
    BatchWalker::Avx2,
    BatchWalker::Avx512,
    BatchWalker::Auto,
];

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    // 2-4 features, 20-200 samples, values in a modest range.
    (2usize..5, 20usize..200).prop_flat_map(|(nf, ns)| {
        proptest::collection::vec(
            (proptest::collection::vec(0u64..1000, nf), any::<bool>()),
            ns,
        )
        .prop_map(move |rows| {
            let names: Vec<String> = (0..nf).map(|i| format!("f{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let mut ds = Dataset::new(&name_refs);
            for (features, bad) in rows {
                ds.push(Sample::new(
                    features,
                    if bad {
                        Label::Incorrect
                    } else {
                        Label::Correct
                    },
                ));
            }
            ds
        })
    })
}

/// Like [`arb_dataset`] but with feature values drawn from the full u64
/// range, so trained thresholds routinely exceed the packed walker's
/// 12-bit envelope (0xFFF) and its saturation path gets real coverage.
fn arb_wide_dataset() -> impl Strategy<Value = Dataset> {
    (2usize..5, 20usize..120).prop_flat_map(|(nf, ns)| {
        proptest::collection::vec(
            (proptest::collection::vec(any::<u64>(), nf), any::<bool>()),
            ns,
        )
        .prop_map(move |rows| {
            let names: Vec<String> = (0..nf).map(|i| format!("f{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let mut ds = Dataset::new(&name_refs);
            for (features, bad) in rows {
                ds.push(Sample::new(
                    features,
                    if bad {
                        Label::Incorrect
                    } else {
                        Label::Correct
                    },
                ));
            }
            ds
        })
    })
}

/// Probe vectors resized to the dataset's feature count: a mix of
/// in-distribution values and extremes the training data never saw.
fn probes(ds: &Dataset, raw: &[Vec<u64>]) -> Vec<Vec<u64>> {
    let nf = ds.nr_features();
    let mut out: Vec<Vec<u64>> = raw
        .iter()
        .map(|p| {
            let mut p = p.clone();
            p.resize(nf, 0);
            p
        })
        .collect();
    out.push(vec![0; nf]);
    out.push(vec![u64::MAX; nf]);
    out.extend(ds.samples.iter().map(|s| s.features.clone()));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CompiledTree::classify and classify_cost match the boxed walker on
    /// every probe, and the batch path matches the single-sample path.
    #[test]
    fn compiled_tree_is_bit_identical(
        ds in arb_dataset(),
        seed in any::<u64>(),
        raw in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 4), 1..12),
    ) {
        let tree = DecisionTree::train(&ds, &TrainConfig::random_tree(ds.nr_features(), seed));
        let compiled = CompiledTree::compile(&tree);
        let inputs = probes(&ds, &raw);
        let mut batch = vec![Label::Correct; inputs.len()];
        compiled.classify_batch(&inputs, &mut batch);
        for (f, b) in inputs.iter().zip(batch) {
            prop_assert_eq!(compiled.classify(f), tree.classify(f));
            prop_assert_eq!(compiled.classify_cost(f), tree.classify_cost(f));
            prop_assert_eq!(b, tree.classify(f));
        }
        prop_assert_eq!(compiled.depth(), tree.depth());
    }

    /// CompiledForest verdicts, vote counts and costs match the boxed
    /// forest for arbitrary vote thresholds (including ones the early
    /// exit hits on the first or last tree), and the chunked batch path
    /// matches single-sample classification.
    #[test]
    fn compiled_forest_is_bit_identical(
        ds in arb_dataset(),
        seed in any::<u64>(),
        nr_trees in 1usize..9,
        threshold in 1usize..10,
        raw in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 4), 1..8),
    ) {
        let mut cfg = ForestConfig::default_random_forest(ds.nr_features(), seed);
        cfg.nr_trees = nr_trees;
        cfg.vote_threshold = Some(threshold.min(nr_trees + 1));
        let forest = RandomForest::train(&ds, &cfg);
        let compiled = CompiledForest::compile(&forest);
        let inputs = probes(&ds, &raw);
        let mut batch = vec![Label::Correct; inputs.len()];
        compiled.classify_batch(&inputs, &mut batch);
        for (f, b) in inputs.iter().zip(batch) {
            prop_assert_eq!(compiled.classify(f), forest.classify(f));
            prop_assert_eq!(compiled.incorrect_votes(f), forest.incorrect_votes(f));
            prop_assert_eq!(compiled.classify_cost(f), forest.classify_cost(f));
            prop_assert_eq!(b, forest.classify(f));
        }
    }

    /// Training the same forest config on any thread count yields the
    /// same compiled arena (parallel training is bit-identical).
    #[test]
    fn parallel_forest_compiles_identically(ds in arb_dataset(), seed in any::<u64>()) {
        let cfg = ForestConfig::default_random_forest(ds.nr_features(), seed);
        let serial = RandomForest::train_with_threads(&ds, &cfg, 1);
        let parallel = RandomForest::train_with_threads(&ds, &cfg, 4);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(CompiledForest::compile(&serial), CompiledForest::compile(&parallel));
    }

    /// Every vector kernel is bit-identical to the scalar lockstep
    /// oracle, on full batches and on every short tail (1..=9 rows) —
    /// tails are where lane padding and the parked-lane logic live.
    #[test]
    fn every_batch_walker_matches_the_scalar_oracle(
        ds in arb_dataset(),
        seed in any::<u64>(),
        raw in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 4), 1..12),
    ) {
        let tree = DecisionTree::train(&ds, &TrainConfig::random_tree(ds.nr_features(), seed));
        let compiled = CompiledTree::compile(&tree);
        let inputs = probes(&ds, &raw);
        let mut oracle = vec![Label::Correct; inputs.len()];
        compiled.classify_batch_with(BatchWalker::Scalar, &inputs, &mut oracle);
        for (f, o) in inputs.iter().zip(&oracle) {
            prop_assert_eq!(*o, tree.classify(f));
        }
        for walker in WALKERS {
            let mut got = vec![Label::Correct; inputs.len()];
            compiled.classify_batch_with(walker, &inputs, &mut got);
            prop_assert_eq!(&got, &oracle);
            for tail in 1..inputs.len().min(10) {
                let mut t = vec![Label::Correct; tail];
                compiled.classify_batch_with(walker, &inputs[..tail], &mut t);
                prop_assert_eq!(&t[..], &oracle[..tail]);
            }
        }
    }

    /// The packed 12-bit envelope's edges are exact under every kernel:
    /// arenas whose thresholds exceed 0xFFF (saturated at pack time) must
    /// still verdict correctly for in-envelope inputs, and chunks holding
    /// any out-of-envelope value (4096, u64::MAX) must drop to the exact
    /// tagged kernels without disturbing their neighbours.
    #[test]
    fn packed_envelope_edges_match_the_boxed_walker(
        ds in arb_wide_dataset(),
        seed in any::<u64>(),
        small in proptest::collection::vec(proptest::collection::vec(0u64..4096, 4), 1..8),
    ) {
        let tree = DecisionTree::train(&ds, &TrainConfig::random_tree(ds.nr_features(), seed));
        let compiled = CompiledTree::compile(&tree);
        let nf = ds.nr_features();
        // First 64 rows stay inside the envelope, so chunk 0 is
        // guaranteed to take the packed path against saturated
        // thresholds; the rows after it force fallback chunks.
        let mut inputs: Vec<Vec<u64>> = (0..64)
            .map(|i| {
                let mut p = small[i % small.len()].clone();
                p.resize(nf, 0);
                if i == 0 {
                    p.fill(0xFFF); // largest in-envelope value
                }
                p
            })
            .collect();
        inputs.push(vec![4096; nf]); // smallest out-of-envelope value
        inputs.push(vec![u64::MAX; nf]);
        inputs.extend(ds.samples.iter().map(|s| s.features.clone()));
        for walker in WALKERS {
            let mut got = vec![Label::Correct; inputs.len()];
            compiled.classify_batch_with(walker, &inputs, &mut got);
            for (f, b) in inputs.iter().zip(got) {
                prop_assert_eq!(b, tree.classify(f));
            }
        }
    }

    /// Profile-guided re-layout is a pure permutation: the re-laid arena
    /// passes `validate()`, keeps depth and split count, and verdicts on
    /// every kernel are bit-identical to the original — for a harvested
    /// profile and for the degenerate all-zero one.
    #[test]
    fn profiled_relayout_is_a_pure_permutation(
        ds in arb_dataset(),
        seed in any::<u64>(),
        raw in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 4), 1..8),
    ) {
        let tree = DecisionTree::train(&ds, &TrainConfig::random_tree(ds.nr_features(), seed));
        let compiled = CompiledTree::compile(&tree);
        let traffic: Vec<Vec<u64>> = ds.samples.iter().map(|s| s.features.clone()).collect();
        let mut profile = TreeProfile::for_tree(&compiled);
        profile.record_batch(&compiled, &traffic);
        let inputs = probes(&ds, &raw);
        for relaid in [
            compiled.reorder_profiled(&profile),
            compiled.reorder_profiled(&TreeProfile::for_tree(&compiled)),
            CompiledTree::compile_profiled(&tree, &profile),
        ] {
            prop_assert!(relaid.validate().is_ok());
            prop_assert_eq!(relaid.depth(), compiled.depth());
            prop_assert_eq!(relaid.nr_splits(), compiled.nr_splits());
            prop_assert_eq!(relaid.arena_bytes(), compiled.arena_bytes());
            prop_assert!(relaid.hot_prefix_bytes() <= relaid.arena_bytes());
            for walker in WALKERS {
                let mut got = vec![Label::Correct; inputs.len()];
                relaid.classify_batch_with(walker, &inputs, &mut got);
                for (f, b) in inputs.iter().zip(got) {
                    prop_assert_eq!(b, tree.classify(f));
                }
            }
            for f in &inputs {
                prop_assert_eq!(relaid.classify(f), tree.classify(f));
                prop_assert_eq!(relaid.classify_cost(f), compiled.classify_cost(f));
            }
        }
    }

    /// The staging-fused row entry ([`CompiledTree::classify_batch_rows`])
    /// is bit-identical to materializing the rows and calling
    /// `classify_batch`, on every kernel and every tail length. Rows are
    /// padded to a fixed width of 4, so datasets with arity 4 exercise
    /// the const-unrolled packer and narrower ones the runtime-arity
    /// packer; probe rows holding u64::MAX exercise the
    /// materialize-and-fall-back chunk path.
    #[test]
    fn classify_batch_rows_matches_materialized_batches(
        ds in arb_dataset(),
        seed in any::<u64>(),
        raw in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 4), 1..12),
    ) {
        let tree = DecisionTree::train(&ds, &TrainConfig::random_tree(ds.nr_features(), seed));
        let compiled = CompiledTree::compile(&tree);
        let inputs = probes(&ds, &raw);
        let rows: Vec<[u64; 4]> = inputs
            .iter()
            .map(|p| {
                let mut r = [0u64; 4];
                for (d, s) in r.iter_mut().zip(p) {
                    *d = *s;
                }
                r
            })
            .collect();
        let mut expect = vec![Label::Correct; inputs.len()];
        compiled.classify_batch(&inputs, &mut expect);
        for walker in WALKERS {
            let mut got = vec![Label::Correct; rows.len()];
            compiled.classify_batch_rows::<4>(walker, rows.len(), |i| rows[i], &mut got);
            prop_assert_eq!(&got, &expect);
            for tail in 1..rows.len().min(10) {
                let mut t = vec![Label::Correct; tail];
                compiled.classify_batch_rows::<4>(walker, tail, |i| rows[i], &mut t);
                prop_assert_eq!(&t[..], &expect[..tail]);
            }
        }
        // Zero rows is a no-op, not a panic.
        compiled.classify_batch_rows::<4>(BatchWalker::Auto, 0, |i| rows[i], &mut []);
    }

    /// An injected single-bit fault stays visible on the batch fast path:
    /// either `validate()` rejects the corrupted arena at the deploy
    /// gate, or — for semantic corruption that keeps the structure valid
    /// — every batch kernel computes the same (corrupted) function as
    /// the checked single-sample walk, so the canary layer sees the flip
    /// regardless of which path classified. A stale packed shadow would
    /// fail exactly this. Flipping the same bit twice restores the arena
    /// bit-for-bit, packed shadow included.
    #[test]
    fn flipped_bits_stay_visible_on_the_batch_path(
        ds in arb_dataset(),
        seed in any::<u64>(),
        bitsel in any::<u64>(),
    ) {
        let tree = DecisionTree::train(&ds, &TrainConfig::random_tree(ds.nr_features(), seed));
        let pristine = CompiledTree::compile(&tree);
        prop_assume!(pristine.nr_splits() > 0);
        let inputs = probes(&ds, &[]);
        let mut corrupt = pristine.clone();
        let bit = (bitsel as usize) % pristine.logical_bits();
        corrupt.flip_bit(bit);
        if corrupt.validate().is_ok() {
            let single: Vec<Label> = inputs.iter().map(|f| corrupt.classify(f)).collect();
            for walker in WALKERS {
                let mut got = vec![Label::Correct; inputs.len()];
                corrupt.classify_batch_with(walker, &inputs, &mut got);
                prop_assert_eq!(&got, &single);
            }
        }
        corrupt.flip_bit(bit);
        prop_assert_eq!(&corrupt, &pristine);
        // A high bit flipped into record 0's left reference makes it
        // neither a well-formed leaf tag nor an in-bounds index — the
        // deploy gate must always catch it.
        let mut oob = pristine.clone();
        oob.flip_bit(64 + 30);
        prop_assert!(oob.validate().is_err());
    }

    /// The forest batch path agrees with the boxed forest under every
    /// kernel, including on short tails.
    #[test]
    fn forest_batch_walkers_match_the_boxed_forest(
        ds in arb_dataset(),
        seed in any::<u64>(),
        nr_trees in 1usize..6,
        raw in proptest::collection::vec(proptest::collection::vec(any::<u64>(), 4), 1..6),
    ) {
        let mut cfg = ForestConfig::default_random_forest(ds.nr_features(), seed);
        cfg.nr_trees = nr_trees;
        let forest = RandomForest::train(&ds, &cfg);
        let compiled = CompiledForest::compile(&forest);
        let inputs = probes(&ds, &raw);
        for walker in WALKERS {
            let mut got = vec![Label::Correct; inputs.len()];
            compiled.classify_batch_with(walker, &inputs, &mut got);
            for (f, b) in inputs.iter().zip(&got) {
                prop_assert_eq!(*b, forest.classify(f));
            }
            for tail in 1..inputs.len().min(6) {
                let mut t = vec![Label::Correct; tail];
                compiled.classify_batch_with(walker, &inputs[..tail], &mut t);
                prop_assert_eq!(&t[..], &got[..tail]);
            }
        }
    }
}
