//! Property-based tests for the tree learner.

use mltree::{evaluate, Dataset, DecisionTree, Label, Sample, TrainConfig};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    // 2-4 features, 20-200 samples, values in a modest range.
    (2usize..5, 20usize..200).prop_flat_map(|(nf, ns)| {
        proptest::collection::vec(
            (proptest::collection::vec(0u64..1000, nf), any::<bool>()),
            ns,
        )
        .prop_map(move |rows| {
            let names: Vec<String> = (0..nf).map(|i| format!("f{i}")).collect();
            let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
            let mut ds = Dataset::new(&name_refs);
            for (features, bad) in rows {
                ds.push(Sample::new(
                    features,
                    if bad {
                        Label::Incorrect
                    } else {
                        Label::Correct
                    },
                ));
            }
            ds
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Training never panics and always yields a classifier that answers
    /// for arbitrary inputs.
    #[test]
    fn training_is_total(ds in arb_dataset(), probe in proptest::collection::vec(any::<u64>(), 4)) {
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        let mut input = probe;
        input.resize(ds.nr_features(), 0);
        let _ = tree.classify(&input);
        prop_assert!(tree.depth() <= 24);
    }

    /// Training accuracy on a *consistently labeled* dataset (labels are a
    /// function of the features) is perfect when the tree can grow deep
    /// enough: the learner must be able to memorize consistent data.
    #[test]
    fn consistent_data_is_memorized(rows in proptest::collection::vec(
        proptest::collection::vec(0u64..50, 3), 10..120)) {
        let mut ds = Dataset::new(&["a", "b", "c"]);
        for f in &rows {
            // Deterministic labeling rule.
            let label = if (f[0] ^ f[1].wrapping_mul(3) ^ f[2]) % 5 < 2 {
                Label::Incorrect
            } else {
                Label::Correct
            };
            ds.push(Sample::new(f.clone(), label));
        }
        let mut cfg = TrainConfig::decision_tree();
        cfg.max_depth = 64;
        cfg.min_split = 2;
        let tree = DecisionTree::train(&ds, &cfg);
        // Duplicated feature vectors may carry both labels (the rule is
        // deterministic, so they cannot); training accuracy must be 1.
        let cm = evaluate(&tree, &ds);
        prop_assert!(cm.accuracy() == 1.0, "training accuracy {}", cm.accuracy());
    }

    /// Classification is scale-consistent: the random tree with a fixed
    /// seed produces identical structures on identical data.
    #[test]
    fn random_tree_deterministic(ds in arb_dataset(), seed in any::<u64>()) {
        let a = DecisionTree::train(&ds, &TrainConfig::random_tree(ds.nr_features(), seed));
        let b = DecisionTree::train(&ds, &TrainConfig::random_tree(ds.nr_features(), seed));
        prop_assert_eq!(a.root, b.root);
    }

    /// The confusion matrix always partitions the test set.
    #[test]
    fn confusion_matrix_partitions(ds in arb_dataset()) {
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        let cm = evaluate(&tree, &ds);
        prop_assert_eq!(cm.total(), ds.len());
        prop_assert!(cm.accuracy() >= 0.0 && cm.accuracy() <= 1.0);
        prop_assert!(cm.false_positive_rate() >= 0.0 && cm.false_positive_rate() <= 1.0);
    }

    /// Serialization round trip preserves every classification.
    #[test]
    fn serde_preserves_classification(ds in arb_dataset()) {
        let tree = DecisionTree::train(&ds, &TrainConfig::random_tree(ds.nr_features(), 5));
        let json = serde_json::to_string(&tree).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        for s in &ds.samples {
            prop_assert_eq!(back.classify(&s.features), tree.classify(&s.features));
        }
    }

    /// classify_cost is bounded by the tree depth for all inputs.
    #[test]
    fn cost_bounded_by_depth(ds in arb_dataset(), probe in proptest::collection::vec(any::<u64>(), 4)) {
        let tree = DecisionTree::train(&ds, &TrainConfig::decision_tree());
        let mut input = probe;
        input.resize(ds.nr_features(), 0);
        prop_assert!(tree.classify_cost(&input) <= tree.depth());
    }
}
