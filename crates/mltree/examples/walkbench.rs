//! Kernel iteration harness: per-kernel, per-layout ns/classify on a
//! detector-shaped workload (many models round-robined over a sample
//! pool, batches of 64), without booting the full xentry-bench
//! pipeline. Used to tune the `mltree::simd` kernels; the committed
//! perf numbers come from `figures -- inference`.
//!
//! ```text
//! cargo run --release -p mltree --example walkbench [models] [pool]
//! ```

use mltree::{BatchWalker, CompiledTree, Dataset, DecisionTree, Label, Sample, TrainConfig};

const ARITY: usize = 5;
const BATCH: usize = 64;

fn synth_dataset(n: usize, salt: u64) -> Dataset {
    let mut ds = Dataset::new(&["a", "b", "c", "d", "e"]);
    let mut x = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for _ in 0..n {
        let f: Vec<u64> = (0..ARITY).map(|_| next() % 997).collect();
        let label = if (f[0] * 3 + f[1] * 7 + f[2] * 11 + next() % 200) % 13 < 4 {
            Label::Incorrect
        } else {
            Label::Correct
        };
        ds.push(Sample::new(f, label));
    }
    ds
}

fn measure(name: &str, trees: &[CompiledTree], pool: &[[u64; ARITY]], walker: BatchWalker) {
    let mut out = [Label::Correct; BATCH];
    let mut best = f64::INFINITY;
    let rounds = 9;
    let mut sink = 0usize;
    for _ in 0..rounds {
        let t = std::time::Instant::now();
        let mut n = 0usize;
        for (i, batch) in pool.chunks(BATCH).enumerate() {
            let tree = &trees[i % trees.len()];
            tree.classify_batch_with(walker, batch, &mut out[..batch.len()]);
            n += batch.len();
            sink += (out[0] == Label::Incorrect) as usize;
        }
        let ns = t.elapsed().as_nanos() as f64 / n as f64;
        best = best.min(ns);
    }
    std::hint::black_box(sink);
    println!("{name:>28}  {best:7.2} ns/classify  {:>10.0}/s", 1e9 / best);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let models: usize = args.first().map(|s| s.parse().unwrap()).unwrap_or(128);
    let pool_n: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(8192);

    let trees: Vec<DecisionTree> = (0..models)
        .map(|m| {
            let ds = synth_dataset(6000, m as u64 + 1);
            DecisionTree::train(&ds, &TrainConfig::decision_tree())
        })
        .collect();
    let compiled: Vec<CompiledTree> = trees.iter().map(CompiledTree::compile).collect();
    let pool: Vec<[u64; ARITY]> = {
        let ds = synth_dataset(pool_n, 4242);
        ds.samples
            .iter()
            .map(|s| std::array::from_fn(|f| s.features[f]))
            .collect()
    };

    let splits: usize = compiled.iter().map(|c| c.nr_splits()).sum();
    let depth = compiled.iter().map(|c| c.depth()).max().unwrap_or(0);
    let bytes: usize = compiled.iter().map(|c| c.arena_bytes()).sum();
    let cost: usize = compiled
        .iter()
        .enumerate()
        .map(|(i, c)| {
            pool.iter()
                .skip(i % 8)
                .step_by(8)
                .map(|r| c.classify_cost(r))
                .sum::<usize>()
        })
        .sum();
    println!(
        "{models} models, {} splits avg, depth<= {depth}, {:.1} KiB total, avg path {:.1}",
        splits / models,
        bytes as f64 / 1024.0,
        cost as f64 / (models as f64 * (pool.len() / 8) as f64)
    );
    println!("auto kernel: {}", mltree::active_kernel_name());

    // Profile each tree on its own traffic slice, then re-lay.
    let profiled: Vec<CompiledTree> = compiled
        .iter()
        .map(|c| {
            let mut p = mltree::TreeProfile::for_tree(c);
            for row in pool.iter().take(1024) {
                p.record(c, row);
            }
            c.reorder_profiled(&p)
        })
        .collect();
    let hot: usize = profiled.iter().map(|c| c.hot_prefix_bytes()).sum();
    println!(
        "profiled hot prefix: {:.1} KiB of {:.1} KiB",
        hot as f64 / 1024.0,
        bytes as f64 / 1024.0
    );

    for (layout, trees) in [("preorder", &compiled), ("profiled", &profiled)] {
        for walker in [
            BatchWalker::Scalar,
            BatchWalker::Avx2,
            BatchWalker::Avx512,
            BatchWalker::Auto,
        ] {
            measure(&format!("{layout}/{walker:?}"), trees, &pool, walker);
        }
    }
}
