//! Platform throughput: wall-clock cost of one hypervisor activation
//! (guest burst + VM exit + handler + VM entry) per workload model.
//!
//! This is the simulator-side counterpart of Fig. 3: benchmarks with higher
//! activation frequencies spend proportionally more wall-clock per unit of
//! guest work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use guest_sim::{workload_platform, Benchmark};
use sim_machine::VirtMode;
use xen_like::NullMonitor;

fn bench_activation(c: &mut Criterion) {
    let mut group = c.benchmark_group("activation");
    group.sample_size(20);
    for b in [Benchmark::Freqmine, Benchmark::Postmark, Benchmark::Bzip2] {
        // Campaign-scaled kernels keep each iteration short.
        let mut plat = workload_platform(b, VirtMode::Para, 2, 1, 24, 7);
        plat.boot(1, &mut NullMonitor);
        group.bench_with_input(BenchmarkId::from_parameter(b.name()), &b, |bench, _| {
            bench.iter(|| {
                let act = plat.run_activation(1, &mut NullMonitor);
                assert!(act.outcome.is_healthy());
                act.handler_insns
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_activation);
criterion_main!(benches);
