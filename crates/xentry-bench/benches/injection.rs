//! Fault-injection throughput: cost of one complete injection experiment
//! (snapshot + golden run + faulty run + differencing + consequence
//! classification). The paper's 30,000-injection campaigns are only
//! practical because this unit stays in the low milliseconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faultsim::{inject, prepare_point, CampaignConfig, InjectionSpec};
use guest_sim::Benchmark;
use sim_machine::cpu::FlipTarget;
use sim_machine::Reg;
use xentry::Xentry;

fn bench_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("injection");
    group.sample_size(20);

    let cfg = CampaignConfig::paper(Benchmark::Freqmine, 1, 5);
    let mut plat = faultsim::campaign_platform(&cfg, 5);
    let mut collector = Xentry::collector();
    plat.boot(1, &mut collector);
    for _ in 0..40 {
        plat.run_activation(1, &mut collector);
    }
    let (reason, _) = plat.run_to_exit(1);
    let point = prepare_point(plat.clone(), 1, 1, reason, cfg.post_window, None)
        .expect("healthy golden run");

    group.bench_function(BenchmarkId::from_parameter("prepare_point"), |b| {
        b.iter(|| prepare_point(plat.clone(), 1, 1, reason, cfg.post_window, None).is_some())
    });

    group.bench_function(BenchmarkId::from_parameter("single_injection"), |b| {
        let mut bit = 0u8;
        b.iter(|| {
            bit = bit.wrapping_add(7) % 64;
            let spec = InjectionSpec {
                target: FlipTarget::Gpr(Reg::Rcx),
                bit,
                at_step: (bit as u64 * 13) % point.golden_len.max(1),
            };
            inject(&point, spec, None).outcome.detected()
        })
    });

    group.bench_function(BenchmarkId::from_parameter("platform_snapshot"), |b| {
        b.iter(|| plat.snapshot().machine.nr_cpus())
    });
    group.finish();
}

criterion_group!(benches, bench_injection);
criterion_main!(benches);
