//! Fleet service micro- and macro-benchmarks: queue ops, single-record
//! ingest, and end-to-end replay throughput across 8 shards.
//!
//! The macro bench is the acceptance gate for the serving layer: one
//! replayed burst across 8 shards must sustain over a million
//! classifications per second in release mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use xentry_fleet::{
    replay, FleetConfig, FleetService, MpmcQueue, NullSink, ReplayConfig, TelemetryRecord,
};

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_queue");
    let q: MpmcQueue<TelemetryRecord> = MpmcQueue::with_capacity(4096);
    let rec = TelemetryRecord::new(
        1,
        0,
        7,
        xentry::FeatureVec {
            vmer: 17,
            rt: 120,
            br: 14,
            rm: 22,
            wm: 9,
        },
    );
    group.bench_function(BenchmarkId::from_parameter("push_pop"), |b| {
        b.iter(|| {
            q.push(std::hint::black_box(rec)).unwrap();
            q.pop().unwrap()
        })
    });
    group.finish();
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_ingest");
    let det = replay::synthetic_detector(1);
    let svc = FleetService::start(FleetConfig::default(), det, Arc::new(NullSink));
    let f = xentry::FeatureVec {
        vmer: 17,
        rt: 120,
        br: 14,
        rm: 22,
        wm: 9,
    };
    let mut seq = 0u64;
    group.bench_function(BenchmarkId::from_parameter("ingest_one"), |b| {
        b.iter(|| {
            seq += 1;
            // Drops count as completed ingests: the hot path must not
            // block either way.
            svc.ingest(std::hint::black_box(seq as u32 % 64), 0, seq, f)
        })
    });
    group.finish();
    svc.shutdown();
}

fn bench_replay_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_replay");
    group.sample_size(10);
    let trace = replay::synthetic_trace(16_384, 7);
    group.bench_function(BenchmarkId::from_parameter("replay_8x8_50k"), |b| {
        b.iter(|| {
            let det = replay::synthetic_detector(1);
            let svc = FleetService::start(
                FleetConfig {
                    shards: 8,
                    ..FleetConfig::default()
                },
                det,
                Arc::new(NullSink),
            );
            let rep = replay::replay(
                &svc,
                &trace,
                &ReplayConfig {
                    hosts: 8,
                    records_per_host: 50_000 / 8,
                    rate_per_host: 0.0,
                },
            );
            let snap = svc.shutdown();
            assert_eq!(snap.classified, rep.accepted);
            snap.classified
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queue, bench_ingest, bench_replay_throughput);
criterion_main!(benches);
