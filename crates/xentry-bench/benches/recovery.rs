//! Recovery-path microbenchmarks: the critical-state copy (the operation
//! the paper prices at 1,900 ns) and a full detect-restore-reexecute cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use faultsim::{
    attempt_recovery, detect_fault, prepare_point, CampaignConfig, InjectionSpec, RecoverySpec,
};
use guest_sim::Benchmark;
use sim_machine::cpu::FlipTarget;
use xentry::{CriticalState, Xentry};

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery");
    group.sample_size(20);

    let cfg = CampaignConfig::paper(Benchmark::Freqmine, 1, 5);
    let mut plat = faultsim::campaign_platform(&cfg, 5);
    let mut shim = Xentry::collector();
    plat.boot(1, &mut shim);
    for _ in 0..40 {
        plat.run_activation(1, &mut shim);
    }
    let (reason, _) = plat.run_to_exit(1);

    group.bench_function(BenchmarkId::from_parameter("critical_state_capture"), |b| {
        b.iter(|| CriticalState::capture(&plat.machine, 1).size_words())
    });

    let snap = CriticalState::capture(&plat.machine, 1);
    let mut scratch = plat.clone();
    group.bench_function(BenchmarkId::from_parameter("critical_state_restore"), |b| {
        b.iter(|| snap.restore(&mut scratch.machine))
    });

    let point = prepare_point(plat.clone(), 1, 1, reason, 6, None).expect("golden run");
    let spec = RecoverySpec::Reg(InjectionSpec {
        target: FlipTarget::Rip,
        bit: 42,
        at_step: point.golden_len / 2,
    });
    let fault = detect_fault(&point, spec, None).expect("rip flip detected");
    group.bench_function(
        BenchmarkId::from_parameter("detect_restore_reexecute"),
        |b| b.iter(|| attempt_recovery(&fault, &point, 1)),
    );
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
