//! Fig. 7 / Fig. 11 in microbenchmark form: per-activation cost of the
//! platform under the NullMonitor baseline, the runtime-only shim, the full
//! shim, and the full shim with recovery support. The virtual-cycle
//! overheads these configurations charge are what the `figures` binary
//! reports; this bench shows they also track real wall-clock cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use guest_sim::{workload_platform, Benchmark};
use sim_machine::VirtMode;
use xen_like::NullMonitor;
use xentry::{Xentry, XentryConfig};

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection_overhead");
    group.sample_size(20);
    let b = Benchmark::Postmark; // the paper's worst-case overhead workload

    group.bench_function(BenchmarkId::from_parameter("baseline"), |bench| {
        let mut plat = workload_platform(b, VirtMode::Para, 2, 1, 24, 7);
        plat.boot(1, &mut NullMonitor);
        bench.iter(|| plat.run_activation(1, &mut NullMonitor).handler_cycles)
    });

    for (name, cfg) in [
        ("runtime_only", XentryConfig::runtime_only()),
        ("full", XentryConfig::overhead()),
        ("full_with_recovery", XentryConfig::with_recovery()),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |bench| {
            let mut plat = workload_platform(b, VirtMode::Para, 2, 1, 24, 7);
            let mut shim = Xentry::new(cfg, None);
            plat.boot(1, &mut shim);
            bench.iter(|| plat.run_activation(1, &mut shim).handler_cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
