//! VM-transition classification cost: the in-hypervisor hot-path work.
//!
//! The paper chose trees precisely because "the decision making process is
//! a set of simple integer comparisons" — classification must cost tens of
//! nanoseconds, not the microseconds an SVM would.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mltree::{Dataset, DecisionTree, Label, Sample, TrainConfig};
use xentry::{FeatureVec, VmTransitionDetector, FEATURE_NAMES};

fn synthetic_dataset(n: usize) -> Dataset {
    let mut ds = Dataset::new(&FEATURE_NAMES);
    for i in 0..n as u64 {
        let vmer = i % 91;
        let rt = 800 + (i * 37) % 900;
        let label = if (i * 13) % 10 == 0 {
            Label::Incorrect
        } else {
            Label::Correct
        };
        let rt = if label == Label::Incorrect {
            rt + 2500
        } else {
            rt
        };
        ds.push(Sample::new(
            vec![vmer, rt, rt / 6, rt / 5, 30 + i % 9],
            label,
        ));
    }
    ds
}

fn bench_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify");
    let ds = synthetic_dataset(8000);
    let rt = DecisionTree::train(&ds, &TrainConfig::random_tree(5, 1));
    let dt = DecisionTree::train(&ds, &TrainConfig::decision_tree());
    let det = VmTransitionDetector::new(rt.clone());
    let f = FeatureVec {
        vmer: 17,
        rt: 1200,
        br: 200,
        rm: 240,
        wm: 33,
    };

    group.bench_function(BenchmarkId::from_parameter("random_tree"), |b| {
        b.iter(|| rt.classify(std::hint::black_box(&f.columns())))
    });
    group.bench_function(BenchmarkId::from_parameter("decision_tree"), |b| {
        b.iter(|| dt.classify(std::hint::black_box(&f.columns())))
    });
    group.bench_function(BenchmarkId::from_parameter("detector_end_to_end"), |b| {
        b.iter(|| det.classify(std::hint::black_box(&f)))
    });

    // Training cost (offline, but worth tracking).
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("train_random_tree_8k"), |b| {
        b.iter(|| DecisionTree::train(&ds, &TrainConfig::random_tree(5, 1)).nr_nodes())
    });
    group.finish();
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
