//! VM-transition classification cost: the in-hypervisor hot-path work.
//!
//! The paper chose trees precisely because "the decision making process is
//! a set of simple integer comparisons" — classification must cost tens of
//! nanoseconds, not the microseconds an SVM would.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mltree::{Dataset, DecisionTree, ForestConfig, Label, RandomForest, Sample, TrainConfig};
use xentry::{FeatureVec, VmTransitionDetector, FEATURE_NAMES};

/// Table-I-shaped counters with a labeling rule that interacts all five
/// features, so training yields a deployment-scale tree (thousands of
/// splits) instead of a one-cut toy. Matches `inference::bench_dataset`.
fn synthetic_dataset(n: usize) -> Dataset {
    let mut ds = Dataset::new(&FEATURE_NAMES);
    for i in 0..n as u64 {
        let vmer = (i * 7919) % 91;
        let rt = 60 + (i * 2_654_435_761) % 3940;
        let br = rt / 6 + (i * 97) % 40;
        let rm = rt / 5 + (i * 193) % 60;
        let wm = 4 + (i * 389) % 120;
        let label = if (vmer * 31 + rt * 7 + br * 13 + rm * 3 + wm) % 11 < 3 {
            Label::Incorrect
        } else {
            Label::Correct
        };
        ds.push(Sample::new(vec![vmer, rt, br, rm, wm], label));
    }
    ds
}

fn bench_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify");
    let ds = synthetic_dataset(8000);
    let rt = DecisionTree::train(&ds, &TrainConfig::random_tree(5, 1));
    let dt = DecisionTree::train(&ds, &TrainConfig::decision_tree());
    let det = VmTransitionDetector::new(rt.clone());

    // Single-sample cases sweep a pool of varied rows: a fixed input lets
    // the branch predictor memorize one root-to-leaf path and makes every
    // walker look identical.
    let rows: Vec<[u64; 5]> = ds
        .samples
        .iter()
        .take(1024)
        .map(|s| {
            [
                s.features[0],
                s.features[1],
                s.features[2],
                s.features[3],
                s.features[4],
            ]
        })
        .collect();
    let feature_vecs: Vec<FeatureVec> = rows
        .iter()
        .map(|r| FeatureVec {
            vmer: r[0] as u16,
            rt: r[1],
            br: r[2],
            rm: r[3],
            wm: r[4],
        })
        .collect();
    let mut labels = vec![Label::Correct; rows.len()];
    let mut i = 0usize;

    group.bench_function(BenchmarkId::from_parameter("random_tree"), |b| {
        b.iter(|| {
            i = (i + 1) & 1023;
            rt.classify(std::hint::black_box(&rows[i]))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("decision_tree"), |b| {
        b.iter(|| {
            i = (i + 1) & 1023;
            dt.classify(std::hint::black_box(&rows[i]))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("detector_end_to_end"), |b| {
        b.iter(|| {
            i = (i + 1) & 1023;
            det.classify(std::hint::black_box(&feature_vecs[i]))
        })
    });

    // The compiled arena engine: single-sample, then batch over the same
    // pool (single-row batches would just measure dispatch).
    let compiled = rt.compile();
    group.bench_function(BenchmarkId::from_parameter("compiled_tree"), |b| {
        b.iter(|| {
            i = (i + 1) & 1023;
            compiled.classify(std::hint::black_box(&rows[i]))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("compiled_batch_1k"), |b| {
        b.iter(|| {
            compiled.classify_batch(std::hint::black_box(&rows), &mut labels);
            labels[0]
        })
    });

    // Forest: boxed voting vs the shared-arena early-exit walker.
    let forest = RandomForest::train(&ds, &ForestConfig::default_random_forest(5, 1));
    let cforest = forest.compile();
    group.bench_function(BenchmarkId::from_parameter("forest_boxed"), |b| {
        b.iter(|| {
            i = (i + 1) & 1023;
            forest.classify(std::hint::black_box(&rows[i]))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("forest_compiled"), |b| {
        b.iter(|| {
            i = (i + 1) & 1023;
            cforest.classify(std::hint::black_box(&rows[i]))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("forest_batch_1k"), |b| {
        b.iter(|| {
            cforest.classify_batch(std::hint::black_box(&rows), &mut labels);
            labels[0]
        })
    });

    // Training cost (offline, but worth tracking).
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("train_random_tree_8k"), |b| {
        b.iter(|| DecisionTree::train(&ds, &TrainConfig::random_tree(5, 1)).nr_nodes())
    });
    group.bench_function(
        BenchmarkId::from_parameter("train_forest_15x8k_parallel"),
        |b| {
            b.iter(|| {
                RandomForest::train(&ds, &ForestConfig::default_random_forest(5, 1)).nr_nodes()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
