//! Profile-guided arena layout experiment: the numbers behind
//! `results/layout.json`.
//!
//! Harvests a branch profile from deployment-shaped traffic, re-lays the
//! detector's arena hot-path-first ([`mltree::TreeProfile`]), and records
//! what the relayout actually did to the memory map: per-record visit
//! counts before and after, how many arena bytes cover 50/90/99% of all
//! split visits in each layout, and the measured end-to-end batch
//! classify delta between the two layouts on identical traffic.

use mltree::{DecisionTree, Label, TrainConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use xentry::{FeatureVec, VmTransitionDetector};

use crate::inference::bench_dataset;
use crate::pipeline::Scale;

/// Arena bytes needed to cover one visit percentile in one layout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayoutCoverage {
    /// Fraction of total split visits covered (0.50, 0.90, 0.99).
    pub fraction: f64,
    /// Smallest byte prefix of the preorder arena whose records absorb
    /// that fraction of visits.
    pub bytes_preorder: usize,
    /// Same, after the hot-first relayout.
    pub bytes_profiled: usize,
}

/// The layout experiment's record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayoutReport {
    pub tree_depth: usize,
    pub nr_splits: usize,
    pub arena_bytes: usize,
    /// Traffic rows the profile was harvested from (and the measurement
    /// swept over).
    pub traffic_rows: usize,
    /// Split visits recorded across the whole harvest.
    pub total_visits: u64,
    /// `hot_prefix_bytes` gauge after the relayout (≥90% visit
    /// coverage); equals `arena_bytes` before it.
    pub hot_prefix_bytes: usize,
    /// Per-record visit counts in arena index order, original preorder
    /// layout — the "byte map" of where walk traffic lands.
    pub hits_preorder: Vec<u64>,
    /// Per-record visit counts after the hot-first relayout: the same
    /// multiset, compacted toward index 0.
    pub hits_profiled: Vec<u64>,
    /// Bytes covering 50/90/99% of visits, both layouts.
    pub coverage: Vec<LayoutCoverage>,
    /// Measured batch classify cost on the original layout, ns/row.
    pub ns_preorder: f64,
    /// Same traffic, same kernel, profiled layout.
    pub ns_profiled: f64,
    /// `ns_preorder / ns_profiled` — >1 means the relayout paid off on
    /// this host/traffic pairing.
    pub speedup: f64,
    pub rounds: usize,
}

/// Smallest prefix of `hits` (in index order) whose sum reaches
/// `fraction` of `total`, in records.
fn prefix_records(hits: &[u64], total: u64, fraction: f64) -> usize {
    if total == 0 {
        return 0;
    }
    let target = (total as f64 * fraction).ceil() as u64;
    let mut seen = 0u64;
    for (i, h) in hits.iter().enumerate() {
        seen += h;
        if seen >= target {
            return i + 1;
        }
    }
    hits.len()
}

fn sweep_ns(rounds: usize, det: &VmTransitionDetector, traffic: &[FeatureVec]) -> f64 {
    let mut labels = vec![Label::Correct; traffic.len()];
    let mut best = f64::INFINITY;
    let mut sink = 0usize;
    for _ in 0..rounds {
        let t = Instant::now();
        det.classify_batch(traffic, &mut labels);
        sink += labels.iter().filter(|&&l| l == Label::Incorrect).count();
        let ns = t.elapsed().as_nanos() as f64 / traffic.len() as f64;
        if ns < best {
            best = ns;
        }
    }
    std::hint::black_box(sink);
    best
}

/// Run the layout experiment: train a deployment-scale detector, profile
/// it over its own traffic distribution, relayout, and measure.
pub fn layout_experiment(scale: &Scale, seed: u64) -> LayoutReport {
    let rounds = if scale.overhead_runs > 5 { 41 } else { 13 };
    let samples = if scale.overhead_runs >= 2 { 8000 } else { 1500 };
    let ds = bench_dataset(samples, 0);
    let det =
        VmTransitionDetector::new(DecisionTree::train(&ds, &TrainConfig::random_tree(5, seed)));
    let traffic: Vec<FeatureVec> = (0..8192)
        .map(|i| {
            let s = &ds.samples[i % ds.len()];
            FeatureVec {
                vmer: s.features[0] as u16,
                rt: s.features[1],
                br: s.features[2],
                rm: s.features[3],
                wm: s.features[4],
            }
        })
        .collect();

    let profile = det.harvest_profile(&traffic);
    let nr_splits = det.nr_splits();
    let hits_preorder: Vec<u64> = (0..nr_splits).map(|i| profile.visits(i)).collect();
    let total_visits = profile.total_visits();

    let hot = det.with_profiled_layout(&profile);
    let profile_after = hot.harvest_profile(&traffic);
    let hits_profiled: Vec<u64> = (0..nr_splits).map(|i| profile_after.visits(i)).collect();

    let record_bytes = det.arena_bytes() / nr_splits.max(1);
    let coverage = [0.50, 0.90, 0.99]
        .iter()
        .map(|&fraction| LayoutCoverage {
            fraction,
            bytes_preorder: prefix_records(&hits_preorder, total_visits, fraction) * record_bytes,
            bytes_profiled: prefix_records(&hits_profiled, total_visits, fraction) * record_bytes,
        })
        .collect();

    let ns_preorder = sweep_ns(rounds, &det, &traffic);
    let ns_profiled = sweep_ns(rounds, &hot, &traffic);

    LayoutReport {
        tree_depth: det.depth(),
        nr_splits,
        arena_bytes: det.arena_bytes(),
        traffic_rows: traffic.len(),
        total_visits,
        hot_prefix_bytes: hot.hot_prefix_bytes(),
        hits_preorder,
        hits_profiled,
        coverage,
        ns_preorder,
        ns_profiled,
        speedup: ns_preorder / ns_profiled.max(1e-3),
        rounds,
    }
}

impl LayoutReport {
    pub fn render(&self) -> String {
        let mut out = format!(
            "Profile-guided layout (depth {}, {} splits, {} B arena; {} traffic rows, {} visits)\n\
             ----------------------------------------------------------------------------\n\
             hot prefix after relayout {:>8} B ({:.1}% of arena)\n",
            self.tree_depth,
            self.nr_splits,
            self.arena_bytes,
            self.traffic_rows,
            self.total_visits,
            self.hot_prefix_bytes,
            100.0 * self.hot_prefix_bytes as f64 / self.arena_bytes.max(1) as f64,
        );
        for c in &self.coverage {
            out.push_str(&format!(
                "{:>4.0}% of visits: {:>8} B preorder -> {:>8} B profiled\n",
                c.fraction * 100.0,
                c.bytes_preorder,
                c.bytes_profiled
            ));
        }
        out.push_str(&format!(
            "batch classify: {:.1} ns/row preorder, {:.1} ns/row profiled ({:.2}x)\n",
            self.ns_preorder, self.ns_profiled, self.speedup
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_experiment_compacts_hot_records_forward() {
        let mut scale = Scale::quick();
        scale.overhead_runs = 1; // smallest dataset: keep the test snappy
        let rep = layout_experiment(&scale, 11);
        assert!(rep.nr_splits > 0);
        assert_eq!(rep.hits_preorder.len(), rep.nr_splits);
        assert_eq!(rep.hits_profiled.len(), rep.nr_splits);
        // Pure permutation: same visits, different placement.
        assert_eq!(
            rep.hits_preorder.iter().sum::<u64>(),
            rep.hits_profiled.iter().sum::<u64>()
        );
        assert!(rep.total_visits > 0);
        assert!(rep.hot_prefix_bytes <= rep.arena_bytes);
        // Hot-first DFS tightens (or matches) the prefix at the head of
        // the distribution; the deep tail (99%) can shift by a record as
        // cold subtrees land after hot ones, so it is reported, not
        // asserted.
        for c in rep.coverage.iter().filter(|c| c.fraction <= 0.90) {
            assert!(
                c.bytes_profiled <= c.bytes_preorder,
                "{}% coverage grew: {} -> {}",
                c.fraction * 100.0,
                c.bytes_preorder,
                c.bytes_profiled
            );
        }
        // The 90% prefix is exactly what the hot_prefix gauge tracks.
        let c90 = rep.coverage.iter().find(|c| c.fraction == 0.90).unwrap();
        assert!(c90.bytes_profiled <= rep.hot_prefix_bytes);
        assert!(rep.ns_preorder > 0.0 && rep.ns_profiled > 0.0);
        let text = rep.render();
        assert!(text.contains("hot prefix"), "{text}");
        let back: LayoutReport =
            serde_json::from_str(&serde_json::to_string(&rep).unwrap()).unwrap();
        assert_eq!(back.nr_splits, rep.nr_splits);
    }
}
