//! Regenerate every table and figure of the Xentry paper.
//!
//! ```text
//! figures [--quick|--paper] [--out DIR] [--perf-guard] [experiments...]
//!
//! experiments: fig3 table1 ml fig7 injection fig11 ablation fleet
//!              recovery overhead inference campaign distributed layout
//!              vulnmap                                      (default: all)
//!   "injection" produces Fig. 8, Fig. 9, Fig. 10 and Table II.
//!   "recovery" drives every detected fault through competing
//!   health-monitor policy tables (ignore / re-execute-only / tiered
//!   with hypervisor microreboot) and writes `results/ext_recovery.json`
//!   plus the repo-root mirror `BENCH_recovery.json`.
//!   "inference" and "campaign" also mirror their JSON to the repo-root
//!   `BENCH_inference.json` / `BENCH_campaign.json` perf-trajectory files.
//!   "distributed" spawns a loopback multi-process fleet (re-executing
//!   this binary as the host-agent child image) and records the
//!   wire-level accounting/convergence receipt.
//!   "layout" records the profile-guided arena relayout's byte maps and
//!   measured delta (`results/layout.json`).
//!   "vulnmap" campaigns every fault model (register flips, spatial
//!   bursts, PTE strikes, PMC strikes) over a paper benchmark plus the
//!   three adversarial guest profiles and writes the per-bit
//!   vulnerability map to `results/vulnmap.json` and the repo-root
//!   mirror `BENCH_vulnmap.json`.
//!   --perf-guard (with "inference") compares the fresh detector_batch
//!   number against the committed BENCH_inference.json before the mirror
//!   overwrite and exits non-zero on a >25% regression — the CI gate.
//! ```
//!
//! Text renderings go to stdout; JSON artifacts to `--out` (default
//! `results/`).

use guest_sim::Benchmark;
use std::collections::HashSet;
use std::path::PathBuf;
use xentry_bench::pipeline::Scale;
use xentry_bench::*;

fn write_json<T: serde::Serialize>(dir: &PathBuf, name: &str, value: &T) {
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = dir.join(format!("{name}.json"));
    // Atomic (temp + rename): an interrupted run never leaves a torn
    // artifact that a later plotting/CI step would half-parse.
    xentry_fleet::write_atomic(&path, &serde_json::to_string_pretty(value).unwrap())
        .unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    eprintln!("[figures] wrote {path:?}");
}

/// CI perf-regression gate: compare the fresh `detector_batch`
/// ns/classify against the committed `BENCH_inference.json` and abort on
/// a >25% regression. The committed file is parsed as untyped JSON so an
/// older schema (missing fields, different case list) still yields its
/// baseline; a missing file or case just skips the guard with a note —
/// a fresh checkout must not fail CI.
fn guard_detector_batch(fresh: &InferenceReport) {
    const CASE: &str = "detector_batch";
    const TOLERANCE: f64 = 1.25;
    let committed = match std::fs::read_to_string("BENCH_inference.json") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[figures] perf-guard: no committed BENCH_inference.json ({e}); skipping");
            return;
        }
    };
    let value: serde_json::Value = match serde_json::from_str(&committed) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("[figures] perf-guard: committed baseline unparseable ({e}); skipping");
            return;
        }
    };
    let as_f64 = |v: &serde_json::Value| match v {
        serde_json::Value::Float(f) => Some(*f),
        serde_json::Value::UInt(n) => Some(*n as f64),
        serde_json::Value::Int(n) => Some(*n as f64),
        _ => None,
    };
    let baseline = value
        .get("cases")
        .and_then(|c| c.as_array())
        .into_iter()
        .flatten()
        .find(|c| matches!(c.get("name"), Some(serde_json::Value::Str(s)) if s == CASE))
        .and_then(|c| c.get("ns_per_classify"))
        .and_then(as_f64);
    let Some(baseline) = baseline else {
        eprintln!("[figures] perf-guard: committed baseline has no {CASE} case; skipping");
        return;
    };
    let now = fresh
        .cases
        .iter()
        .find(|c| c.name == CASE)
        .map(|c| c.ns_per_classify)
        .expect("fresh report always carries detector_batch");
    eprintln!(
        "[figures] perf-guard: {CASE} {now:.1} ns vs committed {baseline:.1} ns \
         (limit {:.1} ns)",
        baseline * TOLERANCE
    );
    assert!(
        now <= baseline * TOLERANCE,
        "perf-guard: {CASE} regressed >25%: {now:.1} ns vs committed {baseline:.1} ns"
    );
}

fn main() {
    // Child hook for the distributed experiment: `run_distributed`
    // re-executes this binary with the wire-host sentinel as argv[1],
    // and the child must short-circuit before any argument parsing.
    if xentry_wire::maybe_child_main() {
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::quick();
    let mut out = PathBuf::from("results");
    let mut perf_guard = false;
    let mut wanted: HashSet<String> = HashSet::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::quick(),
            "--paper" => scale = Scale::paper(),
            "--out" => out = PathBuf::from(it.next().expect("--out DIR")),
            "--perf-guard" => perf_guard = true,
            other if !other.starts_with("--") => {
                wanted.insert(other.to_string());
            }
            other => panic!("unknown option {other}"),
        }
    }
    let all = wanted.is_empty();
    let want = |k: &str| all || wanted.contains(k);
    let benchmarks = Benchmark::ALL;
    let seed = 2014; // the paper's year, for reproducibility of artifacts

    println!("== Xentry evaluation harness (scale: {scale:?}) ==\n");

    if want("table1") {
        let t1 = table1_features();
        println!("{}", t1.render());
        write_json(&out, "table1", &t1);
    }

    if want("fig3") {
        let t = std::time::Instant::now();
        let fig3 = fig3_activation_frequency(&scale, seed);
        println!("{}", fig3.render());
        eprintln!("[figures] fig3 took {:?}\n", t.elapsed());
        write_json(&out, "fig3", &fig3);
    }

    // The detector is needed by the injection, recovery and vulnmap
    // experiments. The vulnmap campaigns over the adversarial guest
    // workloads too, so when it runs, those profiles join the training
    // set (threaded through `gather_dataset` by `ml_accuracy`) — the
    // classifier must have seen their exit-reason mix to stand a chance.
    let train_set: Vec<Benchmark> = if want("vulnmap") {
        benchmarks
            .iter()
            .copied()
            .chain(Benchmark::ADVERSARIAL)
            .collect()
    } else {
        benchmarks.to_vec()
    };
    let detector = if want("ml")
        || want("injection")
        || want("fig11")
        || want("extensions")
        || want("fleet")
        || want("recovery")
        || want("vulnmap")
    {
        let t = std::time::Instant::now();
        let (det, ml) = ml_accuracy(&train_set, &scale, seed);
        println!("{}", ml.render());
        eprintln!("[figures] training took {:?}\n", t.elapsed());
        write_json(&out, "ml_accuracy", &ml);
        std::fs::create_dir_all(&out).expect("create output dir");
        std::fs::write(out.join("detector.json"), det.to_json()).expect("write detector");
        Some(det)
    } else {
        None
    };

    if want("fig7") {
        let t = std::time::Instant::now();
        let fig7 = fig7_overhead(&scale, seed);
        println!("{}", fig7.render());
        eprintln!("[figures] fig7 took {:?}\n", t.elapsed());
        write_json(&out, "fig7", &fig7);
    }

    if want("injection") {
        let det = detector.as_ref().expect("detector trained");
        let t = std::time::Instant::now();
        let inj = injection_evaluation(&benchmarks, det, &scale, seed);
        println!("{}", inj.render_fig8());
        println!("{}", inj.render_fig9());
        println!("{}", inj.render_fig10());
        println!("{}", inj.render_table2());
        eprintln!("[figures] injection campaigns took {:?}\n", t.elapsed());
        write_json(&out, "injection", &inj);
    }

    if want("fig11") {
        let det = detector.as_ref().expect("detector trained");
        let t = std::time::Instant::now();
        let fig11 = fig11_recovery_overhead(det, &scale, seed);
        println!("{}", fig11.render());
        eprintln!("[figures] fig11 took {:?}\n", t.elapsed());
        write_json(&out, "fig11", &fig11);
    }

    if want("recovery") {
        let det = detector.as_ref();
        let t = std::time::Instant::now();
        let rec = recovery_experiment(
            &[Benchmark::Freqmine, Benchmark::Postmark],
            det,
            &scale,
            seed,
        );
        println!("{}", rec.render());
        eprintln!("[figures] recovery took {:?}\n", t.elapsed());
        write_json(&out, "ext_recovery", &rec);
        // Mirror at the repo root so the recovery receipts ride along in
        // version control next to BENCH_campaign.json / BENCH_inference.json.
        std::fs::write(
            "BENCH_recovery.json",
            serde_json::to_string_pretty(&rec).unwrap(),
        )
        .expect("write BENCH_recovery.json");
        eprintln!("[figures] wrote BENCH_recovery.json");
    }

    if want("vulnmap") {
        let det = detector.as_ref();
        let t = std::time::Instant::now();
        // One paper benchmark plus all three adversarial profiles: the
        // map must cover the stressed exit-reason corners, not just the
        // well-behaved mix.
        let workloads: Vec<Benchmark> = std::iter::once(Benchmark::Freqmine)
            .chain(Benchmark::ADVERSARIAL)
            .collect();
        let vm = vulnmap_experiment(&workloads, det, &scale, seed);
        println!("{}", vm.render());
        eprintln!("[figures] vulnmap took {:?}\n", t.elapsed());
        write_json(&out, "vulnmap", &vm);
        // Mirror at the repo root next to the other committed receipts.
        std::fs::write(
            "BENCH_vulnmap.json",
            serde_json::to_string_pretty(&vm).unwrap(),
        )
        .expect("write BENCH_vulnmap.json");
        eprintln!("[figures] wrote BENCH_vulnmap.json");
    }

    if want("extensions") {
        let det = detector.as_ref();
        let t = std::time::Instant::now();
        let vuln = register_vulnerability(Benchmark::Freqmine, det, &scale, seed);
        println!("{}", vuln.render());
        write_json(&out, "ext_vulnerability", &vuln);
        let forest = forest_comparison(&[Benchmark::Freqmine], &scale, seed);
        println!("{}", forest.render());
        write_json(&out, "ext_forest", &forest);
        let multibit = multibit_comparison(Benchmark::Freqmine, 2, det, &scale, seed);
        println!("{}", multibit.render());
        write_json(&out, "ext_multibit", &multibit);
        let envelope = envelope_comparison(&[Benchmark::Freqmine], &scale, seed);
        println!("{}", envelope.render());
        write_json(&out, "ext_envelope", &envelope);
        eprintln!("[figures] extensions took {:?}\n", t.elapsed());
    }

    if want("fleet") {
        let t = std::time::Instant::now();
        let fleet = fleet_experiment(detector.as_ref(), &scale, seed);
        println!("{}", fleet.render());
        eprintln!("[figures] fleet took {:?}\n", t.elapsed());
        write_json(&out, "fleet", &fleet);
        // The raw service snapshot as its own artifact: the shape
        // operators scrape, with the model gauges and per-shard counters.
        let path = fleet.snapshot.write(&out).expect("write service.json");
        eprintln!("[figures] wrote {path:?}");
    }

    if want("overhead") {
        let t = std::time::Instant::now();
        let oh = overhead_experiment(&scale, seed);
        println!("{}\n", oh.render());
        eprintln!("[figures] overhead took {:?}\n", t.elapsed());
        write_json(&out, "overhead", &oh);
    }

    if want("inference") {
        let t = std::time::Instant::now();
        let inf = inference_experiment(&scale, seed);
        println!("{}", inf.render());
        eprintln!("[figures] inference took {:?}\n", t.elapsed());
        write_json(&out, "inference", &inf);
        // The perf-regression gate reads the *committed* trajectory file
        // before the mirror below overwrites it. Parsed as a generic
        // value so the guard keeps working across report-schema changes.
        if perf_guard {
            guard_detector_batch(&inf);
        }
        // Mirror to the repo root: the committed perf-trajectory record.
        std::fs::write(
            "BENCH_inference.json",
            serde_json::to_string_pretty(&inf).unwrap(),
        )
        .expect("write BENCH_inference.json");
        eprintln!("[figures] wrote \"BENCH_inference.json\"");
    }

    if want("layout") {
        let t = std::time::Instant::now();
        let lay = layout_experiment(&scale, seed);
        println!("{}", lay.render());
        eprintln!("[figures] layout took {:?}\n", t.elapsed());
        write_json(&out, "layout", &lay);
    }

    if want("campaign") {
        let t = std::time::Instant::now();
        let camp = campaign_experiment(&scale, seed);
        println!("{}", camp.render());
        eprintln!("[figures] campaign took {:?}\n", t.elapsed());
        write_json(&out, "campaign", &camp);
        // Mirror to the repo root: the committed perf-trajectory record.
        std::fs::write(
            "BENCH_campaign.json",
            serde_json::to_string_pretty(&camp).unwrap(),
        )
        .expect("write BENCH_campaign.json");
        eprintln!("[figures] wrote \"BENCH_campaign.json\"");
    }

    if want("distributed") {
        let t = std::time::Instant::now();
        // Quick-profile fleet either way: the experiment's subject is
        // the wire protocol (kill drill, reconnect, model push), not
        // record volume, so the paper scale gains nothing by inflating
        // the replay.
        let mut cfg = xentry_wire::DistributedConfig::quick(4);
        cfg.out = out.clone();
        let report = xentry_wire::run_distributed(&cfg).expect("distributed fleet run");
        println!("{}", report.render());
        eprintln!("[figures] distributed took {:?}\n", t.elapsed());
        write_json(&out, "distributed", &report);
        assert!(
            report.is_clean(),
            "distributed receipt must show exact accounting and model convergence"
        );
    }

    if want("ablation") {
        let t = std::time::Instant::now();
        let ab = ablations(&[Benchmark::Freqmine, Benchmark::Postmark], &scale, seed);
        println!("{}", ab.render());
        eprintln!("[figures] ablations took {:?}\n", t.elapsed());
        write_json(&out, "ablation", &ab);
    }

    println!("done.");
}
