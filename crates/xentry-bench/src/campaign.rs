//! Campaign-engine throughput: checkpoint forking vs from-boot replay,
//! the measured numbers behind `BENCH_campaign.json`.
//!
//! The tentpole claim — forking each injection from a delta-compressed
//! checkpoint of the golden execution instead of replaying from boot — is
//! recorded here, not assumed: the same configuration is driven through
//! both engines, the outputs are compared record-for-record, and the
//! wall-clock ratio is written to `results/campaign.json` (mirrored to
//! the repo-root `BENCH_campaign.json`). The report also verifies the
//! determinism and resume guarantees end-to-end so the perf artifact
//! doubles as a correctness receipt.

use faultsim::campaign::{
    golden_trace, run_campaign_from_boot, run_campaign_resumable, run_campaign_with,
    CampaignConfig, CampaignRun,
};
use faultsim::checkpoint::CheckpointStats;
use guest_sim::Benchmark;
use serde::{Deserialize, Serialize};
use std::time::Instant;

use crate::pipeline::Scale;

/// The measured campaign-engine record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignBenchReport {
    pub benchmark: String,
    pub injections: usize,
    pub checkpoint_interval: usize,
    /// Wall-clock seconds for the from-boot baseline (one full boot +
    /// warmup + walk per injection), serial.
    pub from_boot_secs: f64,
    pub from_boot_inj_per_sec: f64,
    /// Wall-clock seconds for the checkpoint-forked engine with
    /// `threads = 1` (golden trace + forks): the algorithmic speedup,
    /// with parallelism factored out.
    pub forked_serial_secs: f64,
    pub forked_serial_inj_per_sec: f64,
    /// The headline: from-boot time over forked serial time.
    pub speedup_serial: f64,
    /// Forked engine at the configured thread count, for the absolute
    /// campaign throughput the figures harness actually enjoys.
    pub forked_parallel_threads: usize,
    pub forked_parallel_secs: f64,
    pub forked_parallel_inj_per_sec: f64,
    pub speedup_parallel: f64,
    /// Checkpoint-chain sizing from the golden trace.
    pub checkpoint_stats: CheckpointStats,
    pub compression_ratio: f64,
    /// Every record of the forked run matched the from-boot run.
    pub equivalent_to_from_boot: bool,
    /// `threads` ∈ {1, 4} produced byte-identical result JSON.
    pub deterministic_across_threads: bool,
    /// An interrupted resumable run, resumed, matched an uninterrupted one.
    pub resume_identical: bool,
}

/// Run the campaign-engine benchmark. The from-boot baseline replays the
/// whole execution per injection, so the injection count is kept modest
/// at quick scale; paper scale (`overhead_runs > 5`) sizes it up.
pub fn campaign_experiment(scale: &Scale, seed: u64) -> CampaignBenchReport {
    let injections = if scale.overhead_runs > 5 { 400 } else { 120 };
    let benchmark = Benchmark::Freqmine;
    let mut cfg = CampaignConfig::paper(benchmark, injections, seed);
    cfg.threads = 1;

    // From-boot baseline (serial by construction).
    let t = Instant::now();
    let boot_res = run_campaign_from_boot(&cfg, None);
    let from_boot_secs = t.elapsed().as_secs_f64();

    // Forked engine, serial: golden trace + checkpoint forks.
    let t = Instant::now();
    let trace = golden_trace(&cfg, None);
    let forked_res = run_campaign_with(&cfg, &trace, None);
    let forked_serial_secs = t.elapsed().as_secs_f64();
    let stats = trace.checkpoint_stats();

    let equivalent =
        serde_json::to_string(&boot_res).unwrap() == serde_json::to_string(&forked_res).unwrap();

    // Forked engine at full parallelism.
    let mut par_cfg = cfg.clone();
    par_cfg.threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let t = Instant::now();
    let par_trace = golden_trace(&par_cfg, None);
    let par_res = run_campaign_with(&par_cfg, &par_trace, None);
    let forked_parallel_secs = t.elapsed().as_secs_f64();

    // Determinism: thread count must not change a single byte.
    let mut four = cfg.clone();
    four.threads = 4;
    let four_res = run_campaign_with(&four, &par_trace, None);
    let deterministic = serde_json::to_string(&par_res).unwrap()
        == serde_json::to_string(&forked_res).unwrap()
        && serde_json::to_string(&four_res).unwrap() == serde_json::to_string(&forked_res).unwrap();

    // Resume: stop after one chunk, restart, compare to the straight run.
    let dir = std::env::temp_dir().join(format!("xentry_campaign_bench_{seed}"));
    let journal = dir.join("campaign.journal");
    let _ = std::fs::remove_file(&journal);
    let first = run_campaign_resumable(&cfg, None, &journal, Some(1)).expect("journal I/O");
    let interrupted = matches!(first, CampaignRun::Interrupted { .. });
    let resumed = run_campaign_resumable(&cfg, None, &journal, None).expect("journal I/O");
    let resume_identical = interrupted
        && match resumed {
            CampaignRun::Complete(res) => {
                serde_json::to_string(&res).unwrap() == serde_json::to_string(&forked_res).unwrap()
            }
            CampaignRun::Interrupted { .. } => false,
        };
    let _ = std::fs::remove_dir_all(&dir);

    CampaignBenchReport {
        benchmark: format!("{benchmark:?}"),
        injections,
        checkpoint_interval: cfg.checkpoint_interval,
        from_boot_secs,
        from_boot_inj_per_sec: injections as f64 / from_boot_secs.max(1e-9),
        forked_serial_secs,
        forked_serial_inj_per_sec: injections as f64 / forked_serial_secs.max(1e-9),
        speedup_serial: from_boot_secs / forked_serial_secs.max(1e-9),
        forked_parallel_threads: par_cfg.threads,
        forked_parallel_secs,
        forked_parallel_inj_per_sec: injections as f64 / forked_parallel_secs.max(1e-9),
        speedup_parallel: from_boot_secs / forked_parallel_secs.max(1e-9),
        compression_ratio: stats.compression_ratio(),
        checkpoint_stats: stats,
        equivalent_to_from_boot: equivalent,
        deterministic_across_threads: deterministic,
        resume_identical,
    }
}

impl CampaignBenchReport {
    pub fn render(&self) -> String {
        format!(
            "Campaign engine ({} injections on {}, checkpoint interval {})\n\
             ------------------------------------------------------------\n\
             from-boot replay       {:>8.2} s {:>10.1} inj/s\n\
             checkpoint fork (1 th) {:>8.2} s {:>10.1} inj/s   {:>6.1}x\n\
             checkpoint fork ({:>2} th) {:>7.2} s {:>10.1} inj/s   {:>6.1}x\n\
             checkpoints {} (delta compression {:.0}x: {} full words, {} delta words)\n\
             equivalent to from-boot: {}  deterministic across threads: {}  resume identical: {}\n",
            self.injections,
            self.benchmark,
            self.checkpoint_interval,
            self.from_boot_secs,
            self.from_boot_inj_per_sec,
            self.forked_serial_secs,
            self.forked_serial_inj_per_sec,
            self.speedup_serial,
            self.forked_parallel_threads,
            self.forked_parallel_secs,
            self.forked_parallel_inj_per_sec,
            self.speedup_parallel,
            self.checkpoint_stats.checkpoints,
            self.compression_ratio,
            self.checkpoint_stats.full_mem_words,
            self.checkpoint_stats.delta_mem_words,
            self.equivalent_to_from_boot,
            self.deterministic_across_threads,
            self.resume_identical,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_experiment_verifies_all_claims() {
        let scale = Scale::quick();
        let rep = campaign_experiment(&scale, 21);
        assert!(rep.equivalent_to_from_boot, "{rep:?}");
        assert!(rep.deterministic_across_threads, "{rep:?}");
        assert!(rep.resume_identical, "{rep:?}");
        assert!(
            rep.speedup_serial >= 5.0,
            "checkpoint forking should beat from-boot replay by >= 5x: {rep:?}"
        );
        assert!(rep.compression_ratio > 1.0);
        let text = rep.render();
        assert!(text.contains("from-boot replay"), "{text}");
        let back: CampaignBenchReport =
            serde_json::from_str(&serde_json::to_string(&rep).unwrap()).unwrap();
        assert_eq!(back.injections, rep.injections);
    }
}
