//! One experiment per table/figure of the paper's evaluation. Each function
//! returns a serializable report with a `render()` that prints the same
//! rows/series the paper reports.

use crate::pipeline::{
    gather_dataset, rebalance, train_models, Scale, TrainingReport, OVERSAMPLE_INCORRECT,
};
use faultsim::{
    coverage_breakdown, latency_data_filtered, long_latency_coverage, run_campaign,
    undetected_breakdown, CampaignConfig, CoverageBreakdown, LatencyData, LongLatencyCoverage,
    UndetectedBreakdown,
};
use guest_sim::{measure_activation_rate, rate_stats, workload_platform, Benchmark, RateStats};
use mltree::{evaluate, DecisionTree, TrainConfig};
use serde::{Deserialize, Serialize};
use sim_machine::VirtMode;
use std::fmt::Write as _;
use xentry::{
    measure_overhead_repeated, OverheadSetup, OverheadSummary, VmTransitionDetector, XentryConfig,
    FEATURE_NAMES,
};

fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

// ---------------------------------------------------------------------------
// Fig. 3 — hypervisor activation frequency
// ---------------------------------------------------------------------------

/// One box-plot row of Fig. 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RateRow {
    pub benchmark: String,
    pub mode: String,
    pub min: f64,
    pub p25: f64,
    pub median: f64,
    pub p75: f64,
    pub max: f64,
}

/// Fig. 3 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Report {
    pub rows: Vec<RateRow>,
}

/// Measure hypervisor activation frequency for every benchmark in both
/// virtualization modes ("we measure the number of hypervisor activities
/// every second while applications are running").
pub fn fig3_activation_frequency(scale: &Scale, seed: u64) -> Fig3Report {
    let mut rows = Vec::new();
    for mode in [VirtMode::Para, VirtMode::Hvm] {
        for b in Benchmark::ALL {
            let mut plat = workload_platform(b, mode, 2, 1, 1, seed);
            let samples =
                measure_activation_rate(&mut plat, 1, scale.rate_windows, scale.rate_window_secs);
            let st: RateStats = rate_stats(&samples);
            rows.push(RateRow {
                benchmark: b.name().to_string(),
                mode: format!("{mode:?}"),
                min: st.min,
                p25: st.p25,
                median: st.median,
                p75: st.p75,
                max: st.max,
            });
        }
    }
    Fig3Report { rows }
}

impl Fig3Report {
    pub fn render(&self) -> String {
        let mut s = String::new();
        writeln!(
            s,
            "Fig. 3 — hypervisor activation frequency (activations/s)"
        )
        .unwrap();
        writeln!(
            s,
            "{:<10} {:<5} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "benchmark", "mode", "min", "p25", "median", "p75", "max"
        )
        .unwrap();
        for r in &self.rows {
            writeln!(
                s,
                "{:<10} {:<5} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>9.0}",
                r.benchmark, r.mode, r.min, r.p25, r.median, r.p75, r.max
            )
            .unwrap();
        }
        s.push_str("paper shape: PV 5K-100K/s (freqmine peak ~650K/s); HVM mostly 2K-10K/s\n");
        s
    }
}

// ---------------------------------------------------------------------------
// Table I — selected features
// ---------------------------------------------------------------------------

/// Table I report (static: the five features and their sources).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Report {
    pub features: Vec<(String, String, String)>,
}

/// Enumerate Table I.
pub fn table1_features() -> Table1Report {
    let rows = [
        (
            "VM exit reason",
            "Xentry shim (VMCS exit-reason field)",
            "VMER",
        ),
        ("# of committed instructions", "INST_RETIRED", "RT"),
        ("# of branch instructions", "BR_INST_RETIRED", "BR"),
        ("# of read memory access", "MEM_INST_RETIRED.LOADS", "RM"),
        ("# of write memory access", "MEM_INST_RETIRED.STORES", "WM"),
    ];
    Table1Report {
        features: rows
            .iter()
            .map(|(a, b, c)| (a.to_string(), b.to_string(), c.to_string()))
            .collect(),
    }
}

impl Table1Report {
    pub fn render(&self) -> String {
        let mut s = String::from("Table I — selected features for VM transition detection\n");
        for (f, src, syn) in &self.features {
            writeln!(s, "{f:<32} {src:<38} {syn}").unwrap();
        }
        assert_eq!(self.features.len(), FEATURE_NAMES.len());
        s
    }
}

// ---------------------------------------------------------------------------
// §III-B — classifier accuracy (random tree vs decision tree), Fig. 6
// ---------------------------------------------------------------------------

/// Classifier-accuracy report (the paper's 98.6% vs 96.1% comparison).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlAccuracyReport {
    pub training: TrainingReport,
    /// Pooled 5-fold cross-validated accuracy (lower-variance estimate
    /// than the paper's single split).
    pub cv_accuracy: f64,
    pub cv_fp_rate: f64,
    /// Fig.-6-style rule dump of the deployed tree (truncated).
    pub sample_rules: String,
}

/// Train both tree algorithms on multi-benchmark campaign data.
pub fn ml_accuracy(
    benchmarks: &[Benchmark],
    scale: &Scale,
    seed: u64,
) -> (VmTransitionDetector, MlAccuracyReport) {
    let ds = gather_dataset(benchmarks, scale, seed);
    let (rt, _dt, training) = train_models(&ds, seed);
    let cv = mltree::cross_validate(&ds, 5, |train| {
        let balanced = crate::pipeline::rebalance(train, OVERSAMPLE_INCORRECT);
        DecisionTree::train(&balanced, &TrainConfig::random_tree(5, seed))
    });
    let full_rules = rt.dump_rules();
    let sample_rules: String = full_rules.lines().take(24).collect::<Vec<_>>().join("\n");
    let det = VmTransitionDetector::new(rt);
    (
        det,
        MlAccuracyReport {
            training,
            cv_accuracy: cv.accuracy(),
            cv_fp_rate: cv.false_positive_rate(),
            sample_rules,
        },
    )
}

impl MlAccuracyReport {
    pub fn render(&self) -> String {
        let t = &self.training;
        let mut s = String::from("SIII-B — VM transition classifier accuracy\n");
        writeln!(
            s,
            "training set: {} samples ({} correct / {} incorrect), test: {}",
            t.train_samples, t.train_correct, t.train_incorrect, t.test_samples
        )
        .unwrap();
        writeln!(
            s,
            "random tree:   accuracy {}  FP rate {}  ({} nodes, depth {})",
            pct(t.random_tree.accuracy()),
            pct(t.random_tree.false_positive_rate()),
            t.random_tree_nodes,
            t.random_tree_depth
        )
        .unwrap();
        writeln!(
            s,
            "decision tree: accuracy {}  FP rate {}  ({} nodes, depth {})",
            pct(t.decision_tree.accuracy()),
            pct(t.decision_tree.false_positive_rate()),
            t.decision_tree_nodes,
            t.decision_tree_depth
        )
        .unwrap();
        writeln!(
            s,
            "5-fold CV:     accuracy {}  FP rate {}",
            pct(self.cv_accuracy),
            pct(self.cv_fp_rate)
        )
        .unwrap();
        writeln!(
            s,
            "paper: random tree 98.6%, decision tree 96.1%, FP rate 0.7%"
        )
        .unwrap();
        writeln!(
            s,
            "\nFig. 6 — sample of the deployed rules:\n{}",
            self.sample_rules
        )
        .unwrap();
        s
    }
}

// ---------------------------------------------------------------------------
// Fig. 7 — fault-free performance overhead
// ---------------------------------------------------------------------------

/// One benchmark's overhead row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadRow {
    pub benchmark: String,
    pub runtime_only_avg: f64,
    pub runtime_only_max: f64,
    pub full_avg: f64,
    pub full_max: f64,
}

/// Fig. 7 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Report {
    pub rows: Vec<OverheadRow>,
    pub avg_full: f64,
}

/// Measure fault-free overhead: runtime detection only vs runtime + VM
/// transition detection, average and max over repeated runs.
pub fn fig7_overhead(scale: &Scale, seed: u64) -> Fig7Report {
    // Each benchmark is independent: run them on worker threads (each
    // worker further parallelizes its repeated runs).
    let rows: Vec<OverheadRow> = std::thread::scope(|s| {
        let handles: Vec<_> = Benchmark::ALL
            .into_iter()
            .map(|b| {
                s.spawn(move || {
                    let setup = OverheadSetup {
                        benchmark: b,
                        mode: VirtMode::Para,
                        kernel_scale: 1, // paper-calibrated activation rates
                        bursts: scale.overhead_bursts,
                        seed,
                    };
                    let rt: OverheadSummary = measure_overhead_repeated(
                        &setup,
                        XentryConfig::runtime_only(),
                        scale.overhead_runs,
                    );
                    let full: OverheadSummary = measure_overhead_repeated(
                        &setup,
                        XentryConfig::overhead(),
                        scale.overhead_runs,
                    );
                    OverheadRow {
                        benchmark: b.name().to_string(),
                        runtime_only_avg: rt.avg,
                        runtime_only_max: rt.max,
                        full_avg: full.avg,
                        full_max: full.max,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fig7 worker"))
            .collect()
    });
    let avg_full = rows.iter().map(|r| r.full_avg).sum::<f64>() / rows.len() as f64;
    Fig7Report { rows, avg_full }
}

impl Fig7Report {
    pub fn render(&self) -> String {
        let mut s = String::from("Fig. 7 — normalized performance overhead of Xentry\n");
        writeln!(
            s,
            "{:<10} {:>14} {:>14} {:>14} {:>14}",
            "benchmark", "runtime avg", "runtime max", "full avg", "full max"
        )
        .unwrap();
        for r in &self.rows {
            writeln!(
                s,
                "{:<10} {:>14} {:>14} {:>14} {:>14}",
                r.benchmark,
                pct(r.runtime_only_avg),
                pct(r.runtime_only_max),
                pct(r.full_avg),
                pct(r.full_max)
            )
            .unwrap();
        }
        writeln!(s, "average full overhead: {}", pct(self.avg_full)).unwrap();
        s.push_str("paper shape: avg 2.5%; bzip2 lowest (0.19%); postmark highest (max 11.7%)\n");
        s
    }
}

// ---------------------------------------------------------------------------
// Fig. 8 / Fig. 9 / Fig. 10 / Table II — fault-injection evaluation
// ---------------------------------------------------------------------------

/// Per-benchmark coverage plus the aggregates — everything the injection
/// campaigns produce.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InjectionReport {
    pub per_benchmark: Vec<(String, CoverageBreakdown)>,
    pub overall: CoverageBreakdown,
    pub long_latency: LongLatencyCoverage,
    pub latency_same_activation: LatencyData,
    pub latency_all: LatencyData,
    pub undetected: UndetectedBreakdown,
    pub total_injections: usize,
}

/// Run the evaluation campaign for every benchmark with the deployed
/// detector; aggregates feed Figs. 8-10 and Table II.
pub fn injection_evaluation(
    benchmarks: &[Benchmark],
    detector: &VmTransitionDetector,
    scale: &Scale,
    seed: u64,
) -> InjectionReport {
    let mut per_benchmark = Vec::new();
    let mut all_records = Vec::new();
    for (i, &b) in benchmarks.iter().enumerate() {
        let cfg = CampaignConfig::paper(b, scale.eval_injections, seed + 1000 + i as u64 * 37);
        let res = run_campaign(&cfg, Some(detector));
        per_benchmark.push((b.name().to_string(), coverage_breakdown(&res.records)));
        all_records.extend(res.records);
    }
    let overall = coverage_breakdown(&all_records);
    InjectionReport {
        per_benchmark,
        overall,
        long_latency: long_latency_coverage(&all_records),
        latency_same_activation: latency_data_filtered(&all_records, true),
        latency_all: latency_data_filtered(&all_records, false),
        undetected: undetected_breakdown(&all_records),
        total_injections: all_records.len(),
    }
}

impl InjectionReport {
    /// Fig. 8 rendering.
    pub fn render_fig8(&self) -> String {
        let mut s =
            String::from("Fig. 8 — overall detection results (fraction of manifested faults)\n");
        writeln!(
            s,
            "{:<10} {:>10} {:>8} {:>8} {:>10} {:>11} {:>9}",
            "benchmark", "manifested", "hw-exc", "sw-asrt", "vm-trans", "undetected", "coverage"
        )
        .unwrap();
        for (name, b) in &self.per_benchmark {
            writeln!(
                s,
                "{:<10} {:>10} {:>8} {:>8} {:>10} {:>11} {:>9}",
                name,
                b.manifested,
                pct(b.fraction(b.hw_exception)),
                pct(b.fraction(b.sw_assertion)),
                pct(b.fraction(b.vm_transition)),
                pct(b.fraction(b.undetected)),
                pct(b.coverage())
            )
            .unwrap();
        }
        let o = &self.overall;
        writeln!(
            s,
            "{:<10} {:>10} {:>8} {:>8} {:>10} {:>11} {:>9}",
            "AVG",
            o.manifested,
            pct(o.fraction(o.hw_exception)),
            pct(o.fraction(o.sw_assertion)),
            pct(o.fraction(o.vm_transition)),
            pct(o.fraction(o.undetected)),
            pct(o.coverage())
        )
        .unwrap();
        writeln!(
            s,
            "({} total injections; {} manifested)",
            self.total_injections, o.manifested
        )
        .unwrap();
        s.push_str(
            "paper: avg coverage 97.6% (up to 99.4%); hw 85.1%, sw 5.2%, vm-transition 6.9%\n",
        );
        s
    }

    /// Fig. 9 rendering.
    pub fn render_fig9(&self) -> String {
        let ll = &self.long_latency;
        let mut s =
            String::from("Fig. 9 — detection coverage of long-latency errors by consequence\n");
        for (name, row, paper) in [
            ("APP SDC", ll.app_sdc, "92.6%"),
            ("APP crash", ll.app_crash, "96.8%"),
            ("All VM failure", ll.all_vm, "(high)"),
            ("One VM failure", ll.one_vm, "(high)"),
        ] {
            writeln!(
                s,
                "{:<16} detected {:>4}/{:<4} = {:>6}   (paper: {})",
                name,
                row.detected,
                row.total,
                pct(row.rate()),
                paper
            )
            .unwrap();
        }
        s
    }

    /// Fig. 10 rendering: CDF of detection latency by technique.
    pub fn render_fig10(&self) -> String {
        let mut s = String::from(
            "Fig. 10 — CDF of detection latency (instructions; detections before VM entry)\n",
        );
        let d = &self.latency_same_activation;
        writeln!(
            s,
            "{:>8} {:>12} {:>12} {:>12}",
            "latency", "hw-exc", "sw-asrt", "vm-trans"
        )
        .unwrap();
        for x in [
            100u64, 200, 300, 400, 500, 600, 700, 800, 900, 1000, 1500, 2000, 3000,
        ] {
            writeln!(
                s,
                "{:>8} {:>12} {:>12} {:>12}",
                x,
                pct(LatencyData::cdf(&d.hw_exception, x)),
                pct(LatencyData::cdf(&d.sw_assertion, x)),
                pct(LatencyData::cdf(&d.vm_transition, x))
            )
            .unwrap();
        }
        writeln!(
            s,
            "p95: hw {}  sw {}  vm {}",
            LatencyData::percentile(&d.hw_exception, 95.0),
            LatencyData::percentile(&d.sw_assertion, 95.0),
            LatencyData::percentile(&d.vm_transition, 95.0)
        )
        .unwrap();
        writeln!(
            s,
            "late (post-entry) detections: hw {}  sw {}  vm {}",
            self.latency_all.hw_exception.len() - d.hw_exception.len(),
            self.latency_all.sw_assertion.len() - d.sw_assertion.len(),
            self.latency_all.vm_transition.len() - d.vm_transition.len()
        )
        .unwrap();
        s.push_str("paper shape: hw/sw latencies shortest; 95% of vm-transition detections < 700 instructions\n(our handlers run ~2-3x longer than Xen's hot paths, which scales the x-axis accordingly)\n");
        s
    }

    /// Table II rendering.
    pub fn render_table2(&self) -> String {
        let u = &self.undetected;
        let mut s = String::from("Table II — undetected faults by corruption site\n");
        writeln!(
            s,
            "{:<14} {:<14} {:<14} {:<14}",
            "Mis-Classify", "Stack Values", "Time Values", "Other Values"
        )
        .unwrap();
        writeln!(
            s,
            "{:<14} {:<14} {:<14} {:<14}",
            pct(u.fraction(u.mis_classified)),
            pct(u.fraction(u.stack_values)),
            pct(u.fraction(u.time_values)),
            pct(u.fraction(u.other_values))
        )
        .unwrap();
        writeln!(s, "({} undetected faults total)", u.total).unwrap();
        s.push_str("paper: 10% / 20% / 53% / 17%\n");
        s
    }
}

// ---------------------------------------------------------------------------
// Fig. 11 — recovery overhead with false positives
// ---------------------------------------------------------------------------

/// One benchmark's recovery-overhead row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryRow {
    pub benchmark: String,
    pub avg: f64,
    pub max: f64,
}

/// Fig. 11 report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Report {
    pub rows: Vec<RecoveryRow>,
    pub avg: f64,
}

/// Measure the overhead of recovery support in fault-free runs: critical
/// state is copied at every VM exit (the paper's measured 1,900 ns) and the
/// deployed detector's false positives trigger restore + re-execution.
pub fn fig11_recovery_overhead(
    detector: &VmTransitionDetector,
    scale: &Scale,
    seed: u64,
) -> Fig11Report {
    // One worker per (benchmark, repetition): all runs are independent.
    let mut results: Vec<(usize, f64)> = std::thread::scope(|sc| {
        let mut handles = Vec::new();
        for (bi, b) in Benchmark::ALL.into_iter().enumerate() {
            for r in 0..scale.overhead_runs {
                let det = detector.clone();
                handles.push(sc.spawn(move || {
                    let setup = OverheadSetup {
                        benchmark: b,
                        mode: VirtMode::Para,
                        kernel_scale: 1, // paper-calibrated activation rates
                        bursts: scale.overhead_bursts,
                        seed: seed + 1000 * r as u64,
                    };
                    let res = xentry::overhead::measure_overhead_with(&setup, || {
                        xentry::Xentry::new(XentryConfig::with_recovery(), Some(det.clone()))
                    });
                    (bi, res.overhead)
                }));
            }
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("fig11 run"))
            .collect()
    });
    results.sort_by_key(|(bi, _)| *bi);
    let rows: Vec<RecoveryRow> = Benchmark::ALL
        .into_iter()
        .enumerate()
        .map(|(bi, b)| {
            let values: Vec<f64> = results
                .iter()
                .filter(|(i, _)| *i == bi)
                .map(|(_, v)| *v)
                .collect();
            let avg = values.iter().sum::<f64>() / values.len().max(1) as f64;
            let max = values.iter().cloned().fold(f64::MIN, f64::max);
            RecoveryRow {
                benchmark: b.name().to_string(),
                avg,
                max,
            }
        })
        .collect();
    let avg = rows.iter().map(|r| r.avg).sum::<f64>() / rows.len() as f64;
    Fig11Report { rows, avg }
}

impl Fig11Report {
    pub fn render(&self) -> String {
        let mut s = String::from("Fig. 11 — recovery overhead with false-positive cases\n");
        writeln!(s, "{:<10} {:>10} {:>10}", "benchmark", "avg", "max").unwrap();
        for r in &self.rows {
            writeln!(
                s,
                "{:<10} {:>10} {:>10}",
                r.benchmark,
                pct(r.avg),
                pct(r.max)
            )
            .unwrap();
        }
        writeln!(s, "average: {}", pct(self.avg)).unwrap();
        s.push_str("paper: avg 2.7%; mcf/bzip2 ~1.6%; postmark highest (6.3%)\n");
        s
    }
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5): feature ablation, tree depth, training size
// ---------------------------------------------------------------------------

/// Accuracy with one feature removed, for every feature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationReport {
    /// (dropped feature, accuracy, detection rate)
    pub feature_drop: Vec<(String, f64, f64)>,
    /// (max depth, accuracy)
    pub depth_sweep: Vec<(usize, f64)>,
    /// (training fraction x1000, accuracy)
    pub size_sweep: Vec<(usize, f64)>,
}

/// The feature/depth/training-size ablations the paper mentions but omits
/// for space ("we omit the evaluation results and discussions on various
/// features, tree depth, and training set size").
pub fn ablations(benchmarks: &[Benchmark], scale: &Scale, seed: u64) -> AblationReport {
    let ds = gather_dataset(benchmarks, scale, seed);
    let (train, test) = ds.split(3);
    let balanced = rebalance(&train, OVERSAMPLE_INCORRECT);

    // Feature ablation: drop one column at a time.
    let mut feature_drop = Vec::new();
    for (drop, name) in FEATURE_NAMES.iter().enumerate() {
        let cols: Vec<usize> = (0..FEATURE_NAMES.len()).filter(|&c| c != drop).collect();
        let tr = balanced.project(&cols);
        let te = test.project(&cols);
        let tree = DecisionTree::train(&tr, &TrainConfig::random_tree(cols.len(), seed));
        let cm = evaluate(&tree, &te);
        feature_drop.push((name.to_string(), cm.accuracy(), cm.detection_rate()));
    }

    // Depth sweep.
    let mut depth_sweep = Vec::new();
    for depth in [2usize, 4, 8, 16, 24] {
        let mut cfg = TrainConfig::random_tree(FEATURE_NAMES.len(), seed);
        cfg.max_depth = depth;
        let tree = DecisionTree::train(&balanced, &cfg);
        depth_sweep.push((depth, evaluate(&tree, &test).accuracy()));
    }

    // Training-size sweep.
    let mut size_sweep = Vec::new();
    for frac in [125usize, 250, 500, 1000] {
        let n = balanced.len() * frac / 1000;
        let mut sub = mltree::Dataset::new(&FEATURE_NAMES);
        for s in balanced.samples.iter().take(n.max(10)) {
            sub.push(s.clone());
        }
        let tree = DecisionTree::train(&sub, &TrainConfig::random_tree(FEATURE_NAMES.len(), seed));
        size_sweep.push((frac, evaluate(&tree, &test).accuracy()));
    }

    AblationReport {
        feature_drop,
        depth_sweep,
        size_sweep,
    }
}

impl AblationReport {
    pub fn render(&self) -> String {
        let mut s = String::from("Ablations — feature / depth / training-size sweeps\n");
        s.push_str("drop feature -> accuracy (detection rate):\n");
        for (f, acc, det) in &self.feature_drop {
            writeln!(s, "  without {f:<5} {} ({})", pct(*acc), pct(*det)).unwrap();
        }
        s.push_str("max depth -> accuracy:\n");
        for (d, acc) in &self.depth_sweep {
            writeln!(s, "  depth {d:<3} {}", pct(*acc)).unwrap();
        }
        s.push_str("training fraction -> accuracy:\n");
        for (f, acc) in &self.size_sweep {
            writeln!(s, "  {:>5.1}% of data: {}", *f as f64 / 10.0, pct(*acc)).unwrap();
        }
        s
    }
}
