//! The train-then-deploy pipeline shared by all evaluation experiments.
//!
//! Mirrors the paper's §III-B workflow: run fault-injection campaigns on
//! the simulator to gather labeled samples, train a decision tree and a
//! random tree offline (WEKA stand-in), compare their accuracy, and deploy
//! the random tree (the paper selects it for its slightly higher accuracy)
//! into the Xentry shim for the evaluation campaigns.

use faultsim::{dataset_from_records, golden_trace, run_campaign_with, CampaignConfig};
use guest_sim::Benchmark;
use mltree::{evaluate, ConfusionMatrix, Dataset, DecisionTree, Label, TrainConfig};
use serde::{Deserialize, Serialize};
use xentry::{VmTransitionDetector, FEATURE_NAMES};

/// Sizing of the experiment suite.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Scale {
    /// Injections per benchmark in the training campaign.
    pub train_injections: usize,
    /// Fault-free samples per benchmark for the training set.
    pub train_correct: usize,
    /// Injections per benchmark in the evaluation campaign.
    pub eval_injections: usize,
    /// Repetitions of the overhead experiments (paper: 10).
    pub overhead_runs: usize,
    /// Guest work per overhead run, in kernel bursts.
    pub overhead_bursts: u64,
    /// Fig. 3: number of sampled windows.
    pub rate_windows: usize,
    /// Fig. 3: window length in virtual seconds.
    pub rate_window_secs: f64,
}

impl Scale {
    /// Fast smoke-test scale (CI-sized).
    pub fn quick() -> Scale {
        Scale {
            train_injections: 1200,
            train_correct: 1500,
            eval_injections: 800,
            overhead_runs: 2,
            overhead_bursts: 600,
            rate_windows: 6,
            rate_window_secs: 0.004,
        }
    }

    /// Paper-shaped scale: totals comparable to the paper's 23,400 training
    /// and 30,000 evaluation injections across the benchmark suite.
    pub fn paper() -> Scale {
        Scale {
            train_injections: 4000,
            train_correct: 4000,
            eval_injections: 5000,
            overhead_runs: 10,
            overhead_bursts: 1500,
            rate_windows: 30,
            rate_window_secs: 0.01,
        }
    }
}

/// Oversampling factor for incorrect training samples (class rebalancing;
/// the detector must not drown the rare incorrect class).
pub const OVERSAMPLE_INCORRECT: usize = 8;

/// Outcome of model training: both trees, their test metrics, and the
/// dataset sizes (the paper reports 12,024 training / 6,596 test samples).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingReport {
    pub train_samples: usize,
    pub train_correct: usize,
    pub train_incorrect: usize,
    pub test_samples: usize,
    pub random_tree: ConfusionMatrix,
    pub decision_tree: ConfusionMatrix,
    pub random_tree_nodes: usize,
    pub decision_tree_nodes: usize,
    pub random_tree_depth: usize,
    pub decision_tree_depth: usize,
}

/// Gather a labeled dataset across benchmarks (campaign + fault-free runs).
///
/// One golden trace is walked per benchmark and shared by both halves of
/// the dataset: the checkpoint-forked campaign supplies the labeled fault
/// samples, and the same trace's fault-free feature stream supplies the
/// correct samples — no second fault-free execution per benchmark.
pub fn gather_dataset(benchmarks: &[Benchmark], scale: &Scale, seed: u64) -> Dataset {
    let mut ds = Dataset::new(&FEATURE_NAMES);
    for (i, &b) in benchmarks.iter().enumerate() {
        let cfg = CampaignConfig::paper(b, scale.train_injections, seed + i as u64 * 101);
        let trace = golden_trace(&cfg, None);
        let res = run_campaign_with(&cfg, &trace, None);
        ds.extend_samples(dataset_from_records(&res.records).samples);
        ds.extend_samples(trace.correct_samples(scale.train_correct).samples);
    }
    ds
}

/// Oversample the incorrect class (training-set rebalancing).
pub fn rebalance(train: &Dataset, factor: usize) -> Dataset {
    let mut out = Dataset::new(&FEATURE_NAMES);
    for s in &train.samples {
        let n = if s.label == Label::Incorrect {
            factor
        } else {
            1
        };
        for _ in 0..n {
            out.push(s.clone());
        }
    }
    out
}

/// Train both tree flavours and evaluate on a held-out split.
pub fn train_models(ds: &Dataset, seed: u64) -> (DecisionTree, DecisionTree, TrainingReport) {
    let (train, test) = ds.split(3);
    let balanced = rebalance(&train, OVERSAMPLE_INCORRECT);
    let rt = DecisionTree::train(&balanced, &TrainConfig::random_tree(ds.nr_features(), seed));
    let dt = DecisionTree::train(&balanced, &TrainConfig::decision_tree());
    let cm_rt = evaluate(&rt, &test);
    let cm_dt = evaluate(&dt, &test);
    let (c, i) = train.class_counts();
    let report = TrainingReport {
        train_samples: train.len(),
        train_correct: c,
        train_incorrect: i,
        test_samples: test.len(),
        random_tree: cm_rt,
        decision_tree: cm_dt,
        random_tree_nodes: rt.nr_nodes(),
        decision_tree_nodes: dt.nr_nodes(),
        random_tree_depth: rt.depth(),
        decision_tree_depth: dt.depth(),
    };
    (rt, dt, report)
}

/// Full pipeline: gather, train, deploy the random tree.
pub fn train_detector(
    benchmarks: &[Benchmark],
    scale: &Scale,
    seed: u64,
) -> (VmTransitionDetector, TrainingReport) {
    let ds = gather_dataset(benchmarks, scale, seed);
    let (rt, _dt, report) = train_models(&ds, seed);
    (VmTransitionDetector::new(rt), report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_pipeline_trains_a_usable_detector() {
        let scale = Scale {
            train_injections: 700,
            train_correct: 900,
            ..Scale::quick()
        };
        let (det, report) = train_detector(&[Benchmark::Freqmine], &scale, 3);
        assert!(report.train_samples > 700);
        assert!(
            report.train_incorrect > 0,
            "campaign must produce incorrect samples"
        );
        assert!(
            report.random_tree.accuracy() > 0.8,
            "rt acc {}",
            report.random_tree.accuracy()
        );
        assert!(det.nr_nodes() > 3);
    }

    #[test]
    fn rebalance_multiplies_only_incorrect() {
        let mut ds = Dataset::new(&FEATURE_NAMES);
        ds.push(mltree::Sample::new(vec![1, 2, 3, 4, 5], Label::Correct));
        ds.push(mltree::Sample::new(vec![9, 9, 9, 9, 9], Label::Incorrect));
        let r = rebalance(&ds, 5);
        let (c, i) = r.class_counts();
        assert_eq!(c, 1);
        assert_eq!(i, 5);
    }
}
