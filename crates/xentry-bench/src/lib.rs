//! # xentry-bench — the paper's full evaluation harness
//!
//! One function per table/figure of the ICPP 2014 Xentry paper, sized by a
//! [`pipeline::Scale`] profile:
//!
//! | Experiment | Function |
//! |---|---|
//! | Fig. 3 activation frequency | [`experiments::fig3_activation_frequency`] |
//! | Table I features | [`experiments::table1_features`] |
//! | §III-B classifier accuracy + Fig. 6 | [`experiments::ml_accuracy`] |
//! | Fig. 7 performance overhead | [`experiments::fig7_overhead`] |
//! | Fig. 8/9/10 + Table II injection campaigns | [`experiments::injection_evaluation`] |
//! | Fig. 11 recovery overhead | [`experiments::fig11_recovery_overhead`] |
//! | feature/depth/size ablations | [`experiments::ablations`] |
//! | fleet serving throughput (extension) | [`fleet::fleet_experiment`] |
//! | compiled-inference trajectory (extension) | [`inference::inference_experiment`] |
//! | campaign-engine throughput (extension) | [`campaign::campaign_experiment`] |
//!
//! The `figures` binary drives them all and writes JSON artifacts alongside
//! the rendered text.

pub mod campaign;
pub mod experiments;
pub mod extensions;
pub mod fleet;
pub mod inference;
pub mod layout;
pub mod pipeline;

pub use campaign::{campaign_experiment, CampaignBenchReport};
pub use experiments::*;
pub use extensions::*;
pub use fleet::{fleet_experiment, overhead_experiment, FleetReport};
pub use inference::{inference_experiment, InferenceReport};
pub use layout::{layout_experiment, LayoutReport};
pub use pipeline::{
    gather_dataset, rebalance, train_detector, train_models, Scale, TrainingReport,
};
