//! Fleet-serving experiment: drive the `xentry-fleet` service with a
//! replayed trace and report aggregate throughput, drop accounting and
//! latency percentiles (the serving-side numbers the paper's single-host
//! evaluation cannot show), plus the observability-layer overhead figure
//! (the fleet-side analogue of the paper's Table II cost accounting).

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use xentry::VmTransitionDetector;
use xentry_fleet::{
    measure_overhead, replay, FleetConfig, FleetService, NullSink, OverheadConfig, OverheadReport,
    ReplayConfig, ServiceSnapshot,
};

use crate::pipeline::Scale;

/// Replay outcome + service snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    /// "campaign" when the trained detector classified its own workload
    /// distribution, "synthetic" for the fallback pairing.
    pub model_source: String,
    pub hosts: usize,
    pub shards: usize,
    /// Classified records per second on each shard over the replay wall
    /// clock — the per-worker view of the inference engine's throughput.
    pub per_shard_throughput: Vec<f64>,
    pub replay: replay::ReplayReport,
    pub snapshot: ServiceSnapshot,
}

/// Run the fleet service over a replayed trace. With a campaign-trained
/// `detector`, replays real platform activations; otherwise pairs the
/// synthetic detector with the synthetic distribution. The deployed
/// model is re-laid out hot-path-first from a profile harvested over the
/// replay trace, published through the validated hot-swap gate — the
/// full profile-guided pipeline, measured end-to-end.
pub fn fleet_experiment(
    detector: Option<&VmTransitionDetector>,
    scale: &Scale,
    seed: u64,
) -> FleetReport {
    let hosts = 8;
    // One worker per available core, capped at the historical 8: more
    // shards than cores measures thread oversubscription, not the
    // classify path.
    let shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);
    // Enough records to measure steady-state throughput; scales with the
    // evaluation campaign size so `--paper` runs longer.
    let records_per_host = (scale.eval_injections * 60).max(20_000);
    let (det, trace, model_source) = match detector {
        Some(det) => {
            let trace = replay::workload_trace(guest_sim::Benchmark::Postmark, 4096, seed);
            (det.clone(), trace, "campaign")
        }
        None => {
            let det = replay::synthetic_detector(seed);
            let trace = replay::synthetic_trace(65_536, seed);
            (det, trace, "synthetic")
        }
    };
    let cfg = FleetConfig {
        shards,
        ..FleetConfig::default()
    };
    // Same tree, same fingerprint, hot-first arena: the profiled
    // relayout must clear the strict-parity swap gate by construction.
    let profile = det.harvest_profile(&trace);
    let profiled = det.with_profiled_layout(&profile);
    let svc = FleetService::start(cfg, det, Arc::new(NullSink));
    svc.hot_swap_validated(profiled, true)
        .expect("profiled relayout passes the swap gate");
    let rep = replay::replay(
        &svc,
        &trace,
        &ReplayConfig {
            hosts,
            records_per_host,
            rate_per_host: 0.0,
        },
    );
    let snapshot = svc.shutdown();
    let wall_secs = (rep.wall_ns.max(1)) as f64 / 1e9;
    let per_shard_throughput = snapshot
        .shards
        .iter()
        .map(|s| s.classified as f64 / wall_secs)
        .collect();
    FleetReport {
        model_source: model_source.to_string(),
        hosts,
        shards,
        per_shard_throughput,
        replay: rep,
        snapshot,
    }
}

impl FleetReport {
    pub fn render(&self) -> String {
        let s = &self.snapshot;
        let secs = self.replay.wall_ns as f64 / 1e9;
        let mut out = format!(
            "Fleet serving ({} model, {} hosts -> {} shards)\n\
             ------------------------------------------------\n\
             offered     {:>12.0} records/s ({} sent in {:.2}s)\n\
             classified  {:>12.0} records/s ({} total)\n\
             dropped     {:>12} ({:.2}% of offered)\n\
             incorrect   {:>12} ({} incident dumps)\n\
             model       {} B arena, {} B hot prefix, {} splits\n\
             queue lat   p50 {} ns, p99 {} ns\n\
             classify    p50 {} ns, p99 {} ns\n",
            self.model_source,
            self.hosts,
            self.shards,
            self.replay.offered_per_sec,
            self.replay.sent,
            secs,
            s.throughput_per_sec,
            s.classified,
            s.dropped,
            100.0 * s.dropped as f64 / self.replay.sent.max(1) as f64,
            s.incorrect,
            s.incidents,
            s.model_arena_bytes,
            s.model_hot_prefix_bytes,
            s.model_nr_splits,
            s.queue_latency.p50,
            s.queue_latency.p99,
            s.classify_latency.p50,
            s.classify_latency.p99,
        );
        for (i, t) in self.per_shard_throughput.iter().enumerate() {
            out.push_str(&format!("shard {i:<5} {t:>12.0} records/s\n"));
        }
        out
    }
}

/// Measure the flight-trace layer's cost on the serving hot path: best
/// untraced leg vs. best traced leg over identical replays, reported as
/// throughput regression plus ns- and cycles-per-classification (the
/// Table-II shape for the fleet's own observability).
pub fn overhead_experiment(scale: &Scale, seed: u64) -> OverheadReport {
    measure_overhead(&OverheadConfig {
        records_per_host: (scale.eval_injections * 30).max(10_000),
        seed,
        ..OverheadConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_experiment_reports_both_arms() {
        let mut scale = Scale::quick();
        scale.eval_injections = 10;
        let rep = overhead_experiment(&scale, 5);
        assert!(rep.legs.iter().any(|l| l.traced));
        assert!(rep.legs.iter().any(|l| !l.traced));
        assert!(rep.baseline_throughput > 0.0);
        let back: OverheadReport =
            serde_json::from_str(&serde_json::to_string(&rep).unwrap()).unwrap();
        assert_eq!(back.legs.len(), rep.legs.len());
    }

    #[test]
    fn synthetic_fleet_experiment_runs() {
        let mut scale = Scale::quick();
        scale.eval_injections = 100; // keep the test snappy
        let rep = fleet_experiment(None, &scale, 3);
        assert_eq!(rep.model_source, "synthetic");
        assert_eq!(rep.snapshot.classified, rep.replay.accepted);
        assert!(rep.snapshot.throughput_per_sec > 0.0);
        // The profiled relayout deployed through the validated swap gate
        // and its hot prefix is a strict subset of the arena.
        assert_eq!(rep.snapshot.swaps, 1);
        assert_eq!(rep.snapshot.swap_rejections, 0);
        assert!(rep.snapshot.model_arena_bytes > 0);
        assert!(rep.snapshot.model_hot_prefix_bytes <= rep.snapshot.model_arena_bytes);
        assert_eq!(rep.per_shard_throughput.len(), rep.shards);
        assert!(rep.per_shard_throughput.iter().sum::<f64>() > 0.0);
        let text = rep.render();
        assert!(text.contains("classified"), "{text}");
        assert!(text.contains("shard 0"), "{text}");
        // Round-trips through JSON for the figures artifact.
        let back: FleetReport =
            serde_json::from_str(&serde_json::to_string(&rep).unwrap()).unwrap();
        assert_eq!(back.snapshot.classified, rep.snapshot.classified);
    }
}
