//! Inference-engine throughput: boxed walker vs compiled arena vs batch
//! vs forest, the perf-trajectory numbers behind `BENCH_inference.json`.
//!
//! The criterion bench (`benches/classify.rs`) gives interactive numbers;
//! this module produces the *recorded* ones — a serializable report the
//! `figures` harness writes to `results/inference.json` and mirrors to
//! the repo root, so every PR from here on has a comparable measurement
//! of the VM-entry hot path.

use mltree::{Dataset, DecisionTree, ForestConfig, Label, RandomForest, Sample, TrainConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use xentry::{FeatureVec, VmTransitionDetector, FEATURE_NAMES};

use crate::pipeline::Scale;

/// Feature-vector pool a measurement sweeps over (power of two so the
/// index wrap is a mask).
const POOL: usize = 8192;

/// Detector models in the fleet-shaped working set (power of two so the
/// round-robin pick is a mask). One tree per tenant/shard is exactly how
/// `xentry-fleet` deploys the detector: the hot path's cost is set by the
/// *aggregate* model working set, not one L1-warm tree.
const MODELS: usize = 128;

/// One measured configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferenceCase {
    pub name: String,
    pub ns_per_classify: f64,
    pub classifications_per_sec: f64,
}

/// The perf-trajectory record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Representative tree shape (model 0) of the fleet working set.
    pub tree_depth: usize,
    pub tree_nodes: usize,
    /// Distinct detector models classified round-robin per sweep.
    pub models: usize,
    /// Ensemble shape for the forest numbers.
    pub forest_trees: usize,
    /// Samples classified per measurement round.
    pub pool: usize,
    pub rounds: usize,
    /// Batch-walk kernel the calibration race picked for `Auto` on this
    /// host ("scalar", "avx2", "avx512") — the one every `_batch` case
    /// except `detector_batch_scalar` ran on.
    pub kernel: String,
    pub cases: Vec<InferenceCase>,
    /// Compiled single-sample throughput over boxed single-sample. This
    /// walk is latency-bound — one dependent load chain per level for
    /// both walkers — so the gain here is the cache-footprint ratio, not
    /// the tentpole headline.
    pub compiled_speedup_vs_boxed: f64,
    /// Batch (lane-interleaved) throughput over the boxed walker it
    /// replaced on every consumer's hot path — the engine's headline.
    pub batch_speedup_vs_boxed: f64,
    /// Batch throughput over compiled single-sample (how much the lane
    /// interleave buys on top of the arena itself).
    pub batch_speedup_vs_single: f64,
    /// Compiled-forest batch throughput over boxed forest.
    pub forest_batch_speedup_vs_boxed: f64,
}

/// Best-of-`rounds` nanoseconds per classification for a closure that
/// classifies the whole pool once. Best-of filters scheduler noise the
/// same way criterion's minimum does.
fn measure(rounds: usize, pool: usize, mut sweep: impl FnMut() -> u64) -> f64 {
    let mut best = f64::INFINITY;
    let mut sink = 0u64;
    for _ in 0..rounds {
        let t = Instant::now();
        sink = sink.wrapping_add(sweep());
        let ns = t.elapsed().as_nanos() as f64 / pool as f64;
        if ns < best {
            best = ns;
        }
    }
    std::hint::black_box(sink);
    best
}

fn case(name: &str, ns: f64) -> InferenceCase {
    InferenceCase {
        name: name.to_string(),
        ns_per_classify: ns,
        classifications_per_sec: 1e9 / ns.max(1e-3),
    }
}

/// The bench workload: Table-I-shaped counters with a labeling rule that
/// interacts all five features, so training yields a deployment-scale
/// tree (thousands of splits, depth near the cap) rather than a one-cut
/// toy — the regime where walker memory behaviour actually matters.
/// `salt` varies the rule per model so the fleet holds distinct trees.
pub(crate) fn bench_dataset(n: usize, salt: u64) -> Dataset {
    let mut ds = Dataset::new(&FEATURE_NAMES);
    for i in 0..n as u64 {
        let vmer = (i * 7919) % 91;
        let rt = 60 + (i * 2_654_435_761) % 3940;
        let br = rt / 6 + (i * 97) % 40;
        let rm = rt / 5 + (i * 193) % 60;
        let wm = 4 + (i * 389) % 120;
        let label = if (vmer * 31 + rt * 7 + br * 13 + rm * 3 + wm + salt * 17) % 11 < 3 {
            Label::Incorrect
        } else {
            Label::Correct
        };
        ds.push(Sample::new(vec![vmer, rt, br, rm, wm], label));
    }
    ds
}

/// Measure the boxed walker, the compiled arena (single-sample and
/// batch), the detector end-to-end path, and the forest forms — all over
/// a fleet-shaped working set of `MODELS` distinct detectors classified
/// round-robin (single-sample cases) or per-model batches (batch cases,
/// exactly how `xentry-fleet` shards drain their queues).
pub fn inference_experiment(scale: &Scale, seed: u64) -> InferenceReport {
    // More rounds / a bigger fleet at --paper scale; the in-test run
    // (overhead_runs == 1) shrinks everything to stay fast.
    let rounds = if scale.overhead_runs > 5 { 41 } else { 13 };
    let (models, samples) = if scale.overhead_runs >= 2 {
        (MODELS, 8000)
    } else {
        (8, 1500)
    };
    let trees: Vec<DecisionTree> = (0..models)
        .map(|m| {
            let ds = bench_dataset(samples, m as u64);
            DecisionTree::train(
                &ds,
                &TrainConfig::random_tree(5, seed.wrapping_add(m as u64)),
            )
        })
        .collect();
    let compiled: Vec<_> = trees.iter().map(|t| t.compile()).collect();
    let detectors: Vec<VmTransitionDetector> = trees
        .iter()
        .map(|t| VmTransitionDetector::new(t.clone()))
        .collect();
    let ds0 = bench_dataset(samples, 0);
    let mut forest_cfg = ForestConfig::default_random_forest(5, seed);
    forest_cfg.nr_trees = 15;
    let forest = RandomForest::train(&ds0, &forest_cfg);
    let cforest = forest.compile();

    // A pool of feature rows drawn from the bench distribution, so the
    // walk exercises varied paths instead of one branch-predicted leaf.
    let rows: Vec<[u64; 5]> = (0..POOL)
        .map(|i| {
            let s = &ds0.samples[i % ds0.len()];
            [
                s.features[0],
                s.features[1],
                s.features[2],
                s.features[3],
                s.features[4],
            ]
        })
        .collect();
    let features: Vec<FeatureVec> = rows
        .iter()
        .map(|r| FeatureVec {
            vmer: r[0] as u16,
            rt: r[1],
            br: r[2],
            rm: r[3],
            wm: r[4],
        })
        .collect();
    let mut labels = vec![Label::Correct; POOL];
    let mask = models - 1; // MODELS is a power of two
    let per_model = POOL / models;

    let boxed_ns = measure(rounds, POOL, || {
        rows.iter()
            .enumerate()
            .map(|(k, r)| {
                (trees[k & mask].classify(std::hint::black_box(r)) == Label::Incorrect) as u64
            })
            .sum()
    });
    let compiled_ns = measure(rounds, POOL, || {
        rows.iter()
            .enumerate()
            .map(|(k, r)| {
                (compiled[k & mask].classify(std::hint::black_box(r)) == Label::Incorrect) as u64
            })
            .sum()
    });
    let batch_ns = measure(rounds, POOL, || {
        for (m, (rs, ls)) in rows
            .chunks(per_model)
            .zip(labels.chunks_mut(per_model))
            .enumerate()
        {
            compiled[m & mask].classify_batch(rs, ls);
        }
        labels.iter().filter(|&&l| l == Label::Incorrect).count() as u64
    });
    let detector_ns = measure(rounds, POOL, || {
        features
            .iter()
            .enumerate()
            .map(|(k, f)| {
                (detectors[k & mask].classify(std::hint::black_box(f)) == Label::Incorrect) as u64
            })
            .sum()
    });
    let detector_batch_ns = measure(rounds, POOL, || {
        for (m, (fs, ls)) in features
            .chunks(per_model)
            .zip(labels.chunks_mut(per_model))
            .enumerate()
        {
            detectors[m & mask].classify_batch(fs, ls);
        }
        labels.iter().filter(|&&l| l == Label::Incorrect).count() as u64
    });
    // Same sweep pinned to the scalar lockstep kernel: the vector
    // speedup isolated from everything else in the path.
    let detector_batch_scalar_ns = measure(rounds, POOL, || {
        for (m, (fs, ls)) in features
            .chunks(per_model)
            .zip(labels.chunks_mut(per_model))
            .enumerate()
        {
            detectors[m & mask].classify_batch_with(mltree::BatchWalker::Scalar, fs, ls);
        }
        labels.iter().filter(|&&l| l == Label::Incorrect).count() as u64
    });
    // Profile each model over its own traffic slice and re-lay its arena
    // hot-path-first — the full profile-guided pipeline, measured on the
    // same sweep the plain detector_batch case runs.
    let profiled: Vec<VmTransitionDetector> = detectors
        .iter()
        .enumerate()
        .map(|(m, det)| {
            let slice = &features[(m * per_model) % POOL..][..per_model];
            det.with_profiled_layout(&det.harvest_profile(slice))
        })
        .collect();
    let detector_batch_profiled_ns = measure(rounds, POOL, || {
        for (m, (fs, ls)) in features
            .chunks(per_model)
            .zip(labels.chunks_mut(per_model))
            .enumerate()
        {
            profiled[m & mask].classify_batch(fs, ls);
        }
        labels.iter().filter(|&&l| l == Label::Incorrect).count() as u64
    });
    let forest_boxed_ns = measure(rounds, POOL, || {
        rows.iter()
            .map(|r| (forest.classify(std::hint::black_box(r)) == Label::Incorrect) as u64)
            .sum()
    });
    let forest_compiled_ns = measure(rounds, POOL, || {
        rows.iter()
            .map(|r| (cforest.classify(std::hint::black_box(r)) == Label::Incorrect) as u64)
            .sum()
    });
    let forest_batch_ns = measure(rounds, POOL, || {
        cforest.classify_batch(&rows, &mut labels);
        labels.iter().filter(|&&l| l == Label::Incorrect).count() as u64
    });

    InferenceReport {
        tree_depth: trees[0].depth(),
        tree_nodes: trees[0].nr_nodes(),
        models,
        forest_trees: forest.trees.len(),
        pool: POOL,
        rounds,
        kernel: mltree::active_kernel_name().to_string(),
        compiled_speedup_vs_boxed: boxed_ns / compiled_ns.max(1e-3),
        batch_speedup_vs_boxed: boxed_ns / batch_ns.max(1e-3),
        batch_speedup_vs_single: compiled_ns / batch_ns.max(1e-3),
        forest_batch_speedup_vs_boxed: forest_boxed_ns / forest_batch_ns.max(1e-3),
        cases: vec![
            case("tree_boxed", boxed_ns),
            case("tree_compiled", compiled_ns),
            case("tree_compiled_batch", batch_ns),
            case("detector_single", detector_ns),
            case("detector_batch", detector_batch_ns),
            case("detector_batch_scalar", detector_batch_scalar_ns),
            case("detector_batch_profiled", detector_batch_profiled_ns),
            case("forest_boxed", forest_boxed_ns),
            case("forest_compiled", forest_compiled_ns),
            case("forest_compiled_batch", forest_batch_ns),
        ],
    }
}

impl InferenceReport {
    pub fn render(&self) -> String {
        let mut out = format!(
            "Inference engine ({} models round-robin, tree depth {}, {} nodes each; \
             forest of {} trees; kernel {}; best of {} rounds x {} samples)\n\
             --------------------------------------------------------------------\n",
            self.models,
            self.tree_depth,
            self.tree_nodes,
            self.forest_trees,
            self.kernel,
            self.rounds,
            self.pool
        );
        for c in &self.cases {
            out.push_str(&format!(
                "{:<24} {:>8.1} ns/classify {:>14.0} classifications/s\n",
                c.name, c.ns_per_classify, c.classifications_per_sec
            ));
        }
        out.push_str(&format!(
            "\nsingle compiled vs boxed {:>6.2}x\n\
             batch vs boxed           {:>6.2}x\n\
             batch vs single compiled {:>6.2}x\n\
             forest batch vs boxed    {:>6.2}x\n",
            self.compiled_speedup_vs_boxed,
            self.batch_speedup_vs_boxed,
            self.batch_speedup_vs_single,
            self.forest_batch_speedup_vs_boxed
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_experiment_reports_all_cases() {
        let mut scale = Scale::quick();
        scale.overhead_runs = 1; // minimum rounds: keep the test snappy
        let rep = inference_experiment(&scale, 7);
        assert_eq!(rep.cases.len(), 10);
        assert!(rep.cases.iter().all(|c| c.ns_per_classify > 0.0));
        assert!(rep.compiled_speedup_vs_boxed > 0.0);
        assert!(
            ["scalar", "avx2", "avx512"].contains(&rep.kernel.as_str()),
            "{}",
            rep.kernel
        );
        let text = rep.render();
        assert!(text.contains("tree_compiled_batch"), "{text}");
        assert!(text.contains("detector_batch_profiled"), "{text}");
        let back: InferenceReport =
            serde_json::from_str(&serde_json::to_string(&rep).unwrap()).unwrap();
        assert_eq!(back.cases.len(), rep.cases.len());
    }
}
