//! Extension experiments beyond the paper's published evaluation:
//!
//! * **Recovery feasibility** — the §VI sketch executed for real: restore
//!   the critical-state copy on every detection and measure how often the
//!   system actually converges (the paper only models the *cost*).
//! * **Forest vs single tree** — the §VIII future-work direction "further
//!   increase the detection coverage and reduce the false positive rate":
//!   a bagged random forest with a tunable vote threshold.
//! * **Per-register vulnerability** — which architectural state is most
//!   dangerous to the hypervisor (classic AVF-style analysis).

use crate::pipeline::{gather_dataset, rebalance, Scale, OVERSAMPLE_INCORRECT};
use faultsim::{
    coverage_breakdown, multibit_study, recovery_study, run_campaign, target_breakdown,
    CampaignConfig, CoverageBreakdown, RecoveryReport, TargetRow,
};
use guest_sim::Benchmark;
use mltree::{
    evaluate, evaluate_forest, ConfusionMatrix, DecisionTree, ForestConfig, RandomForest,
    TrainConfig,
};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use xentry::VmTransitionDetector;

fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Recovery-feasibility report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryStudyReport {
    pub per_benchmark: Vec<(String, RecoveryReport)>,
}

/// Run the recovery study on a subset of benchmarks.
pub fn recovery_feasibility(
    benchmarks: &[Benchmark],
    detector: Option<&VmTransitionDetector>,
    scale: &Scale,
    seed: u64,
) -> RecoveryStudyReport {
    let mut per_benchmark = Vec::new();
    for (i, &b) in benchmarks.iter().enumerate() {
        let mut cfg = CampaignConfig::paper(b, scale.eval_injections, seed + i as u64);
        cfg.warmup = 40;
        let report = recovery_study(
            &cfg,
            scale.eval_injections / 2,
            detector,
            seed + 31 + i as u64,
        );
        per_benchmark.push((b.name().to_string(), report));
    }
    RecoveryStudyReport { per_benchmark }
}

impl RecoveryStudyReport {
    pub fn render(&self) -> String {
        let mut s = String::from(
            "Extension — recovery feasibility (restore critical copy + re-execute on detection)\n",
        );
        writeln!(
            s,
            "{:<10} {:>10} {:>9} {:>9} {:>9} {:>7} {:>9}",
            "benchmark", "injections", "attempts", "survived", "residual", "failed", "survival"
        )
        .unwrap();
        for (name, r) in &self.per_benchmark {
            writeln!(
                s,
                "{:<10} {:>10} {:>9} {:>9} {:>9} {:>7} {:>9}",
                name,
                r.injections,
                r.attempted,
                r.survived,
                r.residual,
                r.failed_again,
                pct(r.survival_rate())
            )
            .unwrap();
        }
        s.push_str("(paper SVI models the cost of this mechanism; this study executes it)\n");
        s
    }
}

/// Forest-vs-tree comparison at several vote thresholds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestReport {
    pub tree: ConfusionMatrix,
    /// (trees, vote threshold, metrics, total nodes)
    pub forests: Vec<(usize, usize, ConfusionMatrix, usize)>,
}

/// Train and compare.
pub fn forest_comparison(benchmarks: &[Benchmark], scale: &Scale, seed: u64) -> ForestReport {
    let ds = gather_dataset(benchmarks, scale, seed);
    let (train, test) = ds.split(3);
    let balanced = rebalance(&train, OVERSAMPLE_INCORRECT);
    let tree = DecisionTree::train(&balanced, &TrainConfig::random_tree(5, seed));
    let tree_cm = evaluate(&tree, &test);
    let mut forests = Vec::new();
    for (nr_trees, threshold) in [(9usize, 5usize), (9, 7), (15, 8), (15, 12)] {
        let mut cfg = ForestConfig::default_random_forest(5, seed);
        cfg.nr_trees = nr_trees;
        cfg.vote_threshold = Some(threshold);
        let forest = RandomForest::train(&balanced, &cfg);
        let cm = evaluate_forest(&forest, &test);
        forests.push((nr_trees, threshold, cm, forest.nr_nodes()));
    }
    ForestReport {
        tree: tree_cm,
        forests,
    }
}

impl ForestReport {
    pub fn render(&self) -> String {
        let mut s =
            String::from("Extension — random forest vs single random tree (SVIII direction)\n");
        writeln!(
            s,
            "{:<22} {:>9} {:>9} {:>9} {:>9}",
            "model", "accuracy", "FP rate", "recall", "nodes"
        )
        .unwrap();
        writeln!(
            s,
            "{:<22} {:>9} {:>9} {:>9} {:>9}",
            "single random tree",
            pct(self.tree.accuracy()),
            pct(self.tree.false_positive_rate()),
            pct(self.tree.detection_rate()),
            "-"
        )
        .unwrap();
        for (n, t, cm, nodes) in &self.forests {
            writeln!(
                s,
                "{:<22} {:>9} {:>9} {:>9} {:>9}",
                format!("forest {n} trees, vote {t}"),
                pct(cm.accuracy()),
                pct(cm.false_positive_rate()),
                pct(cm.detection_rate()),
                nodes
            )
            .unwrap();
        }
        s
    }
}

/// Per-register vulnerability report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VulnerabilityReport {
    pub rows: Vec<TargetRow>,
}

/// Classify which architectural targets hurt the hypervisor most.
pub fn register_vulnerability(
    benchmark: Benchmark,
    detector: Option<&VmTransitionDetector>,
    scale: &Scale,
    seed: u64,
) -> VulnerabilityReport {
    let cfg = CampaignConfig::paper(benchmark, scale.eval_injections * 2, seed);
    let res = run_campaign(&cfg, detector);
    VulnerabilityReport {
        rows: target_breakdown(&res.records),
    }
}

impl VulnerabilityReport {
    pub fn render(&self) -> String {
        let mut s =
            String::from("Extension — per-register vulnerability (flip target -> outcome)\n");
        writeln!(
            s,
            "{:<8} {:>10} {:>11} {:>12} {:>11}",
            "target", "injections", "manifested", "manif. rate", "escape rate"
        )
        .unwrap();
        for r in &self.rows {
            writeln!(
                s,
                "{:<8} {:>10} {:>11} {:>12} {:>11}",
                r.target,
                r.injections,
                r.manifested,
                pct(r.manifestation_rate()),
                pct(r.escape_rate())
            )
            .unwrap();
        }
        s
    }
}

/// Envelope-baseline comparison: the tree vs a per-VMER min/max anomaly
/// envelope trained on fault-free executions only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnvelopeReport {
    pub tree: ConfusionMatrix,
    /// (slack, metrics, trained vmers)
    pub envelopes: Vec<(u64, ConfusionMatrix, usize)>,
}

/// Compare the learned tree against envelope baselines at several slacks.
pub fn envelope_comparison(benchmarks: &[Benchmark], scale: &Scale, seed: u64) -> EnvelopeReport {
    let ds = gather_dataset(benchmarks, scale, seed);
    let (train, test) = ds.split(3);
    let balanced = rebalance(&train, OVERSAMPLE_INCORRECT);
    let tree = DecisionTree::train(&balanced, &TrainConfig::random_tree(5, seed));
    let tree_cm = evaluate(&tree, &test);

    // The envelope only learns from fault-free (correct) samples.
    let correct_trace: Vec<xentry::FeatureVec> = train
        .samples
        .iter()
        .filter(|s| s.label == mltree::Label::Correct)
        .map(|s| xentry::FeatureVec {
            vmer: s.features[0] as u16,
            rt: s.features[1],
            br: s.features[2],
            rm: s.features[3],
            wm: s.features[4],
        })
        .collect();
    let mut envelopes = Vec::new();
    for slack in [0u64, 8, 32, 128] {
        let env = xentry::EnvelopeDetector::train(&correct_trace, slack, 8);
        let mut cm = ConfusionMatrix::default();
        for s in &test.samples {
            let f = xentry::FeatureVec {
                vmer: s.features[0] as u16,
                rt: s.features[1],
                br: s.features[2],
                rm: s.features[3],
                wm: s.features[4],
            };
            cm.record(s.label, env.classify(&f));
        }
        envelopes.push((slack, cm, env.trained_vmers()));
    }
    EnvelopeReport {
        tree: tree_cm,
        envelopes,
    }
}

impl EnvelopeReport {
    pub fn render(&self) -> String {
        let mut s = String::from(
            "Extension — learned tree vs per-VMER min/max envelope baseline
",
        );
        writeln!(
            s,
            "{:<22} {:>9} {:>9} {:>9}",
            "model", "accuracy", "FP rate", "recall"
        )
        .unwrap();
        writeln!(
            s,
            "{:<22} {:>9} {:>9} {:>9}",
            "random tree",
            pct(self.tree.accuracy()),
            pct(self.tree.false_positive_rate()),
            pct(self.tree.detection_rate())
        )
        .unwrap();
        for (slack, cm, vmers) in &self.envelopes {
            writeln!(
                s,
                "{:<22} {:>9} {:>9} {:>9}   ({vmers} trained reasons)",
                format!("envelope slack {slack}"),
                pct(cm.accuracy()),
                pct(cm.false_positive_rate()),
                pct(cm.detection_rate())
            )
            .unwrap();
        }
        s
    }
}

/// Single- vs multi-bit comparison report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultibitReport {
    pub bits: usize,
    pub single: CoverageBreakdown,
    pub multi: CoverageBreakdown,
}

/// Paired single-bit vs `bits`-bit campaign: the beyond-ECC scenario.
pub fn multibit_comparison(
    benchmark: Benchmark,
    bits: usize,
    detector: Option<&VmTransitionDetector>,
    scale: &Scale,
    seed: u64,
) -> MultibitReport {
    let mut cfg = CampaignConfig::paper(benchmark, scale.eval_injections, seed);
    cfg.warmup = 40;
    let (single, multi) = multibit_study(&cfg, scale.eval_injections, bits, detector, seed + 5);
    MultibitReport {
        bits,
        single: coverage_breakdown(&single.records),
        multi: coverage_breakdown(&multi.records),
    }
}

impl MultibitReport {
    pub fn render(&self) -> String {
        let mut s = format!(
            "Extension — single-bit vs {}-bit upsets (paired injection points)
",
            self.bits
        );
        writeln!(
            s,
            "{:<12} {:>11} {:>9} {:>11}",
            "fault model", "manifested", "coverage", "undetected"
        )
        .unwrap();
        for (name, b) in [("1-bit", &self.single), ("k-bit", &self.multi)] {
            writeln!(
                s,
                "{:<12} {:>11} {:>9} {:>11}",
                name,
                b.manifested,
                pct(b.coverage()),
                pct(b.fraction(b.undetected))
            )
            .unwrap();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_feasibility_renders() {
        let scale = Scale {
            eval_injections: 80,
            ..Scale::quick()
        };
        let rep = recovery_feasibility(&[Benchmark::Freqmine], None, &scale, 3);
        assert_eq!(rep.per_benchmark.len(), 1);
        let text = rep.render();
        assert!(text.contains("survival"));
        assert!(rep.per_benchmark[0].1.attempted > 0);
    }

    #[test]
    fn vulnerability_rip_is_highly_manifesting() {
        let scale = Scale {
            eval_injections: 150,
            ..Scale::quick()
        };
        let rep = register_vulnerability(Benchmark::Freqmine, None, &scale, 5);
        let rip = rep
            .rows
            .iter()
            .find(|r| r.target == "rip")
            .expect("rip row");
        // An instruction-pointer flip is live by definition.
        assert!(
            rip.manifestation_rate() > 0.5,
            "rip manifestation {:.2}",
            rip.manifestation_rate()
        );
        // RIP should be among the most vulnerable targets.
        let rank = rep.rows.iter().position(|r| r.target == "rip").unwrap();
        assert!(rank < 6, "rip ranked {rank}: {:?}", rep.rows);
    }
}
