//! Extension experiments beyond the paper's published evaluation:
//!
//! * **Recovery** — the §VI sketch executed for real and extended into a
//!   tiered ARINC-653-style health-monitor comparison: every detected
//!   fault is driven through competing policy tables (detection-only,
//!   re-execute-only, tiered with ReHype-style hypervisor microreboot)
//!   and the per-tier recovery rates, state-loss and cycle costs are
//!   measured head-to-head on identical faults.
//! * **Forest vs single tree** — the §VIII future-work direction "further
//!   increase the detection coverage and reduce the false positive rate":
//!   a bagged random forest with a tunable vote threshold.
//! * **Per-register vulnerability** — which architectural state is most
//!   dangerous to the hypervisor (classic AVF-style analysis).

use crate::pipeline::{gather_dataset, rebalance, Scale, OVERSAMPLE_INCORRECT};
use faultsim::policy::{HmTable, RecoveryAction, RecoveryOutcome};
use faultsim::{
    coverage_breakdown, golden_trace, merge_vulnmaps, multibit_study, run_campaign,
    run_campaign_with, run_model_campaign_with, run_recovery_campaign, target_breakdown,
    vulnmap_from_model_records, vulnmap_from_records, CampaignConfig, CoverageBreakdown, TargetRow,
    VulnMap,
};
use guest_sim::Benchmark;
use mltree::{
    evaluate, evaluate_forest, ConfusionMatrix, DecisionTree, ForestConfig, RandomForest,
    TrainConfig,
};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use xentry::VmTransitionDetector;

fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Recovery rate within one detection-technique class, for one policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassRate {
    /// Detection technique (the fault class recovery is triggered by).
    pub class: String,
    pub detected: usize,
    pub recovered: usize,
}

/// Aggregate of one policy table over one benchmark's recovery campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyStats {
    pub policy: String,
    /// Detected injections (identical across policies by construction).
    pub detected: usize,
    pub recovered: usize,
    pub vm_lost: usize,
    pub failed_recovery: usize,
    /// recovered / detected.
    pub recovery_rate: f64,
    /// Recovered count per tier that closed the fault.
    pub recovered_by_tier: Vec<(String, usize)>,
    /// Recovery rate per fault class (detection technique).
    pub per_class: Vec<ClassRate>,
    /// Recovery rate per fault model ("reg" register flips vs "hv-mem"
    /// hypervisor-private memory flips — the class re-execution cannot
    /// heal).
    pub per_model: Vec<ClassRate>,
    /// Total `ReExecute` attempts the ladder spent.
    pub reexec_attempts: usize,
    /// Total `Microreboot` attempts the ladder spent.
    pub microreboot_attempts: usize,
    /// Longest ladder observed (must stay within `attempt_cap`).
    pub max_ladder_steps: usize,
    /// The policy's proven termination bound on ladder steps.
    pub attempt_cap: u32,
    /// Mean simulated cycles per `ReExecute` attempt.
    pub avg_reexec_cycles: f64,
    /// Mean simulated cycles per `Microreboot` attempt.
    pub avg_microreboot_cycles: f64,
    /// Mean hypervisor-private words discarded per microreboot — the
    /// state-loss accounting of the ReHype tier.
    pub avg_words_lost: f64,
}

/// One benchmark's recovery campaign, all policies side by side.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchmarkRecovery {
    pub benchmark: String,
    pub injections: usize,
    pub detected: usize,
    pub policies: Vec<PolicyStats>,
}

/// The recovery experiment: competing health-monitor policy tables
/// measured head-to-head on identical detected faults.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryExperimentReport {
    /// Policy table names, in comparison order.
    pub policies: Vec<String>,
    pub per_benchmark: Vec<BenchmarkRecovery>,
    /// Detected injections across all benchmarks.
    pub total_detected: usize,
    /// Recovered across all benchmarks, per policy.
    pub total_recovered: Vec<(String, usize)>,
    /// Receipt: the tiered (microreboot-enabled) policy recovered
    /// strictly more detected faults than the re-execute-only baseline.
    pub microreboot_beats_reexec: bool,
    /// Receipt: every escalation ladder terminated within its policy's
    /// proven attempt bound.
    pub escalation_caps_respected: bool,
}

fn tier_name(a: RecoveryAction) -> &'static str {
    match a {
        RecoveryAction::Ignore => "ignore",
        RecoveryAction::ReExecute => "reexecute",
        RecoveryAction::Microreboot => "microreboot",
        RecoveryAction::Halt => "halt",
    }
}

/// The policy tables the experiment compares. Order matters: the receipt
/// compares `tiered` (index 2) against `reexec-only` (index 1).
pub fn recovery_policies() -> Vec<HmTable> {
    vec![
        HmTable::ignore_all(),
        HmTable::reexecute_only(),
        HmTable::tiered(),
    ]
}

/// Run the recovery campaign on a subset of benchmarks and aggregate
/// per policy, per fault class and per tier.
pub fn recovery_experiment(
    benchmarks: &[Benchmark],
    detector: Option<&VmTransitionDetector>,
    scale: &Scale,
    seed: u64,
) -> RecoveryExperimentReport {
    let tables = recovery_policies();
    let policies: Vec<String> = tables.iter().map(|t| t.name.clone()).collect();
    let mut per_benchmark = Vec::new();
    for (i, &b) in benchmarks.iter().enumerate() {
        let mut cfg = CampaignConfig::paper(b, scale.eval_injections / 2, seed + i as u64);
        cfg.warmup = 40;
        let res = run_recovery_campaign(&cfg, detector, &tables);
        let detected = res
            .records
            .iter()
            .filter(|r| r.per_policy[0].is_some())
            .count();
        let mut stats = Vec::new();
        for (pi, table) in tables.iter().enumerate() {
            let mut st = PolicyStats {
                policy: table.name.clone(),
                detected,
                recovered: 0,
                vm_lost: 0,
                failed_recovery: 0,
                recovery_rate: 0.0,
                recovered_by_tier: Vec::new(),
                per_class: Vec::new(),
                per_model: Vec::new(),
                reexec_attempts: 0,
                microreboot_attempts: 0,
                max_ladder_steps: 0,
                attempt_cap: table.max_attempts(),
                avg_reexec_cycles: 0.0,
                avg_microreboot_cycles: 0.0,
                avg_words_lost: 0.0,
            };
            let mut by_tier: Vec<(String, usize)> = Vec::new();
            let mut by_class: Vec<ClassRate> = Vec::new();
            let mut by_model: Vec<ClassRate> = Vec::new();
            let (mut reexec_cycles, mut mr_cycles, mut words) = (0u64, 0u64, 0usize);
            fn bucket(rows: &mut Vec<ClassRate>, class: String) -> &mut ClassRate {
                match rows.iter().position(|c| c.class == class) {
                    Some(i) => &mut rows[i],
                    None => {
                        rows.push(ClassRate {
                            class,
                            detected: 0,
                            recovered: 0,
                        });
                        rows.last_mut().unwrap()
                    }
                }
            }
            for (spec, rec) in res
                .records
                .iter()
                .filter_map(|r| r.per_policy[pi].as_ref().map(|p| (r.spec, p)))
            {
                let recovered = matches!(rec.outcome, RecoveryOutcome::Recovered { .. });
                let c = bucket(&mut by_class, format!("{:?}", rec.technique));
                c.detected += 1;
                c.recovered += recovered as usize;
                let m = bucket(&mut by_model, spec.class().to_string());
                m.detected += 1;
                m.recovered += recovered as usize;
                match rec.outcome {
                    RecoveryOutcome::Recovered { tier } => {
                        st.recovered += 1;
                        let name = tier_name(tier).to_string();
                        match by_tier.iter_mut().find(|(n, _)| *n == name) {
                            Some((_, n)) => *n += 1,
                            None => by_tier.push((name, 1)),
                        }
                    }
                    RecoveryOutcome::VmLost => st.vm_lost += 1,
                    RecoveryOutcome::FailedRecovery => st.failed_recovery += 1,
                }
                st.max_ladder_steps = st.max_ladder_steps.max(rec.steps.len());
                for step in &rec.steps {
                    match step.action {
                        RecoveryAction::ReExecute => st.reexec_attempts += 1,
                        RecoveryAction::Microreboot => st.microreboot_attempts += 1,
                        _ => {}
                    }
                }
                reexec_cycles += rec.reexec_cycles;
                mr_cycles += rec.microreboot_cycles;
                words += rec.words_lost;
            }
            st.recovery_rate = if detected > 0 {
                st.recovered as f64 / detected as f64
            } else {
                0.0
            };
            if st.reexec_attempts > 0 {
                st.avg_reexec_cycles = reexec_cycles as f64 / st.reexec_attempts as f64;
            }
            if st.microreboot_attempts > 0 {
                st.avg_microreboot_cycles = mr_cycles as f64 / st.microreboot_attempts as f64;
                st.avg_words_lost = words as f64 / st.microreboot_attempts as f64;
            }
            st.recovered_by_tier = by_tier;
            st.per_class = by_class;
            st.per_model = by_model;
            stats.push(st);
        }
        per_benchmark.push(BenchmarkRecovery {
            benchmark: b.name().to_string(),
            injections: res.records.len(),
            detected,
            policies: stats,
        });
    }
    let total_detected: usize = per_benchmark.iter().map(|b| b.detected).sum();
    let total_recovered: Vec<(String, usize)> = policies
        .iter()
        .enumerate()
        .map(|(pi, name)| {
            (
                name.clone(),
                per_benchmark.iter().map(|b| b.policies[pi].recovered).sum(),
            )
        })
        .collect();
    let microreboot_beats_reexec = total_recovered[2].1 > total_recovered[1].1;
    let escalation_caps_respected = per_benchmark.iter().all(|b| {
        b.policies
            .iter()
            .all(|p| p.max_ladder_steps <= p.attempt_cap as usize)
    });
    RecoveryExperimentReport {
        policies,
        per_benchmark,
        total_detected,
        total_recovered,
        microreboot_beats_reexec,
        escalation_caps_respected,
    }
}

impl RecoveryExperimentReport {
    pub fn render(&self) -> String {
        let mut s = String::from(
            "Extension — recovery: health-monitor policy tables head-to-head\n\
             (every detected fault driven through each policy's escalation ladder)\n",
        );
        for b in &self.per_benchmark {
            writeln!(
                s,
                "\n{} — {} injections, {} detected",
                b.benchmark, b.injections, b.detected
            )
            .unwrap();
            writeln!(
                s,
                "{:<14} {:>9} {:>8} {:>7} {:>7} {:>13} {:>10} {:>10}",
                "policy",
                "recovered",
                "rate",
                "vmlost",
                "failed",
                "ladder(max/cap)",
                "re-exec",
                "microboot"
            )
            .unwrap();
            for p in &b.policies {
                writeln!(
                    s,
                    "{:<14} {:>9} {:>8} {:>7} {:>7} {:>13} {:>10} {:>10}",
                    p.policy,
                    p.recovered,
                    pct(p.recovery_rate),
                    p.vm_lost,
                    p.failed_recovery,
                    format!("{}/{}", p.max_ladder_steps, p.attempt_cap),
                    p.reexec_attempts,
                    p.microreboot_attempts,
                )
                .unwrap();
            }
            for p in &b.policies {
                for c in p.per_class.iter().chain(&p.per_model) {
                    writeln!(
                        s,
                        "  recovery rate [{} / {:<13}] {:>4}/{:<4} = {}",
                        p.policy,
                        c.class,
                        c.recovered,
                        c.detected,
                        pct(if c.detected > 0 {
                            c.recovered as f64 / c.detected as f64
                        } else {
                            0.0
                        })
                    )
                    .unwrap();
                }
                if !p.recovered_by_tier.is_empty() {
                    let tiers: Vec<String> = p
                        .recovered_by_tier
                        .iter()
                        .map(|(t, n)| format!("{t}={n}"))
                        .collect();
                    writeln!(s, "  closed by tier [{}]: {}", p.policy, tiers.join(" ")).unwrap();
                }
                if p.microreboot_attempts > 0 {
                    writeln!(
                        s,
                        "  microreboot cost [{}]: {:.0} cycles/reboot, {:.0} private words lost/reboot",
                        p.policy, p.avg_microreboot_cycles, p.avg_words_lost
                    )
                    .unwrap();
                }
            }
        }
        writeln!(
            s,
            "\nmicroreboot beats reexec-only: {} ({} vs {} of {} detected)",
            self.microreboot_beats_reexec,
            self.total_recovered[2].1,
            self.total_recovered[1].1,
            self.total_detected
        )
        .unwrap();
        writeln!(
            s,
            "escalation caps respected: {} (every ladder terminated within its bound)",
            self.escalation_caps_respected
        )
        .unwrap();
        s
    }
}

/// Forest-vs-tree comparison at several vote thresholds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestReport {
    pub tree: ConfusionMatrix,
    /// (trees, vote threshold, metrics, total nodes)
    pub forests: Vec<(usize, usize, ConfusionMatrix, usize)>,
}

/// Train and compare.
pub fn forest_comparison(benchmarks: &[Benchmark], scale: &Scale, seed: u64) -> ForestReport {
    let ds = gather_dataset(benchmarks, scale, seed);
    let (train, test) = ds.split(3);
    let balanced = rebalance(&train, OVERSAMPLE_INCORRECT);
    let tree = DecisionTree::train(&balanced, &TrainConfig::random_tree(5, seed));
    let tree_cm = evaluate(&tree, &test);
    let mut forests = Vec::new();
    for (nr_trees, threshold) in [(9usize, 5usize), (9, 7), (15, 8), (15, 12)] {
        let mut cfg = ForestConfig::default_random_forest(5, seed);
        cfg.nr_trees = nr_trees;
        cfg.vote_threshold = Some(threshold);
        let forest = RandomForest::train(&balanced, &cfg);
        let cm = evaluate_forest(&forest, &test);
        forests.push((nr_trees, threshold, cm, forest.nr_nodes()));
    }
    ForestReport {
        tree: tree_cm,
        forests,
    }
}

impl ForestReport {
    pub fn render(&self) -> String {
        let mut s =
            String::from("Extension — random forest vs single random tree (SVIII direction)\n");
        writeln!(
            s,
            "{:<22} {:>9} {:>9} {:>9} {:>9}",
            "model", "accuracy", "FP rate", "recall", "nodes"
        )
        .unwrap();
        writeln!(
            s,
            "{:<22} {:>9} {:>9} {:>9} {:>9}",
            "single random tree",
            pct(self.tree.accuracy()),
            pct(self.tree.false_positive_rate()),
            pct(self.tree.detection_rate()),
            "-"
        )
        .unwrap();
        for (n, t, cm, nodes) in &self.forests {
            writeln!(
                s,
                "{:<22} {:>9} {:>9} {:>9} {:>9}",
                format!("forest {n} trees, vote {t}"),
                pct(cm.accuracy()),
                pct(cm.false_positive_rate()),
                pct(cm.detection_rate()),
                nodes
            )
            .unwrap();
        }
        s
    }
}

/// Per-register vulnerability report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VulnerabilityReport {
    pub rows: Vec<TargetRow>,
}

/// Classify which architectural targets hurt the hypervisor most.
pub fn register_vulnerability(
    benchmark: Benchmark,
    detector: Option<&VmTransitionDetector>,
    scale: &Scale,
    seed: u64,
) -> VulnerabilityReport {
    let cfg = CampaignConfig::paper(benchmark, scale.eval_injections * 2, seed);
    let res = run_campaign(&cfg, detector);
    VulnerabilityReport {
        rows: target_breakdown(&res.records),
    }
}

impl VulnerabilityReport {
    pub fn render(&self) -> String {
        let mut s =
            String::from("Extension — per-register vulnerability (flip target -> outcome)\n");
        writeln!(
            s,
            "{:<8} {:>10} {:>11} {:>12} {:>11}",
            "target", "injections", "manifested", "manif. rate", "escape rate"
        )
        .unwrap();
        for r in &self.rows {
            writeln!(
                s,
                "{:<8} {:>10} {:>11} {:>12} {:>11}",
                r.target,
                r.injections,
                r.manifested,
                pct(r.manifestation_rate()),
                pct(r.escape_rate())
            )
            .unwrap();
        }
        s
    }
}

/// Envelope-baseline comparison: the tree vs a per-VMER min/max anomaly
/// envelope trained on fault-free executions only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnvelopeReport {
    pub tree: ConfusionMatrix,
    /// (slack, metrics, trained vmers)
    pub envelopes: Vec<(u64, ConfusionMatrix, usize)>,
}

/// Compare the learned tree against envelope baselines at several slacks.
pub fn envelope_comparison(benchmarks: &[Benchmark], scale: &Scale, seed: u64) -> EnvelopeReport {
    let ds = gather_dataset(benchmarks, scale, seed);
    let (train, test) = ds.split(3);
    let balanced = rebalance(&train, OVERSAMPLE_INCORRECT);
    let tree = DecisionTree::train(&balanced, &TrainConfig::random_tree(5, seed));
    let tree_cm = evaluate(&tree, &test);

    // The envelope only learns from fault-free (correct) samples.
    let correct_trace: Vec<xentry::FeatureVec> = train
        .samples
        .iter()
        .filter(|s| s.label == mltree::Label::Correct)
        .map(|s| xentry::FeatureVec {
            vmer: s.features[0] as u16,
            rt: s.features[1],
            br: s.features[2],
            rm: s.features[3],
            wm: s.features[4],
        })
        .collect();
    let mut envelopes = Vec::new();
    for slack in [0u64, 8, 32, 128] {
        let env = xentry::EnvelopeDetector::train(&correct_trace, slack, 8);
        let mut cm = ConfusionMatrix::default();
        for s in &test.samples {
            let f = xentry::FeatureVec {
                vmer: s.features[0] as u16,
                rt: s.features[1],
                br: s.features[2],
                rm: s.features[3],
                wm: s.features[4],
            };
            cm.record(s.label, env.classify(&f));
        }
        envelopes.push((slack, cm, env.trained_vmers()));
    }
    EnvelopeReport {
        tree: tree_cm,
        envelopes,
    }
}

impl EnvelopeReport {
    pub fn render(&self) -> String {
        let mut s = String::from(
            "Extension — learned tree vs per-VMER min/max envelope baseline
",
        );
        writeln!(
            s,
            "{:<22} {:>9} {:>9} {:>9}",
            "model", "accuracy", "FP rate", "recall"
        )
        .unwrap();
        writeln!(
            s,
            "{:<22} {:>9} {:>9} {:>9}",
            "random tree",
            pct(self.tree.accuracy()),
            pct(self.tree.false_positive_rate()),
            pct(self.tree.detection_rate())
        )
        .unwrap();
        for (slack, cm, vmers) in &self.envelopes {
            writeln!(
                s,
                "{:<22} {:>9} {:>9} {:>9}   ({vmers} trained reasons)",
                format!("envelope slack {slack}"),
                pct(cm.accuracy()),
                pct(cm.false_positive_rate()),
                pct(cm.detection_rate())
            )
            .unwrap();
        }
        s
    }
}

/// The per-bit vulnerability map experiment: every fault model × every
/// workload, bucketed by (target × bit position × outcome class).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VulnmapReport {
    /// Workloads campaigned over (paper benchmark + the adversarial mix).
    pub workloads: Vec<String>,
    /// Fault-model classes represented in the map.
    pub models: Vec<String>,
    /// Total injections aggregated into the map.
    pub injections: usize,
    /// Populated (target, bit) cells.
    pub cells: usize,
    pub detected: usize,
    pub silent: usize,
    pub crash: usize,
    pub benign: usize,
    /// `target name -> bit position -> outcome counts`.
    pub map: VulnMap,
}

/// Build the per-bit vulnerability map: for each workload, one single-bit
/// register campaign plus one extended-model campaign (bursts, PTE
/// strikes, PMC strikes) over a *shared* golden trace, all merged into a
/// single `(register × bit-position) -> outcome` map.
pub fn vulnmap_experiment(
    workloads: &[Benchmark],
    detector: Option<&VmTransitionDetector>,
    scale: &Scale,
    seed: u64,
) -> VulnmapReport {
    let mut maps = Vec::new();
    let mut models = std::collections::BTreeSet::new();
    let mut injections = 0usize;
    for (i, &b) in workloads.iter().enumerate() {
        let mut cfg = CampaignConfig::paper(b, scale.eval_injections / 2, seed + i as u64 * 17);
        cfg.warmup = 40;
        let trace = golden_trace(&cfg, detector);
        let reg = run_campaign_with(&cfg, &trace, detector);
        let model = run_model_campaign_with(&cfg, &trace, detector);
        injections += reg.records.len() + model.records.len();
        if !reg.records.is_empty() {
            models.insert("reg".to_string());
        }
        for r in &model.records {
            models.insert(r.class.clone());
        }
        maps.push(vulnmap_from_records(&reg.records));
        maps.push(vulnmap_from_model_records(&model.records));
    }
    let map = merge_vulnmaps(maps);
    let (mut detected, mut silent, mut crash, mut benign, mut cells) = (0, 0, 0, 0, 0);
    for bits in map.values() {
        for c in bits.values() {
            cells += 1;
            detected += c.detected;
            silent += c.silent;
            crash += c.crash;
            benign += c.benign;
        }
    }
    VulnmapReport {
        workloads: workloads.iter().map(|b| b.name().to_string()).collect(),
        models: models.into_iter().collect(),
        injections,
        cells,
        detected,
        silent,
        crash,
        benign,
        map,
    }
}

impl VulnmapReport {
    pub fn render(&self) -> String {
        let mut s =
            String::from("Extension — per-bit vulnerability map (fault model x workload x bit)\n");
        writeln!(s, "vulnmap workloads: {}", self.workloads.join(" ")).unwrap();
        writeln!(s, "vulnmap models: {}", self.models.join(" ")).unwrap();
        writeln!(
            s,
            "vulnmap cells: {} ({} injections: {} detected, {} silent, {} crash, {} benign)",
            self.cells, self.injections, self.detected, self.silent, self.crash, self.benign
        )
        .unwrap();
        writeln!(
            s,
            "{:<14} {:>5} {:>10} {:>9} {:>7} {:>6} {:>17}",
            "target", "bits", "injections", "detected", "silent", "crash", "worst bit(escapes)"
        )
        .unwrap();
        for (target, bits) in &self.map {
            let injections: usize = bits.values().map(|c| c.total()).sum();
            let detected: usize = bits.values().map(|c| c.detected).sum();
            let silent: usize = bits.values().map(|c| c.silent).sum();
            let crash: usize = bits.values().map(|c| c.crash).sum();
            // Worst bit: the position whose strikes escaped detection the
            // most — ties broken toward the lower bit for determinism.
            let (worst, escapes) = bits
                .iter()
                .map(|(b, c)| (*b, c.silent + c.crash))
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                .unwrap_or((0, 0));
            writeln!(
                s,
                "{:<14} {:>5} {:>10} {:>9} {:>7} {:>6} {:>17}",
                target,
                bits.len(),
                injections,
                detected,
                silent,
                crash,
                format!("{worst} ({escapes})"),
            )
            .unwrap();
        }
        s
    }
}

/// Single- vs multi-bit comparison report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultibitReport {
    pub bits: usize,
    pub single: CoverageBreakdown,
    pub multi: CoverageBreakdown,
}

/// Paired single-bit vs `bits`-bit campaign: the beyond-ECC scenario.
pub fn multibit_comparison(
    benchmark: Benchmark,
    bits: usize,
    detector: Option<&VmTransitionDetector>,
    scale: &Scale,
    seed: u64,
) -> MultibitReport {
    let mut cfg = CampaignConfig::paper(benchmark, scale.eval_injections, seed);
    cfg.warmup = 40;
    let (single, multi) = multibit_study(&cfg, scale.eval_injections, bits, detector, seed + 5);
    MultibitReport {
        bits,
        single: coverage_breakdown(&single.records),
        multi: coverage_breakdown(&multi.records),
    }
}

impl MultibitReport {
    pub fn render(&self) -> String {
        let mut s = format!(
            "Extension — single-bit vs {}-bit upsets (paired injection points)
",
            self.bits
        );
        writeln!(
            s,
            "{:<12} {:>11} {:>9} {:>11}",
            "fault model", "manifested", "coverage", "undetected"
        )
        .unwrap();
        for (name, b) in [("1-bit", &self.single), ("k-bit", &self.multi)] {
            writeln!(
                s,
                "{:<12} {:>11} {:>9} {:>11}",
                name,
                b.manifested,
                pct(b.coverage()),
                pct(b.fraction(b.undetected))
            )
            .unwrap();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_experiment_compares_policies() {
        let scale = Scale {
            eval_injections: 160,
            ..Scale::quick()
        };
        let rep = recovery_experiment(&[Benchmark::Freqmine], None, &scale, 3);
        assert_eq!(rep.per_benchmark.len(), 1);
        assert_eq!(rep.policies, ["ignore-all", "reexec-only", "tiered"]);
        assert!(rep.total_detected > 10, "too few detections");
        assert!(rep.escalation_caps_respected);
        // Re-execution must beat doing nothing, and the microreboot tier
        // must recover faults re-execution alone cannot (the hv-mem
        // latent-corruption class).
        assert!(rep.total_recovered[1].1 > rep.total_recovered[0].1);
        assert!(rep.microreboot_beats_reexec, "{:?}", rep.total_recovered);
        let text = rep.render();
        assert!(text.contains("recovery rate"));
        assert!(text.contains("escalation caps respected: true"));
    }

    #[test]
    fn vulnmap_covers_models_and_workloads() {
        let scale = Scale {
            eval_injections: 120,
            ..Scale::quick()
        };
        let rep = vulnmap_experiment(&[Benchmark::Freqmine, Benchmark::IrqStorm], None, &scale, 7);
        assert_eq!(rep.workloads, ["freqmine", "irq-storm"]);
        for model in ["reg", "burst", "pte", "pmc"] {
            assert!(
                rep.models.iter().any(|m| m == model),
                "model {model} missing from {:?}",
                rep.models
            );
        }
        assert!(rep.cells > 10, "map too sparse: {} cells", rep.cells);
        assert_eq!(
            rep.injections,
            rep.detected + rep.silent + rep.crash + rep.benign,
            "every injection lands in exactly one outcome class"
        );
        let text = rep.render();
        assert!(text.contains("vulnmap models: burst pmc pte reg"));
        assert!(text.contains("vulnmap workloads: freqmine irq-storm"));
    }

    #[test]
    fn vulnerability_rip_is_highly_manifesting() {
        let scale = Scale {
            eval_injections: 150,
            ..Scale::quick()
        };
        let rep = register_vulnerability(Benchmark::Freqmine, None, &scale, 5);
        let rip = rep
            .rows
            .iter()
            .find(|r| r.target == "rip")
            .expect("rip row");
        // An instruction-pointer flip is live by definition.
        assert!(
            rip.manifestation_rate() > 0.5,
            "rip manifestation {:.2}",
            rip.manifestation_rate()
        );
        // RIP should be among the most vulnerable targets.
        let rank = rep.rows.iter().position(|r| r.target == "rip").unwrap();
        assert!(rank < 6, "rip ranked {rank}: {:?}", rep.rows);
    }
}
