//! Host agent: the wire-side companion of a local `FleetService`.
//!
//! One background thread per host maintains a session to the upstream
//! aggregator and, inside it, streams accounting summaries:
//!
//! ```text
//!          connect          HelloAck(credits)
//!  [backoff] ───► [hello sent] ───────► [streaming] ──► Bye on shutdown
//!      ▲               │ timeout            │ io error
//!      └───────────────┴────────────────────┘
//!        sleep min(base * 2^n, cap), counters keep accumulating
//! ```
//!
//! * **Credit-based backpressure**: each `Summary` consumes one credit;
//!   the aggregator returns credits as it absorbs them. Out of credit,
//!   the agent skips the tick (counted `throttled`) and heartbeats so
//!   liveness is still visible upstream.
//! * **Sequence-numbered sessions**: summaries carry a per-incarnation
//!   sequence number the aggregator uses to discard stale duplicates
//!   after a reconnect.
//! * **Counters outlive sessions**: summaries report the service's
//!   *cumulative* counters, so a reconnect needs no replay of missed
//!   ticks — the next summary supersedes everything lost with the
//!   session.
//! * **Model admission**: a `ModelPublish` from upstream goes through
//!   `hot_swap_validated` (structural + canary gate). Rejection keeps
//!   the incumbent serving — that *is* the local rollback — and reports
//!   the divergence upstream as a `ModelStatus`.

use crate::frame::{Frame, FrameReader, HostCounters, SummaryFrame};
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xentry::VmTransitionDetector;
use xentry_fleet::{lock_recovering, FleetService, ServiceSnapshot};

#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Wire identity; must match a host declared in the topology.
    pub host_id: u32,
    /// Monotonic per-process-lifetime counter: a restarted host connects
    /// with a higher incarnation, telling the aggregator to retire the
    /// previous incarnation's window.
    pub incarnation: u64,
    /// Aggregator address, e.g. `127.0.0.1:9190`.
    pub aggregator: String,
    /// How often a summary is offered (credit permitting).
    pub summary_interval: Duration,
    /// Heartbeat cadence while throttled or idle.
    pub heartbeat_interval: Duration,
    /// Reconnect backoff: base doubles per consecutive failure up to cap.
    pub reconnect_base: Duration,
    pub reconnect_cap: Duration,
    /// Socket read timeout — also the agent loop's tick granularity.
    pub read_timeout: Duration,
}

impl AgentConfig {
    pub fn new(host_id: u32, aggregator: impl Into<String>) -> AgentConfig {
        AgentConfig {
            host_id,
            incarnation: 1,
            aggregator: aggregator.into(),
            summary_interval: Duration::from_millis(20),
            heartbeat_interval: Duration::from_millis(100),
            reconnect_base: Duration::from_millis(20),
            reconnect_cap: Duration::from_secs(1),
            read_timeout: Duration::from_millis(25),
        }
    }
}

/// Observable agent state, also the agent's contribution to the child
/// report in distributed replays.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct AgentStatus {
    pub connected: bool,
    /// Successful sessions (first connect included).
    pub sessions: u64,
    /// Sessions after the first — the reconnect count.
    pub reconnects: u64,
    pub summaries_sent: u64,
    /// Summary ticks skipped for lack of credit.
    pub throttled: u64,
    pub credits: u32,
    pub last_seq: u64,
    /// Highest epoch admitted from upstream (0 = still on the locally
    /// deployed model).
    pub model_epoch: u64,
    pub model_fingerprint: u64,
    pub models_admitted: u64,
    pub models_rejected: u64,
}

struct AgentShared {
    service: Arc<FleetService>,
    status: Mutex<AgentStatus>,
    stop: AtomicBool,
}

/// Handle to the agent thread. Dropping without [`HostAgent::shutdown`]
/// stops the thread without the closing `Bye` (a dirty disconnect the
/// aggregator will reconcile).
pub struct HostAgent {
    shared: Arc<AgentShared>,
    handle: Option<JoinHandle<()>>,
}

impl HostAgent {
    pub fn start(service: Arc<FleetService>, cfg: AgentConfig) -> HostAgent {
        let shared = Arc::new(AgentShared {
            service,
            status: Mutex::new(AgentStatus::default()),
            stop: AtomicBool::new(false),
        });
        let shared2 = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("wire-agent-{}", cfg.host_id))
            .spawn(move || run(&shared2, &cfg))
            .expect("spawn agent thread");
        HostAgent {
            shared,
            handle: Some(handle),
        }
    }

    pub fn status(&self) -> AgentStatus {
        lock_recovering(&self.shared.status).clone()
    }

    /// Stop the agent: the session loop sends a final `Bye` carrying the
    /// settled counters, then the thread exits.
    pub fn shutdown(mut self) -> AgentStatus {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.status()
    }
}

impl Drop for HostAgent {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn counters_from(s: &ServiceSnapshot) -> HostCounters {
    HostCounters {
        ingested: s.ingested,
        classified: s.classified,
        lost: s.lost,
        dropped: s.dropped,
        incorrect: s.incorrect,
        in_flight: s.ingested.saturating_sub(s.classified + s.lost),
    }
}

fn run(shared: &AgentShared, cfg: &AgentConfig) {
    let mut backoff = cfg.reconnect_base;
    // The summary sequence is owned by the agent, not the session: it
    // keeps climbing across reconnects so the aggregator can order
    // summaries from different sessions of one incarnation.
    let mut seq: u64 = 0;
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match session(shared, cfg, &mut seq) {
            Ok(()) => return, // clean Bye sent
            Err(_) => {
                {
                    let mut st = lock_recovering(&shared.status);
                    st.connected = false;
                    st.credits = 0;
                }
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(cfg.reconnect_cap);
            }
        }
    }
}

/// One connect-to-disconnect session. Returns `Ok` only on a clean
/// shutdown (Bye sent); any error sends control back to the reconnect
/// loop.
fn session(shared: &AgentShared, cfg: &AgentConfig, seq: &mut u64) -> io::Result<()> {
    let mut stream = TcpStream::connect(&cfg.aggregator)?;
    xentry_fleet::net::configure_stream(
        &stream,
        Some(cfg.read_timeout),
        Some(Duration::from_secs(2)),
    )?;
    let mut reader = FrameReader::new();

    // `model_epoch` on the wire is the *aggregator's* epoch namespace:
    // 0 until this host admits a pushed model, never the local model
    // version (the two counters are unrelated).
    let (admitted_epoch, admitted_fp) = {
        let st = lock_recovering(&shared.status);
        (st.model_epoch, st.model_fingerprint)
    };
    let snapshot = shared.service.snapshot();
    crate::frame::write_frame(
        &mut stream,
        &Frame::Hello {
            host: cfg.host_id,
            incarnation: cfg.incarnation,
            last_seq: *seq,
            model_epoch: admitted_epoch,
            model_fingerprint: admitted_fp,
        },
    )?;
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut credits = match reader.poll_until(&mut stream, deadline)? {
        Frame::HelloAck { credits, .. } => credits,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected HelloAck, got {other:?}"),
            ))
        }
    };
    {
        let mut st = lock_recovering(&shared.status);
        st.connected = true;
        st.sessions += 1;
        if st.sessions > 1 {
            st.reconnects += 1;
        }
        st.credits = credits;
    }

    let mut last_summary = Instant::now() - cfg.summary_interval;
    let mut last_heartbeat = Instant::now();
    // Baselines for the per-summary delta windows.
    let mut window_classified = snapshot.classified;
    let mut window_incorrect = snapshot.incorrect;

    loop {
        if shared.stop.load(Ordering::Acquire) {
            let s = shared.service.snapshot();
            crate::frame::write_frame(
                &mut stream,
                &Frame::Bye {
                    counters: counters_from(&s),
                },
            )?;
            lock_recovering(&shared.status).connected = false;
            return Ok(());
        }

        // Drain whatever the aggregator sent; poll() blocks up to the
        // read timeout, which paces this loop.
        while let Some(frame) = reader.poll(&mut stream)? {
            match frame {
                Frame::Credit { grant } => {
                    credits = credits.saturating_add(grant);
                    lock_recovering(&shared.status).credits = credits;
                }
                Frame::ModelPublish {
                    epoch,
                    fingerprint,
                    json,
                } => {
                    let reply = admit_model(shared, epoch, fingerprint, &json);
                    crate::frame::write_frame(&mut stream, &reply)?;
                }
                Frame::Heartbeat { .. } | Frame::HelloAck { .. } => {}
                // Aggregator-bound frames echoed back would be a peer
                // bug; ignore rather than kill the session.
                _ => {}
            }
        }

        if last_summary.elapsed() >= cfg.summary_interval {
            if credits > 0 {
                let s = shared.service.snapshot();
                let (admitted_epoch, admitted_fp) = {
                    let st = lock_recovering(&shared.status);
                    (st.model_epoch, st.model_fingerprint)
                };
                *seq += 1;
                crate::frame::write_frame(
                    &mut stream,
                    &Frame::Summary(SummaryFrame {
                        seq: *seq,
                        counters: counters_from(&s),
                        model_epoch: admitted_epoch,
                        model_fingerprint: admitted_fp,
                        window_classified: s.classified.saturating_sub(window_classified),
                        window_incorrect: s.incorrect.saturating_sub(window_incorrect),
                        queue_p99_ns: s.queue_latency.p99,
                        classify_p99_ns: s.classify_latency.p99,
                    }),
                )?;
                window_classified = s.classified;
                window_incorrect = s.incorrect;
                credits -= 1;
                last_summary = Instant::now();
                let mut st = lock_recovering(&shared.status);
                st.summaries_sent += 1;
                st.credits = credits;
                st.last_seq = *seq;
            } else {
                lock_recovering(&shared.status).throttled += 1;
            }
        }
        if last_heartbeat.elapsed() >= cfg.heartbeat_interval {
            crate::frame::write_frame(&mut stream, &Frame::Heartbeat { sent_ns: 0 })?;
            last_heartbeat = Instant::now();
        }
    }
}

/// Gate a pushed model through the local validated-swap canary. Never
/// touches the serving slot on failure: the incumbent keeps serving,
/// which is the local rollback.
fn admit_model(shared: &AgentShared, epoch: u64, fingerprint: u64, json: &str) -> Frame {
    {
        let st = lock_recovering(&shared.status);
        if epoch <= st.model_epoch {
            // Already admitted (the aggregator re-pushes on reconnect).
            return Frame::ModelStatus {
                epoch,
                fingerprint,
                admitted: true,
                detail: "already admitted".to_string(),
            };
        }
    }
    let reject = |detail: String| {
        let mut st = lock_recovering(&shared.status);
        st.models_rejected += 1;
        Frame::ModelStatus {
            epoch,
            fingerprint,
            admitted: false,
            detail,
        }
    };
    let detector = match VmTransitionDetector::from_json(json) {
        Ok(d) => d,
        Err(e) => return reject(format!("undecodable model: {e}")),
    };
    if detector.fingerprint() != fingerprint {
        return reject(format!(
            "fingerprint mismatch: advertised {fingerprint:016x}, decoded {:016x}",
            detector.fingerprint()
        ));
    }
    match shared.service.hot_swap_validated(detector, false) {
        Ok(version) => {
            let mut st = lock_recovering(&shared.status);
            st.model_epoch = epoch;
            st.model_fingerprint = fingerprint;
            st.models_admitted += 1;
            Frame::ModelStatus {
                epoch,
                fingerprint,
                admitted: true,
                detail: format!("deployed as local version {version}"),
            }
        }
        Err(e) => reject(format!("canary rejected swap, incumbent retained: {e}")),
    }
}
