//! Length-prefixed binary frame codec for the fleet wire protocol.
//!
//! Every frame on the wire is:
//!
//! ```text
//!  offset  size  field
//!  0       4     magic  b"XWIR"
//!  4       1     version (currently 1)
//!  5       1     frame type
//!  6       2     reserved (must be zero)
//!  8       4     payload length, u32 little-endian
//!  12      n     payload (fixed-width integers, LE; length-prefixed blobs)
//! ```
//!
//! The codec is defensive by construction: the payload length is checked
//! against [`MAX_PAYLOAD`] *before* any allocation, every length-prefixed
//! blob inside a payload is checked against the bytes actually present,
//! and a payload that decodes short or leaves trailing bytes is rejected
//! (trailing garbage is how corruption hides). Decoding never panics on
//! any input — the proptest suite in `tests/frame_roundtrip.rs` holds the
//! codec to that.
//!
//! Stream reads go through [`FrameReader`], which buffers partial frames
//! so a read timeout mid-frame never desynchronizes the stream.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"XWIR";
/// Wire protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 12;
/// Hard cap on payload size (16 MiB) — checked before allocating, so an
/// adversarial length field cannot balloon memory.
pub const MAX_PAYLOAD: usize = 16 << 20;

/// Cumulative per-incarnation accounting counters, as maintained by the
/// local `FleetService` and reported upstream in every [`Frame::Summary`].
/// `in_flight` is the ingest-to-verdict window (`ingested - classified -
/// lost`); it is what the aggregator must reconcile when a session dies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HostCounters {
    pub ingested: u64,
    pub classified: u64,
    pub lost: u64,
    pub dropped: u64,
    pub incorrect: u64,
    pub in_flight: u64,
}

impl HostCounters {
    /// Field-wise sum (used when folding a retired incarnation into a
    /// host's totals).
    pub fn add(&self, other: &HostCounters) -> HostCounters {
        HostCounters {
            ingested: self.ingested + other.ingested,
            classified: self.classified + other.classified,
            lost: self.lost + other.lost,
            dropped: self.dropped + other.dropped,
            incorrect: self.incorrect + other.incorrect,
            in_flight: self.in_flight + other.in_flight,
        }
    }

    /// The per-host accounting identity the fleet-wide one is built from.
    pub fn identity_holds(&self) -> bool {
        self.ingested == self.classified + self.lost + self.in_flight
    }
}

/// One verdict/feature summary tick. Counters are cumulative for the
/// sending incarnation; `window_*` are deltas since the previous summary
/// (they survive reconnects because the agent, not the session, owns
/// them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SummaryFrame {
    pub seq: u64,
    pub counters: HostCounters,
    pub model_epoch: u64,
    pub model_fingerprint: u64,
    pub window_classified: u64,
    pub window_incorrect: u64,
    pub queue_p99_ns: u64,
    pub classify_p99_ns: u64,
}

/// Every message the wire carries. Hosts send `Hello`, `Summary`,
/// `Heartbeat`, `ModelStatus` and `Bye`; aggregators send `HelloAck`,
/// `Credit` and `ModelPublish`.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Session open: host identity plus where its counters stand, so the
    /// aggregator can resume or retire the previous session's window.
    Hello {
        host: u32,
        incarnation: u64,
        last_seq: u64,
        model_epoch: u64,
        model_fingerprint: u64,
    },
    /// Session accept: initial credit grant from the link budget and the
    /// aggregator's current published model, if any.
    HelloAck {
        credits: u32,
        resume_seq: u64,
        model_epoch: u64,
        model_fingerprint: u64,
    },
    /// Periodic accounting summary; consumes one credit.
    Summary(SummaryFrame),
    /// Backpressure: the aggregator returns credits as it absorbs
    /// summaries.
    Credit { grant: u32 },
    /// Fleet-wide model push: epoch + fingerprint + detector JSON. The
    /// host admits it only through `hot_swap_validated`.
    ModelPublish {
        epoch: u64,
        fingerprint: u64,
        json: String,
    },
    /// Host's verdict on a pushed model: admitted, or rejected by the
    /// canary (the divergence report).
    ModelStatus {
        epoch: u64,
        fingerprint: u64,
        admitted: bool,
        detail: String,
    },
    /// Keepalive while throttled or idle.
    Heartbeat { sent_ns: u64 },
    /// Clean close: final counters, in-flight already drained to zero if
    /// the host shut down properly.
    Bye { counters: HostCounters },
}

const TYPE_HELLO: u8 = 1;
const TYPE_HELLO_ACK: u8 = 2;
const TYPE_SUMMARY: u8 = 3;
const TYPE_CREDIT: u8 = 4;
const TYPE_MODEL_PUBLISH: u8 = 5;
const TYPE_MODEL_STATUS: u8 = 6;
const TYPE_HEARTBEAT: u8 = 7;
const TYPE_BYE: u8 = 8;

/// Why a buffer failed to decode. `Truncated` is recoverable (read more
/// bytes); everything else means the stream is corrupt and the session
/// must be torn down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Not enough bytes yet; `need` is the total length required.
    Truncated {
        need: usize,
    },
    BadMagic([u8; 4]),
    BadVersion(u8),
    BadReserved(u16),
    UnknownType(u8),
    /// Header advertises a payload larger than [`MAX_PAYLOAD`].
    Oversize {
        len: u64,
    },
    /// Payload present but malformed (short blob, trailing bytes, bad
    /// UTF-8, non-boolean flag...).
    BadPayload(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { need } => write!(f, "truncated frame: need {need} bytes"),
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            FrameError::BadReserved(r) => write!(f, "reserved header bits set ({r:#06x})"),
            FrameError::UnknownType(t) => write!(f, "unknown frame type {t}"),
            FrameError::Oversize { len } => {
                write!(f, "payload length {len} exceeds cap {MAX_PAYLOAD}")
            }
            FrameError::BadPayload(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Bounds-checked payload reader: every accessor validates against the
/// bytes actually present, so an adversarial inner length can neither
/// panic nor allocate past the received payload.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Rd<'a> {
        Rd { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.buf.len() - self.pos < n {
            return Err(FrameError::BadPayload("payload shorter than declared"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::BadPayload("non-UTF-8 string"))
    }

    fn counters(&mut self) -> Result<HostCounters, FrameError> {
        Ok(HostCounters {
            ingested: self.u64()?,
            classified: self.u64()?,
            lost: self.u64()?,
            dropped: self.u64()?,
            incorrect: self.u64()?,
            in_flight: self.u64()?,
        })
    }

    fn done(&self) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::BadPayload("trailing payload bytes"))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_counters(out: &mut Vec<u8>, c: &HostCounters) {
    put_u64(out, c.ingested);
    put_u64(out, c.classified);
    put_u64(out, c.lost);
    put_u64(out, c.dropped);
    put_u64(out, c.incorrect);
    put_u64(out, c.in_flight);
}

impl Frame {
    fn frame_type(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TYPE_HELLO,
            Frame::HelloAck { .. } => TYPE_HELLO_ACK,
            Frame::Summary(_) => TYPE_SUMMARY,
            Frame::Credit { .. } => TYPE_CREDIT,
            Frame::ModelPublish { .. } => TYPE_MODEL_PUBLISH,
            Frame::ModelStatus { .. } => TYPE_MODEL_STATUS,
            Frame::Heartbeat { .. } => TYPE_HEARTBEAT,
            Frame::Bye { .. } => TYPE_BYE,
        }
    }

    /// Serialize into one complete wire frame (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            Frame::Hello {
                host,
                incarnation,
                last_seq,
                model_epoch,
                model_fingerprint,
            } => {
                put_u32(&mut payload, *host);
                put_u64(&mut payload, *incarnation);
                put_u64(&mut payload, *last_seq);
                put_u64(&mut payload, *model_epoch);
                put_u64(&mut payload, *model_fingerprint);
            }
            Frame::HelloAck {
                credits,
                resume_seq,
                model_epoch,
                model_fingerprint,
            } => {
                put_u32(&mut payload, *credits);
                put_u64(&mut payload, *resume_seq);
                put_u64(&mut payload, *model_epoch);
                put_u64(&mut payload, *model_fingerprint);
            }
            Frame::Summary(s) => {
                put_u64(&mut payload, s.seq);
                put_counters(&mut payload, &s.counters);
                put_u64(&mut payload, s.model_epoch);
                put_u64(&mut payload, s.model_fingerprint);
                put_u64(&mut payload, s.window_classified);
                put_u64(&mut payload, s.window_incorrect);
                put_u64(&mut payload, s.queue_p99_ns);
                put_u64(&mut payload, s.classify_p99_ns);
            }
            Frame::Credit { grant } => put_u32(&mut payload, *grant),
            Frame::ModelPublish {
                epoch,
                fingerprint,
                json,
            } => {
                put_u64(&mut payload, *epoch);
                put_u64(&mut payload, *fingerprint);
                put_string(&mut payload, json);
            }
            Frame::ModelStatus {
                epoch,
                fingerprint,
                admitted,
                detail,
            } => {
                put_u64(&mut payload, *epoch);
                put_u64(&mut payload, *fingerprint);
                payload.push(u8::from(*admitted));
                put_string(&mut payload, detail);
            }
            Frame::Heartbeat { sent_ns } => put_u64(&mut payload, *sent_ns),
            Frame::Bye { counters } => put_counters(&mut payload, counters),
        }
        debug_assert!(payload.len() <= MAX_PAYLOAD);
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.frame_type());
        out.extend_from_slice(&0u16.to_le_bytes());
        put_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(&payload);
        out
    }

    /// Decode one frame from the front of `buf`. Returns the frame and
    /// the number of bytes consumed. [`FrameError::Truncated`] means
    /// "read more and retry"; any other error is fatal for the stream.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
        if buf.len() < HEADER_LEN {
            return Err(FrameError::Truncated { need: HEADER_LEN });
        }
        let magic: [u8; 4] = buf[0..4].try_into().unwrap();
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        if buf[4] != VERSION {
            return Err(FrameError::BadVersion(buf[4]));
        }
        let ty = buf[5];
        let reserved = u16::from_le_bytes(buf[6..8].try_into().unwrap());
        if reserved != 0 {
            return Err(FrameError::BadReserved(reserved));
        }
        let len = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
        if len > MAX_PAYLOAD {
            return Err(FrameError::Oversize { len: len as u64 });
        }
        let total = HEADER_LEN + len;
        if buf.len() < total {
            return Err(FrameError::Truncated { need: total });
        }
        let mut rd = Rd::new(&buf[HEADER_LEN..total]);
        let frame = match ty {
            TYPE_HELLO => Frame::Hello {
                host: rd.u32()?,
                incarnation: rd.u64()?,
                last_seq: rd.u64()?,
                model_epoch: rd.u64()?,
                model_fingerprint: rd.u64()?,
            },
            TYPE_HELLO_ACK => Frame::HelloAck {
                credits: rd.u32()?,
                resume_seq: rd.u64()?,
                model_epoch: rd.u64()?,
                model_fingerprint: rd.u64()?,
            },
            TYPE_SUMMARY => Frame::Summary(SummaryFrame {
                seq: rd.u64()?,
                counters: rd.counters()?,
                model_epoch: rd.u64()?,
                model_fingerprint: rd.u64()?,
                window_classified: rd.u64()?,
                window_incorrect: rd.u64()?,
                queue_p99_ns: rd.u64()?,
                classify_p99_ns: rd.u64()?,
            }),
            TYPE_CREDIT => Frame::Credit { grant: rd.u32()? },
            TYPE_MODEL_PUBLISH => Frame::ModelPublish {
                epoch: rd.u64()?,
                fingerprint: rd.u64()?,
                json: rd.string()?,
            },
            TYPE_MODEL_STATUS => Frame::ModelStatus {
                epoch: rd.u64()?,
                fingerprint: rd.u64()?,
                admitted: match rd.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(FrameError::BadPayload("non-boolean admitted flag")),
                },
                detail: rd.string()?,
            },
            TYPE_HEARTBEAT => Frame::Heartbeat { sent_ns: rd.u64()? },
            TYPE_BYE => Frame::Bye {
                counters: rd.counters()?,
            },
            other => return Err(FrameError::UnknownType(other)),
        };
        rd.done()?;
        Ok((frame, total))
    }
}

/// Write one frame to a stream.
pub fn write_frame(stream: &mut TcpStream, frame: &Frame) -> io::Result<()> {
    stream.write_all(&frame.encode())
}

/// Buffered incremental frame decoder for a `TcpStream` with a read
/// timeout. A timeout mid-frame leaves the partial bytes buffered, so
/// the next poll resumes exactly where the stream left off — `read_exact`
/// under a timeout would instead lose its place and desynchronize.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Return the next frame, reading from `stream` as needed. `Ok(None)`
    /// means the read timed out with no complete frame buffered — poll
    /// again. `Err` means EOF, I/O failure, or a corrupt stream.
    pub fn poll(&mut self, stream: &mut TcpStream) -> io::Result<Option<Frame>> {
        loop {
            match Frame::decode(&self.buf) {
                Ok((frame, used)) => {
                    self.buf.drain(..used);
                    return Ok(Some(frame));
                }
                Err(FrameError::Truncated { .. }) => {}
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e)),
            }
            let mut scratch = [0u8; 4096];
            match stream.read(&mut scratch) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed the connection",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&scratch[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Poll until a frame arrives or `deadline` passes (for handshakes,
    /// where "no answer" is an error rather than an idle tick).
    pub fn poll_until(
        &mut self,
        stream: &mut TcpStream,
        deadline: std::time::Instant,
    ) -> io::Result<Frame> {
        loop {
            if let Some(frame) = self.poll(stream)? {
                return Ok(frame);
            }
            if std::time::Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "timed out waiting for a frame",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                host: 3,
                incarnation: 2,
                last_seq: 41,
                model_epoch: 7,
                model_fingerprint: 0xdead_beef,
            },
            Frame::HelloAck {
                credits: 64,
                resume_seq: 41,
                model_epoch: 8,
                model_fingerprint: 0xfeed_f00d,
            },
            Frame::Summary(SummaryFrame {
                seq: 42,
                counters: HostCounters {
                    ingested: 1000,
                    classified: 990,
                    lost: 4,
                    dropped: 2,
                    incorrect: 1,
                    in_flight: 6,
                },
                model_epoch: 8,
                model_fingerprint: 0xfeed_f00d,
                window_classified: 120,
                window_incorrect: 0,
                queue_p99_ns: 1800,
                classify_p99_ns: 5400,
            }),
            Frame::Credit { grant: 1 },
            Frame::ModelPublish {
                epoch: 9,
                fingerprint: 0xabad_cafe,
                json: "{\"trees\":[]}".to_string(),
            },
            Frame::ModelStatus {
                epoch: 9,
                fingerprint: 0xabad_cafe,
                admitted: false,
                detail: "canary divergence on vector 17".to_string(),
            },
            Frame::Heartbeat { sent_ns: 123_456 },
            Frame::Bye {
                counters: HostCounters::default(),
            },
        ]
    }

    #[test]
    fn round_trips_every_frame_type() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            let (decoded, used) = Frame::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn decodes_back_to_back_frames() {
        let mut buf = Vec::new();
        for frame in sample_frames() {
            buf.extend_from_slice(&frame.encode());
        }
        let mut offset = 0;
        let mut count = 0;
        while offset < buf.len() {
            let (_, used) = Frame::decode(&buf[offset..]).unwrap();
            offset += used;
            count += 1;
        }
        assert_eq!(count, sample_frames().len());
    }

    #[test]
    fn truncation_reports_total_needed() {
        let bytes = Frame::Credit { grant: 5 }.encode();
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut]) {
                Err(FrameError::Truncated { need }) => assert!(need > cut),
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversize_length_is_rejected_before_buffering() {
        let mut bytes = Frame::Heartbeat { sent_ns: 1 }.encode();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::Oversize { .. })
        ));
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let mut bytes = Frame::Credit { grant: 1 }.encode();
        // Grow the declared payload by one byte and append it: a decoder
        // that ignores trailing bytes would silently accept corruption.
        let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) + 1;
        bytes[8..12].copy_from_slice(&len.to_le_bytes());
        bytes.push(0);
        assert_eq!(
            Frame::decode(&bytes),
            Err(FrameError::BadPayload("trailing payload bytes"))
        );
    }
}
