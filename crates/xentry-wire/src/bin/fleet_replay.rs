//! Load-replay driver for the fleet detection service.
//!
//! ```text
//! cargo run --release --bin fleet-replay -- [--quick] [--hosts N]
//!     [--shards K] [--records N] [--rate R] [--swap] [--chaos]
//!     [--workload] [--detector PATH] [--out DIR] [--distributed N]
//!     [--serve ADDR] [--self-scrape] [--trace-depth N] [--trace-overhead]
//! ```
//!
//! Replays activation traces from `--hosts` simulated platform instances
//! into a `--shards`-way service, optionally hot-swapping the model
//! mid-replay, then writes the metrics snapshot to `<out>/service.json`
//! and the flight trace to `<out>/trace.json` (open it in any Chrome
//! trace viewer, e.g. `ui.perfetto.dev`).
//!
//! `--serve ADDR` additionally exposes `/metrics` (Prometheus text
//! exposition), `/healthz` and `/trace` on `ADDR` for the lifetime of the
//! replay (`curl :9184/metrics`). `--self-scrape` scrapes that endpoint
//! in-process while the service is live, asserts the exposition parses
//! and the key per-shard/per-epoch series are present, and exits nonzero
//! on any violation — the CI smoke gate.
//!
//! `--trace-overhead` skips the plain replay and instead runs the
//! alternating traced/untraced self-accounting measurement
//! ([`xentry_fleet::overhead`]), writing `<out>/overhead.json`; exits
//! nonzero if the overhead misses the <3% budget.
//!
//! `--distributed N` spawns N host-agent child processes (this same
//! binary re-executed) plus an in-process aggregator on 127.0.0.1, runs
//! the loopback distributed replay — including a forced kill/restart of
//! host 0 and a wire-propagated model epoch — self-scrapes the
//! aggregator's `/metrics`, and writes the receipt to
//! `<out>/distributed.json`. Exits nonzero unless the fleet-wide
//! accounting identity is exact and the model converged on every host.
//!
//! With `--chaos` the replay instead runs the service-level chaos
//! harness ([`xentry_fleet::chaos`]): panicking detectors, corrupted
//! candidate arenas, stalled shards, and queue saturation are injected
//! into the live replay, the recovery invariants are checked, and the
//! process exits nonzero if any were violated.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use xentry::VmTransitionDetector;
use xentry_fleet::{
    replay, ChaosConfig, FleetConfig, FleetService, NullSink, OverheadConfig, ReplayConfig,
    SpanKind,
};

struct Args {
    hosts: usize,
    shards: usize,
    records_per_host: usize,
    rate_per_host: f64,
    queue_capacity: usize,
    batch: usize,
    swap: bool,
    chaos: bool,
    trace: TraceSource,
    detector: Option<PathBuf>,
    out: PathBuf,
    serve: Option<String>,
    self_scrape: bool,
    trace_depth: usize,
    trace_overhead: bool,
    distributed: Option<usize>,
    quick: bool,
}

/// Where replayed activations come from. `Auto` pairs the trace with the
/// deployed model: a campaign-trained model replays real platform
/// activations; the synthetic fallback model replays its own
/// distribution (mixing them makes every verdict a false positive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceSource {
    Auto,
    Workload,
    Synthetic,
}

impl Default for Args {
    fn default() -> Args {
        Args {
            hosts: 8,
            shards: 8,
            records_per_host: 250_000,
            rate_per_host: 0.0,
            queue_capacity: 8192,
            batch: 64,
            swap: false,
            chaos: false,
            trace: TraceSource::Auto,
            detector: None,
            out: PathBuf::from("results"),
            serve: None,
            self_scrape: false,
            trace_depth: FleetConfig::default().trace_depth,
            trace_overhead: false,
            distributed: None,
            quick: false,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |what: &str| -> String {
            it.next()
                .unwrap_or_else(|| die(&format!("{a} needs a {what}")))
        };
        match a.as_str() {
            "--quick" => {
                args.hosts = 4;
                args.shards = 4;
                args.records_per_host = 50_000;
                args.quick = true;
            }
            "--distributed" => {
                args.distributed = Some(
                    value("host count")
                        .parse()
                        .unwrap_or_else(|_| die("bad --distributed")),
                )
            }
            "--hosts" => {
                args.hosts = value("count")
                    .parse()
                    .unwrap_or_else(|_| die("bad --hosts"))
            }
            "--shards" => {
                args.shards = value("count")
                    .parse()
                    .unwrap_or_else(|_| die("bad --shards"))
            }
            "--records" => {
                args.records_per_host = value("count")
                    .parse()
                    .unwrap_or_else(|_| die("bad --records"))
            }
            "--rate" => {
                args.rate_per_host = value("records/s")
                    .parse()
                    .unwrap_or_else(|_| die("bad --rate"))
            }
            "--queue-capacity" => {
                args.queue_capacity = value("slots")
                    .parse()
                    .unwrap_or_else(|_| die("bad --queue-capacity"))
            }
            "--batch" => args.batch = value("size").parse().unwrap_or_else(|_| die("bad --batch")),
            "--swap" => args.swap = true,
            "--chaos" => args.chaos = true,
            "--workload" => args.trace = TraceSource::Workload,
            "--synthetic" => args.trace = TraceSource::Synthetic,
            "--detector" => args.detector = Some(PathBuf::from(value("path"))),
            "--out" => args.out = PathBuf::from(value("dir")),
            "--serve" => args.serve = Some(value("addr")),
            "--self-scrape" => args.self_scrape = true,
            "--trace-depth" => {
                args.trace_depth = value("events")
                    .parse()
                    .unwrap_or_else(|_| die("bad --trace-depth"))
            }
            "--trace-overhead" => args.trace_overhead = true,
            "--help" | "-h" => {
                println!(
                    "fleet-replay [--quick] [--hosts N] [--shards K] [--records N] \
                     [--rate R] [--queue-capacity N] [--batch N] [--swap] [--chaos] \
                     [--workload | --synthetic] [--detector PATH] [--out DIR] \
                     [--distributed N] [--serve ADDR] [--self-scrape] \
                     [--trace-depth N] [--trace-overhead]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    if args.shards == 0 {
        die("--shards must be at least 1");
    }
    if args.hosts == 0 {
        die("--hosts must be at least 1");
    }
    if args.batch == 0 {
        die("--batch must be at least 1");
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("fleet-replay: {msg}");
    std::process::exit(2);
}

/// Deployed model: explicit path, then the campaign-trained
/// `results/detector.json`, then a synthetic-data fallback.
fn load_detector(args: &Args) -> (VmTransitionDetector, &'static str) {
    let candidates = [
        args.detector.clone(),
        Some(PathBuf::from("results/detector.json")),
    ];
    for path in candidates.iter().flatten() {
        match std::fs::read_to_string(path) {
            Ok(json) => match VmTransitionDetector::from_json(&json) {
                Ok(det) => {
                    println!(
                        "deployed model: {} (fingerprint {:016x})",
                        path.display(),
                        det.fingerprint()
                    );
                    return (det, "file");
                }
                Err(e) => {
                    if args.detector.is_some() {
                        die(&format!("{}: {e}", path.display()))
                    }
                }
            },
            Err(_) if args.detector.is_none() => {}
            Err(e) => die(&format!("{}: {e}", path.display())),
        }
    }
    let det = xentry_fleet::replay::synthetic_detector(1);
    println!(
        "deployed model: synthetic fallback (fingerprint {:016x})",
        det.fingerprint()
    );
    (det, "synthetic")
}

/// `--chaos`: run the chaos harness instead of a plain replay. The
/// harness owns its own (synthetic-reference) service so every injected
/// fault has a reference classifier to check verdict parity against.
fn run_chaos_mode(args: &Args) -> ! {
    // Injected detector panics are expected and caught by the
    // supervisor; keep them to one line so the report stays readable.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.payload().downcast_ref::<String>().cloned();
        match msg.as_deref() {
            Some(m) if m.starts_with("chaos: injected") => eprintln!("[failpoint] {m}"),
            _ => default_hook(info),
        }
    }));
    let cfg = ChaosConfig {
        hosts: args.hosts,
        records_per_host: args.records_per_host,
        shards: args.shards,
        rate_per_host: if args.rate_per_host > 0.0 {
            args.rate_per_host
        } else {
            10_000.0
        },
        ..ChaosConfig::default()
    };
    println!(
        "chaos run: {} records x {} hosts into {} shards at {}/s/host...",
        cfg.records_per_host, cfg.hosts, cfg.shards, cfg.rate_per_host
    );
    let report = xentry_fleet::run_chaos(&cfg);
    let path = report
        .snapshot
        .write(&args.out)
        .expect("write service.json");
    println!();
    print!("{}", report.render());
    println!("snapshot:   {}", path.display());
    std::process::exit(if report.is_clean() { 0 } else { 1 });
}

/// `--trace-overhead`: measure the observability layer's own cost
/// instead of running a plain replay. Exits nonzero when the measured
/// throughput regression misses the <3% budget.
fn run_overhead_mode(args: &Args) -> ! {
    let cfg = OverheadConfig {
        shards: args.shards,
        hosts: args.hosts,
        records_per_host: args.records_per_host,
        trace_depth: args.trace_depth.max(2),
        ..OverheadConfig::default()
    };
    println!(
        "overhead run: {} pairs of untraced/traced legs, {} records x {} hosts \
         into {} shards each...",
        cfg.pairs, cfg.records_per_host, cfg.hosts, cfg.shards
    );
    let report = xentry_fleet::measure_overhead(&cfg);
    let path = report.write(&args.out).expect("write overhead.json");
    println!("{}", report.render());
    println!("overhead:   {}", path.display());
    std::process::exit(if report.within_budget { 0 } else { 1 });
}

/// `--self-scrape`: hit the live scrape endpoint in-process and assert
/// the exposition is parseable and the key series exist. Any failure
/// kills the run — this is the CI gate on the telemetry surface.
fn self_scrape(addr: std::net::SocketAddr, shards: usize) {
    let (status, health) =
        xentry_fleet::http_get(addr, "/healthz").unwrap_or_else(|e| die(&format!("/healthz: {e}")));
    if status != 200 || !health.contains("\"status\"") {
        die(&format!("/healthz unhealthy: {status} {health}"));
    }
    let (status, body) =
        xentry_fleet::http_get(addr, "/metrics").unwrap_or_else(|e| die(&format!("/metrics: {e}")));
    if status != 200 {
        die(&format!("/metrics returned {status}"));
    }
    let samples = xentry_fleet::parse_exposition(&body)
        .unwrap_or_else(|e| die(&format!("/metrics exposition does not parse: {e}")));
    let series = |name: &str| samples.iter().filter(|(n, _, _)| n == name).count();
    for required in [
        "xentry_fleet_ingested_total",
        "xentry_fleet_classified_total",
        "xentry_fleet_trace_events_total",
        "xentry_fleet_queue_latency_ns_bucket",
        "xentry_fleet_queue_latency_ns_sum",
        "xentry_fleet_queue_latency_ns_count",
        "xentry_fleet_classify_latency_ns_count",
    ] {
        if series(required) == 0 {
            die(&format!("/metrics is missing series {required}"));
        }
    }
    if series("xentry_fleet_shard_classified_total") != shards {
        die(&format!(
            "expected one xentry_fleet_shard_classified_total sample per shard ({shards}), got {}",
            series("xentry_fleet_shard_classified_total")
        ));
    }
    if series("xentry_fleet_epoch_verdicts_total") == 0 {
        die("no per-epoch verdict series yet — scrape raced the first batch?");
    }
    println!(
        "self-scrape: /metrics ok ({} samples, {} shard series, {} epoch series), /healthz ok",
        samples.len(),
        series("xentry_fleet_shard_classified_total"),
        series("xentry_fleet_epoch_verdicts_total"),
    );
}

/// `--distributed N`: hand the run to the multi-process loopback
/// harness, with this binary re-executed as the host-child image.
fn run_distributed_mode(args: &Args) -> ! {
    let n = args.distributed.unwrap_or(4);
    if n == 0 {
        die("--distributed needs at least 1 host");
    }
    let mut cfg = xentry_wire::DistributedConfig::quick(n);
    if !args.quick {
        cfg.records_per_host = args.records_per_host;
        cfg.rate_per_host = args.rate_per_host;
        cfg.shards_per_host = args.shards;
    }
    cfg.out = args.out.clone();
    println!(
        "distributed replay: {n} host processes x {} records at {}/s, \
         {} shards each; kill/restart host {:?}, model push {}",
        cfg.records_per_host,
        cfg.rate_per_host,
        cfg.shards_per_host,
        cfg.kill_restart_host,
        cfg.publish_model,
    );
    let report = xentry_wire::run_distributed(&cfg)
        .unwrap_or_else(|e| die(&format!("distributed run: {e}")));
    let path = report.write(&cfg.out).expect("write distributed.json");
    println!();
    print!("{}", report.render());
    println!(
        "scrape:     /metrics ok={} ({} samples, {} host series)",
        report.scrape.ok, report.scrape.samples, report.scrape.host_series
    );
    println!("receipt:    {}", path.display());
    std::process::exit(if report.is_clean() { 0 } else { 1 });
}

fn main() {
    // Re-executed as a distributed host child? Run that and exit.
    if xentry_wire::maybe_child_main() {
        return;
    }
    let args = parse_args();
    if args.distributed.is_some() {
        run_distributed_mode(&args);
    }
    if args.chaos {
        run_chaos_mode(&args);
    }
    if args.trace_overhead {
        run_overhead_mode(&args);
    }
    let (detector, source) = load_detector(&args);
    // A retrained model for the mid-replay swap: JSON round-trip of the
    // deployed one, so behavior is identical but the deployment epoch
    // advances (the common "same tree, fresh training run" case).
    let swap_model = VmTransitionDetector::from_json(&detector.to_json()).expect("round trip");

    let use_workload = match args.trace {
        TraceSource::Workload => true,
        TraceSource::Synthetic => false,
        TraceSource::Auto => source == "file",
    };
    let trace = if use_workload {
        println!("collecting workload trace from the simulated platform...");
        xentry_fleet::replay::workload_trace(guest_sim::Benchmark::Postmark, 4096, 21)
    } else {
        xentry_fleet::replay::synthetic_trace(65_536, 7)
    };

    let cfg = FleetConfig {
        shards: args.shards,
        queue_capacity: args.queue_capacity,
        batch: args.batch,
        recorder_depth: 32,
        trace_depth: args.trace_depth,
        ..FleetConfig::default()
    };
    let svc = FleetService::start(cfg, detector, Arc::new(NullSink));
    // `--self-scrape` without `--serve` binds an ephemeral local port.
    let serve_addr = args
        .serve
        .clone()
        .or_else(|| args.self_scrape.then(|| "127.0.0.1:0".to_string()));
    let telemetry = serve_addr.map(|addr| {
        let server = svc
            .serve_telemetry(addr.as_str())
            .unwrap_or_else(|e| die(&format!("--serve {addr}: {e}")));
        println!(
            "telemetry:  http://{}/metrics (also /healthz, /trace)",
            server.addr()
        );
        server
    });
    let replay_cfg = ReplayConfig {
        hosts: args.hosts,
        records_per_host: args.records_per_host,
        rate_per_host: args.rate_per_host,
    };
    println!(
        "replaying {} records x {} hosts into {} shards ({}, rate {})...",
        args.records_per_host,
        args.hosts,
        args.shards,
        source,
        if args.rate_per_host > 0.0 {
            format!("{}/s/host", args.rate_per_host)
        } else {
            "unthrottled".into()
        },
    );

    let report = std::thread::scope(|s| {
        let svc_ref = &svc;
        let swapper = args.swap.then(|| {
            s.spawn(move || {
                // Deploy the retrained model while the replay is in
                // flight.
                std::thread::sleep(Duration::from_millis(50));
                let v = svc_ref.hot_swap(swap_model);
                println!("hot-swapped model mid-replay -> version {v}");
            })
        });
        let report = replay(svc_ref, &trace, &replay_cfg);
        if let Some(h) = swapper {
            h.join().expect("swapper panicked");
        }
        report
    });

    // Scrape while the service is still live (the endpoint serves the
    // running counters, not a post-mortem).
    if args.self_scrape {
        let server = telemetry.as_ref().expect("self-scrape started a server");
        self_scrape(server.addr(), args.shards);
    }

    let tracer = svc.tracer();
    let snapshot = svc.shutdown();
    let path = snapshot.write(&args.out).expect("write service.json");

    // Post-join the rings are quiescent: export the flight trace and
    // verify at least one record's full ingest -> classify -> verdict
    // chain survived ring overflow.
    let trace_path = args.out.join("trace.json");
    xentry_fleet::write_atomic(&trace_path, &tracer.export_chrome()).expect("write trace.json");
    let chain_id = {
        let events = tracer.events();
        let mut batch_seen = false;
        let mut ingest = std::collections::HashSet::new();
        let mut chain = 0u64;
        for e in &events {
            match e.kind {
                SpanKind::BatchClassify => batch_seen = true,
                SpanKind::Ingest if e.trace_id != 0 => {
                    ingest.insert(e.trace_id);
                }
                SpanKind::Verdict if chain == 0 && ingest.contains(&e.trace_id) => {
                    chain = e.trace_id;
                }
                _ => {}
            }
        }
        if batch_seen {
            chain
        } else {
            0
        }
    };
    if tracer.enabled() && chain_id == 0 {
        die("trace.json covers no complete ingest->classify->verdict chain");
    }
    drop(telemetry);

    let secs = report.wall_ns as f64 / 1e9;
    println!();
    println!(
        "replay:     {} sent in {:.2}s ({:.0}/s offered)",
        report.sent, secs, report.offered_per_sec
    );
    println!(
        "service:    {} classified ({:.0}/s), {} dropped ({:.3}%)",
        snapshot.classified,
        snapshot.classified as f64 / secs,
        snapshot.dropped,
        100.0 * snapshot.dropped as f64 / report.sent.max(1) as f64,
    );
    println!(
        "verdicts:   {} incorrect, {} incident dumps, model v{} ({} swaps)",
        snapshot.incorrect, snapshot.incidents, snapshot.model_version, snapshot.swaps
    );
    println!(
        "latency:    queue p50 {}ns p99 {}ns | classify p50 {}ns p99 {}ns",
        snapshot.queue_latency.p50,
        snapshot.queue_latency.p99,
        snapshot.classify_latency.p50,
        snapshot.classify_latency.p99,
    );
    if tracer.enabled() {
        println!(
            "trace:      {} events ({} overflowed), chain verified for trace id {} -> {}",
            snapshot.trace_events,
            snapshot.trace_dropped,
            chain_id,
            trace_path.display(),
        );
    }
    println!("snapshot:   {}", path.display());
}
