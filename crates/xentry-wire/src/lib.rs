//! # xentry-wire — the distributed tier of the fleet
//!
//! `xentry-fleet` scales the paper's per-hypervisor detector to many
//! hosts inside one process. This crate scales it across processes and
//! machines: each host runs its own `FleetService` wrapped by a
//! [`HostAgent`], and a regional [`Aggregator`] merges the fleet-wide
//! picture over a std-only wire protocol.
//!
//! ```text
//!   host process 0..N                      aggregator process
//!  ┌──────────────────┐  Summary/credit   ┌───────────────────┐
//!  │ FleetService     │ ────────────────► │ per-host windows  │
//!  │   ▲              │  ModelPublish     │ merge + reconcile │
//!  │ HostAgent ◄──────┼────────────────── │ model epochs      │──► /metrics
//!  │  (reconnect,     │  ModelStatus      │ (xentry_agg_*)    │    distributed.json
//!  │   backpressure)  │ ────────────────► └───────────────────┘
//!  └──────────────────┘   length-prefixed frames over TCP
//! ```
//!
//! * [`frame`] — the length-prefixed binary codec (magic + version +
//!   type + payload) and the timeout-safe [`FrameReader`].
//! * [`topology`] — declarative hosts→aggregators config, statically
//!   validated (no cycles, no orphan hosts, budgets within capacity).
//! * [`agent`] — the host-side session: credit-based backpressure,
//!   sequence-numbered summaries, exponential-backoff reconnect, and
//!   model admission through `hot_swap_validated`.
//! * [`aggregator`] — merges cumulative per-host counters so
//!   `ingested == classified + lost` holds fleet-wide even across
//!   disconnects (stranded in-flight windows are reconciled, never
//!   silently dropped), and publishes model epochs down every session.
//! * [`distributed`] — the loopback multi-process harness behind
//!   `fleet-replay --distributed N` and `figures -- distributed`.

pub mod agent;
pub mod aggregator;
pub mod distributed;
pub mod frame;
pub mod topology;

pub use agent::{AgentConfig, AgentStatus, HostAgent};
pub use aggregator::{
    render_aggregator_prometheus, Aggregator, AggregatorSnapshot, FleetRollup, HostSnapshot,
};
pub use distributed::{
    maybe_child_main, run_distributed, ChildReport, DistributedConfig, DistributedReport,
    CHILD_SENTINEL,
};
pub use frame::{Frame, FrameError, FrameReader, HostCounters, SummaryFrame};
pub use topology::{AggregatorSpec, FleetTopology, HostSpec, LinkSpec, TopologyError};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    use xentry_fleet::{replay, FleetConfig, FleetService, NullSink};

    fn local_service(shards: usize) -> Arc<FleetService> {
        let cfg = FleetConfig {
            shards,
            trace_depth: 0,
            ..FleetConfig::default()
        };
        Arc::new(FleetService::start(
            cfg,
            replay::synthetic_detector(1),
            Arc::new(NullSink),
        ))
    }

    fn wait_until(what: &str, timeout: Duration, mut pred: impl FnMut() -> bool) {
        let t0 = Instant::now();
        while !pred() {
            assert!(t0.elapsed() < timeout, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// In-process end-to-end: one agent, one aggregator, summaries
    /// merged, model pushed and admitted, clean Bye.
    #[test]
    fn agent_and_aggregator_converge_in_process() {
        let topology = FleetTopology::star(1, 16);
        let agg = Aggregator::start(&topology, "agg0", "127.0.0.1:0").unwrap();
        let svc = local_service(2);
        let agent = HostAgent::start(
            Arc::clone(&svc),
            AgentConfig::new(0, agg.addr().to_string()),
        );

        let trace = replay::synthetic_trace(2048, 3);
        replay::replay(
            &svc,
            &trace,
            &xentry_fleet::ReplayConfig {
                hosts: 2,
                records_per_host: 4096,
                rate_per_host: 0.0,
            },
        );
        // Wait for a *drained* summary (in-flight window closed), so the
        // final Bye counters match the local shutdown snapshot exactly —
        // a Bye with records still in flight is legal but folds them
        // into `lost` while the local service goes on to classify them.
        wait_until("drained summary", Duration::from_secs(10), || {
            let h = &agg.snapshot().hosts[0];
            h.counters.ingested == 8192 && h.counters.in_flight == 0
        });

        let retrained = replay::synthetic_detector(42);
        let fingerprint = retrained.fingerprint();
        let epoch = agg.publish_model(retrained.to_json(), fingerprint);
        wait_until("model admission", Duration::from_secs(10), || {
            agg.snapshot().hosts[0].model_epoch == epoch
        });
        assert_eq!(agent.status().models_admitted, 1);

        let status = agent.shutdown();
        assert!(status.summaries_sent > 0);
        assert_eq!(status.model_fingerprint, fingerprint);
        wait_until("clean bye", Duration::from_secs(5), || {
            agg.snapshot().hosts[0].clean_bye
        });

        let svc = Arc::try_unwrap(svc).ok().expect("sole owner");
        let local = svc.shutdown();
        let snap = agg.shutdown();
        assert!(snap.accounting_identity());
        assert_eq!(snap.fleet.ingested, local.ingested);
        assert_eq!(snap.fleet.classified, local.classified);
        assert_eq!(snap.fleet.lost, local.lost);
        assert!(snap.model_converged());
        assert_eq!(snap.fleet.model_divergences, 0);
    }

    /// A garbage (undecodable) model push is rejected by the admission
    /// gate; the incumbent keeps serving and the divergence is counted
    /// upstream.
    #[test]
    fn rejected_model_reports_divergence_upstream() {
        let topology = FleetTopology::star(1, 16);
        let agg = Aggregator::start(&topology, "agg0", "127.0.0.1:0").unwrap();
        let svc = local_service(1);
        let before = svc.model_fingerprint();
        let agent = HostAgent::start(
            Arc::clone(&svc),
            AgentConfig::new(0, agg.addr().to_string()),
        );
        wait_until("host up", Duration::from_secs(10), || {
            agg.snapshot().fleet.hosts_up == 1
        });

        agg.publish_model("{\"not\":\"a detector\"}".to_string(), 0xbad);
        wait_until("divergence report", Duration::from_secs(10), || {
            agg.snapshot().fleet.model_divergences == 1
        });
        let status = agent.shutdown();
        assert_eq!(status.models_rejected, 1);
        assert_eq!(status.models_admitted, 0);
        // The incumbent kept serving: that is the local rollback.
        assert_eq!(svc.model_fingerprint(), before);
        let snap = agg.shutdown();
        assert_eq!(snap.hosts[0].divergences, 1);
        assert!(!snap.model_converged());
    }

    /// An agent pointed at a dead port keeps backing off, then converges
    /// once the aggregator appears late.
    #[test]
    fn agent_reconnects_after_late_aggregator() {
        // Reserve a port, start the agent against it, then free it and
        // bind the aggregator there after the agent has failed a few
        // connects.
        let placeholder = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = placeholder.local_addr().unwrap();
        drop(placeholder);

        let svc = local_service(1);
        let agent = HostAgent::start(Arc::clone(&svc), AgentConfig::new(0, addr.to_string()));
        std::thread::sleep(Duration::from_millis(100));
        assert!(!agent.status().connected);

        let topology = FleetTopology::star(1, 16);
        let agg = Aggregator::start(&topology, "agg0", addr).unwrap();
        wait_until("late connect", Duration::from_secs(10), || {
            agg.snapshot().fleet.hosts_up == 1
        });
        agent.shutdown();
        let snap = agg.shutdown();
        assert!(snap.accounting_identity());
    }

    /// A session that dies without a Bye strands its in-flight window;
    /// finalization folds it into `lost` and the identity stays exact.
    #[test]
    fn finalize_reconciles_a_dirty_disconnect() {
        use crate::frame::{write_frame, Frame, FrameReader, SummaryFrame};
        let topology = FleetTopology::star(1, 16);
        let agg = Aggregator::start(&topology, "agg0", "127.0.0.1:0").unwrap();

        // Hand-rolled host: handshake, one summary with in-flight, then
        // vanish (no Bye).
        let mut stream = std::net::TcpStream::connect(agg.addr()).unwrap();
        xentry_fleet::net::configure_stream(
            &stream,
            Some(Duration::from_millis(50)),
            Some(Duration::from_secs(2)),
        )
        .unwrap();
        write_frame(
            &mut stream,
            &Frame::Hello {
                host: 0,
                incarnation: 1,
                last_seq: 0,
                model_epoch: 0,
                model_fingerprint: 0,
            },
        )
        .unwrap();
        let mut reader = FrameReader::new();
        let ack = reader
            .poll_until(&mut stream, Instant::now() + Duration::from_secs(5))
            .unwrap();
        assert!(matches!(ack, Frame::HelloAck { .. }));
        write_frame(
            &mut stream,
            &Frame::Summary(SummaryFrame {
                seq: 1,
                counters: HostCounters {
                    ingested: 100,
                    classified: 90,
                    lost: 2,
                    dropped: 1,
                    incorrect: 0,
                    in_flight: 8,
                },
                ..SummaryFrame::default()
            }),
        )
        .unwrap();
        wait_until("summary merged", Duration::from_secs(5), || {
            agg.snapshot().fleet.summaries == 1
        });
        drop(stream); // dirty disconnect

        wait_until("host marked down", Duration::from_secs(5), || {
            agg.snapshot().fleet.hosts_up == 0
        });
        let snap = agg.shutdown(); // finalizes
        assert_eq!(snap.fleet.ingested, 100);
        assert_eq!(snap.fleet.classified, 90);
        // 2 host-reported + 8 reconciled from the stranded window.
        assert_eq!(snap.fleet.lost, 10);
        assert_eq!(snap.fleet.reconciled_lost, 8);
        assert_eq!(snap.fleet.in_flight, 0);
        assert!(snap.accounting_identity());
    }

    /// A connection from a host the topology never declared is refused.
    #[test]
    fn undeclared_host_is_rejected() {
        use crate::frame::{write_frame, Frame};
        let topology = FleetTopology::star(1, 16);
        let agg = Aggregator::start(&topology, "agg0", "127.0.0.1:0").unwrap();
        let mut stream = std::net::TcpStream::connect(agg.addr()).unwrap();
        write_frame(
            &mut stream,
            &Frame::Hello {
                host: 99,
                incarnation: 1,
                last_seq: 0,
                model_epoch: 0,
                model_fingerprint: 0,
            },
        )
        .unwrap();
        wait_until("rejection", Duration::from_secs(5), || {
            agg.snapshot().fleet.rejected_connections == 1
        });
        let snap = agg.shutdown();
        assert_eq!(snap.fleet.sessions, 0);
    }
}
