//! Declarative fleet topology: which hosts report to which aggregators,
//! and with what per-link credit budget.
//!
//! The config is validated at load in the spirit of ARINC-653 virtual
//! links: every channel is declared up front with a bounded budget, and
//! a config that could deadlock, orphan a host, or oversubscribe an
//! aggregator is rejected before anything binds a socket. Checks:
//!
//! * names are unique across hosts and aggregators; host ids are unique
//! * every link connects a declared endpoint to a declared *aggregator*
//!   (hosts only send), carries a nonzero credit budget, and is not a
//!   self-loop
//! * every host has exactly one upstream link (no orphans, no
//!   multi-homing)
//! * aggregator→aggregator links form no cycle (the relay tier is a DAG)
//! * the credit budgets of an aggregator's inbound links sum within its
//!   declared capacity

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostSpec {
    pub name: String,
    /// Wire identity; must match the `host` field of the agent's Hello.
    pub id: u32,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregatorSpec {
    pub name: String,
    /// Total credits this aggregator may have outstanding across all
    /// inbound links.
    pub capacity: u32,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSpec {
    pub from: String,
    pub to: String,
    /// Credit budget: summaries the sender may have unacknowledged.
    pub credits: u32,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetTopology {
    pub hosts: Vec<HostSpec>,
    pub aggregators: Vec<AggregatorSpec>,
    pub links: Vec<LinkSpec>,
}

/// One reason a topology is invalid. `validate` returns all of them, not
/// just the first — a config file gets fixed in one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    DuplicateName(String),
    DuplicateHostId(u32),
    UnknownEndpoint {
        link: usize,
        name: String,
    },
    LinkIntoHost {
        link: usize,
        name: String,
    },
    SelfLink {
        link: usize,
    },
    ZeroCredits {
        link: usize,
    },
    OrphanHost(String),
    MultiHomedHost(String),
    Cycle(Vec<String>),
    OverCommitted {
        aggregator: String,
        capacity: u32,
        committed: u64,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::DuplicateName(n) => write!(f, "duplicate node name {n:?}"),
            TopologyError::DuplicateHostId(id) => write!(f, "duplicate host id {id}"),
            TopologyError::UnknownEndpoint { link, name } => {
                write!(f, "link {link} references undeclared node {name:?}")
            }
            TopologyError::LinkIntoHost { link, name } => {
                write!(f, "link {link} targets host {name:?} (hosts only send)")
            }
            TopologyError::SelfLink { link } => write!(f, "link {link} is a self-loop"),
            TopologyError::ZeroCredits { link } => {
                write!(f, "link {link} has a zero credit budget")
            }
            TopologyError::OrphanHost(n) => write!(f, "host {n:?} has no upstream link"),
            TopologyError::MultiHomedHost(n) => {
                write!(f, "host {n:?} has more than one upstream link")
            }
            TopologyError::Cycle(path) => write!(f, "aggregator cycle: {}", path.join(" -> ")),
            TopologyError::OverCommitted {
                aggregator,
                capacity,
                committed,
            } => write!(
                f,
                "aggregator {aggregator:?} capacity {capacity} oversubscribed: \
                 inbound budgets sum to {committed}"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

impl FleetTopology {
    /// The loopback default: `n` hosts (`host0..`, ids `0..`), one
    /// aggregator `agg0` sized exactly to the sum of the link budgets.
    pub fn star(n: usize, credits_per_host: u32) -> FleetTopology {
        FleetTopology {
            hosts: (0..n)
                .map(|i| HostSpec {
                    name: format!("host{i}"),
                    id: i as u32,
                })
                .collect(),
            aggregators: vec![AggregatorSpec {
                name: "agg0".to_string(),
                capacity: credits_per_host.saturating_mul(n as u32),
            }],
            links: (0..n)
                .map(|i| LinkSpec {
                    from: format!("host{i}"),
                    to: "agg0".to_string(),
                    credits: credits_per_host,
                })
                .collect(),
        }
    }

    /// Run every static check; returns all violations found.
    pub fn validate(&self) -> Result<(), Vec<TopologyError>> {
        let mut errors = Vec::new();

        let mut names = BTreeSet::new();
        let mut host_names = BTreeSet::new();
        let mut agg_names = BTreeSet::new();
        let mut host_ids = BTreeSet::new();
        for h in &self.hosts {
            if !names.insert(h.name.clone()) {
                errors.push(TopologyError::DuplicateName(h.name.clone()));
            }
            host_names.insert(h.name.clone());
            if !host_ids.insert(h.id) {
                errors.push(TopologyError::DuplicateHostId(h.id));
            }
        }
        for a in &self.aggregators {
            if !names.insert(a.name.clone()) {
                errors.push(TopologyError::DuplicateName(a.name.clone()));
            }
            agg_names.insert(a.name.clone());
        }

        let mut upstreams: BTreeMap<&str, usize> = BTreeMap::new();
        let mut committed: BTreeMap<&str, u64> = BTreeMap::new();
        let mut agg_edges: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (i, l) in self.links.iter().enumerate() {
            for end in [&l.from, &l.to] {
                if !names.contains(end) {
                    errors.push(TopologyError::UnknownEndpoint {
                        link: i,
                        name: end.clone(),
                    });
                }
            }
            if host_names.contains(&l.to) {
                errors.push(TopologyError::LinkIntoHost {
                    link: i,
                    name: l.to.clone(),
                });
            }
            if l.from == l.to {
                errors.push(TopologyError::SelfLink { link: i });
            }
            if l.credits == 0 {
                errors.push(TopologyError::ZeroCredits { link: i });
            }
            if host_names.contains(&l.from) {
                *upstreams.entry(l.from.as_str()).or_insert(0) += 1;
            }
            if agg_names.contains(&l.to) {
                *committed.entry(l.to.as_str()).or_insert(0) += u64::from(l.credits);
            }
            if agg_names.contains(&l.from) && agg_names.contains(&l.to) && l.from != l.to {
                agg_edges.entry(l.from.as_str()).or_default().push(&l.to);
            }
        }

        for h in &self.hosts {
            match upstreams.get(h.name.as_str()).copied().unwrap_or(0) {
                0 => errors.push(TopologyError::OrphanHost(h.name.clone())),
                1 => {}
                _ => errors.push(TopologyError::MultiHomedHost(h.name.clone())),
            }
        }

        for a in &self.aggregators {
            let sum = committed.get(a.name.as_str()).copied().unwrap_or(0);
            if sum > u64::from(a.capacity) {
                errors.push(TopologyError::OverCommitted {
                    aggregator: a.name.clone(),
                    capacity: a.capacity,
                    committed: sum,
                });
            }
        }

        if let Some(cycle) = find_cycle(&agg_edges) {
            errors.push(TopologyError::Cycle(cycle));
        }

        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// Parse JSON and validate in one step (the load path for config
    /// files).
    pub fn load(json: &str) -> Result<FleetTopology, String> {
        let topo: FleetTopology =
            serde_json::from_str(json).map_err(|e| format!("topology parse: {e}"))?;
        topo.validate().map_err(|errs| {
            errs.iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        })?;
        Ok(topo)
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("topology serializes")
    }

    /// The upstream link of a host, by wire id.
    pub fn host_link(&self, host_id: u32) -> Option<&LinkSpec> {
        let host = self.hosts.iter().find(|h| h.id == host_id)?;
        self.links.iter().find(|l| l.from == host.name)
    }

    /// Credit budgets of every host link into `aggregator`, keyed by
    /// host wire id.
    pub fn inbound_budgets(&self, aggregator: &str) -> BTreeMap<u32, (String, u32)> {
        let mut budgets = BTreeMap::new();
        for l in &self.links {
            if l.to != aggregator {
                continue;
            }
            if let Some(h) = self.hosts.iter().find(|h| h.name == l.from) {
                budgets.insert(h.id, (h.name.clone(), l.credits));
            }
        }
        budgets
    }
}

/// DFS three-color cycle detection over the aggregator relay graph.
/// Returns the cycle path if one exists.
fn find_cycle(edges: &BTreeMap<&str, Vec<&str>>) -> Option<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<&str, Color> = BTreeMap::new();
    let nodes: Vec<&str> = edges
        .iter()
        .flat_map(|(from, tos)| std::iter::once(*from).chain(tos.iter().copied()))
        .collect();
    for n in &nodes {
        color.entry(n).or_insert(Color::White);
    }

    fn dfs<'a>(
        node: &'a str,
        edges: &BTreeMap<&str, Vec<&'a str>>,
        color: &mut BTreeMap<&'a str, Color>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        color.insert(node, Color::Gray);
        stack.push(node);
        for next in edges.get(node).into_iter().flatten() {
            match color.get(next).copied().unwrap_or(Color::White) {
                Color::Gray => {
                    let start = stack.iter().position(|n| n == next).unwrap_or(0);
                    let mut path: Vec<String> =
                        stack[start..].iter().map(|s| s.to_string()).collect();
                    path.push(next.to_string());
                    return Some(path);
                }
                Color::White => {
                    if let Some(cycle) = dfs(next, edges, color, stack) {
                        return Some(cycle);
                    }
                }
                Color::Black => {}
            }
        }
        stack.pop();
        color.insert(node, Color::Black);
        None
    }

    for n in nodes {
        if color.get(n).copied() == Some(Color::White) {
            let mut stack = Vec::new();
            if let Some(cycle) = dfs(n, edges, &mut color, &mut stack) {
                return Some(cycle);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_is_valid_and_round_trips() {
        let topo = FleetTopology::star(4, 64);
        topo.validate().unwrap();
        let back = FleetTopology::load(&topo.to_json()).unwrap();
        assert_eq!(back, topo);
        assert_eq!(topo.host_link(2).unwrap().credits, 64);
        let budgets = topo.inbound_budgets("agg0");
        assert_eq!(budgets.len(), 4);
        assert_eq!(budgets[&0].0, "host0");
    }

    #[test]
    fn rejects_orphan_and_multi_homed_hosts() {
        let mut topo = FleetTopology::star(2, 8);
        topo.links.remove(0); // host0 orphaned
        topo.links.push(LinkSpec {
            from: "host1".into(),
            to: "agg0".into(),
            credits: 8,
        }); // host1 multi-homed
        let errs = topo.validate().unwrap_err();
        assert!(errs.contains(&TopologyError::OrphanHost("host0".into())));
        assert!(errs.contains(&TopologyError::MultiHomedHost("host1".into())));
    }

    #[test]
    fn rejects_oversubscribed_aggregator() {
        let mut topo = FleetTopology::star(2, 8);
        topo.aggregators[0].capacity = 15;
        let errs = topo.validate().unwrap_err();
        assert!(matches!(
            errs[0],
            TopologyError::OverCommitted {
                committed: 16,
                capacity: 15,
                ..
            }
        ));
    }

    #[test]
    fn rejects_aggregator_cycles() {
        let mut topo = FleetTopology::star(1, 8);
        for name in ["agg1", "agg2"] {
            topo.aggregators.push(AggregatorSpec {
                name: name.into(),
                capacity: 100,
            });
        }
        for (from, to) in [("agg0", "agg1"), ("agg1", "agg2"), ("agg2", "agg0")] {
            topo.links.push(LinkSpec {
                from: from.into(),
                to: to.into(),
                credits: 1,
            });
        }
        let errs = topo.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, TopologyError::Cycle(_))));
    }

    #[test]
    fn rejects_links_into_hosts_and_unknown_nodes() {
        let mut topo = FleetTopology::star(2, 8);
        topo.links.push(LinkSpec {
            from: "agg0".into(),
            to: "host0".into(),
            credits: 1,
        });
        topo.links.push(LinkSpec {
            from: "ghost".into(),
            to: "agg0".into(),
            credits: 1,
        });
        let errs = topo.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, TopologyError::LinkIntoHost { .. })));
        assert!(errs
            .iter()
            .any(|e| matches!(e, TopologyError::UnknownEndpoint { .. })));
    }

    #[test]
    fn rejects_duplicates_and_zero_credit_links() {
        let mut topo = FleetTopology::star(2, 8);
        topo.hosts.push(HostSpec {
            name: "host0".into(),
            id: 0,
        });
        topo.links[0].credits = 0;
        let errs = topo.validate().unwrap_err();
        assert!(errs.contains(&TopologyError::DuplicateName("host0".into())));
        assert!(errs.contains(&TopologyError::DuplicateHostId(0)));
        assert!(errs.contains(&TopologyError::ZeroCredits { link: 0 }));
    }
}
