//! Loopback multi-process distributed replay: N host processes, each a
//! real `FleetService` wrapped by a [`HostAgent`] thread, reporting to
//! one in-process [`Aggregator`] on 127.0.0.1.
//!
//! The runner re-executes its own binary with the
//! [`CHILD_SENTINEL`] first argument to spawn host processes — any
//! binary that calls [`maybe_child_main`] at the top of `main` can act
//! as the child image (`fleet-replay`, `figures`, and the test-suite
//! `wire-host` all do). Mid-run the runner optionally SIGKILLs one host
//! and restarts it with a higher incarnation (the ReHype-style recovery
//! drill), and publishes a retrained model epoch over the wire. The
//! receipt — per-host and fleet-wide throughput, reconnect counts, the
//! accounting identity, and the model-convergence verdict — is written
//! to `results/distributed.json`.

use crate::agent::{AgentConfig, AgentStatus, HostAgent};
use crate::aggregator::{Aggregator, AggregatorSnapshot};
use crate::topology::FleetTopology;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xentry_fleet::{replay, FleetConfig, FleetService, NullSink, ReplayConfig};

/// First argv element that turns any participating binary into a host
/// child process.
pub const CHILD_SENTINEL: &str = "__wire-host-agent";

/// Marker prefixing the one-line JSON report a child prints on stdout.
const CHILD_REPORT_MARKER: &str = "XWCHILD ";

/// Configuration of one distributed loopback run.
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// Host processes to spawn.
    pub hosts: usize,
    /// Records each host process replays (per incarnation).
    pub records_per_host: usize,
    /// Offered rate per host process, records/s (0 = unthrottled).
    pub rate_per_host: f64,
    /// Service shards inside each host process.
    pub shards_per_host: usize,
    /// Credit budget of each host→aggregator link.
    pub credits_per_host: u32,
    /// Kill this host mid-run and restart it with incarnation 2.
    pub kill_restart_host: Option<u32>,
    /// Publish a retrained model epoch over the wire mid-run.
    pub publish_model: bool,
    /// Trace seed (varied per host so the shards see distinct streams).
    pub seed: u64,
    /// Binary to re-execute as the child image.
    pub child_exe: PathBuf,
    /// Per-child and whole-run timeout.
    pub timeout: Duration,
    /// Where the receipt is written.
    pub out: PathBuf,
}

impl DistributedConfig {
    /// CI-sized run: throttled so the run lasts long enough to exercise
    /// the kill/reconnect drill, small enough to finish in seconds.
    pub fn quick(hosts: usize) -> DistributedConfig {
        DistributedConfig {
            hosts,
            records_per_host: 24_000,
            rate_per_host: 16_000.0,
            shards_per_host: 2,
            credits_per_host: 64,
            kill_restart_host: Some(0),
            publish_model: true,
            seed: 7,
            child_exe: std::env::current_exe().unwrap_or_else(|_| PathBuf::from("fleet-replay")),
            timeout: Duration::from_secs(120),
            out: PathBuf::from("results"),
        }
    }
}

/// What one host child process reports on its stdout before exiting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChildReport {
    pub host: u32,
    pub incarnation: u64,
    pub sent: u64,
    pub accepted: u64,
    pub classified: u64,
    pub lost: u64,
    pub wall_ns: u64,
    pub throughput_per_sec: f64,
    pub drained: bool,
    pub agent: AgentStatus,
}

/// The accounting half of the receipt.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccountingReceipt {
    pub ingested: u64,
    pub classified: u64,
    pub lost: u64,
    pub reconciled_lost: u64,
    pub in_flight: u64,
    /// `ingested == classified + lost` exactly, after finalization.
    pub identity_exact: bool,
}

/// The model-propagation half of the receipt.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelReceipt {
    pub published_epoch: u64,
    pub published_fingerprint: u64,
    /// Hosts whose final report carries the published epoch+fingerprint.
    pub hosts_converged: usize,
    pub hosts_total: usize,
    pub converged: bool,
    pub divergences: u64,
}

/// Receipt of the aggregator's own scrape endpoint, taken mid-run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScrapeReceipt {
    pub samples: usize,
    pub host_series: usize,
    pub ok: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistributedReport {
    pub hosts: usize,
    pub wall_ns: u64,
    pub fleet_throughput_per_sec: f64,
    pub killed_host: Option<u32>,
    pub accounting: AccountingReceipt,
    pub model: ModelReceipt,
    pub scrape: ScrapeReceipt,
    pub children: Vec<ChildReport>,
    pub aggregator: AggregatorSnapshot,
}

impl DistributedReport {
    /// Every acceptance gate at once: exact accounting across the kill,
    /// model convergence on every host, healthy scrape, clean children.
    pub fn is_clean(&self) -> bool {
        let kill_ok = match self.killed_host {
            None => true,
            Some(k) => self
                .aggregator
                .hosts
                .iter()
                .any(|h| h.id == k && h.sessions >= 2 && h.incarnation >= 2),
        };
        self.accounting.identity_exact
            && self.model.converged
            && self.scrape.ok
            && kill_ok
            && self.children.iter().all(|c| c.drained)
    }

    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("distributed.json");
        xentry_fleet::write_atomic(
            &path,
            &serde_json::to_string_pretty(self).expect("serialize"),
        )?;
        Ok(path)
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        let f = &self.aggregator.fleet;
        out.push_str(&format!(
            "fleet:      {} hosts, {} sessions ({} reconnects), {} summaries merged\n",
            self.hosts, f.sessions, f.reconnects, f.summaries
        ));
        out.push_str(&format!(
            "accounting: ingested {} == classified {} + lost {} (reconciled {}) -> {}\n",
            self.accounting.ingested,
            self.accounting.classified,
            self.accounting.lost,
            self.accounting.reconciled_lost,
            if self.accounting.identity_exact {
                "exact"
            } else {
                "VIOLATED"
            }
        ));
        out.push_str(&format!(
            "model:      epoch {} ({:016x}) admitted on {}/{} hosts, {} divergences -> {}\n",
            self.model.published_epoch,
            self.model.published_fingerprint,
            self.model.hosts_converged,
            self.model.hosts_total,
            self.model.divergences,
            if self.model.converged {
                "converged"
            } else {
                "NOT CONVERGED"
            }
        ));
        out.push_str(&format!(
            "throughput: {:.0}/s fleet-wide over {:.2}s\n",
            self.fleet_throughput_per_sec,
            self.wall_ns as f64 / 1e9
        ));
        out
    }
}

/// If this process was invoked as a distributed-replay child, run the
/// host-agent child main and exit; otherwise return `false` and let the
/// caller's real `main` proceed. Call this first in `main` of any binary
/// that should be usable as a child image.
pub fn maybe_child_main() -> bool {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() != Some(CHILD_SENTINEL) {
        return false;
    }
    let code = child_main(&args.collect::<Vec<_>>());
    std::process::exit(code);
}

fn child_arg<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let i = args.iter().position(|a| a == flag)?;
    args.get(i + 1)?.parse().ok()
}

/// The host child: local service + replay + agent, then a drained
/// shutdown and a one-line JSON report.
fn child_main(args: &[String]) -> i32 {
    let host: u32 = child_arg(args, "--host").unwrap_or(0);
    let incarnation: u64 = child_arg(args, "--incarnation").unwrap_or(1);
    let aggregator: String =
        child_arg(args, "--aggregator").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let records: usize = child_arg(args, "--records").unwrap_or(10_000);
    let rate: f64 = child_arg(args, "--rate").unwrap_or(0.0);
    let shards: usize = child_arg(args, "--shards").unwrap_or(2).max(1);
    let seed: u64 = child_arg(args, "--seed").unwrap_or(7);

    let detector = replay::synthetic_detector(1);
    let cfg = FleetConfig {
        shards,
        queue_capacity: 8192,
        batch: 64,
        recorder_depth: 8,
        // Children are throughput fixtures; keep the trace rings off.
        trace_depth: 0,
        ..FleetConfig::default()
    };
    let svc = Arc::new(FleetService::start(cfg, detector, Arc::new(NullSink)));
    let agent = HostAgent::start(
        Arc::clone(&svc),
        AgentConfig {
            incarnation,
            ..AgentConfig::new(host, aggregator)
        },
    );

    // Spread the replay across at least two sender "hosts" (`replay`
    // shards by sender index) so every service shard sees traffic.
    let senders = shards.max(2);
    let trace = replay::synthetic_trace(16_384, seed ^ u64::from(host));
    let t0 = Instant::now();
    let report = replay::replay(
        &svc,
        &trace,
        &ReplayConfig {
            hosts: senders,
            records_per_host: records.div_ceil(senders),
            rate_per_host: if rate > 0.0 {
                rate / senders as f64
            } else {
                0.0
            },
        },
    );

    // Drain: wait for the in-flight window to close so the final
    // summary and the Bye report a settled service.
    let drained = wait_drained(&svc, Duration::from_secs(30));
    let agent_status = agent.shutdown();
    let Ok(svc) = Arc::try_unwrap(svc) else {
        panic!("agent released its service handle");
    };
    let snapshot = svc.shutdown();
    let wall_ns = t0.elapsed().as_nanos() as u64;

    let child = ChildReport {
        host,
        incarnation,
        sent: report.sent,
        accepted: report.accepted,
        classified: snapshot.classified,
        lost: snapshot.lost,
        wall_ns,
        throughput_per_sec: snapshot.classified as f64 / (wall_ns as f64 / 1e9).max(1e-9),
        drained,
        agent: agent_status,
    };
    println!(
        "{CHILD_REPORT_MARKER}{}",
        serde_json::to_string(&child).expect("serialize child report")
    );
    i32::from(!drained)
}

fn wait_drained(svc: &FleetService, timeout: Duration) -> bool {
    let t0 = Instant::now();
    loop {
        let s = svc.snapshot();
        if s.ingested == s.classified + s.lost {
            return true;
        }
        if t0.elapsed() > timeout {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

struct HostProc {
    host: u32,
    child: Child,
}

fn spawn_host(
    cfg: &DistributedConfig,
    agg: &str,
    host: u32,
    incarnation: u64,
) -> io::Result<HostProc> {
    let child = Command::new(&cfg.child_exe)
        .arg(CHILD_SENTINEL)
        .args(["--host", &host.to_string()])
        .args(["--incarnation", &incarnation.to_string()])
        .args(["--aggregator", agg])
        .args(["--records", &cfg.records_per_host.to_string()])
        .args(["--rate", &cfg.rate_per_host.to_string()])
        .args(["--shards", &cfg.shards_per_host.to_string()])
        .args(["--seed", &cfg.seed.to_string()])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    Ok(HostProc { host, child })
}

/// Wait for `pred` over the aggregator snapshot, with a deadline.
fn wait_for(
    agg: &Aggregator,
    deadline: Instant,
    what: &str,
    pred: impl Fn(&AggregatorSnapshot) -> bool,
) -> io::Result<()> {
    loop {
        if pred(&agg.snapshot()) {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("timed out waiting for {what}"),
            ));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn collect_child(mut proc_: HostProc, deadline: Instant) -> io::Result<Option<ChildReport>> {
    loop {
        match proc_.child.try_wait()? {
            Some(_) => break,
            None if Instant::now() >= deadline => {
                let _ = proc_.child.kill();
                let _ = proc_.child.wait();
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("host {} child timed out", proc_.host),
                ));
            }
            None => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    let mut stdout = String::new();
    if let Some(mut out) = proc_.child.stdout.take() {
        use std::io::Read;
        let _ = out.read_to_string(&mut stdout);
    }
    for line in stdout.lines() {
        if let Some(json) = line.strip_prefix(CHILD_REPORT_MARKER) {
            let report: ChildReport = serde_json::from_str(json).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("child report: {e}"))
            })?;
            return Ok(Some(report));
        }
    }
    Ok(None)
}

/// Run a full distributed loopback replay. See the module docs for the
/// choreography; the returned report carries every receipt the CI gate
/// greps for.
pub fn run_distributed(cfg: &DistributedConfig) -> io::Result<DistributedReport> {
    let topology = FleetTopology::star(cfg.hosts, cfg.credits_per_host);
    let agg = Aggregator::start(&topology, "agg0", "127.0.0.1:0")?;
    let agg_addr = agg.addr().to_string();
    let metrics = agg.serve_metrics("127.0.0.1:0")?;

    // Publish the retrained model *before* any host connects: every
    // session (the restarted incarnation included) then receives the
    // push right after its HelloAck, so even a host that finishes its
    // replay quickly admits the epoch before its Bye. Different
    // training seed -> different fingerprint, still canary-compatible
    // (the relaxed gate checks structure + self-consistency, not label
    // parity).
    let (published_epoch, published_fingerprint) = if cfg.publish_model {
        let retrained = replay::synthetic_detector(101);
        let fingerprint = retrained.fingerprint();
        let epoch = agg.publish_model(retrained.to_json(), fingerprint);
        (epoch, fingerprint)
    } else {
        (0, 0)
    };

    let t0 = Instant::now();
    let deadline = t0 + cfg.timeout;
    let mut procs: Vec<HostProc> = (0..cfg.hosts as u32)
        .map(|h| spawn_host(cfg, &agg_addr, h, 1))
        .collect::<io::Result<_>>()?;

    // Wait until every host has connected and reported at least once.
    // Deliberately NOT "all simultaneously up": an unthrottled host can
    // finish its whole replay and say Bye before a sibling's process
    // has even started.
    wait_for(&agg, deadline, "all hosts reporting", |s| {
        s.hosts
            .iter()
            .all(|h| h.sessions >= 1 && h.counters.ingested > 0)
    })?;

    // The recovery drill: SIGKILL one host mid-run (no Bye, stranded
    // in-flight window), then restart it as incarnation 2.
    let mut killed = None;
    if let Some(k) = cfg.kill_restart_host {
        wait_for(&agg, deadline, "victim host reporting", |s| {
            s.hosts
                .iter()
                .any(|h| h.id == k && h.counters.classified > 0)
        })?;
        if let Some(pos) = procs.iter().position(|p| p.host == k) {
            let mut victim = procs.swap_remove(pos);
            // kill() can race a victim that already exited; either way
            // the process is gone and the respawn below is what matters.
            let _ = victim.child.kill();
            victim.child.wait()?;
            killed = Some(k);
            wait_for(&agg, deadline, "aggregator noticing the kill", |s| {
                s.hosts.iter().any(|h| h.id == k && !h.up)
            })?;
            procs.push(spawn_host(cfg, &agg_addr, k, 2)?);
        }
    }

    // Self-scrape the aggregator's /metrics while the fleet is live.
    let scrape = {
        let (status, body) = xentry_fleet::http_get(metrics.addr(), "/metrics")?;
        let samples = if status == 200 {
            xentry_fleet::parse_exposition(&body).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("exposition: {e}"))
            })?
        } else {
            Vec::new()
        };
        let series = |name: &str| samples.iter().filter(|(n, _, _)| n == name).count();
        let host_series = series("xentry_agg_host_up");
        ScrapeReceipt {
            samples: samples.len(),
            host_series,
            ok: status == 200
                && host_series == cfg.hosts
                && series("xentry_agg_ingested_total") == 1
                && series("xentry_agg_accounting_identity") == 1,
        }
    };

    // Collect every child (the restarted one included).
    let mut children: Vec<ChildReport> = Vec::new();
    for proc_ in procs {
        if let Some(report) = collect_child(proc_, deadline)? {
            children.push(report);
        }
    }
    children.sort_by_key(|c| (c.host, c.incarnation));

    // All sessions are down now; settle and snapshot.
    wait_for(&agg, deadline, "all sessions down", |s| {
        s.fleet.hosts_up == 0
    })?;
    metrics.shutdown();
    let aggregator = agg.shutdown();
    let wall_ns = t0.elapsed().as_nanos() as u64;

    let accounting = AccountingReceipt {
        ingested: aggregator.fleet.ingested,
        classified: aggregator.fleet.classified,
        lost: aggregator.fleet.lost,
        reconciled_lost: aggregator.fleet.reconciled_lost,
        in_flight: aggregator.fleet.in_flight,
        identity_exact: aggregator.fleet.in_flight == 0
            && aggregator.fleet.ingested == aggregator.fleet.classified + aggregator.fleet.lost,
    };
    let hosts_converged = aggregator
        .hosts
        .iter()
        .filter(|h| {
            h.model_epoch == aggregator.published_epoch
                && h.model_fingerprint == aggregator.published_fingerprint
        })
        .count();
    let model = ModelReceipt {
        published_epoch,
        published_fingerprint,
        hosts_converged,
        hosts_total: aggregator.hosts.len(),
        converged: !cfg.publish_model || aggregator.model_converged(),
        divergences: aggregator.fleet.model_divergences,
    };
    let fleet_throughput_per_sec =
        aggregator.fleet.classified as f64 / (wall_ns as f64 / 1e9).max(1e-9);

    Ok(DistributedReport {
        hosts: cfg.hosts,
        wall_ns,
        fleet_throughput_per_sec,
        killed_host: killed,
        accounting,
        model,
        scrape,
        children,
        aggregator,
    })
}
