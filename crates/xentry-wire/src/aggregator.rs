//! Aggregator: accepts host-agent sessions, merges per-host accounting,
//! pushes model epochs, and exposes the merged fleet state.
//!
//! ## Accounting reconciliation
//!
//! Hosts report *cumulative* per-incarnation counters, so the merge is
//! loss-tolerant by construction: the newest summary from a session
//! supersedes every summary lost with a dropped connection. The only
//! quantity a dead session can strand is its in-flight window
//! (`ingested - classified - lost` at the moment of the last summary).
//! The rules, in order:
//!
//! 1. **Same incarnation reconnects** — cumulative counters resume; the
//!    stranded window resolves itself with the first fresh summary.
//! 2. **New incarnation connects** (host restarted) — the previous
//!    incarnation's counters are retired into the host's totals, its
//!    last known in-flight folded into `lost` (those records were in
//!    queues of a process that no longer exists).
//! 3. **Run finalization** — any still-unresolved in-flight on a down
//!    session is likewise folded into `lost`.
//!
//! Folded amounts are tracked separately as `reconciled_lost`, so
//! "records lost to a killed host" is a number in the receipt, never a
//! silent drop. After finalization the fleet-wide identity
//! `ingested == classified + lost` is exact.

use crate::frame::{Frame, FrameReader, HostCounters};
use crate::topology::FleetTopology;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xentry_fleet::{lock_recovering, Exposition, HttpServer};

/// Per-host state as the aggregator tracks it.
#[derive(Debug, Clone, Default)]
struct HostState {
    name: String,
    up: bool,
    clean_bye: bool,
    sessions: u64,
    reconnects: u64,
    last_seen_ns: u64,
    incarnation: u64,
    last_seq: u64,
    /// Cumulative counters of the live (current) incarnation.
    live: HostCounters,
    /// Folded totals of retired incarnations (in_flight always 0 here).
    retired: HostCounters,
    /// Portion of `lost` that came from reconciling stranded in-flight
    /// windows rather than from host-side loss accounting.
    reconciled_lost: u64,
    model_epoch: u64,
    model_fingerprint: u64,
    divergences: u64,
    last_divergence: String,
    queue_p99_ns: u64,
    classify_p99_ns: u64,
}

impl HostState {
    /// Retire the live incarnation: counters move to the totals and the
    /// stranded in-flight window is folded into `lost` (rule 2/3 above).
    fn retire_live(&mut self) {
        let mut dead = self.live;
        if dead.in_flight > 0 {
            dead.lost += dead.in_flight;
            self.reconciled_lost += dead.in_flight;
            dead.in_flight = 0;
        }
        self.retired = self.retired.add(&dead);
        self.live = HostCounters::default();
        self.last_seq = 0;
    }

    fn merged(&self) -> HostCounters {
        self.retired.add(&self.live)
    }
}

struct PublishedModel {
    epoch: u64,
    fingerprint: u64,
    json: Arc<String>,
}

struct AggState {
    start: Instant,
    budgets: BTreeMap<u32, (String, u32)>,
    hosts: Mutex<BTreeMap<u32, HostState>>,
    published: Mutex<Option<PublishedModel>>,
    epoch_counter: AtomicU64,
    summaries: AtomicU64,
    credits_granted: AtomicU64,
    rejected_connections: AtomicU64,
    identity_violations: AtomicU64,
    model_divergences: AtomicU64,
    stop: AtomicBool,
}

impl AggState {
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

/// The merged fleet picture at one instant — the JSON half of the
/// distributed receipt and the source of the Prometheus exposition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregatorSnapshot {
    pub uptime_ns: u64,
    pub published_epoch: u64,
    pub published_fingerprint: u64,
    pub hosts: Vec<HostSnapshot>,
    pub fleet: FleetRollup,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostSnapshot {
    pub id: u32,
    pub name: String,
    pub up: bool,
    pub clean_bye: bool,
    pub sessions: u64,
    pub reconnects: u64,
    /// Nanoseconds since the last frame from this host (aggregator
    /// clock); `u64::MAX` if it never connected.
    pub last_seen_age_ns: u64,
    pub incarnation: u64,
    pub last_seq: u64,
    pub counters: HostCounters,
    pub reconciled_lost: u64,
    pub model_epoch: u64,
    pub model_fingerprint: u64,
    pub divergences: u64,
    pub queue_p99_ns: u64,
    pub classify_p99_ns: u64,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FleetRollup {
    pub hosts_configured: usize,
    pub hosts_up: usize,
    pub ingested: u64,
    pub classified: u64,
    pub lost: u64,
    pub dropped: u64,
    pub incorrect: u64,
    pub in_flight: u64,
    pub reconciled_lost: u64,
    pub sessions: u64,
    pub reconnects: u64,
    pub summaries: u64,
    pub credits_granted: u64,
    pub rejected_connections: u64,
    pub identity_violations: u64,
    pub model_divergences: u64,
}

impl AggregatorSnapshot {
    /// The fleet-wide accounting identity. Exact (`in_flight == 0` terms
    /// and all) only after finalization or a fully drained fleet.
    pub fn accounting_identity(&self) -> bool {
        self.fleet.ingested == self.fleet.classified + self.fleet.lost + self.fleet.in_flight
    }

    /// True when every configured host's last report matches the
    /// published model epoch + fingerprint.
    pub fn model_converged(&self) -> bool {
        self.published_epoch > 0
            && self.hosts.iter().all(|h| {
                h.model_epoch == self.published_epoch
                    && h.model_fingerprint == self.published_fingerprint
            })
    }
}

/// Listens for host-agent sessions and merges their accounting. One
/// thread per session plus one accept thread, in the `serve_telemetry`
/// mold: std-only, stoppable, joined on shutdown.
pub struct Aggregator {
    state: Arc<AggState>,
    addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Aggregator {
    /// Bind `addr` and serve the inbound links that `topology` declares
    /// for aggregator `name`. The topology is validated first.
    pub fn start(
        topology: &FleetTopology,
        name: &str,
        addr: impl ToSocketAddrs,
    ) -> io::Result<Aggregator> {
        if let Err(errs) = topology.validate() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "invalid topology: {}",
                    errs.iter()
                        .map(|e| e.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                ),
            ));
        }
        let budgets = topology.inbound_budgets(name);
        if budgets.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("topology declares no host links into aggregator {name:?}"),
            ));
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let hosts = budgets
            .iter()
            .map(|(&id, (name, _))| {
                (
                    id,
                    HostState {
                        name: name.clone(),
                        last_seen_ns: u64::MAX,
                        ..HostState::default()
                    },
                )
            })
            .collect();
        let state = Arc::new(AggState {
            start: Instant::now(),
            budgets,
            hosts: Mutex::new(hosts),
            published: Mutex::new(None),
            epoch_counter: AtomicU64::new(0),
            summaries: AtomicU64::new(0),
            credits_granted: AtomicU64::new(0),
            rejected_connections: AtomicU64::new(0),
            identity_violations: AtomicU64::new(0),
            model_divergences: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let state2 = Arc::clone(&state);
        let sessions2 = Arc::clone(&sessions);
        let accept_handle = std::thread::Builder::new()
            .name(format!("wire-agg-{name}"))
            .spawn(move || accept_loop(listener, state2, sessions2))?;
        Ok(Aggregator {
            state,
            addr,
            accept_handle: Some(accept_handle),
            sessions,
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Publish a model to the fleet: allocates the next epoch and lets
    /// every session (current and future) push it. Returns the epoch.
    pub fn publish_model(&self, json: String, fingerprint: u64) -> u64 {
        let epoch = self.state.epoch_counter.fetch_add(1, Ordering::AcqRel) + 1;
        *lock_recovering(&self.state.published) = Some(PublishedModel {
            epoch,
            fingerprint,
            json: Arc::new(json),
        });
        epoch
    }

    pub fn snapshot(&self) -> AggregatorSnapshot {
        snapshot_state(&self.state)
    }

    /// Serve `/metrics` (Prometheus exposition of the merged state) and
    /// `/healthz` for this aggregator.
    pub fn serve_metrics(&self, addr: impl ToSocketAddrs) -> io::Result<HttpServer> {
        let state = Arc::clone(&self.state);
        HttpServer::start(addr, "wire-agg-metrics", move |path| match path {
            "/metrics" => Some((
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render_aggregator_prometheus(&snapshot_state(&state)),
            )),
            "/healthz" => {
                let s = snapshot_state(&state);
                Some((
                    "200 OK",
                    "application/json",
                    format!(
                        "{{\"status\":\"ok\",\"hosts_up\":{},\"hosts_configured\":{}}}\n",
                        s.fleet.hosts_up, s.fleet.hosts_configured
                    ),
                ))
            }
            _ => Some(xentry_fleet::net::not_found("/metrics or /healthz")),
        })
    }

    /// Fold every down session's stranded in-flight window into `lost`
    /// (reconciliation rule 3). Call once the run is over — i.e. no
    /// session is expected back.
    pub fn finalize(&self) {
        let mut hosts = lock_recovering(&self.state.hosts);
        for hs in hosts.values_mut() {
            if hs.live.in_flight > 0 {
                hs.live.lost += hs.live.in_flight;
                hs.reconciled_lost += hs.live.in_flight;
                hs.live.in_flight = 0;
            }
        }
    }

    /// Stop accepting, join every session thread, finalize, and return
    /// the settled snapshot.
    pub fn shutdown(mut self) -> AggregatorSnapshot {
        self.state.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = lock_recovering(&self.sessions).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        self.finalize();
        self.snapshot()
    }
}

impl Drop for Aggregator {
    fn drop(&mut self) {
        self.state.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = lock_recovering(&self.sessions).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    state: Arc<AggState>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next = 0u64;
    while !state.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let state2 = Arc::clone(&state);
                next += 1;
                let handle = std::thread::Builder::new()
                    .name(format!("wire-agg-session-{next}"))
                    .spawn(move || {
                        let host = run_session(&state2, stream);
                        // Any exit (error or clean) leaves the host down.
                        if let Some(id) = host {
                            let mut hosts = lock_recovering(&state2.hosts);
                            if let Some(hs) = hosts.get_mut(&id) {
                                hs.up = false;
                            }
                        }
                    })
                    .expect("spawn session thread");
                lock_recovering(&sessions).push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// One host session. Returns the host id once the handshake has bound
/// the connection to a host (so the caller can mark it down on exit).
fn run_session(state: &AggState, mut stream: TcpStream) -> Option<u32> {
    if xentry_fleet::net::configure_stream(
        &stream,
        Some(Duration::from_millis(25)),
        Some(Duration::from_secs(2)),
    )
    .is_err()
    {
        return None;
    }
    let mut reader = FrameReader::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    let hello = match reader.poll_until(&mut stream, deadline) {
        Ok(Frame::Hello {
            host,
            incarnation,
            last_seq,
            model_epoch,
            model_fingerprint,
        }) => (host, incarnation, last_seq, model_epoch, model_fingerprint),
        _ => {
            state.rejected_connections.fetch_add(1, Ordering::Relaxed);
            return None;
        }
    };
    let (host, incarnation, _last_seq, model_epoch, model_fingerprint) = hello;
    let Some(credits) = state.budgets.get(&host).map(|(_, c)| *c) else {
        // Undeclared host: no link, no budget — the topology is the
        // admission control.
        state.rejected_connections.fetch_add(1, Ordering::Relaxed);
        return None;
    };

    let resume_seq = {
        let mut hosts = lock_recovering(&state.hosts);
        let hs = hosts.get_mut(&host)?;
        if hs.incarnation != 0 && incarnation != hs.incarnation {
            // Rule 2: the host restarted; retire the dead incarnation.
            hs.retire_live();
        }
        hs.incarnation = incarnation;
        hs.up = true;
        hs.clean_bye = false;
        hs.sessions += 1;
        if hs.sessions > 1 {
            hs.reconnects += 1;
        }
        hs.last_seen_ns = state.now_ns();
        hs.model_epoch = model_epoch;
        hs.model_fingerprint = model_fingerprint;
        hs.last_seq
    };

    let (pub_epoch, pub_fp) = {
        let published = lock_recovering(&state.published);
        published
            .as_ref()
            .map(|p| (p.epoch, p.fingerprint))
            .unwrap_or((0, 0))
    };
    if crate::frame::write_frame(
        &mut stream,
        &Frame::HelloAck {
            credits,
            resume_seq,
            model_epoch: pub_epoch,
            model_fingerprint: pub_fp,
        },
    )
    .is_err()
    {
        return Some(host);
    }

    // Highest epoch already pushed down this session, so one publish is
    // sent once per session, not once per tick.
    let mut pushed_epoch = 0u64;
    loop {
        if state.stop.load(Ordering::Acquire) {
            return Some(host);
        }
        match reader.poll(&mut stream) {
            Ok(Some(frame)) => {
                if handle_frame(state, host, frame, &mut stream).is_break() {
                    return Some(host);
                }
            }
            Ok(None) => {}
            Err(_) => return Some(host),
        }
        // Push the published model if this host hasn't admitted it yet.
        let pending = {
            let published = lock_recovering(&state.published);
            published.as_ref().and_then(|p| {
                let hosts = lock_recovering(&state.hosts);
                let admitted = hosts.get(&host).map(|h| h.model_epoch).unwrap_or(0);
                (p.epoch > pushed_epoch && p.epoch > admitted)
                    .then(|| (p.epoch, p.fingerprint, Arc::clone(&p.json)))
            })
        };
        if let Some((epoch, fingerprint, json)) = pending {
            let frame = Frame::ModelPublish {
                epoch,
                fingerprint,
                json: (*json).clone(),
            };
            if crate::frame::write_frame(&mut stream, &frame).is_err() {
                return Some(host);
            }
            pushed_epoch = epoch;
        }
    }
}

fn handle_frame(
    state: &AggState,
    host: u32,
    frame: Frame,
    stream: &mut TcpStream,
) -> std::ops::ControlFlow<()> {
    use std::ops::ControlFlow;
    match frame {
        Frame::Summary(s) => {
            {
                let mut hosts = lock_recovering(&state.hosts);
                if let Some(hs) = hosts.get_mut(&host) {
                    hs.last_seen_ns = state.now_ns();
                    // Stale duplicate from before a same-incarnation
                    // reconnect: newer cumulative state already merged.
                    if s.seq > hs.last_seq {
                        if !s.counters.identity_holds() {
                            state.identity_violations.fetch_add(1, Ordering::Relaxed);
                        }
                        hs.live = s.counters;
                        hs.last_seq = s.seq;
                        hs.model_epoch = s.model_epoch;
                        hs.model_fingerprint = s.model_fingerprint;
                        hs.queue_p99_ns = s.queue_p99_ns;
                        hs.classify_p99_ns = s.classify_p99_ns;
                    }
                }
            }
            state.summaries.fetch_add(1, Ordering::Relaxed);
            // Return the credit the summary consumed.
            if crate::frame::write_frame(stream, &Frame::Credit { grant: 1 }).is_err() {
                return ControlFlow::Break(());
            }
            state.credits_granted.fetch_add(1, Ordering::Relaxed);
            ControlFlow::Continue(())
        }
        Frame::Heartbeat { .. } => {
            let mut hosts = lock_recovering(&state.hosts);
            if let Some(hs) = hosts.get_mut(&host) {
                hs.last_seen_ns = state.now_ns();
            }
            ControlFlow::Continue(())
        }
        Frame::ModelStatus {
            epoch,
            fingerprint,
            admitted,
            detail,
        } => {
            let mut hosts = lock_recovering(&state.hosts);
            if let Some(hs) = hosts.get_mut(&host) {
                hs.last_seen_ns = state.now_ns();
                if admitted {
                    hs.model_epoch = hs.model_epoch.max(epoch);
                    hs.model_fingerprint = fingerprint;
                } else {
                    hs.divergences += 1;
                    hs.last_divergence = detail;
                    state.model_divergences.fetch_add(1, Ordering::Relaxed);
                }
            }
            ControlFlow::Continue(())
        }
        Frame::Bye { counters } => {
            let mut hosts = lock_recovering(&state.hosts);
            if let Some(hs) = hosts.get_mut(&host) {
                hs.last_seen_ns = state.now_ns();
                hs.live = counters;
                hs.retire_live();
                hs.up = false;
                hs.clean_bye = true;
            }
            ControlFlow::Break(())
        }
        // A second Hello (or an aggregator-bound frame type) mid-session
        // is a peer bug; tolerate it.
        _ => ControlFlow::Continue(()),
    }
}

fn snapshot_state(state: &AggState) -> AggregatorSnapshot {
    let now = state.now_ns();
    let hosts_map = lock_recovering(&state.hosts);
    let mut hosts = Vec::with_capacity(hosts_map.len());
    let mut fleet = FleetRollup {
        hosts_configured: hosts_map.len(),
        summaries: state.summaries.load(Ordering::Relaxed),
        credits_granted: state.credits_granted.load(Ordering::Relaxed),
        rejected_connections: state.rejected_connections.load(Ordering::Relaxed),
        identity_violations: state.identity_violations.load(Ordering::Relaxed),
        model_divergences: state.model_divergences.load(Ordering::Relaxed),
        ..FleetRollup::default()
    };
    for (&id, hs) in hosts_map.iter() {
        let merged = hs.merged();
        fleet.ingested += merged.ingested;
        fleet.classified += merged.classified;
        fleet.lost += merged.lost;
        fleet.dropped += merged.dropped;
        fleet.incorrect += merged.incorrect;
        fleet.in_flight += merged.in_flight;
        fleet.reconciled_lost += hs.reconciled_lost;
        fleet.sessions += hs.sessions;
        fleet.reconnects += hs.reconnects;
        if hs.up {
            fleet.hosts_up += 1;
        }
        hosts.push(HostSnapshot {
            id,
            name: hs.name.clone(),
            up: hs.up,
            clean_bye: hs.clean_bye,
            sessions: hs.sessions,
            reconnects: hs.reconnects,
            last_seen_age_ns: if hs.last_seen_ns == u64::MAX {
                u64::MAX
            } else {
                now.saturating_sub(hs.last_seen_ns)
            },
            incarnation: hs.incarnation,
            last_seq: hs.last_seq,
            counters: merged,
            reconciled_lost: hs.reconciled_lost,
            model_epoch: hs.model_epoch,
            model_fingerprint: hs.model_fingerprint,
            divergences: hs.divergences,
            queue_p99_ns: hs.queue_p99_ns,
            classify_p99_ns: hs.classify_p99_ns,
        });
    }
    drop(hosts_map);
    let (published_epoch, published_fingerprint) = {
        let published = lock_recovering(&state.published);
        published
            .as_ref()
            .map(|p| (p.epoch, p.fingerprint))
            .unwrap_or((0, 0))
    };
    AggregatorSnapshot {
        uptime_ns: now,
        published_epoch,
        published_fingerprint,
        hosts,
        fleet,
    }
}

/// Render the merged fleet state as Prometheus text exposition 0.0.4,
/// using the same [`Exposition`] builder as the per-service `/metrics`.
/// Series are prefixed `xentry_agg_` so a scraper can federate both.
pub fn render_aggregator_prometheus(s: &AggregatorSnapshot) -> String {
    let mut e = Exposition::new();
    e.scalar(
        "xentry_agg_uptime_seconds",
        "gauge",
        "Aggregator uptime",
        s.uptime_ns as f64 / 1e9,
    );
    e.header(
        "xentry_agg_model_info",
        "gauge",
        "Published model epoch and fingerprint (labels), constant 1",
    );
    e.sample(
        "xentry_agg_model_info",
        &[
            ("epoch", s.published_epoch.to_string()),
            ("fingerprint", format!("{:016x}", s.published_fingerprint)),
        ],
        1.0,
    );
    e.scalar(
        "xentry_agg_hosts_configured",
        "gauge",
        "Hosts declared in the topology",
        s.fleet.hosts_configured as f64,
    );
    e.scalar(
        "xentry_agg_hosts_up",
        "gauge",
        "Hosts with a live session",
        s.fleet.hosts_up as f64,
    );
    for (name, help, v) in [
        (
            "xentry_agg_ingested_total",
            "Fleet-wide records ingested",
            s.fleet.ingested,
        ),
        (
            "xentry_agg_classified_total",
            "Fleet-wide records classified",
            s.fleet.classified,
        ),
        (
            "xentry_agg_lost_total",
            "Fleet-wide records lost (host-reported plus reconciled)",
            s.fleet.lost,
        ),
        (
            "xentry_agg_dropped_total",
            "Fleet-wide records dropped at ingest",
            s.fleet.dropped,
        ),
        (
            "xentry_agg_incorrect_total",
            "Fleet-wide incorrect verdicts",
            s.fleet.incorrect,
        ),
        (
            "xentry_agg_reconciled_lost_total",
            "In-flight records folded into lost when sessions died",
            s.fleet.reconciled_lost,
        ),
        (
            "xentry_agg_sessions_total",
            "Host sessions accepted",
            s.fleet.sessions,
        ),
        (
            "xentry_agg_reconnects_total",
            "Host sessions beyond each host's first",
            s.fleet.reconnects,
        ),
        (
            "xentry_agg_summaries_total",
            "Summary frames merged",
            s.fleet.summaries,
        ),
        (
            "xentry_agg_credits_granted_total",
            "Backpressure credits returned to hosts",
            s.fleet.credits_granted,
        ),
        (
            "xentry_agg_rejected_connections_total",
            "Connections refused (bad handshake or undeclared host)",
            s.fleet.rejected_connections,
        ),
        (
            "xentry_agg_identity_violations_total",
            "Summaries whose own counters broke the accounting identity",
            s.fleet.identity_violations,
        ),
        (
            "xentry_agg_model_divergences_total",
            "Model pushes rejected by a host canary",
            s.fleet.model_divergences,
        ),
    ] {
        e.scalar(name, "counter", help, v as f64);
    }
    e.scalar(
        "xentry_agg_in_flight",
        "gauge",
        "Fleet-wide records in flight (ingested - classified - lost)",
        s.fleet.in_flight as f64,
    );
    e.scalar(
        "xentry_agg_accounting_identity",
        "gauge",
        "1 when ingested == classified + lost + in_flight fleet-wide",
        if s.accounting_identity() { 1.0 } else { 0.0 },
    );

    let label = |h: &HostSnapshot| vec![("host", h.name.clone())];
    e.header(
        "xentry_agg_host_up",
        "gauge",
        "1 when the host session is live",
    );
    for h in &s.hosts {
        e.sample(
            "xentry_agg_host_up",
            &label(h),
            if h.up { 1.0 } else { 0.0 },
        );
    }
    e.header(
        "xentry_agg_host_last_seen_seconds",
        "gauge",
        "Seconds since the last frame from the host (-1 = never)",
    );
    for h in &s.hosts {
        let v = if h.last_seen_age_ns == u64::MAX {
            -1.0
        } else {
            h.last_seen_age_ns as f64 / 1e9
        };
        e.sample("xentry_agg_host_last_seen_seconds", &label(h), v);
    }
    e.header(
        "xentry_agg_host_reconnects_total",
        "counter",
        "Sessions beyond the host's first",
    );
    for h in &s.hosts {
        e.sample(
            "xentry_agg_host_reconnects_total",
            &label(h),
            h.reconnects as f64,
        );
    }
    e.header(
        "xentry_agg_host_ingested_total",
        "counter",
        "Records ingested on the host (all incarnations)",
    );
    for h in &s.hosts {
        e.sample(
            "xentry_agg_host_ingested_total",
            &label(h),
            h.counters.ingested as f64,
        );
    }
    e.header(
        "xentry_agg_host_classified_total",
        "counter",
        "Records classified on the host (all incarnations)",
    );
    for h in &s.hosts {
        e.sample(
            "xentry_agg_host_classified_total",
            &label(h),
            h.counters.classified as f64,
        );
    }
    e.header(
        "xentry_agg_host_lost_total",
        "counter",
        "Records lost on the host, reconciliation included",
    );
    for h in &s.hosts {
        e.sample(
            "xentry_agg_host_lost_total",
            &label(h),
            h.counters.lost as f64,
        );
    }
    e.header(
        "xentry_agg_host_in_flight",
        "gauge",
        "Host records between ingest and verdict at last report",
    );
    for h in &s.hosts {
        e.sample(
            "xentry_agg_host_in_flight",
            &label(h),
            h.counters.in_flight as f64,
        );
    }
    e.header(
        "xentry_agg_host_model_epoch",
        "gauge",
        "Published epoch the host last admitted (0 = local model)",
    );
    for h in &s.hosts {
        e.sample(
            "xentry_agg_host_model_epoch",
            &label(h),
            h.model_epoch as f64,
        );
    }
    e.header(
        "xentry_agg_host_divergences_total",
        "counter",
        "Model pushes this host's canary rejected",
    );
    for h in &s.hosts {
        e.sample(
            "xentry_agg_host_divergences_total",
            &label(h),
            h.divergences as f64,
        );
    }
    e.finish()
}
