//! Property-based tests for the wire frame codec: round-trip fidelity,
//! and — the security half — arbitrary, truncated, and adversarially
//! length-mangled byte streams must come back as clean `FrameError`s,
//! never a panic and never an allocation sized by attacker-controlled
//! fields.

use proptest::prelude::*;
use xentry_wire::frame::{Frame, FrameError, HostCounters, SummaryFrame, HEADER_LEN, MAX_PAYLOAD};

fn arb_counters() -> impl Strategy<Value = HostCounters> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((ingested, classified, lost), (dropped, incorrect, in_flight))| HostCounters {
                ingested,
                classified,
                lost,
                dropped,
                incorrect,
                in_flight,
            },
        )
}

/// Strings kept small so a proptest case stays cheap; the length fields
/// on the wire are u32 either way. Multi-byte UTF-8 is covered by
/// mapping some bytes into non-ASCII chars.
fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u16>(), 0..64).prop_map(|codes| {
        codes
            .into_iter()
            .filter_map(|c| char::from_u32(u32::from(c)))
            .collect()
    })
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(
                |(host, incarnation, last_seq, model_epoch, model_fingerprint)| Frame::Hello {
                    host,
                    incarnation,
                    last_seq,
                    model_epoch,
                    model_fingerprint,
                }
            ),
        (any::<u32>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(credits, resume_seq, model_epoch, model_fingerprint)| Frame::HelloAck {
                credits,
                resume_seq,
                model_epoch,
                model_fingerprint,
            }
        ),
        (
            any::<u64>(),
            arb_counters(),
            any::<u64>(),
            any::<u64>(),
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        )
            .prop_map(|(seq, counters, model_epoch, model_fingerprint, rest)| {
                let (window_classified, window_incorrect, queue_p99_ns, classify_p99_ns) = rest;
                Frame::Summary(SummaryFrame {
                    seq,
                    counters,
                    model_epoch,
                    model_fingerprint,
                    window_classified,
                    window_incorrect,
                    queue_p99_ns,
                    classify_p99_ns,
                })
            }),
        any::<u32>().prop_map(|grant| Frame::Credit { grant }),
        (any::<u64>(), any::<u64>(), arb_string()).prop_map(|(epoch, fingerprint, json)| {
            Frame::ModelPublish {
                epoch,
                fingerprint,
                json,
            }
        }),
        (any::<u64>(), any::<u64>(), any::<bool>(), arb_string()).prop_map(
            |(epoch, fingerprint, admitted, detail)| Frame::ModelStatus {
                epoch,
                fingerprint,
                admitted,
                detail,
            }
        ),
        any::<u64>().prop_map(|sent_ns| Frame::Heartbeat { sent_ns }),
        arb_counters().prop_map(|counters| Frame::Bye { counters }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode → decode is the identity, and consumes exactly the bytes
    /// encode produced.
    #[test]
    fn round_trip(frame in arb_frame()) {
        let bytes = frame.encode();
        let (decoded, used) = Frame::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    /// Any truncation of a valid frame is reported as `Truncated` with a
    /// `need` beyond what was offered — the "read more and retry"
    /// contract `FrameReader` relies on. Never a panic, never a bogus
    /// success.
    #[test]
    fn truncation_is_clean(frame in arb_frame(), cut_back in 1usize..64) {
        let bytes = frame.encode();
        let cut = bytes.len().saturating_sub(cut_back);
        match Frame::decode(&bytes[..cut]) {
            Err(FrameError::Truncated { need }) => {
                prop_assert!(need > cut);
                prop_assert!(need <= bytes.len());
            }
            other => prop_assert!(false, "expected Truncated, got {:?}", other),
        }
    }

    /// Completely arbitrary bytes decode to a clean error or a valid
    /// frame (when the fuzzer happens to build one) — never a panic.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok((_, used)) = Frame::decode(&bytes) {
            prop_assert!(used <= bytes.len());
        }
    }

    /// Single-byte corruption anywhere in a valid frame decodes to a
    /// clean error or (for payload-value bytes) a different valid frame
    /// — never a panic, never reading past the buffer.
    #[test]
    fn bit_flips_never_panic(frame in arb_frame(), pos in any::<usize>(), bit in 0u8..8) {
        let mut bytes = frame.encode();
        let i = pos % bytes.len();
        bytes[i] ^= 1 << bit;
        if let Ok((_, used)) = Frame::decode(&bytes) {
            prop_assert!(used <= bytes.len());
        }
    }

    /// An adversarial header length never causes an allocation: lengths
    /// over the cap are rejected outright, lengths under it merely ask
    /// the caller for more bytes (bounded by header + cap).
    #[test]
    fn adversarial_lengths_never_over_allocate(frame in arb_frame(), len in any::<u32>()) {
        let mut bytes = frame.encode();
        bytes[8..12].copy_from_slice(&len.to_le_bytes());
        bytes.truncate(HEADER_LEN); // header only: the payload is a lie
        match Frame::decode(&bytes) {
            Err(FrameError::Oversize { len: l }) => {
                prop_assert!(l as usize > MAX_PAYLOAD);
            }
            Err(FrameError::Truncated { need }) => {
                prop_assert!(need <= HEADER_LEN + MAX_PAYLOAD);
                prop_assert_eq!(need, HEADER_LEN + len as usize);
            }
            Err(FrameError::BadPayload(_)) | Ok(_) => {
                // len == 0 can complete a payload-less decode or trip
                // the strict length check; both are clean outcomes.
            }
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    /// Inner length prefixes (the strings in model frames) are validated
    /// against the bytes actually present: inflating them yields a clean
    /// BadPayload, not an allocation or a read past the payload.
    #[test]
    fn inflated_inner_lengths_are_rejected(
        epoch in any::<u64>(),
        fingerprint in any::<u64>(),
        json in arb_string(),
        inflate in 1u32..1_000_000,
    ) {
        let frame = Frame::ModelPublish { epoch, fingerprint, json };
        let mut bytes = frame.encode();
        // The string length prefix sits right after epoch + fingerprint.
        let at = HEADER_LEN + 16;
        let inner = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let lied = inner.saturating_add(inflate);
        bytes[at..at + 4].copy_from_slice(&lied.to_le_bytes());
        prop_assert_eq!(
            Frame::decode(&bytes),
            Err(FrameError::BadPayload("payload shorter than declared"))
        );
    }

    /// Frames survive concatenation: a stream of k frames decodes back
    /// to the same k frames in order (the framing never bleeds).
    #[test]
    fn concatenated_frames_stay_delimited(frames in proptest::collection::vec(arb_frame(), 1..8)) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let mut decoded = Vec::new();
        let mut offset = 0;
        while offset < stream.len() {
            let (f, used) = Frame::decode(&stream[offset..]).expect("stream decodes");
            decoded.push(f);
            offset += used;
        }
        prop_assert_eq!(decoded, frames);
    }
}
