//! Golden test for the aggregator's Prometheus exposition — the
//! fleet-rollup counters and per-host `up`/`last_seen`/`reconnects`
//! series are a wire contract with external scrapers, pinned
//! byte-for-byte just like the per-service exposition golden in
//! `xentry-fleet`. A diff here is a scraper-visible format change;
//! update the golden only deliberately.

use xentry_fleet::parse_exposition;
use xentry_wire::aggregator::{AggregatorSnapshot, FleetRollup, HostSnapshot};
use xentry_wire::{render_aggregator_prometheus, HostCounters};

/// A fully deterministic merged-fleet snapshot: one live host, one host
/// that died dirty and was reconciled, a published model only one of
/// them admitted.
fn fixture() -> AggregatorSnapshot {
    AggregatorSnapshot {
        uptime_ns: 3_000_000_000,
        published_epoch: 2,
        published_fingerprint: 0x00ab_cdef_0123_4567,
        hosts: vec![
            HostSnapshot {
                id: 0,
                name: "host0".to_string(),
                up: true,
                clean_bye: false,
                sessions: 1,
                reconnects: 0,
                last_seen_age_ns: 40_000_000,
                incarnation: 1,
                last_seq: 52,
                counters: HostCounters {
                    ingested: 1200,
                    classified: 1180,
                    lost: 5,
                    dropped: 3,
                    incorrect: 2,
                    in_flight: 15,
                },
                reconciled_lost: 0,
                model_epoch: 2,
                model_fingerprint: 0x00ab_cdef_0123_4567,
                divergences: 0,
                queue_p99_ns: 2048,
                classify_p99_ns: 8192,
            },
            HostSnapshot {
                id: 1,
                name: "host1".to_string(),
                up: false,
                clean_bye: false,
                sessions: 3,
                reconnects: 2,
                last_seen_age_ns: 1_500_000_000,
                incarnation: 2,
                last_seq: 17,
                counters: HostCounters {
                    ingested: 800,
                    classified: 760,
                    lost: 40,
                    dropped: 1,
                    incorrect: 0,
                    in_flight: 0,
                },
                reconciled_lost: 33,
                model_epoch: 0,
                model_fingerprint: 0,
                divergences: 1,
                queue_p99_ns: 4096,
                classify_p99_ns: 16_384,
            },
        ],
        fleet: FleetRollup {
            hosts_configured: 2,
            hosts_up: 1,
            ingested: 2000,
            classified: 1940,
            lost: 45,
            dropped: 4,
            incorrect: 2,
            in_flight: 15,
            reconciled_lost: 33,
            sessions: 4,
            reconnects: 2,
            summaries: 69,
            credits_granted: 69,
            rejected_connections: 1,
            identity_violations: 0,
            model_divergences: 1,
        },
    }
}

const GOLDEN: &str = include_str!("exposition_golden.txt");

#[test]
fn aggregator_exposition_matches_golden_byte_for_byte() {
    let rendered = render_aggregator_prometheus(&fixture());
    if rendered != GOLDEN {
        for (i, (a, b)) in rendered.lines().zip(GOLDEN.lines()).enumerate() {
            assert_eq!(a, b, "first divergence at line {}", i + 1);
        }
        assert_eq!(
            rendered.lines().count(),
            GOLDEN.lines().count(),
            "same lines but different line count"
        );
        panic!("rendered exposition differs from golden");
    }
}

#[test]
fn aggregator_exposition_parses_and_covers_the_fleet() {
    let s = fixture();
    let rendered = render_aggregator_prometheus(&s);
    let samples = parse_exposition(&rendered).expect("exposition parses");
    let series = |name: &str| {
        samples
            .iter()
            .filter(|(n, _, _)| n == name)
            .collect::<Vec<_>>()
    };

    // One sample per configured host on every per-host series.
    for per_host in [
        "xentry_agg_host_up",
        "xentry_agg_host_last_seen_seconds",
        "xentry_agg_host_reconnects_total",
        "xentry_agg_host_ingested_total",
        "xentry_agg_host_classified_total",
        "xentry_agg_host_lost_total",
        "xentry_agg_host_in_flight",
        "xentry_agg_host_model_epoch",
        "xentry_agg_host_divergences_total",
    ] {
        assert_eq!(series(per_host).len(), 2, "{per_host}");
    }

    // The host label selects the right host.
    let host1_up = samples
        .iter()
        .find(|(n, labels, _)| {
            n == "xentry_agg_host_up" && labels.contains(&("host".to_string(), "host1".to_string()))
        })
        .expect("host1 up series");
    assert_eq!(host1_up.2, 0.0);

    // Fleet rollups agree with the snapshot, and the identity gauge
    // reflects the (here: holding) accounting identity.
    assert_eq!(series("xentry_agg_ingested_total")[0].2, 2000.0);
    assert_eq!(series("xentry_agg_reconnects_total")[0].2, 2.0);
    assert_eq!(series("xentry_agg_reconciled_lost_total")[0].2, 33.0);
    assert_eq!(series("xentry_agg_accounting_identity")[0].2, 1.0);
    assert!(s.accounting_identity());

    // model_info carries epoch + fingerprint as labels.
    let info = series("xentry_agg_model_info");
    assert_eq!(info.len(), 1);
    assert!(info[0].1.contains(&("epoch".to_string(), "2".to_string())));
    assert!(info[0]
        .1
        .contains(&("fingerprint".to_string(), "00abcdef01234567".to_string())));
}

#[test]
fn broken_identity_shows_in_the_gauge() {
    let mut s = fixture();
    s.fleet.lost -= 1; // now ingested != classified + lost + in_flight
    assert!(!s.accounting_identity());
    let rendered = render_aggregator_prometheus(&s);
    let samples = parse_exposition(&rendered).expect("parses");
    let gauge = samples
        .iter()
        .find(|(n, _, _)| n == "xentry_agg_accounting_identity")
        .expect("identity gauge");
    assert_eq!(gauge.2, 0.0);
}
