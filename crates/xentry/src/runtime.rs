//! Runtime detection: fatal-hardware-exception parsing and software
//! assertions (§III-A).
//!
//! "Hardware exceptions should be parsed first to filter out non-fatal
//! ones" — debug-class exceptions are benign even in host mode, and all
//! *guest*-raised exceptions arrive as ordinary VM exits handled by the
//! hypervisor, not through this parser. Everything else raised while the
//! CPU executes hypervisor code indicates fatal system corruption.

use serde::{Deserialize, Serialize};
use sim_machine::{Exception, Vector};

/// Verdict of the exception parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExceptionClass {
    /// Legal during correct execution (single-step debug, breakpoints,
    /// profiling NMIs): ignored by the detector.
    Benign,
    /// Fatal system corruption: report a detection.
    Fatal,
}

/// Parse a host-mode hardware exception.
pub fn classify_exception(e: &Exception) -> ExceptionClass {
    match e.vector {
        // Debug-class events occur during legal instrumentation.
        Vector::Debug | Vector::Breakpoint | Vector::Nmi => ExceptionClass::Benign,
        // Everything else in host mode is a fatal corruption indicator:
        // invalid opcode from a corrupted RIP, page faults from corrupted
        // pointers, #GP/#SS from corrupted descriptors, #DE from corrupted
        // divisors, machine checks, ...
        _ => ExceptionClass::Fatal,
    }
}

/// The detection technique that caught a fault — the categories of Fig. 8
/// and Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technique {
    /// Fatal hardware exception (runtime detection).
    HwException,
    /// Software assertion (runtime detection).
    SwAssertion,
    /// VM transition detection (machine-learning classifier at VM entry).
    VmTransition,
}

/// One positive detection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Detection {
    pub technique: Technique,
    /// Dynamic instruction count at detection time (for latency).
    pub at_insns: u64,
    /// Instructions between error activation and detection, when the
    /// injection point is known (the paper's detection-latency metric).
    pub latency: Option<u64>,
    /// Details: exception vector / assertion id / classified VMER.
    pub detail: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_machine::exception::AccessKind;

    #[test]
    fn corruption_signatures_are_fatal() {
        for v in [
            Vector::InvalidOpcode,
            Vector::PageFault,
            Vector::GeneralProtection,
            Vector::DivideError,
            Vector::StackFault,
            Vector::AlignmentCheck,
            Vector::MachineCheck,
            Vector::DoubleFault,
        ] {
            let e = Exception::mem(v, 0x1000, 0xdead, AccessKind::Read);
            assert_eq!(classify_exception(&e), ExceptionClass::Fatal, "{v:?}");
        }
    }

    #[test]
    fn debug_class_is_benign() {
        for v in [Vector::Debug, Vector::Breakpoint, Vector::Nmi] {
            let e = Exception::at(v, 0x1000);
            assert_eq!(classify_exception(&e), ExceptionClass::Benign, "{v:?}");
        }
    }
}
