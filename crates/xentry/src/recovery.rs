//! Recovery support: the §VI mechanism, made concrete.
//!
//! "We assume that the recovery techniques will preserve the critical
//! hypervisor data (e.g. VCPU and domain information) and the VM exit
//! reason by making a redundant copy at every VM exit. If there is a
//! positive detection (correct or false), these critical data and the VM
//! exit reason will be restored and the hypervisor execution is
//! re-initiated."
//!
//! [`CriticalState`] is that redundant copy: the current VCPU descriptor,
//! its domain descriptor, the PCPU block, the VMCS (which holds the exit
//! reason), and the architectural register file at VM exit. Restoring it
//! and re-entering the hypervisor at the exit trampoline re-initiates the
//! execution — since soft errors are transient, the re-execution is
//! fault-free. The copy is sized so its cost matches the paper's measured
//! 1,900 ns.

use serde::{Deserialize, Serialize};
use sim_machine::{CpuId, Machine, Reg};
use xen_like::layout as lay;

/// The redundant copy captured at a VM exit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalState {
    cpu: CpuId,
    /// Address and contents of the current VCPU descriptor.
    vcpu_addr: u64,
    vcpu_words: Vec<u64>,
    /// Address and contents of the owning domain descriptor.
    domain_addr: u64,
    domain_words: Vec<u64>,
    /// The PCPU block (current-VCPU pointer, softirq bits, ...).
    pcpu_words: Vec<u64>,
    /// The VMCS block: guest RIP/RSP/RFLAGS + exit reason + qualification.
    vmcs_words: Vec<u64>,
    /// Architectural registers at exit (the guest state the entry stub is
    /// about to save).
    regs: [u64; 16],
    rip: u64,
    rflags: u64,
}

fn read_block(m: &Machine, base: u64, words: u64) -> Vec<u64> {
    (0..words)
        .map(|i| m.mem.peek(base + i * 8).expect("critical block mapped"))
        .collect()
}

fn write_block(m: &mut Machine, base: u64, words: &[u64]) {
    for (i, &w) in words.iter().enumerate() {
        m.mem
            .poke(base + (i as u64) * 8, w)
            .expect("critical block mapped");
    }
}

impl CriticalState {
    /// Capture the critical copy. Must be called while `cpu` sits at its VM
    /// exit point (host entry trampoline, VMCS filled) — exactly where the
    /// shim's `on_vm_exit` hook runs.
    pub fn capture(m: &Machine, cpu: CpuId) -> CriticalState {
        let pcpu_addr = lay::pcpu_addr(cpu);
        let vcpu_addr = m
            .mem
            .peek(pcpu_addr + lay::pcpu::CURRENT_VCPU * 8)
            .expect("pcpu mapped");
        let domain_addr = m
            .mem
            .peek(vcpu_addr + lay::vcpu::DOM_PTR * 8)
            .expect("vcpu descriptor mapped");
        let vmcs_addr = m.config.vmcs_field(cpu, 0);
        let c = m.cpu(cpu);
        let mut regs = [0u64; 16];
        for r in Reg::ALL {
            regs[r.index()] = c.get(r);
        }
        CriticalState {
            cpu,
            vcpu_addr,
            vcpu_words: read_block(m, vcpu_addr, lay::vcpu::STRIDE),
            domain_addr,
            domain_words: read_block(m, domain_addr, lay::domain::STRIDE),
            pcpu_words: read_block(m, pcpu_addr, lay::pcpu::STRIDE),
            vmcs_words: read_block(m, vmcs_addr, sim_machine::VMCS_WORDS),
            regs,
            rip: c.rip,
            rflags: c.rflags,
        }
    }

    /// Restore the copy and re-position the CPU at its exit trampoline so
    /// the hypervisor execution re-initiates from scratch.
    pub fn restore(&self, m: &mut Machine) {
        write_block(m, self.vcpu_addr, &self.vcpu_words);
        write_block(m, self.domain_addr, &self.domain_words);
        write_block(m, lay::pcpu_addr(self.cpu), &self.pcpu_words);
        write_block(m, m.config.vmcs_field(self.cpu, 0), &self.vmcs_words);
        let c = m.cpu_mut(self.cpu);
        for r in Reg::ALL {
            c.set(r, self.regs[r.index()]);
        }
        c.rip = self.rip;
        c.rflags = self.rflags;
        c.mode = sim_machine::Mode::Host;
    }

    /// The VM exit reason preserved in the copy.
    pub fn exit_reason_code(&self) -> u16 {
        self.vmcs_words[sim_machine::machine::vmcs::EXIT_REASON as usize] as u16
    }

    /// Size of the copy in words — what the 1,900 ns copy moves.
    pub fn size_words(&self) -> usize {
        self.vcpu_words.len()
            + self.domain_words.len()
            + self.pcpu_words.len()
            + self.vmcs_words.len()
            + 18
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_sim::{workload_platform, Benchmark};
    use sim_machine::VirtMode;
    use xen_like::NullMonitor;

    fn platform_at_exit() -> (xen_like::Platform, sim_machine::ExitReason) {
        let mut plat = workload_platform(Benchmark::Freqmine, VirtMode::Para, 2, 1, 16, 3);
        plat.boot(1, &mut NullMonitor);
        for _ in 0..20 {
            assert!(plat
                .run_activation(1, &mut NullMonitor)
                .outcome
                .is_healthy());
        }
        let (reason, _) = plat.run_to_exit(1);
        (plat, reason)
    }

    #[test]
    fn capture_preserves_exit_reason() {
        let (plat, reason) = platform_at_exit();
        let snap = CriticalState::capture(&plat.machine, 1);
        assert_eq!(snap.exit_reason_code(), reason.vmer());
        assert!(
            snap.size_words() > 100,
            "copy covers the critical structures"
        );
    }

    #[test]
    fn restore_undoes_corruption_and_reexecution_matches_golden() {
        let (plat, reason) = platform_at_exit();
        let snap = CriticalState::capture(&plat.machine, 1);

        // Golden: run the handler untouched.
        let mut golden = plat.clone();
        let act = golden.run_handler(1, reason, 0, &mut NullMonitor);
        assert!(act.outcome.is_healthy());

        // Victim: corrupt critical structures mid-"handler" (simulating a
        // detected fault), then restore and re-initiate.
        let mut victim = plat.clone();
        let vcpu = lay::vcpu_addr(lay::MAX_VCPUS_PER_DOM); // dom 1 vcpu 0
        victim
            .machine
            .mem
            .poke(vcpu + lay::vcpu::SAVE_RIP * 8, 0xBAD_BAD)
            .unwrap();
        victim.machine.cpu_mut(1).set(Reg::Rax, 0xDEAD);
        victim.machine.cpu_mut(1).rip = 0x666; // corrupted control flow
        snap.restore(&mut victim.machine);

        // The restored machine re-executes to the same state as golden.
        let act2 = victim.run_handler(1, reason, 0, &mut NullMonitor);
        assert!(
            act2.outcome.is_healthy(),
            "re-execution died: {:?}",
            act2.outcome
        );
        assert_eq!(
            victim.machine.cpu(1).rip,
            golden.machine.cpu(1).rip,
            "re-executed guest resume point matches golden"
        );
        assert_eq!(
            victim
                .machine
                .mem
                .peek(vcpu + lay::vcpu::SAVE_RIP * 8)
                .unwrap(),
            golden
                .machine
                .mem
                .peek(vcpu + lay::vcpu::SAVE_RIP * 8)
                .unwrap()
        );
    }

    #[test]
    fn copy_size_is_consistent_with_1900ns() {
        // ~170 words = ~1.4 KiB; a cached copy of that size at a few bytes
        // per cycle is in the right regime for the paper's 1,900 ns
        // measurement (which also includes locking and bookkeeping).
        let (plat, _) = platform_at_exit();
        let snap = CriticalState::capture(&plat.machine, 1);
        assert!(
            (100..400).contains(&snap.size_words()),
            "{}",
            snap.size_words()
        );
    }
}
