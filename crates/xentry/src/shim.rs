//! The Xentry shim: the light-weight layer between hypervisor and VMs
//! (§IV).
//!
//! "Xentry functions as an interface between the hypervisor and other
//! domains. It intercepts all VM exits to prepare for data collection by
//! instructing performance counters, and then allows original hypervisor
//! execution to continue. It enables VM transition detection at every VM
//! entry." The shim implements [`xen_like::Monitor`], so plugging it into
//! the platform is exactly Xen-with-Xentry; the `NullMonitor` platform is
//! unmodified Xen.

use crate::detector::VmTransitionDetector;
use crate::features::FeatureVec;
use crate::runtime::{classify_exception, Detection, ExceptionClass, Technique};
use mltree::Label;
use serde::{Deserialize, Serialize};
use sim_machine::machine::vmcs;
use sim_machine::{CpuId, Exception, ExitReason, Machine};
use xen_like::{Monitor, Verdict};

/// Cycle costs of the shim's own work, charged to the CPU so overhead is
/// measured rather than asserted. Defaults reflect MSR-access costs on the
/// paper's Nehalem-era Xeon.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ShimCosts {
    /// Base interception cost per VM exit and per VM entry edge.
    pub intercept: u64,
    /// Programming the four PMC events at VM exit (WRMSRs).
    pub pmc_program: u64,
    /// Reading the counters at VM entry (RDMSRs).
    pub pmc_read: u64,
    /// Per-tree-node comparison cost during classification.
    pub classify_per_node: u64,
    /// Copying the critical hypervisor data at VM exit for recovery
    /// support (the paper measures ~1,900 ns ≈ 4,047 cycles at 2.13 GHz).
    pub state_copy: u64,
}

impl Default for ShimCosts {
    fn default() -> ShimCosts {
        ShimCosts {
            intercept: 60,
            pmc_program: 900, // 8 WRMSRs (4 event selects + 4 counter resets)
            pmc_read: 300,    // 4 RDPMCs + stores
            classify_per_node: 4,
            state_copy: 4047, // the paper's measured 1,900 ns at 2.13 GHz
        }
    }
}

/// Which parts of the framework are active.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct XentryConfig {
    /// Runtime detection: fatal-exception parsing + assertion monitoring.
    pub runtime_detection: bool,
    /// VM transition detection: PMC collection + classification at entry.
    pub vm_transition_detection: bool,
    /// Recovery support: copy critical state at every VM exit and model
    /// restore + re-execution on positive detections (Fig. 11).
    pub recovery_support: bool,
    /// When true, a positive VM-transition verdict charges recovery cost
    /// and lets execution continue (fault-free overhead experiments);
    /// when false it reports `Verdict::Incorrect` and stops the activation
    /// (fault-injection campaigns).
    pub continue_after_positive: bool,
    /// Shim cost model.
    pub costs: ShimCosts,
}

impl XentryConfig {
    /// Full framework, detection mode (fault-injection campaigns).
    pub fn detection() -> XentryConfig {
        XentryConfig {
            runtime_detection: true,
            vm_transition_detection: true,
            recovery_support: false,
            continue_after_positive: false,
            costs: ShimCosts::default(),
        }
    }

    /// Full framework, overhead-measurement mode (fault-free runs).
    pub fn overhead() -> XentryConfig {
        XentryConfig {
            continue_after_positive: true,
            ..XentryConfig::detection()
        }
    }

    /// Runtime detection only (the shaded bars of Fig. 7).
    pub fn runtime_only() -> XentryConfig {
        XentryConfig {
            vm_transition_detection: false,
            continue_after_positive: true,
            ..XentryConfig::detection()
        }
    }

    /// Overhead mode plus recovery support (Fig. 11).
    pub fn with_recovery() -> XentryConfig {
        XentryConfig {
            recovery_support: true,
            ..XentryConfig::overhead()
        }
    }
}

/// The Xentry framework state.
#[derive(Debug, Clone)]
pub struct Xentry {
    pub config: XentryConfig,
    /// Deployed VM-transition model (None while collecting training data).
    pub detector: Option<VmTransitionDetector>,
    /// Positive detections, in order.
    pub detections: Vec<Detection>,
    /// Feature vectors of every completed hypervisor execution (drained by
    /// training-data collectors).
    pub trace: Vec<FeatureVec>,
    /// Whether to keep `trace` (costs memory on long runs).
    pub keep_trace: bool,
    /// Set by the fault-injection harness: dynamic instruction count at
    /// error activation, for latency measurement.
    pub injection_mark: Option<u64>,
    /// Cycles the shim added to the machine (overhead accounting).
    pub added_cycles: u64,
    /// Cycles spent on recovery for (false or true) positives.
    pub recovery_cycles: u64,
    /// Number of VM entries classified.
    pub classified: u64,
    /// Number of positive VM-transition verdicts.
    pub positives: u64,
    handler_start_cycles: u64,
}

impl Xentry {
    /// Build the shim.
    pub fn new(config: XentryConfig, detector: Option<VmTransitionDetector>) -> Xentry {
        Xentry {
            config,
            detector,
            detections: Vec::new(),
            trace: Vec::new(),
            keep_trace: false,
            injection_mark: None,
            added_cycles: 0,
            recovery_cycles: 0,
            classified: 0,
            positives: 0,
            handler_start_cycles: 0,
        }
    }

    /// Shim collecting features only (training-data gathering).
    pub fn collector() -> Xentry {
        let mut x = Xentry::new(XentryConfig::overhead(), None);
        x.keep_trace = true;
        x
    }

    /// The feature vector of the most recent hypervisor execution.
    pub fn last_features(&self) -> Option<FeatureVec> {
        self.trace.last().copied()
    }

    fn charge(&mut self, m: &mut Machine, cpu: CpuId, cycles: u64) {
        m.cpu_mut(cpu).cycles += cycles;
        self.added_cycles += cycles;
    }

    fn record_detection(&mut self, m: &Machine, cpu: CpuId, technique: Technique, detail: String) {
        let at = m.cpu(cpu).insns_retired;
        let latency = self.injection_mark.map(|mark| at.saturating_sub(mark));
        self.detections.push(Detection {
            technique,
            at_insns: at,
            latency,
            detail,
        });
    }

    /// Whether any detection fired since the last reset.
    pub fn detected(&self) -> bool {
        !self.detections.is_empty()
    }

    /// Clear per-run state (detections, marks, trace) but keep the model
    /// and accumulated cost accounting.
    pub fn reset_run(&mut self) {
        self.detections.clear();
        self.trace.clear();
        self.injection_mark = None;
    }
}

impl Monitor for Xentry {
    fn on_vm_exit(&mut self, m: &mut Machine, cpu: CpuId, _reason: ExitReason) {
        let mut cost = self.config.costs.intercept;
        if self.config.vm_transition_detection {
            cost += self.config.costs.pmc_program;
            m.cpu_mut(cpu).perf.start();
        }
        if self.config.recovery_support {
            cost += self.config.costs.state_copy;
        }
        self.handler_start_cycles = m.cpu(cpu).cycles;
        self.charge(m, cpu, cost);
    }

    fn on_vm_entry(&mut self, m: &mut Machine, cpu: CpuId) -> Verdict {
        let mut cost = self.config.costs.intercept;
        let mut verdict = Verdict::Pass;
        // The boot path VM-enters without a preceding VM exit; the PMU is
        // not running then and there is nothing to classify.
        if self.config.vm_transition_detection && m.cpu(cpu).perf.enabled() {
            cost += self.config.costs.pmc_read;
            let sample = m.cpu_mut(cpu).perf.stop();
            // The exit reason comes from the VMCS block, exactly where the
            // shim reads it on real hardware.
            let vmer = m
                .mem
                .peek(m.config.vmcs_field(cpu, vmcs::EXIT_REASON))
                .expect("VMCS mapped") as u16;
            let features = FeatureVec::from_sample(vmer, sample);
            if self.keep_trace {
                self.trace.push(features);
            } else {
                self.trace.clear();
                self.trace.push(features);
            }
            if let Some(det) = &self.detector {
                self.classified += 1;
                cost += det.classify_cost(&features) as u64 * self.config.costs.classify_per_node;
                if det.classify(&features) == Label::Incorrect {
                    self.positives += 1;
                    self.record_detection(
                        m,
                        cpu,
                        Technique::VmTransition,
                        format!("vmer={vmer} rt={} wm={}", features.rt, features.wm),
                    );
                    if self.config.continue_after_positive {
                        // Recovery model: restore the critical state copied
                        // at VM exit and re-execute the handler.
                        let handler_cycles =
                            m.cpu(cpu).cycles.saturating_sub(self.handler_start_cycles);
                        let rec = self.config.costs.state_copy + handler_cycles;
                        if self.config.recovery_support {
                            self.recovery_cycles += rec;
                            self.charge(m, cpu, rec);
                        }
                    } else {
                        verdict = Verdict::Incorrect;
                    }
                }
            }
        }
        self.charge(m, cpu, cost);
        verdict
    }

    fn on_host_exception(&mut self, m: &mut Machine, cpu: CpuId, e: Exception) {
        if !self.config.runtime_detection {
            return;
        }
        if classify_exception(&e) == ExceptionClass::Fatal {
            self.record_detection(m, cpu, Technique::HwException, e.to_string());
        }
    }

    fn on_assert_fail(&mut self, m: &mut Machine, cpu: CpuId, id: u16) {
        if !self.config.runtime_detection {
            return;
        }
        let name = xen_like::assert_ids::name(id);
        self.record_detection(
            m,
            cpu,
            Technique::SwAssertion,
            format!("assert {id} ({name})"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_sim::{load_workload, profile, Benchmark};
    use sim_machine::VirtMode;
    use xen_like::{DomainSpec, Platform, Topology};

    fn platform() -> Platform {
        let topo = Topology {
            nr_cpus: 1,
            domains: vec![DomainSpec { nr_vcpus: 1 }],
            virt_mode: VirtMode::Para,
            seed: 21,
            cycle_model: Default::default(),
        };
        let (mut p, _) = Platform::new(topo);
        let prof = profile(Benchmark::Freqmine, VirtMode::Para).scaled(8);
        load_workload(&mut p.machine, 0, &prof);
        p
    }

    #[test]
    fn collector_gathers_features_per_activation() {
        let mut plat = platform();
        let mut shim = Xentry::collector();
        plat.boot(0, &mut shim);
        let acts = plat.run(0, 200, &mut shim);
        assert_eq!(acts.len(), 200);
        assert_eq!(shim.trace.len(), 200, "one feature vector per activation");
        // Feature vectors reflect real handler work.
        assert!(shim.trace.iter().all(|f| f.rt > 0));
        assert!(shim.trace.iter().any(|f| f.wm > 0));
        // Different exit reasons appear.
        let mut vmers: Vec<u16> = shim.trace.iter().map(|f| f.vmer).collect();
        vmers.sort_unstable();
        vmers.dedup();
        assert!(vmers.len() >= 4, "expected diverse exits, got {vmers:?}");
    }

    #[test]
    fn features_differ_by_exit_reason() {
        let mut plat = platform();
        let mut shim = Xentry::collector();
        plat.boot(0, &mut shim);
        plat.run(0, 500, &mut shim);
        // xen_version (17) is much shorter than event_channel_op (32).
        let rt_of = |vmer: u16| -> Vec<u64> {
            shim.trace
                .iter()
                .filter(|f| f.vmer == vmer)
                .map(|f| f.rt)
                .collect()
        };
        let v17 = rt_of(17);
        let v32 = rt_of(32);
        assert!(!v17.is_empty() && !v32.is_empty());
        let avg = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(
            avg(&v32) > avg(&v17),
            "event-channel ops ({}) should out-work xen_version ({})",
            avg(&v32),
            avg(&v17)
        );
    }

    #[test]
    fn shim_charges_overhead_cycles() {
        let mut plat = platform();
        let mut shim = Xentry::new(XentryConfig::overhead(), None);
        plat.boot(0, &mut shim);
        plat.run(0, 100, &mut shim);
        // Roughly (intercept*2 + pmc_program + pmc_read) per activation.
        let costs = ShimCosts::default();
        let expect = (2 * costs.intercept + costs.pmc_program + costs.pmc_read) as f64;
        let per_act = shim.added_cycles as f64 / 101.0;
        assert!(
            per_act >= 0.8 * expect && per_act <= 1.3 * expect,
            "per-activation cost {per_act}, expected about {expect}"
        );
    }

    #[test]
    fn runtime_only_config_skips_pmcs() {
        let mut plat = platform();
        let mut shim = Xentry::new(XentryConfig::runtime_only(), None);
        plat.boot(0, &mut shim);
        plat.run(0, 100, &mut shim);
        let per_act = shim.added_cycles as f64 / 101.0;
        let ceiling = (2 * ShimCosts::default().intercept) as f64 * 1.2;
        assert!(
            per_act <= ceiling,
            "runtime-only cost {per_act} > {ceiling}"
        );
        assert!(
            shim.trace.is_empty(),
            "no feature collection without transition detection"
        );
    }

    #[test]
    fn recovery_support_charges_copy_per_exit() {
        let mut plat = platform();
        let mut shim = Xentry::new(XentryConfig::with_recovery(), None);
        plat.boot(0, &mut shim);
        plat.run(0, 50, &mut shim);
        let per_act = shim.added_cycles as f64 / 51.0;
        assert!(per_act >= 4000.0, "state copy missing: {per_act}");
    }

    #[test]
    fn assertion_detection_is_recorded() {
        // Corrupt the scheduler's idle-VCPU pointer so the Listing-2
        // assertion fires on the next idle transition.
        let mut plat = platform();
        let mut shim = Xentry::new(XentryConfig::detection(), None);
        plat.boot(0, &mut shim);
        // Empty the run queue and corrupt the idle-VCPU pointer, then force
        // a scheduler pass: the idle path's Listing-2 assertion must fire.
        use xen_like::layout as lay;
        let pa = lay::pcpu_addr(0);
        plat.machine
            .mem
            .poke(pa + lay::pcpu::IDLE_VCPU * 8, lay::vcpu_addr(0)) // not an idle vcpu
            .unwrap();
        plat.machine
            .mem
            .poke(lay::runq_addr(0) + lay::runq::COUNT * 8, 0)
            .unwrap();
        plat.machine
            .mem
            .poke(pa + lay::pcpu::SOFTIRQ_PENDING * 8, lay::softirq::SCHED)
            .unwrap();
        let act = plat.run_activation(0, &mut shim);
        assert!(
            !act.outcome.is_healthy(),
            "assertion should stop the activation"
        );
        assert!(
            shim.detections
                .iter()
                .any(|d| d.technique == Technique::SwAssertion),
            "expected an assertion detection, got {:?}",
            shim.detections
        );
    }

    #[test]
    fn hw_exception_detection_with_latency() {
        let mut plat = platform();
        let mut shim = Xentry::new(XentryConfig::detection(), None);
        plat.boot(0, &mut shim);
        // Run until inside... simulate an injection: corrupt RIP mid-host.
        // Simplest deterministic route: point a register used as a pointer
        // at unmapped memory right before an activation and mark the
        // injection.
        plat.run(0, 5, &mut shim);
        shim.injection_mark = Some(plat.machine.cpu(0).insns_retired);
        // Force a host-mode fatal exception artificially.
        let e = Exception::at(sim_machine::Vector::InvalidOpcode, 0xbad0);
        let mcpu = plat.machine.cpu(0).insns_retired;
        shim.on_host_exception(&mut plat.machine, 0, e);
        assert_eq!(shim.detections.len(), 1);
        let d = &shim.detections[0];
        assert_eq!(d.technique, Technique::HwException);
        assert_eq!(d.at_insns, mcpu);
        assert_eq!(d.latency, Some(0));
    }
}
