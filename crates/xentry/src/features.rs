//! The five Table-I features of the VM-transition detector.
//!
//! | Feature | Source | Synonym |
//! |---|---|---|
//! | VM exit reason | Xentry shim | `VMER` |
//! | # committed instructions | `INST_RETIRED` | `RT` |
//! | # branch instructions | `BR_INST_RETIRED` | `BR` |
//! | # read memory accesses | `MEM_INST_RETIRED.LOADS` | `RM` |
//! | # write memory accesses | `MEM_INST_RETIRED.STORES` | `WM` |

use mltree::{Label, Sample};
use serde::{Deserialize, Serialize};
use sim_machine::PerfCounters;

/// Feature synonyms in canonical column order.
pub const FEATURE_NAMES: [&str; 5] = ["VMER", "RT", "BR", "RM", "WM"];

/// One feature vector describing a hypervisor execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureVec {
    /// Dense VM-exit-reason code.
    pub vmer: u16,
    /// Retired instructions during the handler.
    pub rt: u64,
    /// Retired branches.
    pub br: u64,
    /// Memory loads.
    pub rm: u64,
    /// Memory stores.
    pub wm: u64,
}

impl FeatureVec {
    /// Assemble from the exit reason code and a stopped PMC sample.
    pub fn from_sample(vmer: u16, s: sim_machine::perf::PerfSample) -> FeatureVec {
        FeatureVec {
            vmer,
            rt: s.inst_retired,
            br: s.branches,
            rm: s.loads,
            wm: s.stores,
        }
    }

    /// Column vector in [`FEATURE_NAMES`] order.
    pub fn columns(&self) -> [u64; 5] {
        [self.vmer as u64, self.rt, self.br, self.rm, self.wm]
    }

    /// Convert into a labeled training sample.
    pub fn into_sample(self, label: Label) -> Sample {
        Sample::new(self.columns().to_vec(), label)
    }
}

/// Convenience: drain a PMU into a feature vector.
pub fn collect(vmer: u16, perf: &mut PerfCounters) -> FeatureVec {
    FeatureVec::from_sample(vmer, perf.stop())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_follow_table_one_order() {
        let f = FeatureVec {
            vmer: 17,
            rt: 100,
            br: 20,
            rm: 30,
            wm: 10,
        };
        assert_eq!(f.columns(), [17, 100, 20, 30, 10]);
        assert_eq!(FEATURE_NAMES.len(), 5);
        assert_eq!(FEATURE_NAMES[0], "VMER");
    }

    #[test]
    fn pmu_drain_produces_features() {
        let mut p = PerfCounters::new();
        p.start();
        p.record(true, 1, 0); // a branch with one load
        p.record(false, 0, 1); // a store
        let f = collect(42, &mut p);
        assert_eq!(f.vmer, 42);
        assert_eq!(f.rt, 2);
        assert_eq!(f.br, 1);
        assert_eq!(f.rm, 1);
        assert_eq!(f.wm, 1);
        assert!(!p.enabled(), "collection stops the PMU");
    }

    #[test]
    fn sample_conversion_keeps_label() {
        let f = FeatureVec {
            vmer: 1,
            rt: 2,
            br: 3,
            rm: 4,
            wm: 5,
        };
        let s = f.into_sample(Label::Incorrect);
        assert_eq!(s.features, vec![1, 2, 3, 4, 5]);
        assert_eq!(s.label, Label::Incorrect);
    }
}
