//! Performance-overhead measurement (Fig. 7 and Fig. 11 methodology).
//!
//! The paper runs each benchmark ten times on unmodified Xen and on
//! Xen+Xentry and compares run times. We reproduce that by running the
//! same workload (same seed, same guest program) to a fixed amount of
//! *guest work* — a target number of completed kernel bursts — under a
//! `NullMonitor` baseline and under the Xentry shim, and comparing the
//! cycles consumed.

use crate::shim::{Xentry, XentryConfig};
use guest_sim::{guest_addrs, workload_platform, Benchmark};
use sim_machine::VirtMode;
use xen_like::{Monitor, NullMonitor, Platform};

/// Result of one overhead comparison.
#[derive(Debug, Clone, Copy)]
pub struct OverheadResult {
    /// Baseline cycles to complete the work.
    pub baseline_cycles: u64,
    /// Cycles with the shim enabled.
    pub shim_cycles: u64,
    /// Relative overhead (e.g. 0.025 = 2.5%).
    pub overhead: f64,
}

/// Run `plat` on `cpu` until domain `dom` completes `bursts` kernel bursts;
/// returns cycles consumed. Panics if the platform dies (these are
/// fault-free runs).
pub fn run_until_bursts<M: Monitor>(
    plat: &mut Platform,
    cpu: usize,
    dom: usize,
    bursts: u64,
    monitor: &mut M,
) -> u64 {
    let ga = guest_addrs(dom);
    if !plat.is_booted(cpu) {
        plat.boot(cpu, monitor);
    }
    let start = plat.machine.cpu(cpu).cycles;
    loop {
        let done = plat
            .machine
            .mem
            .peek(ga.iter_count)
            .expect("guest data mapped");
        if done >= bursts {
            break;
        }
        let act = plat.run_activation(cpu, monitor);
        assert!(
            act.outcome.is_healthy(),
            "fault-free run died: {:?}",
            act.outcome
        );
    }
    plat.machine.cpu(cpu).cycles - start
}

/// Parameters of one overhead experiment.
#[derive(Debug, Clone, Copy)]
pub struct OverheadSetup {
    pub benchmark: Benchmark,
    pub mode: VirtMode,
    /// Guest kernel scale divider (1 = paper-calibrated rates).
    pub kernel_scale: u64,
    /// Guest work per run, in kernel bursts.
    pub bursts: u64,
    pub seed: u64,
}

/// Measure overhead of `config` for one run.
pub fn measure_overhead(setup: &OverheadSetup, config: XentryConfig) -> OverheadResult {
    measure_overhead_with(setup, || Xentry::new(config, None))
}

/// Measure overhead with a custom shim factory (e.g. with a deployed
/// detector so classification costs include real tree traversals).
pub fn measure_overhead_with<F: Fn() -> Xentry>(
    setup: &OverheadSetup,
    make_shim: F,
) -> OverheadResult {
    // Dom 1 on CPU 1 (pinned), Dom0 on CPU 0 (quiescent in this setup).
    let mut base = workload_platform(
        setup.benchmark,
        setup.mode,
        2,
        1,
        setup.kernel_scale,
        setup.seed,
    );
    let baseline_cycles = run_until_bursts(&mut base, 1, 1, setup.bursts, &mut NullMonitor);

    let mut plat = workload_platform(
        setup.benchmark,
        setup.mode,
        2,
        1,
        setup.kernel_scale,
        setup.seed,
    );
    let mut shim = make_shim();
    let shim_cycles = run_until_bursts(&mut plat, 1, 1, setup.bursts, &mut shim);

    let overhead = shim_cycles as f64 / baseline_cycles as f64 - 1.0;
    OverheadResult {
        baseline_cycles,
        shim_cycles,
        overhead,
    }
}

/// Summary over repeated runs (the paper reports average and maximum of
/// ten runs).
#[derive(Debug, Clone, Copy)]
pub struct OverheadSummary {
    pub avg: f64,
    pub max: f64,
}

/// Repeat the measurement `runs` times with varied seeds, one worker
/// thread per run (runs are fully independent platforms).
pub fn measure_overhead_repeated(
    setup: &OverheadSetup,
    config: XentryConfig,
    runs: usize,
) -> OverheadSummary {
    let values: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..runs)
            .map(|r| {
                let setup = OverheadSetup {
                    seed: setup.seed + 1000 * r as u64,
                    ..*setup
                };
                s.spawn(move || measure_overhead(&setup, config).overhead)
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("overhead run panicked"))
            .collect()
    });
    let avg = values.iter().sum::<f64>() / values.len() as f64;
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    OverheadSummary { avg, max }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_setup(benchmark: Benchmark) -> OverheadSetup {
        OverheadSetup {
            benchmark,
            mode: VirtMode::Para,
            kernel_scale: 4,
            bursts: 1500,
            seed: 77,
        }
    }

    #[test]
    fn overhead_is_small_and_positive() {
        let r = measure_overhead(&quick_setup(Benchmark::Bzip2), XentryConfig::overhead());
        assert!(
            r.overhead > 0.0,
            "shim work must cost something: {}",
            r.overhead
        );
        assert!(r.overhead < 0.08, "overhead out of band: {}", r.overhead);
    }

    #[test]
    fn runtime_only_is_cheaper_than_full() {
        let setup = quick_setup(Benchmark::Postmark);
        let full = measure_overhead(&setup, XentryConfig::overhead());
        let rt = measure_overhead(&setup, XentryConfig::runtime_only());
        assert!(
            rt.overhead < full.overhead,
            "runtime-only {} should undercut full {}",
            rt.overhead,
            full.overhead
        );
    }

    #[test]
    fn io_heavy_workload_pays_more_than_cpu_bound() {
        // Fig. 7's shape: postmark (exit-hungry) worst, bzip2 best.
        let post = measure_overhead(&quick_setup(Benchmark::Postmark), XentryConfig::overhead());
        let bzip = measure_overhead(&quick_setup(Benchmark::Bzip2), XentryConfig::overhead());
        assert!(
            post.overhead > 2.0 * bzip.overhead,
            "postmark {} should dominate bzip2 {}",
            post.overhead,
            bzip.overhead
        );
    }
}
